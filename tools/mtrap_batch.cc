/**
 * @file
 * Batch experiment front end: run any of the paper's figure suites (or
 * the security matrix) through the parallel experiment harness, with
 * optional sharding across machines and CSV/JSON artifact emission.
 *
 * Usage:
 *   mtrap_batch --list
 *   mtrap_batch --suite fig3 [options]
 *   mtrap_batch --suite all --jobs 8 --out results.json
 *   mtrap_batch --suite fig9 --shard 1/4 --out shard1.json
 *
 * Options:
 *   --suite NAME         fig3|fig4|fig5|fig6|fig7|fig8|fig9|sched|
 *                        security|server|all (repeatable; "all"
 *                        expands to every suite). "server" is the
 *                        open-system load sweep: arrival-rate ladder x
 *                        defence schemes, reporting sojourn-latency
 *                        percentiles (see src/sim/arrival.hh)
 *   --jobs N             worker threads (default: hardware concurrency)
 *   --shard i/m          run only jobs k with k%m == i (0-based). Tables
 *                        need the full result set, so sharded runs emit
 *                        artifacts only.
 *   --out FILE           write all results as JSON ("-" = stdout)
 *   --csv FILE           write all results as CSV ("-" = stdout)
 *   --seed S             nonzero: re-randomise deterministically (per-job
 *                        seeds derived from S); 0 (default) reproduces
 *                        the serial benches exactly
 *   --instructions N     measured instructions per core (default 100000)
 *   --warmup N           warmup instructions per core (default 30000)
 *   --no-tables          skip table rendering even when unsharded
 *   --trace-dir DIR      run every job with event tracing attached and
 *                        write DIR/<suite>_<index>.trace.json (Chrome
 *                        trace-event JSON, Perfetto-loadable) per job
 *   --warm-snapshot DIR  cache warm machine state in DIR keyed by the
 *                        (config, context) fingerprint pair: sweep
 *                        points sharing warm state (e.g. fig5 and fig6
 *                        baselines) warm up once and restore
 *                        thereafter, bit-identically
 *   --resume FILE        append each completed job to FILE and, on
 *                        restart, skip the jobs already recorded — a
 *                        killed shard finishes where it left off with
 *                        byte-identical artifacts
 *
 * Per-job progress telemetry goes to stderr as each job completes:
 * job name, wall seconds, simulated kinst/s, done/total and an ETA.
 *
 * Determinism: results (and therefore --out/--csv artifacts) are
 * byte-identical for any --jobs value; so are --trace-dir files,
 * warm-forked runs and resumed runs.
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "common/checked_io.hh"
#include "common/log.hh"
#include "common/parse.hh"
#include "harness/suites.hh"

namespace
{

using namespace mtrap;
using namespace mtrap::harness;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: mtrap_batch --list | --suite NAME [--suite "
                 "NAME...]\n"
                 "                   [--jobs N] [--shard i/m] [--out "
                 "FILE] [--csv FILE]\n"
                 "                   [--seed S] [--instructions N] "
                 "[--warmup N] [--no-tables]\n"
                 "                   [--trace-dir DIR] [--warm-snapshot "
                 "DIR] [--resume FILE]\n");
    std::exit(1);
}

/** Strict decimal parse; fatal (not abort) on junk like --jobs abc. */
std::uint64_t
parseNumber(const std::string &s, const char *flag)
{
    std::uint64_t v;
    if (!parseU64(s, v))
        fatal("%s wants a number, got '%s'", flag, s.c_str());
    return v;
}

void
parseShard(const std::string &spec, unsigned &index, unsigned &count)
{
    const std::size_t slash = spec.find('/');
    if (slash == std::string::npos || slash == 0
        || slash + 1 >= spec.size())
        fatal("--shard wants i/m (e.g. 0/4), got '%s'", spec.c_str());
    index = static_cast<unsigned>(
        parseNumber(spec.substr(0, slash), "--shard"));
    count = static_cast<unsigned>(
        parseNumber(spec.substr(slash + 1), "--shard"));
    if (count == 0 || index >= count)
        fatal("--shard %s: need 0 <= i < m", spec.c_str());
}

void
writeArtifact(const ResultStore &store, const std::string &path, bool csv)
{
    if (path == "-") {
        csv ? store.writeCsv(std::cout) : store.writeJson(std::cout);
        return;
    }
    // Checked end to end: a full disk or yanked mount kills the run
    // loudly instead of archiving a silently truncated result set.
    CheckedOfstream os(path, "result artifact");
    csv ? store.writeCsv(os.stream()) : store.writeJson(os.stream());
    os.finish();
    std::fprintf(stderr, "mtrap_batch: wrote %s (%llu results)\n",
                 path.c_str(),
                 static_cast<unsigned long long>(store.size()));
}

int
runTool(int argc, char **argv)
{
    std::vector<std::string> suites;
    unsigned jobs = 0;
    unsigned shard_index = 0, shard_count = 1;
    std::string out_json, out_csv;
    std::uint64_t seed = 0;
    RunOptions opt; // defaults: kDefault{Warmup,Measure}Instructions
    bool tables = true;
    std::string trace_dir;
    std::string warm_snapshot_dir;
    std::string resume_manifest;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--list") {
            std::printf("Suites:\n");
            for (const std::string &n : suiteNames())
                std::printf("  %s\n", n.c_str());
            std::printf("  all\n");
            return 0;
        } else if (arg == "--suite") {
            suites.push_back(next());
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(parseNumber(next(), "--jobs"));
        } else if (arg == "--shard") {
            parseShard(next(), shard_index, shard_count);
        } else if (arg == "--out") {
            out_json = next();
        } else if (arg == "--csv") {
            out_csv = next();
        } else if (arg == "--seed") {
            seed = parseNumber(next(), "--seed");
        } else if (arg == "--instructions") {
            opt.measureInstructions =
                parseNumber(next(), "--instructions");
        } else if (arg == "--warmup") {
            opt.warmupInstructions = parseNumber(next(), "--warmup");
        } else if (arg == "--no-tables") {
            tables = false;
        } else if (arg == "--trace-dir") {
            trace_dir = next();
        } else if (arg == "--warm-snapshot") {
            warm_snapshot_dir = next();
        } else if (arg == "--resume") {
            resume_manifest = next();
        } else {
            usage();
        }
    }
    if (suites.empty())
        usage();

    // Expand "all" and validate every name up front, so a typo in a
    // later --suite cannot discard hours of completed results.
    std::vector<std::string> expanded;
    for (const std::string &s : suites) {
        if (s == "all") {
            expanded.insert(expanded.end(), suiteNames().begin(),
                            suiteNames().end());
            continue;
        }
        bool known = false;
        for (const std::string &n : suiteNames())
            known |= (n == s);
        if (!known)
            fatal("unknown suite '%s' (try --list)", s.c_str());
        expanded.push_back(s);
    }

    const bool sharded = shard_count > 1;
    if (sharded && tables) {
        std::fprintf(stderr,
                     "mtrap_batch: sharded run, skipping tables "
                     "(artifacts only)\n");
        tables = false;
    }

    ExperimentPool pool(jobs);
    std::fprintf(stderr, "mtrap_batch: %u worker thread(s), shard %u/%u\n",
                 pool.threads(), shard_index, shard_count);

    SuiteRunOptions run_opt;
    run_opt.perJobProgress = true;
    run_opt.traceDir = trace_dir;
    run_opt.warmSnapshotDir = warm_snapshot_dir;
    run_opt.resumeManifest = resume_manifest;

    ResultStore store;
    int rc = 0;
    for (const std::string &name : expanded) {
        Suite suite = buildSuite(name, opt, seed);
        suite.jobs = shardJobs(std::move(suite.jobs), shard_index,
                               shard_count);
        const int suite_rc = runSuite(suite, pool, tables, &store,
                                      run_opt);
        if (suite_rc != 0)
            rc = suite_rc;
    }

    if (!out_json.empty())
        writeArtifact(store, out_json, /*csv=*/false);
    if (!out_csv.empty())
        writeArtifact(store, out_csv, /*csv=*/true);
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runTool(argc, argv);
    } catch (const std::exception &e) {
        mtrap::fatal("%s", e.what());
    }
}

#!/usr/bin/env bash
# Docs consistency check: fail when documentation drifts from the tree.
#
# Validates, across README.md and every docs/*.md:
#   1. every backtick-quoted repository path (src/..., tools/...,
#      tests/..., docs/..., bench/..., examples/..., .github/...)
#      exists — globs like tests/golden/*.json must match something;
#      placeholders containing <...> are skipped;
#   2. every --flag mentioned is a real flag of one of the CLI tools,
#      i.e. appears as a whole token somewhere in tools/*.cc (cmake's
#      --build and ctest's --output-on-failure, used in the README
#      build instructions, are allowlisted).
#
# Run from anywhere: the script cds to the repository root. Exit 0 when
# everything checks out, 1 with one diagnostic line per problem.
set -u
cd "$(dirname "$0")/.." || exit 1

fail=0
docs=(README.md docs/*.md)

for f in "${docs[@]}"; do
    [ -f "$f" ] || { echo "check_docs: missing $f"; fail=1; continue; }

    # 1. Repository paths in backticks.
    while IFS= read -r tok; do
        case "$tok" in *'<'*) continue ;; esac
        if [[ "$tok" == *'*'* ]]; then
            compgen -G "$tok" > /dev/null \
                || { echo "$f: stale path (glob matches nothing): $tok"; fail=1; }
        else
            [ -e "$tok" ] \
                || { echo "$f: stale path: $tok"; fail=1; }
        fi
    done < <(grep -oE '`[^` ]+`' "$f" | tr -d '`' \
             | grep -E '^(src|tools|tests|docs|bench|examples|\.github)/' \
             | sort -u)

    # 2. CLI flags.
    while IFS= read -r flag; do
        case "$flag" in
            --build | --output-on-failure) continue ;;
        esac
        name="${flag#--}"
        grep -qE -- "--${name}([^a-z0-9-]|\$)" tools/*.cc \
            || { echo "$f: unknown flag (not in tools/*.cc): $flag"; fail=1; }
    done < <(grep -oE -- '--[a-z][a-z0-9-]*' "$f" | sort -u)
done

if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED"
    exit 1
fi
echo "check_docs: OK (${#docs[@]} files)"

/**
 * @file
 * Command-line simulator front end: run any bundled workload under any
 * scheme (or a custom MuonTrap configuration), print normalised timing,
 * and optionally dump the full statistics as text or JSON.
 *
 * Usage:
 *   mtrap_sim --list
 *   mtrap_sim --workload mcf --scheme MuonTrap [options]
 *
 * Options:
 *   --workload NAME      SPEC-like or Parsec-like benchmark name
 *   --scheme NAME        Baseline | Insecure-L0 | MuonTrap |
 *                        MuonTrap-ClearMisspec | MuonTrap-ParallelL1 |
 *                        InvisiSpec-Spectre | InvisiSpec-Future |
 *                        STT-Spectre | STT-Future   (default MuonTrap)
 *   --instructions N     measured instructions per core (default 100000)
 *   --warmup N           warmup instructions per core (default 30000)
 *   --seed S             nonzero: deterministically re-randomise the
 *                        workload generation and replacement seeds (the
 *                        same path harness jobs use); 0 = configured
 *                        seeds (default)
 *   --filter-size BYTES  data filter-cache size (default 2048)
 *   --filter-assoc N     data filter-cache associativity (default 4)
 *   --baseline           also run the unprotected baseline and report
 *                        normalised execution time
 *   --stats              dump full statistics (text)
 *   --json               dump full statistics (JSON)
 *
 * Gang-scheduler (multiprogramming) options:
 *   --timeshare NAME     add another workload to time-share the machine
 *                        with --workload (repeatable); enables the gang
 *                        scheduler, each job in its own address space
 *   --cores N            cores to schedule across (default 4 when
 *                        time-sharing; raised to the widest job)
 *   --quantum CYCLES     scheduler time slice (default 50000)
 *   --no-gang            place multi-threaded jobs without gang
 *                        (slot-aligned) co-scheduling
 *   --no-migrate         disable load-balancing migration onto idle
 *                        cores
 *   --affinity           prefer migrating a job back onto the core that
 *                        last ran it (cache-affinity-aware migration)
 *   --sched-trace FILE   dump one CSV row per scheduling decision
 *                        (cycle,slot,core,job,thread,action) for
 *                        schedule visualisation
 *
 * Open-system server options (see src/sim/arrival.hh; no --workload —
 * jobs arrive continuously, run to a finite service demand and leave):
 *   --arrivals N         enable server mode: admit N jobs over the run
 *                        from a deterministic seeded arrival process,
 *                        then print sojourn/wait latency percentiles,
 *                        occupancy, throughput and deadline misses
 *   --arrival-pattern P  poisson (default) | burst
 *   --arrival-mean C     mean inter-arrival gap in cycles (default
 *                        40000); the load knob
 *   --arrival-seed S     arrival-schedule seed (default 1)
 *   --arrival-mix NAME   add NAME to the profile mix jobs draw from
 *                        (repeatable; default: a six-benchmark SPEC mix)
 *   --burst-size N       jobs per burst (burst pattern, default 4)
 *   --burst-spacing C    in-burst arrival spacing (default 200)
 *   --service-min N      min per-job service demand, committed
 *                        instructions (default 20000)
 *   --service-max N      max per-job service demand (default 60000)
 *   --deadline-factor F  per-job deadline = arrival + F * service
 *                        cycles; 0 = no deadlines (default)
 *   --max-weight W       per-job scheduler weight drawn from [1, W]
 *                        (weighted quanta; default 1 = all equal)
 *   --sleep-period N     every job sleeps after N commits (IO-wait
 *                        emulation; default 0 = never)
 *   --sleep-duration C   sleep length in cycles (default 0)
 *
 * Tracing & time-series options (see src/trace/):
 *   --trace FILE         record cycle-stamped events (context switches,
 *                        squashes, scheduler decisions, filter flushes,
 *                        spec-buffer clears, L2 misses, bus NACKs) and
 *                        export Chrome trace-event JSON — load FILE in
 *                        Perfetto (ui.perfetto.dev) or chrome://tracing
 *   --trace-csv FILE     same events as a flat cycle-ordered CSV
 *   --stats-interval N   sample the stat tree every N committed
 *                        instructions of the measured phase
 *   --stats-out FILE     write the interval time-series CSV
 *                        (cycle,instructions,ipc,<counter columns>)
 *
 * Checkpointing options (see src/snapshot/ and README "Checkpointing"):
 *   --snapshot-out FILE  save the warm machine (post-warmup, pre-stat-
 *                        reset) as a versioned snapshot
 *   --snapshot-in FILE   restore the warm machine from FILE instead of
 *                        running the warmup phase; the measured phase
 *                        is bit-identical to the monolithic run
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "common/checked_io.hh"
#include "common/log.hh"
#include "common/parse.hh"
#include "harness/job.hh"
#include "sim/arrival.hh"
#include "sim/json_stats.hh"
#include "sim/runner.hh"
#include "trace/chrome_trace.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace
{

using namespace mtrap;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: mtrap_sim --list | --workload NAME "
                 "[--scheme NAME] [--instructions N]\n"
                 "                 [--warmup N] [--seed S] "
                 "[--filter-size B] [--filter-assoc N]\n"
                 "                 [--baseline] [--stats] [--json] "
                 "[--reference-fetch]\n"
                 "                 [--timeshare NAME]... [--cores N] "
                 "[--quantum C]\n"
                 "                 [--no-gang] [--no-migrate] "
                 "[--affinity] [--sched-trace FILE]\n"
                 "                 [--trace FILE] [--trace-csv FILE]\n"
                 "                 [--stats-interval N] "
                 "[--stats-out FILE]\n"
                 "                 [--snapshot-out FILE] "
                 "[--snapshot-in FILE]\n"
                 "   or: mtrap_sim --arrivals N [--arrival-pattern P] "
                 "[--arrival-mean C]\n"
                 "                 [--arrival-seed S] "
                 "[--arrival-mix NAME]... [--burst-size N]\n"
                 "                 [--burst-spacing C] [--service-min N] "
                 "[--service-max N]\n"
                 "                 [--deadline-factor F] [--max-weight W]"
                 " [--sleep-period N]\n"
                 "                 [--sleep-duration C] plus scheme/"
                 "scheduler/trace options\n");
    std::exit(1);
}

/** Strict decimal parse; usage() (not abort) on junk like --seed abc. */
std::uint64_t
parseNumber(const std::string &s)
{
    std::uint64_t v;
    if (!parseU64(s, v))
        usage();
    return v;
}

/** Export whatever tracing/time-series outputs the flags asked for. */
void
writeTraceOutputs(System &sys, const StatSeries *series,
                  const std::string &trace_path,
                  const std::string &trace_csv_path,
                  const std::string &stats_out_path)
{
    const Tracer *t = sys.tracer();
    if (!trace_path.empty()) {
        CheckedOfstream f(trace_path, "chrome trace");
        writeChromeTrace(*t, series, f.stream());
        f.finish();
        std::printf("chrome trace (%llu events, %llu dropped) written "
                    "to %s\n",
                    static_cast<unsigned long long>(t->recordedCount()),
                    static_cast<unsigned long long>(t->droppedCount()),
                    trace_path.c_str());
    }
    if (!trace_csv_path.empty()) {
        CheckedOfstream f(trace_csv_path, "event CSV");
        writeTraceCsv(*t, f.stream());
        f.finish();
        std::printf("event CSV written to %s\n", trace_csv_path.c_str());
    }
    if (!stats_out_path.empty()) {
        CheckedOfstream f(stats_out_path, "stat time-series");
        series->writeCsv(f.stream());
        f.finish();
        std::printf("stat time-series (%zu intervals) written to %s\n",
                    series->rows().size(), stats_out_path.c_str());
    }
}

int
runTool(int argc, char **argv)
{
    using namespace mtrap;

    std::string workload_name;
    Scheme scheme = Scheme::MuonTrap;
    RunOptions opt; // defaults: kDefault{Warmup,Measure}Instructions
    std::uint64_t filter_size = 0;
    unsigned filter_assoc = 0;
    bool with_baseline = false, stats = false, json = false;
    std::vector<std::string> timeshare;
    unsigned cores = 0;
    SchedParams sched;
    std::string sched_trace_path;
    std::string trace_path, trace_csv_path, stats_out_path;
    bool server = false;
    ArrivalParams arrivals;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--list") {
            std::printf("SPEC-like workloads:\n");
            for (const std::string &n : specBenchmarkNames())
                std::printf("  %s\n", n.c_str());
            std::printf("Parsec-like workloads (4 threads):\n");
            for (const std::string &n : parsecBenchmarkNames())
                std::printf("  %s\n", n.c_str());
            std::printf("Schemes:\n");
            for (Scheme s : allSchemes())
                std::printf("  %s\n", schemeName(s));
            return 0;
        } else if (arg == "--workload") {
            workload_name = next();
        } else if (arg == "--scheme") {
            scheme = parseScheme(next());
        } else if (arg == "--instructions") {
            opt.measureInstructions = parseNumber(next());
        } else if (arg == "--warmup") {
            opt.warmupInstructions = parseNumber(next());
        } else if (arg == "--seed") {
            opt.seed = parseNumber(next());
        } else if (arg == "--reference-fetch") {
            // Reference-interpreter fetch path: identical results,
            // decode layer bypassed (debugging/measurement).
            opt.referenceFetch = true;
        } else if (arg == "--filter-size") {
            filter_size = parseNumber(next());
        } else if (arg == "--filter-assoc") {
            filter_assoc = static_cast<unsigned>(parseNumber(next()));
        } else if (arg == "--timeshare") {
            timeshare.push_back(next());
        } else if (arg == "--cores") {
            cores = static_cast<unsigned>(parseNumber(next()));
        } else if (arg == "--quantum") {
            sched.quantum = parseNumber(next());
        } else if (arg == "--no-gang") {
            sched.gang = false;
        } else if (arg == "--no-migrate") {
            sched.migrate = false;
        } else if (arg == "--affinity") {
            sched.affinity = true;
        } else if (arg == "--arrivals") {
            server = true;
            arrivals.jobs = parseNumber(next());
        } else if (arg == "--arrival-pattern") {
            const std::string p = next();
            if (p == "poisson")
                arrivals.pattern = ArrivalPattern::Poisson;
            else if (p == "burst")
                arrivals.pattern = ArrivalPattern::Burst;
            else
                usage();
        } else if (arg == "--arrival-mean") {
            arrivals.meanInterarrival = parseNumber(next());
        } else if (arg == "--arrival-seed") {
            arrivals.seed = parseNumber(next());
        } else if (arg == "--arrival-mix") {
            arrivals.profiles.push_back(next());
        } else if (arg == "--burst-size") {
            arrivals.burstSize =
                static_cast<unsigned>(parseNumber(next()));
        } else if (arg == "--burst-spacing") {
            arrivals.burstSpacing = parseNumber(next());
        } else if (arg == "--service-min") {
            arrivals.serviceMinCommits = parseNumber(next());
        } else if (arg == "--service-max") {
            arrivals.serviceMaxCommits = parseNumber(next());
        } else if (arg == "--deadline-factor") {
            arrivals.deadlineFactor =
                static_cast<unsigned>(parseNumber(next()));
        } else if (arg == "--max-weight") {
            arrivals.maxWeight =
                static_cast<unsigned>(parseNumber(next()));
        } else if (arg == "--sleep-period") {
            arrivals.sleepPeriodCommits = parseNumber(next());
        } else if (arg == "--sleep-duration") {
            arrivals.sleepDurationCycles = parseNumber(next());
        } else if (arg == "--sched-trace") {
            sched_trace_path = next();
            sched.trace = true;
        } else if (arg == "--trace") {
            trace_path = next();
            opt.trace = true;
        } else if (arg == "--trace-csv") {
            trace_csv_path = next();
            opt.trace = true;
        } else if (arg == "--stats-interval") {
            opt.statsInterval = parseNumber(next());
        } else if (arg == "--stats-out") {
            stats_out_path = next();
        } else if (arg == "--snapshot-out") {
            opt.snapshotOut = next();
        } else if (arg == "--snapshot-in") {
            opt.snapshotIn = next();
        } else if (arg == "--baseline") {
            with_baseline = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--json") {
            json = true;
        } else {
            usage();
        }
    }
    if (workload_name.empty() && !server)
        usage();
    if (!stats_out_path.empty() && !opt.statsInterval)
        fatal("--stats-out needs --stats-interval");
    if (!server && timeshare.empty() &&
        (cores || !sched.gang || !sched.migrate || sched.affinity
         || sched.trace))
        warn("scheduler flags have no effect without --timeshare");

    // Open-system server mode: no --workload, jobs come from the
    // arrival process and run to their service demands.
    if (server) {
        if (!workload_name.empty() || !timeshare.empty())
            fatal("--arrivals replaces --workload/--timeshare (jobs "
                  "come from the arrival process; shape the mix with "
                  "--arrival-mix)");

        SystemConfig cfg =
            SystemConfig::forScheme(scheme, cores ? cores : 4);
        if (filter_size)
            cfg.mem.mt.dataParams.sizeBytes = filter_size;
        if (filter_assoc)
            cfg.mem.mt.dataParams.assoc = filter_assoc;

        ServerRunOutput out =
            runServerConfigured(cfg, sched, arrivals, opt,
                                schemeName(scheme));
        std::printf("%s, %llu %s arrivals (mean gap %llu cycles) on "
                    "%u cores, quantum %llu:\n",
                    schemeName(scheme),
                    static_cast<unsigned long long>(arrivals.jobs),
                    arrivalPatternName(arrivals.pattern),
                    static_cast<unsigned long long>(
                        arrivals.meanInterarrival),
                    out.system->numCores(),
                    static_cast<unsigned long long>(sched.quantum));
        out.report.print(std::cout);

        const Scheduler *s = out.system->scheduler();
        std::printf("context switches %llu, migrations %llu, idle "
                    "slots %llu\n",
                    static_cast<unsigned long long>(s->switches()),
                    static_cast<unsigned long long>(s->migrations()),
                    static_cast<unsigned long long>(s->idleSlots()));
        if (!sched_trace_path.empty()) {
            CheckedOfstream f(sched_trace_path, "schedule trace");
            writeSchedTrace(*s, f.stream());
            f.finish();
            std::printf("schedule trace (%zu decisions) written to %s\n",
                        s->trace().size(), sched_trace_path.c_str());
        }
        writeTraceOutputs(*out.system, out.statSeries.get(), trace_path,
                          trace_csv_path, stats_out_path);

        if (with_baseline && scheme != Scheme::Baseline) {
            const ServerRunOutput base = runServerConfigured(
                SystemConfig::forScheme(Scheme::Baseline,
                                        cores ? cores : 4),
                sched, arrivals, opt, schemeName(Scheme::Baseline));
            if (base.report.sojournP95)
                std::printf("p95 sojourn vs scheduled baseline: %.3f\n",
                            static_cast<double>(out.report.sojournP95)
                                / static_cast<double>(
                                    base.report.sojournP95));
        }
        if (stats)
            out.system->dumpStats(std::cout);
        if (json)
            dumpStatsJson(out.system->root(), std::cout);
        return 0;
    }

    // Multiprogrammed path: gang-schedule the whole mix.
    if (!timeshare.empty()) {
        std::vector<Workload> mix;
        Asid asid = 1;
        mix.push_back(harness::buildNamedWorkload(workload_name,
                                                  opt.seed, asid++));
        for (const std::string &name : timeshare)
            mix.push_back(
                harness::buildNamedWorkload(name, opt.seed, asid++));

        SystemConfig mix_cfg =
            SystemConfig::forScheme(scheme, cores ? cores : 4);
        if (filter_size)
            mix_cfg.mem.mt.dataParams.sizeBytes = filter_size;
        if (filter_assoc)
            mix_cfg.mem.mt.dataParams.assoc = filter_assoc;

        RunOutput out = runMixConfigured(mix, mix_cfg, sched, opt,
                                         schemeName(scheme));
        const Scheduler *s = out.system->scheduler();
        std::printf("%s on %s (%u cores, quantum %llu): %llu cycles, "
                    "IPC %.3f\n",
                    schemeName(scheme), out.result.workload.c_str(),
                    out.system->numCores(),
                    static_cast<unsigned long long>(sched.quantum),
                    static_cast<unsigned long long>(out.result.cycles),
                    out.result.ipc);
        std::printf("context switches %llu, migrations %llu, idle "
                    "slots %llu\n",
                    static_cast<unsigned long long>(s->switches()),
                    static_cast<unsigned long long>(s->migrations()),
                    static_cast<unsigned long long>(s->idleSlots()));

        if (!sched_trace_path.empty()) {
            CheckedOfstream f(sched_trace_path, "schedule trace");
            writeSchedTrace(*s, f.stream());
            f.finish();
            std::printf("schedule trace (%zu decisions) written to %s\n",
                        s->trace().size(), sched_trace_path.c_str());
        }
        writeTraceOutputs(*out.system, out.statSeries.get(), trace_path,
                          trace_csv_path, stats_out_path);

        if (with_baseline) {
            const RunResult base =
                runMixScheme(mix, Scheme::Baseline,
                             out.system->numCores(), sched, opt);
            std::printf("normalised execution time vs scheduled "
                        "baseline: %.3f\n",
                        normalizedTime(out.result, base));
        }
        if (stats)
            out.system->dumpStats(std::cout);
        if (json)
            dumpStatsJson(out.system->root(), std::cout);
        return 0;
    }

    // --seed re-randomises both the synthetic program generation and
    // (via RunOptions::seed) the structure replacement seeds.
    const Workload w = harness::buildNamedWorkload(workload_name,
                                                   opt.seed);
    SystemConfig cfg = SystemConfig::forScheme(
        scheme, std::max(1u, w.threads()));
    if (filter_size)
        cfg.mem.mt.dataParams.sizeBytes = filter_size;
    if (filter_assoc)
        cfg.mem.mt.dataParams.assoc = filter_assoc;

    RunOutput out = runConfigured(w, cfg, opt, schemeName(scheme));
    std::printf("%s on %s: %llu cycles, IPC %.3f\n",
                schemeName(scheme), w.name.c_str(),
                static_cast<unsigned long long>(out.result.cycles),
                out.result.ipc);
    writeTraceOutputs(*out.system, out.statSeries.get(), trace_path,
                      trace_csv_path, stats_out_path);

    if (with_baseline) {
        const RunResult base = runScheme(w, Scheme::Baseline, opt);
        std::printf("normalised execution time vs baseline: %.3f\n",
                    normalizedTime(out.result, base));
    }
    if (stats)
        out.system->dumpStats(std::cout);
    if (json)
        dumpStatsJson(out.system->root(), std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Snapshot validation failures and checked-write errors surface as
    // exceptions; turn them into a clean nonzero exit with the message.
    try {
        return runTool(argc, argv);
    } catch (const std::exception &e) {
        mtrap::fatal("%s", e.what());
    }
}

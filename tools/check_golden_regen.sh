#!/usr/bin/env bash
# Golden regeneration idempotence check.
#
# Runs the golden regeneration (MTRAP_REGEN_GOLDEN=1) twice, each into
# its own temp directory via MTRAP_GOLDEN_DIR_OVERRIDE, and asserts:
#   1. the two regenerations are byte-identical file for file — regen
#      has no hidden state, run-order dependence or nondeterminism;
#   2. every regenerated file is byte-identical to the committed golden
#      in tests/golden/ — so "regen then commit" is a no-op on a clean
#      tree, and a drifted golden is caught even when the byte-compare
#      in golden_test itself was skipped or regenerated over.
#
# Usage: check_golden_regen.sh /path/to/golden_test
# The committed goldens are found relative to this script.
set -u
golden_test="${1:?usage: check_golden_regen.sh /path/to/golden_test}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
committed="$repo/tests/golden"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/a" "$tmp/b"

for dir in a b; do
    if ! MTRAP_REGEN_GOLDEN=1 MTRAP_GOLDEN_DIR_OVERRIDE="$tmp/$dir" \
         "$golden_test" > "$tmp/$dir.log" 2>&1; then
        echo "check_golden_regen: regeneration run '$dir' failed:"
        tail -20 "$tmp/$dir.log"
        exit 1
    fi
done

fail=0
shopt -s nullglob
first=("$tmp"/a/*.json)
if [ "${#first[@]}" -eq 0 ]; then
    echo "check_golden_regen: regeneration produced no JSON files"
    exit 1
fi

for f in "${first[@]}"; do
    name="$(basename "$f")"
    if ! cmp -s "$f" "$tmp/b/$name"; then
        echo "check_golden_regen: $name differs between two regens"
        fail=1
    fi
    if ! cmp -s "$f" "$committed/$name"; then
        echo "check_golden_regen: $name differs from committed golden"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "check_golden_regen: FAILED"
    exit 1
fi
echo "check_golden_regen: OK (${#first[@]} suites, two regens + committed all identical)"

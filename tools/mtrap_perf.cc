/**
 * @file
 * Simulator-throughput benchmark front end.
 *
 * Runs the fixed perf suite (1-core SPEC, 4-core PARSEC under
 * MuonTrap/InvisiSpec/STT, a scheduler context-switch workload, the
 * Spectre attack vignette), times every scenario, and writes BENCH.json
 * (schema "mtrap-bench-v1", see src/perf/perf_suite.hh).
 *
 * Usage:
 *   mtrap_perf [--out BENCH.json] [--quick] [--repeat N]
 *              [--instructions N] [--warmup N] [--scenario NAME]...
 *              [--compare OLD.json] [--threshold PCT]
 *   mtrap_perf --compare-only OLD.json NEW.json [--threshold PCT]
 *   mtrap_perf --list
 *
 * Options:
 *   --out FILE         write BENCH.json here ("-" = stdout; default
 *                      BENCH.json in the current directory)
 *   --quick            CI smoke preset: ~10x shorter runs, 1 repeat
 *   --repeat N         wall-time repeats per scenario (best-of-N)
 *   --instructions N   measured instructions per core per scenario
 *   --warmup N         warmup instructions per core
 *   --scenario NAME    run only the named scenario(s) (repeatable)
 *   --compare FILE     after the run, compare the fresh results against
 *                      FILE (a previous BENCH.json); exit nonzero when
 *                      the geomean throughput over common scenarios
 *                      regresses past the threshold or any scenario
 *                      errors — the CI regression gate
 *   --compare-only A B compare BENCH.json B (candidate) against A
 *                      (baseline) without running anything
 *   --threshold PCT    tolerated geomean regression (default 5)
 *   --list             print scenario names and exit
 *
 * Exit status is nonzero if any scenario fails or a comparison finds a
 * regression.
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/checked_io.hh"
#include "common/log.hh"
#include "common/parse.hh"
#include "perf/bench_compare.hh"
#include "perf/perf_suite.hh"

namespace
{

using namespace mtrap;
using namespace mtrap::perf;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: mtrap_perf [--out FILE] [--quick] [--repeat N]\n"
                 "                  [--instructions N] [--warmup N]\n"
                 "                  [--scenario NAME]...\n"
                 "                  [--compare OLD.json] "
                 "[--threshold PCT]\n"
                 "       mtrap_perf --compare-only OLD.json NEW.json\n"
                 "       mtrap_perf --list\n");
    std::exit(1);
}

std::uint64_t
parseNumber(const std::string &s, const char *flag)
{
    std::uint64_t v;
    if (!parseU64(s, v))
        fatal("%s wants a number, got '%s'", flag, s.c_str());
    return v;
}

/** Strict non-negative decimal parse (thresholds like "2.5"). */
double
parsePercent(const std::string &s, const char *flag)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (s.empty() || !end || *end != '\0' || v < 0.0)
        fatal("%s wants a non-negative percentage, got '%s'", flag,
              s.c_str());
    return v;
}

BenchFile
loadBenchFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    BenchFile f;
    std::string err;
    if (!parseBenchJson(buf.str(), f, err))
        fatal("%s: %s", path.c_str(), err.c_str());
    return f;
}

/** Run the gate; prints the report and returns the process exit code. */
int
runComparison(const BenchFile &baseline, const BenchFile &candidate,
              double threshold_pct)
{
    CompareOptions copt;
    copt.maxRegressPct = threshold_pct;
    const CompareReport rep = compareBench(baseline, candidate, copt);
    std::fputs(rep.text.c_str(), stderr);
    return rep.pass ? 0 : 1;
}

int
runTool(int argc, char **argv)
{
    // --quick selects the preset the other knobs start from, wherever
    // it appears on the line; explicit knobs then always win. So
    // "--repeat 3 --quick" == "--quick --repeat 3": the quick scales
    // with three repeats, and the emitted mode label matches the run.
    PerfOptions opt;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--quick")
            opt = PerfOptions::quickPreset();

    std::string out_path = "BENCH.json";
    std::vector<std::string> only;
    std::string compare_path;
    std::string compare_only_base, compare_only_cand;
    double threshold_pct = 5.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--list") {
            for (const PerfScenario &s : defaultScenarios())
                std::printf("%-40s %s\n", s.name.c_str(),
                            s.description.c_str());
            return 0;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--quick") {
            // handled in the pre-pass
        } else if (arg == "--repeat") {
            opt.repeats = static_cast<unsigned>(
                parseNumber(next(), "--repeat"));
        } else if (arg == "--instructions") {
            opt.measureInstructions =
                parseNumber(next(), "--instructions");
        } else if (arg == "--warmup") {
            opt.warmupInstructions = parseNumber(next(), "--warmup");
        } else if (arg == "--scenario") {
            only.push_back(next());
        } else if (arg == "--compare") {
            compare_path = next();
        } else if (arg == "--compare-only") {
            compare_only_base = next();
            compare_only_cand = next();
        } else if (arg == "--threshold") {
            threshold_pct = parsePercent(next(), "--threshold");
        } else {
            usage();
        }
    }
    if (opt.repeats == 0)
        fatal("--repeat wants at least 1");

    // Pure comparison mode: no simulation at all.
    if (!compare_only_base.empty())
        return runComparison(loadBenchFile(compare_only_base),
                             loadBenchFile(compare_only_cand),
                             threshold_pct);

    std::vector<PerfScenario> scenarios = defaultScenarios();
    if (!only.empty()) {
        std::vector<PerfScenario> filtered;
        for (const std::string &name : only) {
            bool found = false;
            for (PerfScenario &s : scenarios) {
                if (s.name == name) {
                    filtered.push_back(std::move(s));
                    found = true;
                    break;
                }
            }
            if (!found)
                fatal("unknown scenario '%s' (try --list)", name.c_str());
        }
        scenarios = std::move(filtered);
    }

    std::fprintf(stderr, "mtrap_perf: %zu scenario(s), %s mode, "
                         "%llu measured + %llu warmup instructions, "
                         "best of %u\n",
                 scenarios.size(), opt.quick ? "quick" : "full",
                 static_cast<unsigned long long>(opt.measureInstructions),
                 static_cast<unsigned long long>(opt.warmupInstructions),
                 opt.repeats);

    const std::vector<ScenarioResult> results =
        runScenarios(scenarios, opt, &std::cerr);

    if (out_path == "-") {
        writeBenchJson(results, opt, std::cout);
    } else {
        // Checked: a truncated BENCH.json would poison the CI
        // regression gate's baseline, so fail loudly instead.
        CheckedOfstream os(out_path, "bench results");
        writeBenchJson(results, opt, os.stream());
        os.finish();
        std::fprintf(stderr, "mtrap_perf: wrote %s\n", out_path.c_str());
    }

    bool ok = true;
    for (const ScenarioResult &r : results)
        ok = ok && r.ok;
    std::fprintf(stderr, "mtrap_perf: aggregate score %.1f kinst/s (%s)\n",
                 aggregateScoreKips(results), ok ? "ok" : "FAILED");

    if (!compare_path.empty()) {
        const int rc = runComparison(loadBenchFile(compare_path),
                                     benchFileFromResults(results),
                                     threshold_pct);
        if (rc != 0)
            return rc;
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runTool(argc, argv);
    } catch (const std::exception &e) {
        mtrap::fatal("%s", e.what());
    }
}

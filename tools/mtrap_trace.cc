/**
 * @file
 * Trace-file schema validator: checks that a Chrome trace-event JSON
 * file produced by mtrap_sim --trace (or a harness --trace-dir job)
 * satisfies the contract Perfetto and chrome://tracing rely on —
 * well-formed JSON, a traceEvents array, required fields per event,
 * non-decreasing timestamps within each (pid, tid) track. CI runs this
 * on a freshly produced trace so exporter regressions fail the build.
 *
 * Usage:
 *   mtrap_trace --validate FILE
 *
 * Exit status 0 when the file validates; 1 with a diagnostic on stderr
 * otherwise.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/chrome_trace.hh"

int
main(int argc, char **argv)
{
    if (argc != 3 || std::string(argv[1]) != "--validate") {
        std::fprintf(stderr, "usage: mtrap_trace --validate FILE\n");
        return 1;
    }
    const std::string path = argv[2];
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "mtrap_trace: cannot open %s\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << f.rdbuf();

    std::string err;
    if (!mtrap::validateChromeTrace(text.str(), err)) {
        std::fprintf(stderr, "mtrap_trace: %s: INVALID: %s\n",
                     path.c_str(), err.c_str());
        return 1;
    }
    std::printf("%s: OK\n", path.c_str());
    return 0;
}

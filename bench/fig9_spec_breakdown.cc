/**
 * @file
 * Figure 9 reproduction: cumulative cost breakdown on SPEC CPU2006 —
 * the same protection steps as figure 8 plus the parallel-L0/L1 lookup
 * option.
 *
 * Paper reference points: geomean ~1.04 for full MuonTrap; clear-on-
 * misspec pushes SPEC to ~1.11; parallel L0/L1 lookup recovers the
 * serial-lookup penalty, bringing the geomean to ~1.02.
 */

#include "bench_common.hh"

namespace
{

using namespace mtrap;

std::vector<std::pair<std::string, MuonTrapConfig>>
cumulativeSteps()
{
    std::vector<std::pair<std::string, MuonTrapConfig>> steps;

    MuonTrapConfig c = MuonTrapConfig::insecureL0();
    steps.emplace_back("insecure-L0", c);

    c.protectData = true;
    c.tlbFilter = true;
    c.dataParams.name = "fcache_d";
    steps.emplace_back("+fcache", c);

    c.protectCoherence = true;
    steps.emplace_back("+coherency", c);

    c.instFilter = true;
    c.instParams.name = "fcache_i";
    steps.emplace_back("+ifcache", c);

    c.commitPrefetch = true;
    steps.emplace_back("+prefetch", c);

    // Two variants on top of the full configuration.
    MuonTrapConfig clear = c;
    clear.clearOnMisspec = true;
    steps.emplace_back("+clear-misspec", clear);

    MuonTrapConfig par = c;
    par.parallelL0L1 = true;
    steps.emplace_back("parallel-L1D", par);

    return steps;
}

} // namespace

int
main()
{
    using namespace mtrap;
    using namespace mtrap::bench;

    const auto steps = cumulativeSteps();

    ReportTable t("Figure 9: cumulative protection cost on SPEC CPU2006");
    std::vector<std::string> hdr = {"benchmark"};
    for (const auto &[name, cfg] : steps)
        hdr.push_back(name);
    t.header(hdr);

    const RunOptions opt = figureRunOptions();
    for (const std::string &name : specBenchmarkNames()) {
        const Workload w = buildSpecWorkload(name);
        const RunResult base = runScheme(w, Scheme::Baseline, opt);
        std::vector<double> row;
        for (const auto &[step_name, mt] : steps) {
            SystemConfig cfg = SystemConfig::forScheme(Scheme::Baseline,
                                                       1);
            cfg.mem.mt = mt;
            row.push_back(normalizedTime(
                runConfigured(w, cfg, opt, step_name).result, base));
        }
        t.rowNumeric(name, row);
        std::fprintf(stderr, "fig9: %s done\n", name.c_str());
    }
    t.geomeanRow();
    emit(t);
    return 0;
}

/**
 * @file
 * Figure 9 reproduction: cumulative cost breakdown on SPEC CPU2006 —
 * the same protection steps as figure 8 plus the parallel-L0/L1 lookup
 * option.
 *
 * Paper reference points: geomean ~1.04 for full MuonTrap; clear-on-
 * misspec pushes SPEC to ~1.11; parallel L0/L1 lookup recovers the
 * serial-lookup penalty, bringing the geomean to ~1.02.
 *
 * Runs through the parallel experiment harness (see fig3/fig8).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return mtrap::bench::suiteMain("fig9", argc, argv);
}

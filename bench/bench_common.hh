/**
 * @file
 * Shared helpers for the figure-reproducing bench binaries: standard run
 * lengths, per-scheme sweeps and normalised-time tables.
 */

#ifndef MTRAP_BENCH_COMMON_HH
#define MTRAP_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sim/report.hh"
#include "sim/runner.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap::bench
{

/** Standard run lengths for figure benches (kept modest so the whole
 *  suite finishes in minutes on one core). */
inline RunOptions
figureRunOptions()
{
    RunOptions opt;
    opt.warmupInstructions = 30'000;
    opt.measureInstructions = 100'000;
    return opt;
}

/**
 * Run `w` under each scheme and return execution time normalised to
 * Scheme::Baseline.
 */
inline std::vector<double>
normalizedSweep(const Workload &w, const std::vector<Scheme> &schemes,
                const RunOptions &opt)
{
    const RunResult base = runScheme(w, Scheme::Baseline, opt);
    std::vector<double> out;
    out.reserve(schemes.size());
    for (Scheme s : schemes)
        out.push_back(normalizedTime(runScheme(w, s, opt), base));
    return out;
}

/** Emit the table as text and echo a CSV block for plotting. */
inline void
emit(const ReportTable &t)
{
    t.print(std::cout);
    std::printf("--- csv ---\n");
    t.printCsv(std::cout);
    std::printf("-----------\n");
}

} // namespace mtrap::bench

#endif // MTRAP_BENCH_COMMON_HH

/**
 * @file
 * Shared helpers for the figure-reproducing bench binaries: standard run
 * lengths and the harness-backed suite driver. Each bench binary is a
 * thin wrapper around one experiment suite (src/harness/suites.hh); the
 * tables it prints are identical to the old serial implementations, but
 * the (workload × scheme/config) runs fan out across a thread pool with
 * each baseline run exactly once.
 */

#ifndef MTRAP_BENCH_COMMON_HH
#define MTRAP_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/parse.hh"
#include "harness/suites.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap::bench
{

/** Standard run lengths for figure benches (the shared defaults: the
 *  whole suite finishes in minutes even on one core). */
inline RunOptions
figureRunOptions()
{
    RunOptions opt;
    opt.warmupInstructions = kDefaultWarmupInstructions;
    opt.measureInstructions = kDefaultMeasureInstructions;
    return opt;
}

/**
 * Serial single-workload sweep kept for tests/examples that want one
 * row without the pool: run `w` under each scheme and return execution
 * time normalised to Scheme::Baseline.
 */
inline std::vector<double>
normalizedSweep(const Workload &w, const std::vector<Scheme> &schemes,
                const RunOptions &opt)
{
    const RunResult base = runScheme(w, Scheme::Baseline, opt);
    std::vector<double> out;
    out.reserve(schemes.size());
    for (Scheme s : schemes)
        out.push_back(normalizedTime(runScheme(w, s, opt), base));
    return out;
}

/** Emit the table as text and echo a CSV block for plotting. */
inline void
emit(const ReportTable &t)
{
    t.print(std::cout);
    std::printf("--- csv ---\n");
    t.printCsv(std::cout);
    std::printf("-----------\n");
}

/**
 * Entry point shared by every figure bench binary: build the named
 * suite, run it on the pool and print the legacy table. Flags:
 *   --jobs N     worker threads (default: hardware concurrency)
 *   --seed S     deterministic re-randomisation (default 0 = legacy)
 */
inline int
suiteMain(const std::string &suite_name, int argc, char **argv)
{
    unsigned jobs = 0;
    std::uint64_t seed = 0;
    auto bad_usage = [&]() {
        std::fprintf(stderr, "usage: %s [--jobs N] [--seed S]\n",
                     argv[0]);
        std::exit(1);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                bad_usage();
            return argv[++i];
        };
        auto number = [&]() -> std::uint64_t {
            std::uint64_t v;
            if (!parseU64(next(), v))
                bad_usage();
            return v;
        };
        if (arg == "--jobs") {
            jobs = static_cast<unsigned>(number());
        } else if (arg == "--seed") {
            seed = number();
        } else {
            bad_usage();
        }
    }

    harness::ExperimentPool pool(jobs);
    const harness::Suite suite =
        harness::buildSuite(suite_name, figureRunOptions(), seed);
    return harness::runSuite(suite, pool, /*render_table=*/true,
                             /*store=*/nullptr);
}

} // namespace mtrap::bench

#endif // MTRAP_BENCH_COMMON_HH

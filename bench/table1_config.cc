/**
 * @file
 * Table 1 reproduction: print the simulated system configuration so it
 * can be diffed against the paper's table.
 */

#include <cstdio>

#include "sim/system.hh"

int
main()
{
    using namespace mtrap;
    const SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 4);
    const CoreParams &c = cfg.core;
    const MemSystemParams &m = cfg.mem;

    std::printf("== Table 1: Core and memory experimental setup ==\n\n");
    std::printf("Main cores\n");
    std::printf("  Core            %u-wide, out-of-order\n", c.fetchWidth);
    std::printf("  Pipeline        %u-entry ROB, %u-entry LQ, %u-entry "
                "SQ,\n                  %u int ALUs, %u FP ALUs, %u "
                "mult/div ALUs\n",
                c.robSize, c.lqSize, c.sqSize, c.intAlus, c.fpAlus,
                c.mulDivs);
    std::printf("  Tournament      %u-entry local, %u-entry global,\n"
                "  branch pred.    %u-entry chooser, %u-entry BTB, "
                "%u-entry RAS\n",
                c.bpred.localEntries, c.bpred.globalEntries,
                c.bpred.chooserEntries, c.bpred.btbEntries,
                c.bpred.rasEntries);
    std::printf("\nPrivate core memory\n");
    std::printf("  L1 ICache       %lluKiB, %u-way, %llu-cycle hit lat, "
                "%u MSHRs\n",
                static_cast<unsigned long long>(m.l1i.sizeBytes / 1024),
                m.l1i.assoc,
                static_cast<unsigned long long>(m.l1i.hitLatency),
                m.l1i.mshrs);
    std::printf("  L1 DCache       %lluKiB, %u-way, %llu-cycle hit lat, "
                "%u MSHRs\n",
                static_cast<unsigned long long>(m.l1d.sizeBytes / 1024),
                m.l1d.assoc,
                static_cast<unsigned long long>(m.l1d.hitLatency),
                m.l1d.mshrs);
    std::printf("  TLBs            %u-entry, fully associative, split "
                "I/D\n", m.dtlb.entries);
    std::printf("  Data fcache     %lluB, %u-way, %llu-cycle hit lat, "
                "%u MSHRs\n",
                static_cast<unsigned long long>(m.mt.dataParams.sizeBytes),
                m.mt.dataParams.assoc,
                static_cast<unsigned long long>(
                    m.mt.dataParams.hitLatency),
                m.mt.dataParams.mshrs);
    std::printf("  Inst fcache     %lluB, %u-way, %llu-cycle hit lat, "
                "%u MSHRs\n",
                static_cast<unsigned long long>(m.mt.instParams.sizeBytes),
                m.mt.instParams.assoc,
                static_cast<unsigned long long>(
                    m.mt.instParams.hitLatency),
                m.mt.instParams.mshrs);
    std::printf("  Filter TLB      %u-entry\n", m.mt.filterTlbEntries);
    std::printf("\nShared system state\n");
    std::printf("  L2 Cache        %lluMiB, %u-way, %llu-cycle hit lat, "
                "%u MSHRs, stride prefetcher\n",
                static_cast<unsigned long long>(m.l2.sizeBytes
                                                / (1024 * 1024)),
                m.l2.assoc,
                static_cast<unsigned long long>(m.l2.hitLatency),
                m.l2.mshrs);
    std::printf("  Memory          row hit %llu cycles / row miss %llu "
                "cycles, %u banks\n",
                static_cast<unsigned long long>(m.mem.rowHitLatency),
                static_cast<unsigned long long>(m.mem.rowMissLatency),
                m.mem.banks);
    std::printf("  Core count      %u cores\n", cfg.cores);
    return 0;
}

/**
 * @file
 * Figure 8 reproduction: cumulative cost breakdown on Parsec, adding
 * MuonTrap's protection mechanisms one at a time:
 *
 *   insecure L0 -> +fcache protections -> +coherency restrictions ->
 *   +instruction filter cache -> +commit-time prefetching ->
 *   +clear-on-misspeculate
 *
 * Paper reference points: the insecure L0 already speeds Parsec up; the
 * protections cost little on top; coherency restrictions only matter
 * for ferret/streamcluster; clear-on-misspec costs ~2% extra.
 *
 * The cumulative steps are defined once in src/harness/suites.cc
 * (shared with figure 9 and mtrap_batch); runs through the parallel
 * experiment harness (see fig3).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return mtrap::bench::suiteMain("fig8", argc, argv);
}

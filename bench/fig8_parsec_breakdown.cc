/**
 * @file
 * Figure 8 reproduction: cumulative cost breakdown on Parsec, adding
 * MuonTrap's protection mechanisms one at a time:
 *
 *   insecure L0 -> +fcache protections -> +coherency restrictions ->
 *   +instruction filter cache -> +commit-time prefetching ->
 *   +clear-on-misspeculate
 *
 * Paper reference points: the insecure L0 already speeds Parsec up; the
 * protections cost little on top; coherency restrictions only matter
 * for ferret/streamcluster; clear-on-misspec costs ~2% extra.
 */

#include "bench_common.hh"

namespace
{

using namespace mtrap;

/** The cumulative protection steps of figures 8/9. */
std::vector<std::pair<std::string, MuonTrapConfig>>
cumulativeSteps()
{
    std::vector<std::pair<std::string, MuonTrapConfig>> steps;

    MuonTrapConfig c = MuonTrapConfig::insecureL0();
    steps.emplace_back("insecure-L0", c);

    c.protectData = true;
    c.tlbFilter = true;
    c.dataParams.name = "fcache_d";
    steps.emplace_back("+fcache", c);

    c.protectCoherence = true;
    steps.emplace_back("+coherency", c);

    c.instFilter = true;
    c.instParams.name = "fcache_i";
    steps.emplace_back("+ifcache", c);

    c.commitPrefetch = true;
    steps.emplace_back("+prefetch", c);

    c.clearOnMisspec = true;
    steps.emplace_back("+clear-misspec", c);

    return steps;
}

} // namespace

int
main()
{
    using namespace mtrap;
    using namespace mtrap::bench;

    const auto steps = cumulativeSteps();

    ReportTable t("Figure 8: cumulative protection cost on Parsec");
    std::vector<std::string> hdr = {"benchmark"};
    for (const auto &[name, cfg] : steps)
        hdr.push_back(name);
    t.header(hdr);

    const RunOptions opt = figureRunOptions();
    for (const std::string &name : parsecBenchmarkNames()) {
        const Workload w = buildParsecWorkload(name);
        const RunResult base = runScheme(w, Scheme::Baseline, opt);
        std::vector<double> row;
        for (const auto &[step_name, mt] : steps) {
            SystemConfig cfg = SystemConfig::forScheme(Scheme::Baseline,
                                                       4);
            cfg.mem.mt = mt;
            row.push_back(normalizedTime(
                runConfigured(w, cfg, opt, step_name).result, base));
        }
        t.rowNumeric(name, row);
        std::fprintf(stderr, "fig8: %s done\n", name.c_str());
    }
    t.geomeanRow();
    emit(t);
    return 0;
}

/**
 * @file
 * Figure 7 reproduction: the proportion of committed stores whose
 * exclusive upgrade required a filter-cache invalidate broadcast, per
 * SPEC benchmark, under full MuonTrap.
 *
 * Paper reference point: typically rare (most stores already own their
 * line in a private cache), with spikes on streaming/write-heavy
 * workloads (bwaves, gcc, lbm, libquantum, mcf, zeusmp).
 *
 * Runs through the parallel experiment harness (see fig3); the bus
 * counters are captured by a per-job stats probe.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return mtrap::bench::suiteMain("fig7", argc, argv);
}

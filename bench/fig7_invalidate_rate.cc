/**
 * @file
 * Figure 7 reproduction: the proportion of committed stores whose
 * exclusive upgrade required a filter-cache invalidate broadcast, per
 * SPEC benchmark, under full MuonTrap.
 *
 * Paper reference point: typically rare (most stores already own their
 * line in a private cache), with spikes on streaming/write-heavy
 * workloads (bwaves, gcc, lbm, libquantum, mcf, zeusmp).
 */

#include "bench_common.hh"

#include "common/log.hh"

int
main()
{
    using namespace mtrap;
    using namespace mtrap::bench;

    ReportTable t("Figure 7: write filter-cache-invalidate rate (SPEC, "
                  "MuonTrap)");
    t.header({"benchmark", "invalidate_rate", "store_upgrades",
              "broadcasts"});

    const RunOptions opt = figureRunOptions();
    std::vector<double> rates;
    for (const std::string &name : specBenchmarkNames()) {
        const Workload w = buildSpecWorkload(name);
        RunOutput out = runConfigured(
            w, SystemConfig::forScheme(Scheme::MuonTrap, 1), opt,
            "MuonTrap");
        CoherenceBus &bus = out.system->mem().bus();
        const double rate = bus.writeFilterInvalidateRate.value();
        rates.push_back(rate);
        t.row({name, strfmt("%.3f", rate),
               strfmt("%llu", static_cast<unsigned long long>(
                                  bus.storeUpgrades.value())),
               strfmt("%llu", static_cast<unsigned long long>(
                                  bus.storeUpgradeBroadcasts.value()))});
        std::fprintf(stderr, "fig7: %s done\n", name.c_str());
    }
    double sum = 0;
    for (double r : rates)
        sum += r;
    t.row({"mean", strfmt("%.3f", sum / rates.size()), "-", "-"});
    emit(t);
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks of the library primitives: cache
 * lookup/fill, filter-cache flash clear (the constant-time claim of
 * §4.3), predictor prediction, bus snoops and whole-system stepping.
 * These measure the *simulator's* speed, useful for keeping the figure
 * benches fast.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "cpu/branch_predictor.hh"
#include "muontrap/filter_cache.hh"
#include "sim/runner.hh"
#include "workload/spec_profiles.hh"

namespace
{

using namespace mtrap;

void
BM_CacheLookupHit(benchmark::State &state)
{
    StatGroup g("g");
    Cache c(CacheParams{"c", 64 * 1024, 2, 2, 4}, &g);
    c.fill(0x1000, CoherState::Shared);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.lookup(0x1000));
}
BENCHMARK(BM_CacheLookupHit);

void
BM_CacheLookupMiss(benchmark::State &state)
{
    StatGroup g("g");
    Cache c(CacheParams{"c", 64 * 1024, 2, 2, 4}, &g);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.lookup(0x123456));
}
BENCHMARK(BM_CacheLookupMiss);

void
BM_CacheFillEvict(benchmark::State &state)
{
    StatGroup g("g");
    Cache c(CacheParams{"c", 2048, 4, 1, 4}, &g);
    Addr a = 0;
    for (auto _ : state) {
        c.fill(a, CoherState::Shared);
        a += kLineBytes;
    }
}
BENCHMARK(BM_CacheFillEvict);

void
BM_FilterFlashClear(benchmark::State &state)
{
    // The flash clear must not scale with occupancy: benchmarked at
    // both extremes (arg 0 = empty, arg 1 = full).
    StatGroup g("g");
    FilterCache f(FilterCacheParams{}, &g);
    const bool full = state.range(0) != 0;
    for (auto _ : state) {
        state.PauseTiming();
        if (full) {
            for (Addr a = 0; a < 32 * kLineBytes; a += kLineBytes)
                f.fillVirt(1, 0x1000 + a, 0x9000 + a, true, 1, false);
        }
        state.ResumeTiming();
        f.flashClear();
    }
}
BENCHMARK(BM_FilterFlashClear)->Arg(0)->Arg(1);

void
BM_FilterLookupVirt(benchmark::State &state)
{
    StatGroup g("g");
    FilterCache f(FilterCacheParams{}, &g);
    f.fillVirt(1, 0x1000, 0x9000, true, 1, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.lookupVirt(1, 0x1000, 0x9000));
}
BENCHMARK(BM_FilterLookupVirt);

void
BM_BranchPredict(benchmark::State &state)
{
    StatGroup g("g");
    BranchPredictor bp(BranchPredictorParams{}, &g);
    Addr pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.predictDirection(pc));
        bp.trainDirection(pc, (pc & 3) != 0);
        ++pc;
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_SystemStep(benchmark::State &state)
{
    // Whole-simulator throughput: instructions per second of simulation.
    const Workload w = buildSpecWorkload("hmmer");
    SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 1);
    System sys(cfg);
    sys.loadWorkload(w);
    sys.run(10'000); // warm
    for (auto _ : state)
        sys.run(100);
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SystemStep);

} // namespace

BENCHMARK_MAIN();

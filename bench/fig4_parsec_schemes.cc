/**
 * @file
 * Figure 4 reproduction: normalised execution time on the Parsec-like
 * suite (4 threads / 4 cores) for MuonTrap vs InvisiSpec and STT.
 *
 * Paper reference points: MuonTrap geomean ~0.95 (a *speedup*);
 * InvisiSpec up to ~2x slowdown; STT-Spectre ~1.18, STT-Future ~1.38.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mtrap;
    using namespace mtrap::bench;

    const std::vector<Scheme> schemes = {
        Scheme::MuonTrap,
        Scheme::InvisiSpecSpectre,
        Scheme::InvisiSpecFuture,
        Scheme::SttSpectre,
        Scheme::SttFuture,
    };

    ReportTable t("Figure 4: Parsec normalised execution time (4 threads)");
    std::vector<std::string> hdr = {"benchmark"};
    for (Scheme s : schemes)
        hdr.push_back(schemeName(s));
    t.header(hdr);

    const RunOptions opt = figureRunOptions();
    for (const std::string &name : parsecBenchmarkNames()) {
        const Workload w = buildParsecWorkload(name);
        t.rowNumeric(name, normalizedSweep(w, schemes, opt));
        std::fprintf(stderr, "fig4: %s done\n", name.c_str());
    }
    t.geomeanRow();
    emit(t);
    return 0;
}

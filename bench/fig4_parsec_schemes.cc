/**
 * @file
 * Figure 4 reproduction: normalised execution time on the Parsec-like
 * suite (4 threads / 4 cores) for MuonTrap vs InvisiSpec and STT.
 *
 * Paper reference points: MuonTrap geomean ~0.95 (a *speedup*);
 * InvisiSpec up to ~2x slowdown; STT-Spectre ~1.18, STT-Future ~1.38.
 *
 * Runs through the parallel experiment harness (see fig3).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return mtrap::bench::suiteMain("fig4", argc, argv);
}

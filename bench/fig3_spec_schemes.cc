/**
 * @file
 * Figure 3 reproduction: normalised execution time on the SPEC
 * CPU2006-like suite for MuonTrap vs InvisiSpec-Spectre/Future and
 * STT-Spectre/Future (lower is better; 1.0 = unprotected baseline).
 *
 * Paper reference points: MuonTrap geomean ~1.04 (worst case bwaves
 * ~1.47); InvisiSpec-Spectre ~1.097; InvisiSpec-Future ~1.185; STT low
 * on compute-bound workloads but high on astar/omnetpp-like ones.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mtrap;
    using namespace mtrap::bench;

    const std::vector<Scheme> schemes = {
        Scheme::MuonTrap,
        Scheme::InvisiSpecSpectre,
        Scheme::InvisiSpecFuture,
        Scheme::SttSpectre,
        Scheme::SttFuture,
    };

    ReportTable t("Figure 3: SPEC CPU2006 normalised execution time");
    std::vector<std::string> hdr = {"benchmark"};
    for (Scheme s : schemes)
        hdr.push_back(schemeName(s));
    t.header(hdr);

    const RunOptions opt = figureRunOptions();
    for (const std::string &name : specBenchmarkNames()) {
        const Workload w = buildSpecWorkload(name);
        t.rowNumeric(name, normalizedSweep(w, schemes, opt));
        std::fprintf(stderr, "fig3: %s done\n", name.c_str());
    }
    t.geomeanRow();
    emit(t);
    return 0;
}

/**
 * @file
 * Figure 3 reproduction: normalised execution time on the SPEC
 * CPU2006-like suite for MuonTrap vs InvisiSpec-Spectre/Future and
 * STT-Spectre/Future (lower is better; 1.0 = unprotected baseline).
 *
 * Paper reference points: MuonTrap geomean ~1.04 (worst case bwaves
 * ~1.47); InvisiSpec-Spectre ~1.097; InvisiSpec-Future ~1.185; STT low
 * on compute-bound workloads but high on astar/omnetpp-like ones.
 *
 * Runs through the parallel experiment harness: `--jobs N` shards the
 * (benchmark × scheme) runs across N worker threads; each benchmark's
 * baseline is run exactly once.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return mtrap::bench::suiteMain("fig3", argc, argv);
}

/**
 * @file
 * Figure 5 reproduction: normalised execution time on Parsec when
 * sweeping the (fully associative) data filter-cache size from 64 B to
 * 4096 B.
 *
 * Paper reference points: some benchmarks are fine with a single line;
 * streamcluster/freqmine blow up below 256 B; all slowdowns vanish by
 * 4 lines (256 B); 2048 B gives a ~6.9% average speedup.
 *
 * Runs through the parallel experiment harness (see fig3).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return mtrap::bench::suiteMain("fig5", argc, argv);
}

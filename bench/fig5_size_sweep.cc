/**
 * @file
 * Figure 5 reproduction: normalised execution time on Parsec when
 * sweeping the (fully associative) data filter-cache size from 64 B to
 * 4096 B.
 *
 * Paper reference points: some benchmarks are fine with a single line;
 * streamcluster/freqmine blow up below 256 B; all slowdowns vanish by
 * 4 lines (256 B); 2048 B gives a ~6.9% average speedup.
 */

#include "bench_common.hh"

#include "common/log.hh"

int
main()
{
    using namespace mtrap;
    using namespace mtrap::bench;

    const std::vector<std::uint64_t> sizes = {64,  128,  256, 512,
                                              1024, 2048, 4096};

    ReportTable t("Figure 5: filter-cache size sweep (fully assoc., "
                  "Parsec)");
    std::vector<std::string> hdr = {"benchmark"};
    for (std::uint64_t s : sizes)
        hdr.push_back(strfmt("%lluB", static_cast<unsigned long long>(s)));
    t.header(hdr);

    const RunOptions opt = figureRunOptions();
    for (const std::string &name : parsecBenchmarkNames()) {
        const Workload w = buildParsecWorkload(name);
        const RunResult base = runScheme(w, Scheme::Baseline, opt);
        std::vector<double> row;
        for (std::uint64_t size : sizes) {
            SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap,
                                                       4);
            cfg.mem.mt.dataParams.sizeBytes = size;
            cfg.mem.mt.dataParams.assoc =
                static_cast<unsigned>(size / kLineBytes); // fully assoc.
            const RunResult r =
                runConfigured(w, cfg, opt,
                              strfmt("fc%llu",
                                     static_cast<unsigned long long>(
                                         size)))
                    .result;
            row.push_back(normalizedTime(r, base));
        }
        t.rowNumeric(name, row);
        std::fprintf(stderr, "fig5: %s done\n", name.c_str());
    }
    t.geomeanRow();
    emit(t);
    return 0;
}

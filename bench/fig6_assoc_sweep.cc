/**
 * @file
 * Figure 6 reproduction: normalised execution time on Parsec when
 * varying the associativity of the 2048 B filter cache from
 * direct-mapped to fully associative (32-way).
 *
 * Paper reference point: conflict misses hurt some benchmarks at low
 * associativity; 4-way is chosen as the sweet spot.
 */

#include "bench_common.hh"

#include "common/log.hh"

int
main()
{
    using namespace mtrap;
    using namespace mtrap::bench;

    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16, 32};

    ReportTable t("Figure 6: filter-cache associativity sweep (2048 B, "
                  "Parsec)");
    std::vector<std::string> hdr = {"benchmark"};
    for (unsigned a : assocs)
        hdr.push_back(strfmt("%u-way", a));
    t.header(hdr);

    const RunOptions opt = figureRunOptions();
    for (const std::string &name : parsecBenchmarkNames()) {
        const Workload w = buildParsecWorkload(name);
        const RunResult base = runScheme(w, Scheme::Baseline, opt);
        std::vector<double> row;
        for (unsigned assoc : assocs) {
            SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap,
                                                       4);
            cfg.mem.mt.dataParams.sizeBytes = 2048;
            cfg.mem.mt.dataParams.assoc = assoc;
            const RunResult r =
                runConfigured(w, cfg, opt, strfmt("a%u", assoc)).result;
            row.push_back(normalizedTime(r, base));
        }
        t.rowNumeric(name, row);
        std::fprintf(stderr, "fig6: %s done\n", name.c_str());
    }
    t.geomeanRow();
    emit(t);
    return 0;
}

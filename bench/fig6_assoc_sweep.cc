/**
 * @file
 * Figure 6 reproduction: normalised execution time on Parsec when
 * varying the associativity of the 2048 B filter cache from
 * direct-mapped to fully associative (32-way).
 *
 * Paper reference point: conflict misses hurt some benchmarks at low
 * associativity; 4-way is chosen as the sweet spot.
 *
 * Runs through the parallel experiment harness (see fig3).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return mtrap::bench::suiteMain("fig6", argc, argv);
}

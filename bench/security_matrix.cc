/**
 * @file
 * Security matrix: run all six paper attacks (plus the Spectre-v2 BTB
 * injection variant) against every scheme and print which leak.
 * Complements the gtest suite with a human-readable summary (the
 * paper's qualitative security claims, §4/§5).
 *
 * Each (scheme × attack) choreography is one harness job, so the whole
 * matrix fans out across `--jobs N` worker threads. The headline
 * property is asserted after the table: every attack leaks on the
 * baseline and is blocked by MuonTrap — exit nonzero otherwise so
 * CI-style use fails.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return mtrap::bench::suiteMain("security", argc, argv);
}

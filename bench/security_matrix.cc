/**
 * @file
 * Security matrix: run all six paper attacks against every scheme and
 * print which leak. Complements the gtest suite with a human-readable
 * summary (the paper's qualitative security claims, §4/§5).
 */

#include <cstdio>
#include <iostream>

#include "sim/report.hh"
#include "workload/attacks.hh"

int
main()
{
    using namespace mtrap;

    const std::vector<Scheme> schemes = {
        Scheme::Baseline,
        Scheme::InsecureL0,
        Scheme::MuonTrap,
        Scheme::MuonTrapClearMisspec,
    };

    ReportTable t("Security matrix: LEAK = secret recovered via timing");
    std::vector<std::string> hdr = {"attack"};
    for (Scheme s : schemes)
        hdr.push_back(schemeName(s));
    t.header(hdr);

    // Collect per scheme first (each runAllAttacks builds its systems).
    std::vector<std::vector<AttackOutcome>> results;
    for (Scheme s : schemes) {
        results.push_back(runAllAttacks(s));
        std::fprintf(stderr, "security: %s done\n", schemeName(s));
    }

    for (std::size_t a = 0; a < results[0].size(); ++a) {
        std::vector<std::string> row = {results[0][a].attack};
        for (std::size_t s = 0; s < schemes.size(); ++s)
            row.push_back(results[s][a].leaked ? "LEAK" : "blocked");
        t.row(row);
    }
    t.print(std::cout);

    // The headline property: every attack leaks on the baseline and is
    // blocked by MuonTrap. Exit nonzero otherwise so CI-style use fails.
    bool ok = true;
    for (std::size_t a = 0; a < results[0].size(); ++a) {
        ok &= results[0][a].leaked;          // Baseline leaks
        ok &= !results[2][a].leaked;         // MuonTrap blocks
        ok &= !results[3][a].leaked;         // ...with clear-on-misspec
    }
    std::printf("\n%s\n", ok ? "PASS: baseline leaks every attack; MuonTrap "
                               "blocks every attack"
                             : "FAIL: unexpected leak matrix");
    return ok ? 0 : 1;
}

/**
 * @file
 * Security matrix: run all eleven attack choreographies (the six paper
 * attacks, the Spectre-v2 BTB injection variant, and the cross-core
 * bus-covert / prefetch-covert / L2 prime+probe / speculative-store
 * channels) against the seven matrix schemes and print which leak.
 * Complements the gtest suite with a human-readable summary (the
 * paper's qualitative security claims, §4/§5).
 *
 * Each (scheme × attack) choreography is one harness job, so the whole
 * matrix fans out across `--jobs N` worker threads. The headline
 * property is asserted after the table: every cell matches its declared
 * expected outcome (see tests/security/matrix_test.cc) — exit nonzero
 * otherwise so CI-style use fails.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return mtrap::bench::suiteMain("security", argc, argv);
}

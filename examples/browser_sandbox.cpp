/**
 * @file
 * Within-process sandbox scenario (paper §4.9): a "browser" process
 * hosts untrusted sandboxed code. MuonTrap clears the filter caches at
 * sandbox boundaries via SandboxEnter/SandboxExit (a flush instruction
 * behind a non-speculation barrier), so sandboxed code cannot observe
 * the host's speculative footprint — even though it shares the host's
 * address space and no kernel-level protection applies.
 *
 * The host runs a classic Spectre-v1 gadget: a bounds-checked array read
 * whose out-of-bounds (speculative) execution touches probe page 0 or 1
 * depending on a secret bit. The sandboxed code then times both pages:
 *  - Baseline: the secret-selected page sits in the L1 -> fast -> leak.
 *  - MuonTrap: it only ever reached the filter cache, which the sandbox
 *    entry flushed -> both pages slow -> no leak.
 */

#include <cstdio>

#include "sim/system.hh"

int
main()
{
    using namespace mtrap;

    constexpr Asid kProc = 1;
    constexpr Addr kArray = 0x70'0000'0000ull;
    constexpr Addr kProbe = 0x71'0000'0000ull;
    constexpr Addr kBoundPP = 0x72'0000'0000ull;
    constexpr Addr kBoundP = 0x73'0000'0000ull;
    constexpr std::int64_t kBound = 64;
    constexpr std::int64_t kSecretIndex = 128;

    for (Scheme s : {Scheme::Baseline, Scheme::MuonTrap}) {
        System sys(SystemConfig::forScheme(s, 1));
        MemSystem &mem = sys.mem();
        mem.write(kProc, kBoundPP, kBoundP);
        mem.write(kProc, kBoundP, static_cast<std::uint64_t>(kBound));
        for (std::int64_t i = 0; i < kBound; i += 8)
            mem.write(kProc, kArray + static_cast<Addr>(i), 0);
        mem.write(kProc, kArray + kSecretIndex, 1); // the secret bit

        // Host gadget: bounds-checked array read; the secret selects a
        // probe page on the speculative path; then the sandbox entry.
        ProgramBuilder hb("host");
        hb.movi(21, static_cast<std::int64_t>(kBoundPP));
        hb.load(3, 21, 0);
        hb.load(3, 3, 0);              // dependent (slow) bound
        hb.braUge("done", 1, 3);
        hb.movi(20, static_cast<std::int64_t>(kArray));
        hb.load(4, 20, 0, 1, 0);       // array[r1] (secret when OOB)
        hb.andi(5, 4, 1);
        hb.shli(5, 5, 12);
        hb.movi(22, static_cast<std::int64_t>(kProbe));
        hb.load(6, 22, 0, 5, 0);       // touch probe[bit]
        hb.label("done");
        hb.sandboxEnter();             // MuonTrap: filter flush here
        hb.halt();
        const Program host = hb.take();

        Core &core = sys.core(0);
        auto run_host = [&](std::uint64_t r1) {
            ArchContext ctx;
            ctx.program = &host;
            ctx.asid = kProc;
            ctx.regs[1] = r1;
            core.setContext(ctx);
            core.run(1'000'000);
            core.drain();
        };
        // Train the bounds check with in-bounds inputs (touches probe
        // page 0 architecturally — the attack reads page 1).
        for (std::uint64_t i = 0; i < 64; i += 8)
            run_host(i);

        // The sandboxed code evicts the host's bound chain by conflict
        // (same L1/L2 sets) so the malicious run gets a long speculation
        // window. It shares the address space, so it just scans for
        // virtual lines whose physical set matches.
        {
            AddressSpace &vm = mem.addressSpace();
            // Matching the L2 set (4096 sets) also matches the L1 set
            // (512 sets: its index bits are a subset).
            auto l2set = [&vm, kProc](Addr v) {
                return (vm.translate(kProc, v) >> 6) & 4095;
            };
            ProgramBuilder eb("sandbox_evict");
            for (Addr target : {kBoundPP, kBoundP}) {
                unsigned found = 0;
                for (Addr cand = 0x60'0000'0000ull;
                     found < 12 && cand < 0x61'0000'0000ull;
                     cand += kLineBytes) {
                    if (l2set(cand) != l2set(target))
                        continue;
                    eb.movi(2, static_cast<std::int64_t>(cand));
                    eb.load(3, 2, 0);
                    ++found;
                }
            }
            eb.halt();
            const Program evict = eb.take();
            ArchContext ctx;
            ctx.program = &evict;
            ctx.asid = kProc;
            core.setContext(ctx);
            core.run(2'000'000);
            core.drain();
        }

        // Malicious run: out-of-bounds index.
        run_host(static_cast<std::uint64_t>(kSecretIndex));

        // "Sandboxed code" probes the secret-selected page (same
        // process, same page tables — only MuonTrap's flush stands in
        // the way).
        const Cycle t1 = sys.mem().timeProbe(0, kProc,
                                             kProbe + 4096);
        std::printf("%-22s sandbox probe of probe[secret=1] page: "
                    "%3llu cycles -> %s\n",
                    schemeName(s), static_cast<unsigned long long>(t1),
                    t1 < 60 ? "LEAK (secret bit = 1 recovered)"
                            : "blocked (filter flushed at sandbox entry)");
    }
    return 0;
}

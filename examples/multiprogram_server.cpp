/**
 * @file
 * Multi-programmed server scenario: several processes time-share one
 * core under a quantum scheduler while other cores run a parallel
 * workload. Shows the cost of MuonTrap's context-switch filter flushes
 * in a realistic consolidation setting, plus the per-component
 * statistics a performance engineer would inspect.
 *
 * Usage: multiprogram_server [quantum_cycles] (default 50000)
 */

#include <cstdio>
#include <string>

#include "sim/scheduler.hh"
#include "sim/system.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

int
main(int argc, char **argv)
{
    using namespace mtrap;

    const Cycle quantum = argc > 1 ? std::stoull(argv[1]) : 50'000;
    std::printf("Quantum: %llu cycles\n\n",
                static_cast<unsigned long long>(quantum));

    for (Scheme s : {Scheme::Baseline, Scheme::MuonTrap}) {
        System sys(SystemConfig::forScheme(s, 2));

        // Core 0 time-shares three processes; core 1 runs a streaming
        // thread of its own.
        const Workload w1 = buildSpecWorkload("gcc");
        const Workload w2 = buildSpecWorkload("hmmer");
        const Workload w3 = buildSpecWorkload("povray");
        const Workload bg = buildSpecWorkload("libquantum");
        for (const Workload *w : {&w1, &w2, &w3, &bg})
            if (w->init)
                w->init(sys.mem());

        Scheduler sched(&sys.core(0), quantum);
        sched.addTask(&w1.threadPrograms[0], 1);
        sched.addTask(&w2.threadPrograms[0], 2);
        sched.addTask(&w3.threadPrograms[0], 3);

        ArchContext bg_ctx;
        bg_ctx.program = &bg.threadPrograms[0];
        bg_ctx.asid = 4;
        sys.core(1).setContext(bg_ctx);

        // Interleave: run the scheduler in slices while the background
        // core catches up.
        std::uint64_t done = 0;
        while (done < 300'000) {
            done += sched.run(20'000);
            while (!sys.core(1).halted() &&
                   sys.core(1).now() < sys.core(0).now())
                sys.core(1).stepOne();
        }

        const Cycle cycles = sys.core(0).lastCommitCycle();
        std::printf("%-22s: %9llu cycles for 300k scheduled instrs, "
                    "%llu switches, %llu filter flushes\n",
                    schemeName(s),
                    static_cast<unsigned long long>(cycles),
                    static_cast<unsigned long long>(sched.switches()),
                    static_cast<unsigned long long>(
                        sys.mem().muontrap(0).flushCtxSwitch.value()));
    }

    std::printf("\nThe filter flush is constant-time, so MuonTrap's "
                "context-switch cost stays\nbounded even at small "
                "quanta (try: multiprogram_server 5000).\n");
    return 0;
}

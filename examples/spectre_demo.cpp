/**
 * @file
 * Spectre attack demo: runs the paper's six attack vignettes against a
 * chosen scheme and prints per-attack timing evidence — the probe
 * latencies an attacker would measure and the bit it recovers.
 *
 * Usage: spectre_demo [scheme]   (default: compares Baseline vs MuonTrap)
 *   scheme ∈ {Baseline, Insecure-L0, MuonTrap, MuonTrap-ClearMisspec, ...}
 */

#include <cstdio>
#include <string>

#include "workload/attacks.hh"

namespace
{

void
runSuite(mtrap::Scheme scheme)
{
    using namespace mtrap;
    std::printf("--- %s ---\n", schemeName(scheme));
    std::printf("%-24s %-8s %-11s %-11s %s\n", "attack", "leaked?",
                "probe0(cyc)", "probe1(cyc)", "recovered (secret=0/1)");
    for (const AttackOutcome &o : runAllAttacks(scheme)) {
        std::printf("%-24s %-8s %-11llu %-11llu %u / %u\n",
                    o.attack.c_str(), o.leaked ? "LEAK" : "blocked",
                    static_cast<unsigned long long>(o.probe0Time),
                    static_cast<unsigned long long>(o.probe1Time),
                    o.recovered0, o.recovered1);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtrap;

    std::printf("MuonTrap attack suite: six speculative side-channel "
                "attacks from the paper.\n");
    std::printf("probe0/probe1 are attacker-measured access times for "
                "the secret=0 / secret=1 target\nlines in the secret=1 "
                "run; a fast probe1 reveals the victim's speculative "
                "access.\n\n");

    if (argc > 1) {
        runSuite(parseScheme(argv[1]));
        return 0;
    }
    runSuite(Scheme::Baseline);
    runSuite(Scheme::MuonTrap);
    std::printf("Every attack that leaks on the unprotected baseline is "
                "blocked by MuonTrap.\n");
    return 0;
}

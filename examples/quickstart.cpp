/**
 * @file
 * Quickstart: build a Table-1 system, run one SPEC-like workload under
 * the unprotected baseline and under full MuonTrap, and print the
 * normalised execution time plus the key filter-cache statistics.
 *
 * Usage: quickstart [benchmark] (default: povray)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/runner.hh"
#include "workload/spec_profiles.hh"

int
main(int argc, char **argv)
{
    using namespace mtrap;

    const std::string bench = argc > 1 ? argv[1] : "povray";
    std::printf("MuonTrap quickstart: workload '%s'\n\n", bench.c_str());

    const Workload w = buildSpecWorkload(bench);

    RunOptions opt;
    const RunResult base = runScheme(w, Scheme::Baseline, opt);
    std::printf("  %-20s %10llu cycles  (IPC %.2f)\n", "Baseline",
                static_cast<unsigned long long>(base.cycles), base.ipc);

    // Keep the MuonTrap system alive so we can inspect its stats.
    RunOutput mt = runConfigured(
        w, SystemConfig::forScheme(Scheme::MuonTrap, 1), opt, "MuonTrap");
    std::printf("  %-20s %10llu cycles  (IPC %.2f)\n", "MuonTrap",
                static_cast<unsigned long long>(mt.result.cycles),
                mt.result.ipc);
    std::printf("\n  normalised execution time: %.3f (1.0 = baseline)\n\n",
                normalizedTime(mt.result, base));

    auto &fc = *mt.system->mem().muontrap(0).dataFilter();
    std::printf("  data filter cache: %llu hits, %llu misses, "
                "%llu speculative fills, %llu uncommitted evictions\n",
                static_cast<unsigned long long>(fc.hits.value()),
                static_cast<unsigned long long>(fc.misses.value()),
                static_cast<unsigned long long>(
                    fc.speculativeFills.value()),
                static_cast<unsigned long long>(
                    fc.uncommittedEvictions.value()));
    std::printf("  commit write-throughs: %llu, SE upgrades: %llu, "
                "coherence NACKs: %llu\n",
                static_cast<unsigned long long>(
                    mt.system->mem().commitWriteThroughs.value()),
                static_cast<unsigned long long>(
                    mt.system->mem().seUpgradeRequests.value()),
                static_cast<unsigned long long>(
                    mt.system->mem().bus().nacks.value()));

    std::printf("\nFull statistics dump:\n\n");
    mt.system->dumpStats(std::cout);
    return 0;
}

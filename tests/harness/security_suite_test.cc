/**
 * @file
 * Harness-level tests for the `--suite security` matrix: the suite
 * warns (rather than silently ignoring) when --seed or --instructions
 * are passed, its artifact is byte-identical regardless of the seed
 * value, and the artifact is worker-count invariant (the attack
 * choreographies and their stat metrics are deterministic under the
 * pool).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/pool.hh"
#include "harness/result_store.hh"
#include "harness/suites.hh"
#include "workload/attacks.hh"

namespace mtrap::harness
{
namespace
{

/** Serialise one pool run of the security suite (artifact bytes). */
std::string
securitySuiteJson(unsigned workers, const RunOptions &opt = {},
                  std::uint64_t seed = 0)
{
    const Suite suite = buildSuite("security", opt, seed);
    ExperimentPool pool(workers);
    ResultStore store;
    const int rc = runSuite(suite, pool, /*render_table=*/false, &store);
    EXPECT_EQ(rc, 0);
    std::ostringstream os;
    store.writeJson(os);
    return os.str();
}

TEST(SecuritySuite, WarnsWhenSeedIsIgnored)
{
    ::testing::internal::CaptureStderr();
    const Suite s = buildSuite("security", RunOptions{}, /*seed=*/7);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_FALSE(s.jobs.empty());
    EXPECT_NE(err.find("security suite ignores --seed"),
              std::string::npos)
        << "stderr was: " << err;
}

TEST(SecuritySuite, WarnsWhenInstructionsAreIgnored)
{
    RunOptions opt;
    opt.measureInstructions = 1234;
    ::testing::internal::CaptureStderr();
    const Suite s = buildSuite("security", opt, /*seed=*/0);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_FALSE(s.jobs.empty());
    EXPECT_NE(err.find("security suite ignores --instructions"),
              std::string::npos)
        << "stderr was: " << err;
}

TEST(SecuritySuite, NoWarnOnDefaultOptions)
{
    ::testing::internal::CaptureStderr();
    const Suite s = buildSuite("security", RunOptions{}, /*seed=*/0);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_FALSE(s.jobs.empty());
    EXPECT_EQ(err.find("security suite ignores"), std::string::npos)
        << "stderr was: " << err;
}

TEST(SecuritySuite, MatrixCoversAllDeclaredCells)
{
    const Suite s = buildSuite("security", RunOptions{}, /*seed=*/0);
    // >= 8 attacks x 7 schemes, column-major.
    EXPECT_EQ(s.jobs.size(), 11u * securityMatrixSchemes().size());
}

TEST(SecuritySuite, ArtifactIgnoresSeedValue)
{
    // The attacks are fixed choreographies: --seed must not perturb a
    // single byte of the artifact.
    ::testing::internal::CaptureStderr(); // swallow the seed warn
    const std::string seed0 = securitySuiteJson(2, RunOptions{}, 0);
    const std::string seed7 = securitySuiteJson(2, RunOptions{}, 7);
    ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(seed0, seed7);
}

TEST(SecuritySuite, ArtifactIsThreadCountInvariant)
{
    // Attack outcomes and their stat metrics must be byte-identical no
    // matter how many workers ran the matrix.
    const std::string one = securitySuiteJson(1);
    const std::string two = securitySuiteJson(2);
    const std::string four = securitySuiteJson(4);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, four);
}

} // namespace
} // namespace mtrap::harness

/**
 * @file
 * Tests for the parallel experiment harness: thread-count invariance
 * (the determinism contract), shard coverage, sweep expansion, per-job
 * seeding, cancellation, and ResultStore serialisation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

#include "harness/pool.hh"
#include "harness/result_store.hh"
#include "harness/suites.hh"
#include "harness/sweep.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap::harness
{
namespace
{

RunOptions
quick()
{
    RunOptions opt;
    opt.warmupInstructions = 2'000;
    opt.measureInstructions = 6'000;
    return opt;
}

std::vector<JobSpec>
smallSweep(std::uint64_t seed = 0)
{
    return SweepBuilder("test")
        .options(quick())
        .seed(seed)
        .workloads({"bzip2", "povray"})
        .withBaseline()
        .schemes({Scheme::MuonTrap, Scheme::SttSpectre})
        .build();
}

TEST(SweepBuilder, ScheduledMixJobsAreThreadCountInvariant)
{
    SchedParams sp;
    sp.quantum = 3'000;
    const std::vector<JobSpec> jobs =
        SweepBuilder("schedtest")
            .options(quick())
            .schedule(sp, /*cores=*/2)
            .mixRow("mix", {"bzip2", "povray", "hmmer"})
            .withBaseline()
            .schemes({Scheme::MuonTrap})
            .build();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_TRUE(jobs[0].scheduled);

    ExperimentPool serial(1), parallel(4);
    const std::vector<JobResult> a = serial.run(jobs);
    const std::vector<JobResult> b = parallel.run(jobs);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].ok) << a[i].error;
        EXPECT_TRUE(b[i].ok) << b[i].error;
        EXPECT_EQ(a[i].run.cycles, b[i].run.cycles);
        EXPECT_EQ(a[i].run.workload, "bzip2+povray+hmmer");
    }
}

TEST(SweepBuilder, MixRowWithoutScheduleIsRejected)
{
    SweepBuilder b("bad");
    b.options(quick())
        .mixRow("mix", {"bzip2", "povray"})
        .schemes({Scheme::MuonTrap});
    EXPECT_DEATH((void)b.build(), "needs schedule");
}

TEST(SweepBuilder, ExpandsRowMajorWithBaselineFirst)
{
    const std::vector<JobSpec> jobs = smallSweep();
    ASSERT_EQ(jobs.size(), 6u); // 2 rows x (baseline + 2 schemes)

    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);

    EXPECT_EQ(jobs[0].row, "bzip2");
    EXPECT_EQ(jobs[0].kind, "baseline");
    EXPECT_EQ(jobs[1].col, "MuonTrap");
    EXPECT_EQ(jobs[2].col, "STT-Spectre");
    EXPECT_EQ(jobs[3].row, "povray");
    EXPECT_EQ(jobs[3].kind, "baseline");

    // Unseeded sweeps must reproduce legacy results: job seeds stay 0.
    for (const JobSpec &j : jobs)
        EXPECT_EQ(j.opt.seed, 0u);
}

TEST(SweepBuilder, SeededSweepGetsDistinctPerJobSeeds)
{
    const std::vector<JobSpec> jobs = smallSweep(1234);
    std::set<std::uint64_t> seeds;
    for (const JobSpec &j : jobs) {
        EXPECT_NE(j.opt.seed, 0u);
        seeds.insert(j.opt.seed);
    }
    EXPECT_EQ(seeds.size(), jobs.size()); // all distinct

    // And the derivation is deterministic.
    const std::vector<JobSpec> again = smallSweep(1234);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].opt.seed, again[i].opt.seed);
}

TEST(ExperimentPool, EightWorkersMatchOneWorkerExactly)
{
    const std::vector<JobSpec> jobs = smallSweep();

    ExperimentPool serial(1), parallel(8);
    const std::vector<JobResult> a = serial.run(jobs);
    const std::vector<JobResult> b = parallel.run(jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].ok);
        EXPECT_TRUE(b[i].ok);
        EXPECT_EQ(a[i].index, b[i].index);
        EXPECT_EQ(a[i].row, b[i].row);
        EXPECT_EQ(a[i].col, b[i].col);
        EXPECT_EQ(a[i].run.cycles, b[i].run.cycles) << a[i].row << "/"
                                                    << a[i].col;
        EXPECT_EQ(a[i].run.ipc, b[i].run.ipc);
    }
}

TEST(ExperimentPool, ShardsPartitionTheJobListExactly)
{
    const std::vector<JobSpec> jobs = smallSweep();
    const unsigned m = 3;

    std::set<std::size_t> seen;
    std::size_t total = 0;
    for (unsigned shard = 0; shard < m; ++shard) {
        const std::vector<JobSpec> mine = shardJobs(jobs, shard, m);
        total += mine.size();
        for (const JobSpec &j : mine)
            EXPECT_TRUE(seen.insert(j.index).second)
                << "job " << j.index << " in two shards";
    }
    EXPECT_EQ(total, jobs.size()); // every job exactly once
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_TRUE(seen.count(i)) << "job " << i << " in no shard";

    // Global indices survive sharding (so artifacts merge).
    const std::vector<JobSpec> shard1 = shardJobs(jobs, 1, m);
    ASSERT_FALSE(shard1.empty());
    EXPECT_EQ(shard1[0].index, 1u);
}

TEST(ExperimentPool, FirstFailureCancelsUnstartedJobs)
{
    std::vector<JobSpec> jobs;
    for (std::size_t i = 0; i < 5; ++i) {
        JobSpec j;
        j.index = i;
        j.suite = "cancel";
        j.row = "job" + std::to_string(i);
        j.custom = [i](const JobSpec &) -> JobResult {
            if (i == 1)
                throw std::runtime_error("boom");
            return {};
        };
        jobs.push_back(std::move(j));
    }

    // One worker => deterministic: job0 runs, job1 fails, 2..4 never
    // start and come back cancelled.
    ExperimentPool pool(1);
    const std::vector<JobResult> rs = pool.run(jobs);
    ASSERT_EQ(rs.size(), 5u);
    EXPECT_TRUE(rs[0].ok);
    EXPECT_FALSE(rs[1].ok);
    EXPECT_NE(rs[1].error.find("boom"), std::string::npos);
    for (std::size_t i = 2; i < 5; ++i) {
        EXPECT_FALSE(rs[i].ok);
        EXPECT_EQ(rs[i].error, "cancelled");
    }
}

TEST(ExperimentPool, ProgressFiresOncePerJob)
{
    const std::vector<JobSpec> jobs = smallSweep();
    ExperimentPool pool(4);
    std::set<std::size_t> done;
    pool.run(jobs, [&](const JobResult &r) {
        EXPECT_TRUE(done.insert(r.index).second);
    });
    EXPECT_EQ(done.size(), jobs.size());
}

TEST(ResultStore, SerialisationIsDeterministicAndSorted)
{
    const std::vector<JobSpec> jobs = smallSweep();
    ExperimentPool pool(8);

    ResultStore s1, s2;
    s1.addAll(pool.run(jobs));
    // Add in reverse order the second time: sorting must normalise it.
    std::vector<JobResult> rs = pool.run(jobs);
    for (auto it = rs.rbegin(); it != rs.rend(); ++it)
        s2.add(*it);

    EXPECT_TRUE(s1.allOk());
    std::ostringstream j1, j2, c1, c2;
    s1.writeJson(j1);
    s2.writeJson(j2);
    s1.writeCsv(c1);
    s2.writeCsv(c2);
    EXPECT_EQ(j1.str(), j2.str());
    EXPECT_EQ(c1.str(), c2.str());
    EXPECT_NE(j1.str().find("\"cycles\""), std::string::npos);
    EXPECT_EQ(c1.str().rfind("suite,index,row,col,kind,", 0), 0u);

    // Submission order in the artifact, regardless of insertion order.
    const std::vector<JobResult> &sorted = s2.sorted();
    for (std::size_t i = 0; i < sorted.size(); ++i)
        EXPECT_EQ(sorted[i].index, i);
}

TEST(ResultStore, CsvQuotesHostileFieldsPerRfc4180)
{
    ResultStore s;
    JobResult r;
    r.index = 0;
    r.suite = "fig,il";                    // embedded comma
    r.row = "say \"hi\"";                  // embedded quotes
    r.col = "two\nlines";                  // embedded newline
    r.kind = "run";
    r.run.workload = "name,with,commas";
    r.run.configName = "cfg\"quoted\"";
    r.run.cycles = 7;
    r.run.instructionsPerCore = 3;
    r.run.ipc = 0.5;
    r.note = "note, with \"both\"\r\n";
    r.metrics["k,ey"] = 1.0;
    s.add(std::move(r));

    std::ostringstream os;
    s.writeCsv(os);
    const std::string csv = os.str();

    // Header + one (logical) record; the record's embedded newlines are
    // inside quotes.
    EXPECT_EQ(csv.rfind("suite,index,row,col,kind,", 0), 0u);
    EXPECT_NE(csv.find("\"fig,il\",0"), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
    EXPECT_NE(csv.find("\"two\nlines\""), std::string::npos);
    EXPECT_NE(csv.find("\"name,with,commas\""), std::string::npos);
    EXPECT_NE(csv.find("\"cfg\"\"quoted\"\"\""), std::string::npos);
    EXPECT_NE(csv.find("\"note, with \"\"both\"\"\r\n\""),
              std::string::npos);
    EXPECT_NE(csv.find("\"k,ey=1\""), std::string::npos);

    // A well-behaved record still serialises unquoted.
    ResultStore clean;
    JobResult c;
    c.suite = "fig3";
    c.row = "mcf";
    c.col = "MuonTrap";
    c.kind = "run";
    c.run.workload = "mcf";
    c.run.configName = "MuonTrap";
    clean.add(std::move(c));
    std::ostringstream cs;
    clean.writeCsv(cs);
    EXPECT_EQ(cs.str().find('"'), std::string::npos);
}

TEST(Suites, EverySuiteBuildsAndFig4Renders)
{
    for (const std::string &name : suiteNames()) {
        const Suite s = buildSuite(name, quick());
        EXPECT_EQ(s.name, name);
        EXPECT_FALSE(s.jobs.empty()) << name;
        EXPECT_TRUE(s.render != nullptr) << name;
    }

    // End to end on the cheapest real figure: run fig4 restricted to
    // two rows by rebuilding an equivalent sweep, then render.
    Suite fig4 = buildSuite("fig4", quick());
    const std::size_t per_row = 6; // baseline + 5 schemes
    fig4.jobs.resize(2 * per_row); // first two benchmarks only
    ExperimentPool pool(4);
    const std::vector<JobResult> rs = pool.run(fig4.jobs);
    for (const JobResult &r : rs)
        EXPECT_TRUE(r.ok) << r.error;

    // Rendering needs all rows; check normalisation manually instead.
    const JobResult &base = rs[0];
    const JobResult &mt = rs[1];
    EXPECT_EQ(base.kind, "baseline");
    EXPECT_GT(base.run.cycles, 0u);
    EXPECT_GT(mt.run.cycles, 0u);
}

// ------------------------------------------------------- server suite

/** Serialise one pool run of the server suite (artifact bytes). */
std::string
serverSuiteJson(unsigned workers, const SuiteRunOptions &run_opt = {})
{
    const Suite suite = buildSuite("server", quick());
    ExperimentPool pool(workers);
    ResultStore store;
    const int rc = runSuite(suite, pool, /*render_table=*/false, &store,
                            run_opt);
    EXPECT_EQ(rc, 0);
    std::ostringstream os;
    store.writeJson(os);
    return os.str();
}

TEST(ServerSuite, ArtifactIsThreadCountInvariant)
{
    // The open-system determinism contract at the harness level: the
    // arrival schedules, percentiles and the serialised artifact are
    // byte-identical no matter how many workers ran the jobs.
    const std::string one = serverSuiteJson(1);
    const std::string two = serverSuiteJson(2);
    const std::string four = serverSuiteJson(4);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, four);
}

TEST(ServerSuite, ResumeProducesByteIdenticalArtifact)
{
    const std::string oneshot = serverSuiteJson(1);

    // First attempt: run only a prefix of the suite, recording results
    // in a manifest (simulating a killed shard).
    const std::string manifest =
        ::testing::TempDir() + "server_resume.manifest";
    std::remove(manifest.c_str());
    {
        Suite partial = buildSuite("server", quick());
        partial.jobs.resize(partial.jobs.size() / 2);
        ExperimentPool pool(2);
        SuiteRunOptions ro;
        ro.resumeManifest = manifest;
        EXPECT_EQ(runSuite(partial, pool, false, nullptr, ro), 0);
    }

    // Second attempt: the full suite against the same manifest runs
    // only the missing jobs; the merged artifact must match the
    // uninterrupted run byte for byte.
    SuiteRunOptions ro;
    ro.resumeManifest = manifest;
    const std::string resumed = serverSuiteJson(2, ro);
    EXPECT_EQ(resumed, oneshot);
    std::remove(manifest.c_str());
}

TEST(Seeding, SeededRunsAreReproducible)
{
    EXPECT_EQ(jobSeed(0, 17), 0u);
    EXPECT_NE(jobSeed(5, 0), jobSeed(5, 1));
    EXPECT_NE(jobSeed(5, 0), jobSeed(6, 0));
    EXPECT_EQ(jobSeed(5, 3), jobSeed(5, 3));

    JobSpec j;
    j.row = "bzip2";
    j.workload = [] { return buildNamedWorkload("bzip2", 99); };
    j.cfg = SystemConfig::forScheme(Scheme::MuonTrap, 1);
    j.opt = quick();
    j.opt.seed = 99;
    const JobResult a = runJob(j);
    const JobResult b = runJob(j);
    EXPECT_TRUE(a.ok);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
}

} // namespace
} // namespace mtrap::harness

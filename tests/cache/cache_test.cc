/**
 * @file
 * Unit tests for the generic cache: geometry, lookup/fill/evict,
 * replacement policies (including parameterised policy sweeps) and MSHR
 * accounting.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace mtrap
{
namespace
{

CacheParams
smallCache(unsigned size_bytes = 1024, unsigned assoc = 2,
           ReplPolicy repl = ReplPolicy::Lru)
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = size_bytes;
    p.assoc = assoc;
    p.hitLatency = 2;
    p.mshrs = 2;
    p.repl = repl;
    return p;
}

TEST(Cache, GeometryComputed)
{
    StatGroup g("g");
    Cache c(smallCache(1024, 2), &g);
    EXPECT_EQ(c.numSets(), 8u);   // 1024 / (2 * 64)
    EXPECT_EQ(c.numWays(), 2u);
}

TEST(Cache, MissThenHit)
{
    StatGroup g("g");
    Cache c(smallCache(), &g);
    EXPECT_EQ(c.lookup(0x1000), nullptr);
    c.fill(0x1000, CoherState::Shared);
    CacheLine *l = c.lookup(0x1000);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, CoherState::Shared);
    EXPECT_EQ(l->ptag, lineNum(0x1000));
}

TEST(Cache, LookupMatchesWholeLine)
{
    StatGroup g("g");
    Cache c(smallCache(), &g);
    c.fill(0x1000, CoherState::Shared);
    // Any byte within the same 64B line hits.
    EXPECT_NE(c.lookup(0x1004), nullptr);
    EXPECT_NE(c.lookup(0x103f), nullptr);
    EXPECT_EQ(c.lookup(0x1040), nullptr);
}

TEST(Cache, PeekDoesNotTouchReplacement)
{
    StatGroup g("g");
    Cache c(smallCache(1024, 2), &g);
    // Two lines in the same set (set stride = 8 sets * 64B = 512B).
    c.fill(0x0000, CoherState::Shared);
    c.fill(0x0200, CoherState::Shared);
    // Make 0x0000 the LRU victim, then peek it many times: peeks must
    // not refresh it.
    c.lookup(0x0200);
    for (int i = 0; i < 10; ++i)
        c.peek(0x0000);
    Eviction ev;
    c.fill(0x0400, CoherState::Shared, &ev);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.ptag, lineNum(0x0000));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    StatGroup g("g");
    Cache c(smallCache(1024, 2), &g);
    c.fill(0x0000, CoherState::Shared);
    c.fill(0x0200, CoherState::Shared);
    c.lookup(0x0000); // refresh way 0
    Eviction ev;
    c.fill(0x0400, CoherState::Shared, &ev);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.ptag, lineNum(0x0200));
    EXPECT_NE(c.peek(0x0000), nullptr);
    EXPECT_EQ(c.peek(0x0200), nullptr);
}

TEST(Cache, FifoIgnoresTouches)
{
    StatGroup g("g");
    Cache c(smallCache(1024, 2, ReplPolicy::Fifo), &g);
    c.fill(0x0000, CoherState::Shared);
    c.fill(0x0200, CoherState::Shared);
    c.lookup(0x0000); // touch does not matter for FIFO
    Eviction ev;
    c.fill(0x0400, CoherState::Shared, &ev);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.ptag, lineNum(0x0000)); // first in, first out
}

TEST(Cache, RefillUpdatesStateWithoutEviction)
{
    StatGroup g("g");
    Cache c(smallCache(), &g);
    c.fill(0x1000, CoherState::Shared);
    Eviction ev;
    CacheLine &l = c.fill(0x1000, CoherState::Modified, &ev);
    EXPECT_FALSE(ev.valid);
    EXPECT_EQ(l.state, CoherState::Modified);
    EXPECT_EQ(c.validLineCount(), 1u);
}

TEST(Cache, InvalidateSpecificLine)
{
    StatGroup g("g");
    Cache c(smallCache(), &g);
    c.fill(0x1000, CoherState::Exclusive);
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000));
    EXPECT_EQ(c.peek(0x1000), nullptr);
    EXPECT_EQ(c.invalidations.value(), 1u);
}

TEST(Cache, InvalidateAllClearsEverything)
{
    StatGroup g("g");
    Cache c(smallCache(), &g);
    for (Addr a = 0; a < 16 * kLineBytes; a += kLineBytes)
        c.fill(a, CoherState::Shared);
    EXPECT_EQ(c.validLineCount(), 16u);
    c.invalidateAll();
    EXPECT_EQ(c.validLineCount(), 0u);
}

TEST(Cache, EvictionReportsDirtyState)
{
    StatGroup g("g");
    Cache c(smallCache(1024, 2), &g);
    CacheLine &l = c.fill(0x0000, CoherState::Modified);
    l.dirty = true;
    c.fill(0x0200, CoherState::Shared);
    c.lookup(0x0200);
    c.lookup(0x0200);
    Eviction ev;
    c.fill(0x0400, CoherState::Shared, &ev);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.state, CoherState::Modified);
}

TEST(Cache, ForEachLineVisitsValidOnly)
{
    StatGroup g("g");
    Cache c(smallCache(), &g);
    c.fill(0x0000, CoherState::Shared);
    c.fill(0x1000, CoherState::Shared);
    c.invalidate(0x0000);
    unsigned count = 0;
    c.forEachLine([&count](CacheLine &) { ++count; });
    EXPECT_EQ(count, 1u);
}

TEST(Cache, LazySetInitIsInvisibleToProbes)
{
    // Line storage is constructed per set on first fill; probes of
    // untouched sets must miss exactly like probes of initialised-but-
    // empty sets, and whole-cache walks must see only filled lines.
    StatGroup g("g");
    Cache c(smallCache(64 * 1024, 2), &g); // 512 sets, mostly untouched
    EXPECT_EQ(c.validLineCount(), 0u);
    EXPECT_EQ(c.lookup(0x0000), nullptr);
    EXPECT_EQ(c.peek(0xbeef00), nullptr);

    // Touch two sets out of 512.
    c.fill(0x1000, CoherState::Shared);
    c.fill(0x2040, CoherState::Modified);
    EXPECT_EQ(c.validLineCount(), 2u);
    unsigned visited = 0;
    c.forEachLine([&visited](CacheLine &l) {
        EXPECT_TRUE(l.valid());
        ++visited;
    });
    EXPECT_EQ(visited, 2u);

    // Sibling way of a touched set is properly default-initialised.
    c.fill(0x1000 + 512 * 64, CoherState::Shared); // same set, 2nd way
    EXPECT_EQ(c.validLineCount(), 3u);

    c.invalidateAll();
    EXPECT_EQ(c.validLineCount(), 0u);
    EXPECT_EQ(c.invalidations.value(), 3u);
}

TEST(Cache, MshrContentionAddsDelay)
{
    StatGroup g("g");
    Cache c(smallCache(), &g); // 2 MSHRs
    EXPECT_EQ(c.reserveMshr(0x0000, 100, 50), 0u);
    EXPECT_EQ(c.reserveMshr(0x1000, 100, 50), 0u);
    // Third concurrent miss (distinct line) at t=100 must wait for the
    // earliest slot (frees at 150).
    EXPECT_EQ(c.reserveMshr(0x2000, 100, 50), 50u);
    EXPECT_EQ(c.mshrStalls.value(), 1u);
}

TEST(Cache, MshrFreesOverTime)
{
    StatGroup g("g");
    Cache c(smallCache(), &g);
    c.reserveMshr(0x0000, 0, 10);
    c.reserveMshr(0x1000, 0, 10);
    // At t=20 both slots are free again.
    EXPECT_EQ(c.reserveMshr(0x2000, 20, 10), 0u);
}

TEST(Cache, MshrMergesSameLineMisses)
{
    StatGroup g("g");
    Cache c(smallCache(), &g); // 2 MSHRs
    EXPECT_EQ(c.reserveMshr(0x0000, 100, 50), 0u);
    // A second miss to the same line merges: no slot, no stall, and the
    // data arrives with the first fill (t=150 -> 20 extra cycles for a
    // request issued at t=130 expecting 0 base latency... expressed as
    // delay on top of the caller's miss latency).
    EXPECT_EQ(c.reserveMshr(0x0008, 100, 50), 0u);
    EXPECT_EQ(c.mshrMerges.value(), 1u);
    EXPECT_EQ(c.mshrStalls.value(), 0u);
    // Both real slots still free for other lines.
    EXPECT_EQ(c.reserveMshr(0x1000, 100, 50), 0u);
    EXPECT_EQ(c.mshrStalls.value(), 0u);
}

TEST(Cache, MshrMergeArrivalMatchesFirstFill)
{
    StatGroup g("g");
    Cache c(smallCache(), &g);
    c.reserveMshr(0x0000, 100, 50); // fill arrives at 150
    // Merged request at t=120 with base latency 10 would finish at 130
    // on its own; it must be delayed to the shared arrival at 150.
    EXPECT_EQ(c.reserveMshr(0x0000, 120, 10), 20u);
}

TEST(Cache, StatsCountFills)
{
    StatGroup g("g");
    Cache c(smallCache(1024, 2), &g);
    c.fill(0x0000, CoherState::Shared);
    c.fill(0x0200, CoherState::Shared);
    c.fill(0x0400, CoherState::Shared); // evicts
    EXPECT_EQ(c.fills.value(), 3u);
    EXPECT_EQ(c.evictions.value(), 1u);
}

TEST(CacheDeath, FillInvalidPanics)
{
    StatGroup g("g");
    Cache c(smallCache(), &g);
    EXPECT_DEATH(c.fill(0x1000, CoherState::Invalid), "Invalid");
}

// --- parameterised replacement-policy properties ---------------------------

class ReplacementPolicyTest
    : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(ReplacementPolicyTest, VictimIsAlwaysInSet)
{
    StatGroup g("g");
    Cache c(smallCache(2048, 4, GetParam()), &g);
    // Fill far beyond capacity; every fill must succeed and the cache
    // must never exceed its capacity.
    for (Addr a = 0; a < 256 * kLineBytes; a += kLineBytes) {
        c.fill(a, CoherState::Shared);
        EXPECT_LE(c.validLineCount(), 32u);
    }
    EXPECT_EQ(c.validLineCount(), 32u);
}

TEST_P(ReplacementPolicyTest, HitAfterFillAlwaysWorks)
{
    StatGroup g("g");
    Cache c(smallCache(2048, 4, GetParam()), &g);
    for (Addr a = 0; a < 64 * kLineBytes; a += kLineBytes) {
        c.fill(a, CoherState::Shared);
        EXPECT_NE(c.lookup(a), nullptr)
            << "line just filled must be present";
    }
}

TEST_P(ReplacementPolicyTest, WorkingSetWithinCapacityNeverEvicts)
{
    StatGroup g("g");
    Cache c(smallCache(2048, 4, GetParam()), &g);
    // 8 sets * 4 ways; touch 8 distinct sets x 4 tags = exactly full.
    for (unsigned tag = 0; tag < 4; ++tag)
        for (unsigned set = 0; set < 8; ++set)
            c.fill((tag * 8 + set) * 64, CoherState::Shared);
    EXPECT_EQ(c.evictions.value(), 0u);
    EXPECT_EQ(c.validLineCount(), 32u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementPolicyTest,
                         ::testing::Values(ReplPolicy::Lru,
                                           ReplPolicy::Fifo,
                                           ReplPolicy::Random,
                                           ReplPolicy::TreePlru),
                         [](const auto &info) {
                             return std::string(
                                 replPolicyName(info.param)) == "tree-plru"
                                        ? "TreePlru"
                                        : replPolicyName(info.param);
                         });

TEST(TreePlru, RequiresPow2Ways)
{
    StatGroup g("g");
    CacheParams p = smallCache(192 * 64, 3, ReplPolicy::TreePlru);
    EXPECT_EXIT(Cache(p, &g), ::testing::ExitedWithCode(1),
                "power-of-two");
}

TEST(TreePlru, RecentlyTouchedSurvives)
{
    StatGroup g("g");
    Cache c(smallCache(512, 8, ReplPolicy::TreePlru), &g);
    // One set (512 = 1 set x 8 ways x 64B).
    for (unsigned i = 0; i < 8; ++i)
        c.fill(i * 64, CoherState::Shared);
    c.lookup(0);     // protect way holding line 0
    Eviction ev;
    c.fill(8 * 64, CoherState::Shared, &ev);
    ASSERT_TRUE(ev.valid);
    EXPECT_NE(ev.ptag, lineNum(0));
}

} // namespace
} // namespace mtrap

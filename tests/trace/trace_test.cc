/**
 * @file
 * Tracing + interval time-series properties:
 *  - ring buffers drop oldest on overflow and count drops in the
 *    trace.dropped stat (truncation is detectable, never silent);
 *  - traces are deterministic: same seed => byte-identical Chrome JSON
 *    across repeated runs and across harness thread counts;
 *  - tracing is a pure observation: a traced run's cycles and stats
 *    (minus the trace group itself) equal the untraced run's;
 *  - interval stat sampling sums exactly to the end-of-run aggregates
 *    and leaves the run itself unchanged;
 *  - the Chrome trace-event exporter satisfies its own validator, and
 *    the validator rejects malformed/backwards traces.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/job.hh"
#include "harness/pool.hh"
#include "sim/runner.hh"
#include "trace/chrome_trace.hh"
#include "trace/stats_series.hh"
#include "trace/trace.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{
namespace
{

RunOptions
shortRun()
{
    RunOptions opt;
    opt.warmupInstructions = 2'000;
    opt.measureInstructions = 10'000;
    return opt;
}

std::vector<Workload>
shortMix()
{
    return {buildWorkload(specProfile("mcf"), 1),
            buildWorkload(specProfile("gcc"), 2),
            buildWorkload(specProfile("hmmer"), 3)};
}

SchedParams
shortSched()
{
    SchedParams sp;
    sp.quantum = 2'000;
    return sp;
}

std::string
chromeTraceOf(const RunOutput &out)
{
    std::ostringstream os;
    writeChromeTrace(*out.system->tracer(), out.statSeries.get(), os);
    return os.str();
}

std::string
statsOf(System &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

/** Stat dump without the tracer's own recorded/dropped lines (the only
 *  tree difference a traced run is allowed to introduce). */
std::string
statsWithoutTraceGroup(System &sys)
{
    std::istringstream in(statsOf(sys));
    std::string line, kept;
    while (std::getline(in, line))
        if (line.rfind("system.trace.", 0) != 0)
            kept += line + "\n";
    return kept;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(f) << "cannot open " << path;
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

// ---------------------------------------------------------------- buffers

TEST(TraceBuffer, DropsOldestAndReportsIt)
{
    TraceBuffer buf(4); // rounded to 4
    for (std::uint64_t i = 0; i < 4; ++i) {
        TraceEvent e;
        e.when = i;
        e.arg0 = i;
        EXPECT_FALSE(buf.push(e)) << "no drop while filling";
    }
    TraceEvent e;
    e.when = 4;
    e.arg0 = 4;
    EXPECT_TRUE(buf.push(e)) << "push into a full ring drops";

    const std::vector<TraceEvent> evs = buf.ordered();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs.front().arg0, 1u) << "oldest (0) was dropped";
    EXPECT_EQ(evs.back().arg0, 4u);
}

TEST(TraceBuffer, ClampKeepsTimestampsMonotonic)
{
    TraceBuffer clamped(8, /*clamp_monotonic=*/true);
    TraceBuffer raw(8, /*clamp_monotonic=*/false);
    TraceEvent a, b;
    a.when = 50;
    b.when = 30; // goes backwards
    clamped.push(a);
    clamped.push(b);
    raw.push(a);
    raw.push(b);
    EXPECT_EQ(clamped.ordered()[1].when, 50u);
    EXPECT_EQ(raw.ordered()[1].when, 30u)
        << "the scheduler ring must keep decision-order cycles exact";
}

TEST(Tracer, CountsRecordedAndDropped)
{
    StatGroup root("system");
    TraceParams params;
    params.bufferEntries = 4;
    Tracer t(1, params, &root);
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(0, TraceEventKind::Squash, i);
    EXPECT_EQ(t.recordedCount(), 10u);
    EXPECT_EQ(t.droppedCount(), 6u);
    EXPECT_EQ(t.coreBuffer(0).size(), 4u);

    // The counters live in the stat tree, so a truncated trace is
    // visible in any stats dump.
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("system.trace.dropped = 6"),
              std::string::npos);
}

// ----------------------------------------------------------- determinism

TEST(TraceDeterminism, SameSeedSameBytes)
{
    RunOptions opt = shortRun();
    opt.trace = true;
    opt.statsInterval = 5'000;
    const SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap);

    const Workload w1 = buildWorkload(specProfile("mcf"), 1);
    const Workload w2 = buildWorkload(specProfile("mcf"), 1);
    const std::string t1 =
        chromeTraceOf(runConfigured(w1, cfg, opt));
    const std::string t2 =
        chromeTraceOf(runConfigured(w2, cfg, opt));
    EXPECT_FALSE(t1.empty());
    EXPECT_EQ(t1, t2);
}

TEST(TraceDeterminism, ScheduledRunSameBytesAndHasJobSpans)
{
    RunOptions opt = shortRun();
    opt.trace = true;
    const SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 2);

    const std::string t1 = chromeTraceOf(
        runMixConfigured(shortMix(), cfg, shortSched(), opt));
    const std::string t2 = chromeTraceOf(
        runMixConfigured(shortMix(), cfg, shortSched(), opt));
    EXPECT_EQ(t1, t2);

    // Scheduler slots render as complete ("X") spans named after the
    // jobs admitted to the machine.
    EXPECT_NE(t1.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(t1.find("\"name\":\"mcf\""), std::string::npos);
    EXPECT_NE(t1.find("\"name\":\"gcc\""), std::string::npos);

    std::string err;
    EXPECT_TRUE(validateChromeTrace(t1, err)) << err;
}

TEST(TraceDeterminism, ThreadCountInvariantThroughHarness)
{
    // The same traced jobs through 1/2/4 worker threads must produce
    // byte-identical trace files (jobs share no state; traces carry no
    // wall clock).
    auto jobsFor = [](const std::string &dir) {
        std::vector<harness::JobSpec> jobs;
        const char *names[] = {"mcf", "gcc"};
        for (std::size_t i = 0; i < 2; ++i) {
            harness::JobSpec j;
            j.index = i;
            j.suite = "trace_test";
            j.row = names[i];
            j.col = "MuonTrap";
            const std::string name = names[i];
            j.workload = [name] {
                return buildWorkload(specProfile(name), 1);
            };
            j.cfg = SystemConfig::forScheme(Scheme::MuonTrap);
            j.opt = shortRun();
            j.tracePath = dir + "/job" + std::to_string(i)
                          + ".trace.json";
            jobs.push_back(std::move(j));
        }
        return jobs;
    };

    std::vector<std::vector<std::string>> contents;
    for (unsigned threads : {1u, 2u, 4u}) {
        const std::string dir =
            testing::TempDir() + "mtrap_trace_t"
            + std::to_string(threads);
        std::remove((dir + "/job0.trace.json").c_str());
        std::remove((dir + "/job1.trace.json").c_str());
        ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

        harness::ExperimentPool pool(threads);
        const auto results = pool.run(jobsFor(dir));
        for (const auto &r : results)
            ASSERT_TRUE(r.ok) << r.error;

        std::vector<std::string> files;
        files.push_back(slurp(dir + "/job0.trace.json"));
        files.push_back(slurp(dir + "/job1.trace.json"));
        contents.push_back(std::move(files));
    }
    EXPECT_EQ(contents[0], contents[1]);
    EXPECT_EQ(contents[0], contents[2]);

    std::string err;
    EXPECT_TRUE(validateChromeTrace(contents[0][0], err)) << err;
}

// ------------------------------------------------------- non-perturbation

TEST(TraceOverhead, TracedRunMatchesUntracedRun)
{
    const SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 2);

    RunOptions plain = shortRun();
    RunOptions traced = shortRun();
    traced.trace = true;

    RunOutput a =
        runMixConfigured(shortMix(), cfg, shortSched(), plain);
    RunOutput b =
        runMixConfigured(shortMix(), cfg, shortSched(), traced);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(statsOf(*a.system), statsWithoutTraceGroup(*b.system));
}

TEST(TraceOverhead, SampledRunMatchesUnsampledRun)
{
    const SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap);
    const Workload w1 = buildWorkload(specProfile("gcc"), 1);
    const Workload w2 = buildWorkload(specProfile("gcc"), 1);

    RunOptions plain = shortRun();
    RunOptions sampled = shortRun();
    sampled.statsInterval = 1'000;

    RunOutput a = runConfigured(w1, cfg, plain);
    RunOutput b = runConfigured(w2, cfg, sampled);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(statsOf(*a.system), statsOf(*b.system));
    ASSERT_NE(b.statSeries, nullptr);
    EXPECT_EQ(b.statSeries->rows().size(), 10u);
}

// ------------------------------------------------------------ time-series

TEST(StatSeries, IntervalsSumExactlyToAggregates)
{
    // 4-core gang-scheduled MuonTrap run with more jobs than cores (so
    // cores multiplex and context-switch flushes actually fire):
    // per-interval filter-flush and commit deltas must sum to exactly
    // the end-of-run counters.
    const SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 4);
    RunOptions opt = shortRun();
    opt.statsInterval = 4'000; // of 4 * 10'000 total commits

    std::vector<Workload> mix;
    Asid asid = 1;
    for (const char *name :
         {"mcf", "gcc", "hmmer", "gamess", "lbm", "milc"})
        mix.push_back(buildWorkload(specProfile(name), asid++));

    SchedParams sp;
    sp.quantum = 1'000;
    RunOutput out = runMixConfigured(mix, cfg, sp, opt);
    ASSERT_NE(out.statSeries, nullptr);
    const StatSeries &series = *out.statSeries;
    EXPECT_EQ(series.rows().size(), 10u);

    std::uint64_t flush_total = 0, flush_series = 0;
    std::uint64_t committed_total = 0, committed_series = 0;
    for (unsigned c = 0; c < out.system->numCores(); ++c) {
        const std::string core = std::to_string(c);
        flush_total += out.system->mem()
                           .muontrap(c)
                           .flushCtxSwitch.value();
        const int fcol = series.columnIndex(
            "system.memsys.muontrap" + core + ".flush_ctx_switch");
        ASSERT_GE(fcol, 0);
        flush_series += series.columnTotal(
            static_cast<std::size_t>(fcol));

        committed_total += out.system->core(c).committedCount();
        const int ccol = series.columnIndex(
            "system.core" + core + ".committed");
        ASSERT_GE(ccol, 0);
        committed_series += series.columnTotal(
            static_cast<std::size_t>(ccol));
    }
    EXPECT_GT(flush_total, 0u) << "time-sharing must flush filters";
    EXPECT_EQ(flush_series, flush_total);
    EXPECT_EQ(committed_series, committed_total);

    for (std::size_t i = 0; i < series.rows().size(); ++i)
        EXPECT_GT(series.intervalIpc(i), 0.0) << "interval " << i;
}

TEST(StatSeries, CsvIsDeterministicAndShaped)
{
    const SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap);
    RunOptions opt = shortRun();
    opt.statsInterval = 2'500;

    auto csvOnce = [&] {
        const Workload w = buildWorkload(specProfile("mcf"), 1);
        RunOutput out = runConfigured(w, cfg, opt);
        std::ostringstream os;
        out.statSeries->writeCsv(os);
        return os.str();
    };
    const std::string csv = csvOnce();
    EXPECT_EQ(csv, csvOnce());

    std::istringstream in(csv);
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header.rfind("cycle,instructions,ipc,", 0), 0u);
    unsigned rows = 0;
    for (std::string line; std::getline(in, line);)
        ++rows;
    EXPECT_EQ(rows, 4u); // 10'000 / 2'500
}

// -------------------------------------------------------------- validator

TEST(ChromeTraceValidator, AcceptsRealTraceRejectsTampered)
{
    RunOptions opt = shortRun();
    opt.trace = true;
    const SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 2);
    std::string good = chromeTraceOf(
        runMixConfigured(shortMix(), cfg, shortSched(), opt));

    std::string err;
    EXPECT_TRUE(validateChromeTrace(good, err)) << err;

    // Knock a span's timestamp backwards on its track.
    const std::size_t ts = good.rfind("\"ts\":");
    ASSERT_NE(ts, std::string::npos);
    std::string tampered = good.substr(0, ts + 5) + "0,"
        + good.substr(good.find(',', ts + 5) + 1);
    // Re-parse either fails (if we clipped syntax) or flags ordering —
    // both count as rejection; the tamper must not pass.
    EXPECT_FALSE(validateChromeTrace(tampered, err));
}

TEST(ChromeTraceValidator, RejectsMalformedDocuments)
{
    std::string err;
    EXPECT_FALSE(validateChromeTrace("not json", err));
    EXPECT_FALSE(validateChromeTrace("[]", err))
        << "top level must be an object";
    EXPECT_FALSE(validateChromeTrace("{\"traceEvents\": 7}", err));
    EXPECT_FALSE(validateChromeTrace(
        "{\"traceEvents\":[{\"name\":\"x\"}]}", err))
        << "events need a ph";
    EXPECT_FALSE(validateChromeTrace(
        "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\"}]}", err))
        << "non-metadata events need pid/tid/ts";
    EXPECT_FALSE(validateChromeTrace(
        "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"pid\":0,"
        "\"tid\":0,\"ts\":5}]}",
        err))
        << "X events need a dur";
    EXPECT_FALSE(validateChromeTrace(
        "{\"traceEvents\":["
        "{\"name\":\"a\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":0,"
        "\"ts\":10},"
        "{\"name\":\"b\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":0,"
        "\"ts\":4}]}",
        err))
        << "backwards timestamps on one track";
    EXPECT_TRUE(validateChromeTrace(
        "{\"traceEvents\":["
        "{\"name\":\"m\",\"ph\":\"M\",\"pid\":0,\"args\":{}},"
        "{\"name\":\"a\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":0,"
        "\"ts\":10}]}",
        err))
        << err;
}

// ------------------------------------------------------------- legacy CSV

TEST(SchedTraceCompat, LegacyCsvUnchangedByAttachedTracer)
{
    // The legacy --sched-trace CSV (private detached tracer) and the
    // same run under a full system tracer must decode to identical
    // decision rows: the shared ring preserves global decision order.
    auto runOnce = [](bool system_tracer) {
        RunOptions opt = shortRun();
        opt.trace = system_tracer;
        SchedParams sp = shortSched();
        sp.trace = !system_tracer;
        const SystemConfig cfg =
            SystemConfig::forScheme(Scheme::MuonTrap, 2);
        RunOutput out = runMixConfigured(shortMix(), cfg, sp, opt);
        std::ostringstream os;
        writeSchedTrace(*out.system->scheduler(), os);
        return os.str();
    };
    const std::string legacy = runOnce(false);
    const std::string via_system = runOnce(true);
    EXPECT_EQ(legacy.rfind("cycle,slot,core,job,thread,action\n", 0), 0u);
    EXPECT_EQ(legacy, via_system);
}

} // namespace
} // namespace mtrap

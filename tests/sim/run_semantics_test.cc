/**
 * @file
 * Semantics of the run loops after the hot-path overhaul:
 *
 *  - System::run's heap-based multi-core stepping must produce exactly
 *    the state the historical per-step linear scan produced, for 1, 2
 *    and 4 cores (the byte-identical-figures property, asserted at the
 *    stats level).
 *  - Core::run(n) must return exactly n for non-halting programs (the
 *    commit budget no longer overshoots by up to commitWidth-1), and
 *    Scheduler::run inherits the exactness.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/runner.hh"
#include "sim/scheduler.hh"
#include "sim/system.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{
namespace
{

/**
 * The historical System::run loop, verbatim: per step, linearly scan
 * for the non-halted, under-budget core with the smallest front-end
 * clock (first wins ties) and step it. The production implementation
 * must be indistinguishable from this.
 */
void
naiveRun(System &sys, std::uint64_t max_commits_per_core)
{
    std::vector<std::uint64_t> target(sys.numCores());
    for (unsigned c = 0; c < sys.numCores(); ++c)
        target[c] = sys.core(c).committedCount() + max_commits_per_core;

    while (true) {
        Core *best = nullptr;
        for (unsigned c = 0; c < sys.numCores(); ++c) {
            Core &core = sys.core(c);
            if (core.halted() || core.committedCount() >= target[c])
                continue;
            if (!best || core.now() < best->now())
                best = &core;
        }
        if (!best)
            break;
        best->stepOne();
    }
}

/** Full stats dump: every counter in the tree must match. */
std::string
statsOf(System &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

void
expectIdenticalStepping(const Workload &w, unsigned cores,
                        std::uint64_t commits)
{
    SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, cores);

    System optimized(cfg);
    optimized.loadWorkload(w);
    optimized.run(commits);

    System naive(cfg);
    naive.loadWorkload(w);
    naiveRun(naive, commits);

    for (unsigned c = 0; c < cores; ++c) {
        EXPECT_EQ(optimized.core(c).committedCount(),
                  naive.core(c).committedCount())
            << cores << " cores, core " << c;
        EXPECT_EQ(optimized.core(c).now(), naive.core(c).now())
            << cores << " cores, core " << c;
        EXPECT_EQ(optimized.core(c).lastCommitCycle(),
                  naive.core(c).lastCommitCycle())
            << cores << " cores, core " << c;
    }
    EXPECT_EQ(optimized.maxCommitCycle(), naive.maxCommitCycle());
    EXPECT_EQ(statsOf(optimized), statsOf(naive))
        << "stat trees diverged with " << cores << " cores";
}

TEST(SystemRun, HeapSteppingMatchesNaiveScanOneCore)
{
    expectIdenticalStepping(buildSpecWorkload("gcc"), 1, 20'000);
}

TEST(SystemRun, HeapSteppingMatchesNaiveScanTwoCores)
{
    expectIdenticalStepping(buildParsecWorkload("canneal", 2), 2,
                            12'000);
}

TEST(SystemRun, HeapSteppingMatchesNaiveScanFourCores)
{
    expectIdenticalStepping(buildParsecWorkload("streamcluster", 4), 4,
                            8'000);
}

// --- exact commit budgets ---------------------------------------------------

TEST(CoreRun, ReturnsExactlyTheRequestedCommits)
{
    // SPEC profiles are non-halting loops, so the budget is the only
    // stop condition.
    const Workload w = buildSpecWorkload("hmmer");
    SystemConfig cfg = SystemConfig::forScheme(Scheme::Baseline, 1);
    System sys(cfg);
    sys.loadWorkload(w);
    Core &core = sys.core(0);

    // Odd budgets that straddle commit-slot boundaries (commitWidth=8).
    for (std::uint64_t n : {1ull, 3ull, 7ull, 8ull, 9ull, 513ull,
                            10'001ull}) {
        const std::uint64_t before = core.committedCount();
        const std::uint64_t done = core.run(n);
        EXPECT_EQ(done, n) << "budget " << n;
        EXPECT_EQ(core.committedCount() - before, n) << "budget " << n;
    }
}

TEST(CoreRun, BudgetedRunsComposeToTheSameSimulation)
{
    // Chunked runs must land on the same architectural/timing state as
    // one big run: deferred retirements keep their timestamps.
    const Workload w = buildSpecWorkload("sjeng");
    SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 1);

    System big(cfg);
    big.loadWorkload(w);
    big.core(0).run(30'000);
    big.core(0).drain();

    System chunked(cfg);
    chunked.loadWorkload(w);
    std::uint64_t left = 30'000;
    while (left > 0) {
        const std::uint64_t chunk = std::min<std::uint64_t>(left, 777);
        const std::uint64_t done = chunked.core(0).run(chunk);
        ASSERT_EQ(done, chunk);
        left -= done;
    }
    chunked.core(0).drain();

    EXPECT_EQ(big.core(0).committedCount(),
              chunked.core(0).committedCount());
    EXPECT_EQ(big.core(0).lastCommitCycle(),
              chunked.core(0).lastCommitCycle());
    std::ostringstream a, b;
    big.dumpStats(a);
    chunked.dumpStats(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(SchedulerRun, TotalCommitsAreExactForNonHaltingTasks)
{
    SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 1);
    System sys(cfg);
    const Workload w1 = buildSpecWorkload("hmmer");
    const Workload w2 = buildSpecWorkload("gamess");
    if (w1.init)
        w1.init(sys.mem());
    if (w2.init)
        w2.init(sys.mem());

    Scheduler sched(&sys.core(0), /*quantum=*/7'000);
    sched.addTask(&w1.threadPrograms[0], 1);
    sched.addTask(&w2.threadPrograms[0], 2);
    EXPECT_EQ(sched.run(40'003), 40'003u);
    EXPECT_GE(sched.switches(), 1u);
}

} // namespace
} // namespace mtrap

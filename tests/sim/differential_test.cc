/**
 * @file
 * Differential correctness tests: defence schemes may change *timing*,
 * never *architectural results*. Randomly generated programs are run
 * under every scheme and their final register files and memory effects
 * must match bit-for-bit. This catches squash/restore bugs, taint or
 * exposure logic corrupting dataflow, and filter-cache functional
 * errors.
 */

#include <gtest/gtest.h>

#include <array>

#include "common/log.hh"
#include "common/rng.hh"
#include "sim/system.hh"

namespace mtrap
{
namespace
{

/** Generate a random but well-formed terminating program: a counted
 *  loop whose body mixes ALU ops, loads, stores and data-dependent
 *  branches over a small private region. */
Program
randomProgram(std::uint64_t seed, unsigned body_ops, unsigned iterations)
{
    Rng rng(seed);
    ProgramBuilder b(strfmt("fuzz_%llu",
                            static_cast<unsigned long long>(seed)));

    constexpr Addr kBase = 0x90'0000'0000ull;
    constexpr std::int64_t kMask = 64 * 1024 - 8;

    b.movi(1, 0);                       // loop counter
    b.movi(2, iterations);              // limit
    b.movi(10, static_cast<std::int64_t>(kBase));
    b.movi(11, kMask);
    b.movi(12, static_cast<std::int64_t>(rng.next() | 1)); // lcg state
    b.movi(13, 0x5851f42d);             // lcg multiplier (fits movi)
    for (unsigned r = 14; r <= 20; ++r)
        b.movi(r, static_cast<std::int64_t>(rng.below(1000)));

    unsigned label_id = 0;
    b.label("top");
    for (unsigned i = 0; i < body_ops; ++i) {
        const unsigned dst = 14 + rng.below(7);
        const unsigned s1 = 12 + rng.below(9);
        const unsigned s2 = 12 + rng.below(9);
        switch (rng.below(8)) {
          case 0: b.add(dst, s1, s2); break;
          case 1: b.sub(dst, s1, s2); break;
          case 2: b.mul(dst, s1, s2); break;
          case 3: b.xori(dst, s1, static_cast<std::int64_t>(
                                      rng.below(0xffff)));
                  break;
          case 4: {
            // load from a masked pseudo-random address
            b.mul(12, 12, 13);
            b.shri(21, 12, 13 % 19 + 3);
            MicroOp m;
            m.type = OpType::IntAlu;
            m.alu = AluOp::And;
            m.dst = 21;
            m.src1 = 21;
            m.src2 = 11;
            b.emit(m);
            b.load(dst, 10, 0, 21, 0);
            break;
          }
          case 5: {
            b.mul(12, 12, 13);
            b.shri(21, 12, 9);
            MicroOp m;
            m.type = OpType::IntAlu;
            m.alu = AluOp::And;
            m.dst = 21;
            m.src1 = 21;
            m.src2 = 11;
            b.emit(m);
            b.store(s1, 10, 0, 21, 0);
            break;
          }
          case 6: {
            // data-dependent forward branch over one op
            const std::string skip = strfmt("s%u", label_id++);
            b.andi(22, s1, 1);
            b.braNe(skip, 22, 0);
            b.add(dst, dst, s2);
            b.label(skip);
            break;
          }
          case 7: b.shli(dst, s1, rng.below(7) + 1); break;
        }
    }
    b.addi(1, 1, 1);
    b.braLt("top", 1, 2);
    b.halt();
    return b.take();
}

/** Run `prog` under `scheme` and return the final register file plus a
 *  memory fingerprint. */
struct ArchResult
{
    std::array<std::uint64_t, kNumRegs> regs{};
    std::uint64_t memFingerprint = 0;
};

ArchResult
runUnder(const Program &prog, Scheme s)
{
    System sys(SystemConfig::forScheme(s, 1));
    ArchContext ctx;
    ctx.program = &prog;
    ctx.asid = 1;
    Core &core = sys.core(0);
    core.setContext(ctx);
    core.run(5'000'000);
    EXPECT_TRUE(core.halted()) << "program must terminate";
    core.drain();

    ArchResult r;
    for (unsigned i = 0; i < kNumRegs; ++i)
        r.regs[i] = core.reg(i);
    // Fingerprint the program's memory region.
    constexpr Addr kBase = 0x90'0000'0000ull;
    for (Addr a = kBase; a < kBase + 64 * 1024; a += 8) {
        r.memFingerprint =
            r.memFingerprint * 1099511628211ull ^ sys.mem().read(1, a);
    }
    return r;
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DifferentialTest, AllSchemesComputeIdenticalResults)
{
    const Program prog = randomProgram(GetParam(), 24, 40);
    const ArchResult base = runUnder(prog, Scheme::Baseline);
    for (Scheme s : allSchemes()) {
        const ArchResult r = runUnder(prog, s);
        EXPECT_EQ(r.regs, base.regs)
            << schemeName(s) << " changed architectural register state";
        EXPECT_EQ(r.memFingerprint, base.memFingerprint)
            << schemeName(s) << " changed architectural memory state";
    }
}

TEST_P(DifferentialTest, RunsAreInternallyDeterministic)
{
    const Program prog = randomProgram(GetParam() ^ 0x77, 16, 30);
    const ArchResult a = runUnder(prog, Scheme::MuonTrap);
    const ArchResult b = runUnder(prog, Scheme::MuonTrap);
    EXPECT_EQ(a.regs, b.regs);
    EXPECT_EQ(a.memFingerprint, b.memFingerprint);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

} // namespace
} // namespace mtrap

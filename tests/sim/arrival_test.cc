/**
 * @file
 * Open-system arrival/QoS tests (sim/arrival.hh): schedule determinism,
 * service-limit exactness, the chunked == monolithic contract with
 * mid-quantum admissions, mid-arrival-stream snapshot round-trips,
 * weighted quanta, IO-wait sleeps, deadlines and the percentile math
 * behind ServerReport.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/arrival.hh"
#include "sim/scheduler.hh"
#include "sim/system.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{
namespace
{

/** Small, fast canonical arrival shape shared by the run tests. */
ArrivalParams
tinyArrivals()
{
    ArrivalParams ap;
    ap.seed = 7;
    ap.jobs = 6;
    ap.meanInterarrival = 3'000;
    ap.serviceMinCommits = 1'500;
    ap.serviceMaxCommits = 4'000;
    return ap;
}

SchedParams
tinySched()
{
    SchedParams sp;
    sp.quantum = 2'000;
    return sp;
}

/** A fresh open-system machine with the injector attached. */
struct ServerRig
{
    System sys;
    ArrivalInjector inj;

    ServerRig(const ArrivalParams &ap, const SchedParams &sp,
              unsigned cores = 2)
        : sys(SystemConfig::forScheme(Scheme::Baseline, cores)),
          inj((sys.attachScheduler(sp), sys), ap)
    {
        sys.scheduler()->setArrivalSource(&inj);
    }

    /** Drive to completion in `chunk`-commit steps; returns total. */
    std::uint64_t
    runAll(std::uint64_t chunk)
    {
        std::uint64_t total = 0;
        for (;;) {
            const std::uint64_t did = sys.runScheduled(chunk);
            total += did;
            if (did < chunk)
                return total;
        }
    }
};

void
expectSameRecords(const std::vector<JobRecord> &a,
                  const std::vector<JobRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].job, b[i].job) << "job " << i;
        EXPECT_EQ(a[i].arrival, b[i].arrival) << "job " << i;
        EXPECT_EQ(a[i].firstRun, b[i].firstRun) << "job " << i;
        EXPECT_EQ(a[i].finish, b[i].finish) << "job " << i;
        EXPECT_EQ(a[i].committed, b[i].committed) << "job " << i;
        EXPECT_EQ(a[i].done, b[i].done) << "job " << i;
    }
}

// ----------------------------------------------------------- schedule

TEST(ArrivalSchedule, SameSeedIsByteIdentical)
{
    ArrivalParams ap = tinyArrivals();
    ap.jobs = 64;
    ap.deadlineFactor = 5;
    ap.maxWeight = 3;
    const auto a = generateArrivalSchedule(ap);
    const auto b = generateArrivalSchedule(ap);
    ASSERT_EQ(a.size(), 64u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].profile, b[i].profile);
        EXPECT_EQ(a[i].serviceCommits, b[i].serviceCommits);
        EXPECT_EQ(a[i].deadline, b[i].deadline);
        EXPECT_EQ(a[i].weight, b[i].weight);
        EXPECT_EQ(a[i].workloadSeed, b[i].workloadSeed);
    }
}

TEST(ArrivalSchedule, SeedChangesSchedule)
{
    ArrivalParams ap = tinyArrivals();
    ap.jobs = 32;
    const auto a = generateArrivalSchedule(ap);
    ap.seed = ap.seed + 1;
    const auto b = generateArrivalSchedule(ap);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs |= a[i].at != b[i].at
                   || a[i].serviceCommits != b[i].serviceCommits;
    EXPECT_TRUE(differs);
}

TEST(ArrivalSchedule, DrawsRespectParameterRanges)
{
    ArrivalParams ap = tinyArrivals();
    ap.jobs = 128;
    ap.deadlineFactor = 4;
    ap.maxWeight = 3;
    const auto events = generateArrivalSchedule(ap);
    Cycle prev = 0;
    for (const ArrivalEvent &e : events) {
        EXPECT_GE(e.at, 1u);
        EXPECT_GE(e.at, prev); // non-decreasing
        prev = e.at;
        EXPECT_GE(e.serviceCommits, ap.serviceMinCommits);
        EXPECT_LE(e.serviceCommits, ap.serviceMaxCommits);
        EXPECT_GE(e.weight, 1u);
        EXPECT_LE(e.weight, ap.maxWeight);
        EXPECT_EQ(e.deadline,
                  e.at + e.serviceCommits * ap.deadlineFactor);
    }
}

TEST(ArrivalSchedule, BurstPatternClustersArrivals)
{
    ArrivalParams ap = tinyArrivals();
    ap.pattern = ArrivalPattern::Burst;
    ap.jobs = 16;
    ap.burstSize = 4;
    ap.burstSpacing = 100;
    const auto events = generateArrivalSchedule(ap);
    // Within a burst, consecutive gaps are exactly burstSpacing.
    for (std::size_t i = 0; i < events.size(); ++i)
        if (i % ap.burstSize != 0)
            EXPECT_EQ(events[i].at - events[i - 1].at, ap.burstSpacing);
}

// --------------------------------------------------------- percentiles

TEST(Percentile, NearestRankIsIntegerExact)
{
    std::vector<Cycle> v;
    for (Cycle i = 1; i <= 100; ++i)
        v.push_back(i);
    EXPECT_EQ(percentileCycles(v, 50), 50u);
    EXPECT_EQ(percentileCycles(v, 95), 95u);
    EXPECT_EQ(percentileCycles(v, 99), 99u);
    EXPECT_EQ(percentileCycles(v, 100), 100u);
    EXPECT_EQ(percentileCycles(v, 1), 1u);

    // Small n: ceil(p*n/100)-1 indexing, no interpolation.
    EXPECT_EQ(percentileCycles({40, 10, 30, 20}, 50), 20u);
    EXPECT_EQ(percentileCycles({40, 10, 30, 20}, 99), 40u);
    EXPECT_EQ(percentileCycles({5}, 50), 5u);
    EXPECT_EQ(percentileCycles({}, 95), 0u);
}

// ----------------------------------------------------- open-system run

TEST(ServerRun, ServiceLimitsAreExactAndAllJobsComplete)
{
    ServerRig rig(tinyArrivals(), tinySched());
    rig.runAll(5'000);

    const auto records = rig.sys.scheduler()->jobRecords();
    ASSERT_EQ(records.size(), rig.inj.schedule().size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_TRUE(records[i].done) << "job " << i;
        // Forced completion must cut the job at exactly its drawn
        // service demand, never a chunk boundary past it.
        EXPECT_EQ(records[i].committed,
                  rig.inj.schedule()[i].serviceCommits)
            << "job " << i;
        EXPECT_GE(records[i].firstRun, records[i].arrival);
        EXPECT_GT(records[i].finish, records[i].firstRun);
    }

    const ServerReport rep = ServerReport::build(rig.sys, rig.inj);
    EXPECT_EQ(rep.admitted, rig.inj.schedule().size());
    EXPECT_EQ(rep.completed, rep.admitted);
    EXPECT_GT(rep.sojournP50, 0u);
    EXPECT_GE(rep.sojournP95, rep.sojournP50);
    EXPECT_GE(rep.sojournP99, rep.sojournP95);
    EXPECT_GE(rep.sojournMax, rep.sojournP99);
    EXPECT_GT(rep.occupancy, 0.0);
    EXPECT_LE(rep.occupancy, 1.0);
}

TEST(ServerRun, ChunkedEqualsMonolithicWithMidQuantumArrivals)
{
    // Chunk sizes chosen to land inside quanta and inside the
    // scheduler's decision grid, so admissions happen mid-chunk in one
    // run and mid-quantum in both.
    ServerRig mono(tinyArrivals(), tinySched());
    mono.runAll(1'000'000'000);

    ServerRig fine(tinyArrivals(), tinySched());
    fine.runAll(700);

    EXPECT_EQ(mono.sys.maxCommitCycle(), fine.sys.maxCommitCycle());
    expectSameRecords(mono.sys.scheduler()->jobRecords(),
                      fine.sys.scheduler()->jobRecords());

    const ServerReport a = ServerReport::build(mono.sys, mono.inj);
    const ServerReport b = ServerReport::build(fine.sys, fine.inj);
    EXPECT_EQ(a.sojournP95, b.sojournP95);
    EXPECT_EQ(a.waitP95, b.waitP95);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.occupancy, b.occupancy);
}

TEST(ServerRun, SnapshotRoundTripMidArrivalStream)
{
    const ArrivalParams ap = tinyArrivals();
    const SchedParams sp = tinySched();
    constexpr std::uint64_t kCtx = 0x5eed;

    // Run A partway: far enough that some jobs are admitted (and some
    // running), not so far that the arrival stream is drained.
    ServerRig a(ap, sp);
    a.sys.runScheduled(4'000);
    ASSERT_GT(a.inj.admitted(), 0u);
    ASSERT_LT(a.inj.admitted(), a.inj.schedule().size());
    const std::vector<std::uint8_t> image =
        saveServerSnapshot(a.sys, a.inj, kCtx);

    // Restore into a fresh machine; both continue to completion.
    ServerRig b(ap, sp);
    restoreServerSnapshot(b.sys, b.inj, image, kCtx);
    EXPECT_EQ(b.inj.admitted(), a.inj.admitted());

    a.runAll(3'000);
    b.runAll(3'000);

    EXPECT_EQ(a.sys.maxCommitCycle(), b.sys.maxCommitCycle());
    expectSameRecords(a.sys.scheduler()->jobRecords(),
                      b.sys.scheduler()->jobRecords());
    const ServerReport ra = ServerReport::build(a.sys, a.inj);
    const ServerReport rb = ServerReport::build(b.sys, b.inj);
    EXPECT_EQ(ra.sojournP99, rb.sojournP99);
    EXPECT_EQ(ra.makespan, rb.makespan);
}

TEST(ServerRun, ServerSnapshotRejectsWrongContext)
{
    ServerRig a(tinyArrivals(), tinySched());
    a.sys.runScheduled(4'000);
    const auto image = saveServerSnapshot(a.sys, a.inj, 1);

    ServerRig b(tinyArrivals(), tinySched());
    EXPECT_THROW(restoreServerSnapshot(b.sys, b.inj, image, 2),
                 SnapshotError);
}

TEST(ServerRun, WeightedJobGetsMoreThroughput)
{
    // Two identical-demand jobs share one core; the weight-3 job gets
    // three consecutive quanta per round and must finish first.
    ArrivalParams ap = tinyArrivals();
    ap.jobs = 2;
    ap.meanInterarrival = 1; // both arrive almost immediately
    ap.serviceMinCommits = 6'000;
    ap.serviceMaxCommits = 6'000;

    const SchedParams sp = tinySched();

    // Weights are drawn from the schedule seed, so re-draw seeds until
    // job 0 clearly outweighs job 1 — with maxWeight 3 this converges
    // after a handful of tries.
    ArrivalParams heavy = ap;
    heavy.maxWeight = 3;
    std::uint64_t seed = heavy.seed;
    for (;; ++seed) {
        heavy.seed = seed;
        const auto ev = generateArrivalSchedule(heavy);
        if (ev[0].weight > 2 * ev[1].weight
            && ev[0].serviceCommits == ev[1].serviceCommits)
            break;
    }
    System wsys(SystemConfig::forScheme(Scheme::Baseline, 1));
    wsys.attachScheduler(sp);
    ArrivalInjector winj(wsys, heavy);
    wsys.scheduler()->setArrivalSource(&winj);
    for (;;) {
        if (wsys.runScheduled(5'000) < 5'000)
            break;
    }
    const auto records = wsys.scheduler()->jobRecords();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_TRUE(records[0].done);
    EXPECT_TRUE(records[1].done);
    // Equal demand, triple the quanta share: the heavy job finishes
    // strictly earlier.
    EXPECT_LT(records[0].finish, records[1].finish);
}

TEST(ServerRun, SleepingJobsLengthenTheirSojourn)
{
    ArrivalParams awake = tinyArrivals();
    ServerRig a(awake, tinySched());
    a.runAll(5'000);

    ArrivalParams dozy = awake;
    dozy.sleepPeriodCommits = 500;
    dozy.sleepDurationCycles = 2'000;
    ServerRig d(dozy, tinySched());
    d.runAll(5'000);

    const ServerReport ra = ServerReport::build(a.sys, a.inj);
    const ServerReport rd = ServerReport::build(d.sys, d.inj);
    EXPECT_EQ(ra.completed, rd.completed);
    // IO-wait adds pure latency: every job sleeps repeatedly, so the
    // slowest job's sojourn strictly grows.
    EXPECT_GT(rd.sojournMax, ra.sojournMax);
}

TEST(ServerRun, DeadlineAccountingFollowsTheFactor)
{
    ArrivalParams ap = tinyArrivals();
    ap.deadlineFactor = 1'000'000; // unmissable
    ServerRig lax(ap, tinySched());
    lax.runAll(5'000);
    const ServerReport rl = ServerReport::build(lax.sys, lax.inj);
    EXPECT_EQ(rl.deadlineTotal, ap.jobs);
    EXPECT_EQ(rl.deadlineMisses, 0u);

    ap.deadlineFactor = 1; // at IPC < 1 with queueing, must miss some
    ServerRig tight(ap, tinySched());
    tight.runAll(5'000);
    const ServerReport rt = ServerReport::build(tight.sys, tight.inj);
    EXPECT_EQ(rt.deadlineTotal, ap.jobs);
    EXPECT_GT(rt.deadlineMisses, 0u);
}

TEST(ServerRun, AffinityMigrationIsDeterministicAndBounded)
{
    ArrivalParams ap = tinyArrivals();
    ap.jobs = 8;
    SchedParams sp = tinySched();
    sp.affinity = true;

    ServerRig a(ap, sp);
    a.runAll(5'000);
    ServerRig b(ap, sp);
    b.runAll(5'000);

    EXPECT_EQ(a.sys.maxCommitCycle(), b.sys.maxCommitCycle());
    EXPECT_EQ(a.sys.scheduler()->migrations(),
              b.sys.scheduler()->migrations());
    expectSameRecords(a.sys.scheduler()->jobRecords(),
                      b.sys.scheduler()->jobRecords());
}

TEST(ServerRun, RunServerConfiguredReportsAndSamplesSeries)
{
    ArrivalParams ap = tinyArrivals();
    RunOptions opt;
    opt.statsInterval = 2'000;
    const ServerRunOutput out = runServerConfigured(
        SystemConfig::forScheme(Scheme::Baseline, 2), tinySched(), ap,
        opt, "Baseline");
    EXPECT_EQ(out.report.completed, ap.jobs);
    ASSERT_NE(out.statSeries, nullptr);
    EXPECT_GT(out.statSeries->rows().size(), 0u);

    // Sampling is pure observation: an unsampled run lands on the same
    // makespan and percentiles.
    const ServerRunOutput plain = runServerConfigured(
        SystemConfig::forScheme(Scheme::Baseline, 2), tinySched(), ap,
        {}, "Baseline");
    EXPECT_EQ(plain.report.makespan, out.report.makespan);
    EXPECT_EQ(plain.report.sojournP95, out.report.sojournP95);
}

} // namespace
} // namespace mtrap

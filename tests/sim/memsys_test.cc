/**
 * @file
 * Unit tests for the memory system walks: the central MuonTrap
 * invariants (speculative state confined to filter structures),
 * commit-time write-through, SE upgrades, TLB filtering, probes, and
 * the baseline/insecure-L0 behaviours they contrast with.
 */

#include <gtest/gtest.h>

#include "sim/mem_system.hh"

namespace mtrap
{
namespace
{

struct Rig
{
    explicit Rig(MuonTrapConfig mt = MuonTrapConfig::full(),
                 unsigned cores = 1)
        : root("rig")
    {
        MemSystemParams p;
        p.cores = cores;
        p.mt = mt;
        ms = std::make_unique<MemSystem>(p, &root);
    }

    StatGroup root;
    std::unique_ptr<MemSystem> ms;
};

constexpr Asid kA = 1;
constexpr Addr kV = 0x12345000;

TEST(MemSysMuonTrap, SpeculativeMissFillsFilterOnly)
{
    Rig rig;
    DataAccessResult r = rig.ms->dataAccess(0, kA, kV, 0x10, false,
                                            /*speculative=*/true, 0);
    EXPECT_FALSE(r.nacked);
    const Addr paddr = rig.ms->addressSpace().translate(kA, kV);
    EXPECT_TRUE(rig.ms->muontrap(0).dataFilter()->presentValid(paddr));
    EXPECT_EQ(rig.ms->l1d(0).peek(paddr), nullptr)
        << "speculative data must not reach the L1";
    EXPECT_EQ(rig.ms->l2().peek(paddr), nullptr)
        << "speculative data must not reach the L2";
    // The filter line is uncommitted and Shared.
    CacheLine *l = rig.ms->muontrap(0).dataFilter()->lookupVirt(kA, kV,
                                                                paddr);
    ASSERT_NE(l, nullptr);
    EXPECT_FALSE(l->committed);
    EXPECT_EQ(l->state, CoherState::Shared);
}

TEST(MemSysMuonTrap, CommitWritesThroughToL1AndL2)
{
    Rig rig;
    DataAccessResult r = rig.ms->dataAccess(0, kA, kV, 0x10, false, true,
                                            0);
    rig.ms->commitData(0, kA, kV, 0x10, false, r.tlbMiss, 100);
    const Addr paddr = rig.ms->addressSpace().translate(kA, kV);
    EXPECT_NE(rig.ms->l1d(0).peek(paddr), nullptr);
    EXPECT_NE(rig.ms->l2().peek(paddr), nullptr);
    CacheLine *l = rig.ms->muontrap(0).dataFilter()->lookupVirt(kA, kV,
                                                                paddr);
    ASSERT_NE(l, nullptr);
    EXPECT_TRUE(l->committed);
    EXPECT_GE(rig.ms->commitWriteThroughs.value(), 1u);
}

TEST(MemSysMuonTrap, SeUpgradePromotesL1ToExclusive)
{
    Rig rig;
    // Cold speculative load: no other holder, so the line is SE.
    DataAccessResult r = rig.ms->dataAccess(0, kA, kV, 0x10, false, true,
                                            0);
    const Addr paddr = rig.ms->addressSpace().translate(kA, kV);
    CacheLine *fl = rig.ms->muontrap(0).dataFilter()->lookupVirt(kA, kV,
                                                                 paddr);
    ASSERT_NE(fl, nullptr);
    EXPECT_TRUE(fl->sePending);
    rig.ms->commitData(0, kA, kV, 0x10, false, r.tlbMiss, 100);
    ASSERT_NE(rig.ms->l1d(0).peek(paddr), nullptr);
    EXPECT_EQ(rig.ms->l1d(0).peek(paddr)->state, CoherState::Exclusive)
        << "the SE pseudo-state upgrades to E at commit";
    EXPECT_FALSE(fl->sePending);
    EXPECT_GE(rig.ms->seUpgradeRequests.value(), 1u);
}

TEST(MemSysMuonTrap, EvictedBeforeCommitRefetchedIntoL1)
{
    Rig rig;
    // Blow the tiny filter with conflicting speculative fills, then
    // commit the first one.
    DataAccessResult r0 = rig.ms->dataAccess(0, kA, kV, 0x10, false, true,
                                             0);
    for (unsigned i = 1; i <= 8; ++i) {
        // Same filter set: stride = filter size (2KiB) keeps the index.
        rig.ms->dataAccess(0, kA, kV + i * 2048, 0x10, false, true, 0);
    }
    const Addr paddr = rig.ms->addressSpace().translate(kA, kV);
    EXPECT_FALSE(rig.ms->muontrap(0).dataFilter()->presentValid(paddr));
    rig.ms->commitData(0, kA, kV, 0x10, false, r0.tlbMiss, 100);
    EXPECT_NE(rig.ms->l1d(0).peek(paddr), nullptr)
        << "a committed access must appear in the L1 even if its filter "
           "line was evicted (§4.2)";
    EXPECT_GE(rig.ms->recommitFetches.value(), 1u);
}

TEST(MemSysMuonTrap, FilterHitDoesNotTouchL1Replacement)
{
    Rig rig;
    // Fill L1 set with two committed lines A and B (2-way).
    const Addr a = 0x100000, b = a + 512 * 64; // same L1 set
    DataAccessResult ra = rig.ms->dataAccess(0, kA, a, 1, false, true, 0);
    rig.ms->commitData(0, kA, a, 1, false, ra.tlbMiss, 10);
    DataAccessResult rb = rig.ms->dataAccess(0, kA, b, 2, false, true, 20);
    rig.ms->commitData(0, kA, b, 2, false, rb.tlbMiss, 30);
    // Speculatively hit A via its L1 copy repeatedly (filter was flushed
    // first so the hit goes to the L1).
    rig.ms->muontrap(0).flush(FlushReason::Explicit);
    for (int i = 0; i < 10; ++i)
        rig.ms->dataAccess(0, kA, a, 3, false, true, 40 + i);
    // Now fill a third line in the set *committed*: the LRU victim must
    // not have been biased by the speculative hits on A.
    const Addr pa = rig.ms->addressSpace().translate(kA, a);
    ASSERT_NE(rig.ms->l1d(0).peek(pa), nullptr);
}

TEST(MemSysMuonTrap, StoreCommitGetsModifiedAndCountsUpgrade)
{
    Rig rig;
    DataAccessResult r = rig.ms->dataAccess(0, kA, kV, 0x10, true, true,
                                            0);
    rig.ms->commitData(0, kA, kV, 0x10, true, r.tlbMiss, 100);
    const Addr paddr = rig.ms->addressSpace().translate(kA, kV);
    ASSERT_NE(rig.ms->l1d(0).peek(paddr), nullptr);
    EXPECT_EQ(rig.ms->l1d(0).peek(paddr)->state, CoherState::Modified);
    EXPECT_EQ(rig.ms->bus().storeUpgrades.value(), 1u);
}

TEST(MemSysMuonTrap, SpeculativeTranslationGoesToFilterTlb)
{
    Rig rig;
    rig.ms->dataAccess(0, kA, kV, 0x10, false, true, 0);
    EXPECT_EQ(rig.ms->dtlb(0).validCount(), 0u)
        << "speculative walks must not install into the main TLB";
    EXPECT_EQ(rig.ms->muontrap(0).filterTlb()->validCount(), 1u);
}

TEST(MemSysMuonTrap, CommitPromotesTranslation)
{
    Rig rig;
    DataAccessResult r = rig.ms->dataAccess(0, kA, kV, 0x10, false, true,
                                            0);
    EXPECT_TRUE(r.tlbMiss);
    rig.ms->commitData(0, kA, kV, 0x10, false, r.tlbMiss, 100);
    EXPECT_EQ(rig.ms->dtlb(0).validCount(), 1u);
}

TEST(MemSysMuonTrap, ContextSwitchClearsFilterStructures)
{
    Rig rig;
    rig.ms->dataAccess(0, kA, kV, 0x10, false, true, 0);
    rig.ms->ifetchAccess(0, kA, 0x400000, 0);
    rig.ms->onContextSwitch(0, 50);
    EXPECT_EQ(rig.ms->muontrap(0).dataFilter()->validLineCount(), 0u);
    EXPECT_EQ(rig.ms->muontrap(0).instFilter()->validLineCount(), 0u);
    EXPECT_EQ(rig.ms->muontrap(0).filterTlb()->validCount(), 0u);
}

TEST(MemSysMuonTrap, IfetchSpeculativeStaysInInstFilter)
{
    Rig rig;
    const Addr code = 0x400000;
    rig.ms->ifetchAccess(0, kA, code, 0);
    const Addr paddr = rig.ms->addressSpace().translate(kA, code);
    EXPECT_TRUE(rig.ms->muontrap(0).instFilter()->presentValid(paddr));
    EXPECT_EQ(rig.ms->l1i(0).peek(paddr), nullptr);
    rig.ms->commitIfetch(0, kA, code, 100);
    EXPECT_NE(rig.ms->l1i(0).peek(paddr), nullptr)
        << "committed instruction lines propagate to the L1I";
}

TEST(MemSysMuonTrap, FilterHitFasterThanL1Hit)
{
    Rig rig;
    DataAccessResult miss = rig.ms->dataAccess(0, kA, kV, 1, false, true,
                                               0);
    DataAccessResult hit = rig.ms->dataAccess(0, kA, kV, 1, false, true,
                                              10);
    EXPECT_LT(hit.latency, miss.latency);
    EXPECT_EQ(hit.serviceLevel, 0u);
    EXPECT_EQ(hit.latency, 1u) << "filter hits are 1 cycle (+0 TLB)";
}

TEST(MemSysMuonTrap, SerialL0AddsLatencyToL1Hit)
{
    // Commit a line into L1, flush the filter, and compare serial vs
    // parallel lookup latency for the L1 hit.
    Rig serial;
    DataAccessResult r = serial.ms->dataAccess(0, kA, kV, 1, false, true,
                                               0);
    serial.ms->commitData(0, kA, kV, 1, false, r.tlbMiss, 10);
    serial.ms->muontrap(0).flush(FlushReason::Explicit);
    const Cycle t_serial =
        serial.ms->dataAccess(0, kA, kV, 1, false, true, 20).latency;

    MuonTrapConfig par = MuonTrapConfig::full();
    par.parallelL0L1 = true;
    Rig parallel(par);
    DataAccessResult r2 = parallel.ms->dataAccess(0, kA, kV, 1, false,
                                                  true, 0);
    parallel.ms->commitData(0, kA, kV, 1, false, r2.tlbMiss, 10);
    parallel.ms->muontrap(0).flush(FlushReason::Explicit);
    const Cycle t_par =
        parallel.ms->dataAccess(0, kA, kV, 1, false, true, 20).latency;

    EXPECT_EQ(t_serial, 3u); // 1 (L0) + 2 (L1)
    EXPECT_EQ(t_par, 2u);    // max(1, 2)
}

// --- baseline behaviours (the contrast) -------------------------------------

TEST(MemSysBaseline, SpeculativeMissFillsL1AndL2)
{
    Rig rig(MuonTrapConfig::off());
    rig.ms->dataAccess(0, kA, kV, 0x10, false, /*speculative=*/true, 0);
    const Addr paddr = rig.ms->addressSpace().translate(kA, kV);
    EXPECT_NE(rig.ms->l1d(0).peek(paddr), nullptr)
        << "the unprotected hierarchy caches speculative data";
    EXPECT_NE(rig.ms->l2().peek(paddr), nullptr);
}

TEST(MemSysBaseline, SpeculativeTranslationPollutesTlb)
{
    Rig rig(MuonTrapConfig::off());
    rig.ms->dataAccess(0, kA, kV, 0x10, false, true, 0);
    EXPECT_EQ(rig.ms->dtlb(0).validCount(), 1u);
}

TEST(MemSysInsecureL0, FillsL0AndL1)
{
    Rig rig(MuonTrapConfig::insecureL0());
    rig.ms->dataAccess(0, kA, kV, 0x10, false, true, 0);
    const Addr paddr = rig.ms->addressSpace().translate(kA, kV);
    EXPECT_TRUE(rig.ms->muontrap(0).dataFilter()->presentValid(paddr));
    EXPECT_NE(rig.ms->l1d(0).peek(paddr), nullptr)
        << "an insecure L0 propagates fills to the L1 immediately";
}

// --- probes -------------------------------------------------------------------

TEST(MemSysProbe, DataProbeDoesNotMutate)
{
    Rig rig(MuonTrapConfig::off());
    const Addr paddr = rig.ms->addressSpace().translate(kA, kV);
    const Cycle t1 = rig.ms->dataProbe(0, kA, kV, 0);
    EXPECT_EQ(rig.ms->l1d(0).peek(paddr), nullptr);
    EXPECT_EQ(rig.ms->l2().peek(paddr), nullptr);
    // A mutating access then makes the next probe fast.
    rig.ms->dataAccess(0, kA, kV, 1, false, false, 10);
    const Cycle t2 = rig.ms->dataProbe(0, kA, kV, 20);
    EXPECT_LT(t2, t1);
}

TEST(MemSysProbe, TimeProbeSeesFilterContents)
{
    Rig rig;
    rig.ms->dataAccess(0, kA, kV, 1, false, true, 0);
    EXPECT_EQ(rig.ms->timeProbe(0, kA, kV), 1u);
    rig.ms->muontrap(0).flush(FlushReason::Explicit);
    EXPECT_GT(rig.ms->timeProbe(0, kA, kV), 50u)
        << "after the flush the speculative line is gone everywhere";
}

TEST(MemSysProbe, StoreProbeDistinguishesOwnership)
{
    Rig rig(MuonTrapConfig::off(), 2);
    // Core 0 takes M.
    rig.ms->dataAccess(0, kA, kV, 1, true, false, 0);
    rig.ms->commitData(0, kA, kV, 1, true, false, 10);
    const Cycle own = rig.ms->timeStoreProbe(0, kA, kV);
    const Cycle other = rig.ms->timeStoreProbe(1, kA, kV);
    EXPECT_LT(own, other);
}

// --- functional data ------------------------------------------------------------

TEST(MemSysFunc, ReadWriteThroughAddressSpace)
{
    Rig rig;
    rig.ms->write(kA, 0x8000, 1234);
    EXPECT_EQ(rig.ms->read(kA, 0x8000), 1234u);
    // Different ASID sees different memory (no alias configured).
    EXPECT_NE(rig.ms->read(2, 0x8000), 1234u);
}

TEST(MemSysFunc, SharedAliasGivesSharedData)
{
    Rig rig;
    rig.ms->addressSpace().alias(1, 0x10000, 0x77000000, kPageBytes);
    rig.ms->addressSpace().alias(2, 0x20000, 0x77000000, kPageBytes);
    rig.ms->write(1, 0x10040, 99);
    EXPECT_EQ(rig.ms->read(2, 0x20040), 99u);
}

} // namespace
} // namespace mtrap

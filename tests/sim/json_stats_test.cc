/**
 * @file
 * Unit tests for the JSON statistics writer and the StatGroup visitor.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/json_stats.hh"

namespace mtrap
{
namespace
{

TEST(JsonEscape, HandlesSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
}

TEST(StatGroupVisit, WalksSubtreeWithPaths)
{
    StatGroup root("sys");
    StatGroup child("l1", &root);
    Counter a(&root, "a", "");
    Counter b(&child, "b", "");
    a += 3;
    b += 4;

    std::vector<std::string> paths;
    root.visit([&paths](const std::string &p, const StatView &) {
        paths.push_back(p);
    });
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0], "sys.a");
    EXPECT_EQ(paths[1], "sys.l1.b");
}

TEST(DumpStatsJson, EmitsValidLookingObject)
{
    StatGroup root("sys");
    Counter c(&root, "count", "");
    c += 42;
    Average avg(&root, "avg", "");
    avg.sample(2.0);

    std::ostringstream os;
    dumpStatsJson(root, os);
    const std::string s = os.str();
    EXPECT_EQ(s.front(), '{');
    EXPECT_NE(s.find("\"sys.count\": \"42\""), std::string::npos);
    EXPECT_NE(s.find("\"sys.avg\""), std::string::npos);
    // Exactly one comma between the two entries.
    EXPECT_EQ(std::count(s.begin(), s.end(), ','), 1);
}

TEST(DumpStatsJson, EscapesHostileStatNames)
{
    // A workload/config label can reach a group name (CacheParams::name
    // and friends); quotes, backslashes and control characters in it
    // must not break the JSON framing.
    StatGroup root("sys");
    StatGroup evil("l1\"d\\x\n", &root);
    Counter c(&evil, "hits", "");
    c += 3;

    std::ostringstream os;
    dumpStatsJson(root, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"sys.l1\\\"d\\\\x\\n.hits\": \"3\""),
              std::string::npos);
    // No raw quote/newline survives inside the key.
    EXPECT_EQ(s.find("l1\"d"), std::string::npos);
    EXPECT_EQ(s.find("x\n.hits"), std::string::npos);
}

TEST(DumpStatsJson, EmptyGroupStillValid)
{
    StatGroup root("sys");
    std::ostringstream os;
    dumpStatsJson(root, os);
    EXPECT_NE(os.str().find("{"), std::string::npos);
    EXPECT_NE(os.str().find("}"), std::string::npos);
}

TEST(DumpRunResultJson, ContainsAllFields)
{
    RunResult r;
    r.workload = "mcf";
    r.configName = "MuonTrap";
    r.cycles = 1234;
    r.instructionsPerCore = 1000;
    r.ipc = 0.81;
    std::ostringstream os;
    dumpRunResultJson(r, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"workload\": \"mcf\""), std::string::npos);
    EXPECT_NE(s.find("\"cycles\": 1234"), std::string::npos);
    EXPECT_NE(s.find("\"ipc\": 0.81"), std::string::npos);
}

} // namespace
} // namespace mtrap

/**
 * @file
 * Gang-scheduler determinism and security properties:
 *  - chunked and monolithic multi-core scheduled runs produce identical
 *    stats (scheduling decisions sit on a fixed commit grid, so budget
 *    chunking cannot move them);
 *  - gang placement is deterministic/seed-stable and uses distinct
 *    cores per thread;
 *  - a context switch under MuonTrap actually flushes the filter
 *    structures (the security property time-sharing relies on);
 *  - load balancing migrates queued work onto a core that ran dry;
 *  - Scheduler::run keeps the exact-total-commit contract on many
 *    cores.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "sim/runner.hh"
#include "sim/scheduler.hh"
#include "sim/system.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{
namespace
{

std::string
statsOf(System &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

/** A 4-core MuonTrap system with a mixed job set: four single-thread
 *  SPEC jobs plus one 2-thread PARSEC gang, distinct asids. */
std::unique_ptr<System>
buildMixedSystem(Cycle quantum)
{
    SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 4);
    auto sys = std::make_unique<System>(cfg);
    SchedParams sp;
    sp.quantum = quantum;
    sys->attachScheduler(sp);
    Asid asid = 1;
    for (const char *name : {"hmmer", "gamess", "mcf", "gcc"})
        sys->addScheduledWorkload(
            buildWorkload(specProfile(name), asid++));
    sys->addScheduledWorkload(
        buildWorkload(parsecProfile("canneal", 2), asid++));
    return sys;
}

TEST(GangScheduler, ChunkedEqualsMonolithicMultiCore)
{
    auto mono = buildMixedSystem(/*quantum=*/9'000);
    auto chunked = buildMixedSystem(/*quantum=*/9'000);

    const std::uint64_t total = 120'000;
    EXPECT_EQ(mono->runScheduled(total), total);

    // Ragged chunks, crossing both the scheduler's decision grid and
    // quantum boundaries at arbitrary offsets.
    std::uint64_t done = 0;
    const std::uint64_t chunks[] = {1, 777, 512, 10'000, 3, 1'291};
    std::size_t i = 0;
    while (done < total) {
        const std::uint64_t want =
            std::min(chunks[i++ % 6], total - done);
        const std::uint64_t did = chunked->runScheduled(want);
        ASSERT_GT(did, 0u);
        done += did;
    }
    EXPECT_EQ(done, total);

    EXPECT_EQ(statsOf(*mono), statsOf(*chunked));
    EXPECT_EQ(mono->scheduler()->switches(),
              chunked->scheduler()->switches());
    EXPECT_EQ(mono->scheduler()->migrations(),
              chunked->scheduler()->migrations());
}

TEST(GangScheduler, GangPlacementIsDeterministicAndDisjoint)
{
    auto a = buildMixedSystem(10'000);
    auto b = buildMixedSystem(10'000);

    // Five jobs were admitted; placements must agree run to run.
    for (JobId job = 0; job < 5; ++job)
        EXPECT_EQ(a->scheduler()->placement(job),
                  b->scheduler()->placement(job))
            << "job " << job;

    // The gang (job 4, two threads) occupies two distinct cores.
    const std::vector<CoreId> gang = a->scheduler()->placement(4);
    ASSERT_EQ(gang.size(), 2u);
    EXPECT_NE(gang[0], gang[1]);
}

TEST(GangScheduler, ContextSwitchUnderMuonTrapFlushesFilter)
{
    SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 1);
    System sys(cfg);
    const Workload w1 = buildWorkload(specProfile("hmmer"), 1);
    const Workload w2 = buildWorkload(specProfile("gamess"), 2);
    if (w1.init)
        w1.init(sys.mem());
    if (w2.init)
        w2.init(sys.mem());

    // Populate the filter cache with w1's speculative footprint.
    ArchContext ctx;
    ctx.program = &w1.threadPrograms[0];
    ctx.asid = w1.asid;
    ctx.pc = w1.threadPrograms[0].entry;
    sys.core(0).setContext(ctx);
    sys.core(0).run(5'000);
    EXPECT_GT(sys.mem().muontrap(0).dataFilter()->validLineCount(), 0u);

    // The switch must leave no attacker-observable filter state behind.
    ArchContext next;
    next.program = &w2.threadPrograms[0];
    next.asid = w2.asid;
    next.pc = w2.threadPrograms[0].entry;
    sys.core(0).contextSwitch(next);
    EXPECT_EQ(sys.mem().muontrap(0).dataFilter()->validLineCount(), 0u);
    EXPECT_GE(sys.mem().muontrap(0).flushCtxSwitch.value(), 1u);
}

TEST(GangScheduler, EveryScheduledSwitchFlushesItsCoreFilter)
{
    auto sys = buildMixedSystem(/*quantum=*/7'000);
    sys->runScheduled(100'000);
    ASSERT_GT(sys->scheduler()->switches(), 0u);

    std::uint64_t flushes = 0;
    for (CoreId c = 0; c < sys->numCores(); ++c)
        flushes += sys->mem().muontrap(c).flushCtxSwitch.value();
    EXPECT_EQ(flushes, sys->scheduler()->switches());
}

TEST(GangScheduler, MigrationRefillsACoreThatRanDry)
{
    // Least-loaded admission places the two short-lived jobs on core 0
    // and the two infinite SPEC jobs on core 1. Once both short jobs
    // halt, core 0 runs dry and load balancing must migrate one of
    // core 1's queued jobs over (and the totals must stay exact).
    ProgramBuilder b("short");
    b.movi(1, 0);
    for (int i = 0; i < 64; ++i)
        b.addi(1, 1, 1);
    b.halt();
    const Program short_prog = b.take();

    SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 2);
    System sys(cfg);
    SchedParams sp;
    sp.quantum = 5'000;
    sys.attachScheduler(sp);

    const Workload w1 = buildWorkload(specProfile("hmmer"), 3);
    const Workload w2 = buildWorkload(specProfile("gamess"), 4);

    Scheduler &sched = *sys.scheduler();
    sched.addTask(&short_prog, 1);  // -> core 0
    sys.addScheduledWorkload(w1);   // -> core 1
    sched.addTask(&short_prog, 2);  // -> core 0
    sys.addScheduledWorkload(w2);   // -> core 1

    EXPECT_EQ(sys.runScheduled(60'000), 60'000u);
    EXPECT_GE(sched.migrations(), 1u);
}

TEST(GangScheduler, RunTotalsAreExactAcrossCores)
{
    auto sys = buildMixedSystem(11'000);
    EXPECT_EQ(sys->runScheduled(40'003), 40'003u);
    EXPECT_EQ(sys->runScheduled(17), 17u);
    EXPECT_EQ(sys->runScheduled(99'980), 99'980u);
}

TEST(GangScheduler, DecisionTraceRecordsOccupancyRows)
{
    auto build = [] {
        SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 2);
        auto sys = std::make_unique<System>(cfg);
        SchedParams sp;
        sp.quantum = 5'000;
        sp.trace = true;
        sys->attachScheduler(sp);
        Asid asid = 1;
        for (const char *name : {"hmmer", "gamess", "mcf"})
            sys->addScheduledWorkload(
                buildWorkload(specProfile(name), asid++));
        return sys;
    };

    auto sys = build();
    EXPECT_EQ(sys->runScheduled(30'000), 30'000u);
    const auto &rows = sys->scheduler()->trace();
    ASSERT_FALSE(rows.empty());
    std::uint64_t runs = 0;
    for (const SchedTraceRow &r : rows) {
        EXPECT_LT(r.core, 2u);
        const std::string action = r.action;
        EXPECT_TRUE(action == "run" || action == "idle" ||
                    action == "park");
        if (action == "run") {
            ++runs;
            EXPECT_GE(r.job, 0);
            EXPECT_LT(r.job, 3);
            EXPECT_EQ(r.thread, 0); // single-threaded jobs
        } else {
            EXPECT_EQ(r.job, -1);
        }
        EXPECT_EQ(r.slot, r.when / 5'000);
    }
    EXPECT_GT(runs, 0u);

    // CSV serialisation: header plus one line per decision.
    std::ostringstream csv;
    writeSchedTrace(*sys->scheduler(), csv);
    const std::string s = csv.str();
    EXPECT_EQ(s.rfind("cycle,slot,core,job,thread,action\n", 0), 0u);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(s.begin(), s.end(), '\n')),
              rows.size() + 1);

    // The trace is deterministic: an identical run traces identically.
    auto sys2 = build();
    EXPECT_EQ(sys2->runScheduled(30'000), 30'000u);
    std::ostringstream csv2;
    writeSchedTrace(*sys2->scheduler(), csv2);
    EXPECT_EQ(csv.str(), csv2.str());

    // Tracing must not perturb the simulation itself.
    auto untraced = [] {
        SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 2);
        auto sys = std::make_unique<System>(cfg);
        SchedParams sp;
        sp.quantum = 5'000;
        sys->attachScheduler(sp);
        Asid asid = 1;
        for (const char *name : {"hmmer", "gamess", "mcf"})
            sys->addScheduledWorkload(
                buildWorkload(specProfile(name), asid++));
        EXPECT_EQ(sys->runScheduled(30'000), 30'000u);
        return statsOf(*sys);
    };
    EXPECT_EQ(statsOf(*sys), untraced());
}

} // namespace
} // namespace mtrap

/**
 * @file
 * Property-based tests: security invariants that must hold across
 * arbitrary (randomised, seeded) execution under every MuonTrap
 * geometry, checked with parameterised sweeps.
 *
 * The core invariants from the paper:
 *  I1. Filter caches only ever hold lines in the Shared state.
 *  I2. No uncommitted (speculative) line ever appears in a
 *      non-speculative cache (L1/L2 lines are always committed).
 *  I3. After a flash clear, no filter line is observable.
 *  I4. The main TLB never holds a translation that was only used
 *      speculatively (with the filter TLB enabled).
 *  I5. Speculative accesses never change a remote private cache's M/E
 *      state (reduced coherency speculation).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/log.hh"
#include "sim/mem_system.hh"
#include "sim/runner.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{
namespace
{

struct PropertyParam
{
    std::uint64_t filterSize;
    unsigned filterAssoc;
    std::uint64_t seed;
};

class FilterInvariantTest : public ::testing::TestWithParam<PropertyParam>
{
  protected:
    void
    SetUp() override
    {
        MuonTrapConfig mt = MuonTrapConfig::full();
        mt.dataParams.sizeBytes = GetParam().filterSize;
        mt.dataParams.assoc = GetParam().filterAssoc;
        mt.instParams.sizeBytes = GetParam().filterSize;
        mt.instParams.assoc = GetParam().filterAssoc;
        MemSystemParams p;
        p.cores = 2;
        p.mt = mt;
        root = std::make_unique<StatGroup>("rig");
        ms = std::make_unique<MemSystem>(p, root.get());
    }

    /** Drive a random mixture of speculative/committed accesses from
     *  both cores. Returns the set of vaddrs that were committed. */
    void
    randomTraffic(unsigned ops)
    {
        Rng rng(GetParam().seed);
        for (unsigned i = 0; i < ops; ++i) {
            const CoreId core = static_cast<CoreId>(rng.below(2));
            const Asid asid = 1 + static_cast<Asid>(rng.below(2));
            const Addr vaddr = 0x10000000 + rng.below(256) * kLineBytes;
            const bool store = rng.chance(0.3);
            const bool commit = rng.chance(0.5);
            DataAccessResult r = ms->dataAccess(core, asid, vaddr, i,
                                                store, true, i * 4);
            if (!r.nacked && commit)
                ms->commitData(core, asid, vaddr, i, store, r.tlbMiss,
                               i * 4 + 100);
            if (rng.chance(0.05))
                ms->onContextSwitch(core, i * 4 + 200);
            if (rng.chance(0.1))
                ms->ifetchAccess(core, asid, 0x400000 + rng.below(64) * 64,
                                 i * 4);
        }
    }

    void
    checkI1FilterOnlyShared()
    {
        for (CoreId c = 0; c < 2; ++c) {
            auto check = [](CacheLine &l) {
                EXPECT_EQ(l.state, CoherState::Shared)
                    << "I1: filter caches may only hold S";
                EXPECT_FALSE(l.dirty);
            };
            ms->muontrap(c).dataFilter()->forEachLine(check);
            ms->muontrap(c).instFilter()->forEachLine(check);
        }
    }

    void
    checkI2NonSpecCachesCommitted()
    {
        auto check = [](CacheLine &l) {
            EXPECT_TRUE(l.committed)
                << "I2: L1/L2 lines must always be committed";
        };
        for (CoreId c = 0; c < 2; ++c) {
            ms->l1d(c).forEachLine(check);
            ms->l1i(c).forEachLine(check);
        }
        ms->l2().forEachLine(check);
    }

    std::unique_ptr<StatGroup> root;
    std::unique_ptr<MemSystem> ms;
};

TEST_P(FilterInvariantTest, I1FilterOnlySharedUnderRandomTraffic)
{
    randomTraffic(3000);
    checkI1FilterOnlyShared();
}

TEST_P(FilterInvariantTest, I2NoSpeculativeLineInNonSpecCaches)
{
    randomTraffic(3000);
    checkI2NonSpecCachesCommitted();
}

TEST_P(FilterInvariantTest, I3FlashClearLeavesNothingObservable)
{
    randomTraffic(1500);
    for (CoreId c = 0; c < 2; ++c) {
        ms->muontrap(c).flush(FlushReason::ContextSwitch);
        EXPECT_EQ(ms->muontrap(c).dataFilter()->validLineCount(), 0u);
        EXPECT_EQ(ms->muontrap(c).instFilter()->validLineCount(), 0u);
        EXPECT_EQ(ms->muontrap(c).filterTlb()->validCount(), 0u);
    }
}

TEST_P(FilterInvariantTest, I4MainTlbOnlyCommittedTranslations)
{
    // Purely speculative traffic (never committed): the main D-TLB must
    // stay empty.
    Rng rng(GetParam().seed ^ 0xabcd);
    for (unsigned i = 0; i < 500; ++i) {
        const Addr vaddr = 0x40000000 + rng.below(128) * kPageBytes;
        ms->dataAccess(0, 1, vaddr, i, false, true, i * 4);
    }
    EXPECT_EQ(ms->dtlb(0).validCount(), 0u)
        << "I4: speculative-only translations must stay in the filter "
           "TLB";
}

TEST_P(FilterInvariantTest, I5SpeculationNeverDemotesRemoteExclusive)
{
    // Core 1 owns a set of lines in M (committed stores).
    std::vector<Addr> owned;
    for (unsigned i = 0; i < 16; ++i) {
        const Addr vaddr = 0x20000000 + i * kLineBytes;
        DataAccessResult r = ms->dataAccess(1, 1, vaddr, i, true, true,
                                            i * 4);
        ms->commitData(1, 1, vaddr, i, true, r.tlbMiss, i * 4 + 10);
        owned.push_back(vaddr);
    }
    // Core 0 speculatively sprays loads over the same lines.
    for (Addr vaddr : owned)
        ms->dataAccess(0, 1, vaddr, 99, false, true, 1000);
    // Every owned line must still be M in core 1's L1.
    for (Addr vaddr : owned) {
        const Addr paddr = ms->addressSpace().translate(1, vaddr);
        const CacheLine *l = ms->l1d(1).peek(paddr);
        ASSERT_NE(l, nullptr);
        EXPECT_EQ(l->state, CoherState::Modified)
            << "I5: a speculative access demoted a remote M line";
    }
    EXPECT_GT(ms->bus().nacks.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    GeometriesAndSeeds, FilterInvariantTest,
    ::testing::Values(PropertyParam{256, 4, 1}, PropertyParam{512, 4, 2},
                      PropertyParam{2048, 4, 3}, PropertyParam{2048, 1, 4},
                      PropertyParam{2048, 32, 5},
                      PropertyParam{4096, 8, 6}, PropertyParam{64, 1, 7},
                      PropertyParam{2048, 4, 8}, PropertyParam{1024, 2, 9},
                      PropertyParam{2048, 4, 10}),
    [](const auto &info) {
        return strfmt("f%llu_a%u_s%llu",
                      static_cast<unsigned long long>(
                          info.param.filterSize),
                      info.param.filterAssoc,
                      static_cast<unsigned long long>(info.param.seed));
    });

// --- whole-system properties over real programs -----------------------------

class SchemeInvariantTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SchemeInvariantTest, MuonTrapL1NeverHoldsUncommittedLines)
{
    RunOptions opt;
    opt.warmupInstructions = 3'000;
    opt.measureInstructions = 10'000;
    RunOutput out = runConfigured(
        buildSpecWorkload(GetParam()),
        SystemConfig::forScheme(Scheme::MuonTrap, 1), opt, "mt");
    auto check = [](CacheLine &l) { EXPECT_TRUE(l.committed); };
    out.system->mem().l1d(0).forEachLine(check);
    out.system->mem().l1i(0).forEachLine(check);
    out.system->mem().l2().forEachLine(check);
}

TEST_P(SchemeInvariantTest, FilterStateSharedAfterRealPrograms)
{
    RunOptions opt;
    opt.warmupInstructions = 3'000;
    opt.measureInstructions = 10'000;
    RunOutput out = runConfigured(
        buildSpecWorkload(GetParam()),
        SystemConfig::forScheme(Scheme::MuonTrap, 1), opt, "mt");
    out.system->mem().muontrap(0).dataFilter()->forEachLine(
        [](CacheLine &l) {
            EXPECT_EQ(l.state, CoherState::Shared);
        });
}

INSTANTIATE_TEST_SUITE_P(RepresentativeBenchmarks, SchemeInvariantTest,
                         ::testing::Values("astar", "lbm", "mcf",
                                           "gobmk", "povray", "zeusmp"));

} // namespace
} // namespace mtrap

/**
 * @file
 * Integration tests: whole-system runs across schemes, the scheduler,
 * multi-core interleaving, and the runner/report utilities.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/scheduler.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{
namespace
{

RunOptions
quick()
{
    RunOptions opt;
    opt.warmupInstructions = 4'000;
    opt.measureInstructions = 15'000;
    return opt;
}

TEST(Integration, EverySchemeRunsEverywhere)
{
    const Workload w = buildSpecWorkload("bzip2");
    for (Scheme s : allSchemes()) {
        const RunResult r = runScheme(w, s, quick());
        EXPECT_GT(r.cycles, 0u) << schemeName(s);
        EXPECT_GT(r.ipc, 0.05) << schemeName(s);
        EXPECT_LT(r.ipc, 8.1) << schemeName(s);
    }
}

TEST(Integration, NormalizedTimesInSaneRange)
{
    const Workload w = buildSpecWorkload("hmmer");
    const RunResult base = runScheme(w, Scheme::Baseline, quick());
    for (Scheme s : allSchemes()) {
        const double n = normalizedTime(runScheme(w, s, quick()), base);
        EXPECT_GT(n, 0.5) << schemeName(s);
        EXPECT_LT(n, 4.0) << schemeName(s);
    }
}

TEST(Integration, MultiCoreParsecRunsAllThreads)
{
    const Workload w = buildParsecWorkload("swaptions");
    RunOutput out = runConfigured(
        w, SystemConfig::forScheme(Scheme::MuonTrap, 4), quick(), "mt");
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_GT(out.system->core(c).committedCount(), 10'000u)
            << "core " << c;
}

TEST(Integration, DeterministicAcrossRuns)
{
    const Workload w = buildSpecWorkload("gcc");
    const RunResult a = runScheme(w, Scheme::MuonTrap, quick());
    const RunResult b = runScheme(w, Scheme::MuonTrap, quick());
    EXPECT_EQ(a.cycles, b.cycles)
        << "identical configuration must be bit-reproducible";
}

TEST(Integration, MuonTrapCommitsWriteThroughs)
{
    RunOutput out = runConfigured(
        buildSpecWorkload("soplex"),
        SystemConfig::forScheme(Scheme::MuonTrap, 1), quick(), "mt");
    EXPECT_GT(out.system->mem().commitWriteThroughs.value(), 100u);
}

TEST(Integration, RunnerResetsStatsAfterWarmup)
{
    RunOutput out = runConfigured(
        buildSpecWorkload("hmmer"),
        SystemConfig::forScheme(Scheme::Baseline, 1), quick(), "b");
    // Committed counters were reset post-warmup; core counter keeps the
    // absolute value but the stats group was reset.
    EXPECT_GE(out.system->core(0).committedCount(),
              quick().measureInstructions);
}

// --- scheduler -------------------------------------------------------------

TEST(Scheduler, RoundRobinsAndFlushes)
{
    SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 1);
    System sys(cfg);
    const Workload w1 = buildSpecWorkload("hmmer");
    const Workload w2 = buildSpecWorkload("gamess");
    if (w1.init)
        w1.init(sys.mem());
    if (w2.init)
        w2.init(sys.mem());

    Scheduler sched(&sys.core(0), /*quantum=*/20'000);
    sched.addTask(&w1.threadPrograms[0], 1);
    sched.addTask(&w2.threadPrograms[0], 2);
    const std::uint64_t done = sched.run(120'000);
    EXPECT_GE(done, 120'000u);
    EXPECT_GE(sched.switches(), 2u);
    // Each switch flushed the filters.
    EXPECT_GE(sys.mem().muontrap(0).flushCtxSwitch.value(),
              sched.switches());
}

TEST(Scheduler, SingleTaskNeverSwitches)
{
    SystemConfig cfg = SystemConfig::forScheme(Scheme::Baseline, 1);
    System sys(cfg);
    const Workload w = buildSpecWorkload("hmmer");
    if (w.init)
        w.init(sys.mem());
    Scheduler sched(&sys.core(0), 10'000);
    sched.addTask(&w.threadPrograms[0], 1);
    sched.run(50'000);
    EXPECT_EQ(sched.switches(), 0u);
}

// --- report utilities ----------------------------------------------------------

TEST(Report, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 4.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Report, TableAlignsAndCsv)
{
    ReportTable t("demo");
    t.header({"bench", "a", "b"});
    t.rowNumeric("x", {1.0, 2.0});
    t.rowNumeric("y", {4.0, 8.0});
    t.geomeanRow();
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("demo"), std::string::npos);
    EXPECT_NE(os.str().find("geomean"), std::string::npos);
    EXPECT_NE(os.str().find("2.000"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("bench,a,b"), std::string::npos);
    EXPECT_NE(csv.str().find("x,1.000,2.000"), std::string::npos);
}

TEST(Report, GeomeanRowComputesPerColumn)
{
    ReportTable t("demo");
    t.header({"bench", "v"});
    t.rowNumeric("x", {1.0});
    t.rowNumeric("y", {4.0});
    t.geomeanRow();
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("geomean,2.000"), std::string::npos);
}

} // namespace
} // namespace mtrap

/**
 * @file
 * Reset-identity tests guarding the interned-schema stat sheets' reset
 * path: resetAll() is now a memset over each group's sheet, and these
 * tests pin down that (a) a used-then-reset System dumps stats
 * bit-identical to a freshly constructed one, and (b) the
 * reset-then-rerun sequence every runner performs (warmup, reset,
 * measure) stays fully deterministic — across all six schemes the
 * figures sweep.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/job.hh"
#include "sim/json_stats.hh"
#include "sim/system.hh"

namespace mtrap
{
namespace
{

const Scheme kSchemes[] = {
    Scheme::Baseline,         Scheme::MuonTrap,
    Scheme::InvisiSpecSpectre, Scheme::InvisiSpecFuture,
    Scheme::SttSpectre,        Scheme::SttFuture,
};

std::string
textDump(System &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

std::string
jsonDump(System &sys)
{
    std::ostringstream os;
    dumpStatsJson(sys.root(), os);
    return os.str();
}

TEST(ResetIdentity, ResetSystemDumpsBitIdenticalToFreshOne)
{
    for (Scheme s : kSchemes) {
        SCOPED_TRACE(schemeName(s));
        const SystemConfig cfg = SystemConfig::forScheme(s, 1);
        const Workload w =
            harness::buildNamedWorkload("mcf", /*seed=*/0, /*asid=*/1);

        System used(cfg);
        used.loadWorkload(w);
        used.run(3000);
        used.resetStats();

        System fresh(cfg);

        EXPECT_EQ(textDump(used), textDump(fresh));
        EXPECT_EQ(jsonDump(used), jsonDump(fresh));
    }
}

TEST(ResetIdentity, ResetThenRerunIsDeterministic)
{
    // The runner's warmup/reset/measure sequence on two independently
    // constructed systems must agree byte-for-byte: stale sheet words
    // surviving a reset (or reset touching the wrong words) would
    // diverge here.
    for (Scheme s : kSchemes) {
        SCOPED_TRACE(schemeName(s));
        const SystemConfig cfg = SystemConfig::forScheme(s, 1);
        const Workload w =
            harness::buildNamedWorkload("gcc", /*seed=*/0, /*asid=*/1);

        auto prepare = [&]() {
            System sys(cfg);
            sys.loadWorkload(w);
            sys.run(1000); // warmup
            sys.resetStats();
            sys.run(2000); // measure
            sys.drainAll();
            return textDump(sys);
        };
        EXPECT_EQ(prepare(), prepare());
    }
}

} // namespace
} // namespace mtrap

/**
 * @file
 * Acceptance tests for the interned stat schema + zero-allocation
 * telemetry sheets: once the process is warm (every component type's
 * schema registered, every runtime group name interned), constructing a
 * System must build ZERO stat-name strings — the cost the refactor
 * removed from the sweep-churn hot path. Also locks down schema/sheet
 * separation (instances share defs, never values) and the StatName
 * interner semantics.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "harness/job.hh"
#include "sim/system.hh"

namespace mtrap
{
namespace
{

std::string
textDump(System &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

TEST(StatSchema, WarmSystemConstructionBuildsNoNameStrings)
{
    // Warm every schema and interned name this configuration uses
    // (first sighting may construct strings — that is the "registered
    // once, at first use" half of the design).
    { System warm(SystemConfig::forScheme(Scheme::MuonTrap, 2)); }

    const std::uint64_t before = StatNames::constructions();
    System sys(SystemConfig::forScheme(Scheme::MuonTrap, 2));
    EXPECT_EQ(StatNames::constructions(), before)
        << "constructing a warm System built stat-name strings";
}

TEST(StatSchema, WarmChurnAcrossSchemesBuildsNoNameStrings)
{
    // The attack-vignette / sweep shape: alternating schemes, repeated
    // build+teardown. After one warm lap, the whole loop must not
    // construct a single stat-name string.
    const Scheme schemes[] = {Scheme::Baseline, Scheme::MuonTrap,
                              Scheme::InvisiSpecSpectre,
                              Scheme::SttSpectre};
    for (Scheme s : schemes) {
        System warm(SystemConfig::forScheme(s, 1));
    }

    const std::uint64_t before = StatNames::constructions();
    for (unsigned lap = 0; lap < 3; ++lap)
        for (Scheme s : schemes) {
            System sys(SystemConfig::forScheme(s, 1));
        }
    EXPECT_EQ(StatNames::constructions(), before);
}

TEST(StatSchema, InstancesShareDefsButNotValues)
{
    StatGroup pa("a"), pb("b");
    CacheParams params;
    params.name = "shared";
    Cache ca(params, &pa);
    Cache cb(params, &pb);

    ++ca.hits;
    ++ca.hits;
    EXPECT_EQ(ca.hits.value(), 2u);
    EXPECT_EQ(cb.hits.value(), 0u) << "sheet storage leaked across "
                                      "instances of one schema";

    std::ostringstream osa, osb;
    ca.fill(0x1000, CoherState::Exclusive);
    pa.dump(osa);
    pb.dump(osb);
    EXPECT_NE(osa.str().find("a.shared.hits = 2"), std::string::npos);
    EXPECT_NE(osb.str().find("b.shared.hits = 0"), std::string::npos);
    EXPECT_NE(osb.str().find("b.shared.fills = 0"), std::string::npos);
}

TEST(StatSchema, FreshSystemsDumpIdentically)
{
    const SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 2);
    System a(cfg), b(cfg);
    EXPECT_EQ(textDump(a), textDump(b));
}

TEST(StatName, InternedNamesAreStableAndDeduplicated)
{
    const StatName a = StatName::indexed("l9q", 3);
    EXPECT_EQ(a.str(), "l9q3");
    const std::uint64_t before = StatNames::constructions();
    const StatName b = StatName::indexed("l9q", 3);
    EXPECT_EQ(StatNames::constructions(), before)
        << "re-interning a known name constructed a string";
    EXPECT_EQ(a.id(), b.id());

    const StatName c = a.withSuffix("_filter");
    EXPECT_EQ(c.str(), "l9q3_filter");
    EXPECT_EQ(a.withSuffix("_filter").id(), c.id());
}

TEST(StatSchema, ResetAllZeroesEveryKind)
{
    StatGroup g("g");
    Counter c(&g, "c", "");
    Average a(&g, "a", "");
    Histogram h(&g, "h", "", 10, 4);
    c += 7;
    a.sample(2.5);
    h.sample(15);
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCount(1), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

} // namespace
} // namespace mtrap

/**
 * @file
 * Golden-stat regression tests: tiny canonical runs of every harness
 * suite, checked byte-for-byte against committed golden JSON artifacts.
 *
 * Before this test, "all figure tables and artifacts are byte-identical
 * before/after" was a manual diffing ritual each perf PR repeated by
 * hand. Here ctest enforces it: each --suite row (fig3..fig9, security,
 * sched, server) runs a down-scaled but canonical sweep (2000 measured /
 * 400
 * warmup instructions, single worker, seed 0 — exactly the legacy
 * deterministic path) and serialises the raw results through
 * ResultStore::writeJson. The JSON must match tests/golden/<suite>.json
 * exactly: any change to simulation timing, stat accounting, artifact
 * formatting or job ordering fails the suite here, in CI, before a
 * human ever diffs a figure table.
 *
 * Intentional simulation changes regenerate the goldens with:
 *
 *     MTRAP_REGEN_GOLDEN=1 ./build/golden_test
 *
 * which rewrites the files in the source tree (the test then passes
 * trivially); commit the diff alongside the change that caused it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/pool.hh"
#include "harness/result_store.hh"
#include "harness/suites.hh"

#ifndef MTRAP_GOLDEN_DIR
#error "build must define MTRAP_GOLDEN_DIR"
#endif

namespace mtrap::harness
{
namespace
{

/** Canonical tiny run lengths: big enough to exercise warmup + stat
 *  reset + every scheme's machinery, small enough for tier-1. */
RunOptions
goldenOptions()
{
    RunOptions opt;
    opt.measureInstructions = 2000;
    opt.warmupInstructions = 400;
    return opt;
}

std::string
goldenPath(const std::string &suite)
{
    // MTRAP_GOLDEN_DIR_OVERRIDE redirects reads/writes away from the
    // source tree — tools/check_golden_regen.sh regenerates into two
    // temp dirs and compares them byte for byte without dirtying the
    // committed goldens.
    const char *dir = std::getenv("MTRAP_GOLDEN_DIR_OVERRIDE");
    if (!dir || !*dir)
        dir = MTRAP_GOLDEN_DIR;
    return std::string(dir) + "/" + suite + ".json";
}

/** Run one suite on a single worker and serialise its raw results. */
std::string
runSuiteJson(const std::string &name)
{
    const Suite suite = buildSuite(name, goldenOptions(), /*seed=*/0);
    ExperimentPool pool(1);
    ResultStore store;
    // runSuite prints progress to stderr; results land in the store.
    const int rc = runSuite(suite, pool, /*render_table=*/false, &store);
    EXPECT_EQ(rc, 0) << "suite " << name << " failed";
    std::ostringstream os;
    store.writeJson(os);
    return os.str();
}

class GoldenSuiteTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenSuiteTest, ArtifactMatchesGolden)
{
    const std::string name = GetParam();
    const std::string fresh = runSuiteJson(name);
    ASSERT_FALSE(fresh.empty());

    if (std::getenv("MTRAP_REGEN_GOLDEN")) {
        std::ofstream out(goldenPath(name), std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << goldenPath(name);
        out << fresh;
        SUCCEED() << "regenerated " << goldenPath(name);
        return;
    }

    std::ifstream in(goldenPath(name), std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << goldenPath(name)
                    << " — run MTRAP_REGEN_GOLDEN=1 ./golden_test";
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string golden = buf.str();

    if (fresh != golden) {
        // Pinpoint the first divergence for the failure message.
        std::size_t at = 0;
        while (at < fresh.size() && at < golden.size() &&
               fresh[at] == golden[at])
            ++at;
        FAIL() << "suite " << name
               << " artifact diverged from golden at byte " << at
               << "\n golden: ..."
               << golden.substr(at > 40 ? at - 40 : 0, 120)
               << "\n  fresh: ..."
               << fresh.substr(at > 40 ? at - 40 : 0, 120)
               << "\nIf the change is intentional, regenerate with "
                  "MTRAP_REGEN_GOLDEN=1 ./golden_test";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suites, GoldenSuiteTest, ::testing::ValuesIn(suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace mtrap::harness

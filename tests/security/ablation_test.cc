/**
 * @file
 * Ablation security tests: each MuonTrap sub-mechanism is load-bearing.
 * Removing one protection from the full configuration re-opens exactly
 * the attack it was introduced to block (paper attack boxes 3, 5, 6),
 * while the remaining attacks stay blocked.
 */

#include <gtest/gtest.h>

#include "workload/attacks.hh"

namespace mtrap
{
namespace
{

MuonTrapConfig
fullMinus(void (*strip)(MuonTrapConfig &))
{
    MuonTrapConfig c = MuonTrapConfig::full();
    strip(c);
    return c;
}

TEST(Ablation, WithoutCoherenceProtectionAttack3Leaks)
{
    const MuonTrapConfig mt = fullMinus([](MuonTrapConfig &c) {
        c.protectCoherence = false;
    });
    const AttackOutcome o = runSharedDataAttack(Scheme::MuonTrap, &mt);
    EXPECT_TRUE(o.leaked)
        << "without reduced coherency speculation the victim's "
           "speculative load demotes the attacker's M line";
}

TEST(Ablation, WithCoherenceProtectionAttack3Blocked)
{
    const MuonTrapConfig mt = MuonTrapConfig::full();
    EXPECT_FALSE(runSharedDataAttack(Scheme::MuonTrap, &mt).leaked);
}

TEST(Ablation, WithoutCommitPrefetchAttack5Leaks)
{
    const MuonTrapConfig mt = fullMinus([](MuonTrapConfig &c) {
        c.commitPrefetch = false;
    });
    const AttackOutcome o = runPrefetcherAttack(Scheme::MuonTrap, &mt);
    EXPECT_TRUE(o.leaked)
        << "access-time prefetcher training leaks wrong-path strides "
           "into the L2";
}

TEST(Ablation, WithoutInstFilterAttack6Leaks)
{
    const MuonTrapConfig mt = fullMinus([](MuonTrapConfig &c) {
        c.instFilter = false;
    });
    const AttackOutcome o = runIcacheAttack(Scheme::MuonTrap, &mt);
    EXPECT_TRUE(o.leaked)
        << "without the instruction filter, wrong-path fetches land in "
           "the shared L1I/L2";
}

TEST(Ablation, WithoutDataProtectionAttack1Leaks)
{
    // Insecure L0: L0 present but fills propagate — attack 1 returns.
    const MuonTrapConfig mt = MuonTrapConfig::insecureL0();
    EXPECT_TRUE(runSpectrePrimeProbe(Scheme::MuonTrap, &mt).leaked);
}

TEST(Ablation, StrippedMechanismsDoNotBreakTheOthers)
{
    // Removing the instruction filter must not re-open the data-cache
    // attack, and removing commit-prefetch must not re-open the
    // coherence attack: the mechanisms are independent.
    const MuonTrapConfig no_if = fullMinus([](MuonTrapConfig &c) {
        c.instFilter = false;
    });
    EXPECT_FALSE(runSpectrePrimeProbe(Scheme::MuonTrap, &no_if).leaked);

    const MuonTrapConfig no_pf = fullMinus([](MuonTrapConfig &c) {
        c.commitPrefetch = false;
    });
    EXPECT_FALSE(runSharedDataAttack(Scheme::MuonTrap, &no_pf).leaked);
}

TEST(Ablation, ParallelLookupStillBlocksEverything)
{
    // The §6.5 performance option must not weaken security.
    MuonTrapConfig mt = MuonTrapConfig::full();
    mt.parallelL0L1 = true;
    EXPECT_FALSE(runSpectrePrimeProbe(Scheme::MuonTrap, &mt).leaked);
    EXPECT_FALSE(runInclusionPolicyAttack(Scheme::MuonTrap, &mt).leaked);
    EXPECT_FALSE(runIcacheAttack(Scheme::MuonTrap, &mt).leaked);
}

} // namespace
} // namespace mtrap

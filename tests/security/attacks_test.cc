/**
 * @file
 * Security evaluation: each of the paper's six attacks must recover the
 * secret on the unprotected baseline and must be blocked by full
 * MuonTrap. Additional cases pin down which sub-mechanism does the
 * blocking (e.g. the insecure L0 still leaks).
 */

#include <gtest/gtest.h>

#include "workload/attacks.hh"

namespace mtrap
{
namespace
{

void
expectLeak(const AttackOutcome &o)
{
    EXPECT_TRUE(o.leaked) << o.attack << " on " << o.scheme
                          << ": recovered0=" << o.recovered0
                          << " recovered1=" << o.recovered1
                          << " t0=" << o.probe0Time
                          << " t1=" << o.probe1Time << " — " << o.detail;
}

void
expectBlocked(const AttackOutcome &o)
{
    EXPECT_FALSE(o.leaked) << o.attack << " on " << o.scheme
                           << ": recovered0=" << o.recovered0
                           << " recovered1=" << o.recovered1
                           << " t0=" << o.probe0Time
                           << " t1=" << o.probe1Time << " — " << o.detail;
}

// --- Attack 1: Spectre prime-and-probe ------------------------------------

TEST(Attack1SpectrePrimeProbe, LeaksOnBaseline)
{
    expectLeak(runSpectrePrimeProbe(Scheme::Baseline));
}

TEST(Attack1SpectrePrimeProbe, LeaksOnInsecureL0)
{
    // An unprotected L0 propagates speculative fills to the L1, so the
    // attack still works.
    expectLeak(runSpectrePrimeProbe(Scheme::InsecureL0));
}

TEST(Attack1SpectrePrimeProbe, BlockedByMuonTrap)
{
    expectBlocked(runSpectrePrimeProbe(Scheme::MuonTrap));
}

TEST(Attack1SpectrePrimeProbe, BlockedByMuonTrapClearMisspec)
{
    expectBlocked(runSpectrePrimeProbe(Scheme::MuonTrapClearMisspec));
}

// --- Attack 2: inclusion-policy --------------------------------------------

TEST(Attack2InclusionPolicy, LeaksOnBaseline)
{
    expectLeak(runInclusionPolicyAttack(Scheme::Baseline));
}

TEST(Attack2InclusionPolicy, BlockedByMuonTrap)
{
    expectBlocked(runInclusionPolicyAttack(Scheme::MuonTrap));
}

// --- Attack 3: shared-data (coherence) --------------------------------------

TEST(Attack3SharedData, LeaksOnBaseline)
{
    expectLeak(runSharedDataAttack(Scheme::Baseline));
}

TEST(Attack3SharedData, BlockedByMuonTrap)
{
    expectBlocked(runSharedDataAttack(Scheme::MuonTrap));
}

// --- Attack 4: filter-cache coherency ---------------------------------------

TEST(Attack4FilterCoherency, LeaksOnBaseline)
{
    expectLeak(runFilterCacheCoherencyAttack(Scheme::Baseline));
}

TEST(Attack4FilterCoherency, BlockedByMuonTrap)
{
    expectBlocked(runFilterCacheCoherencyAttack(Scheme::MuonTrap));
}

// --- Attack 5: prefetcher ----------------------------------------------------

TEST(Attack5Prefetcher, LeaksOnBaseline)
{
    expectLeak(runPrefetcherAttack(Scheme::Baseline));
}

TEST(Attack5Prefetcher, BlockedByMuonTrap)
{
    expectBlocked(runPrefetcherAttack(Scheme::MuonTrap));
}

// --- Attack 6: instruction cache ---------------------------------------------

TEST(Attack6Icache, LeaksOnBaseline)
{
    expectLeak(runIcacheAttack(Scheme::Baseline));
}

TEST(Attack6Icache, BlockedByMuonTrap)
{
    expectBlocked(runIcacheAttack(Scheme::MuonTrap));
}

// --- Spectre variant 2: branch-target injection -----------------------------

TEST(SpectreV2BtbInjection, LeaksOnBaseline)
{
    expectLeak(runSpectreBtbInjection(Scheme::Baseline));
}

TEST(SpectreV2BtbInjection, BlockedByMuonTrap)
{
    // The BTB injection itself still happens (MuonTrap leaves predictor
    // isolation to orthogonal mechanisms, §4.9) — but the cache channel
    // the gadget needs is closed.
    expectBlocked(runSpectreBtbInjection(Scheme::MuonTrap));
}

// --- Attack 7: committed bus covert channel ---------------------------------

TEST(Attack7BusCovert, LeaksOnBaseline)
{
    expectLeak(runBusCovertChannel(Scheme::Baseline));
}

TEST(Attack7BusCovert, LeaksUnderMuonTrap)
{
    // Negative control: the channel is committed/architectural, so no
    // speculation defence can (or should) close it.
    expectLeak(runBusCovertChannel(Scheme::MuonTrap));
}

// --- Attack 8: cross-core prefetcher channel ---------------------------------

TEST(Attack8PrefetchCovert, LeaksOnBaseline)
{
    expectLeak(runPrefetchCovertChannel(Scheme::Baseline));
}

TEST(Attack8PrefetchCovert, BlockedByMuonTrap)
{
    expectBlocked(runPrefetchCovertChannel(Scheme::MuonTrap));
}

// --- Attack 9: L2 prime-and-probe -------------------------------------------

TEST(Attack9L2PrimeProbe, LeaksOnBaseline)
{
    expectLeak(runL2PrimeProbe(Scheme::Baseline));
}

TEST(Attack9L2PrimeProbe, BlockedByMuonTrap)
{
    expectBlocked(runL2PrimeProbe(Scheme::MuonTrap));
}

// --- Attack 10: speculative-store channel ------------------------------------

TEST(Attack10SpecStore, LeaksOnBaseline)
{
    expectLeak(runSpecStoreChannel(Scheme::Baseline));
}

TEST(Attack10SpecStore, BlockedByMuonTrap)
{
    expectBlocked(runSpecStoreChannel(Scheme::MuonTrap));
}

TEST(Attack10SpecStore, SttForwardingGapLeaks)
{
    // STT clears the taint at store-to-load forwarding, so the probe
    // load issues unhindered: the attack's whole point.
    expectLeak(runSpecStoreChannel(Scheme::SttSpectre));
}

TEST(Attack10SpecStore, DelayOnMissBlocks)
{
    // The forwarded *value* is free, but the probe load still misses
    // the private hierarchy while shadowed, so it stalls past the
    // squash.
    expectBlocked(runSpecStoreChannel(Scheme::DelayOnMiss));
}

// --- Whole-suite matrix -------------------------------------------------------

TEST(AttackMatrix, MuonTrapMatchesDeclaredOutcomes)
{
    for (const AttackOutcome &o : runAllAttacks(Scheme::MuonTrap)) {
        if (expectedLeak(o.attack, Scheme::MuonTrap))
            expectLeak(o);
        else
            expectBlocked(o);
    }
}

TEST(AttackMatrix, AllLeakOnBaseline)
{
    for (const AttackOutcome &o : runAllAttacks(Scheme::Baseline))
        expectLeak(o);
}

} // namespace
} // namespace mtrap

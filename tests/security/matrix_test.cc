/**
 * @file
 * THE security matrix, declared in one place: for every
 * (attack, scheme) cell, whether the attack is expected to LEAK or be
 * blocked. This table is the single source of truth; ctest asserts
 * that (a) the library contract expectedLeak() — which the harness
 * verdict and docs are driven by — matches it cell for cell, and
 * (b) the live attack outcomes match it cell for cell. Any divergence
 * between code, harness and documentation therefore fails here first.
 *
 * Also pins the determinism contract for the extended choreographies:
 * running an attack twice yields identical outcomes, bit for bit.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "workload/attacks.hh"

namespace mtrap
{
namespace
{

/**
 * Declared expected-outcome table. One row per attack; one character
 * per scheme column ('L' = LEAK, 'b' = blocked). Columns follow
 * securityMatrixSchemes() order:
 *
 *   B = Baseline              V = InvisiSpec-Spectre
 *   I = Insecure-L0           S = STT-Spectre
 *   M = MuonTrap              D = DelayOnMiss
 *   C = MuonTrap-ClearMisspec
 *
 * Rationale per surprising cell:
 *  - 6:icache leaks under the load-side defences (V/S/D): they leave
 *    the instruction side unprotected; MuonTrap's instruction filter
 *    blocks it.
 *  - 7:bus-covert leaks everywhere: a committed, architectural channel
 *    — the matrix's negative control.
 *  - 10:spec-store leaks under STT only: store-to-load forwarding
 *    clears the taint before the probe load.
 */
struct DeclaredRow
{
    const char *attack;
    const char *cells; // B I M C V S D
};

constexpr DeclaredRow kDeclaredMatrix[] = {
    {"1:spectre-prime-probe", "LLbbbbb"},
    {"2:inclusion-policy",    "LLbbbbb"},
    {"3:shared-data",         "LLbbbbb"},
    {"4:filter-coherency",    "LLbbbbb"},
    {"5:prefetcher",          "LLbbbbb"},
    {"6:icache",              "LLbbLLL"},
    {"v2:btb-injection",      "LLbbbbb"},
    {"7:bus-covert",          "LLLLLLL"},
    {"8:prefetch-covert",     "LLbbbbb"},
    {"9:l2-prime-probe",      "LLbbbbb"},
    {"10:spec-store",         "LLbbbLb"},
};

constexpr std::size_t kRows = std::size(kDeclaredMatrix);

TEST(SecurityMatrix, ColumnsAreTheDocumentedSchemes)
{
    const std::vector<Scheme> &schemes = securityMatrixSchemes();
    const std::vector<std::string> expected = {
        "Baseline",           "Insecure-L0", "MuonTrap",
        "MuonTrap-ClearMisspec", "InvisiSpec-Spectre", "STT-Spectre",
        "DelayOnMiss",
    };
    ASSERT_EQ(schemes.size(), expected.size());
    for (std::size_t i = 0; i < schemes.size(); ++i)
        EXPECT_EQ(schemeName(schemes[i]), expected[i]);
    for (const DeclaredRow &row : kDeclaredMatrix)
        ASSERT_EQ(std::strlen(row.cells), schemes.size()) << row.attack;
}

TEST(SecurityMatrix, LibraryContractMatchesDeclaredTable)
{
    const std::vector<Scheme> &schemes = securityMatrixSchemes();
    for (const DeclaredRow &row : kDeclaredMatrix) {
        for (std::size_t c = 0; c < schemes.size(); ++c) {
            EXPECT_EQ(expectedLeak(row.attack, schemes[c]),
                      row.cells[c] == 'L')
                << row.attack << " under " << schemeName(schemes[c]);
        }
    }
}

TEST(SecurityMatrix, LiveOutcomesMatchDeclaredTableEveryCell)
{
    const std::vector<Scheme> &schemes = securityMatrixSchemes();
    for (std::size_t c = 0; c < schemes.size(); ++c) {
        const std::vector<AttackOutcome> outcomes =
            runAllAttacks(schemes[c]);
        ASSERT_EQ(outcomes.size(), kRows)
            << "runAllAttacks rows out of sync with the declared table";
        for (std::size_t r = 0; r < kRows; ++r) {
            const AttackOutcome &o = outcomes[r];
            ASSERT_EQ(o.attack, kDeclaredMatrix[r].attack)
                << "attack order out of sync with the declared table";
            EXPECT_EQ(o.leaked, kDeclaredMatrix[r].cells[c] == 'L')
                << o.attack << " under " << schemeName(schemes[c])
                << ": recovered0=" << o.recovered0
                << " recovered1=" << o.recovered1
                << " t0=" << o.probe0Time << " t1=" << o.probe1Time
                << " — " << o.detail;
        }
    }
}

// --- determinism of the extended choreographies ----------------------------

void
expectIdenticalOutcomes(const AttackOutcome &a, const AttackOutcome &b)
{
    EXPECT_EQ(a.attack, b.attack);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.leaked, b.leaked) << a.attack << " on " << a.scheme;
    EXPECT_EQ(a.recovered0, b.recovered0) << a.attack << " on "
                                          << a.scheme;
    EXPECT_EQ(a.recovered1, b.recovered1) << a.attack << " on "
                                          << a.scheme;
    EXPECT_EQ(a.probe0Time, b.probe0Time) << a.attack << " on "
                                          << a.scheme;
    EXPECT_EQ(a.probe1Time, b.probe1Time) << a.attack << " on "
                                          << a.scheme;
    EXPECT_EQ(a.detail, b.detail);
}

using AttackFn = AttackOutcome (*)(Scheme, const MuonTrapConfig *);

class NewAttackDeterminism
    : public ::testing::TestWithParam<std::pair<const char *, AttackFn>>
{
};

TEST_P(NewAttackDeterminism, RunTwiceIsBitIdentical)
{
    const AttackFn fn = GetParam().second;
    // Two schemes bracketing the interesting behaviour: the leaky
    // baseline and the defence with the most machinery.
    for (Scheme s : {Scheme::Baseline, Scheme::MuonTrap}) {
        const AttackOutcome first = fn(s, nullptr);
        const AttackOutcome second = fn(s, nullptr);
        expectIdenticalOutcomes(first, second);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ExtendedAttacks, NewAttackDeterminism,
    ::testing::Values(
        std::make_pair("bus_covert", &runBusCovertChannel),
        std::make_pair("prefetch_covert", &runPrefetchCovertChannel),
        std::make_pair("l2_prime_probe", &runL2PrimeProbe),
        std::make_pair("spec_store", &runSpecStoreChannel)),
    [](const ::testing::TestParamInfo<std::pair<const char *, AttackFn>>
           &info) { return std::string(info.param.first); });

} // namespace
} // namespace mtrap

/**
 * @file
 * Unit tests for the stride prefetcher and the prefetch commit channel.
 */

#include <gtest/gtest.h>

#include "coherence/bus.hh"
#include "prefetch/commit_channel.hh"
#include "prefetch/stride_prefetcher.hh"

namespace mtrap
{
namespace
{

struct PfRig
{
    PfRig()
        : root("rig"),
          mem(MemoryParams{}, &root),
          l2(CacheParams{"l2", 256 * 1024, 8, 20, 16}, &root)
    {
        bus = std::make_unique<CoherenceBus>(BusParams{}, &l2, &mem,
                                             &root);
        BusNode n;
        l1d = std::make_unique<Cache>(CacheParams{"l1d", 4096, 2, 2, 4},
                                      &root);
        l1i = std::make_unique<Cache>(CacheParams{"l1i", 4096, 2, 1, 4},
                                      &root);
        n.l1d = l1d.get();
        n.l1i = l1i.get();
        bus->addNode(n);
        pf = std::make_unique<StridePrefetcher>(PrefetcherParams{},
                                                bus.get(), &root);
    }

    StatGroup root;
    MainMemory mem;
    Cache l2;
    std::unique_ptr<Cache> l1d, l1i;
    std::unique_ptr<CoherenceBus> bus;
    std::unique_ptr<StridePrefetcher> pf;
};

constexpr Addr kPc = 0x100;
constexpr Addr kBase = 0x40000;

TEST(StridePrefetcher, DetectsUnitStride)
{
    PfRig rig;
    // threshold 2: the third access (second consistent stride) issues.
    rig.pf->train(kPc, kBase);
    rig.pf->train(kPc, kBase + 64);
    EXPECT_EQ(rig.pf->issued.value(), 0u);
    rig.pf->train(kPc, kBase + 128);
    EXPECT_GT(rig.pf->issued.value(), 0u);
    // degree 2: lines +1 and +2 beyond the last access.
    EXPECT_NE(rig.l2.peek(kBase + 192), nullptr);
    EXPECT_NE(rig.l2.peek(kBase + 256), nullptr);
}

TEST(StridePrefetcher, DetectsLargeStride)
{
    PfRig rig;
    const std::int64_t stride = 4 * 64;
    for (int i = 0; i < 4; ++i)
        rig.pf->train(kPc, kBase + i * stride);
    EXPECT_NE(rig.l2.peek(kBase + 3 * stride + stride), nullptr);
}

TEST(StridePrefetcher, NoIssueOnIrregularPattern)
{
    PfRig rig;
    rig.pf->train(kPc, kBase);
    rig.pf->train(kPc, kBase + 64);
    rig.pf->train(kPc, kBase + 1024);
    rig.pf->train(kPc, kBase + 64 * 7);
    rig.pf->train(kPc, kBase + 3);
    EXPECT_EQ(rig.pf->issued.value(), 0u);
}

TEST(StridePrefetcher, SamelineAccessesIgnored)
{
    PfRig rig;
    for (int i = 0; i < 10; ++i)
        rig.pf->train(kPc, kBase + (i % 8));
    EXPECT_EQ(rig.pf->issued.value(), 0u);
}

TEST(StridePrefetcher, DistinctPcsTrackedSeparately)
{
    PfRig rig;
    // Interleave two streams on different PCs; both should train.
    for (int i = 0; i < 4; ++i) {
        rig.pf->train(0x100, kBase + i * 64);
        rig.pf->train(0x101, kBase + 0x10000 + i * 128);
    }
    EXPECT_NE(rig.l2.peek(kBase + 3 * 64 + 64), nullptr);
    EXPECT_NE(rig.l2.peek(kBase + 0x10000 + 3 * 128 + 128), nullptr);
}

TEST(StridePrefetcher, NegativeStrideWorks)
{
    PfRig rig;
    for (int i = 0; i < 4; ++i)
        rig.pf->train(kPc, kBase + (8 - i) * 64);
    // Last access at kBase+5*64, stride -64: next lines are +4 and +3.
    EXPECT_NE(rig.l2.peek(kBase + 4 * 64), nullptr);
}

TEST(StridePrefetcher, ResetForgetsTraining)
{
    PfRig rig;
    rig.pf->train(kPc, kBase);
    rig.pf->train(kPc, kBase + 64);
    rig.pf->reset();
    rig.pf->train(kPc, kBase + 128);
    EXPECT_EQ(rig.pf->issued.value(), 0u);
}

// --- commit channel ------------------------------------------------------------

TEST(CommitChannel, DeliversL2LevelNotifications)
{
    PfRig rig;
    PrefetchCommitChannel ch(rig.pf.get(), &rig.root);
    for (int i = 0; i < 4; ++i) {
        PrefetchNotify n;
        n.pc = kPc;
        n.paddr = kBase + i * 64;
        n.fillLevel = 2;
        ch.notifyCommit(n);
    }
    EXPECT_EQ(ch.pending(), 4u);
    ch.drain();
    EXPECT_EQ(ch.pending(), 0u);
    EXPECT_EQ(ch.delivered.value(), 4u);
    // The prefetcher was trained through the channel.
    EXPECT_NE(rig.l2.peek(kBase + 192), nullptr);
}

TEST(CommitChannel, FiltersLevelsWithoutPrefetcher)
{
    PfRig rig;
    PrefetchCommitChannel ch(rig.pf.get(), &rig.root);
    PrefetchNotify n;
    n.pc = kPc;
    n.paddr = kBase;
    n.fillLevel = 1; // L1 has no prefetcher in the Table-1 system
    ch.notifyCommit(n);
    EXPECT_EQ(ch.pending(), 0u);
    EXPECT_EQ(ch.filteredNoPrefetcher.value(), 1u);
}

TEST(CommitChannel, MemoryLevelTrainsL2Prefetcher)
{
    PfRig rig;
    PrefetchCommitChannel ch(rig.pf.get(), &rig.root);
    PrefetchNotify n;
    n.pc = kPc;
    n.paddr = kBase;
    n.fillLevel = 3;
    ch.notifyCommit(n);
    EXPECT_EQ(ch.pending(), 1u);
}

TEST(CommitChannel, PreservesProgramOrder)
{
    PfRig rig;
    PrefetchCommitChannel ch(rig.pf.get(), &rig.root);
    // Deliver a descending stride in commit order; training must see
    // exactly that order to detect the negative stride.
    for (int i = 0; i < 4; ++i) {
        PrefetchNotify n;
        n.pc = kPc;
        n.paddr = kBase + (8 - i) * 64;
        n.fillLevel = 2;
        ch.notifyCommit(n);
    }
    ch.drain();
    EXPECT_NE(rig.l2.peek(kBase + 4 * 64), nullptr);
}

} // namespace
} // namespace mtrap

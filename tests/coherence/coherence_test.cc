/**
 * @file
 * Unit tests for the MESI bus: grant states, remote demotion and
 * writeback, the MuonTrap NACK rule, commit upgrades, filter-invalidate
 * broadcasts, and prefetch fills.
 */

#include <gtest/gtest.h>

#include "coherence/bus.hh"

#include "common/log.hh"
#include "muontrap/filter_cache.hh"

namespace mtrap
{
namespace
{

/** Two-core rig with optional filter caches. */
struct BusRig
{
    explicit BusRig(bool with_filters = false)
        : root("rig"),
          mem(MemoryParams{}, &root),
          l2(CacheParams{"l2", 256 * 1024, 8, 20, 16}, &root)
    {
        bus = std::make_unique<CoherenceBus>(BusParams{}, &l2, &mem,
                                             &root);
        for (unsigned c = 0; c < 2; ++c) {
            l1d.push_back(std::make_unique<Cache>(
                CacheParams{strfmt("l1d%u", c), 4096, 2, 2, 4}, &root));
            l1i.push_back(std::make_unique<Cache>(
                CacheParams{strfmt("l1i%u", c), 4096, 2, 1, 4}, &root));
            if (with_filters) {
                FilterCacheParams fp;
                fp.name = strfmt("fd%u", c);
                fd.push_back(std::make_unique<FilterCache>(fp, &root));
            }
            BusNode n;
            n.l1d = l1d.back().get();
            n.l1i = l1i.back().get();
            n.filterD = with_filters ? fd.back().get() : nullptr;
            bus->addNode(n);
        }
    }

    StatGroup root;
    MainMemory mem;
    Cache l2;
    std::unique_ptr<CoherenceBus> bus;
    std::vector<std::unique_ptr<Cache>> l1d;
    std::vector<std::unique_ptr<Cache>> l1i;
    std::vector<std::unique_ptr<FilterCache>> fd;
};

constexpr Addr A = 0x4000;

TEST(Bus, ColdReadComesFromMemory)
{
    BusRig rig;
    SnoopOutcome so = rig.bus->readRequest(0, A, false, false, true);
    EXPECT_FALSE(so.nacked);
    EXPECT_FALSE(so.l2Hit);
    EXPECT_EQ(so.serviceLevel, 3u);
    EXPECT_TRUE(so.wouldBeExclusive);
    EXPECT_EQ(rig.bus->memoryFetches.value(), 1u);
    // fill_l2 installed the line.
    EXPECT_NE(rig.l2.peek(A), nullptr);
}

TEST(Bus, SecondReadHitsL2)
{
    BusRig rig;
    rig.bus->readRequest(0, A, false, false, true);
    SnoopOutcome so = rig.bus->readRequest(1, A, false, false, true);
    EXPECT_TRUE(so.l2Hit);
    EXPECT_EQ(so.serviceLevel, 2u);
    EXPECT_EQ(rig.bus->memoryFetches.value(), 1u);
}

TEST(Bus, ReadDemotesRemoteModifiedWithWriteback)
{
    BusRig rig;
    // Core 1 owns A in M.
    CacheLine &l = rig.l1d[1]->fill(A, CoherState::Modified);
    l.dirty = true;
    SnoopOutcome so = rig.bus->readRequest(0, A, false, false, true);
    EXPECT_TRUE(so.remoteSupplied);
    EXPECT_EQ(rig.l1d[1]->peek(A)->state, CoherState::Shared);
    // The M data was written back into the L2.
    ASSERT_NE(rig.l2.peek(A), nullptr);
    EXPECT_EQ(rig.bus->writebacksToL2.value(), 1u);
}

TEST(Bus, ReadDemotesRemoteExclusiveNoWriteback)
{
    BusRig rig;
    rig.l1d[1]->fill(A, CoherState::Exclusive);
    SnoopOutcome so = rig.bus->readRequest(0, A, false, false, true);
    EXPECT_TRUE(so.remoteSupplied);
    EXPECT_EQ(rig.l1d[1]->peek(A)->state, CoherState::Shared);
    EXPECT_EQ(rig.bus->writebacksToL2.value(), 0u);
}

TEST(Bus, SpeculativeReadNackedWhenRemoteExclusive)
{
    BusRig rig(true);
    rig.l1d[1]->fill(A, CoherState::Modified);
    SnoopOutcome so = rig.bus->readRequest(0, A, /*speculative=*/true,
                                           /*muontrap_rules=*/true,
                                           false);
    EXPECT_TRUE(so.nacked);
    EXPECT_EQ(rig.bus->nacks.value(), 1u);
    // The remote line is untouched — that is the whole point.
    EXPECT_EQ(rig.l1d[1]->peek(A)->state, CoherState::Modified);
}

TEST(Bus, SpeculativeReadAllowedWhenRemoteShared)
{
    BusRig rig(true);
    rig.l1d[1]->fill(A, CoherState::Shared);
    SnoopOutcome so = rig.bus->readRequest(0, A, true, true, false);
    EXPECT_FALSE(so.nacked);
    // Not exclusive: another non-speculative cache holds it.
    EXPECT_FALSE(so.wouldBeExclusive);
}

TEST(Bus, NonSpeculativeRetrySucceedsAfterNack)
{
    BusRig rig(true);
    rig.l1d[1]->fill(A, CoherState::Modified);
    rig.bus->readRequest(0, A, true, true, false);
    SnoopOutcome so = rig.bus->readRequest(0, A, /*speculative=*/false,
                                           true, false);
    EXPECT_FALSE(so.nacked);
    EXPECT_EQ(rig.l1d[1]->peek(A)->state, CoherState::Shared);
}

TEST(Bus, FilterCopiesDoNotBlockExclusiveGrant)
{
    BusRig rig(true);
    // Core 1's *filter* holds A in S — invisible to the grant decision
    // (§4.5: only non-speculative caches are checked).
    rig.fd[1]->fillVirt(1, A, A, true, 2, false);
    SnoopOutcome so = rig.bus->readRequest(0, A, true, true, false);
    EXPECT_FALSE(so.nacked);
    EXPECT_TRUE(so.wouldBeExclusive)
        << "speculative filter state must not leak into grant decisions";
}

TEST(Bus, WriteInvalidatesAllRemoteCopies)
{
    BusRig rig(true);
    rig.l1d[1]->fill(A, CoherState::Shared);
    rig.l1i[1]->fill(A, CoherState::Shared);
    rig.fd[1]->fillVirt(1, A, A, true, 2, false);
    SnoopOutcome so = rig.bus->writeRequest(0, A, false, false, true);
    EXPECT_FALSE(so.nacked);
    EXPECT_EQ(rig.l1d[1]->peek(A), nullptr);
    EXPECT_EQ(rig.l1i[1]->peek(A), nullptr);
    EXPECT_FALSE(rig.fd[1]->presentValid(A));
}

TEST(Bus, SpeculativeWriteNackedUnderMuonTrapRules)
{
    BusRig rig(true);
    SnoopOutcome so = rig.bus->writeRequest(0, A, true, true, false);
    EXPECT_TRUE(so.nacked);
}

TEST(Bus, WriteRequestWritesBackRemoteM)
{
    BusRig rig;
    CacheLine &l = rig.l1d[1]->fill(A, CoherState::Modified);
    l.dirty = true;
    rig.bus->writeRequest(0, A, false, false, true);
    EXPECT_EQ(rig.l1d[1]->peek(A), nullptr);
    ASSERT_NE(rig.l2.peek(A), nullptr);
    EXPECT_EQ(rig.bus->writebacksToL2.value(), 1u);
}

// --- commit upgrades ----------------------------------------------------------

TEST(Bus, CommitUpgradeNoBroadcastWhenAlreadyExclusive)
{
    BusRig rig(true);
    rig.l1d[0]->fill(A, CoherState::Exclusive);
    const bool broadcast = rig.bus->commitUpgrade(0, A, true, true);
    EXPECT_FALSE(broadcast);
    EXPECT_EQ(rig.l1d[0]->peek(A)->state, CoherState::Modified);
    EXPECT_EQ(rig.bus->storeUpgrades.value(), 1u);
    EXPECT_EQ(rig.bus->storeUpgradeBroadcasts.value(), 0u);
}

TEST(Bus, CommitUpgradeBroadcastsWhenShared)
{
    BusRig rig(true);
    rig.l1d[0]->fill(A, CoherState::Shared);
    rig.l1d[1]->fill(A, CoherState::Shared);
    rig.fd[1]->fillVirt(1, A, A, true, 2, false);
    const bool broadcast = rig.bus->commitUpgrade(0, A, true, true);
    EXPECT_TRUE(broadcast);
    EXPECT_EQ(rig.l1d[1]->peek(A), nullptr);
    EXPECT_FALSE(rig.fd[1]->presentValid(A));
    EXPECT_EQ(rig.l1d[0]->peek(A)->state, CoherState::Modified);
    EXPECT_EQ(rig.bus->storeUpgradeBroadcasts.value(), 1u);
}

TEST(Bus, SeUpgradeToExclusiveCountedSeparately)
{
    BusRig rig(true);
    rig.l1d[0]->fill(A, CoherState::Shared);
    rig.bus->commitUpgrade(0, A, /*is_store=*/false,
                           /*to_modified=*/false);
    EXPECT_EQ(rig.l1d[0]->peek(A)->state, CoherState::Exclusive);
    EXPECT_EQ(rig.bus->seUpgrades.value(), 1u);
    EXPECT_EQ(rig.bus->storeUpgrades.value(), 0u);
}

TEST(Bus, CommitUpgradeFillsOwnL1WhenAbsent)
{
    BusRig rig;
    EXPECT_EQ(rig.l1d[0]->peek(A), nullptr);
    rig.bus->commitUpgrade(0, A, true, true);
    ASSERT_NE(rig.l1d[0]->peek(A), nullptr);
    EXPECT_EQ(rig.l1d[0]->peek(A)->state, CoherState::Modified);
}

TEST(Bus, Figure7RateComputesFraction)
{
    BusRig rig(true);
    // One upgrade with ownership (no broadcast), one without.
    rig.l1d[0]->fill(A, CoherState::Exclusive);
    rig.bus->commitUpgrade(0, A, true, true);
    rig.bus->commitUpgrade(0, A + 0x1000, true, true);
    EXPECT_DOUBLE_EQ(rig.bus->writeFilterInvalidateRate.value(), 0.5);
}

// --- prefetch fills -------------------------------------------------------------

TEST(Bus, PrefetchFillInstallsIntoL2)
{
    BusRig rig;
    EXPECT_TRUE(rig.bus->prefetchFill(A));
    ASSERT_NE(rig.l2.peek(A), nullptr);
    EXPECT_TRUE(rig.l2.peek(A)->prefetched);
}

TEST(Bus, PrefetchFillRefusesWhenRemoteOwns)
{
    BusRig rig;
    rig.l1d[1]->fill(A, CoherState::Modified);
    EXPECT_FALSE(rig.bus->prefetchFill(A));
    EXPECT_EQ(rig.l2.peek(A), nullptr);
    EXPECT_EQ(rig.l1d[1]->peek(A)->state, CoherState::Modified);
}

TEST(Bus, PrefetchFillIdempotent)
{
    BusRig rig;
    EXPECT_TRUE(rig.bus->prefetchFill(A));
    EXPECT_FALSE(rig.bus->prefetchFill(A)); // already present
}

// --- helpers ----------------------------------------------------------------------

TEST(Bus, RemoteHoldsExclusiveChecksOtherCoresOnly)
{
    BusRig rig;
    rig.l1d[0]->fill(A, CoherState::Modified);
    EXPECT_FALSE(rig.bus->remoteHoldsExclusive(0, A));
    EXPECT_TRUE(rig.bus->remoteHoldsExclusive(1, A));
}

TEST(Bus, LatencyOrdering)
{
    BusRig rig;
    // Memory fetch must cost more than a subsequent L2 hit.
    SnoopOutcome cold = rig.bus->readRequest(0, A, false, false, true);
    SnoopOutcome warm = rig.bus->readRequest(1, A, false, false, true);
    EXPECT_GT(cold.latency, warm.latency);
}

} // namespace
} // namespace mtrap

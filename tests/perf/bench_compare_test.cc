/**
 * @file
 * BENCH.json regression-gate tests: the comparator must parse what
 * writeBenchJson emits, pass a clean A/A comparison, fail an injected
 * 10% geomean regression or any scenario error, tolerate suite
 * membership changes, and reject malformed input.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "perf/bench_compare.hh"
#include "perf/perf_suite.hh"

namespace mtrap::perf
{
namespace
{

ScenarioResult
makeResult(const std::string &name, double wall_seconds,
           std::uint64_t instructions)
{
    ScenarioResult r;
    r.name = name;
    r.ok = true;
    r.wallSeconds = wall_seconds;
    r.instructions = instructions;
    r.simCycles = instructions * 2;
    return r;
}

std::vector<ScenarioResult>
sampleResults()
{
    return {
        makeResult("spec-gcc", 0.5, 1'000'000),
        makeResult("parsec-canneal", 0.25, 800'000),
        makeResult("attack-vignette", 0.1, 50'000),
    };
}

BenchFile
roundTrip(const std::vector<ScenarioResult> &results)
{
    PerfOptions opt;
    std::ostringstream os;
    writeBenchJson(results, opt, os);
    BenchFile f;
    std::string err;
    EXPECT_TRUE(parseBenchJson(os.str(), f, err)) << err;
    return f;
}

TEST(BenchCompare, ParsesWhatTheWriterEmits)
{
    const BenchFile f = roundTrip(sampleResults());
    EXPECT_EQ(f.schema, "mtrap-bench-v1");
    ASSERT_EQ(f.scenarios.size(), 3u);
    EXPECT_EQ(f.scenarios[0].name, "spec-gcc");
    EXPECT_TRUE(f.scenarios[0].ok);
    EXPECT_NEAR(f.scenarios[0].wallSeconds, 0.5, 1e-9);
    EXPECT_NEAR(f.scenarios[0].instructionsPerSecond, 2'000'000.0, 1.0);
    EXPECT_TRUE(f.ok);
    EXPECT_GT(f.scoreKips, 0.0);
}

TEST(BenchCompare, CleanAtoARunPasses)
{
    const BenchFile f = roundTrip(sampleResults());
    const CompareReport rep = compareBench(f, f);
    EXPECT_TRUE(rep.pass) << rep.text;
    EXPECT_EQ(rep.commonScenarios, 3u);
    EXPECT_NEAR(rep.geomeanRatio, 1.0, 1e-9);
}

TEST(BenchCompare, TenPercentRegressionFails)
{
    const BenchFile base = roundTrip(sampleResults());
    // Same work, 10% more wall time everywhere: throughput -~9.1%,
    // beyond the 5% gate.
    std::vector<ScenarioResult> slow = sampleResults();
    for (ScenarioResult &r : slow)
        r.wallSeconds *= 1.10;
    const CompareReport rep = compareBench(base, roundTrip(slow));
    EXPECT_FALSE(rep.pass) << rep.text;
    EXPECT_LT(rep.geomeanRatio, 0.95);
    EXPECT_NE(rep.text.find("FAIL"), std::string::npos);
}

TEST(BenchCompare, SmallRegressionWithinThresholdPasses)
{
    const BenchFile base = roundTrip(sampleResults());
    std::vector<ScenarioResult> slow = sampleResults();
    for (ScenarioResult &r : slow)
        r.wallSeconds *= 1.03; // ~-2.9% throughput
    const CompareReport rep = compareBench(base, roundTrip(slow));
    EXPECT_TRUE(rep.pass) << rep.text;
}

TEST(BenchCompare, ScenarioErrorFailsEvenWithGoodThroughput)
{
    const BenchFile base = roundTrip(sampleResults());
    std::vector<ScenarioResult> bad = sampleResults();
    bad[1].ok = false;
    bad[1].error = "intentional";
    const CompareReport rep = compareBench(base, roundTrip(bad));
    EXPECT_FALSE(rep.pass) << rep.text;
    EXPECT_NE(rep.text.find("scenario errored"), std::string::npos);
}

TEST(BenchCompare, ZeroThroughputCommonScenarioFailsTheGate)
{
    // ok=true but zero instructions: an infinite regression must not
    // silently drop out of the geomean.
    const BenchFile base = roundTrip(sampleResults());
    std::vector<ScenarioResult> dead = sampleResults();
    dead[0].instructions = 0;
    dead[0].simCycles = 0;
    const CompareReport rep = compareBench(base, roundTrip(dead));
    EXPECT_FALSE(rep.pass) << rep.text;
    EXPECT_NE(rep.text.find("zero throughput"), std::string::npos);
}

TEST(BenchCompare, SuiteMembershipChangesAreInformationalOnly)
{
    const BenchFile base = roundTrip(sampleResults());
    // Candidate drops one scenario and adds a brand-new one.
    std::vector<ScenarioResult> next = sampleResults();
    next.pop_back();
    next.push_back(makeResult("sched-gang-new", 0.2, 400'000));
    const CompareReport rep = compareBench(base, roundTrip(next));
    EXPECT_TRUE(rep.pass) << rep.text;
    EXPECT_EQ(rep.commonScenarios, 2u);
    EXPECT_NE(rep.text.find("new"), std::string::npos);
    EXPECT_NE(rep.text.find("gone"), std::string::npos);
}

TEST(BenchCompare, NoCommonScenariosPassesWithoutAThroughputVerdict)
{
    const BenchFile base = roundTrip({makeResult("old-only", 0.1, 1000)});
    const BenchFile cand = roundTrip({makeResult("new-only", 0.1, 1000)});
    const CompareReport rep = compareBench(base, cand);
    EXPECT_TRUE(rep.pass) << rep.text;
    EXPECT_EQ(rep.commonScenarios, 0u);
}

TEST(BenchCompare, CustomThresholdIsHonoured)
{
    const BenchFile base = roundTrip(sampleResults());
    std::vector<ScenarioResult> slow = sampleResults();
    for (ScenarioResult &r : slow)
        r.wallSeconds *= 1.03;
    CompareOptions strict;
    strict.maxRegressPct = 1.0;
    const CompareReport rep =
        compareBench(base, roundTrip(slow), strict);
    EXPECT_FALSE(rep.pass) << rep.text;
}

TEST(BenchCompare, EmptyScenarioIntersectionPassesWithUnitGeomean)
{
    // Disjoint suites: nothing to compare must mean "no regression",
    // a geomean ratio of exactly 1.0 and zero common scenarios — not a
    // divide-by-zero, not a vacuous failure.
    const BenchFile base = roundTrip({makeResult("only-old-a", 0.1, 1000),
                                      makeResult("only-old-b", 0.2, 2000)});
    const BenchFile cand = roundTrip({makeResult("only-new-a", 0.1, 1000),
                                      makeResult("only-new-b", 0.2, 2000)});
    const CompareReport rep = compareBench(base, cand);
    EXPECT_TRUE(rep.pass) << rep.text;
    EXPECT_EQ(rep.commonScenarios, 0u);
    EXPECT_DOUBLE_EQ(rep.geomeanRatio, 1.0);
    EXPECT_NE(rep.text.find("no common scenarios"), std::string::npos);
}

TEST(BenchCompare, NanBaselineThroughputIsSkippedNotPropagated)
{
    // A NaN in the previous artifact (hand-edited, or a broken run)
    // must not poison the geomean: log(NaN) would flow into the
    // verdict where `NaN > threshold` is false — silently passing any
    // regression. The poisoned scenario is skipped; the healthy ones
    // still gate.
    BenchFile base = roundTrip(sampleResults());
    base.scenarios[0].instructionsPerSecond =
        std::numeric_limits<double>::quiet_NaN();
    base.scenarios[1].instructionsPerSecond =
        std::numeric_limits<double>::infinity();

    // Candidate regresses 50% on the one comparable scenario.
    std::vector<ScenarioResult> slow = sampleResults();
    slow[2].wallSeconds *= 2.0;
    const CompareReport rep = compareBench(base, roundTrip(slow));
    EXPECT_FALSE(rep.pass) << rep.text;
    EXPECT_EQ(rep.commonScenarios, 1u);
    EXPECT_TRUE(std::isfinite(rep.geomeanRatio));
    EXPECT_NE(rep.text.find("baseline has no valid"), std::string::npos);
}

TEST(BenchCompare, ZeroBaselineThroughputIsSkipped)
{
    BenchFile base = roundTrip(sampleResults());
    base.scenarios[0].instructionsPerSecond = 0.0;
    const CompareReport rep =
        compareBench(base, roundTrip(sampleResults()));
    EXPECT_TRUE(rep.pass) << rep.text;
    EXPECT_EQ(rep.commonScenarios, 2u);
}

TEST(BenchCompare, NanCandidateThroughputFailsTheGate)
{
    const BenchFile base = roundTrip(sampleResults());
    BenchFile cand = roundTrip(sampleResults());
    cand.scenarios[1].instructionsPerSecond =
        std::numeric_limits<double>::quiet_NaN();
    const CompareReport rep = compareBench(base, cand);
    EXPECT_FALSE(rep.pass) << rep.text;
    EXPECT_NE(rep.text.find("zero throughput"), std::string::npos);
}

TEST(BenchCompare, GeomeanExactlyAtThresholdPasses)
{
    // The gate fails only when the regression *exceeds* the threshold:
    // a geomean of exactly -5.0% must pass (documented boundary, so a
    // future >= typo becomes a test failure, not a flaky CI gate).
    const BenchFile base = roundTrip({makeResult("s", 1.0, 1'000'000)});
    BenchFile cand = base;
    cand.scenarios[0].instructionsPerSecond =
        base.scenarios[0].instructionsPerSecond * 0.95;
    const CompareReport rep = compareBench(base, cand);
    EXPECT_TRUE(rep.pass) << rep.text;
    EXPECT_NEAR(rep.geomeanRatio, 0.95, 1e-12);

    // One ulp below the boundary fails.
    cand.scenarios[0].instructionsPerSecond =
        base.scenarios[0].instructionsPerSecond * 0.9499;
    EXPECT_FALSE(compareBench(base, cand).pass);
}

TEST(BenchCompare, RejectsMalformedOrForeignJson)
{
    BenchFile f;
    std::string err;
    EXPECT_FALSE(parseBenchJson("", f, err));
    EXPECT_FALSE(parseBenchJson("{\"schema\": \"mtrap-bench-v1\"", f,
                                err));
    EXPECT_FALSE(parseBenchJson("[1, 2, 3]", f, err));
    EXPECT_FALSE(parseBenchJson(
        "{\"schema\": \"other-schema\", \"scenarios\": []}", f, err));
    EXPECT_FALSE(
        parseBenchJson("{\"schema\": \"mtrap-bench-v1\"}", f, err));
    // Minimal well-formed file.
    EXPECT_TRUE(parseBenchJson(
        "{\"schema\": \"mtrap-bench-v1\", \"scenarios\": []}", f, err))
        << err;
}

} // namespace
} // namespace mtrap::perf

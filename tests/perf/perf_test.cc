/**
 * @file
 * Tests for the perf-benchmark subsystem: a down-scaled run of the full
 * scenario suite (every scenario must produce nonzero throughput), a
 * real parse of the emitted BENCH.json, and the aggregate score.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "perf/odometer.hh"
#include "perf/perf_suite.hh"

namespace mtrap::perf
{
namespace
{

/**
 * Minimal recursive-descent JSON validator — enough to prove BENCH.json
 * is well-formed (objects, arrays, strings with escapes, numbers,
 * true/false/null).
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *lit)
    {
        const std::string l(lit);
        if (s_.compare(pos_, l.size(), l) != 0)
            return false;
        pos_ += l.size();
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

PerfOptions
tinyOptions()
{
    PerfOptions opt;
    opt.measureInstructions = 2'000;
    opt.warmupInstructions = 500;
    opt.repeats = 1;
    opt.quick = true;
    return opt;
}

TEST(PerfSuite, DownScaledSuiteAllScenariosReportThroughput)
{
    const PerfOptions opt = tinyOptions();
    const std::vector<ScenarioResult> results =
        runScenarios(defaultScenarios(), opt, nullptr);

    ASSERT_EQ(results.size(), defaultScenarios().size());
    for (const ScenarioResult &r : results) {
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
        EXPECT_GT(r.wallSeconds, 0.0) << r.name;
        EXPECT_GT(r.instructions, 0u) << r.name;
        EXPECT_GT(r.simCycles, 0u) << r.name;
        EXPECT_GT(r.instructionsPerSecond(), 0.0) << r.name;
        EXPECT_GT(r.cyclesPerSecond(), 0.0) << r.name;
    }
    EXPECT_GT(aggregateScoreKips(results), 0.0);
}

TEST(PerfSuite, BenchJsonIsWellFormedAndCarriesTheSchema)
{
    const PerfOptions opt = tinyOptions();
    // One cheap scenario is enough to exercise the writer.
    std::vector<PerfScenario> suite = defaultScenarios();
    suite.resize(1);
    const std::vector<ScenarioResult> results =
        runScenarios(suite, opt, nullptr);

    std::ostringstream os;
    writeBenchJson(results, opt, os);
    const std::string json = os.str();

    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"schema\": \"mtrap-bench-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"mode\": \"quick\""), std::string::npos);
    EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
    EXPECT_NE(json.find("\"instructions_per_second\""),
              std::string::npos);
}

TEST(PerfSuite, FailedScenarioIsReportedNotThrown)
{
    PerfScenario bad;
    bad.name = "always-fails";
    bad.body = [](const PerfOptions &) {
        throw std::runtime_error("intentional");
    };
    const std::vector<ScenarioResult> results =
        runScenarios({bad}, tinyOptions(), nullptr);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("intentional"), std::string::npos);
    EXPECT_EQ(aggregateScoreKips(results), 0.0);

    std::ostringstream os;
    writeBenchJson(results, tinyOptions(), os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
}

TEST(PerfSuite, OdometerAdvancesWithSimulationWork)
{
    SimOdometer &odo = SimOdometer::instance();
    const std::uint64_t i0 = odo.instructions();
    const std::uint64_t c0 = odo.cycles();

    std::vector<PerfScenario> suite = defaultScenarios();
    suite.resize(1);
    (void)runScenarios(suite, tinyOptions(), nullptr);

    EXPECT_GT(odo.instructions(), i0);
    EXPECT_GT(odo.cycles(), c0);
}

} // namespace
} // namespace mtrap::perf

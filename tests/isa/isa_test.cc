/**
 * @file
 * Unit tests for the micro-ISA and the program builder: encoding,
 * label fixups, disassembly and op classification.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"

namespace mtrap
{
namespace
{

TEST(MicroOp, Classification)
{
    MicroOp ld;
    ld.type = OpType::Load;
    EXPECT_TRUE(ld.isMem());
    EXPECT_FALSE(ld.isCtrl());
    EXPECT_FALSE(ld.isSerializing());

    MicroOp br;
    br.type = OpType::Branch;
    EXPECT_TRUE(br.isCtrl());
    EXPECT_FALSE(br.isMem());

    MicroOp sc;
    sc.type = OpType::Syscall;
    EXPECT_TRUE(sc.isSerializing());

    MicroOp halt;
    halt.type = OpType::Halt;
    EXPECT_TRUE(halt.isSerializing());
}

TEST(MicroOp, LatenciesOrdered)
{
    EXPECT_LT(opLatency(OpType::IntAlu), opLatency(OpType::IntMul));
    EXPECT_LT(opLatency(OpType::IntMul), opLatency(OpType::IntDiv));
    EXPECT_GE(opLatency(OpType::Syscall), 10u);
}

TEST(MicroOp, DisassembleMentionsOperands)
{
    MicroOp op;
    op.type = OpType::Load;
    op.dst = 4;
    op.base = 10;
    op.imm = 16;
    op.index = 2;
    op.scale = 3;
    const std::string d = op.disassemble();
    EXPECT_NE(d.find("r4"), std::string::npos);
    EXPECT_NE(d.find("r10"), std::string::npos);
    EXPECT_NE(d.find("16"), std::string::npos);
}

TEST(ProgramBuilder, EmitsInOrder)
{
    ProgramBuilder b("p");
    b.movi(1, 5);
    b.addi(2, 1, 3);
    b.halt();
    Program p = b.take();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.ops[0].type, OpType::IntAlu);
    EXPECT_EQ(p.ops[0].alu, AluOp::MovImm);
    EXPECT_EQ(p.ops[2].type, OpType::Halt);
}

TEST(ProgramBuilder, BackwardBranchFixup)
{
    ProgramBuilder b("p");
    b.movi(1, 0);              // 0
    b.label("top");            // -> 1
    b.addi(1, 1, 1);           // 1
    b.braLt("top", 1, 2);      // 2: displacement 1 - 2 = -1
    b.halt();
    Program p = b.take();
    EXPECT_EQ(p.ops[2].imm, -1);
}

TEST(ProgramBuilder, ForwardBranchFixup)
{
    ProgramBuilder b("p");
    b.braEq("skip", 1, 2);     // 0: forward to 2 -> +2
    b.nop();                   // 1
    b.label("skip");
    b.halt();                  // 2
    Program p = b.take();
    EXPECT_EQ(p.ops[0].imm, 2);
}

TEST(ProgramBuilder, CallUsesAbsoluteTarget)
{
    ProgramBuilder b("p");
    b.call("fn");              // 0
    b.halt();                  // 1
    b.label("fn");
    b.ret();                   // 2
    Program p = b.take();
    EXPECT_EQ(p.ops[0].imm, 2);
}

TEST(ProgramBuilder, DuplicateLabelFatal)
{
    ProgramBuilder b("p");
    b.label("x");
    EXPECT_EXIT(b.label("x"), ::testing::ExitedWithCode(1), "duplicate");
}

TEST(ProgramBuilder, UnknownLabelFatal)
{
    ProgramBuilder b("p");
    b.bra("nowhere");
    b.halt();
    EXPECT_EXIT(b.take(), ::testing::ExitedWithCode(1), "unknown label");
}

TEST(ProgramBuilder, HereTracksPosition)
{
    ProgramBuilder b("p");
    EXPECT_EQ(b.here(), 0u);
    b.nop();
    b.nop();
    EXPECT_EQ(b.here(), 2u);
}

TEST(Program, PcToVaddr)
{
    Program p;
    p.codeBase = 0x400000;
    EXPECT_EQ(p.pcToVaddr(0), 0x400000u);
    EXPECT_EQ(p.pcToVaddr(16), 0x400040u); // 16 instrs = one 64B line
}

TEST(ProgramBuilder, MemOperandEncoding)
{
    ProgramBuilder b("p");
    b.load(3, 10, 0x40, 5, 2);
    b.store(4, 11, -8);
    b.halt();
    Program p = b.take();
    EXPECT_EQ(p.ops[0].base, 10);
    EXPECT_EQ(p.ops[0].index, 5);
    EXPECT_EQ(p.ops[0].scale, 2);
    EXPECT_EQ(p.ops[0].imm, 0x40);
    EXPECT_EQ(p.ops[1].src1, 4);
    EXPECT_EQ(p.ops[1].imm, -8);
    EXPECT_EQ(p.ops[1].index, kNoReg);
}

} // namespace
} // namespace mtrap

/**
 * @file
 * Unit tests for the out-of-order core: functional correctness of the
 * micro-ISA, wrong-path execution and squash recovery, store buffering,
 * serializing ops and structural limits. Uses a scriptable fake memory
 * interface so behaviour is observable without the full hierarchy.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cpu/core.hh"

namespace mtrap
{
namespace
{

/** Recording in-memory MemIface with fixed latency. */
class FakeMem : public MemIface
{
  public:
    Cycle fixedLatency = 10;

    struct Rec
    {
        Addr vaddr;
        bool isStore;
        bool speculative;
    };
    std::vector<Rec> accesses;
    std::vector<Addr> commits;
    std::vector<Addr> ifetches;
    unsigned syscalls = 0;
    unsigned sandboxSwitches = 0;
    unsigned ctxSwitches = 0;
    unsigned squashes = 0;
    unsigned flushBarriers = 0;
    bool nackFirstAccessTo = false;
    Addr nackTarget = kAddrInvalid;
    unsigned nacksIssued = 0;

    DataAccessResult
    dataAccess(CoreId, Asid, Addr vaddr, Addr, bool is_store,
               bool speculative, Cycle) override
    {
        accesses.push_back({vaddr, is_store, speculative});
        DataAccessResult r;
        r.latency = fixedLatency;
        if (nackFirstAccessTo && vaddr == nackTarget && speculative) {
            r.nacked = true;
            ++nacksIssued;
        }
        return r;
    }

    Cycle dataProbe(CoreId, Asid, Addr, Cycle) override { return 5; }

    Cycle
    ifetchAccess(CoreId, Asid, Addr vaddr, Cycle) override
    {
        ifetches.push_back(vaddr);
        return 1;
    }

    void
    commitData(CoreId, Asid, Addr vaddr, Addr, bool, bool, Cycle) override
    {
        commits.push_back(vaddr);
    }

    void commitIfetch(CoreId, Asid, Addr, Cycle) override {}
    void onSyscall(CoreId, Cycle) override { ++syscalls; }
    void onSandboxSwitch(CoreId, Cycle) override { ++sandboxSwitches; }
    void onContextSwitch(CoreId, Cycle) override { ++ctxSwitches; }
    void onFlushBarrier(CoreId, Cycle) override { ++flushBarriers; }
    void onSquash(CoreId, Cycle) override { ++squashes; }

    std::uint64_t
    read(Asid, Addr vaddr) override
    {
        auto it = store_.find(vaddr);
        return it != store_.end() ? it->second : 0;
    }

    void
    write(Asid, Addr vaddr, std::uint64_t v) override
    {
        store_[vaddr] = v;
    }

  private:
    std::map<Addr, std::uint64_t> store_;
};

struct CoreRig
{
    explicit CoreRig(CoreDefense d = CoreDefense::None)
        : root("rig")
    {
        CoreParams p;
        p.defense = d;
        core = std::make_unique<Core>(0, p, &mem, &root);
    }

    void
    runProgram(const Program &prog, std::uint64_t r1 = 0)
    {
        prog_ = prog;
        ArchContext ctx;
        ctx.program = &prog_;
        ctx.asid = 1;
        ctx.regs[1] = r1;
        core->setContext(ctx);
        core->run(1'000'000);
        ASSERT_TRUE(core->halted());
        core->drain();
    }

    StatGroup root;
    FakeMem mem;
    std::unique_ptr<Core> core;
    Program prog_;
};

// --- functional correctness -----------------------------------------------

TEST(CoreFunc, AluArithmetic)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(2, 10);
    b.movi(3, 4);
    b.add(4, 2, 3);
    b.sub(5, 2, 3);
    b.mul(6, 2, 3);
    b.div(7, 2, 3);
    b.andi(8, 2, 6);
    b.ori(9, 2, 5);
    b.xori(10, 2, 3);
    b.shli(11, 2, 2);
    b.shri(12, 2, 1);
    b.halt();
    rig.runProgram(b.take());
    EXPECT_EQ(rig.core->reg(4), 14u);
    EXPECT_EQ(rig.core->reg(5), 6u);
    EXPECT_EQ(rig.core->reg(6), 40u);
    EXPECT_EQ(rig.core->reg(7), 2u);
    EXPECT_EQ(rig.core->reg(8), 2u);
    EXPECT_EQ(rig.core->reg(9), 15u);
    EXPECT_EQ(rig.core->reg(10), 9u);
    EXPECT_EQ(rig.core->reg(11), 40u);
    EXPECT_EQ(rig.core->reg(12), 5u);
}

TEST(CoreFunc, LoadsReadMemory)
{
    CoreRig rig;
    rig.mem.write(1, 0x1000, 77);
    ProgramBuilder b("p");
    b.movi(2, 0x1000);
    b.load(3, 2, 0);
    b.halt();
    rig.runProgram(b.take());
    EXPECT_EQ(rig.core->reg(3), 77u);
}

TEST(CoreFunc, StoresVisibleAfterCommit)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(2, 0x2000);
    b.movi(3, 55);
    b.store(3, 2, 0);
    b.halt();
    rig.runProgram(b.take());
    EXPECT_EQ(rig.mem.read(1, 0x2000), 55u);
}

TEST(CoreFunc, StoreToLoadForwarding)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(2, 0x3000);
    b.movi(3, 99);
    b.store(3, 2, 0);
    b.load(4, 2, 0); // must see the in-flight store's value
    b.halt();
    rig.runProgram(b.take());
    EXPECT_EQ(rig.core->reg(4), 99u);
    EXPECT_GE(rig.core->forwardedLoads.value(), 1u);
}

TEST(CoreFunc, LoopComputesSum)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(2, 0);   // i
    b.movi(3, 0);   // sum
    b.movi(4, 10);  // limit
    b.label("top");
    b.add(3, 3, 2);
    b.addi(2, 2, 1);
    b.braLt("top", 2, 4);
    b.halt();
    rig.runProgram(b.take());
    EXPECT_EQ(rig.core->reg(3), 45u);
}

TEST(CoreFunc, CallAndReturn)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(2, 1);
    b.call("fn");
    b.addi(2, 2, 100);  // runs after return
    b.halt();
    b.label("fn");
    b.addi(2, 2, 10);
    b.ret();
    rig.runProgram(b.take());
    EXPECT_EQ(rig.core->reg(2), 111u);
}

TEST(CoreFunc, IndirectJump)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(2, 5);      // 0: target index (the label position below)
    b.jumpReg(2);      // 1
    b.movi(3, 111);    // 2: skipped
    b.halt();          // 3
    b.nop();           // 4
    b.movi(3, 222);    // 5: jump target
    b.halt();          // 6
    rig.runProgram(b.take());
    EXPECT_EQ(rig.core->reg(3), 222u);
}

TEST(CoreFunc, EffectiveAddressWithIndexAndScale)
{
    CoreRig rig;
    rig.mem.write(1, 0x1000 + 8 * 4 + 16, 42);
    ProgramBuilder b("p");
    b.movi(2, 0x1000);
    b.movi(3, 8);
    b.load(4, 2, 16, 3, 2); // 0x1000 + 16 + (8<<2)
    b.halt();
    rig.runProgram(b.take());
    EXPECT_EQ(rig.core->reg(4), 42u);
}

// --- speculation -------------------------------------------------------------

/** A gadget whose branch mispredicts on the final run: train not-taken
 *  (r1 < 100), then run with r1 >= 100. On the wrong path a load to a
 *  distinctive address executes. */
Program
mispredictGadget()
{
    ProgramBuilder b("p");
    b.movi(3, 100);
    b.braUge("done", 1, 3);
    b.movi(4, 0xdead000);
    b.load(5, 4, 0);     // in-bounds body (wrong path on final run)
    b.label("done");
    b.halt();
    return b.take();
}

TEST(CoreSpec, WrongPathLoadExecutes)
{
    CoreRig rig;
    const Program g = mispredictGadget();
    for (std::uint64_t i = 0; i < 8; ++i) {
        rig.prog_ = g;
        ArchContext ctx;
        ctx.program = &rig.prog_;
        ctx.asid = 1;
        ctx.regs[1] = i;
        rig.core->setContext(ctx);
        rig.core->run(1'000'000);
        rig.core->drain();
    }
    rig.mem.accesses.clear();
    // Out-of-bounds input: branch actually taken, predicted not-taken.
    rig.prog_ = g;
    ArchContext ctx;
    ctx.program = &rig.prog_;
    ctx.asid = 1;
    ctx.regs[1] = 500;
    rig.core->setContext(ctx);
    rig.core->run(1'000'000);
    rig.core->drain();

    bool wrong_path_load = false;
    for (const auto &a : rig.mem.accesses)
        wrong_path_load |= (a.vaddr == 0xdead000 && a.speculative);
    EXPECT_TRUE(wrong_path_load)
        << "the wrong-path load must reach the memory system";
    EXPECT_GE(rig.core->squashes.value(), 1u);
    EXPECT_GE(rig.mem.squashes, 1u);
}

TEST(CoreSpec, WrongPathLoadNeverCommits)
{
    CoreRig rig;
    const Program g = mispredictGadget();
    for (std::uint64_t i = 0; i < 8; ++i) {
        rig.prog_ = g;
        ArchContext ctx;
        ctx.program = &rig.prog_;
        ctx.asid = 1;
        ctx.regs[1] = i;
        rig.core->setContext(ctx);
        rig.core->run(1'000'000);
        rig.core->drain();
    }
    rig.mem.commits.clear();
    rig.prog_ = g;
    ArchContext ctx;
    ctx.program = &rig.prog_;
    ctx.asid = 1;
    ctx.regs[1] = 500;
    rig.core->setContext(ctx);
    rig.core->run(1'000'000);
    rig.core->drain();
    for (Addr a : rig.mem.commits)
        EXPECT_NE(a, 0xdead000u) << "squashed loads must not commit";
}

TEST(CoreSpec, ArchStateRestoredAfterSquash)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(3, 100);
    b.movi(5, 7);            // r5 = 7 architecturally
    b.braUge("done", 1, 3);
    b.movi(5, 666);          // wrong path clobbers r5
    b.label("done");
    b.halt();
    const Program g = b.take();
    for (std::uint64_t i = 0; i < 8; ++i) {
        rig.prog_ = g;
        ArchContext ctx;
        ctx.program = &rig.prog_;
        ctx.asid = 1;
        ctx.regs[1] = i;
        rig.core->setContext(ctx);
        rig.core->run(1'000'000);
        rig.core->drain();
        EXPECT_EQ(rig.core->reg(5), 666u); // in-bounds path sets it
    }
    rig.prog_ = g;
    ArchContext ctx;
    ctx.program = &rig.prog_;
    ctx.asid = 1;
    ctx.regs[1] = 500;
    rig.core->setContext(ctx);
    rig.core->run(1'000'000);
    rig.core->drain();
    EXPECT_EQ(rig.core->reg(5), 7u)
        << "wrong-path register writes must be rolled back";
}

TEST(CoreSpec, WrongPathStoresInvisibleAfterSquash)
{
    CoreRig rig;
    rig.mem.write(1, 0x4000, 1);
    ProgramBuilder b("p");
    b.movi(3, 100);
    b.movi(4, 0x4000);
    b.movi(5, 999);
    b.braUge("done", 1, 3);
    b.store(5, 4, 0);        // wrong-path store
    b.label("done");
    b.halt();
    const Program g = b.take();
    for (std::uint64_t i = 0; i < 8; ++i) {
        rig.prog_ = g;
        ArchContext ctx;
        ctx.program = &rig.prog_;
        ctx.asid = 1;
        ctx.regs[1] = i;
        rig.core->setContext(ctx);
        rig.core->run(1'000'000);
        rig.core->drain();
    }
    // After training runs the in-bounds path stored 999; reset it.
    rig.mem.write(1, 0x4000, 1);
    rig.prog_ = g;
    ArchContext ctx;
    ctx.program = &rig.prog_;
    ctx.asid = 1;
    ctx.regs[1] = 500;
    rig.core->setContext(ctx);
    rig.core->run(1'000'000);
    rig.core->drain();
    EXPECT_EQ(rig.mem.read(1, 0x4000), 1u)
        << "squashed stores must never reach memory";
}

TEST(CoreSpec, CorrectPredictionNoSquash)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(2, 0);
    b.movi(4, 50);
    b.label("top");
    b.addi(2, 2, 1);
    b.braLt("top", 2, 4);
    b.halt();
    rig.runProgram(b.take());
    // A highly regular loop should squash only while the tournament
    // predictor's history-indexed counters warm up (~historyBits), plus
    // the loop exit.
    EXPECT_LE(rig.core->squashes.value(), 14u);
}

// --- serializing ops -----------------------------------------------------------

TEST(CoreSerial, SyscallNotifiesMemSystem)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(2, 1);
    b.syscall();
    b.movi(3, 2);
    b.halt();
    rig.runProgram(b.take());
    EXPECT_EQ(rig.mem.syscalls, 1u);
    EXPECT_EQ(rig.core->reg(3), 2u);
}

TEST(CoreSerial, SandboxAndBarrierOps)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.sandboxEnter();
    b.flushBarrier();
    b.sandboxExit();
    b.halt();
    rig.runProgram(b.take());
    EXPECT_EQ(rig.mem.sandboxSwitches, 2u);
    EXPECT_EQ(rig.mem.flushBarriers, 1u);
}

TEST(CoreSerial, SerializingOpNotExecutedOnWrongPath)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(3, 100);
    b.braUge("done", 1, 3);
    b.syscall();           // wrong-path syscall must not fire
    b.label("done");
    b.halt();
    const Program g = b.take();
    for (std::uint64_t i = 0; i < 8; ++i) {
        rig.prog_ = g;
        ArchContext ctx;
        ctx.program = &rig.prog_;
        ctx.asid = 1;
        ctx.regs[1] = i;
        rig.core->setContext(ctx);
        rig.core->run(1'000'000);
        rig.core->drain();
    }
    const unsigned trained_syscalls = rig.mem.syscalls; // in-bounds runs
    rig.prog_ = g;
    ArchContext ctx;
    ctx.program = &rig.prog_;
    ctx.asid = 1;
    ctx.regs[1] = 500;
    rig.core->setContext(ctx);
    rig.core->run(1'000'000);
    rig.core->drain();
    EXPECT_EQ(rig.mem.syscalls, trained_syscalls)
        << "a wrong-path syscall must not flush anything";
}

TEST(CoreSerial, ContextSwitchNotifiesAndCharges)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(2, 1);
    b.halt();
    rig.runProgram(b.take());
    const Cycle before = rig.core->now();
    ProgramBuilder b2("q");
    b2.movi(2, 2);
    b2.halt();
    Program q = b2.take();
    ArchContext ctx;
    ctx.program = &q;
    ctx.asid = 2;
    rig.core->contextSwitch(ctx);
    EXPECT_EQ(rig.mem.ctxSwitches, 1u);
    EXPECT_GE(rig.core->now(), before + 1000)
        << "context switches must charge kernel overhead";
    rig.core->run(1'000'000);
    EXPECT_TRUE(rig.core->halted());
}

// --- NACK retry ------------------------------------------------------------------

TEST(CoreNack, RetriesNonSpeculativelyOnCorrectPath)
{
    CoreRig rig;
    rig.mem.nackFirstAccessTo = true;
    rig.mem.nackTarget = 0x7000;
    ProgramBuilder b("p");
    b.movi(2, 0x7000);
    b.load(3, 2, 0);
    b.halt();
    rig.runProgram(b.take());
    EXPECT_EQ(rig.mem.nacksIssued, 1u);
    EXPECT_GE(rig.core->nackRetries.value(), 1u);
    // The retry must have been non-speculative.
    bool nonspec_retry = false;
    for (const auto &a : rig.mem.accesses)
        nonspec_retry |= (a.vaddr == 0x7000 && !a.speculative);
    EXPECT_TRUE(nonspec_retry);
}

// --- timing sanity ------------------------------------------------------------------

TEST(CoreTiming, DependentChainSlowerThanIndependent)
{
    // Dependent loads serialise; independent loads overlap.
    CoreRig rig_dep;
    rig_dep.mem.fixedLatency = 50;
    ProgramBuilder bd("dep");
    bd.movi(2, 0x100000);
    for (int i = 0; i < 16; ++i)
        bd.load(2, 2, 0); // address depends on previous load
    bd.halt();
    rig_dep.runProgram(bd.take());
    const Cycle dep_cycles = rig_dep.core->lastCommitCycle();

    CoreRig rig_ind;
    rig_ind.mem.fixedLatency = 50;
    ProgramBuilder bi("ind");
    bi.movi(2, 0x100000);
    for (int i = 0; i < 16; ++i)
        bi.load(3 + (i % 8), 2, i * 64);
    bi.halt();
    rig_ind.runProgram(bi.take());
    const Cycle ind_cycles = rig_ind.core->lastCommitCycle();

    EXPECT_GT(dep_cycles, 2 * ind_cycles)
        << "MLP must be visible in the timing model";
}

TEST(CoreTiming, IpcBoundedByWidth)
{
    CoreRig rig;
    ProgramBuilder b("p");
    b.movi(2, 0);
    b.movi(4, 2000);
    b.label("top");
    for (int i = 0; i < 16; ++i)
        b.addi(5 + (i % 8), 5 + (i % 8), 1);
    b.addi(2, 2, 1);
    b.braLt("top", 2, 4);
    b.halt();
    rig.runProgram(b.take());
    const double ipc = rig.core->ipc.value();
    EXPECT_GT(ipc, 1.0);
    EXPECT_LE(ipc, 8.0);
}

} // namespace
} // namespace mtrap

/**
 * @file
 * Unit tests for the tournament branch predictor, BTB and RAS.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"

namespace mtrap
{
namespace
{

BranchPredictor
makePred(StatGroup &g)
{
    return BranchPredictor(BranchPredictorParams{}, &g);
}

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    StatGroup g("g");
    BranchPredictor bp(BranchPredictorParams{}, &g);
    // The local component indexes counters by branch history, so the
    // first ~historyBits outcomes walk fresh counters; train past that.
    for (int i = 0; i < 24; ++i) {
        bp.predictDirection(0x40);
        bp.trainDirection(0x40, true);
    }
    EXPECT_TRUE(bp.predictDirection(0x40));
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    StatGroup g("g");
    BranchPredictor bp(BranchPredictorParams{}, &g);
    for (int i = 0; i < 8; ++i) {
        bp.predictDirection(0x44);
        bp.trainDirection(0x44, false);
    }
    EXPECT_FALSE(bp.predictDirection(0x44));
}

TEST(BranchPredictor, LearnsAlternatingPatternViaLocalHistory)
{
    StatGroup g("g");
    BranchPredictor bp(BranchPredictorParams{}, &g);
    // Warm up on a strict T/N/T/N pattern.
    bool outcome = false;
    for (int i = 0; i < 64; ++i) {
        bp.predictDirection(0x80);
        bp.trainDirection(0x80, outcome);
        outcome = !outcome;
    }
    // Now the predictor should track the alternation.
    int correct = 0;
    for (int i = 0; i < 32; ++i) {
        const bool pred = bp.predictDirection(0x80);
        if (pred == outcome)
            ++correct;
        bp.trainDirection(0x80, outcome);
        outcome = !outcome;
    }
    EXPECT_GE(correct, 28) << "local history should capture T/N/T/N";
}

TEST(BranchPredictor, IndependentBranchesDoNotInterfereMuch)
{
    StatGroup g("g");
    BranchPredictor bp(BranchPredictorParams{}, &g);
    for (int i = 0; i < 16; ++i) {
        bp.predictDirection(0x100);
        bp.trainDirection(0x100, true);
        bp.predictDirection(0x200);
        bp.trainDirection(0x200, false);
    }
    EXPECT_TRUE(bp.predictDirection(0x100));
    EXPECT_FALSE(bp.predictDirection(0x200));
}

TEST(BranchPredictor, CrossDomainTrainingPersists)
{
    // The predictor is deliberately not ASID-tagged: an attacker can
    // train a victim's branch (Spectre v1 precondition).
    StatGroup g("g");
    BranchPredictor bp(BranchPredictorParams{}, &g);
    for (int i = 0; i < 8; ++i) {
        bp.predictDirection(0x300);
        bp.trainDirection(0x300, false);
    }
    // "Context switch": nothing resets; the trained prediction remains.
    EXPECT_FALSE(bp.predictDirection(0x300));
}

TEST(Btb, HitReturnsTrainedTarget)
{
    StatGroup g("g");
    BranchPredictor bp(BranchPredictorParams{}, &g);
    EXPECT_EQ(bp.predictTarget(0x50), kAddrInvalid);
    bp.trainTarget(0x50, 0x1234);
    EXPECT_EQ(bp.predictTarget(0x50), 0x1234u);
}

TEST(Btb, ConflictingPcsEvict)
{
    StatGroup g("g");
    BranchPredictorParams p;
    p.btbEntries = 16;
    BranchPredictor bp(p, &g);
    bp.trainTarget(0x10, 0x111);
    bp.trainTarget(0x10 + 16, 0x222); // same BTB slot
    EXPECT_EQ(bp.predictTarget(0x10), kAddrInvalid);
    EXPECT_EQ(bp.predictTarget(0x10 + 16), 0x222u);
}

TEST(Ras, PushPopLifo)
{
    StatGroup g("g");
    BranchPredictor bp(BranchPredictorParams{}, &g);
    bp.pushReturn(0x10);
    bp.pushReturn(0x20);
    EXPECT_EQ(bp.popReturn(), 0x20u);
    EXPECT_EQ(bp.popReturn(), 0x10u);
    EXPECT_EQ(bp.popReturn(), kAddrInvalid);
}

TEST(Ras, WrapsAtCapacity)
{
    StatGroup g("g");
    BranchPredictorParams p;
    p.rasEntries = 4;
    BranchPredictor bp(p, &g);
    for (Addr i = 1; i <= 6; ++i)
        bp.pushReturn(i);
    // The oldest two were overwritten.
    EXPECT_EQ(bp.popReturn(), 6u);
    EXPECT_EQ(bp.popReturn(), 5u);
    EXPECT_EQ(bp.popReturn(), 4u);
    EXPECT_EQ(bp.popReturn(), 3u);
}

TEST(Snapshot, RestoresGlobalHistoryAndRas)
{
    StatGroup g("g");
    BranchPredictor bp(BranchPredictorParams{}, &g);
    bp.pushReturn(0x10);
    const auto snap = bp.snapshot();
    bp.pushReturn(0x20);
    bp.trainDirection(0x100, true); // advances global history
    bp.restore(snap);
    EXPECT_EQ(bp.popReturn(), 0x10u)
        << "wrong-path RAS pushes must be undone by restore";
}

TEST(Stats, MispredictRateFormula)
{
    StatGroup g("g");
    BranchPredictor bp(BranchPredictorParams{}, &g);
    bp.predictDirection(0x10);
    bp.predictDirection(0x10);
    ++bp.mispredicts;
    EXPECT_DOUBLE_EQ(bp.mispredictRate.value(), 0.5);
}

} // namespace
} // namespace mtrap

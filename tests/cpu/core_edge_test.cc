/**
 * @file
 * Edge-case tests for the out-of-order core: deep call stacks and RAS
 * overflow, BTB-miss stalls, nested wrong paths, store-buffer chains,
 * address masking, context save/restore round trips, and structural
 * limit stress.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cpu/core.hh"

namespace mtrap
{
namespace
{

/** Minimal fixed-latency memory (same shape as core_test's FakeMem). */
class MiniMem : public MemIface
{
  public:
    Cycle lat = 5;
    std::map<Addr, std::uint64_t> store;
    unsigned squashes = 0;

    DataAccessResult
    dataAccess(CoreId, Asid, Addr, Addr, bool, bool, Cycle) override
    {
        DataAccessResult r;
        r.latency = lat;
        return r;
    }
    Cycle dataProbe(CoreId, Asid, Addr, Cycle) override { return lat; }
    Cycle ifetchAccess(CoreId, Asid, Addr, Cycle) override { return 1; }
    void commitData(CoreId, Asid, Addr, Addr, bool, bool, Cycle) override
    {
    }
    void commitIfetch(CoreId, Asid, Addr, Cycle) override {}
    void onSyscall(CoreId, Cycle) override {}
    void onSandboxSwitch(CoreId, Cycle) override {}
    void onContextSwitch(CoreId, Cycle) override {}
    void onFlushBarrier(CoreId, Cycle) override {}
    void onSquash(CoreId, Cycle) override { ++squashes; }
    std::uint64_t
    read(Asid, Addr a) override
    {
        auto it = store.find(a);
        return it != store.end() ? it->second : 0;
    }
    void write(Asid, Addr a, std::uint64_t v) override { store[a] = v; }
};

struct Rig
{
    Rig() : root("rig")
    {
        core = std::make_unique<Core>(0, CoreParams{}, &mem, &root);
    }

    std::uint64_t
    runToHalt(const Program &p, std::uint64_t r1 = 0)
    {
        prog = p;
        ArchContext ctx;
        ctx.program = &prog;
        ctx.asid = 1;
        ctx.regs[1] = r1;
        core->setContext(ctx);
        core->run(2'000'000);
        EXPECT_TRUE(core->halted());
        core->drain();
        return core->lastCommitCycle();
    }

    StatGroup root;
    MiniMem mem;
    std::unique_ptr<Core> core;
    Program prog;
};

TEST(CoreEdge, DeepRecursionOverflowsRasButStaysCorrect)
{
    // 40 nested calls exceed the 16-entry RAS: predictions go wrong,
    // but architectural execution must stay correct.
    Rig rig;
    ProgramBuilder b("deep");
    b.movi(2, 0);
    b.movi(3, 40);
    b.call("fn");
    b.halt();
    b.label("fn");
    b.addi(2, 2, 1);
    b.braGe("leaf", 2, 3);
    b.call("fn");
    b.label("leaf");
    b.ret();
    rig.runToHalt(b.take());
    EXPECT_EQ(rig.core->reg(2), 40u);
}

TEST(CoreEdge, BtbMissStallsButExecutesCorrectly)
{
    // First-ever indirect jump has no BTB entry: the front end must
    // stall (no wrong path) and land on the right target.
    Rig rig;
    ProgramBuilder b("btbmiss");
    b.movi(2, 4);      // 0
    b.jumpReg(2);      // 1
    b.movi(3, 111);    // 2 (skipped)
    b.halt();          // 3
    b.movi(3, 222);    // 4
    b.halt();          // 5
    rig.runToHalt(b.take());
    EXPECT_EQ(rig.core->reg(3), 222u);
    EXPECT_EQ(rig.core->squashes.value(), 0u)
        << "a BTB miss stalls; it must not squash";
}

TEST(CoreEdge, IndirectJumpLearnsThroughBtb)
{
    // Second run of the same jump should be predicted (trained).
    Rig rig;
    ProgramBuilder b("btbtrain");
    b.movi(2, 4);
    b.jumpReg(2);
    b.halt();          // 2 (skipped)
    b.nop();           // 3
    b.movi(3, 1);      // 4
    b.halt();
    const Program p = b.take();
    rig.runToHalt(p);
    const Cycle first = rig.core->lastCommitCycle();
    const Cycle start2 = rig.core->now();
    rig.runToHalt(p);
    const Cycle second = rig.core->lastCommitCycle() - start2;
    EXPECT_LE(second, first)
        << "a trained BTB must not be slower than the cold run";
}

TEST(CoreEdge, StoreBufferChainsSameAddress)
{
    // Multiple in-flight stores to one address: loads must forward the
    // youngest older value, and the final memory value is the last one.
    Rig rig;
    ProgramBuilder b("chain");
    b.movi(2, 0x1000);
    b.movi(3, 1);
    b.store(3, 2, 0);
    b.movi(3, 2);
    b.store(3, 2, 0);
    b.load(4, 2, 0);    // must see 2
    b.movi(3, 3);
    b.store(3, 2, 0);
    b.load(5, 2, 0);    // must see 3
    b.halt();
    rig.runToHalt(b.take());
    EXPECT_EQ(rig.core->reg(4), 2u);
    EXPECT_EQ(rig.core->reg(5), 3u);
    EXPECT_EQ(rig.mem.read(1, 0x1000), 3u);
}

TEST(CoreEdge, EffectiveAddressIsWordAlignedAndMasked)
{
    // Addresses are masked to the 44-bit VA space and word-aligned; a
    // garbage base must not crash anything.
    Rig rig;
    ProgramBuilder b("mask");
    b.movi(2, -1);          // all-ones base
    b.load(3, 2, 5);
    b.halt();
    rig.runToHalt(b.take());
    SUCCEED();
}

TEST(CoreEdge, ContextRoundTripPreservesRegisters)
{
    Rig rig;
    ProgramBuilder b("ctx");
    b.movi(2, 77);
    b.movi(3, 88);
    b.halt();
    rig.runToHalt(b.take());
    ArchContext saved = rig.core->saveContext();
    EXPECT_EQ(saved.regs[2], 77u);

    ProgramBuilder b2("other");
    b2.movi(2, 1);
    b2.halt();
    Program other = b2.take();
    ArchContext o;
    o.program = &other;
    o.asid = 2;
    rig.core->contextSwitch(o);
    rig.core->run(1'000'000);

    // Restore the first context and verify its state survived.
    rig.core->contextSwitch(saved);
    EXPECT_EQ(rig.core->reg(2), 77u);
    EXPECT_EQ(rig.core->reg(3), 88u);
}

TEST(CoreEdge, RobStressWithLongLatencyLoads)
{
    // Hundreds of independent long-latency loads must stream through
    // the 192-entry window without deadlock or counter corruption.
    Rig rig;
    rig.mem.lat = 120;
    ProgramBuilder b("stress");
    b.movi(2, 0x10000);
    for (int i = 0; i < 400; ++i)
        b.load(3 + (i % 8), 2, i * 64);
    b.halt();
    rig.runToHalt(b.take());
    EXPECT_GE(rig.core->committedCount(), 400u);
}

TEST(CoreEdge, NestedMispredictsRestoreToOldest)
{
    // A mispredicted branch inside the wrong path must not corrupt the
    // restore point of the outer (oldest) mispredicted branch.
    Rig rig;
    rig.mem.lat = 60; // slow condition loads widen the window
    ProgramBuilder b("nested");
    b.movi(4, 7);          // r4 = architectural marker
    b.movi(2, 0x2000);
    b.load(3, 2, 0);       // r3 = 0 (slow)
    b.braNe("wrong1", 3, 0);   // actual: not taken; train taken first
    b.movi(4, 1);          // correct path
    b.halt();
    b.label("wrong1");
    b.load(5, 2, 8);       // wrong path
    b.braNe("wrong2", 5, 0);
    b.movi(4, 2);
    b.halt();
    b.label("wrong2");
    b.movi(4, 3);
    b.halt();
    const Program p = b.take();

    // Train the first branch towards taken so the real run mispredicts.
    rig.mem.write(1, 0x2000, 1);  // r3 != 0 -> branch taken in training
    for (int i = 0; i < 20; ++i)
        rig.runToHalt(p);
    rig.mem.write(1, 0x2000, 0);  // now actual = not taken
    rig.runToHalt(p);
    EXPECT_EQ(rig.core->reg(4), 1u)
        << "after squash the architectural path must win";
}

TEST(CoreEdge, HaltOnWrongPathDoesNotTerminate)
{
    // A wrong-path Halt must not stop the program; execution resumes on
    // the correct path after the squash.
    Rig rig;
    rig.mem.lat = 60;
    ProgramBuilder b("wphalt");
    b.movi(2, 0x3000);
    b.load(3, 2, 0);           // r3 = 0 (slow)
    b.braEq("stop", 3, 0);     // actual: taken; train not-taken first
    b.movi(4, 10);
    b.halt();
    b.label("stop");
    b.movi(4, 20);
    b.halt();
    const Program p = b.take();
    rig.mem.write(1, 0x3000, 1);
    for (int i = 0; i < 20; ++i)
        rig.runToHalt(p);
    rig.mem.write(1, 0x3000, 0);
    rig.runToHalt(p);
    EXPECT_EQ(rig.core->reg(4), 20u);
}

} // namespace
} // namespace mtrap

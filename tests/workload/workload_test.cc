/**
 * @file
 * Unit tests for the synthetic workload generator: profiles build valid
 * programs, chase rings are well-formed, and profiles exhibit the
 * behaviour class they claim (locality, MLP, branchiness, sharing).
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/mem_system.hh"
#include "sim/runner.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{
namespace
{

TEST(Profiles, AllSpecBenchmarksBuild)
{
    EXPECT_EQ(specBenchmarkNames().size(), 26u);
    for (const std::string &name : specBenchmarkNames()) {
        const Workload w = buildSpecWorkload(name);
        EXPECT_EQ(w.threads(), 1u);
        EXPECT_GT(w.threadPrograms[0].size(), 10u);
        EXPECT_EQ(w.name, name);
    }
}

TEST(Profiles, AllParsecBenchmarksBuild)
{
    EXPECT_EQ(parsecBenchmarkNames().size(), 7u);
    for (const std::string &name : parsecBenchmarkNames()) {
        const Workload w = buildParsecWorkload(name);
        EXPECT_EQ(w.threads(), 4u);
        for (const Program &p : w.threadPrograms)
            EXPECT_GT(p.size(), 10u);
    }
}

TEST(Profiles, UnknownNameFatal)
{
    EXPECT_EXIT(buildSpecWorkload("nonesuch"),
                ::testing::ExitedWithCode(1), "unknown");
    EXPECT_EXIT(buildParsecWorkload("nonesuch"),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(Profiles, DeterministicGeneration)
{
    const Program a = buildThreadProgram(specProfile("gcc"), 0);
    const Program b = buildThreadProgram(specProfile("gcc"), 0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.ops[i].type, b.ops[i].type);
        EXPECT_EQ(a.ops[i].imm, b.ops[i].imm);
    }
}

TEST(Profiles, ThreadsGetDistinctPrivateRegions)
{
    const Program t0 = buildThreadProgram(parsecProfile("ferret"), 0);
    const Program t1 = buildThreadProgram(parsecProfile("ferret"), 1);
    // The preamble loads the private base into r10 via movi; find it.
    auto find_base = [](const Program &p) -> std::int64_t {
        for (const MicroOp &op : p.ops)
            if (op.alu == AluOp::MovImm && op.dst == 10)
                return op.imm;
        return -1;
    };
    EXPECT_NE(find_base(t0), find_base(t1));
}

TEST(Profiles, CodeBlocksGrowProgramSize)
{
    WorkloadProfile small = specProfile("gcc");
    WorkloadProfile big = small;
    small.codeBlocks = 1;
    big.codeBlocks = 8;
    EXPECT_GT(buildThreadProgram(big, 0).size(),
              4 * buildThreadProgram(small, 0).size() / 2);
}

TEST(ChaseRing, IsASingleCycle)
{
    StatGroup g("g");
    MemSystemParams mp;
    MemSystem ms(mp, &g);
    WorkloadProfile p = specProfile("mcf");
    p.dataFootprint = 64 * kLineBytes; // 64 nodes for a fast test
    p.chaseBytes = 64 * kLineBytes;
    initChaseRing(ms, 1, p, 0);

    const Addr base = WorkloadLayout::kChaseBase;
    std::set<Addr> seen;
    Addr cur = base;
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_TRUE(seen.insert(cur).second) << "ring revisited early";
        cur = ms.read(1, cur);
        EXPECT_GE(cur, base);
        EXPECT_LT(cur, base + 64 * kLineBytes);
    }
    EXPECT_EQ(cur, base) << "ring must close after visiting every node";
}

// --- behaviour-class checks (cheap end-to-end runs) -------------------------

RunResult
quickRun(const Workload &w, Scheme s)
{
    RunOptions opt;
    opt.warmupInstructions = 5'000;
    opt.measureInstructions = 20'000;
    return runScheme(w, s, opt);
}

TEST(Behaviour, ComputeProfileHasHighIpc)
{
    const RunResult r = quickRun(buildSpecWorkload("gamess"),
                                 Scheme::Baseline);
    EXPECT_GT(r.ipc, 1.2);
}

TEST(Behaviour, PointerChaseProfileHasLowIpc)
{
    const RunResult chase = quickRun(buildSpecWorkload("mcf"),
                                     Scheme::Baseline);
    const RunResult compute = quickRun(buildSpecWorkload("gamess"),
                                       Scheme::Baseline);
    EXPECT_LT(chase.ipc, compute.ipc * 0.7);
}

TEST(Behaviour, BranchyProfileMispredicts)
{
    RunOptions opt;
    opt.warmupInstructions = 5'000;
    opt.measureInstructions = 20'000;
    RunOutput out = runConfigured(
        buildSpecWorkload("gobmk"),
        SystemConfig::forScheme(Scheme::Baseline, 1), opt, "b");
    EXPECT_GT(out.system->core(0).squashes.value(), 100u)
        << "gobmk-like profiles must mispredict heavily";
}

TEST(Behaviour, SharedProfileGeneratesCoherenceTraffic)
{
    RunOptions opt;
    opt.warmupInstructions = 5'000;
    opt.measureInstructions = 15'000;
    RunOutput out = runConfigured(
        buildParsecWorkload("ferret"),
        SystemConfig::forScheme(Scheme::Baseline, 4), opt, "f");
    EXPECT_GT(out.system->mem().bus().remoteSupplies.value(), 0u)
        << "shared writes must cause cache-to-cache transfers";
}

TEST(Behaviour, StreamProfileTriggersPrefetcher)
{
    RunOptions opt;
    opt.warmupInstructions = 5'000;
    opt.measureInstructions = 15'000;
    RunOutput out = runConfigured(
        buildSpecWorkload("lbm"),
        SystemConfig::forScheme(Scheme::Baseline, 1), opt, "l");
    EXPECT_GT(out.system->mem().prefetcher()->issued.value(), 50u);
}

} // namespace
} // namespace mtrap

/**
 * @file
 * Whole-suite smoke tests: every bundled benchmark profile runs under
 * the key schemes without panics, with sane IPC and the MuonTrap
 * structural invariants intact at the end. Parameterised over all 26
 * SPEC-like and 7 Parsec-like workloads.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{
namespace
{

RunOptions
smokeOptions()
{
    RunOptions opt;
    opt.warmupInstructions = 2'000;
    opt.measureInstructions = 8'000;
    return opt;
}

class SpecSmokeTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpecSmokeTest, RunsUnderBaselineAndMuonTrap)
{
    const Workload w = buildSpecWorkload(GetParam());
    const RunResult base = runScheme(w, Scheme::Baseline, smokeOptions());
    EXPECT_GT(base.ipc, 0.01);
    EXPECT_LE(base.ipc, 8.0);

    RunOutput mt = runConfigured(
        w, SystemConfig::forScheme(Scheme::MuonTrap, 1), smokeOptions(),
        "mt");
    EXPECT_GT(mt.result.ipc, 0.01);

    // Structural security invariants after real execution.
    mt.system->mem().muontrap(0).dataFilter()->forEachLine(
        [](CacheLine &l) {
            EXPECT_EQ(l.state, CoherState::Shared);
        });
    mt.system->mem().l1d(0).forEachLine(
        [](CacheLine &l) { EXPECT_TRUE(l.committed); });
    mt.system->mem().l2().forEachLine(
        [](CacheLine &l) { EXPECT_TRUE(l.committed); });
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecProfiles, SpecSmokeTest,
    ::testing::ValuesIn(specBenchmarkNames()),
    [](const auto &info) {
        std::string n = info.param;
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

class ParsecSmokeTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ParsecSmokeTest, RunsOnFourCoresUnderMuonTrap)
{
    const Workload w = buildParsecWorkload(GetParam());
    RunOutput mt = runConfigured(
        w, SystemConfig::forScheme(Scheme::MuonTrap, 4), smokeOptions(),
        "mt");
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_GE(mt.system->core(c).committedCount(), 8'000u)
            << "core " << c << " fell behind";
        mt.system->mem().muontrap(c).dataFilter()->forEachLine(
            [](CacheLine &l) {
                EXPECT_EQ(l.state, CoherState::Shared);
                EXPECT_FALSE(l.dirty);
            });
    }
}

TEST_P(ParsecSmokeTest, RunsUnderSttAndInvisiSpec)
{
    const Workload w = buildParsecWorkload(GetParam());
    EXPECT_GT(runScheme(w, Scheme::SttFuture, smokeOptions()).ipc, 0.01);
    EXPECT_GT(runScheme(w, Scheme::InvisiSpecFuture, smokeOptions()).ipc,
              0.01);
}

INSTANTIATE_TEST_SUITE_P(
    AllParsecProfiles, ParsecSmokeTest,
    ::testing::ValuesIn(parsecBenchmarkNames()),
    [](const auto &info) { return info.param; });

} // namespace
} // namespace mtrap

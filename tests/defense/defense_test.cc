/**
 * @file
 * Unit tests for the comparator defence models: the STT taint tracker
 * semantics, the InvisiSpec speculative buffer, scheme descriptors, and
 * end-to-end timing effects of STT/InvisiSpec on the core.
 */

#include <gtest/gtest.h>

#include "defense/invisispec.hh"
#include "defense/scheme.hh"
#include "defense/stt.hh"
#include "sim/runner.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{
namespace
{

// --- TaintTracker -------------------------------------------------------------

TEST(TaintTracker, LoadTaintsDestination)
{
    TaintTracker t(SttVariant::Spectre);
    t.loadProduced(3, 100);
    EXPECT_TRUE(t.isTainted(3, 50));
    EXPECT_FALSE(t.isTainted(3, 100));
    EXPECT_EQ(t.taintClears(3), 100u);
}

TEST(TaintTracker, AluPropagatesMaxOfSources)
{
    TaintTracker t(SttVariant::Spectre);
    t.loadProduced(3, 100);
    t.loadProduced(4, 200);
    t.aluProduced(5, 3, 4);
    EXPECT_EQ(t.taintClears(5), 200u);
}

TEST(TaintTracker, UntaintedSourcesGiveUntaintedDest)
{
    TaintTracker t(SttVariant::Future);
    t.aluProduced(5, 1, 2);
    EXPECT_FALSE(t.isTainted(5, 0));
}

TEST(TaintTracker, OverwriteClearsOldTaint)
{
    TaintTracker t(SttVariant::Spectre);
    t.loadProduced(3, 1000);
    t.aluProduced(3, 1, 2); // untainted sources overwrite r3
    EXPECT_FALSE(t.isTainted(3, 0));
}

TEST(TaintTracker, TransmitterReadyIsMaxOfOperands)
{
    TaintTracker t(SttVariant::Spectre);
    t.loadProduced(3, 150);
    EXPECT_EQ(t.transmitterReady(3, kNoReg), 150u);
    EXPECT_EQ(t.transmitterReady(kNoReg, 3), 150u);
    EXPECT_EQ(t.transmitterReady(1, 2), 0u);
}

TEST(TaintTracker, SnapshotRestore)
{
    TaintTracker t(SttVariant::Spectre);
    t.loadProduced(3, 100);
    const auto snap = t.snapshot();
    t.loadProduced(3, 999);
    t.restore(snap);
    EXPECT_EQ(t.taintClears(3), 100u);
}

TEST(TaintTracker, ClearAllUntaints)
{
    TaintTracker t(SttVariant::Future);
    t.loadProduced(3, 100);
    t.clearAll();
    EXPECT_FALSE(t.isTainted(3, 0));
}

// --- SpecBuffer ------------------------------------------------------------------

TEST(SpecBuffer, AllocateAndRelease)
{
    StatGroup g("g");
    SpecBuffer sb(SpecBufferParams{4}, 0, &g);
    EXPECT_EQ(sb.allocate(0x1000, 0), 0u);
    EXPECT_TRUE(sb.holdsWord(0x1000));
    sb.release(0x1000);
    EXPECT_FALSE(sb.holdsWord(0x1000));
}

TEST(SpecBuffer, FullBufferStalls)
{
    StatGroup g("g");
    SpecBuffer sb(SpecBufferParams{2}, 0, &g);
    sb.allocate(0x1000, 0);
    sb.allocate(0x2000, 0);
    EXPECT_GT(sb.allocate(0x3000, 0), 0u);
    EXPECT_EQ(sb.fullStalls.value(), 1u);
    EXPECT_EQ(sb.occupancy(), 2u);
}

TEST(SpecBuffer, WordGranularityNoLineReuse)
{
    // The §6.2 contrast: InvisiSpec's buffer is word-sized, so a
    // different word of the same line is a miss.
    StatGroup g("g");
    SpecBuffer sb(SpecBufferParams{8}, 0, &g);
    sb.allocate(0x1000, 0);
    sb.allocate(0x1008, 0); // same line, next word
    EXPECT_EQ(sb.wordHits.value(), 0u);
    EXPECT_EQ(sb.lineMissesWordGranularity.value(), 1u);
    sb.allocate(0x1000, 0); // exact word again
    EXPECT_EQ(sb.wordHits.value(), 1u);
}

TEST(SpecBuffer, ClearEmptiesEverything)
{
    StatGroup g("g");
    SpecBuffer sb(SpecBufferParams{8}, 0, &g);
    sb.allocate(0x1000, 0);
    sb.allocate(0x2000, 0);
    sb.clear();
    EXPECT_EQ(sb.occupancy(), 0u);
}

// --- scheme descriptors -------------------------------------------------------------

TEST(Scheme, NamesRoundTripThroughParse)
{
    for (Scheme s : allSchemes())
        EXPECT_EQ(parseScheme(schemeName(s)), s);
}

TEST(Scheme, ParseIsCaseAndSeparatorInsensitive)
{
    EXPECT_EQ(parseScheme("muontrap"), Scheme::MuonTrap);
    EXPECT_EQ(parseScheme("invisispec_spectre"),
              Scheme::InvisiSpecSpectre);
    EXPECT_EQ(parseScheme("STT-FUTURE"), Scheme::SttFuture);
}

TEST(Scheme, CoreDefenseMapping)
{
    EXPECT_EQ(schemeCoreDefense(Scheme::Baseline), CoreDefense::None);
    EXPECT_EQ(schemeCoreDefense(Scheme::MuonTrap), CoreDefense::None);
    EXPECT_EQ(schemeCoreDefense(Scheme::SttSpectre),
              CoreDefense::SttSpectre);
    EXPECT_EQ(schemeCoreDefense(Scheme::InvisiSpecFuture),
              CoreDefense::InvisiSpecFuture);
}

TEST(Scheme, MtConfigMapping)
{
    EXPECT_FALSE(schemeMtConfig(Scheme::Baseline).enabled);
    EXPECT_TRUE(schemeMtConfig(Scheme::MuonTrap).protectData);
    EXPECT_FALSE(schemeMtConfig(Scheme::InsecureL0).protectData);
    EXPECT_TRUE(schemeMtConfig(Scheme::InsecureL0).enabled);
    EXPECT_TRUE(schemeMtConfig(Scheme::MuonTrapClearMisspec)
                    .clearOnMisspec);
    EXPECT_TRUE(schemeMtConfig(Scheme::MuonTrapParallel).parallelL0L1);
    EXPECT_FALSE(schemeMtConfig(Scheme::SttSpectre).enabled);
}

// --- end-to-end timing effects -----------------------------------------------------

TEST(DefenseTiming, SttSlowsPointerChasingMoreThanCompute)
{
    // STT delays address-dependent loads; a pointer-chase-heavy profile
    // must suffer more than a compute profile (the §6.3 observation).
    RunOptions opt;
    opt.warmupInstructions = 5'000;
    opt.measureInstructions = 20'000;

    const Workload chase = buildSpecWorkload("mcf");      // chase heavy
    const Workload compute = buildSpecWorkload("gamess"); // compute

    const double chase_norm =
        normalizedTime(runScheme(chase, Scheme::SttFuture, opt),
                       runScheme(chase, Scheme::Baseline, opt));
    const double compute_norm =
        normalizedTime(runScheme(compute, Scheme::SttFuture, opt),
                       runScheme(compute, Scheme::Baseline, opt));
    EXPECT_GT(chase_norm, compute_norm);
    EXPECT_GT(chase_norm, 1.02);
}

TEST(DefenseTiming, InvisiSpecExposuresHappen)
{
    RunOptions opt;
    opt.warmupInstructions = 2'000;
    opt.measureInstructions = 10'000;
    const Workload w = buildSpecWorkload("gobmk"); // branchy -> spec loads
    RunOutput out = runConfigured(
        w, SystemConfig::forScheme(Scheme::InvisiSpecSpectre, 1), opt,
        "is");
    EXPECT_GT(out.system->core(0).exposures.value(), 0u);
    EXPECT_GT(out.system->mem().probes.value(), 0u);
}

TEST(DefenseTiming, InvisiSpecFutureSlowerThanSpectreVariant)
{
    RunOptions opt;
    opt.warmupInstructions = 5'000;
    opt.measureInstructions = 20'000;
    const Workload w = buildSpecWorkload("mcf");
    const RunResult base = runScheme(w, Scheme::Baseline, opt);
    const double sp = normalizedTime(
        runScheme(w, Scheme::InvisiSpecSpectre, opt), base);
    const double fu = normalizedTime(
        runScheme(w, Scheme::InvisiSpecFuture, opt), base);
    EXPECT_GE(fu, sp * 0.98)
        << "the Future variant exposes at commit and must not be "
           "meaningfully faster than the Spectre variant";
}

TEST(DefenseTiming, SttFutureAtLeastAsSlowAsSttSpectre)
{
    RunOptions opt;
    opt.warmupInstructions = 5'000;
    opt.measureInstructions = 20'000;
    const Workload w = buildSpecWorkload("astar");
    const RunResult base = runScheme(w, Scheme::Baseline, opt);
    const double sp =
        normalizedTime(runScheme(w, Scheme::SttSpectre, opt), base);
    const double fu =
        normalizedTime(runScheme(w, Scheme::SttFuture, opt), base);
    EXPECT_GE(fu, sp * 0.98);
}

} // namespace
} // namespace mtrap

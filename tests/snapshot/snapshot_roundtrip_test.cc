/**
 * @file
 * Snapshot round-trip identity: a machine saved mid-flight, restored
 * into another System and run on must be *bit-identical* to the
 * monolithic run — stats dumps, RunResults and trace exports alike.
 * This is the oracle that makes warm-fork sweeps (mtrap_batch
 * --warm-snapshot) and resumable shards sound: any serialization gap
 * in any component shows up here as a stats diff.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <array>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json_stats.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "snapshot/snapshot.hh"
#include "trace/chrome_trace.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{
namespace
{

constexpr std::uint64_t kCtx = 7;

std::string
statsJson(System &sys)
{
    std::ostringstream os;
    dumpStatsJson(sys.root(), os);
    return os.str();
}

std::string
archDigest(System &sys)
{
    std::ostringstream os;
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        Core &core = sys.core(c);
        os << c << ':' << core.committedCount() << ':'
           << core.lastCommitCycle() << ':' << core.halted();
        for (unsigned r = 0; r < kNumRegs; ++r)
            os << ',' << core.reg(r);
        os << '\n';
    }
    return os.str();
}

const std::vector<Scheme> &
allSchemes()
{
    static const std::vector<Scheme> s = {
        Scheme::Baseline,          Scheme::MuonTrap,
        Scheme::InvisiSpecSpectre, Scheme::InvisiSpecFuture,
        Scheme::SttSpectre,        Scheme::SttFuture,
    };
    return s;
}

Workload
workloadFor(unsigned cores)
{
    return cores == 1 ? buildSpecWorkload("gcc")
                      : buildParsecWorkload("canneal", cores);
}

TEST(SnapshotRoundTrip, BitIdenticalAcrossSchemesAndCoreCounts)
{
    for (const Scheme scheme : allSchemes()) {
        for (const unsigned cores : {1u, 2u, 4u}) {
            const Workload w = workloadFor(cores);
            const SystemConfig cfg = SystemConfig::forScheme(scheme,
                                                             cores);

            System mono(cfg);
            mono.loadWorkload(w);
            mono.run(2'000); // warm phase; nothing drained at the save
            const std::vector<std::uint8_t> image =
                mono.saveSnapshot(kCtx);
            mono.resetStats();
            mono.run(5'000);

            System rest(cfg);
            rest.loadWorkload(w);
            rest.restoreSnapshot(image, kCtx);
            rest.resetStats();
            rest.run(5'000);

            const std::string what = std::string(schemeName(scheme))
                                     + " cores="
                                     + std::to_string(cores);
            ASSERT_EQ(statsJson(rest), statsJson(mono)) << what;
            ASSERT_EQ(archDigest(rest), archDigest(mono)) << what;
        }
    }
}

TEST(SnapshotRoundTrip, ScheduledMixSavedMidQuantum)
{
    const SystemConfig cfg =
        SystemConfig::forScheme(Scheme::MuonTrap, 2);
    SchedParams sp;
    sp.quantum = 10'000;
    const Workload w1 = buildWorkload(specProfile("mcf"), 1);
    const Workload w2 = buildWorkload(specProfile("gcc"), 2);
    const auto admit = [&](System &sys) {
        sys.attachScheduler(sp);
        sys.addScheduledWorkload(w1);
        sys.addScheduledWorkload(w2);
    };

    System mono(cfg);
    admit(mono);
    // An off-quantum commit total leaves resident tasks mid-quantum
    // (partial budgets, live filter contents) at the save point.
    mono.runScheduled(13'777);
    const std::vector<std::uint8_t> image = mono.saveSnapshot(kCtx);
    mono.resetStats();
    mono.runScheduled(30'000);

    System rest(cfg);
    admit(rest);
    rest.restoreSnapshot(image, kCtx);
    rest.resetStats();
    rest.runScheduled(30'000);

    ASSERT_EQ(statsJson(rest), statsJson(mono));
    ASSERT_EQ(archDigest(rest), archDigest(mono));
}

TEST(SnapshotRoundTrip, TracedIntervalSampledRunThroughRunner)
{
    const Workload w = buildSpecWorkload("mcf");
    const SystemConfig cfg =
        SystemConfig::forScheme(Scheme::MuonTrap, 1);
    const std::string snap = testing::TempDir() + "roundtrip-mid.snap";

    RunOptions save_opt;
    save_opt.warmupInstructions = 2'000;
    save_opt.measureInstructions = 6'000;
    save_opt.trace = true;
    save_opt.statsInterval = 1'500;
    save_opt.snapshotOut = snap;
    RunOutput mono = runConfigured(w, cfg, save_opt, "mt");

    RunOptions load_opt = save_opt;
    load_opt.snapshotOut.clear();
    load_opt.snapshotIn = snap;
    RunOutput rest = runConfigured(w, cfg, load_opt, "mt");

    EXPECT_EQ(rest.result.cycles, mono.result.cycles);
    EXPECT_EQ(rest.result.ipc, mono.result.ipc);
    ASSERT_EQ(statsJson(*rest.system), statsJson(*mono.system));

    // Trace export identity: warmup-phase ring contents rode along in
    // the snapshot, so the full Chrome trace (events + interval
    // counter series) is byte-identical.
    std::ostringstream mono_trace, rest_trace;
    writeChromeTrace(*mono.system->tracer(), mono.statSeries.get(),
                     mono_trace);
    writeChromeTrace(*rest.system->tracer(), rest.statSeries.get(),
                     rest_trace);
    ASSERT_EQ(rest_trace.str(), mono_trace.str());
}

TEST(SnapshotRoundTrip, RestoreIntoReusedSystemEqualsFresh)
{
    const Workload w = buildSpecWorkload("gcc");
    const SystemConfig cfg =
        SystemConfig::forScheme(Scheme::SttSpectre, 1);

    System origin(cfg);
    origin.loadWorkload(w);
    origin.run(2'500);
    const std::vector<std::uint8_t> image = origin.saveSnapshot(kCtx);

    // A machine that already ran somewhere else entirely: restore must
    // overwrite every trace of that history.
    System reused(cfg);
    reused.loadWorkload(w);
    reused.run(4'321);
    reused.restoreSnapshot(image, kCtx);
    reused.resetStats();
    reused.run(4'000);

    System fresh(cfg);
    fresh.loadWorkload(w);
    fresh.restoreSnapshot(image, kCtx);
    fresh.resetStats();
    fresh.run(4'000);

    ASSERT_EQ(statsJson(reused), statsJson(fresh));
    ASSERT_EQ(archDigest(reused), archDigest(fresh));
}

TEST(SnapshotRoundTrip, WarmForkCacheHitSkipsWarmupBitIdentically)
{
    const std::string dir = testing::TempDir() + "warm-fork-cache";
    ::mkdir(dir.c_str(), 0755);
    // The cache key (config + context fingerprint) does not cover the
    // simulator's *code*, so a snapshot left by an older build would be
    // restored here and diverge from the fresh monolithic run. Start
    // from an empty cache: this test is about hit-vs-miss identity
    // within one build, not cross-build reuse.
    [[maybe_unused]] const int rc =
        std::system(("rm -f '" + dir + "'/*.snap").c_str());

    const Workload w = buildSpecWorkload("mcf");
    const SystemConfig cfg =
        SystemConfig::forScheme(Scheme::InvisiSpecSpectre, 1);
    RunOptions opt;
    opt.warmupInstructions = 2'000;
    opt.measureInstructions = 5'000;
    opt.warmSnapshotDir = dir;

    // Miss: warms up and populates the cache.
    RunOutput cold = runConfigured(w, cfg, opt, "is");
    // Hit: restores instead of warming.
    RunOutput hit = runConfigured(w, cfg, opt, "is");

    EXPECT_EQ(hit.result.cycles, cold.result.cycles);
    EXPECT_EQ(hit.result.ipc, cold.result.ipc);
    ASSERT_EQ(statsJson(*hit.system), statsJson(*cold.system));

    // And a run with no warm cache at all agrees too.
    RunOptions plain = opt;
    plain.warmSnapshotDir.clear();
    RunOutput none = runConfigured(w, cfg, plain, "is");
    ASSERT_EQ(statsJson(*none.system), statsJson(*cold.system));
}

TEST(SnapshotRoundTrip, SaveIsReadOnly)
{
    const Workload w = buildSpecWorkload("gcc");
    const SystemConfig cfg =
        SystemConfig::forScheme(Scheme::MuonTrap, 1);

    System sys(cfg);
    sys.loadWorkload(w);
    sys.run(2'000);
    const std::vector<std::uint8_t> a = sys.saveSnapshot(kCtx);
    const std::vector<std::uint8_t> b = sys.saveSnapshot(kCtx);
    // Saving twice without stepping yields the same bytes, and the
    // machine keeps running exactly as if never observed.
    ASSERT_EQ(a, b);

    System witness(cfg);
    witness.loadWorkload(w);
    witness.run(2'000);
    sys.run(3'000);
    witness.run(3'000);
    ASSERT_EQ(statsJson(sys), statsJson(witness));
}

} // namespace
} // namespace mtrap

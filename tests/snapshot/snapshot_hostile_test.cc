/**
 * @file
 * Hostile-snapshot suite: every malformed, truncated or mismatched
 * image must be rejected with SnapshotError before any component state
 * mutates — no UB, no partial restores, no trust in on-disk bytes.
 * CI runs this under ASan/UBSan, so an out-of-bounds read provoked by
 * a crafted length field fails the build even if the clean-rejection
 * assertion would have passed.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "sim/json_stats.hh"
#include "sim/system.hh"
#include "snapshot/snapshot.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{
namespace
{

constexpr std::uint64_t kCtx = 11;
/** magic 4 + endian 4 + version 4 + cfg fp 8 + ctx fp 8. */
constexpr std::size_t kHeaderBytes = 28;

SystemConfig
testConfig()
{
    return SystemConfig::forScheme(Scheme::MuonTrap, 1);
}

/** Shared workload: loadWorkload keeps pointers into it, so it must
 *  outlive every System in the suite. */
const Workload &
testWorkload()
{
    static const Workload w = buildSpecWorkload("gcc");
    return w;
}

/** A small but fully-populated image (caches, filters, window state). */
std::vector<std::uint8_t>
makeImage()
{
    System sys(testConfig());
    sys.loadWorkload(testWorkload());
    sys.run(1'500);
    return sys.saveSnapshot(kCtx);
}

/** Fresh restore target with the workload replayed, as restore
 *  requires. */
std::unique_ptr<System>
makeTarget()
{
    auto sys = std::make_unique<System>(testConfig());
    sys->loadWorkload(testWorkload());
    return sys;
}

/** Patch `n` little-endian bytes at `off` and re-seal the CRC so the
 *  mutation exercises the *semantic* check, not just the checksum. */
void
patchAndReseal(std::vector<std::uint8_t> &img, std::size_t off,
               std::uint64_t value, std::size_t n)
{
    ASSERT_LE(off + n, img.size());
    for (std::size_t i = 0; i < n; ++i)
        img[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
    // Trailer = u32 kTagEnd | u64 4 | u32 CRC over all preceding bytes.
    const std::size_t crc_off = img.size() - 4;
    const std::uint32_t crc = crc32(img.data(), img.size() - 16);
    for (std::size_t i = 0; i < 4; ++i)
        img[crc_off + i] = static_cast<std::uint8_t>(crc >> (8 * i));
}

void
expectRejected(const std::vector<std::uint8_t> &img,
               const std::string &what)
{
    auto target = makeTarget();
    std::vector<std::uint8_t> copy = img;
    EXPECT_THROW(target->restoreSnapshot(std::move(copy), kCtx),
                 SnapshotError)
        << what;
}

TEST(SnapshotHostile, TruncatedImagesRejected)
{
    const std::vector<std::uint8_t> img = makeImage();
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, std::size_t{27},
          kHeaderBytes, img.size() / 2, img.size() - 1}) {
        std::vector<std::uint8_t> cut(img.begin(),
                                      img.begin()
                                          + static_cast<long>(keep));
        expectRejected(cut, "truncated to " + std::to_string(keep));
    }
}

TEST(SnapshotHostile, FlippedMagicRejected)
{
    std::vector<std::uint8_t> img = makeImage();
    img[0] ^= 0xff;
    expectRejected(img, "flipped magic");
}

TEST(SnapshotHostile, WrongEndianTagRejected)
{
    std::vector<std::uint8_t> img = makeImage();
    patchAndReseal(img, 4, 0x04030201u, 4);
    expectRejected(img, "byte-swapped endian tag");
}

TEST(SnapshotHostile, WrongFormatVersionRejected)
{
    std::vector<std::uint8_t> img = makeImage();
    patchAndReseal(img, 8, kSnapshotFormatVersion + 1, 4);
    expectRejected(img, "future format version");
}

TEST(SnapshotHostile, WrongConfigFingerprintRejected)
{
    // Genuine mismatch: image saved under MuonTrap, restored into a
    // Baseline machine (valid CRC, valid framing — wrong machine).
    const std::vector<std::uint8_t> img = makeImage();
    auto other = std::make_unique<System>(
        SystemConfig::forScheme(Scheme::Baseline, 1));
    other->loadWorkload(testWorkload());
    std::vector<std::uint8_t> copy = img;
    EXPECT_THROW(other->restoreSnapshot(std::move(copy), kCtx),
                 SnapshotError);

    // And a forged header fingerprint is caught too.
    std::vector<std::uint8_t> forged = img;
    patchAndReseal(forged, 12, 0xdeadbeefcafef00dull, 8);
    expectRejected(forged, "forged config fingerprint");
}

TEST(SnapshotHostile, WrongContextFingerprintRejected)
{
    const std::vector<std::uint8_t> img = makeImage();
    auto target = makeTarget();
    std::vector<std::uint8_t> copy = img;
    EXPECT_THROW(target->restoreSnapshot(std::move(copy), kCtx + 1),
                 SnapshotError);
}

TEST(SnapshotHostile, CorruptBodyFailsCrc)
{
    std::vector<std::uint8_t> img = makeImage();
    img[img.size() / 2] ^= 0x40; // body bit-flip, CRC left stale
    expectRejected(img, "body bit-flip");
}

TEST(SnapshotHostile, OversizedSectionLengthRejected)
{
    // First section header sits right after the file header:
    // u32 tag at 28, u64 length at 32. Claim a payload far beyond the
    // file, CRC re-sealed so only the section-table bound check can
    // catch it.
    std::vector<std::uint8_t> img = makeImage();
    patchAndReseal(img, kHeaderBytes + 4, 0x7fff'ffff'ffff'ffffull, 8);
    expectRejected(img, "oversized section length");

    // Same with a length that overflows pos + len arithmetic.
    std::vector<std::uint8_t> wrap = makeImage();
    patchAndReseal(wrap, kHeaderBytes + 4, 0xffff'ffff'ffff'fff0ull, 8);
    expectRejected(wrap, "wrapping section length");
}

TEST(SnapshotHostile, OversizedElementCountRejected)
{
    // A structurally-valid image whose payload claims a vector of 2^60
    // elements: the framing all checks out, so this exercises the
    // per-read checkCount bound inside component restores.
    Serializer s;
    s.beginSection(kTagMemSystem);
    s.u64(1ull << 60);
    s.endSection();
    const std::vector<std::uint8_t> img = frameSnapshot(s, 1, 2);

    Deserializer d(img, 1, 2);
    d.beginSection(kTagMemSystem);
    std::vector<std::uint64_t> sink;
    EXPECT_THROW(d.vec(sink), SnapshotError);
}

TEST(SnapshotHostile, ImplausibleOccupancyRejected)
{
    // Valid framing, correct fingerprints, resealed CRC — but a
    // length prefix deep inside the first core section (the arch
    // context's call-stack count) claims 2^62 entries. The restore
    // must throw via checkCount, never attempt the resize.
    std::vector<std::uint8_t> img = makeImage();

    auto rd32 = [&](std::size_t at) {
        std::uint32_t v = 0;
        std::memcpy(&v, img.data() + at, 4);
        return v;
    };
    auto rd64 = [&](std::size_t at) {
        std::uint64_t v = 0;
        std::memcpy(&v, img.data() + at, 8);
        return v;
    };
    std::size_t pos = kHeaderBytes;
    ASSERT_EQ(rd32(pos), kTagMemSystem);
    pos += 12 + rd64(pos + 4); // skip to the first core section
    ASSERT_EQ(rd32(pos), kTagCore);

    // Core payload layout opens with the arch context: u32 asid,
    // u64 pc, kNumRegs u64 registers, then the call-stack's u64
    // length prefix — the field we inflate.
    const std::size_t stack_len_off =
        pos + 12 + 4 + 8 + std::size_t{kNumRegs} * 8;
    patchAndReseal(img, stack_len_off, 1ull << 62, 8);
    expectRejected(img, "implausible call-stack length");

    // A pristine image still restores into a fresh target (nothing
    // above depended on mutating shared state).
    auto clean = makeTarget();
    std::vector<std::uint8_t> ok = makeImage();
    EXPECT_NO_THROW(clean->restoreSnapshot(std::move(ok), kCtx));
}

} // namespace
} // namespace mtrap

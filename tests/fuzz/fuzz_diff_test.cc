/**
 * @file
 * Differential fuzzer for the pre-decoded fetch path.
 *
 * The decoded fetch path (Core::fetchOneDecoded over isa/decoded.hh) is
 * required to be a *bit-identical* re-expression of the retained
 * reference interpreter (Core::fetchOne). This fuzzer generates seeded
 * random programs exercising every op type — ALU (add/sub/mul/div/fp,
 * immediates, shifts), loads and stores with indexed addressing,
 * conditional branches over every condition, BTB-predicted indirect
 * jumps with data-dependent targets, call/ret pairs, and the
 * serializing protection-domain ops — then runs each program twice on
 * otherwise-identical systems (CoreParams::decodedFetch on/off) and
 * asserts that:
 *
 *  - the commit stream matches: a trajectory hash folded over
 *    (committed count, last commit cycle, pc, register file) at fixed
 *    commit-chunk boundaries,
 *  - the final statistics dump is byte-identical (every counter in the
 *    whole system tree: core, bpred, caches, TLBs, filters, bus, DRAM),
 *  - final architectural state (registers, halted, pc) and the
 *    program's reachable memory image match.
 *
 * Runs across the five protected schemes of figures 3/4 plus the
 * unprotected baseline, on 1-, 2- and 4-core systems with loads/stores
 * spread across distinct ASIDs (and one shared-ASID coherence
 * configuration).
 *
 * Program count per (scheme, cores) configuration defaults to a
 * CI-sized batch; set MTRAP_FUZZ_PROGRAMS to scale it (the
 * mtrap_fuzz_long ctest entry, gated behind -DMTRAP_LONG_FUZZ=ON, runs
 * 1000 per scheme).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/decoded.hh"
#include "sim/json_stats.hh"
#include "sim/system.hh"

namespace mtrap
{
namespace
{

constexpr Addr kDataBase = 0x90'0000'0000ull;
constexpr std::int64_t kDataMask = 32 * 1024 - 8;

/** Number of fuzz programs per (scheme, cores) configuration. */
unsigned
programsPerConfig()
{
    if (const char *env = std::getenv("MTRAP_FUZZ_PROGRAMS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 25;
}

/** Seed salt mixed into every program seed: MTRAP_FUZZ_SEED picks a
 *  different program population entirely (the CI sanitizer batch uses
 *  this so it is not a re-run of the fixed default seeds). */
std::uint64_t
seedSalt()
{
    if (const char *env = std::getenv("MTRAP_FUZZ_SEED"))
        return static_cast<std::uint64_t>(std::atoll(env));
    return 0;
}

/**
 * Generate one seeded random program. Structure: a counted loop whose
 * body is a random mix over every op class, with matched call/ret
 * subroutines placed after the halt and all memory accesses masked into
 * a private 32 KiB region.
 */
Program
fuzzProgram(std::uint64_t seed, unsigned body_ops, unsigned iterations)
{
    Rng rng(seed);
    ProgramBuilder b(strfmt("fuzz%llu",
                            static_cast<unsigned long long>(seed)));

    // r1..r20 general data, r26 counter, r27 limit, r28 data base,
    // r29 address mask, r30 jump scratch, r21 address scratch.
    b.movi(26, 0);
    b.movi(27, iterations);
    b.movi(28, static_cast<std::int64_t>(kDataBase));
    b.movi(29, kDataMask);
    for (unsigned r = 1; r <= 20; ++r)
        b.movi(r, static_cast<std::int64_t>(rng.below(100'000)));

    const unsigned n_subs = 1 + static_cast<unsigned>(rng.below(3));
    unsigned label_id = 0;
    // (movi index, landing label): ProgramBuilder has no label->imm
    // fixups, so indirect-jump target loads are patched after take().
    std::vector<std::pair<std::uint64_t, std::string>> jump_patches;

    b.label("top");
    for (unsigned i = 0; i < body_ops; ++i) {
        const unsigned d = 1 + static_cast<unsigned>(rng.below(20));
        const unsigned s1 = 1 + static_cast<unsigned>(rng.below(20));
        const unsigned s2 = 1 + static_cast<unsigned>(rng.below(20));
        switch (rng.below(12)) {
          case 0: b.add(d, s1, s2); break;
          case 1: b.sub(d, s1, s2); break;
          case 2: b.mul(d, s1, s2); break;
          case 3: b.div(d, s1, s2); break;
          case 4: b.fp(d, s1, s2); break;
          case 5:
            switch (rng.below(5)) {
              case 0: b.addi(d, s1, static_cast<std::int64_t>(
                                        rng.below(4096))); break;
              case 1: b.xori(d, s1, static_cast<std::int64_t>(
                                        rng.below(0xffff))); break;
              case 2: b.ori(d, s1, static_cast<std::int64_t>(
                                       rng.below(0xff))); break;
              case 3: b.shli(d, s1, 1 + static_cast<unsigned>(
                                            rng.below(6))); break;
              default: b.shri(d, s1, 1 + static_cast<unsigned>(
                                             rng.below(12))); break;
            }
            break;
          case 6: { // load, indexed addressing
            b.andi(21, s1, kDataMask);
            b.load(d, 28, 0, 21, static_cast<unsigned>(rng.below(2)));
            break;
          }
          case 7: { // store
            b.andi(21, s2, kDataMask);
            b.store(s1, 28, 0, 21, 0);
            break;
          }
          case 8: { // conditional branch over one or two ops
            static const BranchCond conds[] = {
                BranchCond::Eq,  BranchCond::Ne,  BranchCond::Lt,
                BranchCond::Ge,  BranchCond::Ult, BranchCond::Uge,
            };
            const std::string skip = strfmt("l%u", label_id++);
            b.braCond(conds[rng.below(6)], s1, s2, skip);
            b.add(d, d, s1);
            if (rng.below(2))
                b.sub(d, d, s2);
            b.label(skip);
            break;
          }
          case 9: { // data-dependent indirect jump over two landings
            const std::string land = strfmt("l%u", label_id++);
            b.andi(30, s1, 1);       // r30 = s1 & 1
            b.movi(31, 0);           // r31 = index of 'land' (patched)
            jump_patches.emplace_back(b.here() - 1, land);
            b.add(30, 30, 31);       // target = land or land + 1
            b.jumpReg(30);
            b.label(land);
            b.nop();
            b.add(d, d, s2);
            break;
          }
          case 10: // unconditional branch (skip one op)
            {
                const std::string skip = strfmt("l%u", label_id++);
                b.bra(skip);
                b.nop();
                b.label(skip);
            }
            break;
          default: // call a random subroutine, or a rare serializer
            if (rng.below(8) == 0) {
                switch (rng.below(4)) {
                  case 0: b.syscall(); break;
                  case 1: b.sandboxEnter(); break;
                  case 2: b.sandboxExit(); break;
                  default: b.flushBarrier(); break;
                }
            } else {
                b.call(strfmt("sub%llu",
                              static_cast<unsigned long long>(
                                  rng.below(n_subs))));
            }
            break;
        }
    }
    b.addi(26, 26, 1);
    b.braLt("top", 26, 27);
    b.halt();

    // Subroutines (reachable only through calls).
    for (unsigned s = 0; s < n_subs; ++s) {
        b.label(strfmt("sub%u", s));
        const unsigned d = 1 + static_cast<unsigned>(rng.below(20));
        b.addi(d, d, static_cast<std::int64_t>(rng.below(64)));
        if (rng.below(2)) {
            b.andi(21, d, kDataMask);
            b.load(d, 28, 0, 21, 0);
        }
        b.ret();
    }
    // Unreachable terminator: keeps the builder's ends-with-halt lint
    // quiet (the architectural halt is the one before the subroutines).
    b.halt();
    Program p = b.take();
    for (const auto &[idx, name] : jump_patches)
        p.ops[idx].imm = static_cast<std::int64_t>(b.labelIndex(name));
    return p;
}

/** Everything one differential run produces. */
struct FuzzResult
{
    std::uint64_t trajectory = 0;
    /** Trajectory hash after each commit chunk — pinpoints the first
     *  divergent chunk for the snapshot repro hook. */
    std::vector<std::uint64_t> chunkTrajectory;
    std::string statsJson;
    std::vector<std::array<std::uint64_t, kNumRegs>> regs;
    std::vector<bool> halted;
    std::uint64_t memFingerprint = 0;
};

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    return (h ^ v) * 1099511628211ull;
}

/**
 * Run one program per core (distinct or shared asids) and capture the
 * trajectory + final state. `decoded` selects the fetch path.
 */
FuzzResult
runFuzz(const std::vector<Program> &progs, Scheme scheme, bool decoded,
        bool shared_asid)
{
    const unsigned cores = static_cast<unsigned>(progs.size());
    SystemConfig cfg = SystemConfig::forScheme(scheme, cores);
    cfg.core.decodedFetch = decoded;
    System sys(cfg);

    for (unsigned c = 0; c < cores; ++c) {
        ArchContext ctx;
        ctx.program = &progs[c];
        ctx.asid = shared_asid ? 1 : static_cast<Asid>(c + 1);
        sys.core(c).setContext(ctx);
    }

    FuzzResult r;
    // Chunked run: fold the commit stream into the trajectory hash at
    // fixed commit boundaries so transient divergence cannot cancel out
    // by the end of the run.
    for (unsigned chunk = 0; chunk < 64; ++chunk) {
        sys.run(500);
        bool all_halted = true;
        for (unsigned c = 0; c < cores; ++c) {
            Core &core = sys.core(c);
            r.trajectory = fnv(r.trajectory, core.committedCount());
            r.trajectory = fnv(r.trajectory, core.lastCommitCycle());
            for (unsigned i = 0; i < kNumRegs; ++i)
                r.trajectory = fnv(r.trajectory, core.reg(i));
            all_halted = all_halted && core.halted();
        }
        r.chunkTrajectory.push_back(r.trajectory);
        if (all_halted)
            break;
    }
    sys.drainAll();

    for (unsigned c = 0; c < cores; ++c) {
        std::array<std::uint64_t, kNumRegs> regs{};
        for (unsigned i = 0; i < kNumRegs; ++i)
            regs[i] = sys.core(c).reg(i);
        r.regs.push_back(regs);
        r.halted.push_back(sys.core(c).halted());
    }

    // Memory image over every (asid, region) the programs can touch.
    for (unsigned c = 0; c < cores; ++c) {
        const Asid asid = shared_asid ? 1 : static_cast<Asid>(c + 1);
        for (Addr a = kDataBase; a <= kDataBase + kDataMask; a += 8)
            r.memFingerprint =
                fnv(r.memFingerprint, sys.mem().read(asid, a));
        if (shared_asid)
            break;
    }

    std::ostringstream os;
    dumpStatsJson(sys.root(), os);
    r.statsJson = os.str();
    return r;
}

/** The schemes the fuzzer locks down (figures 3/4 five + baseline +
 *  the delay-on-miss security baseline). */
const std::vector<Scheme> &
fuzzSchemes()
{
    static const std::vector<Scheme> s = {
        Scheme::Baseline,         Scheme::MuonTrap,
        Scheme::InvisiSpecSpectre, Scheme::InvisiSpecFuture,
        Scheme::SttSpectre,        Scheme::SttFuture,
        Scheme::DelayOnMiss,
    };
    return s;
}

/**
 * Divergence repro hook: when MTRAP_FUZZ_SNAPSHOT_DIR is set and the
 * two fetch paths' commit streams diverge, re-run both configurations
 * to the last chunk boundary on which they still agreed and drop a
 * snapshot of each machine there. Loading those snapshots (same
 * config, same setContext replay) puts a debugger one 500-commit
 * chunk away from the divergence instead of a whole run away.
 */
void
dropDivergenceSnapshots(const std::vector<Program> &progs, Scheme scheme,
                        bool shared_asid, std::uint64_t seed,
                        std::size_t agree_chunks)
{
    const char *dir = std::getenv("MTRAP_FUZZ_SNAPSHOT_DIR");
    if (!dir || !*dir)
        return;
    const unsigned cores = static_cast<unsigned>(progs.size());
    for (const bool decoded : {false, true}) {
        SystemConfig cfg = SystemConfig::forScheme(scheme, cores);
        cfg.core.decodedFetch = decoded;
        System sys(cfg);
        for (unsigned c = 0; c < cores; ++c) {
            ArchContext ctx;
            ctx.program = &progs[c];
            ctx.asid = shared_asid ? 1 : static_cast<Asid>(c + 1);
            sys.core(c).setContext(ctx);
        }
        for (std::size_t chunk = 0; chunk < agree_chunks; ++chunk)
            sys.run(500);
        const std::string path = strfmt(
            "%s/fuzz-divergence-%llu-%s.snap", dir,
            static_cast<unsigned long long>(seed),
            decoded ? "decoded" : "reference");
        sys.saveSnapshotFile(path, seed);
        std::fprintf(stderr,
                     "fuzz: divergence snapshot %s (machine at last "
                     "agreeing chunk %zu)\n",
                     path.c_str(), agree_chunks);
    }
}

void
expectIdentical(const FuzzResult &ref, const FuzzResult &dec,
                const std::vector<Program> &progs, bool shared_asid,
                Scheme scheme, unsigned cores, std::uint64_t seed)
{
    const std::string what =
        strfmt("scheme=%s cores=%u seed=%llu", schemeName(scheme), cores,
               static_cast<unsigned long long>(seed));
    if (ref.trajectory != dec.trajectory) {
        const std::size_t n = std::min(ref.chunkTrajectory.size(),
                                       dec.chunkTrajectory.size());
        std::size_t agree = 0;
        while (agree < n
               && ref.chunkTrajectory[agree] == dec.chunkTrajectory[agree])
            ++agree;
        dropDivergenceSnapshots(progs, scheme, shared_asid, seed, agree);
    }
    ASSERT_EQ(ref.trajectory, dec.trajectory)
        << "commit-stream divergence: " << what;
    ASSERT_EQ(ref.regs, dec.regs) << "register divergence: " << what;
    ASSERT_EQ(ref.halted, dec.halted) << "halt divergence: " << what;
    ASSERT_EQ(ref.memFingerprint, dec.memFingerprint)
        << "memory divergence: " << what;
    ASSERT_EQ(ref.statsJson, dec.statsJson)
        << "stats divergence: " << what;
}

class FuzzDifferentialTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(FuzzDifferentialTest, DecodedPathMatchesReferenceSingleCore)
{
    const Scheme scheme = GetParam();
    const unsigned n = programsPerConfig();
    for (unsigned i = 0; i < n; ++i) {
        const std::uint64_t seed =
            mixSeeds(0xf022 ^ seedSalt(), i * 6151 + 17);
        std::vector<Program> progs;
        progs.push_back(fuzzProgram(seed, 16, 30));
        const FuzzResult ref = runFuzz(progs, scheme, false, false);
        const FuzzResult dec = runFuzz(progs, scheme, true, false);
        expectIdentical(ref, dec, progs, false, scheme, 1, seed);
    }
}

TEST_P(FuzzDifferentialTest, DecodedPathMatchesReferenceMultiCore)
{
    const Scheme scheme = GetParam();
    // Multi-core runs are ~4x the work; scale the count down but keep
    // at least a handful per configuration.
    const unsigned n = std::max(4u, programsPerConfig() / 4);
    for (unsigned cores : {2u, 4u}) {
        for (unsigned i = 0; i < n; ++i) {
            const std::uint64_t seed =
                mixSeeds((0xf022 + cores) ^ seedSalt(), i * 9377 + 5);
            std::vector<Program> progs;
            for (unsigned c = 0; c < cores; ++c)
                progs.push_back(
                    fuzzProgram(mixSeeds(seed, c), 12, 20));
            // Alternate between private address spaces and a shared
            // one (coherence + cross-asid invalidation coverage).
            const bool shared = (i % 2) == 1;
            const FuzzResult ref = runFuzz(progs, scheme, false, shared);
            const FuzzResult dec = runFuzz(progs, scheme, true, shared);
            expectIdentical(ref, dec, progs, shared, scheme, cores,
                            seed);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, FuzzDifferentialTest, ::testing::ValuesIn(fuzzSchemes()),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string n = schemeName(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

/**
 * Oracle self-test: prove the differential fuzzer would actually catch
 * a latency bug in the delay-on-miss leg. MTRAP_FUZZ_DELAY_MUTATION
 * perturbs the *decoded* path's delayed-load completion by one cycle
 * (core.cc's delayMutationHook); the fuzzer must flag the divergence
 * within a handful of seeds. If this fails, the DelayOnMiss rotation
 * above is running on a code path the programs never reach — dead
 * coverage, not real coverage.
 */
TEST(FuzzOracle, CatchesInjectedDelayOnMissLatencyMutation)
{
    struct EnvGuard
    {
        EnvGuard() { setenv("MTRAP_FUZZ_DELAY_MUTATION", "1", 1); }
        ~EnvGuard() { unsetenv("MTRAP_FUZZ_DELAY_MUTATION"); }
    } guard;

    bool caught = false;
    for (unsigned i = 0; i < 10 && !caught; ++i) {
        const std::uint64_t seed =
            mixSeeds(0xde1a ^ seedSalt(), i * 6151 + 17);
        std::vector<Program> progs;
        progs.push_back(fuzzProgram(seed, 16, 30));
        const FuzzResult ref =
            runFuzz(progs, Scheme::DelayOnMiss, false, false);
        const FuzzResult dec =
            runFuzz(progs, Scheme::DelayOnMiss, true, false);
        caught = ref.trajectory != dec.trajectory
                 || ref.statsJson != dec.statsJson;
    }
    EXPECT_TRUE(caught)
        << "injected +1-cycle delay-on-miss mutation went undetected "
           "across 10 seeds: the fuzzer is not exercising the "
           "delayed-load leg";
}

/** The decode itself: kinds, latencies, FU selection, pre-resolved
 *  targets. */
TEST(DecodeTest, LowersEveryOpFaithfully)
{
    ProgramBuilder b("decode");
    b.movi(1, 5);
    b.mul(2, 1, 1);
    b.div(3, 2, 1);
    b.fp(4, 1, 2);
    b.load(5, 1, 8, 2, 3);
    b.store(5, 1, 16);
    b.label("t");
    b.braLt("t", 1, 2);
    b.bra("end");
    b.label("end");
    b.call("sub");
    b.syscall();
    b.halt();
    b.label("sub");
    b.ret();
    b.halt(); // unreachable; keeps the ends-with-halt lint quiet
    const Program p = b.take();
    const DecodedProgram d = decodeProgram(p);
    ASSERT_EQ(d.ops.size(), p.ops.size());
    ASSERT_EQ(d.source, &p);

    EXPECT_EQ(d.ops[0].kind, OpKind::Alu);
    EXPECT_EQ(d.ops[0].fuSel, kFuInt);
    EXPECT_EQ(d.ops[0].latency, 1u);
    EXPECT_EQ(d.ops[1].kind, OpKind::Alu);
    EXPECT_EQ(d.ops[1].fuSel, kFuMul);
    EXPECT_EQ(d.ops[1].latency, 3u);
    EXPECT_EQ(d.ops[2].fuSel, kFuMul);
    EXPECT_EQ(d.ops[2].latency, 12u);
    EXPECT_EQ(d.ops[3].fuSel, kFuFp);
    EXPECT_EQ(d.ops[3].latency, 3u);
    EXPECT_EQ(d.ops[4].kind, OpKind::Load);
    EXPECT_EQ(d.ops[4].base, 1);
    EXPECT_EQ(d.ops[4].index, 2);
    EXPECT_EQ(d.ops[4].scale, 3);
    EXPECT_EQ(d.ops[4].imm, 8);
    EXPECT_EQ(d.ops[5].kind, OpKind::Store);
    EXPECT_EQ(d.ops[6].kind, OpKind::BraCond);
    EXPECT_EQ(d.ops[6].target(), 6u); // self-loop label 't'
    EXPECT_EQ(d.ops[7].kind, OpKind::BraAlways);
    EXPECT_EQ(d.ops[7].target(), 8u);
    EXPECT_EQ(d.ops[8].kind, OpKind::Call);
    EXPECT_EQ(d.ops[8].target(), 11u);
    EXPECT_EQ(d.ops[9].kind, OpKind::Serial);
    EXPECT_EQ(d.ops[9].type, OpType::Syscall);
    EXPECT_EQ(d.ops[10].kind, OpKind::Serial);
    EXPECT_EQ(d.ops[10].type, OpType::Halt);
    EXPECT_EQ(d.ops[11].kind, OpKind::Ret);
}

} // namespace
} // namespace mtrap

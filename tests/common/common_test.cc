/**
 * @file
 * Unit tests for the common runtime: types helpers, logging format,
 * statistics and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mtrap
{
namespace
{

// --- types ------------------------------------------------------------------

TEST(Types, LineAlignment)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(0x12345), 0x12340u);
    EXPECT_EQ(lineNum(128), 2u);
}

TEST(Types, PageAlignment)
{
    EXPECT_EQ(pageAlign(4095), 0u);
    EXPECT_EQ(pageAlign(4096), 4096u);
    EXPECT_EQ(pageNum(8192), 2u);
}

TEST(Types, PowerOfTwo)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(2048));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(2049));
}

TEST(Types, Log2)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(64), 6u);
    EXPECT_EQ(log2i(2048), 11u);
}

// --- logging ------------------------------------------------------------------

TEST(Log, StrfmtFormats)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "abc"), "x=42 y=abc");
    EXPECT_EQ(strfmt("%llu", 123456789012345ull), "123456789012345");
    EXPECT_EQ(strfmt("plain"), "plain");
}

// --- stats --------------------------------------------------------------------

TEST(Stats, CounterBasics)
{
    StatGroup g("g");
    Counter c(&g, "c", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    StatGroup g("g");
    Average a(&g, "a", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Stats, HistogramBuckets)
{
    StatGroup g("g");
    Histogram h(&g, "h", "a histogram", 10, 4);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40);   // overflow
    h.sample(1000); // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 6u);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

namespace
{

struct RatioCtx
{
    Counter *a;
    Counter *b;
};

double
ratioFormula(const void *ctx)
{
    const RatioCtx *r = static_cast<const RatioCtx *>(ctx);
    return r->b->value() ? static_cast<double>(r->a->value())
                               / static_cast<double>(r->b->value())
                         : 0.0;
}

} // namespace

TEST(Stats, FormulaComputesOnDemand)
{
    StatGroup g("g");
    Counter a(&g, "a", "");
    Counter b(&g, "b", "");
    RatioCtx ctx{&a, &b};
    Formula f(&g, "f", "ratio", &ratioFormula, &ctx);
    a += 3;
    b += 4;
    EXPECT_DOUBLE_EQ(f.value(), 0.75);
}

TEST(Stats, GroupDumpContainsPathAndFind)
{
    StatGroup root("system");
    StatGroup child("l1", &root);
    Counter c(&child, "hits", "hit count");
    c += 7;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("system.l1.hits = 7"), std::string::npos);
    EXPECT_EQ(child.path(), "system.l1");
    EXPECT_FALSE(root.find("hits")); // lives in the child group
    EXPECT_TRUE(child.find("hits"));
}

TEST(Stats, FindLocatesLocalStatsOnly)
{
    StatGroup root("r");
    StatGroup child("c", &root);
    Counter c(&child, "x", "");
    EXPECT_FALSE(root.find("x"));
    EXPECT_TRUE(child.find("x"));
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root("r");
    StatGroup child("c", &root);
    Counter a(&root, "a", "");
    Counter b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= (a.next() != b.next());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, RoughlyUniform)
{
    Rng r(17);
    unsigned buckets[4] = {0, 0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.below(4)];
    for (unsigned b : buckets) {
        EXPECT_GT(b, n / 4 - n / 20);
        EXPECT_LT(b, n / 4 + n / 20);
    }
}

} // namespace
} // namespace mtrap

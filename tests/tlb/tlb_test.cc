/**
 * @file
 * Unit tests for address spaces, TLBs and the page-table walker.
 */

#include <gtest/gtest.h>

#include "tlb/tlb.hh"
#include "tlb/walker.hh"

namespace mtrap
{
namespace
{

TEST(AddressSpace, TranslationDeterministic)
{
    AddressSpace vm;
    EXPECT_EQ(vm.translate(1, 0x1000), vm.translate(1, 0x1000));
    // Offsets within a page are preserved.
    EXPECT_EQ(vm.translate(1, 0x1234) & 0xfff, 0x234u);
    EXPECT_EQ(pageAlign(vm.translate(1, 0x1234)),
              pageAlign(vm.translate(1, 0x1000)));
}

TEST(AddressSpace, AsidsSeparateByDefault)
{
    AddressSpace vm;
    EXPECT_NE(pageAlign(vm.translate(1, 0x1000)),
              pageAlign(vm.translate(2, 0x1000)));
}

TEST(AddressSpace, AliasSharesPhysicalPage)
{
    AddressSpace vm;
    vm.alias(1, 0x10000, 0x5000000, kPageBytes);
    vm.alias(2, 0x20000, 0x5000000, kPageBytes);
    EXPECT_EQ(vm.translate(1, 0x10008), vm.translate(2, 0x20008));
    EXPECT_EQ(vm.translate(1, 0x10000), 0x5000000u);
}

TEST(AddressSpace, AliasSpansMultiplePages)
{
    AddressSpace vm;
    vm.alias(1, 0x10000, 0x5000000, 3 * kPageBytes);
    EXPECT_EQ(vm.translate(1, 0x10000 + 2 * kPageBytes),
              0x5000000u + 2 * kPageBytes);
}

TEST(AddressSpace, AliasRequiresPageAlignment)
{
    AddressSpace vm;
    EXPECT_EXIT(vm.alias(1, 0x10008, 0x5000000, kPageBytes),
                ::testing::ExitedWithCode(1), "aligned");
}

TEST(AddressSpace, PteAddrsDistinctPerLevel)
{
    AddressSpace vm;
    const Addr v = 0x123456789000ull;
    for (unsigned l1 = 0; l1 < AddressSpace::kWalkLevels; ++l1)
        for (unsigned l2 = l1 + 1; l2 < AddressSpace::kWalkLevels; ++l2)
            EXPECT_NE(vm.pteAddr(1, v, l1), vm.pteAddr(1, v, l2));
}

TEST(AddressSpace, PteRegionIsSegregated)
{
    AddressSpace vm;
    // PTEs live in a reserved region that normal translations never
    // produce (bit 45).
    EXPECT_NE(vm.pteAddr(1, 0x1000, 0) & (1ull << 45), 0u);
    EXPECT_EQ(vm.translate(1, 0x1000) & (1ull << 45), 0u);
}

// --- TLB --------------------------------------------------------------------

TEST(Tlb, HitAfterInsert)
{
    StatGroup g("g");
    Tlb tlb(TlbParams{"t", 4}, &g);
    tlb.insert(1, 0x1000, 0x9000);
    const TlbEntry *e = tlb.lookup(1, 0x1234);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->ppn, pageNum(0x9000));
    EXPECT_EQ(tlb.hits.value(), 1u);
}

TEST(Tlb, MissOnWrongAsid)
{
    StatGroup g("g");
    Tlb tlb(TlbParams{"t", 4}, &g);
    tlb.insert(1, 0x1000, 0x9000);
    EXPECT_EQ(tlb.lookup(2, 0x1000), nullptr);
    EXPECT_EQ(tlb.misses.value(), 1u);
}

TEST(Tlb, LruEviction)
{
    StatGroup g("g");
    Tlb tlb(TlbParams{"t", 2}, &g);
    tlb.insert(1, 0x1000, 0x9000);
    tlb.insert(1, 0x2000, 0xa000);
    tlb.lookup(1, 0x1000);                    // refresh first entry
    EXPECT_TRUE(tlb.insert(1, 0x3000, 0xb000)); // evicts 0x2000
    EXPECT_NE(tlb.lookup(1, 0x1000), nullptr);
    EXPECT_EQ(tlb.lookup(1, 0x2000), nullptr);
}

TEST(Tlb, InsertRefreshesExisting)
{
    StatGroup g("g");
    Tlb tlb(TlbParams{"t", 2}, &g);
    tlb.insert(1, 0x1000, 0x9000);
    EXPECT_FALSE(tlb.insert(1, 0x1000, 0xc000)); // refresh, no eviction
    EXPECT_EQ(tlb.lookup(1, 0x1000)->ppn, pageNum(0xc000));
    EXPECT_EQ(tlb.validCount(), 1u);
}

TEST(Tlb, FlushClearsAll)
{
    StatGroup g("g");
    Tlb tlb(TlbParams{"t", 8}, &g);
    tlb.insert(1, 0x1000, 0x9000);
    tlb.insert(2, 0x2000, 0xa000);
    tlb.flush();
    EXPECT_EQ(tlb.validCount(), 0u);
    EXPECT_EQ(tlb.lookup(1, 0x1000), nullptr);
    EXPECT_EQ(tlb.flushes.value(), 1u);
}

TEST(Tlb, InvalidateSingleEntry)
{
    StatGroup g("g");
    Tlb tlb(TlbParams{"t", 8}, &g);
    tlb.insert(1, 0x1000, 0x9000);
    EXPECT_TRUE(tlb.invalidate(1, 0x1000));
    EXPECT_FALSE(tlb.invalidate(1, 0x1000));
    EXPECT_EQ(tlb.lookup(1, 0x1000), nullptr);
}

TEST(Tlb, EvictionReturnValueSignalsPrimeProbeObservable)
{
    StatGroup g("g");
    Tlb tlb(TlbParams{"t", 2}, &g);
    EXPECT_FALSE(tlb.insert(1, 0x1000, 0x9000));
    EXPECT_FALSE(tlb.insert(1, 0x2000, 0xa000));
    EXPECT_TRUE(tlb.insert(1, 0x3000, 0xb000))
        << "a full TLB must report the eviction (the TLB side channel)";
}

// --- walker ------------------------------------------------------------------

/** Adapts a test lambda to the walker's PtwAccessIface. */
template <typename Fn>
class LambdaPtw : public PtwAccessIface
{
  public:
    explicit LambdaPtw(Fn fn) : fn_(std::move(fn)) {}
    AccessResult ptwAccess(const Access &acc) override { return fn_(acc); }

  private:
    Fn fn_;
};

template <typename Fn>
LambdaPtw<Fn>
makePtw(Fn fn)
{
    return LambdaPtw<Fn>(std::move(fn));
}

TEST(Walker, IssuesOneReadPerLevel)
{
    StatGroup g("g");
    AddressSpace vm;
    unsigned accesses = 0;
    auto ptw = makePtw([&accesses](const Access &acc) {
        EXPECT_EQ(acc.kind, AccessKind::Ptw);
        ++accesses;
        AccessResult r;
        r.latency = 10;
        return r;
    });
    PageTableWalker w(&vm, 0, &ptw, &g);
    const Cycle lat = w.walk(1, 0x1000, 0, true);
    EXPECT_EQ(accesses, AddressSpace::kWalkLevels);
    EXPECT_EQ(lat, 10 * AddressSpace::kWalkLevels);
    EXPECT_EQ(w.pteReads.value(), AddressSpace::kWalkLevels);
}

TEST(Walker, SpeculativeFlagPropagates)
{
    StatGroup g("g");
    AddressSpace vm;
    bool all_spec = true;
    auto ptw = makePtw([&all_spec](const Access &acc) {
        all_spec &= acc.speculative;
        return AccessResult{1, false, 2};
    });
    PageTableWalker w(&vm, 0, &ptw, &g);
    w.walk(1, 0x1000, 0, true);
    EXPECT_TRUE(all_spec);
}

TEST(Walker, RetranslateIsNonSpeculative)
{
    StatGroup g("g");
    AddressSpace vm;
    bool any_spec = false;
    auto ptw = makePtw([&any_spec](const Access &acc) {
        any_spec |= acc.speculative;
        return AccessResult{1, false, 0};
    });
    PageTableWalker w(&vm, 0, &ptw, &g);
    w.retranslate(1, 0x1000, 100);
    EXPECT_FALSE(any_spec);
    EXPECT_EQ(w.retranslations.value(), 1u);
}

TEST(Walker, SequentialTimingAccumulates)
{
    StatGroup g("g");
    AddressSpace vm;
    Cycle last_when = 0;
    bool monotonic = true;
    auto ptw = makePtw([&](const Access &acc) {
        monotonic &= (acc.when >= last_when);
        last_when = acc.when;
        return AccessResult{7, false, 2};
    });
    PageTableWalker w(&vm, 0, &ptw, &g);
    w.walk(1, 0x1000, 50, false);
    EXPECT_TRUE(monotonic) << "walk levels are dependent accesses";
}

} // namespace
} // namespace mtrap

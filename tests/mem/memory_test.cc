/**
 * @file
 * Unit tests for the main-memory model: functional store semantics and
 * the row-buffer timing model.
 */

#include <gtest/gtest.h>

#include "mem/memory.hh"

namespace mtrap
{
namespace
{

TEST(Memory, UnwrittenReadsDeterministicNonzeroHash)
{
    StatGroup g("g");
    MainMemory m(MemoryParams{}, &g);
    const std::uint64_t v1 = m.read(0x1000);
    const std::uint64_t v2 = m.read(0x1000);
    EXPECT_EQ(v1, v2);
    EXPECT_NE(v1, 0u);
    EXPECT_NE(m.read(0x1000), m.read(0x1008));
}

TEST(Memory, WriteThenRead)
{
    StatGroup g("g");
    MainMemory m(MemoryParams{}, &g);
    m.write(0x2000, 42);
    EXPECT_EQ(m.read(0x2000), 42u);
    EXPECT_EQ(m.footprintWords(), 1u);
}

TEST(Memory, WordGranularity)
{
    StatGroup g("g");
    MainMemory m(MemoryParams{}, &g);
    m.write(0x2004, 7); // unaligned address maps to its word
    EXPECT_EQ(m.read(0x2000), 7u);
    EXPECT_EQ(m.read(0x2007), 7u);
}

TEST(Memory, RowBufferHitFasterThanMiss)
{
    StatGroup g("g");
    MainMemory m(MemoryParams{}, &g);
    Access a;
    a.paddr = 0x10000;
    const Cycle first = m.access(a);   // row miss
    const Cycle second = m.access(a);  // row hit
    EXPECT_GT(first, second);
    EXPECT_EQ(m.rowMisses.value(), 1u);
    EXPECT_EQ(m.rowHits.value(), 1u);
}

TEST(Memory, DifferentRowsConflict)
{
    StatGroup g("g");
    MemoryParams p;
    MainMemory m(p, &g);
    Access a, b;
    a.paddr = 0x10000;
    // Same bank, different row: banks stride by rowBytes.
    b.paddr = 0x10000 + p.rowBytes * p.banks;
    m.access(a);
    const Cycle t = m.access(b);
    EXPECT_EQ(t, p.rowMissLatency);
}

TEST(Memory, IndependentBanksBothOpen)
{
    StatGroup g("g");
    MemoryParams p;
    MainMemory m(p, &g);
    Access a, b;
    a.paddr = 0;
    b.paddr = p.rowBytes; // next bank
    m.access(a);
    m.access(b);
    EXPECT_EQ(m.access(a), p.rowHitLatency);
    EXPECT_EQ(m.access(b), p.rowHitLatency);
}

TEST(Memory, WritesCounted)
{
    StatGroup g("g");
    MainMemory m(MemoryParams{}, &g);
    Access a;
    a.paddr = 0x100;
    a.kind = AccessKind::Store;
    m.access(a);
    EXPECT_EQ(m.writes.value(), 1u);
    EXPECT_EQ(m.reads.value(), 0u);
}

TEST(Memory, AccessKindNames)
{
    EXPECT_STREQ(accessKindName(AccessKind::Load), "load");
    EXPECT_STREQ(accessKindName(AccessKind::Prefetch), "prefetch");
}

} // namespace
} // namespace mtrap

/**
 * @file
 * Unit tests for the speculative filter cache: committed bits, flash
 * clear, virtual/physical dual tagging, alias displacement, S-only
 * states, and the MuonTrapCore clearing policy.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "muontrap/controller.hh"
#include "muontrap/filter_cache.hh"

namespace mtrap
{
namespace
{

FilterCacheParams
defaults()
{
    return FilterCacheParams{}; // 2KiB 4-way, paper Table 1
}

TEST(FilterCache, SpeculativeFillSetsUncommitted)
{
    StatGroup g("g");
    FilterCache f(defaults(), &g);
    CacheLine &l = f.fillVirt(1, 0x1000, 0x9000, /*speculative=*/true, 2,
                              false);
    EXPECT_FALSE(l.committed);
    EXPECT_EQ(l.state, CoherState::Shared);
    EXPECT_EQ(l.fillLevel, 2);
    EXPECT_EQ(f.speculativeFills.value(), 1u);
}

TEST(FilterCache, NonSpeculativeFillIsCommitted)
{
    StatGroup g("g");
    FilterCache f(defaults(), &g);
    CacheLine &l = f.fillVirt(1, 0x1000, 0x9000, false, 1, false);
    EXPECT_TRUE(l.committed);
    EXPECT_EQ(f.committedFills.value(), 1u);
}

TEST(FilterCache, VirtualLookupRequiresBothTags)
{
    StatGroup g("g");
    FilterCache f(defaults(), &g);
    f.fillVirt(1, 0x1000, 0x9000, true, 1, false);
    // Correct (asid, vaddr, paddr) hits.
    EXPECT_NE(f.lookupVirt(1, 0x1000, 0x9000), nullptr);
    // Wrong ASID misses (another process's alias must not hit).
    EXPECT_EQ(f.lookupVirt(2, 0x1000, 0x9000), nullptr);
    // Same physical line through a different virtual address misses on
    // the CPU side.
    EXPECT_EQ(f.lookupVirt(1, 0x5000, 0x9000), nullptr);
}

TEST(FilterCache, PhysicalFillDisplacesAlias)
{
    StatGroup g("g");
    FilterCache f(defaults(), &g);
    f.fillVirt(1, 0x1000, 0x9000, true, 1, false);
    // Fill the same physical line under a different virtual tag: only
    // one copy of the physical line may exist (§4.4).
    f.fillVirt(1, 0x5000, 0x9000, true, 1, false);
    EXPECT_EQ(f.aliasOverwrites.value(), 1u);
    EXPECT_EQ(f.lookupVirt(1, 0x1000, 0x9000), nullptr);
    EXPECT_NE(f.lookupVirt(1, 0x5000, 0x9000), nullptr);
    EXPECT_EQ(f.validLineCount(), 1u);
}

TEST(FilterCache, FlashClearHidesEverything)
{
    StatGroup g("g");
    FilterCache f(defaults(), &g);
    for (Addr a = 0; a < 8 * kLineBytes; a += kLineBytes)
        f.fillVirt(1, 0x1000 + a, 0x9000 + a, true, 1, false);
    EXPECT_GT(f.validLineCount(), 0u);
    f.flashClear();
    EXPECT_EQ(f.validLineCount(), 0u);
    for (Addr a = 0; a < 8 * kLineBytes; a += kLineBytes) {
        EXPECT_EQ(f.lookupVirt(1, 0x1000 + a, 0x9000 + a), nullptr);
        EXPECT_FALSE(f.presentValid(0x9000 + a));
    }
    EXPECT_EQ(f.flashClearCount(), 1u);
}

TEST(FilterCache, FlashClearIsIdempotent)
{
    StatGroup g("g");
    FilterCache f(defaults(), &g);
    f.flashClear();
    f.flashClear();
    EXPECT_EQ(f.flashClearCount(), 2u);
    EXPECT_EQ(f.validLineCount(), 0u);
}

TEST(FilterCache, PhysicalInvalidateClearsValidBit)
{
    StatGroup g("g");
    FilterCache f(defaults(), &g);
    f.fillVirt(1, 0x1000, 0x9000, true, 1, false);
    // Coherence-side invalidation addresses the cache physically.
    Cache &as_cache = f;
    EXPECT_TRUE(as_cache.invalidate(0x9000));
    EXPECT_EQ(f.lookupVirt(1, 0x1000, 0x9000), nullptr);
    EXPECT_FALSE(f.presentValid(0x9000));
}

TEST(FilterCache, UncommittedEvictionCounted)
{
    StatGroup g("g");
    FilterCacheParams p = defaults();
    p.sizeBytes = 256; // 4 lines, 4-way: one set
    FilterCache f(p, &g);
    for (unsigned i = 0; i < 5; ++i)
        f.fillVirt(1, 0x1000 + i * 0x100, 0x9000 + i * 0x100, true, 1,
                   false);
    EXPECT_EQ(f.uncommittedEvictions.value(), 1u);
}

TEST(FilterCache, CommittedEvictionNotCountedAsUncommitted)
{
    StatGroup g("g");
    FilterCacheParams p = defaults();
    p.sizeBytes = 256;
    FilterCache f(p, &g);
    for (unsigned i = 0; i < 5; ++i)
        f.fillVirt(1, 0x1000 + i * 0x100, 0x9000 + i * 0x100,
                   /*speculative=*/false, 1, false);
    EXPECT_EQ(f.uncommittedEvictions.value(), 0u);
}

TEST(FilterCache, SePendingAnnotationStored)
{
    StatGroup g("g");
    FilterCache f(defaults(), &g);
    CacheLine &l = f.fillVirt(1, 0x1000, 0x9000, true, 3, true);
    EXPECT_TRUE(l.sePending);
    // SE behaves as Shared to the protocol: functional state is S.
    EXPECT_EQ(l.state, CoherState::Shared);
}

TEST(FilterCache, NeverDirty)
{
    StatGroup g("g");
    FilterCache f(defaults(), &g);
    CacheLine &l = f.fillVirt(1, 0x1000, 0x9000, true, 1, false);
    EXPECT_FALSE(l.dirty) << "write-through filter lines are never dirty";
}

// --- flash-clear constant-time property (the §4.3 argument) -----------------

TEST(FilterCache, FlashClearCostIndependentOfOccupancy)
{
    // Structural check: flashClear touches only the valid-bit array, so
    // the amount of work is the line count, not the valid count. We
    // assert the observable contract: clear with 1 valid line and with
    // a full cache both leave 0 valid lines and count one clear each.
    StatGroup g("g");
    FilterCache f(defaults(), &g);
    f.fillVirt(1, 0x1000, 0x9000, true, 1, false);
    f.flashClear();
    EXPECT_EQ(f.validLineCount(), 0u);

    for (Addr a = 0; a < 32 * kLineBytes; a += kLineBytes)
        f.fillVirt(1, 0x10000 + a, 0x90000 + a, true, 1, false);
    f.flashClear();
    EXPECT_EQ(f.validLineCount(), 0u);
    EXPECT_EQ(f.flashClearCount(), 2u);
}

// --- MuonTrapCore clearing policy -------------------------------------------

TEST(MuonTrapCore, FullConfigCreatesAllStructures)
{
    StatGroup g("g");
    MuonTrapCore mt(MuonTrapConfig::full(), 0, &g);
    EXPECT_NE(mt.dataFilter(), nullptr);
    EXPECT_NE(mt.instFilter(), nullptr);
    EXPECT_NE(mt.filterTlb(), nullptr);
}

TEST(MuonTrapCore, OffConfigCreatesNothing)
{
    StatGroup g("g");
    MuonTrapCore mt(MuonTrapConfig::off(), 0, &g);
    EXPECT_EQ(mt.dataFilter(), nullptr);
    EXPECT_EQ(mt.instFilter(), nullptr);
    EXPECT_EQ(mt.filterTlb(), nullptr);
}

TEST(MuonTrapCore, InsecureL0HasDataCacheOnly)
{
    StatGroup g("g");
    MuonTrapCore mt(MuonTrapConfig::insecureL0(), 0, &g);
    EXPECT_NE(mt.dataFilter(), nullptr);
    EXPECT_EQ(mt.instFilter(), nullptr);
    EXPECT_EQ(mt.filterTlb(), nullptr);
}

TEST(MuonTrapCore, FlushOnDomainSwitches)
{
    StatGroup g("g");
    MuonTrapCore mt(MuonTrapConfig::full(), 0, &g);
    mt.dataFilter()->fillVirt(1, 0x1000, 0x9000, true, 1, false);
    mt.instFilter()->fillVirt(1, 0x2000, 0xa000, true, 1, false);
    mt.filterTlb()->insert(1, 0x1000, 0x9000);

    mt.flush(FlushReason::ContextSwitch);
    EXPECT_EQ(mt.dataFilter()->validLineCount(), 0u);
    EXPECT_EQ(mt.instFilter()->validLineCount(), 0u);
    EXPECT_EQ(mt.filterTlb()->validCount(), 0u);
    EXPECT_EQ(mt.flushCtxSwitch.value(), 1u);
}

TEST(MuonTrapCore, MisspecFlushRespectsConfig)
{
    StatGroup g("g");
    MuonTrapConfig cfg = MuonTrapConfig::full(); // clearOnMisspec off
    MuonTrapCore mt(cfg, 0, &g);
    mt.dataFilter()->fillVirt(1, 0x1000, 0x9000, true, 1, false);
    mt.flush(FlushReason::Misspeculation);
    EXPECT_EQ(mt.dataFilter()->validLineCount(), 1u)
        << "default MuonTrap keeps misspeculated data (§4.10)";
    EXPECT_EQ(mt.flushMisspec.value(), 0u);

    StatGroup g2("g2");
    cfg.clearOnMisspec = true;
    MuonTrapCore mt2(cfg, 0, &g2);
    mt2.dataFilter()->fillVirt(1, 0x1000, 0x9000, true, 1, false);
    mt2.flush(FlushReason::Misspeculation);
    EXPECT_EQ(mt2.dataFilter()->validLineCount(), 0u);
    EXPECT_EQ(mt2.flushMisspec.value(), 1u);
}

TEST(MuonTrapCore, InsecureL0NeverClears)
{
    StatGroup g("g");
    MuonTrapCore mt(MuonTrapConfig::insecureL0(), 0, &g);
    mt.dataFilter()->fillVirt(1, 0x1000, 0x9000, false, 1, false);
    mt.flush(FlushReason::ContextSwitch);
    EXPECT_EQ(mt.dataFilter()->validLineCount(), 1u);
}

TEST(MuonTrapCore, SyscallAndSandboxFlushesCounted)
{
    StatGroup g("g");
    MuonTrapCore mt(MuonTrapConfig::full(), 0, &g);
    mt.flush(FlushReason::Syscall);
    mt.flush(FlushReason::Sandbox);
    mt.flush(FlushReason::Explicit);
    EXPECT_EQ(mt.flushSyscall.value(), 1u);
    EXPECT_EQ(mt.flushSandbox.value(), 1u);
    EXPECT_EQ(mt.flushExplicit.value(), 1u);
}

// --- parameterised geometry sweep (figure 5/6 configurations) ---------------

struct GeomParam
{
    std::uint64_t size;
    unsigned assoc;
};

class FilterGeometryTest : public ::testing::TestWithParam<GeomParam>
{
};

TEST_P(FilterGeometryTest, FillLookupClearCycleWorks)
{
    StatGroup g("g");
    FilterCacheParams p;
    p.sizeBytes = GetParam().size;
    p.assoc = GetParam().assoc;
    FilterCache f(p, &g);

    const unsigned lines =
        static_cast<unsigned>(GetParam().size / kLineBytes);
    for (unsigned i = 0; i < 2 * lines; ++i) {
        const Addr va = 0x1000 + static_cast<Addr>(i) * kLineBytes;
        const Addr pa = 0x900000 + static_cast<Addr>(i) * kLineBytes;
        f.fillVirt(1, va, pa, true, 1, false);
        EXPECT_NE(f.lookupVirt(1, va, pa), nullptr);
        EXPECT_LE(f.validLineCount(), lines);
    }
    f.flashClear();
    EXPECT_EQ(f.validLineCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Fig5And6Geometries, FilterGeometryTest,
    ::testing::Values(GeomParam{64, 1}, GeomParam{128, 2},
                      GeomParam{256, 4}, GeomParam{512, 8},
                      GeomParam{1024, 16}, GeomParam{2048, 1},
                      GeomParam{2048, 2}, GeomParam{2048, 4},
                      GeomParam{2048, 8}, GeomParam{2048, 16},
                      GeomParam{2048, 32}, GeomParam{4096, 4}),
    [](const auto &info) {
        return strfmt("size%llu_assoc%u",
                      static_cast<unsigned long long>(info.param.size),
                      info.param.assoc);
    });

} // namespace
} // namespace mtrap

#include "perf/odometer.hh"

namespace mtrap::perf
{

SimOdometer &
SimOdometer::instance()
{
    static SimOdometer odo;
    return odo;
}

} // namespace mtrap::perf

/**
 * @file
 * BENCH.json regression comparison (the CI gate behind
 * `mtrap_perf --compare`).
 *
 * Parses two "mtrap-bench-v1" files (see perf_suite.hh for the schema)
 * and compares per-scenario throughput. The verdict fails when any
 * candidate scenario errored, or when the geometric-mean throughput
 * ratio over the scenarios common to both runs regresses by more than
 * the threshold. Scenarios present on only one side are reported but
 * never fail the gate — suites are allowed to grow and shrink across
 * commits without tripping the comparison.
 */

#ifndef MTRAP_PERF_BENCH_COMPARE_HH
#define MTRAP_PERF_BENCH_COMPARE_HH

#include <string>
#include <vector>

namespace mtrap::perf
{

struct ScenarioResult;

/** One scenario as read back from a BENCH.json. */
struct BenchScenario
{
    std::string name;
    bool ok = false;
    double wallSeconds = 0.0;
    double instructionsPerSecond = 0.0;
};

/** One parsed BENCH.json. */
struct BenchFile
{
    std::string schema;
    std::string mode;
    std::vector<BenchScenario> scenarios;
    double scoreKips = 0.0;
    bool ok = false;
};

/**
 * Parse `text` as a BENCH.json. Returns false (with a message in
 * `err`) on malformed JSON, a missing/unknown schema tag, or missing
 * required fields.
 */
bool parseBenchJson(const std::string &text, BenchFile &out,
                    std::string &err);

/** Convert fresh in-process results to the comparison shape. */
BenchFile benchFileFromResults(const std::vector<ScenarioResult> &results);

struct CompareOptions
{
    /** Maximum tolerated geomean throughput regression, percent. */
    double maxRegressPct = 5.0;
};

/** Verdict of one baseline-vs-candidate comparison. */
struct CompareReport
{
    bool pass = false;
    /** geomean(candidate ips / baseline ips) over common scenarios;
     *  1.0 when there is no common scenario. */
    double geomeanRatio = 1.0;
    std::size_t commonScenarios = 0;
    /** Human-readable per-scenario and verdict lines. */
    std::string text;
};

/**
 * Compare `candidate` (the fresh run) against `baseline` (the previous
 * run's artifact) under `opt`.
 */
CompareReport compareBench(const BenchFile &baseline,
                           const BenchFile &candidate,
                           const CompareOptions &opt = {});

} // namespace mtrap::perf

#endif // MTRAP_PERF_BENCH_COMPARE_HH

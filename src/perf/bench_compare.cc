#include "perf/bench_compare.hh"

#include <cmath>
#include <map>

#include "common/json.hh"
#include "common/log.hh"
#include "perf/perf_suite.hh"

namespace mtrap::perf
{

bool
parseBenchJson(const std::string &text, BenchFile &out, std::string &err)
{
    JsonValue root;
    if (!parseJson(text, root, err))
        return false;
    if (root.kind != JsonValue::Kind::Object) {
        err = "top level is not an object";
        return false;
    }

    const JsonValue *schema = root.field("schema");
    if (!schema || schema->kind != JsonValue::Kind::String) {
        err = "missing \"schema\" tag";
        return false;
    }
    if (schema->string != "mtrap-bench-v1") {
        err = "unknown schema '" + schema->string + "'";
        return false;
    }
    out.schema = schema->string;

    if (const JsonValue *mode = root.field("mode");
        mode && mode->kind == JsonValue::Kind::String)
        out.mode = mode->string;

    const JsonValue *scenarios = root.field("scenarios");
    if (!scenarios || scenarios->kind != JsonValue::Kind::Array) {
        err = "missing \"scenarios\" array";
        return false;
    }
    for (const JsonValue &s : scenarios->array) {
        const JsonValue *name = s.field("name");
        if (!name || name->kind != JsonValue::Kind::String) {
            err = "scenario without a name";
            return false;
        }
        BenchScenario bs;
        bs.name = name->string;
        const JsonValue *ok = s.field("ok");
        bs.ok = ok && ok->kind == JsonValue::Kind::Bool && ok->boolean;
        bs.wallSeconds = jsonNumberField(s, "wall_seconds", 0.0);
        bs.instructionsPerSecond =
            jsonNumberField(s, "instructions_per_second", 0.0);
        out.scenarios.push_back(std::move(bs));
    }

    if (const JsonValue *agg = root.field("aggregate")) {
        out.scoreKips = jsonNumberField(*agg, "score_kips", 0.0);
        const JsonValue *ok = agg->field("ok");
        out.ok = ok && ok->kind == JsonValue::Kind::Bool && ok->boolean;
    }
    return true;
}

BenchFile
benchFileFromResults(const std::vector<ScenarioResult> &results)
{
    BenchFile f;
    f.schema = "mtrap-bench-v1";
    f.ok = true;
    for (const ScenarioResult &r : results) {
        BenchScenario bs;
        bs.name = r.name;
        bs.ok = r.ok;
        bs.wallSeconds = r.wallSeconds;
        bs.instructionsPerSecond = r.instructionsPerSecond();
        f.scenarios.push_back(std::move(bs));
        f.ok = f.ok && r.ok;
    }
    f.scoreKips = aggregateScoreKips(results);
    return f;
}

CompareReport
compareBench(const BenchFile &baseline, const BenchFile &candidate,
             const CompareOptions &opt)
{
    CompareReport rep;
    std::string &txt = rep.text;

    bool candidate_errors = false;
    for (const BenchScenario &s : candidate.scenarios) {
        if (!s.ok) {
            txt += strfmt("FAIL  %-40s scenario errored\n",
                          s.name.c_str());
            candidate_errors = true;
        }
    }

    std::map<std::string, const BenchScenario *> base_by_name;
    for (const BenchScenario &s : baseline.scenarios)
        base_by_name[s.name] = &s;

    double logsum = 0.0;
    for (const BenchScenario &s : candidate.scenarios) {
        const auto it = base_by_name.find(s.name);
        if (it == base_by_name.end()) {
            txt += strfmt("new   %-40s %10.0f kinst/s (no baseline)\n",
                          s.name.c_str(),
                          s.instructionsPerSecond / 1e3);
            continue;
        }
        const BenchScenario &b = *it->second;
        base_by_name.erase(it);
        if (!s.ok)
            continue; // already reported as an error above
        if (!(s.instructionsPerSecond > 0.0) ||
            !std::isfinite(s.instructionsPerSecond)) {
            // "Ran fine" but produced no (or non-finite) throughput: an
            // infinite regression must not vanish from the geomean
            // silently. The negated comparison deliberately catches
            // NaN, which fails every ordered compare.
            txt += strfmt("FAIL  %-40s zero throughput in candidate\n",
                          s.name.c_str());
            candidate_errors = true;
            continue;
        }
        if (!b.ok || !(b.instructionsPerSecond > 0.0) ||
            !std::isfinite(b.instructionsPerSecond)) {
            // A NaN/inf/zero baseline (hand-edited or produced by a
            // broken run) must not poison the geomean: log(NaN) would
            // propagate into the verdict and `NaN > threshold` is
            // false, silently passing any regression.
            txt += strfmt("skip  %-40s baseline has no valid "
                          "throughput\n",
                          s.name.c_str());
            continue;
        }
        const double ratio =
            s.instructionsPerSecond / b.instructionsPerSecond;
        logsum += std::log(ratio);
        ++rep.commonScenarios;
        txt += strfmt("      %-40s %10.0f -> %10.0f kinst/s  (%+.1f%%)\n",
                      s.name.c_str(), b.instructionsPerSecond / 1e3,
                      s.instructionsPerSecond / 1e3,
                      (ratio - 1.0) * 100.0);
    }
    for (const auto &[name, s] : base_by_name) {
        (void)s;
        txt += strfmt("gone  %-40s dropped from the suite\n",
                      name.c_str());
    }

    rep.geomeanRatio =
        rep.commonScenarios
            ? std::exp(logsum
                       / static_cast<double>(rep.commonScenarios))
            : 1.0;

    const double regress_pct = (1.0 - rep.geomeanRatio) * 100.0;
    // Strictly-worse-than-threshold fails; a geomean at exactly the
    // threshold passes. The epsilon absorbs the log/exp round-trip so
    // the boundary does not flip on the last ulp.
    const bool regressed = rep.commonScenarios
                           && regress_pct - opt.maxRegressPct > 1e-9;
    rep.pass = !candidate_errors && !regressed;

    if (rep.commonScenarios) {
        txt += strfmt("geomean over %zu common scenario(s): %+.1f%% "
                      "(threshold -%.1f%%)\n",
                      rep.commonScenarios,
                      (rep.geomeanRatio - 1.0) * 100.0,
                      opt.maxRegressPct);
    } else {
        txt += "no common scenarios; throughput not compared\n";
    }
    txt += rep.pass ? "PASS: no perf regression\n"
                    : (candidate_errors
                           ? "FAIL: scenario errors in candidate run\n"
                           : "FAIL: geomean throughput regression\n");
    return rep;
}

} // namespace mtrap::perf

#include "perf/perf_suite.hh"

#include <chrono>
#include <cmath>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/log.hh"
#include "perf/odometer.hh"
#include "sim/arrival.hh"
#include "sim/json_stats.hh"
#include "sim/runner.hh"
#include "sim/scheduler.hh"
#include "workload/attacks.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap::perf
{

namespace
{

/** Process peak RSS in bytes (0 where getrusage is unavailable).
 *  ru_maxrss is kilobytes on Linux, bytes on macOS. */
std::uint64_t
peakRssBytes()
{
#if defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#elif defined(__unix__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#else
    return 0;
#endif
}

RunOptions
runOptionsFor(const PerfOptions &opt)
{
    RunOptions ro;
    ro.measureInstructions = opt.measureInstructions;
    ro.warmupInstructions = opt.warmupInstructions;
    return ro;
}

/** Scheme-on-workload scenario body shared by most of the suite. */
PerfScenario
schemeScenario(std::string name, std::string description,
               std::function<Workload()> workload, Scheme scheme)
{
    PerfScenario s;
    s.name = std::move(name);
    s.description = std::move(description);
    s.body = [workload = std::move(workload),
              scheme](const PerfOptions &opt) {
        const Workload w = workload();
        (void)runScheme(w, scheme, runOptionsFor(opt));
    };
    return s;
}

void
contextSwitchBody(const PerfOptions &opt)
{
    SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 1);
    System sys(cfg);
    const Workload w1 = buildSpecWorkload("hmmer");
    const Workload w2 = buildSpecWorkload("gamess");
    const Workload w3 = buildSpecWorkload("mcf");
    const Workload w4 = buildSpecWorkload("sjeng");
    for (const Workload *w : {&w1, &w2, &w3, &w4})
        if (w->init)
            w->init(sys.mem());

    // A deliberately small quantum so the run is dominated by drains,
    // filter flushes and cold-filter restarts — the context-switch cost
    // MuonTrap's design accepts (§4.3).
    Scheduler sched(&sys.core(0), /*quantum=*/5'000);
    sched.addTask(&w1.threadPrograms[0], 1);
    sched.addTask(&w2.threadPrograms[0], 2);
    sched.addTask(&w3.threadPrograms[0], 3);
    sched.addTask(&w4.threadPrograms[0], 4);
    sched.run(opt.measureInstructions + opt.warmupInstructions);
}

/**
 * 4-core multiprogrammed SPEC mix under the gang scheduler: eight
 * single-threaded jobs (distinct asids) time-share four MuonTrap cores,
 * so the run mixes steady-state simulation with constant migration /
 * filter-flush pressure — the paper's §6 time-sharing scenario.
 */
void
schedGangSpecMixBody(const PerfOptions &opt)
{
    SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 4);
    System sys(cfg);
    SchedParams sp;
    sp.quantum = 20'000;
    sys.attachScheduler(sp);

    const char *names[] = {"hmmer", "gamess", "mcf",  "sjeng",
                           "gcc",   "astar",  "milc", "libquantum"};
    Asid asid = 1;
    for (const char *name : names)
        sys.addScheduledWorkload(
            buildWorkload(specProfile(name), asid++));
    sys.runScheduled(
        (opt.measureInstructions + opt.warmupInstructions) * 4);
}

/**
 * Time-shared PARSEC under InvisiSpec: two four-thread gangs alternate
 * on the same four cores, so every quantum boundary context-switches
 * the whole machine (drain + speculative-buffer clear on all cores).
 */
void
schedTimesharedParsecBody(const PerfOptions &opt)
{
    SystemConfig cfg =
        SystemConfig::forScheme(Scheme::InvisiSpecSpectre, 4);
    System sys(cfg);
    SchedParams sp;
    sp.quantum = 20'000;
    sys.attachScheduler(sp);
    sys.addScheduledWorkload(
        buildWorkload(parsecProfile("canneal", 4), 1));
    sys.addScheduledWorkload(
        buildWorkload(parsecProfile("streamcluster", 4), 2));
    sys.runScheduled(
        (opt.measureInstructions + opt.warmupInstructions) * 4);
}

/**
 * Construction/teardown-dominated churn: many short-lived Table-1
 * systems built, briefly run and destroyed, alternating schemes —
 * modelled on the attack vignette and harness sweep shapes whose cost
 * is gated by System construction (stat-sheet setup, cache metadata,
 * filter structures), not steady-state simulation. This is the
 * scenario the perf-regression gate watches for construction-cost
 * regressions.
 */
void
systemConstructChurnBody(const PerfOptions &opt)
{
    // Enough per-system work to register on the odometer while leaving
    // the run construction-dominated.
    constexpr std::uint64_t kSlice = 400;
    const unsigned systems = opt.quick ? 16 : 96;
    const Scheme schemes[] = {Scheme::MuonTrap, Scheme::Baseline,
                              Scheme::InvisiSpecSpectre,
                              Scheme::SttSpectre};
    // One workload, reused: program generation is not what this
    // scenario measures.
    const Workload w = buildSpecWorkload("gcc");
    for (unsigned n = 0; n < systems; ++n) {
        SystemConfig cfg =
            SystemConfig::forScheme(schemes[n % 4], 1);
        System sys(cfg);
        sys.loadWorkload(w);
        sys.run(kSlice);
    }
}

/**
 * Snapshot-centric warm-fork shape: warm one 4-core MuonTrap machine,
 * serialize it, then fork several fresh systems off the in-memory
 * image and run a short measured slice from each — the sweep pattern
 * mtrap_batch --warm-snapshot executes per cache hit. With the
 * measured slices deliberately small, save/restore cost dominates, so
 * the regression gate watches serialization throughput; the scenario
 * also asserts the forks observe identical machines (same makespan),
 * so a perf run can never bless a snapshot layer that drifted.
 */
void
snapshotWarmForkBody(const PerfOptions &opt)
{
    constexpr std::uint64_t kCtx = 1;
    const Workload w = buildParsecWorkload("canneal", 4);
    const SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 4);

    System warm(cfg);
    warm.loadWorkload(w);
    warm.run(opt.warmupInstructions);
    const std::vector<std::uint8_t> image = warm.saveSnapshot(kCtx);

    const unsigned forks = opt.quick ? 2 : 6;
    const std::uint64_t slice = opt.measureInstructions / 8 + 1;
    Cycle makespan = 0;
    for (unsigned n = 0; n < forks; ++n) {
        System sys(cfg);
        sys.loadWorkload(w);
        sys.restoreSnapshot(image, kCtx);
        sys.run(slice);
        if (n == 0)
            makespan = sys.maxCommitCycle();
        else if (sys.maxCommitCycle() != makespan)
            throw std::runtime_error(
                "snapshot warm-fork: forked runs diverged");
    }
}

/**
 * Open-system server shape (sim/arrival.hh): a seeded arrival stream
 * admits jobs into the gang scheduler mid-run, each running to a
 * finite service demand with QoS attributes (weights, deadlines).
 * Tracks the cost of arrival polling, mid-run admission (workload
 * build + placement), weighted designation and job-record accounting
 * on top of the usual scheduled simulation. Asserts every job
 * completes, so a perf run can never bless a scheduler that strands
 * work.
 */
void
serverBody(const PerfOptions &opt, ArrivalPattern pattern)
{
    ArrivalParams ap;
    ap.pattern = pattern;
    ap.jobs = opt.quick ? 6 : 24;
    ap.serviceMinCommits = opt.measureInstructions / 8 + 1;
    ap.serviceMaxCommits = opt.measureInstructions / 2 + 1;
    ap.meanInterarrival = opt.measureInstructions / 4 + 1;
    ap.deadlineFactor = 6;
    ap.maxWeight = 2;

    SchedParams sp;
    sp.quantum = 20'000;
    sp.affinity = true;

    const ServerRunOutput out = runServerConfigured(
        SystemConfig::forScheme(Scheme::MuonTrap, 4), sp, ap, {},
        "MuonTrap");
    if (out.report.completed != ap.jobs)
        throw std::runtime_error("server scenario: not every admitted "
                                 "job completed");
}

void
attackVignetteBody(const PerfOptions &opt)
{
    // The headline prime-and-probe vignette, on both sides of the fence.
    // Besides timing the squash/flush-heavy choreography, assert the
    // security outcome so a perf run can never silently bless a broken
    // build. A single pair takes well under a millisecond, so full mode
    // runs a few to keep the wall-clock sample meaningful.
    const unsigned iters = opt.quick ? 1 : 3;
    for (unsigned i = 0; i < iters; ++i) {
        AttackOutcome base = runSpectrePrimeProbe(Scheme::Baseline);
        if (!base.leaked)
            throw std::runtime_error("attack vignette: baseline no "
                                     "longer leaks (simulation broken?)");
        AttackOutcome mt = runSpectrePrimeProbe(Scheme::MuonTrap);
        if (mt.leaked)
            throw std::runtime_error("attack vignette: MuonTrap leaked");
    }
}

} // namespace

PerfOptions
PerfOptions::quickPreset()
{
    PerfOptions o;
    o.measureInstructions = 20'000;
    o.warmupInstructions = 5'000;
    o.repeats = 1;
    o.quick = true;
    return o;
}

std::vector<PerfScenario>
defaultScenarios()
{
    std::vector<PerfScenario> s;

    s.push_back(schemeScenario(
        "spec-gcc-1core-baseline",
        "1-core SPEC profile (gcc) on the unprotected baseline",
        [] { return buildSpecWorkload("gcc"); }, Scheme::Baseline));

    s.push_back(schemeScenario(
        "spec-mcf-1core-muontrap",
        "1-core memory-bound SPEC profile (mcf) under full MuonTrap",
        [] { return buildSpecWorkload("mcf"); }, Scheme::MuonTrap));

    s.push_back(schemeScenario(
        "parsec-canneal-4core-muontrap",
        "4-core PARSEC profile (canneal) under full MuonTrap",
        [] { return buildParsecWorkload("canneal", 4); },
        Scheme::MuonTrap));

    s.push_back(schemeScenario(
        "parsec-streamcluster-4core-invisispec",
        "4-core PARSEC profile (streamcluster) under InvisiSpec-Spectre",
        [] { return buildParsecWorkload("streamcluster", 4); },
        Scheme::InvisiSpecSpectre));

    s.push_back(schemeScenario(
        "parsec-blackscholes-4core-stt",
        "4-core PARSEC profile (blackscholes) under STT-Future",
        [] { return buildParsecWorkload("blackscholes", 4); },
        Scheme::SttFuture));

    s.push_back(schemeScenario(
        "spec-sjeng-decodebound-1core-baseline",
        "decode-bound 1-core SPEC profile (sjeng: branchy with a large "
        "code footprint, few memory stalls) — stresses the pre-decoded "
        "fetch path",
        [] { return buildSpecWorkload("sjeng"); }, Scheme::Baseline));

    s.push_back(schemeScenario(
        "parsec-freqmine-funcread-4core-muontrap",
        "functional-read-heavy 4-core PARSEC profile (freqmine: pointer "
        "chasing and random reads over big shared trees) under full "
        "MuonTrap — stresses the per-core functional word cache",
        [] { return buildParsecWorkload("freqmine", 4); },
        Scheme::MuonTrap));

    PerfScenario sched;
    sched.name = "sched-context-switch-muontrap";
    sched.description =
        "four SPEC profiles round-robined on one MuonTrap core with a "
        "5k-cycle quantum (drain + filter-flush heavy)";
    sched.body = contextSwitchBody;
    s.push_back(std::move(sched));

    PerfScenario gang;
    gang.name = "sched-gang-specmix4-muontrap";
    gang.description =
        "eight SPEC jobs gang-scheduled across four MuonTrap cores "
        "(20k-cycle quantum, migration + per-switch filter flush)";
    gang.body = schedGangSpecMixBody;
    s.push_back(std::move(gang));

    PerfScenario share;
    share.name = "sched-timeshare-parsec-invisispec";
    share.description =
        "two 4-thread PARSEC gangs time-sharing four InvisiSpec cores "
        "(whole-machine switch every 20k-cycle quantum)";
    share.body = schedTimesharedParsecBody;
    s.push_back(std::move(share));

    PerfScenario churn;
    churn.name = "system-construct-churn";
    churn.description =
        "build/teardown-dominated: dozens of short-lived 1-core systems "
        "across four schemes, a few hundred instructions each (tracks "
        "System-construction cost)";
    churn.body = systemConstructChurnBody;
    s.push_back(std::move(churn));

    PerfScenario snap;
    snap.name = "snapshot-warm-fork-muontrap";
    snap.description =
        "warm one 4-core MuonTrap machine, serialize it, fork several "
        "fresh systems off the image and run short slices (tracks "
        "snapshot save/restore cost and the warm-fork sweep shape)";
    snap.body = snapshotWarmForkBody;
    s.push_back(std::move(snap));

    PerfScenario poisson;
    poisson.name = "server-poisson-muontrap";
    poisson.description =
        "open-system server: Poisson job arrivals admitted mid-run "
        "into four gang-scheduled MuonTrap cores (weighted quanta, "
        "deadlines, cache-affinity migration)";
    poisson.body = [](const PerfOptions &o) {
        serverBody(o, ArrivalPattern::Poisson);
    };
    s.push_back(std::move(poisson));

    PerfScenario burst;
    burst.name = "server-burst-muontrap";
    burst.description =
        "open-system server under bursty arrivals: same offered load "
        "as the Poisson scenario delivered in batches (queue build-up, "
        "heavy migration and admission churn)";
    burst.body = [](const PerfOptions &o) {
        serverBody(o, ArrivalPattern::Burst);
    };
    s.push_back(std::move(burst));

    PerfScenario attack;
    attack.name = "attack-spectre-prime-probe";
    attack.description =
        "Spectre prime-and-probe choreography on baseline (must leak) "
        "and MuonTrap (must not)";
    attack.body = attackVignetteBody;
    s.push_back(std::move(attack));

    return s;
}

std::vector<ScenarioResult>
runScenarios(const std::vector<PerfScenario> &scenarios,
             const PerfOptions &opt, std::ostream *progress)
{
    using Clock = std::chrono::steady_clock;
    SimOdometer &odo = SimOdometer::instance();

    std::vector<ScenarioResult> results;
    results.reserve(scenarios.size());

    for (const PerfScenario &sc : scenarios) {
        ScenarioResult r;
        r.name = sc.name;

        const unsigned reps = opt.repeats ? opt.repeats : 1;
        for (unsigned rep = 0; rep < reps && r.ok; ++rep) {
            const std::uint64_t i0 = odo.instructions();
            const std::uint64_t c0 = odo.cycles();
            const auto t0 = Clock::now();
            try {
                sc.body(opt);
            } catch (const std::exception &e) {
                r.ok = false;
                r.error = e.what();
                break;
            }
            const double wall =
                std::chrono::duration<double>(Clock::now() - t0).count();
            const std::uint64_t instr = odo.instructions() - i0;
            const std::uint64_t cycles = odo.cycles() - c0;
            if (rep == 0 || wall < r.wallSeconds) {
                r.wallSeconds = wall;
                r.instructions = instr;
                r.simCycles = cycles;
            }
        }

        r.repeats = reps;
        r.peakRssBytes = peakRssBytes();

        if (r.ok && r.instructions == 0) {
            r.ok = false;
            r.error = "scenario reported zero simulation work";
        }

        if (progress) {
            if (r.ok) {
                *progress << strfmt(
                    "perf: %-40s %8.3fs  %10.0f kinst/s  %10.0f kcyc/s\n",
                    r.name.c_str(), r.wallSeconds,
                    r.instructionsPerSecond() / 1e3,
                    r.cyclesPerSecond() / 1e3);
            } else {
                *progress << "perf: " << r.name
                          << " FAILED: " << r.error << "\n";
            }
            progress->flush();
        }
        results.push_back(std::move(r));
    }
    return results;
}

double
aggregateScoreKips(const std::vector<ScenarioResult> &results)
{
    if (results.empty())
        return 0.0;
    double logsum = 0.0;
    for (const ScenarioResult &r : results) {
        const double ips = r.ok ? r.instructionsPerSecond() : 0.0;
        if (ips <= 0.0)
            return 0.0;
        logsum += std::log(ips / 1e3);
    }
    return std::exp(logsum / static_cast<double>(results.size()));
}

void
writeBenchJson(const std::vector<ScenarioResult> &results,
               const PerfOptions &opt, std::ostream &os)
{
    bool all_ok = true;
    double wall_total = 0.0;
    for (const ScenarioResult &r : results) {
        all_ok = all_ok && r.ok;
        wall_total += r.wallSeconds;
    }

    os << "{\n";
    os << "  \"schema\": \"mtrap-bench-v1\",\n";
    os << "  \"mode\": \"" << (opt.quick ? "quick" : "full") << "\",\n";
    os << "  \"repeats\": " << opt.repeats << ",\n";
    os << "  \"measure_instructions\": " << opt.measureInstructions
       << ",\n";
    os << "  \"warmup_instructions\": " << opt.warmupInstructions
       << ",\n";
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        os << "    {\"name\": \"" << jsonEscape(r.name) << "\""
           << ", \"ok\": " << (r.ok ? "true" : "false")
           << ", \"wall_seconds\": " << strfmt("%.6f", r.wallSeconds)
           << ", \"sim_cycles\": " << r.simCycles
           << ", \"instructions\": " << r.instructions
           << ", \"cycles_per_second\": "
           << strfmt("%.1f", r.cyclesPerSecond())
           << ", \"instructions_per_second\": "
           << strfmt("%.1f", r.instructionsPerSecond())
           << ", \"repeats\": " << r.repeats
           << ", \"peak_rss_bytes\": " << r.peakRssBytes;
        if (!r.ok)
            os << ", \"error\": \"" << jsonEscape(r.error) << "\"";
        os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
#ifdef MTRAP_BUILD_TYPE
    os << "  \"host\": {\"build_type\": \"" << MTRAP_BUILD_TYPE
       << "\"},\n";
#else
    os << "  \"host\": {\"build_type\": \"unknown\"},\n";
#endif
    os << "  \"aggregate\": {\"score_kips\": "
       << strfmt("%.1f", aggregateScoreKips(results))
       << ", \"wall_seconds_total\": " << strfmt("%.6f", wall_total)
       << ", \"ok\": " << (all_ok ? "true" : "false") << "}\n";
    os << "}\n";
}

} // namespace mtrap::perf

/**
 * @file
 * Self-timing simulator-throughput benchmark suite (the machinery behind
 * tools/mtrap_perf).
 *
 * Each scenario is one representative simulation shape from the paper's
 * evaluation: a 1-core SPEC profile, 4-core PARSEC runs under each
 * defence family, scheduler-driven workloads (single-core round-robin,
 * a 4-core gang-scheduled SPEC mix, and a time-shared PARSEC pair), and
 * the headline attack vignette. The harness times each scenario's wall
 * clock, reads the simulation-work odometer around it, and reports
 * simulated cycles/second and committed instructions/second per
 * scenario plus an aggregate score — the number every hot-path
 * optimisation PR must move.
 *
 * BENCH.json schema (schema tag "mtrap-bench-v1"):
 * {
 *   "schema": "mtrap-bench-v1",
 *   "mode": "full" | "quick",
 *   "repeats": N,
 *   "scenarios": [
 *     { "name": "...", "ok": true,
 *       "wall_seconds": W,            // best-of-repeats wall time
 *       "sim_cycles": C,              // core-cycles simulated (best rep)
 *       "instructions": I,            // instructions committed (best rep)
 *       "cycles_per_second": C / W,
 *       "instructions_per_second": I / W,
 *       "repeats": R,                 // timing repeats actually run
 *       "peak_rss_bytes": B,          // process peak RSS after scenario
 *       "error": "..."                // only when !ok
 *     }, ...
 *   ],
 *   "host": { "build_type": "..." },  // CMAKE_BUILD_TYPE at compile time
 *   "aggregate": {
 *     "score_kips": geomean of per-scenario instructions_per_second/1e3,
 *     "wall_seconds_total": sum of per-scenario best wall times,
 *     "ok": all scenarios ok
 *   }
 * }
 *
 * The gate (mtrap_perf --compare) ignores unknown keys, so the
 * "repeats"/"peak_rss_bytes"/"host" metadata never breaks an existing
 * consumer; the schema tag stays "mtrap-bench-v1".
 */

#ifndef MTRAP_PERF_PERF_SUITE_HH
#define MTRAP_PERF_PERF_SUITE_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace mtrap::perf
{

/** Scaling and repetition knobs for a suite run. */
struct PerfOptions
{
    /** Measured instructions per core per scenario (before warmup). */
    std::uint64_t measureInstructions = 200'000;
    /** Warmup instructions per core. */
    std::uint64_t warmupInstructions = 20'000;
    /** Wall-time repeats per scenario; the best (minimum) is reported. */
    unsigned repeats = 2;
    /** Quick mode: down-scaled suite for CI smoke. */
    bool quick = false;

    /** CI preset: ~10x smaller, single repeat. */
    static PerfOptions quickPreset();
};

/** One benchmark scenario: a named body that does simulation work. */
struct PerfScenario
{
    std::string name;
    std::string description;
    /** Runs one full iteration of the scenario's simulation work.
     *  Throws (or fatals) on failure. */
    std::function<void(const PerfOptions &)> body;
};

/** Timing outcome of one scenario. */
struct ScenarioResult
{
    std::string name;
    bool ok = true;
    std::string error;
    /** Best-of-repeats wall time for one iteration, seconds. */
    double wallSeconds = 0.0;
    /** Core-cycles simulated during the best iteration. */
    std::uint64_t simCycles = 0;
    /** Instructions committed during the best iteration. */
    std::uint64_t instructions = 0;
    /** Timing repeats actually executed. */
    unsigned repeats = 0;
    /** Process peak RSS right after the scenario finished (0 when the
     *  platform cannot report it). Cumulative by nature — a high-water
     *  mark — so per-scenario values are monotonic in run order. */
    std::uint64_t peakRssBytes = 0;

    double cyclesPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(simCycles) / wallSeconds
                   : 0.0;
    }
    double instructionsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(instructions) / wallSeconds
                   : 0.0;
    }
};

/** The default suite, in execution order. */
std::vector<PerfScenario> defaultScenarios();

/**
 * Run `scenarios` under `opt`. Emits one progress line per scenario to
 * `progress` (pass nullptr for silence). Failures are captured in the
 * result, not thrown.
 */
std::vector<ScenarioResult> runScenarios(
    const std::vector<PerfScenario> &scenarios, const PerfOptions &opt,
    std::ostream *progress);

/** Geometric mean of per-scenario instructions/second, in thousands
 *  (KIPS). Failed or zero-throughput scenarios contribute score 0. */
double aggregateScoreKips(const std::vector<ScenarioResult> &results);

/** Serialise results as BENCH.json (schema documented above). */
void writeBenchJson(const std::vector<ScenarioResult> &results,
                    const PerfOptions &opt, std::ostream &os);

} // namespace mtrap::perf

#endif // MTRAP_PERF_PERF_SUITE_HH

/**
 * @file
 * Process-wide simulation-work odometer.
 *
 * Every Core adds its lifetime totals (committed instructions, final
 * front-end cycle) here when it is destroyed. The perf harness reads the
 * odometer before and after a scenario body, so throughput can be
 * computed uniformly for any scenario — including ones (the attack
 * vignettes) that build and discard whole systems internally and never
 * surface a RunResult.
 *
 * Counters are atomics because the experiment harness destroys systems
 * from worker threads; the adds happen once per core lifetime, never on
 * the simulation hot path.
 */

#ifndef MTRAP_PERF_ODOMETER_HH
#define MTRAP_PERF_ODOMETER_HH

#include <atomic>
#include <cstdint>

namespace mtrap::perf
{

/** Monotonic totals of simulation work done by destroyed cores. */
class SimOdometer
{
  public:
    static SimOdometer &instance();

    /** Called by Core's destructor. */
    void add(std::uint64_t instructions, std::uint64_t cycles)
    {
        instructions_.fetch_add(instructions, std::memory_order_relaxed);
        cycles_.fetch_add(cycles, std::memory_order_relaxed);
    }

    std::uint64_t instructions() const
    {
        return instructions_.load(std::memory_order_relaxed);
    }

    /** Sum of per-core final clocks (core-cycles, not makespan). */
    std::uint64_t cycles() const
    {
        return cycles_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> instructions_{0};
    std::atomic<std::uint64_t> cycles_{0};
};

} // namespace mtrap::perf

#endif // MTRAP_PERF_ODOMETER_HH

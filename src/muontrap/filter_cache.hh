/**
 * @file
 * The speculative filter cache — the paper's central structure (§4.1-§4.4).
 *
 * A filter cache is a small, 1-cycle L0 sitting between the core and the
 * L1 that captures *all* speculative memory state:
 *
 *  - Each line carries a *committed* bit (§4.2): cleared when the line
 *    was brought in by a speculative instruction, set (with a
 *    write-through to the L1) when an instruction using the line
 *    commits.
 *  - The cache is non-inclusive non-exclusive with the rest of the
 *    hierarchy, write-through, and can therefore be *flash-cleared* in a
 *    single cycle: validity lives in registers beside the SRAM (§4.3),
 *    not in coherence state.
 *  - It is virtually indexed/tagged from the CPU side and physically
 *    tagged from the memory side (§4.4); fills are physically addressed
 *    and displace any alias so a physical line is present at most once.
 *  - Coherence-wise it may only hold S (or I); the SE pseudo-state is an
 *    annotation that triggers an asynchronous upgrade at commit (§4.5).
 *
 * This class extends the generic Cache with the dual-tag lookup path and
 * the register-file valid bits; policy (when to clear, when to commit)
 * lives in MuonTrapController.
 */

#ifndef MTRAP_MUONTRAP_FILTER_CACHE_HH
#define MTRAP_MUONTRAP_FILTER_CACHE_HH

#include "cache/cache.hh"

namespace mtrap
{

/** Filter-cache configuration (defaults = paper Table 1: 2KiB 4-way). */
struct FilterCacheParams
{
    StatName name = "fcache";
    std::uint64_t sizeBytes = 2048;
    unsigned assoc = 4;
    Cycle hitLatency = 1;
    unsigned mshrs = 4;
    ReplPolicy repl = ReplPolicy::Lru;
    std::uint64_t seed = 7;
};

/**
 * Speculative filter cache. The CPU side looks up by virtual address;
 * the coherence side (bus snoops, invalidations) addresses it physically
 * through the base-class interface.
 */
class FilterCache : public Cache
{
  public:
    FilterCache(const FilterCacheParams &params, StatGroup *parent);

    /**
     * CPU-side lookup by virtual address + ASID. The physical address is
     * also required because the set index is formed from the shared
     * least-significant bits of both (§4.4); a hit requires both tags to
     * match (same physical line, same virtual alias, same ASID) and the
     * register-file valid bit to be set.
     */
    CacheLine *lookupVirt(Asid asid, Addr vaddr, Addr paddr);

    /**
     * Fill with both tags. Physically addressed: if another virtual
     * alias of the same physical line is present it is overwritten, so
     * only one copy of each physical line ever exists (§4.4).
     *
     * @param speculative sets the committed bit accordingly
     * @param fill_level  hierarchy level the data came from (1/2/3)
     * @param se_pending  MuonTrap SE pseudo-state annotation
     */
    CacheLine &fillVirt(Asid asid, Addr vaddr, Addr paddr,
                        bool speculative, std::uint8_t fill_level,
                        bool se_pending, Eviction *ev = nullptr);

    /**
     * Flash clear (§4.3): clears every register-file valid bit in one
     * cycle; SRAM contents are untouched but unreachable. Constant time
     * regardless of occupancy — asserted by tests as the security-
     * relevant property (contrast CleanupSpec's state-dependent undo).
     */
    void flashClear();

    /** Number of flash clears performed. */
    std::uint64_t flashClearCount() const { return flashClears.value(); }

    /** Physical-side invalidation used by the coherence logic. */
    bool invalidate(Addr paddr) override;

    void invalidateAll() override { flashClear(); }

    /** The base-class peek honours valid bits via state==Invalid; expose
     *  a checked variant for tests: is the line present *and* valid? */
    bool presentValid(Addr paddr);

    /** Base cache state plus valid bits and virtual tags. */
    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

  private:
    /** Register-file valid bit per line (parallel-clearable). */
    std::vector<bool> validBit_;

    /**
     * Virtual tag + ASID per line, parallel to the base line array.
     * Kept out of CacheLine so the (much larger) non-speculative
     * caches' line arrays stay small; only stale when the valid bit is
     * clear or until fillVirt() rewrites it after a physical fill.
     */
    struct VirtTag
    {
        Addr vtag = kAddrInvalid;
        Asid asid = 0;
    };
    std::vector<VirtTag> vtags_;

    unsigned wayOf(const CacheLine *l) const;

    StatGroup fstats_;

  public:
    Counter flashClears;
    Counter aliasOverwrites;
    Counter speculativeFills;
    Counter committedFills;
    Counter uncommittedEvictions;
};

} // namespace mtrap

#endif // MTRAP_MUONTRAP_FILTER_CACHE_HH

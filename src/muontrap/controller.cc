#include "muontrap/controller.hh"

#include "common/log.hh"
#include "snapshot/snapshot.hh"
#include "trace/trace.hh"

namespace mtrap
{

MuonTrapConfig
MuonTrapConfig::full()
{
    MuonTrapConfig c;
    c.enabled = true;
    c.protectData = true;
    c.protectCoherence = true;
    c.instFilter = true;
    c.tlbFilter = true;
    c.commitPrefetch = true;
    c.dataParams.name = "fcache_d";
    c.instParams.name = "fcache_i";
    return c;
}

MuonTrapConfig
MuonTrapConfig::insecureL0()
{
    MuonTrapConfig c;
    c.enabled = true;
    c.dataParams.name = "l0d_insecure";
    return c;
}

MuonTrapConfig
MuonTrapConfig::off()
{
    return MuonTrapConfig{};
}

namespace
{

StatSchema &
muontrapStatSchema()
{
    static StatSchema s("muontrap");
    return s;
}

} // namespace

MuonTrapCore::MuonTrapCore(const MuonTrapConfig &cfg, CoreId core,
                           StatGroup *parent)
    : cfg_(cfg), core_(core),
      stats_(muontrapStatSchema(), StatName::indexed("muontrap", core),
             parent),
      flushCtxSwitch(&stats_, "flush_ctx_switch",
                     "filter flushes on context switches"),
      flushSyscall(&stats_, "flush_syscall",
                   "filter flushes on kernel entry"),
      flushSandbox(&stats_, "flush_sandbox",
                   "filter flushes on sandbox entry/exit"),
      flushMisspec(&stats_, "flush_misspec",
                   "filter flushes on misspeculation (optional mode)"),
      flushExplicit(&stats_, "flush_explicit",
                    "filter flushes from the dedicated flush instruction")
{
    if (!cfg_.enabled)
        return;

    FilterCacheParams dp = cfg_.dataParams;
    dp.seed += core * 1001;
    dataFilter_ = std::make_unique<FilterCache>(dp, &stats_);

    if (cfg_.instFilter) {
        FilterCacheParams ip = cfg_.instParams;
        ip.seed += core * 2003;
        instFilter_ = std::make_unique<FilterCache>(ip, &stats_);
    }
    if (cfg_.tlbFilter) {
        TlbParams tp;
        tp.name = "filter_tlb";
        tp.entries = cfg_.filterTlbEntries;
        filterTlb_ = std::make_unique<Tlb>(tp, &stats_);
    }
}

void
MuonTrapCore::flush(FlushReason reason, Cycle when)
{
    if (!cfg_.enabled)
        return;
    // An insecure L0 has no protections and never clears; its lines were
    // propagated to the L1/L2 anyway.
    if (!cfg_.protectData && reason != FlushReason::Explicit)
        return;
    if (reason == FlushReason::Misspeculation && !cfg_.clearOnMisspec)
        return;

    switch (reason) {
      case FlushReason::ContextSwitch: ++flushCtxSwitch; break;
      case FlushReason::Syscall: ++flushSyscall; break;
      case FlushReason::Sandbox: ++flushSandbox; break;
      case FlushReason::Misspeculation: ++flushMisspec; break;
      case FlushReason::Explicit: ++flushExplicit; break;
    }
    if (tracer_)
        tracer_->record(core_, TraceEventKind::FilterFlush, when,
                        static_cast<std::uint64_t>(reason));

    if (dataFilter_)
        dataFilter_->flashClear();
    if (instFilter_)
        instFilter_->flashClear();
    if (filterTlb_)
        filterTlb_->flush();
}

void
MuonTrapCore::saveState(Serializer &s) const
{
    if (dataFilter_)
        dataFilter_->saveState(s);
    if (instFilter_)
        instFilter_->saveState(s);
    if (filterTlb_)
        filterTlb_->saveState(s);
}

void
MuonTrapCore::restoreState(Deserializer &d)
{
    if (dataFilter_)
        dataFilter_->restoreState(d);
    if (instFilter_)
        instFilter_->restoreState(d);
    if (filterTlb_)
        filterTlb_->restoreState(d);
}

} // namespace mtrap

#include "muontrap/filter_cache.hh"

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

namespace
{

CacheParams
toCacheParams(const FilterCacheParams &p)
{
    CacheParams cp;
    cp.name = p.name;
    cp.sizeBytes = p.sizeBytes;
    cp.assoc = p.assoc;
    cp.hitLatency = p.hitLatency;
    cp.mshrs = p.mshrs;
    cp.repl = p.repl;
    cp.seed = p.seed;
    return cp;
}

StatSchema &
filterStatSchema()
{
    static StatSchema s("filter_cache");
    return s;
}

} // namespace

FilterCache::FilterCache(const FilterCacheParams &params, StatGroup *parent)
    : Cache(toCacheParams(params), parent),
      validBit_(lines_.size(), false),
      vtags_(lines_.size()),
      fstats_(filterStatSchema(), params.name.withSuffix("_filter"),
              parent),
      flashClears(&fstats_, "flash_clears",
                  "single-cycle whole-cache invalidations"),
      aliasOverwrites(&fstats_, "alias_overwrites",
                      "fills displacing a virtual alias of the same "
                      "physical line"),
      speculativeFills(&fstats_, "speculative_fills",
                       "fills with the committed bit clear"),
      committedFills(&fstats_, "committed_fills",
                     "fills by non-speculative instructions"),
      uncommittedEvictions(&fstats_, "uncommitted_evictions",
                           "speculative lines evicted before commit")
{
}

unsigned
FilterCache::wayOf(const CacheLine *l) const
{
    return static_cast<unsigned>(l - lines_.data());
}

CacheLine *
FilterCache::lookupVirt(Asid asid, Addr vaddr, Addr paddr)
{
    // The set index uses the physical/virtual shared low bits: with a
    // 2KiB 4-way cache the index bits sit entirely inside the page
    // offset, so virtual and physical indexing agree (§4.4).
    CacheLine *l = Cache::lookup(paddr);
    if (!l)
        return nullptr;
    const unsigned way = wayOf(l);
    if (!validBit_[way]) {
        // SRAM content survives a flash clear but must be invisible.
        return nullptr;
    }
    if (vtags_[way].vtag != lineNum(vaddr) || vtags_[way].asid != asid) {
        // Physical hit through a different virtual alias or another
        // address space: treated as a miss on the CPU side; the fill
        // path will overwrite it (physical addressing on fill).
        return nullptr;
    }
    return l;
}

CacheLine &
FilterCache::fillVirt(Asid asid, Addr vaddr, Addr paddr, bool speculative,
                      std::uint8_t fill_level, bool se_pending,
                      Eviction *ev)
{
    // Detect an alias about to be displaced (same physical line under a
    // different virtual tag) for accounting.
    if (CacheLine *prev = Cache::peek(paddr)) {
        const unsigned way = wayOf(prev);
        if (validBit_[way] && (vtags_[way].vtag != lineNum(vaddr) ||
                               vtags_[way].asid != asid))
            ++aliasOverwrites;
    }

    Eviction local{};
    CacheLine &l = Cache::fill(paddr, CoherState::Shared, &local);
    // A victim that was still uncommitted vanished before its data could
    // be written through (paper §4.10 "Contention": it will simply be
    // re-fetched if the instruction commits).
    if (local.valid && !local.committed)
        ++uncommittedEvictions;
    if (ev)
        *ev = local;

    const unsigned way = wayOf(&l);
    vtags_[way].vtag = lineNum(vaddr);
    vtags_[way].asid = asid;
    l.committed = !speculative;
    l.sePending = se_pending;
    l.fillLevel = fill_level;
    l.dirty = false;            // write-through: never dirty
    validBit_[way] = true;

    if (speculative)
        ++speculativeFills;
    else
        ++committedFills;
    return l;
}

void
FilterCache::flashClear()
{
    // Constant-time: one pass clearing register bits, independent of how
    // many lines are valid. We also scrub the line metadata so the
    // physical-side peek path cannot see stale lines.
    for (std::size_t i = 0; i < validBit_.size(); ++i) {
        if (validBit_[i]) {
            ++invalidations;
            lines_[i].clear();
        }
        validBit_[i] = false;
    }
    ++flashClears;
}

bool
FilterCache::invalidate(Addr paddr)
{
    CacheLine *l = Cache::peek(paddr);
    if (!l || !validBit_[wayOf(l)])
        return false;
    validBit_[wayOf(l)] = false;
    l->clear();
    ++invalidations;
    return true;
}

bool
FilterCache::presentValid(Addr paddr)
{
    CacheLine *l = Cache::peek(paddr);
    return l && validBit_[wayOf(l)];
}

void
FilterCache::saveState(Serializer &s) const
{
    Cache::saveState(s);
    s.boolVec(validBit_);
    s.u64(vtags_.size());
    for (const VirtTag &t : vtags_) {
        s.u64(t.vtag);
        s.u32(t.asid);
    }
}

void
FilterCache::restoreState(Deserializer &d)
{
    Cache::restoreState(d);
    std::vector<bool> valid;
    d.boolVec(valid);
    if (valid.size() != validBit_.size())
        throw SnapshotError("filter-cache valid-bit count mismatch");
    validBit_ = std::move(valid);
    const std::uint64_t n = d.u64();
    if (n != vtags_.size())
        throw SnapshotError("filter-cache vtag count mismatch");
    for (VirtTag &t : vtags_) {
        t.vtag = d.u64();
        t.asid = d.u32();
    }
}

} // namespace mtrap

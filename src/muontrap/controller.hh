/**
 * @file
 * MuonTrap policy configuration and the per-core bundle of filter
 * structures (data/instruction filter caches and the filter TLB) with
 * their clearing logic.
 *
 * The configuration's individual switches correspond one-to-one to the
 * cumulative protection steps evaluated in the paper's figures 8 and 9:
 * insecure L0 -> +fcache -> +coherency -> +ifcache -> +prefetching ->
 * +clear-on-misspec, plus the parallel-L0/L1 lookup option of §6.5.
 */

#ifndef MTRAP_MUONTRAP_CONTROLLER_HH
#define MTRAP_MUONTRAP_CONTROLLER_HH

#include <memory>

#include "common/stats.hh"
#include "muontrap/filter_cache.hh"
#include "tlb/tlb.hh"

namespace mtrap
{

class Tracer;
class Serializer;
class Deserializer;

/** Full MuonTrap configuration. */
struct MuonTrapConfig
{
    /** Any L0 structures at all. False = no-L0 baseline. */
    bool enabled = false;
    /**
     * Committed-bit protections on the data side. When false but
     * `enabled`, the L0 behaves as an ordinary insecure L0 cache that
     * fills the L1/L2 normally ("insecure L0" in figures 8/9).
     */
    bool protectData = false;
    /** Reduced coherency speculation + S-only fills + SE upgrades. */
    bool protectCoherence = false;
    /** Instruction filter cache. */
    bool instFilter = false;
    /** Filter TLB + commit-time retranslation. */
    bool tlbFilter = false;
    /** Train the L2 prefetcher at commit (in program order) instead of
     *  at access time. */
    bool commitPrefetch = false;
    /** Flash-clear the filters on every squash (per-process option,
     *  §4.9/§4.10). */
    bool clearOnMisspec = false;
    /** Access L0 and L1 in parallel rather than serially (§6.5). */
    bool parallelL0L1 = false;

    FilterCacheParams dataParams{};
    FilterCacheParams instParams{};
    unsigned filterTlbEntries = 16;

    /** Full protection, paper defaults (2KiB 4-way filters). */
    static MuonTrapConfig full();
    /** Insecure L0 (no protections), for the figure-8/9 baseline step. */
    static MuonTrapConfig insecureL0();
    /** Everything off: the unprotected baseline. */
    static MuonTrapConfig off();
};

/** Why a filter flush happened (stats breakdown). */
enum class FlushReason : std::uint8_t
{
    ContextSwitch,
    Syscall,
    Sandbox,
    Misspeculation,
    Explicit,
};

/**
 * Per-core MuonTrap state: owns the filter caches and filter TLB and
 * implements the domain-switch clearing policy.
 */
class MuonTrapCore
{
  public:
    MuonTrapCore(const MuonTrapConfig &cfg, CoreId core, StatGroup *parent);

    const MuonTrapConfig &config() const { return cfg_; }

    /** Data filter cache; nullptr when no L0 is configured. */
    FilterCache *dataFilter() { return dataFilter_.get(); }
    /** Instruction filter cache; nullptr unless cfg.instFilter. */
    FilterCache *instFilter() { return instFilter_.get(); }
    /** Filter TLB; nullptr unless cfg.tlbFilter. */
    Tlb *filterTlb() { return filterTlb_.get(); }

    /**
     * Flash-clear every filter structure. Constant-time (§4.3): the
     * valid bits live in registers. Does nothing when the configuration
     * doesn't warrant clearing for this reason (e.g. misspeculation with
     * clearOnMisspec off, or an insecure L0 which never clears).
     * `when` stamps the trace event when a tracer is attached; clears
     * that the policy suppresses are not traced.
     */
    void flush(FlushReason reason, Cycle when = 0);

    /** Route performed flushes into `tracer` (null disables). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** Checkpoint the owned filter structures (present ones only). */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    MuonTrapConfig cfg_;
    CoreId core_ = 0;
    Tracer *tracer_ = nullptr;
    std::unique_ptr<FilterCache> dataFilter_;
    std::unique_ptr<FilterCache> instFilter_;
    std::unique_ptr<Tlb> filterTlb_;

    StatGroup stats_;

  public:
    Counter flushCtxSwitch;
    Counter flushSyscall;
    Counter flushSandbox;
    Counter flushMisspec;
    Counter flushExplicit;
};

} // namespace mtrap

#endif // MTRAP_MUONTRAP_CONTROLLER_HH

/**
 * @file
 * Execution-driven out-of-order core model.
 *
 * The core fetches down the *predicted* path, functionally executing
 * each micro-op as it is fetched while computing its pipeline timing
 * (fetch, ready, done, commit cycles) from data dependencies,
 * functional-unit contention, memory latency and structural limits
 * (fetch width, ROB/LQ/SQ occupancy). On a mispredicted branch the core
 * checkpoints architectural state and keeps fetching and executing the
 * *wrong path* — wrong-path loads genuinely access the memory hierarchy,
 * which is the Spectre vector — until the branch resolves, then squashes
 * and restores.
 *
 * Structural parameters default to the paper's Table 1 (8-wide, 192 ROB,
 * 32 LQ, 32 SQ, 6 int ALUs, 4 FP ALUs, 2 mul/div, tournament predictor).
 *
 * Defence hooks:
 *  - STT (Spectre/Future): register taint timestamps delay execution of
 *    loads/stores whose *address* depends on a speculative load's
 *    result.
 *  - InvisiSpec (Spectre/Future): speculative loads probe the hierarchy
 *    without mutating it and are *exposed* (replayed, mutating) at their
 *    visibility point; commit waits for the exposure. Wrong-path loads
 *    only ever probe: their exposure point falls after the squash.
 *  - Delay-on-miss: speculative loads that miss the private hierarchy
 *    stall until non-speculative (wrong-path misses never access).
 *  - MuonTrap lives in the memory system; the core only reports commit,
 *    squash and domain-switch events through MemIface.
 */

#ifndef MTRAP_CPU_CORE_HH
#define MTRAP_CPU_CORE_HH

#include <array>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/mem_iface.hh"
#include "isa/decoded.hh"
#include "isa/program.hh"

namespace mtrap
{

class MemSystem;
class Tracer;

/** Core-side defence model (memory-side schemes need no core change). */
enum class CoreDefense : std::uint8_t
{
    None,
    SttSpectre,
    SttFuture,
    InvisiSpecSpectre,
    InvisiSpecFuture,
    /** Delay-on-miss baseline: a speculative load that misses the
     *  private hierarchy (filter + L1D) stalls until it is
     *  non-speculative; wrong-path misses never reach the caches. */
    DelayOnMiss,
};

const char *coreDefenseName(CoreDefense d);

/** Structural configuration (defaults = paper Table 1). */
struct CoreParams
{
    unsigned fetchWidth = 8;
    unsigned commitWidth = 8;
    unsigned robSize = 192;
    unsigned lqSize = 32;
    unsigned sqSize = 32;
    unsigned intAlus = 6;
    unsigned fpAlus = 4;
    unsigned mulDivs = 2;
    unsigned memPorts = 2;
    /** Front-end depth: fetch-to-issue latency. */
    unsigned dispatchLatency = 4;
    /** Squash-to-refetch penalty. */
    unsigned redirectPenalty = 5;
    /** Cost added to the clock on a context switch (kernel overhead). */
    Cycle contextSwitchCost = 1000;
    CoreDefense defense = CoreDefense::None;
    /**
     * Fetch through the pre-decoded µop stream (isa/decoded.hh). The
     * decoded path is a bit-identical re-expression of the reference
     * interpreter; `false` selects the retained reference path, which
     * exists for the differential fuzzer (tests/fuzz/) and as the
     * semantic ground truth.
     */
    bool decodedFetch = true;
    BranchPredictorParams bpred;
};

/** Saved architectural state of one software context. */
struct ArchContext
{
    const Program *program = nullptr;
    Asid asid = 0;
    std::uint64_t pc = 0;
    std::array<std::uint64_t, kNumRegs> regs{};
    std::vector<std::uint64_t> callStack;
    bool halted = false;
};

/** Checkpoint an ArchContext minus its Program pointer (pointers do
 *  not survive a process boundary; restore keeps whatever program the
 *  caller installed, and callers re-bind it afterwards). */
void saveArchContext(Serializer &s, const ArchContext &ctx);
void restoreArchContext(Deserializer &d, ArchContext &ctx);

/**
 * One out-of-order core.
 */
class Core
{
  public:
    Core(CoreId id, const CoreParams &params, MemIface *mem,
         StatGroup *parent);

    /** Reports lifetime totals to the perf odometer. */
    ~Core();

    CoreId id() const { return id_; }
    const CoreParams &params() const { return params_; }
    BranchPredictor &predictor() { return bpred_; }

    /** Install a context (resets per-context pipeline state, keeps the
     *  clock running). */
    void setContext(const ArchContext &ctx);

    /** Save the current architectural state (drains the pipeline). */
    ArchContext saveContext();

    /**
     * Perform a context switch: drain, notify the memory system (filter
     * flush under MuonTrap), charge the switch cost, install `next`.
     */
    void contextSwitch(const ArchContext &next);

    /** True once the running program executed Halt. */
    bool halted() const { return ctx_.halted; }

    /** Route context-switch and squash events into `tracer` (null
     *  disables: the hooks reduce to one predictable branch). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** Current front-end cycle (the core's clock). */
    Cycle now() const { return fetchCycle_; }

    /** Push the front-end clock forward to `c` (never backward): the
     *  scheduler parks the core across an idle gang slot. */
    void advanceClockTo(Cycle c)
    {
        if (c > fetchCycle_) {
            fetchCycle_ = c;
            fetchedThisCycle_ = 0;
        }
    }

    /** Cycle at which the last instruction committed. */
    Cycle lastCommitCycle() const { return lastCommitC_; }

    /** Instructions committed since construction. */
    std::uint64_t committedCount() const { return committed.value(); }

    /**
     * Fetch-execute one instruction (and retire anything that must leave
     * the window). Returns false when halted.
     */
    bool stepOne();

    /**
     * Step until `target_committed` total commits or Halt, with no
     * commit budget (System::run's single-core loop; keeping the loop
     * next to stepOne lets the compiler fuse them).
     */
    void stepLoop(std::uint64_t target_committed)
    {
        while (!ctx_.halted && committed.value() < target_committed)
            stepOne();
    }

    /**
     * Multi-core epoch (System::run): step while this core remains the
     * global minimum — strictly below `second_now`, or equal with the
     * lower core id (`wins_ties`). Always steps at least once. Returns
     * false once halted or `target_committed` is reached (the caller
     * drops the core from its heap), true when the runner-up overtakes.
     */
    bool stepEpoch(std::uint64_t target_committed, bool has_second,
                   Cycle second_now, bool wins_ties)
    {
        do {
            stepOne();
            if (ctx_.halted || committed.value() >= target_committed)
                return false;
        } while (!has_second || fetchCycle_ < second_now ||
                 (fetchCycle_ == second_now && wins_ties));
        return true;
    }

    /** Run until `max_commits` more instructions commit or Halt. */
    std::uint64_t run(std::uint64_t max_commits);

    /** Commit everything in flight. */
    void drain();

    /** Architectural register view (for tests and workload setup). */
    std::uint64_t reg(unsigned idx) const { return ctx_.regs.at(idx); }
    void setReg(unsigned idx, std::uint64_t v) { ctx_.regs.at(idx) = v; }

    /**
     * Checkpoint the full microarchitectural state: architectural
     * context, window ring, store buffer, checkpoint stack, predictor,
     * functional-unit clocks. Nothing is drained first — in-flight
     * wrong-path state rides along, which is what makes a restored run
     * bit-identical to the uninterrupted one. The installed Program
     * pointer is *not* serialized: restoreState keeps whichever program
     * the caller (workload replay) installed and re-binds the decoded
     * stream against it.
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

    /** Swap in `p` as the running context's program and re-bind the
     *  decoded stream. The scheduler's restore path re-attaches each
     *  resident task's program after restoreState. */
    void restoreProgramBinding(const Program *p)
    {
        ctx_.program = p;
        bindDecoded();
    }

  private:
    /** Sliding-window record of one in-flight (or wrong-path)
     *  instruction. Field order keeps the struct at 64 bytes (one cache
     *  line) — one is written per fetch, so its size is fetch-path
     *  memory traffic. The execution-done cycle lives only in fetch
     *  locals: nothing after append reads it. pcIndex is 32-bit —
     *  program sizes are instruction counts, nowhere near 4G. */
    struct WinEntry
    {
        SeqNum seq = 0;
        Cycle commitReadyC = 0;
        Cycle commitC = 0;
        Addr vaddr = kAddrInvalid;
        std::uint64_t storeValue = 0;
        Addr ifetchVaddr = kAddrInvalid;
        std::uint32_t pcIndex = 0;
        OpType type = OpType::Nop;
        bool isLoad = false;
        bool isStore = false;
        bool accessedMemory = false;
        bool tlbMiss = false;
        bool newIfetchLine = false;
    };
    static_assert(sizeof(WinEntry) == 64, "WinEntry must stay one line");

    /** Checkpoint taken at a mispredicted branch. */
    struct Checkpoint
    {
        std::array<std::uint64_t, kNumRegs> regs{};
        std::array<Cycle, kNumRegs> regDone{};
        std::array<Cycle, kNumRegs> regTaint{};
        std::vector<std::uint64_t> callStack;
        std::uint64_t correctPc = 0;
        Cycle resolveAt = 0;
        /** Sequence number of the first wrong-path instruction; squash
         *  discards every window entry with seq >= this. (A size-based
         *  boundary would go stale when commits pop the window front
         *  during wrong-path execution.) */
        SeqNum firstWrongSeq = 0;
        Cycle lastCommitC = 0;
        Cycle commitSlotCycle = 0;
        unsigned commitsInSlot = 0;
        Cycle lastBranchDone = 0;
        Addr lastIfetchLine = kAddrInvalid;
        BranchPredictor::Snapshot bpred;
    };

    /**
     * One class of functional units: per-unit next-free cycles, inline
     * storage (no heap indirection on the per-op scheduling path).
     */
    struct FuPool
    {
        static constexpr unsigned kMaxUnits = 16;
        std::array<Cycle, kMaxUnits> until{};
        unsigned count = 0;
    };

    // --- pipeline helpers ------------------------------------------------
    /** Reference interpreter fetch path (ground truth, MicroOp-driven). */
    void fetchOne();
    /** Decoded fetch path: per-kind dispatch over the DecodedOp stream.
     *  Must stay timing- and stat-identical to fetchOne — the
     *  differential fuzzer (tests/fuzz/) enforces it. */
    void fetchOneDecoded();
    Cycle allocFetchSlot();
    Cycle fuAvailable(FuPool &units, Cycle ready);
    Cycle regReady(std::uint8_t r) const;
    Cycle regTaintClear(std::uint8_t r) const;
    std::uint64_t regValue(std::uint8_t r) const;
    void writeReg(std::uint8_t r, std::uint64_t v, Cycle done, Cycle taint);
    /** Functional helpers shared by both fetch paths: MicroOp and
     *  DecodedOp expose the same operand field names. */
    template <class Op> Addr effectiveAddress(const Op &op) const;
    template <class Op> bool evalBranch(const Op &op) const;
    template <class Op> std::uint64_t aluResult(const Op &op) const;

    void appendEntry(WinEntry &e) __attribute__((always_inline));
    void popHead();
    void retireEligible();
    void commitActions(const WinEntry &e);
    void squash();
    void enterWrongPath(std::uint64_t correct_pc, Cycle resolve_at);
    void drainAndApplySerializing(OpType type, Cycle done_c);
    /** Per-fetch I-side check: same-line fetches (the overwhelming
     *  majority) fall through after one compare; the I-access charge
     *  lives in the cold half. */
    void
    chargeIfetch(std::uint64_t pc_index, WinEntry &e)
    {
        const Addr va = ctx_.program->pcToVaddr(pc_index);
        if (lineNum(va) != lastIfetchLine_)
            chargeIfetchNewLine(va, e);
    }
    void chargeIfetchNewLine(Addr va, WinEntry &e);

    /** Bind ctx_.program's decoded stream (decoding and caching it on
     *  first sight) or clear it on the reference path. */
    void bindDecoded();

    /**
     * Devirtualized memory-system shims: when mem_ is the concrete
     * (final) MemSystem — every simulated machine — these call it
     * directly, so LTO can inline the TLB/cache fast paths into the
     * fetch loop. Fakes (unit-test rigs) take the virtual slow path.
     * Definitions live in core.cc, the only user.
     */
    std::uint64_t memRead(Addr vaddr);
    void memWrite(Addr vaddr, std::uint64_t value);
    DataAccessResult memDataAccess(Addr vaddr, Addr pc, bool is_store,
                                   bool speculative, Cycle when);
    Cycle memDataProbe(Addr vaddr, Cycle when);
    bool memDataHitsPrivate(Addr vaddr);
    Cycle memIfetchAccess(Addr vaddr, Cycle when);
    void memCommitData(Addr vaddr, Addr pc, bool is_store,
                       bool tlb_missed, Cycle when);
    void memCommitIfetch(Addr vaddr, Cycle when);

    /** Functional memory read honouring the in-window store buffer. */
    std::uint64_t functionalLoad(Addr vaddr);
    void bufferStore(Addr vaddr, std::uint64_t value, SeqNum seq);
    void unbufferStoresAfter(SeqNum first_squashed);
    void releaseStore(Addr vaddr, SeqNum seq, std::uint64_t value);

    bool inWrongPath() const { return specDepth_ > 0; }

    // --- identity ---------------------------------------------------------
    CoreId id_;
    CoreParams params_;
    MemIface *mem_;
    /** mem_ downcast to the concrete hierarchy when it is one (else
     *  null): the fast side of the shims above. */
    MemSystem *msys_ = nullptr;
    /** Event sink for the tracing hooks; null when tracing is off. */
    Tracer *tracer_ = nullptr;
    BranchPredictor bpred_;

    // --- architectural state -----------------------------------------------
    ArchContext ctx_;
    std::array<Cycle, kNumRegs> regDone_{};
    std::array<Cycle, kNumRegs> regTaint_{};

    // --- fetch / window state ----------------------------------------------
    SeqNum nextSeq_ = 1;
    Cycle fetchCycle_ = 0;
    unsigned fetchedThisCycle_ = 0;
    Addr lastIfetchLine_ = kAddrInvalid;

    /**
     * Decoded stream of the installed program (null on the reference
     * path). Points into decodeCache_'s owned DecodedPrograms; the
     * inner vectors' heap storage is stable across cache growth.
     */
    const DecodedOp *dops_ = nullptr;

    /**
     * Per-core decode cache keyed by (program address, ops storage
     * address, op count, builder stamp): the scheduler reinstalls the
     * same handful of Programs every quantum, so a context switch must
     * not pay a re-decode — while a destroyed program whose addresses
     * get recycled can never match a stale entry (the buildId breaks
     * the tie; see Program::buildId). Small linear scan; cleared
     * wholesale if it ever grows past kDecodeCacheMax.
     */
    struct DecodeSlot
    {
        const Program *prog;
        const MicroOp *storage;
        std::uint64_t size;
        std::uint64_t buildId;
        DecodedProgram dec;
    };
    static constexpr std::size_t kDecodeCacheMax = 64;
    std::vector<DecodeSlot> decodeCache_;

    /**
     * The in-flight window as a fixed ring buffer. Occupancy is bounded
     * by the ROB size, so a power-of-two ring sized at construction
     * replaces std::deque — which allocated and freed chunk nodes
     * continuously as the window advanced through memory.
     */
    std::vector<WinEntry> winBuf_;
    std::size_t winMask_ = 0;
    std::size_t winHead_ = 0;
    std::size_t winCount_ = 0;

    bool winEmpty() const { return winCount_ == 0; }
    std::size_t winSize() const { return winCount_; }
    WinEntry &winFront() { return winBuf_[winHead_ & winMask_]; }
    WinEntry &winBack()
    {
        return winBuf_[(winHead_ + winCount_ - 1) & winMask_];
    }
    /** The (not yet pushed) slot the next fetched entry will occupy;
     *  fetchOne builds the entry in place and appendEntry publishes it
     *  by bumping the count — no 72-byte copy per instruction. */
    WinEntry &winNextSlot()
    {
        return winBuf_[(winHead_ + winCount_) & winMask_];
    }
    void winPopFront() { ++winHead_; --winCount_; }
    void winPopBack() { --winCount_; }

    unsigned loadsInFlight_ = 0;
    unsigned storesInFlight_ = 0;
    Cycle lastCommitC_ = 0;
    Cycle commitSlotCycle_ = 0;
    unsigned commitsInSlot_ = 0;
    Cycle lastBranchDone_ = 0;
    /** Lifetime commits, immune to stat resets (perf odometer). */
    std::uint64_t committedEver_ = 0;

    /** True only for the STT defences: everything else never produces a
     *  nonzero taint, so taint propagation (and its checkpointing) is
     *  skipped wholesale on those cores. */
    bool taintTracked_ = false;

    /**
     * Commit budget for the active run() call: retirement stops once
     * committed.value() reaches this, making run(n) return exactly n
     * for non-halting programs (no commit-width overshoot). Deferred
     * retirements happen on the next run()/drain() with unchanged
     * timestamps and ordering, so the simulated timing stream is
     * identical — only the chunking of bookkeeping changes. stepOne()
     * called outside run() (System::run) sees the no-budget sentinel
     * and behaves exactly as before.
     */
    static constexpr std::uint64_t kNoCommitStop = ~std::uint64_t{0};
    std::uint64_t commitStop_ = kNoCommitStop;
    /** Set when fetchOne() could not proceed without exceeding the
     *  commit budget (serializing op or structural stall at the budget
     *  boundary); run() returns instead of spinning. */
    bool budgetStall_ = false;

    // --- wrong-path state ---------------------------------------------------
    /** Checkpoint pool: the live stack is specStack_[0..specDepth_).
     *  Slots beyond the depth keep their heap storage (call-stack and
     *  RAS vectors) so re-entering speculation never allocates. */
    std::vector<Checkpoint> specStack_;
    std::size_t specDepth_ = 0;

    // --- functional units ----------------------------------------------------
    FuPool intUnits_;
    FuPool fpUnits_;
    FuPool mulUnits_;
    FuPool memUnits_;
    /** DecodedOp::fuSel -> pool (kFuInt/kFuFp/kFuMul order). */
    std::array<FuPool *, 3> fuPools_{};

    // --- store buffer ----------------------------------------------------------
    /**
     * In-flight (uncommitted) stores, in fetch order — which is also
     * sequence-number order, so a squash removes a suffix. Bounded by
     * the SQ size, so linear scans beat any hashed structure and the
     * buffer never allocates after the first few stores.
     */
    struct BufferedStore
    {
        Addr vaddr;
        SeqNum seq;
        std::uint64_t value;
    };
    std::vector<BufferedStore> storeBuffer_;

    /**
     * 64-bit presence filter over buffered store addresses: a load whose
     * address bit is clear cannot forward, so the (per-load) backward
     * scan is skipped entirely. Removals leave the filter a stale
     * superset — still correct, only false positives — and it resets
     * whenever the buffer empties, which store-quiet stretches do
     * constantly.
     */
    std::uint64_t sbPresence_ = 0;

    static unsigned
    sbPresenceBit(Addr vaddr)
    {
        return static_cast<unsigned>(((vaddr >> 3) ^ (vaddr >> 9)) & 63);
    }

    /** Youngest buffered store to `vaddr`, or nullptr. */
    const BufferedStore *findBufferedStore(Addr vaddr) const;

    StatGroup stats_;

  public:
    Counter committed;
    Counter committedLoads;
    Counter committedStores;
    Counter fetched;
    Counter wrongPathFetched;
    Counter wrongPathLoads;
    Counter squashes;
    Counter nackRetries;
    Counter contextSwitches;
    Counter forwardedLoads;
    Counter exposures;
    Counter delayedLoads;
    Average loadLatency;
    Formula ipc;
};

} // namespace mtrap

#endif // MTRAP_CPU_CORE_HH

/**
 * @file
 * Interface the out-of-order core uses to reach the memory system.
 *
 * Keeping this abstract lets cpu/ stay independent of the concrete
 * hierarchy (sim/mem_system.*), which differs per defence scheme.
 */

#ifndef MTRAP_CPU_MEM_IFACE_HH
#define MTRAP_CPU_MEM_IFACE_HH

#include <cstdint>

#include "common/types.hh"

namespace mtrap
{

/** Result of an execute-time data access. */
struct DataAccessResult
{
    Cycle latency = 1;
    /** NACKed by reduced coherency speculation; the core must retry the
     *  access once the instruction is non-speculative. */
    bool nacked = false;
    /** The access missed the TLB (the core schedules a commit-time
     *  retranslation, paper §4.7). */
    bool tlbMiss = false;
    /** Deepest level that serviced the access (0..3). */
    unsigned serviceLevel = 0;
};

/**
 * Memory-system interface: execute-time accesses, commit-time actions,
 * protection-domain events and functional data.
 */
class MemIface
{
  public:
    virtual ~MemIface() = default;

    /** Execute-time data access (load, or store line-prefetch). */
    virtual DataAccessResult dataAccess(CoreId core, Asid asid, Addr vaddr,
                                        Addr pc, bool is_store,
                                        bool speculative, Cycle when) = 0;

    /** Non-mutating latency probe (InvisiSpec speculative loads). */
    virtual Cycle dataProbe(CoreId core, Asid asid, Addr vaddr,
                            Cycle when) = 0;

    /**
     * Non-mutating hit check on the core's private data hierarchy
     * (filter cache + L1D): would a demand load of `vaddr` hit without
     * going to the bus? Drives the delay-on-miss defence
     * (CoreDefense::DelayOnMiss). Defaults to "hit" so simple MemIface
     * fakes never delay.
     */
    virtual bool dataHitsPrivate(CoreId core, Asid asid, Addr vaddr)
    {
        (void)core;
        (void)asid;
        (void)vaddr;
        return true;
    }

    /** Instruction fetch of the line containing `vaddr`. */
    virtual Cycle ifetchAccess(CoreId core, Asid asid, Addr vaddr,
                               Cycle when) = 0;

    /** The instruction that accessed `vaddr` has committed. */
    virtual void commitData(CoreId core, Asid asid, Addr vaddr, Addr pc,
                            bool is_store, bool tlb_missed,
                            Cycle when) = 0;

    /** An instruction fetched from `vaddr` has committed. */
    virtual void commitIfetch(CoreId core, Asid asid, Addr vaddr,
                              Cycle when) = 0;

    /** Kernel entry (Syscall op) committed on `core`. */
    virtual void onSyscall(CoreId core, Cycle when) = 0;

    /** Sandbox entry/exit committed on `core`. */
    virtual void onSandboxSwitch(CoreId core, Cycle when) = 0;

    /** Scheduler switched the process on `core`. */
    virtual void onContextSwitch(CoreId core, Cycle when) = 0;

    /** FlushBarrier op committed on `core`. */
    virtual void onFlushBarrier(CoreId core, Cycle when) = 0;

    /** A misspeculation was squashed on `core` (clear-on-misspec). */
    virtual void onSquash(CoreId core, Cycle when) = 0;

    /** Functional data read/write through the address space. */
    virtual std::uint64_t read(Asid asid, Addr vaddr) = 0;
    virtual void write(Asid asid, Addr vaddr, std::uint64_t value) = 0;

    /**
     * Core-attributed functional read: the calling core's identity lets
     * the memory system serve the read from a per-core word cache
     * (MemSystem keeps a small line-keyed cache per core in front of
     * MainMemory; see MemSystem::FuncReadCache for the geometry).
     * Defaults to the plain read so simple MemIface fakes need not
     * care.
     */
    virtual std::uint64_t read(CoreId core, Asid asid, Addr vaddr)
    {
        (void)core;
        return read(asid, vaddr);
    }
};

} // namespace mtrap

#endif // MTRAP_CPU_MEM_IFACE_HH

#include "cpu/branch_predictor.hh"

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

namespace
{

StatSchema &
bpredStatSchema()
{
    static StatSchema s("bpred");
    return s;
}

double
bpredMispredictRate(const void *ctx)
{
    const BranchPredictor *p = static_cast<const BranchPredictor *>(ctx);
    const double l = static_cast<double>(p->lookups.value());
    return l > 0 ? static_cast<double>(p->mispredicts.value()) / l : 0.0;
}

} // namespace

BranchPredictor::BranchPredictor(const BranchPredictorParams &params,
                                 StatGroup *parent)
    : params_(params),
      localHistory_(params.localEntries, 0),
      localCounters_(1u << params.localHistoryBits, 1),
      globalCounters_(params.globalEntries, 1),
      chooser_(params.chooserEntries, 1),
      btb_(params.btbEntries),
      ras_(params.rasEntries, kAddrInvalid),
      stats_(bpredStatSchema(), "bpred", parent),
      lookups(&stats_, "lookups", "conditional-branch predictions"),
      mispredicts(&stats_, "mispredicts", "direction mispredictions"),
      btbHits(&stats_, "btb_hits", "indirect predictions with a BTB entry"),
      btbMisses(&stats_, "btb_misses", "indirect predictions without one"),
      mispredictRate(&stats_, "mispredict_rate",
                     "mispredicts / lookups",
                     &bpredMispredictRate, this)
{
    if (!isPow2(params.localEntries) || !isPow2(params.globalEntries) ||
        !isPow2(params.chooserEntries) || !isPow2(params.btbEntries))
        fatal("branch predictor tables must be powers of two");
}

void
BranchPredictor::bump(std::uint8_t &c, bool up)
{
    if (up) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

unsigned
BranchPredictor::counterIndexLocal(Addr pc)
{
    const unsigned hist_idx =
        static_cast<unsigned>(pc) & (params_.localEntries - 1);
    const std::uint16_t hist = localHistory_[hist_idx];
    return hist & ((1u << params_.localHistoryBits) - 1);
}

unsigned
BranchPredictor::counterIndexGlobal(Addr pc) const
{
    return static_cast<unsigned>(pc ^ globalHistory_)
           & (params_.globalEntries - 1);
}

bool
BranchPredictor::predictDirection(Addr pc)
{
    ++lookups;
    const bool local_pred = taken2bit(localCounters_[counterIndexLocal(pc)]);
    const bool global_pred =
        taken2bit(globalCounters_[counterIndexGlobal(pc)]);
    const unsigned ch_idx =
        static_cast<unsigned>(pc) & (params_.chooserEntries - 1);
    const bool use_global = taken2bit(chooser_[ch_idx]);
    return use_global ? global_pred : local_pred;
}

void
BranchPredictor::trainDirection(Addr pc, bool taken)
{
    const unsigned hist_idx =
        static_cast<unsigned>(pc) & (params_.localEntries - 1);
    const unsigned local_idx = counterIndexLocal(pc);
    const unsigned global_idx = counterIndexGlobal(pc);
    const unsigned ch_idx =
        static_cast<unsigned>(pc) & (params_.chooserEntries - 1);

    const bool local_pred = taken2bit(localCounters_[local_idx]);
    const bool global_pred = taken2bit(globalCounters_[global_idx]);

    // Chooser trains towards whichever component was right.
    if (local_pred != global_pred)
        bump(chooser_[ch_idx], global_pred == taken);

    bump(localCounters_[local_idx], taken);
    bump(globalCounters_[global_idx], taken);

    localHistory_[hist_idx] = static_cast<std::uint16_t>(
        (localHistory_[hist_idx] << 1) | (taken ? 1 : 0));
    globalHistory_ = (globalHistory_ << 1) | (taken ? 1 : 0);
}

Addr
BranchPredictor::predictTarget(Addr pc)
{
    const BtbEntry &e = btb_[static_cast<unsigned>(pc)
                             & (params_.btbEntries - 1)];
    if (e.pc == pc) {
        ++btbHits;
        return e.target;
    }
    ++btbMisses;
    return kAddrInvalid;
}

void
BranchPredictor::trainTarget(Addr pc, Addr target)
{
    BtbEntry &e = btb_[static_cast<unsigned>(pc)
                       & (params_.btbEntries - 1)];
    e.pc = pc;
    e.target = target;
}

void
BranchPredictor::pushReturn(Addr return_pc)
{
    ras_[rasTop_] = return_pc;
    rasTop_ = (rasTop_ + 1) % params_.rasEntries;
}

Addr
BranchPredictor::popReturn()
{
    rasTop_ = (rasTop_ + params_.rasEntries - 1) % params_.rasEntries;
    const Addr r = ras_[rasTop_];
    ras_[rasTop_] = kAddrInvalid;
    return r;
}

BranchPredictor::Snapshot
BranchPredictor::snapshot() const
{
    return Snapshot{globalHistory_, ras_, rasTop_};
}

void
BranchPredictor::snapshotInto(Snapshot &s) const
{
    s.globalHistory = globalHistory_;
    s.ras = ras_;
    s.rasTop = rasTop_;
}

void
BranchPredictor::restore(const Snapshot &s)
{
    globalHistory_ = s.globalHistory;
    ras_ = s.ras;
    rasTop_ = s.rasTop;
}

void
BranchPredictor::saveState(Serializer &s) const
{
    s.vec(localHistory_);
    s.vec(localCounters_);
    s.vec(globalCounters_);
    s.vec(chooser_);
    s.u64(globalHistory_);
    s.u64(btb_.size());
    for (const BtbEntry &e : btb_) {
        s.u64(e.pc);
        s.u64(e.target);
    }
    s.vec(ras_);
    s.u32(rasTop_);
}

void
BranchPredictor::restoreState(Deserializer &d)
{
    auto restoreSized = [&](auto &v, const char *what) {
        std::remove_reference_t<decltype(v)> in;
        d.vec(in);
        if (in.size() != v.size())
            throw SnapshotError(std::string(what) + " size mismatch");
        v = std::move(in);
    };
    restoreSized(localHistory_, "local history");
    restoreSized(localCounters_, "local counters");
    restoreSized(globalCounters_, "global counters");
    restoreSized(chooser_, "chooser");
    globalHistory_ = d.u64();
    if (d.u64() != btb_.size())
        throw SnapshotError("BTB size mismatch");
    for (BtbEntry &e : btb_) {
        e.pc = d.u64();
        e.target = d.u64();
    }
    restoreSized(ras_, "RAS");
    rasTop_ = d.u32();
}

} // namespace mtrap

#include "cpu/core.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"
#include "perf/odometer.hh"
#include "sim/mem_system.hh"
#include "snapshot/snapshot.hh"
#include "trace/trace.hh"

namespace mtrap
{

namespace
{

/** Mask applied to data virtual addresses (44-bit VA space). */
constexpr Addr kVaMask = (1ull << 44) - 1;

StatSchema &
coreStatSchema()
{
    static StatSchema s("core");
    return s;
}

/**
 * Fuzz-oracle self-test hook (tests/fuzz): with MTRAP_FUZZ_DELAY_MUTATION
 * set, the decoded path's delay-on-miss completion is perturbed by one
 * cycle so the differential fuzzer can demonstrate it would catch a
 * latency bug in that branch. Read fresh on each use — the branch is
 * cold (delay-on-miss scheme + shadowed L1 miss only) and the fuzz test
 * toggles the variable at runtime.
 */
Cycle
delayMutationHook()
{
    return std::getenv("MTRAP_FUZZ_DELAY_MUTATION") ? 1 : 0;
}

double
coreIpc(const void *ctx)
{
    const Core *c = static_cast<const Core *>(ctx);
    return c->lastCommitCycle() > 0
               ? static_cast<double>(c->committedCount())
                     / static_cast<double>(c->lastCommitCycle())
               : 0.0;
}

} // namespace

const char *
coreDefenseName(CoreDefense d)
{
    switch (d) {
      case CoreDefense::None: return "none";
      case CoreDefense::SttSpectre: return "stt-spectre";
      case CoreDefense::SttFuture: return "stt-future";
      case CoreDefense::InvisiSpecSpectre: return "invisispec-spectre";
      case CoreDefense::InvisiSpecFuture: return "invisispec-future";
      case CoreDefense::DelayOnMiss: return "delay-on-miss";
    }
    return "?";
}

Core::Core(CoreId id, const CoreParams &params, MemIface *mem,
           StatGroup *parent)
    : id_(id), params_(params), mem_(mem),
      bpred_(params.bpred, parent),
      stats_(coreStatSchema(), StatName::indexed("core", id), parent),
      committed(&stats_, "committed", "instructions committed"),
      committedLoads(&stats_, "committed_loads", "loads committed"),
      committedStores(&stats_, "committed_stores", "stores committed"),
      fetched(&stats_, "fetched", "instructions fetched (any path)"),
      wrongPathFetched(&stats_, "wrong_path_fetched",
                       "wrong-path instructions fetched"),
      wrongPathLoads(&stats_, "wrong_path_loads",
                     "wrong-path loads that accessed memory"),
      squashes(&stats_, "squashes", "pipeline squashes"),
      nackRetries(&stats_, "nack_retries",
                  "loads retried after a coherence NACK"),
      contextSwitches(&stats_, "context_switches", "context switches"),
      forwardedLoads(&stats_, "forwarded_loads",
                     "loads forwarded from the store buffer"),
      exposures(&stats_, "exposures", "InvisiSpec exposure accesses"),
      delayedLoads(&stats_, "delayed_loads",
                   "speculative L1-miss loads delayed until "
                   "non-speculative (delay-on-miss)"),
      loadLatency(&stats_, "load_latency", "demand load latency"),
      ipc(&stats_, "ipc", "committed instructions per cycle",
          &coreIpc, this)
{
    if (!mem_)
        fatal("core%u: null memory interface", id);
    msys_ = dynamic_cast<MemSystem *>(mem_);
    if (params.robSize < params.lqSize || params.robSize < params.sqSize)
        fatal("core%u: ROB smaller than LQ/SQ", id);
    if (params.intAlus > FuPool::kMaxUnits ||
        params.fpAlus > FuPool::kMaxUnits ||
        params.mulDivs > FuPool::kMaxUnits ||
        params.memPorts > FuPool::kMaxUnits)
        fatal("core%u: more than %u units of one class", id,
              FuPool::kMaxUnits);
    taintTracked_ = params.defense == CoreDefense::SttSpectre ||
                    params.defense == CoreDefense::SttFuture;
    intUnits_.count = std::max(1u, params.intAlus);
    fpUnits_.count = std::max(1u, params.fpAlus);
    mulUnits_.count = std::max(1u, params.mulDivs);
    memUnits_.count = std::max(1u, params.memPorts);
    fuPools_ = {&intUnits_, &fpUnits_, &mulUnits_};

    // Window ring: power-of-two capacity covering the ROB.
    std::size_t cap = 1;
    while (cap < params.robSize + 1u)
        cap <<= 1;
    winBuf_.resize(cap);
    winMask_ = cap - 1;
}

Core::~Core()
{
    perf::SimOdometer::instance().add(committedEver_, fetchCycle_);
}

void
Core::setContext(const ArchContext &ctx)
{
    ctx_ = ctx;
    regDone_.fill(fetchCycle_);
    regTaint_.fill(0);
    lastIfetchLine_ = kAddrInvalid;
    specDepth_ = 0;
    lastBranchDone_ = 0;
    bindDecoded();
}

void
Core::bindDecoded()
{
    dops_ = nullptr;
    if (!params_.decodedFetch || !ctx_.program)
        return;
    const Program *prog = ctx_.program;
    const std::uint64_t size = prog->ops.size();
    for (DecodeSlot &s : decodeCache_) {
        if (s.prog == prog && s.storage == prog->ops.data() &&
            s.size == size && s.buildId == prog->buildId) {
            dops_ = s.dec.ops.data();
            return;
        }
    }
    if (decodeCache_.size() >= kDecodeCacheMax)
        decodeCache_.clear();
    decodeCache_.push_back(DecodeSlot{prog, prog->ops.data(), size,
                                      prog->buildId,
                                      decodeProgram(*prog)});
    dops_ = decodeCache_.back().dec.ops.data();
}

ArchContext
Core::saveContext()
{
    drain();
    return ctx_;
}

void
Core::contextSwitch(const ArchContext &next)
{
    drain();
    if (tracer_)
        tracer_->record(id_, TraceEventKind::ContextSwitch, fetchCycle_,
                        next.asid, ctx_.asid);
    mem_->onContextSwitch(id_, fetchCycle_);
    fetchCycle_ += params_.contextSwitchCost;
    fetchedThisCycle_ = 0;
    ++contextSwitches;
    setContext(next);
}

// --------------------------------------------------------------------------
// Checkpointing
// --------------------------------------------------------------------------

void
saveArchContext(Serializer &s, const ArchContext &ctx)
{
    s.u32(ctx.asid);
    s.u64(ctx.pc);
    for (std::uint64_t r : ctx.regs)
        s.u64(r);
    s.vec(ctx.callStack);
    s.b(ctx.halted);
}

void
restoreArchContext(Deserializer &d, ArchContext &ctx)
{
    // ctx.program is deliberately untouched: the caller re-installs it.
    ctx.asid = d.u32();
    ctx.pc = d.u64();
    for (std::uint64_t &r : ctx.regs)
        r = d.u64();
    d.vec(ctx.callStack);
    ctx.halted = d.b();
}

namespace
{

void
saveBpredSnapshot(Serializer &s, const BranchPredictor::Snapshot &b)
{
    s.u64(b.globalHistory);
    s.vec(b.ras);
    s.u32(b.rasTop);
}

void
restoreBpredSnapshot(Deserializer &d, BranchPredictor::Snapshot &b)
{
    b.globalHistory = d.u64();
    d.vec(b.ras);
    b.rasTop = d.u32();
}

void
saveFuPool(Serializer &s, const std::array<Cycle, 16> &until)
{
    for (Cycle c : until)
        s.u64(c);
}

void
restoreFuPool(Deserializer &d, std::array<Cycle, 16> &until)
{
    for (Cycle &c : until)
        c = d.u64();
}

} // namespace

void
Core::saveState(Serializer &s) const
{
    // Architectural state.
    saveArchContext(s, ctx_);
    for (Cycle c : regDone_)
        s.u64(c);
    for (Cycle c : regTaint_)
        s.u64(c);

    // Fetch / window clocks.
    s.u64(nextSeq_);
    s.u64(fetchCycle_);
    s.u32(fetchedThisCycle_);
    s.u64(lastIfetchLine_);

    // The in-flight window, oldest first. Entries are 64-byte PODs.
    s.u64(winCount_);
    for (std::size_t i = 0; i < winCount_; ++i)
        s.raw(&winBuf_[(winHead_ + i) & winMask_], sizeof(WinEntry));

    s.u32(loadsInFlight_);
    s.u32(storesInFlight_);
    s.u64(lastCommitC_);
    s.u64(commitSlotCycle_);
    s.u32(commitsInSlot_);
    s.u64(lastBranchDone_);
    s.u64(committedEver_);

    // Wrong-path checkpoint stack (live prefix only).
    s.u64(specDepth_);
    for (std::size_t i = 0; i < specDepth_; ++i) {
        const Checkpoint &cp = specStack_[i];
        for (std::uint64_t r : cp.regs)
            s.u64(r);
        for (Cycle c : cp.regDone)
            s.u64(c);
        for (Cycle c : cp.regTaint)
            s.u64(c);
        s.vec(cp.callStack);
        s.u64(cp.correctPc);
        s.u64(cp.resolveAt);
        s.u64(cp.firstWrongSeq);
        s.u64(cp.lastCommitC);
        s.u64(cp.commitSlotCycle);
        s.u32(cp.commitsInSlot);
        s.u64(cp.lastBranchDone);
        s.u64(cp.lastIfetchLine);
        saveBpredSnapshot(s, cp.bpred);
    }

    // Functional-unit next-free clocks (counts are configuration).
    saveFuPool(s, intUnits_.until);
    saveFuPool(s, fpUnits_.until);
    saveFuPool(s, mulUnits_.until);
    saveFuPool(s, memUnits_.until);

    // Store buffer + presence filter.
    s.u64(storeBuffer_.size());
    for (const BufferedStore &b : storeBuffer_) {
        s.u64(b.vaddr);
        s.u64(b.seq);
        s.u64(b.value);
    }
    s.u64(sbPresence_);

    bpred_.saveState(s);
}

void
Core::restoreState(Deserializer &d)
{
    restoreArchContext(d, ctx_);
    for (Cycle &c : regDone_)
        c = d.u64();
    for (Cycle &c : regTaint_)
        c = d.u64();

    nextSeq_ = d.u64();
    fetchCycle_ = d.u64();
    fetchedThisCycle_ = d.u32();
    lastIfetchLine_ = d.u64();

    const std::uint64_t wc = d.u64();
    if (wc > winBuf_.size())
        throw SnapshotError("window occupancy exceeds ROB capacity");
    winHead_ = 0;
    winCount_ = static_cast<std::size_t>(wc);
    for (std::size_t i = 0; i < winCount_; ++i)
        d.raw(&winBuf_[i], sizeof(WinEntry));

    loadsInFlight_ = d.u32();
    storesInFlight_ = d.u32();
    lastCommitC_ = d.u64();
    commitSlotCycle_ = d.u64();
    commitsInSlot_ = d.u32();
    lastBranchDone_ = d.u64();
    committedEver_ = d.u64();

    const std::uint64_t depth = d.u64();
    if (depth > 4096)
        throw SnapshotError("implausible checkpoint-stack depth");
    if (specStack_.size() < depth)
        specStack_.resize(depth);
    specDepth_ = static_cast<std::size_t>(depth);
    for (std::size_t i = 0; i < specDepth_; ++i) {
        Checkpoint &cp = specStack_[i];
        for (std::uint64_t &r : cp.regs)
            r = d.u64();
        for (Cycle &c : cp.regDone)
            c = d.u64();
        for (Cycle &c : cp.regTaint)
            c = d.u64();
        d.vec(cp.callStack);
        cp.correctPc = d.u64();
        cp.resolveAt = d.u64();
        cp.firstWrongSeq = d.u64();
        cp.lastCommitC = d.u64();
        cp.commitSlotCycle = d.u64();
        cp.commitsInSlot = d.u32();
        cp.lastBranchDone = d.u64();
        cp.lastIfetchLine = d.u64();
        restoreBpredSnapshot(d, cp.bpred);
    }

    restoreFuPool(d, intUnits_.until);
    restoreFuPool(d, fpUnits_.until);
    restoreFuPool(d, mulUnits_.until);
    restoreFuPool(d, memUnits_.until);

    const std::uint64_t sb = d.u64();
    if (sb > params_.sqSize)
        throw SnapshotError("store-buffer occupancy exceeds SQ capacity");
    storeBuffer_.clear();
    storeBuffer_.reserve(sb);
    for (std::uint64_t i = 0; i < sb; ++i) {
        BufferedStore b;
        b.vaddr = d.u64();
        b.seq = d.u64();
        b.value = d.u64();
        storeBuffer_.push_back(b);
    }
    sbPresence_ = d.u64();

    bpred_.restoreState(d);

    // Restore never carries a commit budget: that belongs to the active
    // run() call, not the machine.
    commitStop_ = kNoCommitStop;
    budgetStall_ = false;

    // The decode cache is observably transparent; drop it and re-bind
    // the (caller-installed) program's decoded stream.
    decodeCache_.clear();
    bindDecoded();
}

// --------------------------------------------------------------------------
// Devirtualized memory-system shims (see core.hh)
// --------------------------------------------------------------------------

std::uint64_t
Core::memRead(Addr vaddr)
{
    return msys_ ? msys_->read(id_, ctx_.asid, vaddr)
                 : mem_->read(id_, ctx_.asid, vaddr);
}

void
Core::memWrite(Addr vaddr, std::uint64_t value)
{
    if (msys_)
        msys_->write(ctx_.asid, vaddr, value);
    else
        mem_->write(ctx_.asid, vaddr, value);
}

DataAccessResult
Core::memDataAccess(Addr vaddr, Addr pc, bool is_store, bool speculative,
                    Cycle when)
{
    return msys_ ? msys_->dataAccess(id_, ctx_.asid, vaddr, pc, is_store,
                                     speculative, when)
                 : mem_->dataAccess(id_, ctx_.asid, vaddr, pc, is_store,
                                    speculative, when);
}

Cycle
Core::memDataProbe(Addr vaddr, Cycle when)
{
    return msys_ ? msys_->dataProbe(id_, ctx_.asid, vaddr, when)
                 : mem_->dataProbe(id_, ctx_.asid, vaddr, when);
}

bool
Core::memDataHitsPrivate(Addr vaddr)
{
    return msys_ ? msys_->dataHitsPrivate(id_, ctx_.asid, vaddr)
                 : mem_->dataHitsPrivate(id_, ctx_.asid, vaddr);
}

Cycle
Core::memIfetchAccess(Addr vaddr, Cycle when)
{
    return msys_ ? msys_->ifetchAccess(id_, ctx_.asid, vaddr, when)
                 : mem_->ifetchAccess(id_, ctx_.asid, vaddr, when);
}

void
Core::memCommitData(Addr vaddr, Addr pc, bool is_store, bool tlb_missed,
                    Cycle when)
{
    if (msys_)
        msys_->commitData(id_, ctx_.asid, vaddr, pc, is_store, tlb_missed,
                          when);
    else
        mem_->commitData(id_, ctx_.asid, vaddr, pc, is_store, tlb_missed,
                         when);
}

void
Core::memCommitIfetch(Addr vaddr, Cycle when)
{
    if (msys_)
        msys_->commitIfetch(id_, ctx_.asid, vaddr, when);
    else
        mem_->commitIfetch(id_, ctx_.asid, vaddr, when);
}

// --------------------------------------------------------------------------
// Register / value helpers
// --------------------------------------------------------------------------

Cycle
Core::regReady(std::uint8_t r) const
{
    return r == kNoReg ? 0 : regDone_[r];
}

Cycle
Core::regTaintClear(std::uint8_t r) const
{
    return r == kNoReg ? 0 : regTaint_[r];
}

std::uint64_t
Core::regValue(std::uint8_t r) const
{
    return r == kNoReg ? 0 : ctx_.regs[r];
}

void
Core::writeReg(std::uint8_t r, std::uint64_t v, Cycle done, Cycle taint)
{
    if (r == kNoReg)
        return;
    ctx_.regs[r] = v;
    regDone_[r] = done;
    regTaint_[r] = taint;
}

template <class Op>
Addr
Core::effectiveAddress(const Op &op) const
{
    Addr a = regValue(op.base) + static_cast<Addr>(op.imm);
    if (op.index != kNoReg)
        a += regValue(op.index) << op.scale;
    return (a & kVaMask) & ~static_cast<Addr>(7);
}

template <class Op>
bool
Core::evalBranch(const Op &op) const
{
    const std::int64_t a = static_cast<std::int64_t>(regValue(op.src1));
    const std::int64_t b = static_cast<std::int64_t>(regValue(op.src2));
    const std::uint64_t ua = regValue(op.src1);
    const std::uint64_t ub = regValue(op.src2);
    switch (op.cond) {
      case BranchCond::Eq: return a == b;
      case BranchCond::Ne: return a != b;
      case BranchCond::Lt: return a < b;
      case BranchCond::Ge: return a >= b;
      case BranchCond::Ult: return ua < ub;
      case BranchCond::Uge: return ua >= ub;
      case BranchCond::Always: return true;
    }
    return true;
}

template <class Op>
std::uint64_t
Core::aluResult(const Op &op) const
{
    const std::uint64_t a = regValue(op.src1);
    const std::uint64_t b = op.src2 != kNoReg
                                ? regValue(op.src2)
                                : static_cast<std::uint64_t>(op.imm);
    switch (op.alu) {
      case AluOp::Add: return a + b;
      case AluOp::Sub: return a - b;
      case AluOp::And: return a & b;
      case AluOp::Or: return a | b;
      case AluOp::Xor: return a ^ b;
      case AluOp::Shl: return a << (b & 63);
      case AluOp::Shr: return a >> (b & 63);
      case AluOp::Mov: return a;
      case AluOp::MovImm: return static_cast<std::uint64_t>(op.imm);
      case AluOp::Mul: return a * b;
      case AluOp::Div: return b ? a / b : a;
    }
    return 0;
}

// --------------------------------------------------------------------------
// Store buffer (functional wrong-path isolation + forwarding)
// --------------------------------------------------------------------------

const Core::BufferedStore *
Core::findBufferedStore(Addr vaddr) const
{
    if (!(sbPresence_ & (1ull << sbPresenceBit(vaddr))))
        return nullptr;
    // Backwards: the youngest store to the address wins (forwarding).
    for (auto it = storeBuffer_.rbegin(); it != storeBuffer_.rend(); ++it)
        if (it->vaddr == vaddr)
            return &*it;
    return nullptr;
}

std::uint64_t
Core::functionalLoad(Addr vaddr)
{
    if (const BufferedStore *s = findBufferedStore(vaddr))
        return s->value;
    return memRead(vaddr);
}

void
Core::bufferStore(Addr vaddr, std::uint64_t value, SeqNum seq)
{
    storeBuffer_.push_back(BufferedStore{vaddr, seq, value});
    sbPresence_ |= 1ull << sbPresenceBit(vaddr);
}

void
Core::unbufferStoresAfter(SeqNum first_squashed)
{
    // Sequence numbers only grow along the buffer: wrong-path stores are
    // a suffix.
    while (!storeBuffer_.empty() &&
           storeBuffer_.back().seq >= first_squashed)
        storeBuffer_.pop_back();
    if (storeBuffer_.empty())
        sbPresence_ = 0;
}

void
Core::releaseStore(Addr vaddr, SeqNum seq, std::uint64_t value)
{
    memWrite(vaddr, value);
    // Commits run in sequence order, so the released store sits at (or
    // very near) the front.
    for (auto it = storeBuffer_.begin(); it != storeBuffer_.end(); ++it) {
        if (it->seq == seq) {
            storeBuffer_.erase(it);
            break;
        }
    }
    if (storeBuffer_.empty())
        sbPresence_ = 0;
}

// --------------------------------------------------------------------------
// Structural helpers
// --------------------------------------------------------------------------

Cycle
Core::allocFetchSlot()
{
    if (fetchedThisCycle_ >= params_.fetchWidth) {
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
    }
    ++fetchedThisCycle_;
    return fetchCycle_;
}

Cycle
Core::fuAvailable(FuPool &units, Cycle ready)
{
    auto it = std::min_element(units.until.begin(),
                               units.until.begin() + units.count);
    const Cycle start = std::max(*it, ready);
    *it = start + 1; // units accept one op per cycle (pipelined)
    return start;
}

// --------------------------------------------------------------------------
// Window management
// --------------------------------------------------------------------------

void
Core::appendEntry(WinEntry &e)
{
    // In-order commit: 'commitWidth' per cycle, after commitReadyC.
    Cycle c = std::max(e.commitReadyC + 1, lastCommitC_);
    if (c == commitSlotCycle_ && commitsInSlot_ >= params_.commitWidth)
        ++c;
    if (c != commitSlotCycle_) {
        commitSlotCycle_ = c;
        commitsInSlot_ = 0;
    }
    ++commitsInSlot_;
    e.commitC = c;
    lastCommitC_ = c;

    if (e.isLoad)
        ++loadsInFlight_;
    if (e.isStore)
        ++storesInFlight_;
    // `e` already lives in the ring's next slot; publish it.
    ++winCount_;
}

void
Core::popHead()
{
    WinEntry &e = winFront();
    commitActions(e);
    if (e.isLoad)
        --loadsInFlight_;
    if (e.isStore)
        --storesInFlight_;
    winPopFront();
}

void
Core::commitActions(const WinEntry &e)
{
    ++committed;
    ++committedEver_;
    if (e.isLoad)
        ++committedLoads;
    if (e.isStore) {
        ++committedStores;
        releaseStore(e.vaddr, e.seq, e.storeValue);
    }
    if (e.accessedMemory) {
        memCommitData(e.vaddr, e.pcIndex, e.isStore, e.tlbMiss,
                      e.commitC);
    }
    if (e.newIfetchLine)
        memCommitIfetch(e.ifetchVaddr, e.commitC);
}

void
Core::drain()
{
    while (!winEmpty())
        popHead();
    if (lastCommitC_ > fetchCycle_) {
        fetchCycle_ = lastCommitC_;
        fetchedThisCycle_ = 0;
    }
}

// --------------------------------------------------------------------------
// Speculation
// --------------------------------------------------------------------------

void
Core::enterWrongPath(std::uint64_t correct_pc, Cycle resolve_at)
{
    if (specDepth_ == specStack_.size())
        specStack_.emplace_back();
    Checkpoint &chk = specStack_[specDepth_++];
    chk.regs = ctx_.regs;
    chk.regDone = regDone_;
    if (taintTracked_)
        chk.regTaint = regTaint_;
    chk.callStack = ctx_.callStack;
    chk.correctPc = correct_pc;
    chk.resolveAt = resolve_at;
    chk.firstWrongSeq = nextSeq_;
    chk.lastCommitC = lastCommitC_;
    chk.commitSlotCycle = commitSlotCycle_;
    chk.commitsInSlot = commitsInSlot_;
    chk.lastBranchDone = lastBranchDone_;
    chk.lastIfetchLine = lastIfetchLine_;
    bpred_.snapshotInto(chk.bpred);
}

void
Core::squash()
{
    // Restore to the *oldest* checkpoint: the first mispredicted branch
    // wins; anything younger (including nested checkpoints) is wrong
    // path.
    Checkpoint &chk = specStack_.front();

    // Discard wrong-path entries from the window tail, fixing up the
    // in-flight load/store occupancy as they go (the wrong path can be
    // a whole ROB's worth of entries; walk the ring directly).
    std::size_t n = winCount_;
    while (n > 0) {
        const WinEntry &e = winBuf_[(winHead_ + n - 1) & winMask_];
        if (e.seq < chk.firstWrongSeq)
            break;
        if (e.isLoad)
            --loadsInFlight_;
        if (e.isStore)
            --storesInFlight_;
        --n;
    }
    winCount_ = n;
    unbufferStoresAfter(chk.firstWrongSeq);

    ctx_.regs = chk.regs;
    regDone_ = chk.regDone;
    if (taintTracked_)
        regTaint_ = chk.regTaint;
    ctx_.callStack = chk.callStack;
    ctx_.pc = chk.correctPc;
    lastCommitC_ = chk.lastCommitC;
    commitSlotCycle_ = chk.commitSlotCycle;
    commitsInSlot_ = chk.commitsInSlot;
    lastBranchDone_ = std::max(chk.lastBranchDone, chk.resolveAt);
    lastIfetchLine_ = chk.lastIfetchLine;
    bpred_.restore(chk.bpred);

    fetchCycle_ = std::max(fetchCycle_, chk.resolveAt);
    fetchedThisCycle_ = 0;

    ++squashes;
    if (tracer_)
        tracer_->record(id_, TraceEventKind::Squash, fetchCycle_,
                        chk.correctPc);
    mem_->onSquash(id_, fetchCycle_);
    specDepth_ = 0;
}

// --------------------------------------------------------------------------
// Serializing ops
// --------------------------------------------------------------------------

void
Core::drainAndApplySerializing(OpType type, Cycle done_c)
{
    drain();
    const Cycle when = std::max(done_c, lastCommitC_);
    switch (type) {
      case OpType::Syscall:
        mem_->onSyscall(id_, when);
        break;
      case OpType::SandboxEnter:
      case OpType::SandboxExit:
        mem_->onSandboxSwitch(id_, when);
        break;
      case OpType::FlushBarrier:
        mem_->onFlushBarrier(id_, when);
        break;
      case OpType::Halt:
        ctx_.halted = true;
        break;
      default:
        panic("not a serializing op: %s", opTypeName(type));
    }
    fetchCycle_ = std::max(fetchCycle_, when + opLatency(type));
    fetchedThisCycle_ = 0;
    lastCommitC_ = std::max(lastCommitC_, fetchCycle_);
    ++committed;
    ++committedEver_;
}

// --------------------------------------------------------------------------
// Instruction fetch (I-side access)
// --------------------------------------------------------------------------

void
Core::chargeIfetchNewLine(Addr va, WinEntry &e)
{
    lastIfetchLine_ = lineNum(va);
    const Cycle lat = memIfetchAccess(va, fetchCycle_);
    // A 1-cycle hit is hidden by the pipelined front end; anything more
    // stalls fetch.
    if (lat > 1) {
        fetchCycle_ += lat - 1;
        fetchedThisCycle_ = 0;
    }
    e.newIfetchLine = true;
    e.ifetchVaddr = va;
}

// --------------------------------------------------------------------------
// Main fetch-execute step
// --------------------------------------------------------------------------

void
Core::retireEligible()
{
    // Retire entries whose commit time has passed the front-end clock.
    // This keeps the *simulation order* of commit actions (filter-line
    // write-throughs, prefetch notifications) aligned with their time
    // stamps: without it, a whole ROB's worth of younger accesses would
    // hit the caches before an older instruction's commit actions ran.
    // Never retire wrong-path entries — they are squashed, not
    // committed.
    const SeqNum barrier = inWrongPath()
                               ? specStack_.front().firstWrongSeq
                               : nextSeq_;
    while (!winEmpty() && winFront().seq < barrier &&
           winFront().commitC <= fetchCycle_ &&
           committed.value() < commitStop_) {
        popHead();
    }
}

bool
Core::stepOne()
{
    if (ctx_.halted || !ctx_.program)
        return false;

    // Wrong-path termination: once the front end's clock passes the
    // resolve point of the oldest mispredicted branch, squash.
    if (inWrongPath() && fetchCycle_ >= specStack_.front().resolveAt) {
        squash();
        return true;
    }

    retireEligible();
    if (dops_)
        fetchOneDecoded();
    else
        fetchOne();
    return !ctx_.halted;
}

std::uint64_t
Core::run(std::uint64_t max_commits)
{
    const std::uint64_t start = committed.value();
    const std::uint64_t stop =
        max_commits > kNoCommitStop - start ? kNoCommitStop
                                            : start + max_commits;
    commitStop_ = stop;
    budgetStall_ = false;
    while (!ctx_.halted && !budgetStall_ && committed.value() < stop)
        stepOne();
    commitStop_ = kNoCommitStop;
    budgetStall_ = false;
    return committed.value() - start;
}

void
Core::fetchOne()
{
    const Program &prog = *ctx_.program;
    if (ctx_.pc >= prog.size()) {
        warn("core%u: pc %llu fell off program %s; halting", id_,
             static_cast<unsigned long long>(ctx_.pc), prog.name.c_str());
        drain();
        ctx_.halted = true;
        return;
    }

    const MicroOp &op = prog.ops[ctx_.pc];
    const std::uint64_t pc = ctx_.pc;

    // Serializing ops never execute speculatively: on the wrong path
    // they stall fetch until the squash; on the correct path they drain
    // and apply their effect in program order.
    if (op.isSerializing()) {
        if (inWrongPath()) {
            fetchCycle_ = specStack_.front().resolveAt;
            squash();
            return;
        }
        // The implied drain would blow the commit budget: retire what
        // the budget still allows and stop; a later run() fetches the
        // op. The deferred commit actions keep their timestamps, so the
        // simulation stream is unchanged.
        if (committed.value() + winSize() + 1 > commitStop_) {
            while (!winEmpty() && committed.value() < commitStop_)
                popHead();
            budgetStall_ = true;
            return;
        }
        // Timing: the op issues after its fetch and all older work.
        const Cycle fc = allocFetchSlot();
        ++fetched;
        drainAndApplySerializing(op.type, std::max(fc, lastCommitC_));
        ctx_.pc = pc + 1;
        return;
    }

    // Structural stalls: ROB, LQ, SQ.
    while (winSize() >= params_.robSize ||
           (op.type == OpType::Load && loadsInFlight_ >= params_.lqSize) ||
           (op.type == OpType::Store && storesInFlight_ >= params_.sqSize)) {
        if (committed.value() >= commitStop_) {
            // Making room would exceed the commit budget.
            budgetStall_ = true;
            return;
        }
        if (winEmpty())
            panic("core%u: structural stall with empty window", id_);
        if (fetchCycle_ < winFront().commitC) {
            fetchCycle_ = winFront().commitC;
            fetchedThisCycle_ = 0;
            // The stall may have pushed us past a pending resolve point.
            if (inWrongPath() &&
                fetchCycle_ >= specStack_.front().resolveAt) {
                squash();
                return;
            }
        }
        popHead();
    }

    const Cycle fc = allocFetchSlot();
    ++fetched;
    if (inWrongPath())
        ++wrongPathFetched;

    // Build the entry in its ring slot. Only the fields every path
    // reads are reset; vaddr/storeValue/ifetchVaddr are written
    // by exactly the paths that later read them (guarded by the flags
    // cleared here), so the stale slot contents are never observed.
    WinEntry &e = winNextSlot();
    e.seq = nextSeq_++;
    e.pcIndex = static_cast<std::uint32_t>(pc);
    e.type = op.type;
    e.commitReadyC = 0;
    e.isLoad = false;
    e.isStore = false;
    e.accessedMemory = false;
    e.tlbMiss = false;
    e.newIfetchLine = false;

    chargeIfetch(pc, e);

    const Cycle dispatch = fc + params_.dispatchLatency;
    std::uint64_t next_pc = pc + 1;
    Cycle done_c = 0;

    switch (op.type) {
      case OpType::Nop:
        done_c = dispatch;
        break;

      case OpType::IntAlu:
      case OpType::IntMul:
      case OpType::IntDiv:
      case OpType::FpAlu: {
        const Cycle ready = std::max({dispatch, regReady(op.src1),
                                      regReady(op.src2)});
        FuPool *units = &intUnits_;
        if (op.type == OpType::FpAlu)
            units = &fpUnits_;
        else if (op.type != OpType::IntAlu)
            units = &mulUnits_;
        const Cycle start = fuAvailable(*units, ready);
        done_c = start + opLatency(op.type);
        const Cycle taint =
            taintTracked_ ? std::max(regTaintClear(op.src1),
                                     regTaintClear(op.src2))
                          : 0;
        writeReg(op.dst, aluResult(op), done_c, taint);
        break;
      }

      case OpType::Load:
      case OpType::Store: {
        const Addr va = effectiveAddress(op);
        e.vaddr = va;

        Cycle addr_ready = std::max({dispatch, regReady(op.base),
                                     regReady(op.index)});
        // STT: transmitters (loads/stores) with tainted address operands
        // are delayed until the taint clears.
        if (taintTracked_) {
            addr_ready = std::max({addr_ready, regTaintClear(op.base),
                                   regTaintClear(op.index)});
        }
        const Cycle issue = fuAvailable(memUnits_, addr_ready);

        // A wrong-path memory op whose issue time falls after the
        // mispredicted branch resolves never reaches the cache: the
        // squash kills it first. Modelling this matters — without it the
        // wrong path would inject far more cache traffic than real
        // hardware can.
        const bool squashed_before_issue =
            inWrongPath() && issue >= specStack_.front().resolveAt;

        if (op.type == OpType::Store) {
            e.isStore = true;
            const Cycle data_ready = std::max(issue, regReady(op.src1));
            e.storeValue = regValue(op.src1);
            bufferStore(va, e.storeValue, e.seq);
            if (!squashed_before_issue) {
                // Execute-time line prefetch (exclusive in baseline,
                // shared under MuonTrap); the write happens at commit.
                DataAccessResult r = memDataAccess(
                    va, pc, /*is_store=*/true, /*speculative=*/true,
                    issue);
                e.accessedMemory = true;
                e.tlbMiss = r.tlbMiss;
            }
            // Store completion does not wait for the prefetch; address +
            // data availability retire the op.
            done_c = data_ready + 1;
        } else {
            e.isLoad = true;
            // Store-to-load forwarding.
            if (const BufferedStore *s = findBufferedStore(va)) {
                ++forwardedLoads;
                done_c = issue + 1;
                writeReg(op.dst, s->value, done_c,
                         taintTracked_ ? regTaintClear(op.base) : 0);
                break;
            }

            const std::uint64_t value = memRead(va);
            Cycle done;
            bool accessed = true;

            if (squashed_before_issue) {
                // Issues too late to beat the squash: no cache access.
                e.accessedMemory = false;
                done_c = specStack_.front().resolveAt;
                writeReg(op.dst, value, done_c, 0);
                break;
            }

            // A load sits in the speculative shadow while an unresolved
            // (mispredicted, still in flight) branch is older than it,
            // or while it issues before an already-resolved branch's
            // resolution cycle. Wrong-path loads are *always* shadowed:
            // without the inWrongPath() term the defences below would
            // be inert exactly on the attack path, because the
            // mispredicted branch only updates lastBranchDone_ at the
            // squash.
            const bool spec_shadow =
                inWrongPath() || lastBranchDone_ > issue;
            const bool is_invisispec =
                params_.defense == CoreDefense::InvisiSpecSpectre ||
                params_.defense == CoreDefense::InvisiSpecFuture;
            if (is_invisispec && spec_shadow) {
                // Speculative InvisiSpec load: non-mutating probe now,
                // mutating exposure at the visibility point.
                const Cycle probe_lat = memDataProbe(va, issue);
                done = issue + probe_lat;
                if (inWrongPath()) {
                    // The exposure point falls after the squash: the
                    // spec-buffer entry is dropped there and the
                    // hierarchy is never touched.
                    accessed = false;
                } else {
                    const Cycle expose_start =
                        params_.defense == CoreDefense::InvisiSpecSpectre
                            ? std::max(done, lastBranchDone_)
                            : std::max(done, lastCommitC_);
                    DataAccessResult er = memDataAccess(
                        va, pc, false, false, expose_start);
                    ++exposures;
                    e.commitReadyC = expose_start + er.latency;
                    e.tlbMiss = er.tlbMiss;
                }
            } else if (params_.defense == CoreDefense::DelayOnMiss &&
                       spec_shadow && !memDataHitsPrivate(va)) {
                // Delay-on-miss: private-hierarchy hits proceed below;
                // a shadowed miss waits until it is non-speculative.
                ++delayedLoads;
                if (inWrongPath()) {
                    // Stalls past the squash: never reaches the caches.
                    done = specStack_.front().resolveAt;
                    accessed = false;
                } else {
                    const Cycle start = std::max(issue, lastBranchDone_);
                    DataAccessResult r = memDataAccess(
                        va, pc, false, /*speculative=*/false, start);
                    done = start + r.latency;
                    e.tlbMiss = r.tlbMiss;
                }
            } else {
                DataAccessResult r = memDataAccess(
                    va, pc, false, /*speculative=*/true, issue);
                if (r.nacked) {
                    if (inWrongPath()) {
                        // Never becomes non-speculative; completes only
                        // notionally, squashed before commit.
                        done = specStack_.front().resolveAt;
                        accessed = false;
                    } else {
                        // Retry once the access is definitely going to
                        // execute (§4.5: "at the front of the
                        // instruction queue"): all older branches have
                        // resolved by then.
                        ++nackRetries;
                        const Cycle retry =
                            std::max(issue, lastBranchDone_) + 1;
                        DataAccessResult r2 = memDataAccess(
                            va, pc, false, /*speculative=*/false, retry);
                        done = retry + r2.latency;
                        e.tlbMiss = r2.tlbMiss;
                    }
                } else {
                    done = issue + r.latency;
                    e.tlbMiss = r.tlbMiss;
                }
            }
            e.accessedMemory = accessed;
            done_c = done;
            loadLatency.sample(static_cast<double>(done_c - issue));
            if (inWrongPath())
                ++wrongPathLoads;

            // STT taint: the loaded value is tainted until the load is
            // no longer speculative. On the wrong path that point is
            // the squash itself, so the taint lower-bounds at the
            // resolve cycle — dependent transmitters issue too late to
            // beat the squash.
            Cycle taint = 0;
            if (params_.defense == CoreDefense::SttSpectre)
                taint = std::max({lastBranchDone_, done,
                                  inWrongPath()
                                      ? specStack_.front().resolveAt
                                      : 0});
            else if (params_.defense == CoreDefense::SttFuture)
                taint = std::max({lastCommitC_, done,
                                  inWrongPath()
                                      ? specStack_.front().resolveAt
                                      : 0});
            writeReg(op.dst, value, done, taint);
        }
        break;
      }

      case OpType::Branch: {
        const Cycle ready = std::max({dispatch, regReady(op.src1),
                                      regReady(op.src2)});
        const Cycle start = fuAvailable(intUnits_, ready);
        done_c = start + 1;
        const bool actual = evalBranch(op);
        const std::uint64_t taken_pc =
            static_cast<std::uint64_t>(static_cast<std::int64_t>(pc)
                                       + op.imm);
        if (op.cond == BranchCond::Always) {
            next_pc = taken_pc;
            break;
        }
        const bool predicted = bpred_.predictDirection(pc);
        if (!inWrongPath())
            bpred_.trainDirection(pc, actual);
        if (predicted == actual || inWrongPath()) {
            next_pc = actual ? taken_pc : pc + 1;
            lastBranchDone_ = std::max(lastBranchDone_, done_c);
        } else {
            ++bpred_.mispredicts;
            const std::uint64_t correct = actual ? taken_pc : pc + 1;
            const std::uint64_t wrong = actual ? pc + 1 : taken_pc;
            const Cycle resolve = done_c + params_.redirectPenalty;
            e.commitReadyC = done_c;
            appendEntry(e);
            enterWrongPath(correct, resolve);
            ctx_.pc = wrong;
            return;
        }
        break;
      }

      case OpType::Jump: {
        const Cycle ready = std::max(dispatch, regReady(op.base));
        const Cycle start = fuAvailable(intUnits_, ready);
        done_c = start + 1;
        std::uint64_t actual = regValue(op.base);
        if (actual >= prog.size())
            actual = prog.size() - 1; // clamp wrong-path garbage
        const Addr predicted = bpred_.predictTarget(pc);
        if (!inWrongPath())
            bpred_.trainTarget(pc, actual);
        if (predicted == kAddrInvalid) {
            // No BTB entry: the front end stalls until resolution.
            next_pc = actual;
            fetchCycle_ = std::max(fetchCycle_,
                                   done_c + params_.redirectPenalty);
            fetchedThisCycle_ = 0;
            lastBranchDone_ = std::max(lastBranchDone_, done_c);
        } else if (predicted == actual || inWrongPath()) {
            next_pc = actual;
            lastBranchDone_ = std::max(lastBranchDone_, done_c);
        } else {
            ++bpred_.mispredicts;
            const Cycle resolve = done_c + params_.redirectPenalty;
            e.commitReadyC = done_c;
            appendEntry(e);
            enterWrongPath(actual, resolve);
            ctx_.pc = predicted;   // speculate down the BTB target
            return;
        }
        break;
      }

      case OpType::Call: {
        const Cycle start = fuAvailable(intUnits_, dispatch);
        done_c = start + 1;
        bpred_.pushReturn(pc + 1);
        ctx_.callStack.push_back(pc + 1);
        next_pc = static_cast<std::uint64_t>(op.imm);
        break;
      }

      case OpType::Ret: {
        const Cycle start = fuAvailable(intUnits_, dispatch);
        done_c = start + 1;
        if (ctx_.callStack.empty()) {
            warn("core%u: return with empty call stack; halting", id_);
            drain();
            ctx_.halted = true;
            return;
        }
        const std::uint64_t actual = ctx_.callStack.back();
        ctx_.callStack.pop_back();
        const Addr predicted = bpred_.popReturn();
        if (predicted == actual || inWrongPath() ||
            predicted == kAddrInvalid) {
            next_pc = actual;
            if (predicted == kAddrInvalid) {
                fetchCycle_ = std::max(fetchCycle_,
                                       done_c + params_.redirectPenalty);
                fetchedThisCycle_ = 0;
            }
            lastBranchDone_ = std::max(lastBranchDone_, done_c);
        } else {
            ++bpred_.mispredicts;
            const Cycle resolve = done_c + params_.redirectPenalty;
            e.commitReadyC = done_c;
            appendEntry(e);
            enterWrongPath(actual, resolve);
            ctx_.pc = predicted;
            return;
        }
        break;
      }

      default:
        panic("unhandled op type %s", opTypeName(op.type));
    }

    if (e.commitReadyC < done_c)
        e.commitReadyC = done_c;
    appendEntry(e);
    ctx_.pc = next_pc;
}

/*
 * Decoded fetch path. This is fetchOne() re-expressed over the
 * pre-decoded stream: dispatch on OpKind instead of OpType, functional
 * unit and latency read from the DecodedOp, branch taken-targets
 * pre-resolved. Every timing computation, stat increment, predictor
 * access and memory-system call happens in the same order with the same
 * arguments as the reference path — the differential fuzzer
 * (tests/fuzz/) holds the two paths bit-identical. When changing either
 * path, change both.
 */
void
Core::fetchOneDecoded()
{
    const Program &prog = *ctx_.program;
    if (ctx_.pc >= prog.size()) {
        warn("core%u: pc %llu fell off program %s; halting", id_,
             static_cast<unsigned long long>(ctx_.pc), prog.name.c_str());
        drain();
        ctx_.halted = true;
        return;
    }

    const DecodedOp &op = dops_[ctx_.pc];
    const std::uint64_t pc = ctx_.pc;

    // Serializing ops never execute speculatively: on the wrong path
    // they stall fetch until the squash; on the correct path they drain
    // and apply their effect in program order.
    if (op.kind == OpKind::Serial) {
        if (inWrongPath()) {
            fetchCycle_ = specStack_.front().resolveAt;
            squash();
            return;
        }
        // The implied drain would blow the commit budget: retire what
        // the budget still allows and stop; a later run() fetches the
        // op. The deferred commit actions keep their timestamps, so the
        // simulation stream is unchanged.
        if (committed.value() + winSize() + 1 > commitStop_) {
            while (!winEmpty() && committed.value() < commitStop_)
                popHead();
            budgetStall_ = true;
            return;
        }
        // Timing: the op issues after its fetch and all older work.
        const Cycle fc = allocFetchSlot();
        ++fetched;
        drainAndApplySerializing(op.type, std::max(fc, lastCommitC_));
        ctx_.pc = pc + 1;
        return;
    }

    // Structural stalls: ROB, LQ, SQ.
    while (winSize() >= params_.robSize ||
           (op.kind == OpKind::Load && loadsInFlight_ >= params_.lqSize) ||
           (op.kind == OpKind::Store &&
            storesInFlight_ >= params_.sqSize)) {
        if (committed.value() >= commitStop_) {
            // Making room would exceed the commit budget.
            budgetStall_ = true;
            return;
        }
        if (winEmpty())
            panic("core%u: structural stall with empty window", id_);
        if (fetchCycle_ < winFront().commitC) {
            fetchCycle_ = winFront().commitC;
            fetchedThisCycle_ = 0;
            // The stall may have pushed us past a pending resolve point.
            if (inWrongPath() &&
                fetchCycle_ >= specStack_.front().resolveAt) {
                squash();
                return;
            }
        }
        popHead();
    }

    const Cycle fc = allocFetchSlot();
    ++fetched;
    if (inWrongPath())
        ++wrongPathFetched;

    // Build the entry in its ring slot (see fetchOne for the
    // partial-reset invariant).
    WinEntry &e = winNextSlot();
    e.seq = nextSeq_++;
    e.pcIndex = static_cast<std::uint32_t>(pc);
    e.type = op.type;
    e.commitReadyC = 0;
    e.isLoad = false;
    e.isStore = false;
    e.accessedMemory = false;
    e.tlbMiss = false;
    e.newIfetchLine = false;

    chargeIfetch(pc, e);

    const Cycle dispatch = fc + params_.dispatchLatency;
    std::uint64_t next_pc = pc + 1;
    Cycle done_c = 0;

    switch (op.kind) {
      case OpKind::Nop:
        done_c = dispatch;
        break;

      case OpKind::Alu: {
        const Cycle ready = std::max({dispatch, regReady(op.src1),
                                      regReady(op.src2)});
        const Cycle start = fuAvailable(*fuPools_[op.fuSel], ready);
        done_c = start + op.latency;
        const Cycle taint =
            taintTracked_ ? std::max(regTaintClear(op.src1),
                                     regTaintClear(op.src2))
                          : 0;
        writeReg(op.dst, aluResult(op), done_c, taint);
        break;
      }

      case OpKind::Load:
      case OpKind::Store: {
        const Addr va = effectiveAddress(op);
        e.vaddr = va;

        Cycle addr_ready = std::max({dispatch, regReady(op.base),
                                     regReady(op.index)});
        // STT: transmitters (loads/stores) with tainted address operands
        // are delayed until the taint clears.
        if (taintTracked_) {
            addr_ready = std::max({addr_ready, regTaintClear(op.base),
                                   regTaintClear(op.index)});
        }
        const Cycle issue = fuAvailable(memUnits_, addr_ready);

        // A wrong-path memory op whose issue time falls after the
        // mispredicted branch resolves never reaches the cache: the
        // squash kills it first.
        const bool squashed_before_issue =
            inWrongPath() && issue >= specStack_.front().resolveAt;

        if (op.kind == OpKind::Store) {
            e.isStore = true;
            const Cycle data_ready = std::max(issue, regReady(op.src1));
            e.storeValue = regValue(op.src1);
            bufferStore(va, e.storeValue, e.seq);
            if (!squashed_before_issue) {
                // Execute-time line prefetch (exclusive in baseline,
                // shared under MuonTrap); the write happens at commit.
                DataAccessResult r = memDataAccess(
                    va, pc, /*is_store=*/true, /*speculative=*/true,
                    issue);
                e.accessedMemory = true;
                e.tlbMiss = r.tlbMiss;
            }
            // Store completion does not wait for the prefetch; address +
            // data availability retire the op.
            done_c = data_ready + 1;
        } else {
            e.isLoad = true;
            // Store-to-load forwarding.
            if (const BufferedStore *s = findBufferedStore(va)) {
                ++forwardedLoads;
                done_c = issue + 1;
                writeReg(op.dst, s->value, done_c,
                         taintTracked_ ? regTaintClear(op.base) : 0);
                break;
            }

            const std::uint64_t value = memRead(va);
            Cycle done;
            bool accessed = true;

            if (squashed_before_issue) {
                // Issues too late to beat the squash: no cache access.
                e.accessedMemory = false;
                done_c = specStack_.front().resolveAt;
                writeReg(op.dst, value, done_c, 0);
                break;
            }

            // Speculative-shadow condition: see the reference path for
            // why inWrongPath() must be part of it.
            const bool spec_shadow =
                inWrongPath() || lastBranchDone_ > issue;
            const bool is_invisispec =
                params_.defense == CoreDefense::InvisiSpecSpectre ||
                params_.defense == CoreDefense::InvisiSpecFuture;
            if (is_invisispec && spec_shadow) {
                // Speculative InvisiSpec load: non-mutating probe now,
                // mutating exposure at the visibility point.
                const Cycle probe_lat = memDataProbe(va, issue);
                done = issue + probe_lat;
                if (inWrongPath()) {
                    // The exposure point falls after the squash: the
                    // spec-buffer entry is dropped there and the
                    // hierarchy is never touched.
                    accessed = false;
                } else {
                    const Cycle expose_start =
                        params_.defense == CoreDefense::InvisiSpecSpectre
                            ? std::max(done, lastBranchDone_)
                            : std::max(done, lastCommitC_);
                    DataAccessResult er = memDataAccess(
                        va, pc, false, false, expose_start);
                    ++exposures;
                    e.commitReadyC = expose_start + er.latency;
                    e.tlbMiss = er.tlbMiss;
                }
            } else if (params_.defense == CoreDefense::DelayOnMiss &&
                       spec_shadow && !memDataHitsPrivate(va)) {
                // Delay-on-miss: private-hierarchy hits proceed below;
                // a shadowed miss waits until it is non-speculative.
                ++delayedLoads;
                if (inWrongPath()) {
                    // Stalls past the squash: never reaches the caches.
                    done = specStack_.front().resolveAt;
                    accessed = false;
                } else {
                    const Cycle start = std::max(issue, lastBranchDone_);
                    DataAccessResult r = memDataAccess(
                        va, pc, false, /*speculative=*/false, start);
                    done = start + r.latency + delayMutationHook();
                    e.tlbMiss = r.tlbMiss;
                }
            } else {
                DataAccessResult r = memDataAccess(
                    va, pc, false, /*speculative=*/true, issue);
                if (r.nacked) {
                    if (inWrongPath()) {
                        // Never becomes non-speculative; completes only
                        // notionally, squashed before commit.
                        done = specStack_.front().resolveAt;
                        accessed = false;
                    } else {
                        // Retry once the access is definitely going to
                        // execute (§4.5): all older branches have
                        // resolved by then.
                        ++nackRetries;
                        const Cycle retry =
                            std::max(issue, lastBranchDone_) + 1;
                        DataAccessResult r2 = memDataAccess(
                            va, pc, false, /*speculative=*/false, retry);
                        done = retry + r2.latency;
                        e.tlbMiss = r2.tlbMiss;
                    }
                } else {
                    done = issue + r.latency;
                    e.tlbMiss = r.tlbMiss;
                }
            }
            e.accessedMemory = accessed;
            done_c = done;
            loadLatency.sample(static_cast<double>(done_c - issue));
            if (inWrongPath())
                ++wrongPathLoads;

            // STT taint: the loaded value is tainted until the load is
            // no longer speculative (wrong path: the squash itself, so
            // lower-bound at the resolve cycle).
            Cycle taint = 0;
            if (params_.defense == CoreDefense::SttSpectre)
                taint = std::max({lastBranchDone_, done,
                                  inWrongPath()
                                      ? specStack_.front().resolveAt
                                      : 0});
            else if (params_.defense == CoreDefense::SttFuture)
                taint = std::max({lastCommitC_, done,
                                  inWrongPath()
                                      ? specStack_.front().resolveAt
                                      : 0});
            writeReg(op.dst, value, done, taint);
        }
        break;
      }

      case OpKind::BraAlways: {
        // The reference path still reserves an ALU slot and folds the
        // (possibly set) source registers into readiness before
        // noticing BranchCond::Always; mirror that exactly.
        const Cycle ready = std::max({dispatch, regReady(op.src1),
                                      regReady(op.src2)});
        const Cycle start = fuAvailable(intUnits_, ready);
        done_c = start + 1;
        next_pc = op.target();
        break;
      }

      case OpKind::BraCond: {
        const Cycle ready = std::max({dispatch, regReady(op.src1),
                                      regReady(op.src2)});
        const Cycle start = fuAvailable(intUnits_, ready);
        done_c = start + 1;
        const bool actual = evalBranch(op);
        const bool predicted = bpred_.predictDirection(pc);
        if (!inWrongPath())
            bpred_.trainDirection(pc, actual);
        if (predicted == actual || inWrongPath()) {
            next_pc = actual ? op.target() : pc + 1;
            lastBranchDone_ = std::max(lastBranchDone_, done_c);
        } else {
            ++bpred_.mispredicts;
            const std::uint64_t correct = actual ? op.target() : pc + 1;
            const std::uint64_t wrong = actual ? pc + 1 : op.target();
            const Cycle resolve = done_c + params_.redirectPenalty;
            e.commitReadyC = done_c;
            appendEntry(e);
            enterWrongPath(correct, resolve);
            ctx_.pc = wrong;
            return;
        }
        break;
      }

      case OpKind::Jump: {
        const Cycle ready = std::max(dispatch, regReady(op.base));
        const Cycle start = fuAvailable(intUnits_, ready);
        done_c = start + 1;
        std::uint64_t actual = regValue(op.base);
        if (actual >= prog.size())
            actual = prog.size() - 1; // clamp wrong-path garbage
        const Addr predicted = bpred_.predictTarget(pc);
        if (!inWrongPath())
            bpred_.trainTarget(pc, actual);
        if (predicted == kAddrInvalid) {
            // No BTB entry: the front end stalls until resolution.
            next_pc = actual;
            fetchCycle_ = std::max(fetchCycle_,
                                   done_c + params_.redirectPenalty);
            fetchedThisCycle_ = 0;
            lastBranchDone_ = std::max(lastBranchDone_, done_c);
        } else if (predicted == actual || inWrongPath()) {
            next_pc = actual;
            lastBranchDone_ = std::max(lastBranchDone_, done_c);
        } else {
            ++bpred_.mispredicts;
            const Cycle resolve = done_c + params_.redirectPenalty;
            e.commitReadyC = done_c;
            appendEntry(e);
            enterWrongPath(actual, resolve);
            ctx_.pc = predicted;   // speculate down the BTB target
            return;
        }
        break;
      }

      case OpKind::Call: {
        const Cycle start = fuAvailable(intUnits_, dispatch);
        done_c = start + 1;
        bpred_.pushReturn(pc + 1);
        ctx_.callStack.push_back(pc + 1);
        next_pc = op.target();
        break;
      }

      case OpKind::Ret: {
        const Cycle start = fuAvailable(intUnits_, dispatch);
        done_c = start + 1;
        if (ctx_.callStack.empty()) {
            warn("core%u: return with empty call stack; halting", id_);
            drain();
            ctx_.halted = true;
            return;
        }
        const std::uint64_t actual = ctx_.callStack.back();
        ctx_.callStack.pop_back();
        const Addr predicted = bpred_.popReturn();
        if (predicted == actual || inWrongPath() ||
            predicted == kAddrInvalid) {
            next_pc = actual;
            if (predicted == kAddrInvalid) {
                fetchCycle_ = std::max(fetchCycle_,
                                       done_c + params_.redirectPenalty);
                fetchedThisCycle_ = 0;
            }
            lastBranchDone_ = std::max(lastBranchDone_, done_c);
        } else {
            ++bpred_.mispredicts;
            const Cycle resolve = done_c + params_.redirectPenalty;
            e.commitReadyC = done_c;
            appendEntry(e);
            enterWrongPath(actual, resolve);
            ctx_.pc = predicted;
            return;
        }
        break;
      }

      default:
        panic("unhandled op kind %u", static_cast<unsigned>(op.kind));
    }

    if (e.commitReadyC < done_c)
        e.commitReadyC = done_c;
    appendEntry(e);
    ctx_.pc = next_pc;
}

} // namespace mtrap

/**
 * @file
 * Tournament branch predictor matching Table 1: 2048-entry local
 * predictor, 8192-entry global (gshare-style) predictor, 2048-entry
 * chooser, 4096-entry BTB and a 16-entry return-address stack.
 *
 * Deliberately *not* tagged by ASID: like pre-mitigation hardware, the
 * predictor and BTB are shared across protection domains, which is what
 * makes the Spectre training attacks in workload/attacks.cc work.
 * (MuonTrap leaves predictor isolation to orthogonal mechanisms, §4.9.)
 */

#ifndef MTRAP_CPU_BRANCH_PREDICTOR_HH
#define MTRAP_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/buffer_pool.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mtrap
{

class Serializer;
class Deserializer;

/** Predictor sizing. */
struct BranchPredictorParams
{
    unsigned localEntries = 2048;
    unsigned localHistoryBits = 10;
    unsigned globalEntries = 8192;
    unsigned chooserEntries = 2048;
    unsigned btbEntries = 4096;
    unsigned rasEntries = 16;
};

/**
 * Tournament predictor with BTB and RAS. PCs are instruction indices
 * (the core's view); the predictor does not care about their scale.
 */
class BranchPredictor
{
  public:
    BranchPredictor(const BranchPredictorParams &params, StatGroup *parent);

    /** Predict the direction of a conditional branch at `pc`. */
    bool predictDirection(Addr pc);

    /**
     * Train with the actual outcome. Call for every executed conditional
     * branch on the committed path.
     */
    void trainDirection(Addr pc, bool taken);

    /** Predicted target of an indirect branch at `pc`; kAddrInvalid if
     *  the BTB has no entry. */
    Addr predictTarget(Addr pc);

    /** Install/refresh a BTB entry. */
    void trainTarget(Addr pc, Addr target);

    /** RAS push on call. */
    void pushReturn(Addr return_pc);

    /** RAS pop on return; kAddrInvalid when empty. */
    Addr popReturn();

    /** Snapshot/restore of the speculation-visible state (global history
     *  and RAS) around wrong-path execution. */
    struct Snapshot
    {
        std::uint64_t globalHistory = 0;
        std::vector<Addr> ras;
        unsigned rasTop = 0;
    };
    Snapshot snapshot() const;
    /** Snapshot into existing storage (reuses the RAS vector's capacity;
     *  the checkpoint-pool path, taken on every mispredict). */
    void snapshotInto(Snapshot &s) const;
    void restore(const Snapshot &s);

    /** Checkpoint every table (histories, counters, BTB, RAS). */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    unsigned counterIndexLocal(Addr pc);
    unsigned counterIndexGlobal(Addr pc) const;

    static bool taken2bit(std::uint8_t c) { return c >= 2; }
    static void bump(std::uint8_t &c, bool up);

    BranchPredictorParams params_;
    std::vector<std::uint16_t> localHistory_;
    std::vector<std::uint8_t> localCounters_;
    std::vector<std::uint8_t> globalCounters_;
    std::vector<std::uint8_t> chooser_;
    std::uint64_t globalHistory_ = 0;

    struct BtbEntry
    {
        Addr pc = kAddrInvalid;
        Addr target = kAddrInvalid;
    };
    /** 4096 x 16 B: pool-allocated, rebuilt with every System. */
    std::vector<BtbEntry, PoolAllocator<BtbEntry>> btb_;

    std::vector<Addr> ras_;
    unsigned rasTop_ = 0;

    StatGroup stats_;

  public:
    Counter lookups;
    Counter mispredicts;
    Counter btbHits;
    Counter btbMisses;
    Formula mispredictRate;
};

} // namespace mtrap

#endif // MTRAP_CPU_BRANCH_PREDICTOR_HH

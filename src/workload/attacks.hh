/**
 * @file
 * Executable implementations of the paper's six attack vignettes
 * (attack boxes 1-6). Each attack builds fresh systems, runs the
 * attacker/victim choreography for secret values 0 and 1, and reports
 * whether timing measurements recover the secret.
 *
 * Under Scheme::Baseline every attack must leak; under Scheme::MuonTrap
 * every attack must be blocked — the security test suite and the
 * security_matrix bench assert exactly that.
 *
 * Choreography is driven from C++ (prime, run victim gadget, measure)
 * rather than from a single program, mirroring how the attacks are
 * described: the attacker controls when the victim runs and measures
 * with a perfect stopwatch (MemSystem::timeProbe), which only makes the
 * attacks *easier* — a defence that stops the stopwatch version stops
 * the noisy-timer version a fortiori.
 */

#ifndef MTRAP_WORKLOAD_ATTACKS_HH
#define MTRAP_WORKLOAD_ATTACKS_HH

#include <string>
#include <vector>

#include "defense/scheme.hh"

namespace mtrap
{

/** Result of one attack experiment. */
struct AttackOutcome
{
    std::string attack;
    std::string scheme;
    /** Secret recovered for both secret=0 and secret=1 runs. */
    bool leaked = false;
    /** Recovered bits (255 = indistinguishable). */
    unsigned recovered0 = 255;
    unsigned recovered1 = 255;
    /** Representative probe timings from the secret=1 run. */
    Cycle probe0Time = 0;
    Cycle probe1Time = 0;
    std::string detail;
};

/**
 * Every attack takes the scheme to attack and an optional MuonTrap
 * configuration override (`mt_override`), which replaces the scheme's
 * memory-side configuration on the Table-1 system. The override is how
 * the ablation security tests show that each sub-mechanism is load-
 * bearing: e.g. full MuonTrap minus commit-time prefetching must leak
 * through attack 5 again.
 */

/** Attack 1: Spectre prime-and-probe through the data cache. */
AttackOutcome runSpectrePrimeProbe(Scheme s,
                                   const MuonTrapConfig *mt_override
                                       = nullptr);

/** Attack 2: inclusion-policy attack — evicting attacker-visible lines
 *  from the L1 via speculative fills. */
AttackOutcome runInclusionPolicyAttack(Scheme s,
                                       const MuonTrapConfig *mt_override
                                           = nullptr);

/** Attack 3: shared-data attack — speculatively demoting a remote M/E
 *  line and timing the owner's next store (two cores). */
AttackOutcome runSharedDataAttack(Scheme s,
                                  const MuonTrapConfig *mt_override
                                      = nullptr);

/** Attack 4: filter-cache coherency attack — observing the victim's
 *  speculative copy through coherence-grant timing (two cores). */
AttackOutcome runFilterCacheCoherencyAttack(
    Scheme s, const MuonTrapConfig *mt_override = nullptr);

/** Attack 5: prefetcher attack — speculative stride training leaking
 *  through prefetched lines. */
AttackOutcome runPrefetcherAttack(Scheme s,
                                  const MuonTrapConfig *mt_override
                                      = nullptr);

/** Attack 6: instruction-cache attack — secret-dependent speculative
 *  control flow observed through I-cache timing. */
AttackOutcome runIcacheAttack(Scheme s,
                              const MuonTrapConfig *mt_override
                                  = nullptr);

/**
 * Spectre variant 2 (branch-target injection, §7.1/§4.9): the attacker
 * trains the shared BTB so the victim's indirect call speculatively
 * jumps to a *gadget the attacker chose*, which loads a secret-indexed
 * probe line. The paper notes BTB isolation (Arm v8.5 / Intel eIBRS) as
 * the orthogonal fix for the *injection*; MuonTrap's contribution is
 * that even with a poisoned BTB the cache side *channel* is closed.
 */
AttackOutcome runSpectreBtbInjection(Scheme s,
                                     const MuonTrapConfig *mt_override
                                         = nullptr);

/**
 * Attack 7: cross-core covert channel through the coherence bus. The
 * sender's *committed* store steals write ownership of a receiver-owned
 * line; the receiver reads the bit off store-ownership latency. Pure
 * architectural channel — the negative control of the matrix: every
 * speculation defence leaks it, by design.
 */
AttackOutcome runBusCovertChannel(Scheme s,
                                  const MuonTrapConfig *mt_override
                                      = nullptr);

/** Attack 8: cross-core channel through shared prefetcher training
 *  state — the victim's speculative strides prefetch into the shared
 *  L2, where a second core's receiver can time them. */
AttackOutcome runPrefetchCovertChannel(Scheme s,
                                       const MuonTrapConfig *mt_override
                                           = nullptr);

/** Attack 9: prime-and-probe on the shared L2 with no flush primitive:
 *  pure set-conflict eviction timing. Both candidate lines share an L1
 *  set, so only an L2 conflict explains the signal. */
AttackOutcome runL2PrimeProbe(Scheme s,
                              const MuonTrapConfig *mt_override
                                  = nullptr);

/** Attack 10: speculative-store channel — a transient store is
 *  forwarded to a younger load, laundering the secret's taint before it
 *  reaches the probe load (the documented STT forwarding gap). */
AttackOutcome runSpecStoreChannel(Scheme s,
                                  const MuonTrapConfig *mt_override
                                      = nullptr);

/** All paper attacks plus the v2 injection variant and the extended
 *  choreographies (7-10), in matrix row order. */
std::vector<AttackOutcome> runAllAttacks(Scheme s);

/**
 * Declared expected outcome for every (attack, scheme) cell of the
 * security matrix: true = the attack leaks under that scheme. This is
 * the contract the harness verdict and the security tests assert the
 * live outcomes against (tests/security/matrix_test.cc pins the same
 * table literally).
 */
bool expectedLeak(const std::string &attack, Scheme s);

/** The scheme columns of the security matrix, in presentation order. */
const std::vector<Scheme> &securityMatrixSchemes();

} // namespace mtrap

#endif // MTRAP_WORKLOAD_ATTACKS_HH

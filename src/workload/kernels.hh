/**
 * @file
 * Synthetic workload generator: kernel library + profile-driven program
 * construction.
 *
 * SPEC CPU2006 and Parsec binaries cannot ship with this repository, so
 * every benchmark is modelled as a *profile*: a weighted mix of memory /
 * compute / control kernels whose parameters (footprints, locality
 * class, memory-level parallelism, branch behaviour, code size, sharing)
 * reproduce the sensitivity the paper reports for that benchmark (see
 * DESIGN.md §5 for the substitution argument). Profiles are compiled
 * into micro-ISA programs; multi-threaded profiles emit one program per
 * core over a shared address space.
 *
 * Kernel catalogue:
 *  - stream:  sequential line-stride loads/stores (prefetch friendly)
 *  - random:  LCG-indexed independent loads (high MLP, prefetch hostile)
 *  - chase:   dependent pointer chasing over a pre-built ring
 *  - compute: integer/FP ALU chains
 *  - branchy: data-dependent (hard-to-predict) branches
 *  - shared:  accesses to a region shared by all threads (coherence)
 *
 * Large code footprints are modelled by cloning the loop body across
 * many code blocks chained with unconditional branches.
 */

#ifndef MTRAP_WORKLOAD_KERNELS_HH
#define MTRAP_WORKLOAD_KERNELS_HH

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "isa/program.hh"

namespace mtrap
{

class MemSystem;

/** Tunable description of one benchmark. */
struct WorkloadProfile
{
    std::string name = "synthetic";
    unsigned threads = 1;

    // Kernel mix: relative instance counts per loop body.
    unsigned streamOps = 0;
    unsigned randomOps = 0;
    unsigned chaseOps = 0;
    /** Indirect accesses: an independent pointer-table load feeding a
     *  dependent dereference (the astar/omnetpp adjacency pattern whose
     *  MLP load-restricting defences destroy, §6.3). */
    unsigned indirectOps = 0;
    unsigned computeOps = 8;
    unsigned branchyOps = 0;
    unsigned sharedOps = 0;

    /** Private data footprint per thread, bytes (power of two). */
    std::uint64_t dataFootprint = 64 * 1024;
    /** Stream advance per op in bytes: 8 gives 8 accesses per line
     *  (high spatial locality); 64*k strides k lines per op. */
    unsigned streamStrideBytes = 8;
    /** Fraction [0,100] of random/branchy accesses that stay inside the
     *  hot region (temporal locality); the rest roam the footprint. */
    unsigned hotPct = 90;
    /** Hot-region size, bytes (power of two, <= dataFootprint). */
    std::uint64_t hotBytes = 16 * 1024;
    /** Pointer-chase ring size, bytes (power of two); 0 = use
     *  dataFootprint. */
    std::uint64_t chaseBytes = 0;
    /** Independent random streams interleaved (memory-level
     *  parallelism). */
    unsigned mlp = 1;
    /** Fraction [0,100] of stream/shared memory ops that are stores. */
    unsigned storePct = 0;
    /** Code blocks the body is cloned into (instruction footprint). */
    unsigned codeBlocks = 1;
    /** Fraction [0,100] of branchy branches that are data-dependent
     *  (the rest are perfectly biased). */
    unsigned branchRandomPct = 50;
    /** Compute flavour: fraction [0,100] of compute ops that are FP. */
    unsigned fpPct = 0;
    /** Multiply fraction [0,100] of compute ops. */
    unsigned mulPct = 0;

    // Multi-threaded (Parsec-like) knobs.
    /** Shared region size, bytes (power of two); 0 = none. */
    std::uint64_t sharedFootprint = 0;
    /** Fraction [0,100] of shared ops that are stores (invalidation
     *  traffic). */
    unsigned sharedStorePct = 0;

    std::uint64_t seed = 42;
};

/** A ready-to-run workload: one program per core plus memory setup. */
struct Workload
{
    std::string name;
    Asid asid = 1;
    std::vector<Program> threadPrograms;
    /** Pre-run functional memory initialisation (chase chains etc.). */
    std::function<void(MemSystem &)> init;

    unsigned threads() const
    {
        return static_cast<unsigned>(threadPrograms.size());
    }
};

/** Virtual-address plan for generated programs (one process). */
struct WorkloadLayout
{
    static constexpr Addr kPrivateBase = 0x10'0000'0000ull;
    static constexpr Addr kSharedBase = 0x20'0000'0000ull;
    static constexpr Addr kChaseBase = 0x30'0000'0000ull;
    static constexpr Addr kCodeBase = 0x40'0000ull;
    /** Per-thread private region stride. */
    static constexpr Addr kThreadStride = 0x1'0000'0000ull;
};

/**
 * Compile a profile into a runnable workload. `asid` selects the
 * process's address space: multiprogrammed (scheduled) runs give each
 * job a distinct asid so their footprints do not alias.
 */
Workload buildWorkload(const WorkloadProfile &profile, Asid asid = 1);

/**
 * Build just one thread's program (unit tests / examples that want a
 * bare Program).
 */
Program buildThreadProgram(const WorkloadProfile &profile,
                           unsigned thread_id);

/** Initialise the pointer-chase ring for `profile` in `asid`'s address
 *  space (called by Workload::init; exposed for tests). */
void initChaseRing(MemSystem &mem, Asid asid, const WorkloadProfile &p,
                   unsigned thread_id);

} // namespace mtrap

#endif // MTRAP_WORKLOAD_KERNELS_HH

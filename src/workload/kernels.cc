#include "workload/kernels.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/mem_system.hh"

namespace mtrap
{

namespace
{

// Register conventions for generated programs.
constexpr unsigned kRZero = 0;      // never written, always 0
constexpr unsigned kRStreamIdx = 1;
constexpr unsigned kRStreamTmp = 2;
constexpr unsigned kRLcgBase = 3;   // r3..r8: LCG states (MLP streams)
constexpr unsigned kRChase = 9;
constexpr unsigned kRPrivBase = 10;
constexpr unsigned kRPrivMask = 11;
constexpr unsigned kRSharedIdx = 12;
constexpr unsigned kRSharedTmp = 13;
constexpr unsigned kRBranchTmp = 14;
constexpr unsigned kRAccA = 15;
constexpr unsigned kRAccB = 16;
constexpr unsigned kRAccC = 17;
constexpr unsigned kRStoreVal = 18;
constexpr unsigned kRAddrTmp = 20;
constexpr unsigned kRLcgMul = 21;
constexpr unsigned kRSharedBase = 22;
constexpr unsigned kRSharedMask = 23;
constexpr unsigned kRHotMask = 24;
constexpr unsigned kRChaseMask = 25;
constexpr unsigned kRChaseBase = 26;
constexpr unsigned kRRandTmp = 27;

constexpr std::uint64_t kLcgMul = 6364136223846793005ull;
constexpr std::uint64_t kLcgAdd = 1442695040888963407ull;
constexpr unsigned kMaxMlp = 6;

Addr
privateBase(unsigned thread_id)
{
    return WorkloadLayout::kPrivateBase
           + thread_id * WorkloadLayout::kThreadStride;
}

Addr
chaseBase(unsigned thread_id)
{
    return WorkloadLayout::kChaseBase
           + thread_id * WorkloadLayout::kThreadStride;
}

/** Emits one loop body worth of kernel fragments in a shuffled,
 *  deterministic interleave. */
class BodyEmitter
{
  public:
    BodyEmitter(ProgramBuilder &b, const WorkloadProfile &p,
                unsigned thread_id, Rng &rng, unsigned block_id)
        : b_(b), p_(p), rng_(rng), block_(block_id)
    {
        (void)thread_id;
    }

    void
    emitBody()
    {
        // Build the fragment schedule.
        std::vector<unsigned> sched;
        auto push = [&sched](unsigned kind, unsigned count) {
            for (unsigned i = 0; i < count; ++i)
                sched.push_back(kind);
        };
        push(0, p_.streamOps);
        push(1, p_.randomOps);
        push(2, p_.chaseOps);
        push(3, p_.computeOps);
        push(4, p_.branchyOps);
        push(5, p_.sharedOps);
        push(6, p_.indirectOps);
        // Deterministic shuffle.
        for (std::size_t i = sched.size(); i > 1; --i)
            std::swap(sched[i - 1], sched[rng_.below(i)]);

        for (unsigned kind : sched) {
            switch (kind) {
              case 0: stream(); break;
              case 1: random(); break;
              case 2: chase(); break;
              case 3: compute(); break;
              case 4: branchy(); break;
              case 5: shared(); break;
              case 6: indirect(); break;
            }
        }
    }

  private:
    void
    stream()
    {
        // addr = privBase + streamIdx; idx += stride; idx &= mask.
        // With the default 8-byte stride, eight consecutive ops touch
        // the same line (spatial locality); large strides model
        // line-skipping stencils.
        b_.load(kRStreamTmp, kRPrivBase, 0, kRStreamIdx, 0);
        if (p_.storePct && rng_.below(100) < p_.storePct)
            b_.store(kRStreamTmp, kRPrivBase, 8, kRStreamIdx, 0);
        b_.addi(kRStreamIdx, kRStreamIdx,
                static_cast<std::int64_t>(p_.streamStrideBytes));
        // AND with a register mask (kRPrivMask).
        MicroOp m;
        m.type = OpType::IntAlu;
        m.alu = AluOp::And;
        m.dst = kRStreamIdx;
        m.src1 = kRStreamIdx;
        m.src2 = kRPrivMask;
        b_.emit(m);
    }

    void
    random()
    {
        const unsigned streams = std::min(std::max(1u, p_.mlp), kMaxMlp);
        const unsigned r = kRLcgBase + (randomRound_++ % streams);
        // r = r * LCGMUL + LCGADD (register-held multiplier)
        b_.mul(r, r, kRLcgMul);
        b_.addi(r, r, static_cast<std::int64_t>(kLcgAdd & 0x7fffffff));
        // idx = (r >> 17) & mask. Statically partition accesses between
        // the hot region and the full footprint per hotPct (temporal
        // locality knob).
        const bool hot = rng_.below(100) < p_.hotPct;
        b_.shri(kRAddrTmp, r, 17);
        MicroOp m;
        m.type = OpType::IntAlu;
        m.alu = AluOp::And;
        m.dst = kRAddrTmp;
        m.src1 = kRAddrTmp;
        m.src2 = hot ? kRHotMask : kRPrivMask;
        b_.emit(m);
        // Load into a dedicated register: the index register must stay
        // intact for the (optional) store's address below.
        b_.load(kRRandTmp, kRPrivBase, 0, kRAddrTmp, 0);
        if (p_.storePct && rng_.below(100) < p_.storePct)
            b_.store(kRRandTmp, kRPrivBase, 16, kRAddrTmp, 0);
    }

    void
    chase()
    {
        // Dependent load: the ring stores absolute virtual addresses.
        b_.load(kRChase, kRChase, 0);
        // Real traversal loops branch on the loaded pointer ("while
        // (node)...", "if (node->key < x)..."), so the branch resolves
        // only after the load returns. This is precisely what makes
        // load-restricting schemes (STT/NDA) expensive on pointer
        // chasing (§6.3) and opens speculation windows after each hop.
        b_.shri(kRBranchTmp, kRChase, 6);
        b_.andi(kRBranchTmp, kRBranchTmp, 1);
        const std::string skip = strfmt("chs_%u_%u", block_, labelId_++);
        b_.braEq(skip, kRBranchTmp, kRZero);
        b_.label(skip);
    }

    void
    indirect()
    {
        // ptr = table[random]; value = *ptr. The table loads are
        // independent (memory-level parallelism); the dereferences
        // depend on them. Load-restricting defences delay every
        // dereference until the pointer is untainted, serialising what
        // the baseline overlaps.
        const unsigned streams = std::min(std::max(1u, p_.mlp), kMaxMlp);
        const unsigned r = kRLcgBase + (randomRound_++ % streams);
        b_.mul(r, r, kRLcgMul);
        b_.addi(r, r, static_cast<std::int64_t>(kLcgAdd & 0x7fffffff));
        b_.shri(kRAddrTmp, r, 17);
        MicroOp m;
        m.type = OpType::IntAlu;
        m.alu = AluOp::And;
        m.dst = kRAddrTmp;
        m.src1 = kRAddrTmp;
        m.src2 = kRChaseMask;
        b_.emit(m);
        b_.andi(kRAddrTmp, kRAddrTmp, -64); // node-aligned table slot
        b_.load(kRAddrTmp, kRChaseBase, 0, kRAddrTmp, 0);
        b_.load(kRAddrTmp, kRAddrTmp, 0);
    }

    void
    compute()
    {
        // Three rotating accumulator chains (ILP ~3) that consume the
        // most recent memory results, so load latency sits on real
        // dataflow instead of being hidden behind one serial ALU chain.
        const unsigned acc = kRAccA + (computeRound_ % 3);
        const unsigned feed =
            (computeRound_ % 2) ? kRStreamTmp : kRRandTmp;
        ++computeRound_;
        const bool fp = rng_.below(100) < p_.fpPct;
        const bool mul = !fp && rng_.below(100) < p_.mulPct;
        if (fp)
            b_.fp(acc, acc, feed);
        else if (mul)
            b_.mul(acc, acc, feed);
        else
            b_.add(acc, acc, feed);
    }

    void
    branchy()
    {
        const bool random_branch = rng_.below(100) < p_.branchRandomPct;
        if (random_branch) {
            // Branch on a data-dependent bit: load a pseudo-random word
            // from the private region and test bit 0. Unwritten memory
            // reads as an address hash, so outcomes are ~uniform.
            b_.mul(kRBranchTmp, kRLcgBase, kRLcgMul);
            b_.shri(kRAddrTmp, kRBranchTmp, 23);
            MicroOp m;
            m.type = OpType::IntAlu;
            m.alu = AluOp::And;
            m.dst = kRAddrTmp;
            m.src1 = kRAddrTmp;
            m.src2 = kRHotMask;
            b_.emit(m);
            b_.load(kRBranchTmp, kRPrivBase, 24, kRAddrTmp, 0);
            b_.andi(kRBranchTmp, kRBranchTmp, 1);
        } else {
            // Perfectly biased: condition register is always zero.
            b_.movi(kRBranchTmp, 0);
        }
        const std::string skip = strfmt("skip_%u_%u", block_, labelId_++);
        b_.braNe(skip, kRBranchTmp, kRZero);
        b_.add(kRAccB, kRAccB, kRAccA);
        b_.label(skip);
    }

    void
    shared()
    {
        if (!p_.sharedFootprint)
            return;
        // idx advances densely through the shared region from a
        // per-thread starting offset; threads periodically cross each
        // other's ranges, generating coherence traffic without the
        // line-per-op invalidation storms real sharing doesn't have.
        b_.addi(kRSharedIdx, kRSharedIdx, 8);
        MicroOp m;
        m.type = OpType::IntAlu;
        m.alu = AluOp::And;
        m.dst = kRSharedIdx;
        m.src1 = kRSharedIdx;
        m.src2 = kRSharedMask;
        b_.emit(m);
        b_.load(kRSharedTmp, kRSharedBase, 0, kRSharedIdx, 0);
        if (p_.sharedStorePct && rng_.below(100) < p_.sharedStorePct)
            b_.store(kRSharedTmp, kRSharedBase, 0, kRSharedIdx, 0);
    }

    ProgramBuilder &b_;
    const WorkloadProfile &p_;
    Rng &rng_;
    unsigned block_;
    unsigned randomRound_ = 0;
    unsigned computeRound_ = 0;
    unsigned labelId_ = 0;
};

} // namespace

Program
buildThreadProgram(const WorkloadProfile &p, unsigned thread_id)
{
    if (!isPow2(p.dataFootprint))
        fatal("workload %s: dataFootprint must be a power of two",
              p.name.c_str());
    if (p.sharedFootprint && !isPow2(p.sharedFootprint))
        fatal("workload %s: sharedFootprint must be a power of two",
              p.name.c_str());

    Rng rng(p.seed * 7919 + thread_id * 131 + 17);
    ProgramBuilder b(strfmt("%s.t%u", p.name.c_str(), thread_id),
                     WorkloadLayout::kCodeBase);

    // ---- Preamble: constants and bases ---------------------------------
    b.movi(kRStreamIdx, 0);
    b.movi(kRPrivBase, static_cast<std::int64_t>(privateBase(thread_id)));
    // Masks keep word-granularity bits so 8-byte advances are not
    // snapped back to the line start (footprint - 8, not - 64).
    b.movi(kRPrivMask,
           static_cast<std::int64_t>(p.dataFootprint - 8));
    const std::uint64_t hot = std::min(p.hotBytes, p.dataFootprint);
    if (!isPow2(hot))
        fatal("workload %s: hotBytes must be a power of two",
              p.name.c_str());
    b.movi(kRHotMask, static_cast<std::int64_t>(hot - 8));
    b.movi(kRLcgMul, static_cast<std::int64_t>(kLcgMul));
    const unsigned streams = std::min(std::max(1u, p.mlp), kMaxMlp);
    for (unsigned s = 0; s < streams; ++s)
        b.movi(kRLcgBase + s,
               static_cast<std::int64_t>(rng.next() | 1));
    b.movi(kRChase, static_cast<std::int64_t>(chaseBase(thread_id)));
    b.movi(kRChaseBase, static_cast<std::int64_t>(chaseBase(thread_id)));
    const std::uint64_t chase_bytes =
        p.chaseBytes ? p.chaseBytes : p.dataFootprint;
    b.movi(kRChaseMask,
           static_cast<std::int64_t>(chase_bytes - 8));
    b.movi(kRAccA, 1);
    b.movi(kRAccB, 2);
    b.movi(kRAccC, 3);
    b.movi(kRStoreVal, 0x5a);
    if (p.sharedFootprint) {
        b.movi(kRSharedBase,
               static_cast<std::int64_t>(WorkloadLayout::kSharedBase));
        b.movi(kRSharedMask,
               static_cast<std::int64_t>(p.sharedFootprint - 8));
        // Threads walk the same shared lines a small distance apart, so
        // one thread's stores invalidate lines its peers are reading —
        // migratory sharing.
        b.movi(kRSharedIdx,
               static_cast<std::int64_t>((thread_id * 2 * kLineBytes)
                                         & (p.sharedFootprint - 1)));
    }

    // ---- Body blocks -----------------------------------------------------
    const unsigned blocks = std::max(1u, p.codeBlocks);
    b.label("top");
    for (unsigned blk = 0; blk < blocks; ++blk) {
        BodyEmitter em(b, p, thread_id, rng, blk);
        em.emitBody();
        if (blk + 1 < blocks) {
            // Chain into the next block (sequential fall-through would
            // do, but the explicit branch keeps blocks recognisable and
            // exercises the front end).
            const std::string next = strfmt("blk_%u", blk + 1);
            b.bra(next);
            b.label(next);
        }
    }
    b.bra("top");
    // Unreachable, but keeps the program well-formed for tooling.
    b.halt();
    return b.take();
}

void
initChaseRing(MemSystem &mem, Asid asid, const WorkloadProfile &p,
              unsigned thread_id)
{
    if (!p.chaseOps && !p.indirectOps)
        return;
    const std::uint64_t bytes = p.chaseBytes ? p.chaseBytes
                                             : p.dataFootprint;
    const std::uint64_t nodes =
        std::max<std::uint64_t>(2, bytes / kLineBytes);
    const Addr base = chaseBase(thread_id);

    // Sattolo's algorithm: a single-cycle random permutation.
    std::vector<std::uint64_t> next(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        next[i] = i;
    Rng rng(p.seed * 31 + thread_id + 5);
    for (std::uint64_t i = nodes - 1; i > 0; --i)
        std::swap(next[i], next[rng.below(i)]);
    // next[] is now a permutation with one cycle through all nodes when
    // read as succ(i) = next[i]; write the ring into memory.
    for (std::uint64_t i = 0; i < nodes; ++i)
        mem.write(asid, base + i * kLineBytes,
                  base + next[i] * kLineBytes);
}

Workload
buildWorkload(const WorkloadProfile &profile, Asid asid)
{
    Workload w;
    w.name = profile.name;
    w.asid = asid;
    for (unsigned t = 0; t < std::max(1u, profile.threads); ++t)
        w.threadPrograms.push_back(buildThreadProgram(profile, t));
    WorkloadProfile p = profile;
    w.init = [p, asid](MemSystem &mem) {
        for (unsigned t = 0; t < std::max(1u, p.threads); ++t)
            initChaseRing(mem, asid, p, t);
    };
    return w;
}

} // namespace mtrap

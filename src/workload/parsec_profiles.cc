#include "workload/parsec_profiles.hh"

#include "common/log.hh"

namespace mtrap
{

namespace
{

struct ParsecEntry
{
    const char *name;
    WorkloadProfile profile;
};

WorkloadProfile
make(const char *name, unsigned stream, unsigned random, unsigned chase,
     unsigned compute, unsigned branchy, unsigned shared,
     std::uint64_t footprint, std::uint64_t shared_footprint,
     unsigned shared_store_pct, unsigned mlp, unsigned store_pct,
     unsigned code_blocks, unsigned fp_pct)
{
    WorkloadProfile p;
    p.name = name;
    p.threads = 4;
    p.streamOps = stream;
    p.randomOps = random;
    p.chaseOps = chase;
    p.computeOps = compute;
    p.branchyOps = branchy;
    p.sharedOps = shared;
    p.dataFootprint = footprint;
    p.sharedFootprint = shared_footprint;
    p.sharedStorePct = shared_store_pct;
    p.mlp = mlp;
    p.storePct = store_pct;
    p.codeBlocks = code_blocks;
    p.branchRandomPct = 30;
    p.fpPct = fp_pct;
    p.seed = 2000 + static_cast<std::uint64_t>(name[0]) * 7
             + static_cast<std::uint64_t>(name[2]);
    // Parsec kernels are loop-dense with strong spatial locality, which
    // is exactly why a 1-cycle L0 helps them (fig 4); per-benchmark
    // deviations below.
    p.streamStrideBytes = 8;
    p.hotPct = 90;
    p.hotBytes = 16 * 1024;
    p.chaseBytes = std::min<std::uint64_t>(p.dataFootprint, 64 * 1024);
    return p;
}

ParsecEntry
tuned(const char *name, WorkloadProfile p)
{
    // Locality-class tweaks on top of the shared defaults. Real Parsec
    // sharing is mostly read sharing with occasional migratory writes,
    // so the shared-store fractions stay modest.
    const std::string n = name;
    if (n == "canneal") {
        p.hotPct = 75;
        p.hotBytes = 64 * 1024;
        p.sharedStorePct = 10;
    } else if (n == "freqmine") {
        p.hotPct = 80;
        p.hotBytes = 32 * 1024;
        p.chaseBytes = 256 * 1024;
        p.sharedStorePct = 8;
    } else if (n == "streamcluster") {
        p.hotPct = 85;
        p.streamStrideBytes = 16;
        p.sharedStorePct = 10;
    } else if (n == "ferret") {
        p.sharedStorePct = 20;
    } else if (n == "fluidanimate") {
        p.sharedStorePct = 15;
    } else if (n == "blackscholes" || n == "swaptions") {
        // Tiny per-task private state: partially L0-resident.
        p.hotBytes = 4 * 1024;
        p.chaseBytes = 2 * 1024;
        p.sharedStorePct = 2;
    }
    return ParsecEntry{name, p};
}

const std::vector<ParsecEntry> &
table()
{
    static const std::vector<ParsecEntry> t = {
        // blackscholes: embarrassingly parallel FP on small private
        // slices; load-latency bound -> enjoys the 1-cycle L0.
        tuned("blackscholes", make("blackscholes", 2, 0, 1, 12, 1, 1,
                              32 * 1024, 64 * 1024, 5, 1, 10, 1, 70)),
        // canneal: random accesses over a huge shared graph with
        // occasional swaps (shared stores).
        tuned("canneal", make("canneal", 0, 5, 2, 4, 1, 4,
                         8 * 1024 * 1024, 8 * 1024 * 1024, 20, 3, 5, 2,
                         10)),
        // ferret: similarity-search pipeline — heavy read sharing and
        // hand-offs; most coherence-sensitive (fig 8).
        tuned("ferret", make("ferret", 2, 2, 1, 6, 1, 4,
                        1 * 1024 * 1024, 2 * 1024 * 1024, 35, 2, 10, 3,
                        30)),
        // fluidanimate: particle grid, neighbour sharing, noticeable
        // code footprint (ifcache dip in fig 8).
        tuned("fluidanimate", make("fluidanimate", 4, 1, 0, 8, 1, 3,
                              1 * 1024 * 1024, 2 * 1024 * 1024, 25, 2, 25,
                              10, 60)),
        // freqmine: FP-growth over big shared trees — collapses with a
        // tiny filter (fig 5) due to high in-flight line count.
        tuned("freqmine", make("freqmine", 1, 6, 3, 4, 2, 2,
                          8 * 1024 * 1024, 4 * 1024 * 1024, 10, 5, 10, 3,
                          0)),
        // streamcluster: streaming distance computations over shared
        // points; tiny filters catastrophic (fig 5), coherence-sensitive
        // (fig 8).
        tuned("streamcluster", make("streamcluster", 7, 2, 0, 5, 0, 5,
                               1 * 1024 * 1024, 8 * 1024 * 1024, 15, 5,
                               10, 1, 50)),
        // swaptions: Monte-Carlo pricing — compute-dominated, tiny
        // private state.
        tuned("swaptions", make("swaptions", 1, 1, 0, 14, 1, 1,
                           32 * 1024, 64 * 1024, 5, 1, 10, 2, 70)),
    };
    return t;
}

} // namespace

const std::vector<std::string> &
parsecBenchmarkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &e : table())
            v.push_back(e.name);
        return v;
    }();
    return names;
}

WorkloadProfile
parsecProfile(const std::string &name, unsigned threads)
{
    for (const auto &e : table()) {
        if (name == e.name) {
            WorkloadProfile p = e.profile;
            p.threads = threads;
            return p;
        }
    }
    fatal("unknown Parsec profile '%s'", name.c_str());
}

Workload
buildParsecWorkload(const std::string &name, unsigned threads)
{
    return buildWorkload(parsecProfile(name, threads));
}

} // namespace mtrap

/**
 * @file
 * Parsec-like synthetic multi-threaded profiles (4 threads by default,
 * matching the paper's Parsec evaluation on 4 cores with simsmall).
 *
 * Parameters encode what figures 4/5/6/8 report per benchmark:
 * streamcluster and freqmine collapse with a tiny filter cache (fig 5);
 * ferret and streamcluster are the most coherence-sensitive (fig 8);
 * fluidanimate takes the instruction-filter hit (fig 8); blackscholes /
 * swaptions are compute-bound and simply enjoy the 1-cycle L0.
 */

#ifndef MTRAP_WORKLOAD_PARSEC_PROFILES_HH
#define MTRAP_WORKLOAD_PARSEC_PROFILES_HH

#include <string>
#include <vector>

#include "workload/kernels.hh"

namespace mtrap
{

/** Names of all modelled Parsec benchmarks, figure-4 order. */
const std::vector<std::string> &parsecBenchmarkNames();

/** Profile for one Parsec-like benchmark (fatal on unknown name). */
WorkloadProfile parsecProfile(const std::string &name, unsigned threads = 4);

/** Ready-to-run 4-thread workload. */
Workload buildParsecWorkload(const std::string &name, unsigned threads = 4);

} // namespace mtrap

#endif // MTRAP_WORKLOAD_PARSEC_PROFILES_HH

#include "workload/attacks.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/system.hh"

namespace mtrap
{

namespace
{

// --- address plan -----------------------------------------------------------
// Victim virtual addresses.
constexpr Asid kVictim = 1;
constexpr Asid kAttacker = 2;

constexpr Addr kArray = 0x50'0000'0000ull;      // victim bounds-checked array
constexpr Addr kBoundPP = 0x51'0000'0000ull;    // **bound (chase level 0)
constexpr Addr kBoundP = 0x52'0000'0000ull;     // *bound  (chase level 1)
constexpr Addr kVProbe = 0x53'0000'0000ull;     // victim's probe pages
constexpr Addr kShm = 0x54'0000'0000ull;        // shared data (attacks 3/4)
constexpr Addr kPfRegion = 0x55'0000'0000ull;   // prefetcher region (attack 5)

// Attacker virtual addresses.
constexpr Addr kAEvict = 0x60'0000'0000ull;     // eviction set pages
constexpr Addr kAPrime = 0x61'0000'0000ull;     // prime pages (attacks 1/2)
constexpr Addr kAShm = 0x62'0000'0000ull;       // attacker view of kShm
constexpr Addr kAPf = 0x63'0000'0000ull;        // attacker view of kPfRegion
constexpr Addr kACode = 0x64'0000'0000ull;      // attacker view of victim code

// Engineered physical region (clear of the hash-allocated ranges).
constexpr Addr kPinBase = 1ull << 42;

constexpr std::int64_t kBound = 64;             // in-bounds limit (bytes)
constexpr std::int64_t kSecretIndex = 128;      // OOB index reaching the secret

// L1D geometry (Table 1: 64 KiB, 2-way, 64 B lines -> 512 sets).
constexpr unsigned kL1Sets = 512;
constexpr unsigned kL1Ways = 2;
constexpr unsigned kL2Sets = 4096;
constexpr unsigned kL2Ways = 8;

// Probe L1 sets for secret bit 0 / 1 (multiples of 64 so the line offset
// within its page is 0 and page-granular aliasing lines up exactly).
constexpr unsigned kSet0 = 128;
constexpr unsigned kSet1 = 192;

/** Physical address of the line with L1 set `set` and tag-disambiguator
 *  `tag` inside the pinned region. Tag stride = one L1 way (32 KiB),
 *  which preserves the set index. */
Addr
paddrForSet(unsigned tag, unsigned set)
{
    return kPinBase + static_cast<Addr>(tag) * (kL1Sets * kLineBytes)
           + static_cast<Addr>(set) * kLineBytes;
}

/** Physical address with L2 set `set` (and L1 set `set % kL1Sets`) and
 *  tag-disambiguator `tag`, in a second pinned region (attack 9). Tag
 *  stride = one L2 way (256 KiB), preserving both set indices. */
Addr
paddrForL2Set(unsigned tag, unsigned set)
{
    return kPinBase + (1ull << 41)
           + static_cast<Addr>(tag) * (kL2Sets * kLineBytes)
           + static_cast<Addr>(set) * kLineBytes;
}

unsigned
l1SetOf(Addr paddr)
{
    return static_cast<unsigned>((paddr >> kLineShift) & (kL1Sets - 1));
}

unsigned
l2SetOf(Addr paddr)
{
    return static_cast<unsigned>((paddr >> kLineShift) & (kL2Sets - 1));
}

/** Timing threshold separating "private hierarchy hit" from "had to go
 *  to the L2 or beyond". */
constexpr Cycle kFastThreshold = 8;
/** Threshold separating "somewhere on chip" from "DRAM". */
constexpr Cycle kOnChipThreshold = 60;

// --- choreography helpers ---------------------------------------------------

/** Run a program to completion in an existing context's address space,
 *  with r1 preloaded (gadget input). Does not flush anything. */
void
runProgram(Core &core, const Program &prog, Asid asid, std::uint64_t r1)
{
    ArchContext ctx;
    ctx.program = &prog;
    ctx.asid = asid;
    ctx.pc = prog.entry;
    ctx.regs[1] = r1;
    core.setContext(ctx);
    core.run(2'000'000);
    if (!core.halted())
        panic("attack program %s did not halt", prog.name.c_str());
    core.drain();
}

/** Context-switch to `asid` (flushes filters under MuonTrap), then run. */
void
switchAndRun(Core &core, const Program &prog, Asid asid, std::uint64_t r1)
{
    ArchContext ctx;
    ctx.program = &prog;
    ctx.asid = asid;
    ctx.pc = prog.entry;
    ctx.regs[1] = r1;
    core.contextSwitch(ctx);
    core.run(2'000'000);
    if (!core.halted())
        panic("attack program %s did not halt", prog.name.c_str());
    core.drain();
}

/**
 * Build the attacker's eviction program: for each target physical line,
 * load enough conflicting attacker lines to push it out of both the L1
 * and the L2. The attacker's pages are aliased onto engineered physical
 * pages by `setupEvictionAliases`.
 */
struct EvictionPlan
{
    Program program;
    std::function<void(AddressSpace &)> aliases;
};

EvictionPlan
makeEvictionPlan(const std::vector<Addr> &target_paddrs)
{
    // Allocate one attacker virtual page per eviction line.
    std::vector<std::pair<Addr, Addr>> pairs; // (attacker vaddr, paddr)
    unsigned page = 0;
    for (Addr target : target_paddrs) {
        const unsigned l1set = l1SetOf(target);
        const unsigned l2set = l2SetOf(target);
        // L1 eviction lines: same L1 set, distinct tags (use high tag
        // numbers so they don't collide with prime/probe lines).
        for (unsigned k = 0; k < kL1Ways + 1; ++k) {
            const Addr p = kPinBase + (1ull << 35)
                           + static_cast<Addr>(k) * (kL1Sets * kLineBytes)
                           + static_cast<Addr>(l1set) * kLineBytes;
            pairs.emplace_back(kAEvict + page++ * kPageBytes, p);
        }
        // L2 eviction lines: same L2 set, distinct tags. Stride of one
        // L2 way (256 KiB) preserves both L1 and L2 set bits.
        for (unsigned k = 0; k < kL2Ways + 2; ++k) {
            const Addr p = kPinBase + (1ull << 36)
                           + static_cast<Addr>(k) * (kL2Sets * kLineBytes)
                           + static_cast<Addr>(l2set) * kLineBytes;
            pairs.emplace_back(kAEvict + page++ * kPageBytes, p);
        }
    }

    ProgramBuilder b("evict");
    for (const auto &[va, pa] : pairs) {
        const Addr line_va = va + (pa & (kPageBytes - 1));
        b.movi(2, static_cast<std::int64_t>(line_va));
        b.load(3, 2, 0);
    }
    b.halt();

    EvictionPlan plan;
    plan.program = b.take();
    plan.aliases = [pairs](AddressSpace &vm) {
        for (const auto &[va, pa] : pairs)
            vm.alias(kAttacker, va, pageAlign(pa), kPageBytes);
    };
    return plan;
}

/** Shared memory setup for the bound chain + victim array + secret. */
void
setupVictimMemory(System &sys, std::uint64_t secret)
{
    MemSystem &mem = sys.mem();
    // *kBoundPP = kBoundP ; *kBoundP = kBound
    mem.write(kVictim, kBoundPP, kBoundP);
    mem.write(kVictim, kBoundP, static_cast<std::uint64_t>(kBound));
    for (std::int64_t i = 0; i < kBound; i += 8)
        mem.write(kVictim, kArray + static_cast<Addr>(i), 0);
    mem.write(kVictim, kArray + kSecretIndex, secret);
}

/** Bound-chain physical lines (for the eviction plan). */
std::vector<Addr>
boundChainPaddrs(System &sys)
{
    AddressSpace &vm = sys.mem().addressSpace();
    return {vm.translate(kVictim, kBoundPP),
            vm.translate(kVictim, kBoundP)};
}

/** Victim gadget prologue shared by every attack: load the (evicted,
 *  hence slow) bound through a dependent chain, then bounds-check r1.
 *  Mispredicts to the in-bounds path when r1 is out of bounds. */
void
emitBoundsCheck(ProgramBuilder &b)
{
    b.movi(21, static_cast<std::int64_t>(kBoundPP));
    b.load(3, 21, 0);      // r3 = &bound      (slow when evicted)
    b.load(3, 3, 0);       // r3 = bound       (dependent, slow)
    b.braUge("done", 1, 3);
}

/** Decide a recovered bit from two probe timings (255 = can't tell). */
unsigned
decideBit(Cycle t0, Cycle t1, Cycle threshold)
{
    const bool fast0 = t0 <= threshold;
    const bool fast1 = t1 <= threshold;
    if (fast0 == fast1)
        return 255;
    return fast1 ? 1 : 0;
}

AttackOutcome
finish(AttackOutcome out, unsigned r0, unsigned r1, Cycle t0, Cycle t1)
{
    out.recovered0 = r0;
    out.recovered1 = r1;
    out.probe0Time = t0;
    out.probe1Time = t1;
    out.leaked = (r0 == 0 && r1 == 1);
    return out;
}

} // namespace

// ===========================================================================
// Attack 1: Spectre prime-and-probe
// ===========================================================================

AttackOutcome
runSpectrePrimeProbe(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "1:spectre-prime-probe";
    out.scheme = schemeName(s);
    out.detail = "attacker primes two L1 sets; victim's speculative "
                 "secret-indexed load evicts from one of them";

    // Victim probe pages: bit b touches the line with L1 set kSet{b}.
    const Addr probe_pa0 = paddrForSet(5, kSet0);
    const Addr probe_pa1 = paddrForSet(5, kSet1);

    // Attacker prime lines: fill both ways of each probed set.
    struct Prime { Addr va; Addr pa; };
    std::vector<Prime> primes;
    unsigned page = 0;
    for (unsigned b = 0; b < 2; ++b) {
        const unsigned set = b ? kSet1 : kSet0;
        for (unsigned w = 0; w < kL1Ways; ++w) {
            primes.push_back({kAPrime + page++ * kPageBytes,
                              paddrForSet(w, set)});
        }
    }

    // Victim gadget.
    ProgramBuilder vb("victim1");
    emitBoundsCheck(vb);
    vb.movi(20, static_cast<std::int64_t>(kArray));
    vb.load(4, 20, 0, 1, 0);        // r4 = array[r1] (secret when OOB)
    vb.andi(5, 4, 1);
    vb.shli(5, 5, 12);              // *4096: selects the probe page
    vb.movi(22, static_cast<std::int64_t>(kVProbe));
    vb.load(6, 22, 0, 5, 0);        // touch probe[bit]
    vb.label("done");
    vb.halt();
    const Program victim = vb.take();

    // Attacker prime program.
    ProgramBuilder ab("prime1");
    for (const auto &p : primes) {
        ab.movi(2, static_cast<std::int64_t>(p.va));
        ab.load(3, 2, 0);
    }
    ab.halt();
    const Program prime = ab.take();

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 1);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        vm.alias(kVictim, kVProbe, pageAlign(probe_pa0), kPageBytes);
        vm.alias(kVictim, kVProbe + kPageBytes, pageAlign(probe_pa1),
                 kPageBytes);
        for (const auto &p : primes)
            vm.alias(kAttacker, p.va, pageAlign(p.pa), kPageBytes);
        EvictionPlan ev = makeEvictionPlan(boundChainPaddrs(sys));
        ev.aliases(vm);
        setupVictimMemory(sys, secret);

        Core &core = sys.core(0);
        // 1. Victim trains its own bounds check with in-bounds inputs.
        runProgram(core, victim, kVictim, 0);
        for (std::uint64_t i = 8; i < 64; i += 8)
            runProgram(core, victim, kVictim, i);
        // 2. Attacker evicts the bound chain and primes the probe sets.
        switchAndRun(core, ev.program, kAttacker, 0);
        runProgram(core, prime, kAttacker, 0);
        // 3. Victim runs on the malicious out-of-bounds input.
        switchAndRun(core, victim, kVictim,
                     static_cast<std::uint64_t>(kSecretIndex));
        // 4. Attacker probes its primed lines; an evicted line marks the
        //    set the victim's speculative load landed in.
        ArchContext actx;
        actx.program = &prime;
        actx.asid = kAttacker;
        core.contextSwitch(actx);
        Cycle t[2] = {0, 0};
        for (unsigned b = 0; b < 2; ++b) {
            for (unsigned w = 0; w < kL1Ways; ++w) {
                const Prime &p = primes[b * kL1Ways + w];
                t[b] = std::max(t[b], sys.mem().timeProbe(0, kAttacker,
                                                          p.va));
            }
        }
        times[secret][0] = t[0];
        times[secret][1] = t[1];
        // The set with the *slow* (evicted) line reveals the bit.
        const bool slow0 = t[0] > kFastThreshold;
        const bool slow1 = t[1] > kFastThreshold;
        rec[secret] = (slow0 == slow1) ? 255 : (slow1 ? 1 : 0);
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

// ===========================================================================
// Attack 2: inclusion-policy attack
// ===========================================================================

AttackOutcome
runInclusionPolicyAttack(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "2:inclusion-policy";
    out.scheme = schemeName(s);
    out.detail = "victim's speculative fills must not displace "
                 "attacker-visible L1 state (NINE filter cache)";

    // Victim blasts one L1 set with three speculative fills (more than
    // the 2-way associativity), selected by the secret bit.
    struct Page { Addr va; Addr pa; };
    std::vector<Page> vpages;
    for (unsigned b = 0; b < 2; ++b) {
        const unsigned set = b ? kSet1 : kSet0;
        for (unsigned j = 0; j < 3; ++j)
            vpages.push_back({kVProbe + (b * 3 + j) * kPageBytes,
                              paddrForSet(5 + j, set)});
    }
    std::vector<Page> primes;
    unsigned page = 0;
    for (unsigned b = 0; b < 2; ++b) {
        const unsigned set = b ? kSet1 : kSet0;
        for (unsigned w = 0; w < kL1Ways; ++w)
            primes.push_back({kAPrime + page++ * kPageBytes,
                              paddrForSet(w, set)});
    }

    ProgramBuilder vb("victim2");
    emitBoundsCheck(vb);
    vb.movi(20, static_cast<std::int64_t>(kArray));
    vb.load(4, 20, 0, 1, 0);
    vb.andi(5, 4, 1);
    // r5 = bit * 3 pages
    vb.shli(5, 5, 12);
    vb.mul(5, 5, 26);               // r26 preloaded with 3
    vb.movi(22, static_cast<std::int64_t>(kVProbe));
    vb.load(6, 22, 0 * kPageBytes, 5, 0);
    vb.load(7, 22, 1 * kPageBytes, 5, 0);
    vb.load(8, 22, 2 * kPageBytes, 5, 0);
    vb.label("done");
    vb.halt();
    Program victim = vb.take();
    // Preload r26 = 3 before entry: patch by prepending is messy, so put
    // it in the context registers instead (register 26 survives setup).

    ProgramBuilder ab("prime2");
    for (const auto &p : primes) {
        ab.movi(2, static_cast<std::int64_t>(p.va));
        ab.load(3, 2, 0);
    }
    ab.halt();
    const Program prime = ab.take();

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 1);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        for (const auto &p : vpages)
            vm.alias(kVictim, p.va, pageAlign(p.pa), kPageBytes);
        for (const auto &p : primes)
            vm.alias(kAttacker, p.va, pageAlign(p.pa), kPageBytes);
        EvictionPlan ev = makeEvictionPlan(boundChainPaddrs(sys));
        ev.aliases(vm);
        setupVictimMemory(sys, secret);

        Core &core = sys.core(0);
        auto run_victim = [&](std::uint64_t r1, bool swtch) {
            ArchContext ctx;
            ctx.program = &victim;
            ctx.asid = kVictim;
            ctx.regs[1] = r1;
            ctx.regs[26] = 3;
            if (swtch)
                core.contextSwitch(ctx);
            else
                core.setContext(ctx);
            core.run(2'000'000);
            core.drain();
        };
        run_victim(0, false);
        for (std::uint64_t i = 8; i < 64; i += 8)
            run_victim(i, false);
        switchAndRun(core, ev.program, kAttacker, 0);
        runProgram(core, prime, kAttacker, 0);
        run_victim(static_cast<std::uint64_t>(kSecretIndex), true);
        ArchContext actx;
        actx.program = &prime;
        actx.asid = kAttacker;
        core.contextSwitch(actx);
        Cycle t[2] = {0, 0};
        for (unsigned b = 0; b < 2; ++b)
            for (unsigned w = 0; w < kL1Ways; ++w)
                t[b] = std::max(t[b],
                                sys.mem().timeProbe(
                                    0, kAttacker,
                                    primes[b * kL1Ways + w].va));
        times[secret][0] = t[0];
        times[secret][1] = t[1];
        const bool slow0 = t[0] > kFastThreshold;
        const bool slow1 = t[1] > kFastThreshold;
        rec[secret] = (slow0 == slow1) ? 255 : (slow1 ? 1 : 0);
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

// ===========================================================================
// Attack 3: shared-data attack (two cores)
// ===========================================================================

AttackOutcome
runSharedDataAttack(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "3:shared-data";
    out.scheme = schemeName(s);
    out.detail = "victim's speculative load must not demote the "
                 "attacker's M line (reduced coherency speculation)";

    constexpr Addr shm_pa = kPinBase + (1ull << 37);

    // Victim gadget: speculatively touch SHM + bit*64.
    ProgramBuilder vb("victim3");
    emitBoundsCheck(vb);
    vb.movi(20, static_cast<std::int64_t>(kArray));
    vb.load(4, 20, 0, 1, 0);
    vb.andi(5, 4, 1);
    vb.shli(5, 5, 6);               // *64: line select
    vb.movi(22, static_cast<std::int64_t>(kShm));
    vb.load(6, 22, 0, 5, 0);
    vb.label("done");
    vb.halt();
    const Program victim = vb.take();

    // Attacker: own both lines in M.
    ProgramBuilder ab("owner3");
    ab.movi(2, static_cast<std::int64_t>(kAShm));
    ab.movi(3, 0x77);
    ab.store(3, 2, 0);
    ab.store(3, 2, 64);
    ab.halt();
    const Program owner = ab.take();

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 2);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        vm.alias(kVictim, kShm, shm_pa, kPageBytes);
        vm.alias(kAttacker, kAShm, shm_pa, kPageBytes);
        EvictionPlan ev = makeEvictionPlan(boundChainPaddrs(sys));
        ev.aliases(vm);
        setupVictimMemory(sys, secret);

        Core &vcore = sys.core(0);
        Core &acore = sys.core(1);

        // Train the victim on its own core.
        runProgram(vcore, victim, kVictim, 0);
        for (std::uint64_t i = 8; i < 64; i += 8)
            runProgram(vcore, victim, kVictim, i);
        // The attacker's helper process time-shares the *victim's* core
        // to evict the bound chain from its L1/L2 (conflict eviction) —
        // that is what opens the long speculation window.
        switchAndRun(vcore, ev.program, kAttacker, 0);
        // Attacker takes M ownership of both shared lines on its core.
        runProgram(acore, owner, kAttacker, 0);
        // Victim speculatively touches SHM + bit*64.
        switchAndRun(vcore, victim, kVictim,
                     static_cast<std::uint64_t>(kSecretIndex));
        // Attacker times stores to both lines; a demoted line is slower.
        const Cycle t0 = sys.mem().timeStoreProbe(1, kAttacker, kAShm);
        const Cycle t1 = sys.mem().timeStoreProbe(1, kAttacker,
                                                  kAShm + 64);
        times[secret][0] = t0;
        times[secret][1] = t1;
        rec[secret] = decideBit(/*t0 slow == bit0 */
                                t1, t0, kFastThreshold) == 255
                          ? 255
                          : ((t0 > kFastThreshold) ? 0 : 1);
        // Simpler: the slow store reveals the bit.
        const bool slow0 = t0 > kFastThreshold;
        const bool slow1 = t1 > kFastThreshold;
        rec[secret] = (slow0 == slow1) ? 255 : (slow1 ? 1 : 0);
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

// ===========================================================================
// Attack 4: filter-cache coherency attack (two cores)
// ===========================================================================

AttackOutcome
runFilterCacheCoherencyAttack(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "4:filter-coherency";
    out.scheme = schemeName(s);
    out.detail = "the victim's speculative copy must be invisible to "
                 "other cores' load timing (S-only fills + async SE "
                 "upgrade)";

    constexpr Addr shm_pa = kPinBase + (1ull << 38);

    ProgramBuilder vb("victim4");
    emitBoundsCheck(vb);
    vb.movi(20, static_cast<std::int64_t>(kArray));
    vb.load(4, 20, 0, 1, 0);
    vb.andi(5, 4, 1);
    vb.shli(5, 5, 6);
    vb.movi(22, static_cast<std::int64_t>(kShm));
    vb.load(6, 22, 0, 5, 0);
    vb.label("done");
    vb.halt();
    const Program victim = vb.take();

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 2);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        vm.alias(kVictim, kShm, shm_pa, kPageBytes);
        vm.alias(kAttacker, kAShm, shm_pa, kPageBytes);
        EvictionPlan ev = makeEvictionPlan(boundChainPaddrs(sys));
        ev.aliases(vm);
        setupVictimMemory(sys, secret);

        Core &vcore = sys.core(0);
        Core &acore = sys.core(1);

        runProgram(vcore, victim, kVictim, 0);
        for (std::uint64_t i = 8; i < 64; i += 8)
            runProgram(vcore, victim, kVictim, i);
        // Evict the bound chain from the victim core's caches (helper
        // process time-shares core 0), opening the speculation window.
        switchAndRun(vcore, ev.program, kAttacker, 0);
        (void)acore;
        // Victim speculatively loads SHM + bit*64 (cold everywhere).
        switchAndRun(vcore, victim, kVictim,
                     static_cast<std::uint64_t>(kSecretIndex));
        // Attacker times plain loads of both lines from its core: under
        // a leaky design the line the victim touched answers faster
        // (remote supply / L2 copy).
        const Cycle t0 = sys.mem().timeProbe(1, kAttacker, kAShm);
        const Cycle t1 = sys.mem().timeProbe(1, kAttacker, kAShm + 64);
        times[secret][0] = t0;
        times[secret][1] = t1;
        // The benign (bit=0) line is architecturally warmed by the
        // victim's in-bounds training executions, so the secret is read
        // off the bit=1 line alone — warm means the speculative access
        // happened.
        rec[secret] = (t1 < kOnChipThreshold) ? 1 : 0;
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

// ===========================================================================
// Attack 5: prefetcher attack
// ===========================================================================

AttackOutcome
runPrefetcherAttack(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "5:prefetcher";
    out.scheme = schemeName(s);
    out.detail = "speculative stride training must not install lines the "
                 "victim never touched (prefetch on commit)";

    constexpr Addr pf_pa = kPinBase + (1ull << 39);
    constexpr std::uint64_t kRegionGap = 16 * 1024; // bit=1 region offset
    constexpr std::uint64_t kLoopBytes = 4 * kLineBytes;
    constexpr std::uint64_t kProbeOff = 5 * kLineBytes; // prefetched line

    // Victim gadget: on the wrong path, loop a same-PC load over 4
    // sequential lines of the bit-selected region, training the stride
    // prefetcher (in an unprotected system) to run ahead.
    ProgramBuilder vb("victim5");
    emitBoundsCheck(vb);
    vb.movi(20, static_cast<std::int64_t>(kArray));
    vb.load(4, 20, 0, 1, 0);
    vb.andi(5, 4, 1);
    vb.shli(5, 5, 14);              // *16KiB region select
    vb.movi(22, static_cast<std::int64_t>(kPfRegion));
    vb.add(22, 22, 5);
    vb.movi(7, 0);
    vb.movi(8, static_cast<std::int64_t>(kLoopBytes));
    vb.label("loop");
    vb.load(6, 22, 0, 7, 0);        // same PC every iteration
    vb.addi(7, 7, kLineBytes);
    vb.braLt("loop", 7, 8);
    vb.label("done");
    vb.halt();
    const Program victim = vb.take();

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 1);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        // Both 16KiB regions, shared with the attacker.
        vm.alias(kVictim, kPfRegion, pf_pa, 2 * kRegionGap);
        vm.alias(kAttacker, kAPf, pf_pa, 2 * kRegionGap);
        EvictionPlan ev = makeEvictionPlan(boundChainPaddrs(sys));
        ev.aliases(vm);
        setupVictimMemory(sys, secret);

        Core &core = sys.core(0);
        runProgram(core, victim, kVictim, 0);
        for (std::uint64_t i = 8; i < 64; i += 8)
            runProgram(core, victim, kVictim, i);
        switchAndRun(core, ev.program, kAttacker, 0);
        switchAndRun(core, victim, kVictim,
                     static_cast<std::uint64_t>(kSecretIndex));
        // Attacker probes the line *beyond* the victim's touches in each
        // region: only the prefetcher could have brought it in.
        ProgramBuilder nb("noop5");
        nb.halt();
        const Program noop = nb.take();
        switchAndRun(core, noop, kAttacker, 0);
        const Cycle t0 = sys.mem().timeProbe(0, kAttacker,
                                             kAPf + kProbeOff);
        const Cycle t1 = sys.mem().timeProbe(0, kAttacker,
                                             kAPf + kRegionGap
                                                 + kProbeOff);
        times[secret][0] = t0;
        times[secret][1] = t1;
        // Training architecturally warms the bit=0 region's prefetch
        // target; the secret is read off the bit=1 region alone.
        rec[secret] = (t1 < kOnChipThreshold) ? 1 : 0;
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

// ===========================================================================
// Attack 6: instruction-cache attack
// ===========================================================================

AttackOutcome
runIcacheAttack(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "6:icache";
    out.scheme = schemeName(s);
    out.detail = "secret-dependent speculative control flow must not be "
                 "observable through instruction-cache timing "
                 "(instruction filter cache)";

    // Victim gadget with two landing pads a page of code apart.
    ProgramBuilder vb("victim6");
    emitBoundsCheck(vb);
    vb.movi(20, static_cast<std::int64_t>(kArray));
    vb.load(4, 20, 0, 1, 0);
    vb.andi(5, 4, 1);
    // target index = gadgetA + bit*1024 (1024 instructions = 1 page)
    vb.shli(5, 5, 10);
    vb.movi(7, 0);                   // patched below with gadgetA index
    const std::uint64_t movi_idx = vb.here() - 1;
    vb.add(5, 5, 7);
    vb.jumpReg(5);
    vb.label("done");
    vb.halt();
    // Pad so gadget A starts on a fresh page of code.
    while (vb.here() % 1024 != 0)
        vb.nop();
    const std::uint64_t gadget_a = vb.here();
    vb.label("gadgetA");
    for (int i = 0; i < 4; ++i)
        vb.nop();
    vb.bra("done");
    while (vb.here() % 1024 != 0)
        vb.nop();
    vb.label("gadgetB");
    for (int i = 0; i < 4; ++i)
        vb.nop();
    vb.bra("done");
    vb.halt();
    Program victim = vb.take();
    victim.ops[movi_idx].imm = static_cast<std::int64_t>(gadget_a);

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 1);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        // The attacker maps the victim's code pages (shared library
        // scenario) so it can time instruction lines.
        const Addr ga_va = victim.pcToVaddr(gadget_a);
        const Addr gb_va = victim.pcToVaddr(gadget_a + 1024);
        const Addr ga_pa = pageAlign(vm.translate(kVictim, ga_va));
        const Addr gb_pa = pageAlign(vm.translate(kVictim, gb_va));
        vm.alias(kAttacker, kACode, ga_pa, kPageBytes);
        vm.alias(kAttacker, kACode + kPageBytes, gb_pa, kPageBytes);
        EvictionPlan ev = makeEvictionPlan(boundChainPaddrs(sys));
        ev.aliases(vm);
        setupVictimMemory(sys, secret);

        Core &core = sys.core(0);
        runProgram(core, victim, kVictim, 0);
        for (std::uint64_t i = 8; i < 64; i += 8)
            runProgram(core, victim, kVictim, i);
        switchAndRun(core, ev.program, kAttacker, 0);
        switchAndRun(core, victim, kVictim,
                     static_cast<std::uint64_t>(kSecretIndex));
        ProgramBuilder nb("noop6");
        nb.halt();
        const Program noop = nb.take();
        switchAndRun(core, noop, kAttacker, 0);
        const Cycle t0 = sys.mem().timeIfetchProbe(
            0, kAttacker, kACode + (ga_va & (kPageBytes - 1)));
        const Cycle t1 = sys.mem().timeIfetchProbe(
            0, kAttacker,
            kACode + kPageBytes + (gb_va & (kPageBytes - 1)));
        times[secret][0] = t0;
        times[secret][1] = t1;
        // Gadget A is architecturally fetched during training (benign
        // bit = 0), so the secret is read off gadget B's line alone.
        rec[secret] = (t1 < kOnChipThreshold) ? 1 : 0;
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

// ===========================================================================
// Spectre variant 2: branch-target injection through the shared BTB
// ===========================================================================

AttackOutcome
runSpectreBtbInjection(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "v2:btb-injection";
    out.scheme = schemeName(s);
    out.detail = "attacker-trained BTB sends the victim's indirect call "
                 "speculatively into a secret-leaking gadget; the cache "
                 "channel must stay closed even though the injection "
                 "itself needs orthogonal BTB isolation";

    constexpr Addr kFnPtrP = 0x56'0000'0000ull; // &fnptr (chase level 0)
    constexpr Addr kFnPtr = 0x58'0000'0000ull;  // fnptr  (chase level 1)
    constexpr Addr kSecret = 0x57'0000'0000ull;

    const Addr probe_pa0 = paddrForSet(9, kSet0);
    const Addr probe_pa1 = paddrForSet(9, kSet1);

    // Victim: load a function pointer and call through it. The gadget
    // (attacker-chosen speculative target) lives later in the victim's
    // own code, as v2 gadgets do.
    ProgramBuilder vb("victim_v2");
    vb.movi(20, static_cast<std::int64_t>(kFnPtrP));
    vb.movi(21, static_cast<std::int64_t>(kSecret));
    vb.movi(22, static_cast<std::int64_t>(kVProbe));
    // Dependent two-level pointer load: with both lines evicted by the
    // attacker, target resolution takes two DRAM round trips — a wide
    // speculation window, as real v2 exploits engineer.
    vb.load(4, 20, 0);              // r4 = &fnptr
    vb.load(4, 4, 0);               // r4 = fn index
    const std::uint64_t jump_pc = vb.here();
    vb.jumpReg(4);
    vb.label("benign");
    vb.movi(5, 1);
    // The benign path touches *other words* of the secret's and probe
    // pages (as real victims do), keeping their translations warm so
    // the gadget's dependent loads fit inside the speculation window.
    // The measured probe lines themselves are never touched here.
    vb.load(5, 21, 2048);
    vb.load(5, 22, 2048);
    vb.load(5, 22, kPageBytes + 2048);
    vb.halt();
    while (vb.here() % 64 != 0)
        vb.nop();
    const std::uint64_t gadget_pc = vb.here();
    vb.label("gadget");
    vb.load(6, 21, 0);              // secret
    vb.andi(6, 6, 1);
    vb.shli(6, 6, 12);
    vb.load(7, 22, 0, 6, 0);        // probe[bit]
    vb.halt();
    Program victim = vb.take();
    const std::uint64_t benign_pc = jump_pc + 1;

    // Attacker trainer: an indirect jump at the *same PC* whose real
    // target is the gadget index — the BTB is PC-indexed and not
    // ASID-tagged, exactly the pre-mitigation hardware v2 needs.
    ProgramBuilder ab("trainer_v2");
    ab.movi(4, static_cast<std::int64_t>(gadget_pc));
    while (ab.here() < jump_pc)
        ab.nop();
    ab.jumpReg(4);
    // The trainer's own program must contain the jump target.
    while (ab.here() < gadget_pc)
        ab.nop();
    ab.movi(5, 2);
    ab.halt();
    const Program trainer = ab.take();

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 1);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        vm.alias(kVictim, kVProbe, pageAlign(probe_pa0), kPageBytes);
        vm.alias(kVictim, kVProbe + kPageBytes, pageAlign(probe_pa1),
                 kPageBytes);
        vm.alias(kAttacker, kAPrime, pageAlign(probe_pa0), kPageBytes);
        vm.alias(kAttacker, kAPrime + kPageBytes, pageAlign(probe_pa1),
                 kPageBytes);
        sys.mem().write(kVictim, kFnPtrP, kFnPtr);
        sys.mem().write(kVictim, kFnPtr, benign_pc);
        sys.mem().write(kVictim, kSecret, secret);
        EvictionPlan ev =
            makeEvictionPlan({vm.translate(kVictim, kFnPtrP),
                              vm.translate(kVictim, kFnPtr)});
        ev.aliases(vm);

        Core &core = sys.core(0);
        // 1. Victim runs normally (BTB learns the benign target).
        for (int i = 0; i < 4; ++i)
            runProgram(core, victim, kVictim, 0);
        // 2. Attacker poisons the BTB entry and evicts the function
        //    pointer to widen the speculation window.
        switchAndRun(core, trainer, kAttacker, 0);
        for (int i = 0; i < 4; ++i)
            runProgram(core, trainer, kAttacker, 0);
        runProgram(core, ev.program, kAttacker, 0);
        // 3. Victim's next call speculates into the gadget.
        switchAndRun(core, victim, kVictim, 0);
        // 4. Attacker times the probe lines.
        ProgramBuilder nb("noop_v2");
        nb.halt();
        const Program noop = nb.take();
        switchAndRun(core, noop, kAttacker, 0);
        const Cycle t0 = sys.mem().timeProbe(0, kAttacker, kAPrime);
        const Cycle t1 = sys.mem().timeProbe(0, kAttacker,
                                             kAPrime + kPageBytes);
        times[secret][0] = t0;
        times[secret][1] = t1;
        rec[secret] = decideBit(t0, t1, kOnChipThreshold);
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

// ===========================================================================
// Attack 7: cross-core covert channel through the coherence bus
// ===========================================================================

AttackOutcome
runBusCovertChannel(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "7:bus-covert";
    out.scheme = schemeName(s);
    out.detail = "committed cross-core covert channel: the sender's "
                 "architectural store steals the receiver's M line, read "
                 "back as store-ownership latency — outside every "
                 "speculation defence's threat model (matrix negative "
                 "control: all schemes leak)";

    constexpr Addr shm_pa = kPinBase + (1ull << 40);

    // Sender: commit a store to line[secret] (r1 = secret bit).
    ProgramBuilder sb("sender7");
    sb.andi(5, 1, 1);
    sb.shli(5, 5, 6);               // *64: line select
    sb.movi(22, static_cast<std::int64_t>(kShm));
    sb.movi(3, 0x5e);
    sb.store(3, 22, 0, 5, 0);
    sb.halt();
    const Program sender = sb.take();

    // Receiver: take M ownership of both candidate lines.
    ProgramBuilder rb("receiver7");
    rb.movi(2, static_cast<std::int64_t>(kAShm));
    rb.movi(3, 0x77);
    rb.store(3, 2, 0);
    rb.store(3, 2, 64);
    rb.halt();
    const Program receiver = rb.take();

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 2);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        vm.alias(kVictim, kShm, shm_pa, kPageBytes);
        vm.alias(kAttacker, kAShm, shm_pa, kPageBytes);

        // 1. Receiver takes M on both lines on its core.
        runProgram(sys.core(1), receiver, kAttacker, 0);
        // 2. Sender commits a store to line[secret], transferring
        //    ownership across the bus.
        runProgram(sys.core(0), sender, kVictim, secret);
        // 3. Receiver times store ownership of both lines: the stolen
        //    line needs the bus again.
        const Cycle t0 = sys.mem().timeStoreProbe(1, kAttacker, kAShm);
        const Cycle t1 = sys.mem().timeStoreProbe(1, kAttacker,
                                                  kAShm + 64);
        times[secret][0] = t0;
        times[secret][1] = t1;
        const bool slow0 = t0 > kFastThreshold;
        const bool slow1 = t1 > kFastThreshold;
        rec[secret] = (slow0 == slow1) ? 255 : (slow1 ? 1 : 0);
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

// ===========================================================================
// Attack 8: cross-core channel through shared prefetcher training state
// ===========================================================================

AttackOutcome
runPrefetchCovertChannel(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "8:prefetch-covert";
    out.scheme = schemeName(s);
    out.detail = "the victim's speculative strides train the shared L2 "
                 "prefetcher, which installs lines a *second core's* "
                 "receiver can time — speculative training must not "
                 "cross cores (prefetch on commit)";

    constexpr Addr pf_pa = kPinBase + (1ull << 40) + (1ull << 39);
    constexpr std::uint64_t kRegionGap = 16 * 1024;
    constexpr std::uint64_t kLoopBytes = 4 * kLineBytes;
    constexpr std::uint64_t kProbeOff = 5 * kLineBytes;

    // Victim gadget: identical stride training to attack 5 — on the
    // wrong path, loop a same-PC load over 4 lines of region[bit].
    ProgramBuilder vb("victim8");
    emitBoundsCheck(vb);
    vb.movi(20, static_cast<std::int64_t>(kArray));
    vb.load(4, 20, 0, 1, 0);
    vb.andi(5, 4, 1);
    vb.shli(5, 5, 14);              // *16KiB region select
    vb.movi(22, static_cast<std::int64_t>(kPfRegion));
    vb.add(22, 22, 5);
    vb.movi(7, 0);
    vb.movi(8, static_cast<std::int64_t>(kLoopBytes));
    vb.label("loop");
    vb.load(6, 22, 0, 7, 0);        // same PC every iteration
    vb.addi(7, 7, kLineBytes);
    vb.braLt("loop", 7, 8);
    vb.label("done");
    vb.halt();
    const Program victim = vb.take();

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 2);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        vm.alias(kVictim, kPfRegion, pf_pa, 2 * kRegionGap);
        vm.alias(kAttacker, kAPf, pf_pa, 2 * kRegionGap);
        EvictionPlan ev = makeEvictionPlan(boundChainPaddrs(sys));
        ev.aliases(vm);
        setupVictimMemory(sys, secret);

        Core &vcore = sys.core(0);
        runProgram(vcore, victim, kVictim, 0);
        for (std::uint64_t i = 8; i < 64; i += 8)
            runProgram(vcore, victim, kVictim, i);
        switchAndRun(vcore, ev.program, kAttacker, 0);
        switchAndRun(vcore, victim, kVictim,
                     static_cast<std::uint64_t>(kSecretIndex));
        // Receiver on core 1 times the line beyond the victim's touches
        // in each region: only the shared prefetcher could have brought
        // it on chip, and the shared L2 makes it visible cross-core.
        const Cycle t0 = sys.mem().timeProbe(1, kAttacker,
                                             kAPf + kProbeOff);
        const Cycle t1 = sys.mem().timeProbe(1, kAttacker,
                                             kAPf + kRegionGap
                                                 + kProbeOff);
        times[secret][0] = t0;
        times[secret][1] = t1;
        // Training architecturally warms the bit=0 region's prefetch
        // target; the secret is read off the bit=1 region alone.
        rec[secret] = (t1 < kOnChipThreshold) ? 1 : 0;
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

// ===========================================================================
// Attack 9: prime-and-probe on the shared L2 (no flush primitive)
// ===========================================================================

AttackOutcome
runL2PrimeProbe(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "9:l2-prime-probe";
    out.scheme = schemeName(s);
    out.detail = "pure set-conflict eviction timing on the shared L2: "
                 "the victim's speculative fill evicts one way of an "
                 "attacker-primed L2 set (both candidate lines share an "
                 "L1 set, isolating the L2 conflict)";

    // Two L2 sets that alias to the *same* L1 set (128 and 640 are both
    // 128 mod 512) and whose line offsets are page-aligned.
    constexpr unsigned kL2PSet0 = 128;
    constexpr unsigned kL2PSet1 = 640;

    const Addr probe_pa0 = paddrForL2Set(20, kL2PSet0);
    const Addr probe_pa1 = paddrForL2Set(20, kL2PSet1);

    struct Page { Addr va; Addr pa; };
    std::vector<Page> primes;
    unsigned page = 0;
    for (unsigned b = 0; b < 2; ++b) {
        const unsigned set = b ? kL2PSet1 : kL2PSet0;
        for (unsigned w = 0; w < kL2Ways; ++w)
            primes.push_back({kAPrime + page++ * kPageBytes,
                              paddrForL2Set(w, set)});
    }

    // Victim gadget: the attack-1 secret-indexed probe load.
    ProgramBuilder vb("victim9");
    emitBoundsCheck(vb);
    vb.movi(20, static_cast<std::int64_t>(kArray));
    vb.load(4, 20, 0, 1, 0);
    vb.andi(5, 4, 1);
    vb.shli(5, 5, 12);              // *4096: selects the probe page
    vb.movi(22, static_cast<std::int64_t>(kVProbe));
    vb.load(6, 22, 0, 5, 0);
    vb.label("done");
    vb.halt();
    const Program victim = vb.take();

    ProgramBuilder ab("prime9");
    for (const auto &p : primes) {
        const Addr line_va = p.va + (p.pa & (kPageBytes - 1));
        ab.movi(2, static_cast<std::int64_t>(line_va));
        ab.load(3, 2, 0);
    }
    ab.halt();
    const Program prime = ab.take();

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 1);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        vm.alias(kVictim, kVProbe, pageAlign(probe_pa0), kPageBytes);
        vm.alias(kVictim, kVProbe + kPageBytes, pageAlign(probe_pa1),
                 kPageBytes);
        for (const auto &p : primes)
            vm.alias(kAttacker, p.va, pageAlign(p.pa), kPageBytes);
        EvictionPlan ev = makeEvictionPlan(boundChainPaddrs(sys));
        ev.aliases(vm);
        setupVictimMemory(sys, secret);

        Core &core = sys.core(0);
        runProgram(core, victim, kVictim, 0);
        for (std::uint64_t i = 8; i < 64; i += 8)
            runProgram(core, victim, kVictim, i);
        switchAndRun(core, ev.program, kAttacker, 0);
        runProgram(core, prime, kAttacker, 0);
        switchAndRun(core, victim, kVictim,
                     static_cast<std::uint64_t>(kSecretIndex));
        ArchContext actx;
        actx.program = &prime;
        actx.asid = kAttacker;
        core.contextSwitch(actx);
        Cycle t[2] = {0, 0};
        for (unsigned b = 0; b < 2; ++b) {
            for (unsigned w = 0; w < kL2Ways; ++w) {
                const Page &p = primes[b * kL2Ways + w];
                const Addr line_va = p.va + (p.pa & (kPageBytes - 1));
                t[b] = std::max(t[b], sys.mem().timeProbe(0, kAttacker,
                                                          line_va));
            }
        }
        times[secret][0] = t[0];
        times[secret][1] = t[1];
        // A line pushed all the way to DRAM marks the conflicted set.
        const bool slow0 = t[0] > kOnChipThreshold;
        const bool slow1 = t[1] > kOnChipThreshold;
        rec[secret] = (slow0 == slow1) ? 255 : (slow1 ? 1 : 0);
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

// ===========================================================================
// Attack 10: speculative-store channel (store-to-load forwarding)
// ===========================================================================

AttackOutcome
runSpecStoreChannel(Scheme s, const MuonTrapConfig *mt_override)
{
    AttackOutcome out;
    out.attack = "10:spec-store";
    out.scheme = schemeName(s);
    out.detail = "a transient store is forwarded to a younger load, "
                 "laundering the secret's taint before the probe load "
                 "(the documented STT store-forwarding gap: STT leaks, "
                 "the cache-isolation defences still block the channel)";

    constexpr Addr kScratch = 0x59'0000'0000ull; // victim scratch slot

    const Addr probe_pa0 = paddrForSet(11, kSet0);
    const Addr probe_pa1 = paddrForSet(11, kSet1);

    struct Page { Addr va; Addr pa; };
    std::vector<Page> primes;
    unsigned page = 0;
    for (unsigned b = 0; b < 2; ++b) {
        const unsigned set = b ? kSet1 : kSet0;
        for (unsigned w = 0; w < kL1Ways; ++w)
            primes.push_back({kAPrime + page++ * kPageBytes,
                              paddrForSet(w, set)});
    }

    // Victim gadget: OOB load -> transient store -> forwarded load ->
    // secret-indexed probe. The forwarded value arrives with the
    // *store address* register's (clean) taint.
    ProgramBuilder vb("victim10");
    emitBoundsCheck(vb);
    vb.movi(20, static_cast<std::int64_t>(kArray));
    vb.load(4, 20, 0, 1, 0);        // r4 = array[r1] (secret when OOB)
    vb.movi(23, static_cast<std::int64_t>(kScratch));
    vb.store(4, 23, 0);             // transient store of the secret
    vb.load(5, 23, 0);              // store-buffer forward
    vb.andi(5, 5, 1);
    vb.shli(5, 5, 12);
    vb.movi(22, static_cast<std::int64_t>(kVProbe));
    vb.load(6, 22, 0, 5, 0);        // touch probe[bit]
    vb.label("done");
    vb.halt();
    const Program victim = vb.take();

    ProgramBuilder ab("prime10");
    for (const auto &p : primes) {
        ab.movi(2, static_cast<std::int64_t>(p.va));
        ab.load(3, 2, 0);
    }
    ab.halt();
    const Program prime = ab.take();

    unsigned rec[2];
    Cycle times[2][2] = {{0, 0}, {0, 0}};
    for (unsigned secret = 0; secret < 2; ++secret) {
        SystemConfig sys_cfg = SystemConfig::forScheme(s, 1);
        if (mt_override)
            sys_cfg.mem.mt = *mt_override;
        System sys(sys_cfg);
        AddressSpace &vm = sys.mem().addressSpace();
        vm.alias(kVictim, kVProbe, pageAlign(probe_pa0), kPageBytes);
        vm.alias(kVictim, kVProbe + kPageBytes, pageAlign(probe_pa1),
                 kPageBytes);
        for (const auto &p : primes)
            vm.alias(kAttacker, p.va, pageAlign(p.pa), kPageBytes);
        EvictionPlan ev = makeEvictionPlan(boundChainPaddrs(sys));
        ev.aliases(vm);
        setupVictimMemory(sys, secret);
        // Touch the scratch slot so its mapping exists before the run.
        sys.mem().write(kVictim, kScratch, 0);

        Core &core = sys.core(0);
        runProgram(core, victim, kVictim, 0);
        for (std::uint64_t i = 8; i < 64; i += 8)
            runProgram(core, victim, kVictim, i);
        switchAndRun(core, ev.program, kAttacker, 0);
        runProgram(core, prime, kAttacker, 0);
        switchAndRun(core, victim, kVictim,
                     static_cast<std::uint64_t>(kSecretIndex));
        ArchContext actx;
        actx.program = &prime;
        actx.asid = kAttacker;
        core.contextSwitch(actx);
        Cycle t[2] = {0, 0};
        for (unsigned b = 0; b < 2; ++b)
            for (unsigned w = 0; w < kL1Ways; ++w)
                t[b] = std::max(t[b],
                                sys.mem().timeProbe(
                                    0, kAttacker,
                                    primes[b * kL1Ways + w].va));
        times[secret][0] = t[0];
        times[secret][1] = t[1];
        const bool slow0 = t[0] > kFastThreshold;
        const bool slow1 = t[1] > kFastThreshold;
        rec[secret] = (slow0 == slow1) ? 255 : (slow1 ? 1 : 0);
    }
    return finish(out, rec[0], rec[1], times[1][0], times[1][1]);
}

std::vector<AttackOutcome>
runAllAttacks(Scheme s)
{
    return {
        runSpectrePrimeProbe(s),
        runInclusionPolicyAttack(s),
        runSharedDataAttack(s),
        runFilterCacheCoherencyAttack(s),
        runPrefetcherAttack(s),
        runIcacheAttack(s),
        runSpectreBtbInjection(s),
        runBusCovertChannel(s),
        runPrefetchCovertChannel(s),
        runL2PrimeProbe(s),
        runSpecStoreChannel(s),
    };
}

bool
expectedLeak(const std::string &attack, Scheme s)
{
    // The committed bus covert channel is architectural: outside every
    // speculation defence's threat model.
    if (attack == "7:bus-covert")
        return true;
    switch (s) {
      case Scheme::Baseline:
      case Scheme::InsecureL0:
        return true;
      case Scheme::MuonTrap:
      case Scheme::MuonTrapClearMisspec:
      case Scheme::MuonTrapParallel:
        return false;
      case Scheme::InvisiSpecSpectre:
      case Scheme::InvisiSpecFuture:
      case Scheme::DelayOnMiss:
        // Load-side defences leave the instruction side unprotected.
        return attack == "6:icache";
      case Scheme::SttSpectre:
      case Scheme::SttFuture:
        // ... and STT additionally has the store-forwarding taint gap.
        return attack == "6:icache" || attack == "10:spec-store";
    }
    return true;
}

const std::vector<Scheme> &
securityMatrixSchemes()
{
    static const std::vector<Scheme> v = {
        Scheme::Baseline,
        Scheme::InsecureL0,
        Scheme::MuonTrap,
        Scheme::MuonTrapClearMisspec,
        Scheme::InvisiSpecSpectre,
        Scheme::SttSpectre,
        Scheme::DelayOnMiss,
    };
    return v;
}

} // namespace mtrap

/**
 * @file
 * SPEC CPU2006-like synthetic profiles (single-threaded).
 *
 * Each profile's parameters encode the behaviour class the paper's
 * evaluation attributes to that benchmark (figure 3/7/9 commentary):
 * e.g. bwaves is hurt by the small filter-cache size, cactusADM by its
 * low associativity, leslie3d/libquantum by delayed commit-time
 * prefetching, omnetpp by the instruction filter cache, povray/lbm are
 * sped up. See DESIGN.md §5 for the substitution rationale.
 */

#ifndef MTRAP_WORKLOAD_SPEC_PROFILES_HH
#define MTRAP_WORKLOAD_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "workload/kernels.hh"

namespace mtrap
{

/** Names of all modelled SPEC CPU2006 benchmarks, figure-3 order. */
const std::vector<std::string> &specBenchmarkNames();

/** Profile for one SPEC-like benchmark (fatal on unknown name). */
WorkloadProfile specProfile(const std::string &name);

/** Ready-to-run workload for one SPEC-like benchmark. */
Workload buildSpecWorkload(const std::string &name);

} // namespace mtrap

#endif // MTRAP_WORKLOAD_SPEC_PROFILES_HH

#include "workload/spec_profiles.hh"

#include "common/log.hh"

namespace mtrap
{

namespace
{

struct SpecEntry
{
    const char *name;
    WorkloadProfile profile;
};

/**
 * Profile factory. Parameters map to behaviour classes:
 *  - footprint / hot_kib / hot_pct: working-set size + temporal locality
 *  - stride_bytes: stream spatial locality (8 = dense, 64*k = stencil)
 *  - chase_kib: pointer-chase structure size (0 = none used)
 *  - mlp: independent miss streams
 *  - code_blocks: instruction footprint
 */
WorkloadProfile
make(const char *name, unsigned stream, unsigned random, unsigned chase,
     unsigned compute, unsigned branchy, std::uint64_t footprint_kib,
     unsigned hot_kib, unsigned hot_pct, unsigned stride_bytes,
     unsigned chase_kib, unsigned mlp, unsigned store_pct,
     unsigned code_blocks, unsigned branch_random_pct, unsigned fp_pct)
{
    WorkloadProfile p;
    p.name = name;
    p.threads = 1;
    p.streamOps = stream;
    p.randomOps = random;
    p.chaseOps = chase;
    p.computeOps = compute;
    p.branchyOps = branchy;
    p.dataFootprint = footprint_kib * 1024;
    p.hotBytes = static_cast<std::uint64_t>(hot_kib) * 1024;
    p.hotPct = hot_pct;
    p.streamStrideBytes = stride_bytes;
    p.chaseBytes = static_cast<std::uint64_t>(chase_kib) * 1024;
    p.mlp = mlp;
    p.storePct = store_pct;
    p.codeBlocks = code_blocks;
    p.branchRandomPct = branch_random_pct;
    p.fpPct = fp_pct;
    p.seed = 1000 + static_cast<std::uint64_t>(name[0]) * 13
             + static_cast<std::uint64_t>(name[1]);
    return p;
}

const std::vector<SpecEntry> &
table()
{
    // Columns: stream random chase compute branchy | footprintKiB hotKiB
    // hot% strideB chaseKiB mlp store% codeBlocks branchRnd% fp%
    static const std::vector<SpecEntry> t = {
        // astar: pathfinding — pointer chasing over an L2-sized graph +
        // hard data-dependent branches; STT suffers on it (§6.3).
        {"astar", make("astar", 0, 2, 3, 6, 3,
                       2048, 32, 92, 8, 256, 2, 10, 2, 70, 0)},
        // bwaves: FP stencil, huge streaming footprint, high MLP —
        // hurt by the small filter cache (fig 3: spec state evicted
        // before commit).
        {"bwaves", make("bwaves", 8, 4, 0, 6, 0,
                        16384, 64, 75, 64, 0, 6, 20, 1, 0, 60)},
        // bzip2: mixed integer compression; good locality with a tail.
        {"bzip2", make("bzip2", 3, 2, 0, 8, 2,
                       1024, 32, 92, 8, 0, 2, 25, 2, 40, 0)},
        // cactusADM: stencil whose large stride conflicts in the
        // low-associativity filter (fig 6 commentary).
        {"cactusADM", make("cactusADM", 8, 0, 0, 6, 0,
                           8192, 32, 90, 512, 0, 4, 20, 1, 0, 70)},
        // calculix: FP compute-bound, small working set.
        {"calculix", make("calculix", 1, 0, 0, 14, 1,
                          128, 32, 95, 8, 0, 1, 10, 1, 10, 70)},
        // gamess: quantum chemistry, almost pure compute.
        {"gamess", make("gamess", 1, 0, 0, 16, 1,
                        64, 16, 98, 8, 0, 1, 5, 2, 5, 80)},
        // gcc: compiler — branchy, medium footprint, large code.
        {"gcc", make("gcc", 2, 2, 1, 6, 4,
                     2048, 64, 92, 8, 128, 2, 25, 6, 50, 0)},
        // GemsFDTD: FP solver, large random footprint, high MLP.
        {"GemsFDTD", make("GemsFDTD", 4, 5, 0, 6, 0,
                          1024, 64, 85, 16, 0, 5, 15, 1, 0, 70)},
        // gobmk: go engine — extremely branchy.
        {"gobmk", make("gobmk", 1, 1, 1, 6, 6,
                       512, 32, 92, 8, 128, 1, 15, 4, 70, 0)},
        // gromacs: MD, compute with streaming.
        {"gromacs", make("gromacs", 3, 0, 0, 12, 1,
                         512, 32, 92, 8, 0, 2, 15, 2, 10, 70)},
        // h264ref: video encode — stream + compute, good locality.
        {"h264ref", make("h264ref", 4, 1, 0, 10, 2,
                         256, 64, 94, 8, 0, 2, 30, 3, 30, 20)},
        // hmmer: profile HMM — small hot loop, very high locality.
        {"hmmer", make("hmmer", 2, 0, 0, 12, 1,
                       16, 16, 98, 8, 0, 1, 20, 1, 10, 0)},
        // lbm: lattice-Boltzmann — dense stream with stores; in-order
        // prefetch helps it significantly (fig 3/9).
        {"lbm", make("lbm", 10, 0, 0, 3, 2,
                     16384, 32, 90, 16, 0, 4, 40, 1, 60, 60)},
        // leslie3d: stencil streams where prefetch timeliness matters —
        // commit-time prefetch hurts (fig 9).
        {"leslie3d", make("leslie3d", 8, 1, 0, 5, 0,
                          8192, 32, 88, 32, 0, 3, 25, 1, 0, 70)},
        // libquantum: sequential sweeps over a big vector.
        {"libquantum", make("libquantum", 9, 0, 0, 4, 1,
                            8192, 32, 90, 16, 0, 3, 20, 1, 5, 60)},
        // mcf: pointer-heavy network simplex — dependent L2/DRAM misses.
        {"mcf", make("mcf", 0, 2, 2, 4, 2,
                     8192, 64, 90, 8, 2048, 2, 10, 1, 50, 0)},
        // milc: lattice QCD — random large-footprint FP.
        {"milc", make("milc", 3, 5, 0, 6, 0,
                      8192, 64, 85, 16, 0, 4, 20, 1, 0, 70)},
        // namd: MD compute with a noticeable code footprint (ifcache
        // penalty in fig 9).
        {"namd", make("namd", 2, 1, 0, 12, 1,
                      512, 64, 92, 8, 0, 2, 10, 12, 10, 70)},
        // omnetpp: discrete-event sim — pointer chasing + the largest
        // code footprint (instruction filter penalty, fig 3).
        {"omnetpp", make("omnetpp", 0, 2, 2, 5, 3,
                         2048, 64, 92, 8, 256, 2, 15, 16, 50, 0)},
        // povray: ray tracer — small hot data, compute-heavy; *sped up*
        // by the 1-cycle L0 (fig 3).
        {"povray", make("povray", 2, 1, 2, 10, 2,
                        64, 2, 97, 8, 2, 1, 10, 2, 20, 60)},
        // sjeng: chess — branchy with a code footprint.
        {"sjeng", make("sjeng", 1, 2, 1, 6, 5,
                       512, 32, 90, 8, 64, 1, 10, 10, 60, 0)},
        // soplex: LP solver — mixed stream/random over big matrices.
        {"soplex", make("soplex", 4, 3, 0, 6, 2,
                        8192, 64, 88, 16, 0, 3, 20, 2, 30, 40)},
        // sphinx3: speech — streaming with random lookups.
        {"sphinx3", make("sphinx3", 5, 3, 0, 6, 1,
                         2048, 64, 90, 8, 0, 3, 10, 2, 20, 50)},
        // tonto: quantum chemistry — compute.
        {"tonto", make("tonto", 1, 1, 0, 14, 1,
                       256, 32, 95, 8, 0, 1, 10, 3, 10, 70)},
        // xalancbmk: XML — branchy pointer chasing, big code.
        {"xalancbmk", make("xalancbmk", 1, 2, 3, 5, 4,
                           2048, 64, 92, 8, 256, 2, 15, 8, 50, 0)},
        // zeusmp: CFD — stream + random + stores + code, hurt by "a
        // combination of all of these factors" (fig 3).
        {"zeusmp", make("zeusmp", 6, 4, 0, 5, 1,
                        8192, 32, 85, 128, 0, 4, 30, 8, 20, 60)},
    };
    return t;
}

} // namespace

const std::vector<std::string> &
specBenchmarkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &e : table())
            v.push_back(e.name);
        return v;
    }();
    return names;
}

WorkloadProfile
specProfile(const std::string &name)
{
    for (const auto &e : table()) {
        if (name != e.name)
            continue;
        WorkloadProfile p = e.profile;
        // Indirect (pointer-table + dereference) traffic for the
        // graph/container benchmarks: the access pattern whose MLP
        // load-restricting schemes destroy (paper §6.3).
        if (name == "astar")
            p.indirectOps = 3;
        else if (name == "omnetpp" || name == "xalancbmk")
            p.indirectOps = 3;
        else if (name == "mcf")
            p.indirectOps = 2;
        else if (name == "gcc" || name == "soplex")
            p.indirectOps = 1;
        return p;
    }
    fatal("unknown SPEC profile '%s'", name.c_str());
}

Workload
buildSpecWorkload(const std::string &name)
{
    return buildWorkload(specProfile(name));
}

} // namespace mtrap

#include "cache/cache.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

namespace
{

/** Interned once per process; shared by every cache of every level. */
StatSchema &
cacheStatSchema()
{
    static StatSchema s("cache");
    return s;
}

double
cacheMissRate(const void *ctx)
{
    const Cache *c = static_cast<const Cache *>(ctx);
    const double h = static_cast<double>(c->hits.value());
    const double m = static_cast<double>(c->misses.value());
    return (h + m) > 0 ? m / (h + m) : 0.0;
}

} // namespace

Cache::Cache(const CacheParams &params, StatGroup *parent)
    : params_(params),
      stats_(cacheStatSchema(), params.name, parent),
      hits(&stats_, "hits", "demand hits"),
      misses(&stats_, "misses", "demand misses"),
      fills(&stats_, "fills", "lines installed"),
      evictions(&stats_, "evictions", "valid lines evicted by fills"),
      invalidations(&stats_, "invalidations", "lines invalidated"),
      mshrStalls(&stats_, "mshr_stalls", "misses delayed by full MSHRs"),
      mshrMerges(&stats_, "mshr_merges",
                 "misses merged into an outstanding same-line fill"),
      missRate(&stats_, "miss_rate", "misses / (hits+misses)",
               &cacheMissRate, this)
{
    if (params.sizeBytes % (static_cast<std::uint64_t>(params.assoc)
                            * kLineBytes) != 0) {
        fatal("%s: size %llu not divisible by assoc %u * line %u",
              params.name.c_str(),
              static_cast<unsigned long long>(params.sizeBytes),
              params.assoc, kLineBytes);
    }
    sets_ = static_cast<unsigned>(params.sizeBytes
                                  / (params.assoc * kLineBytes));
    if (!isPow2(sets_))
        fatal("%s: set count %u must be a power of two",
              params.name.c_str(), sets_);
    lines_.allocate(sets_, params.assoc);
    repl_ = Replacement::create(params.repl, sets_, params.assoc,
                                params.seed);
    mshrFree_.assign(std::max(1u, params.mshrs), 0);
}

CacheLine &
Cache::fill(Addr paddr, CoherState st, Eviction *ev)
{
    if (st == CoherState::Invalid)
        panic("%s: filling with Invalid state", params_.name.c_str());

    const Addr ln = lineNum(paddr);
    const unsigned set = setIndex(paddr);
    CacheLine *base = lines_.set(set); // first fill touch constructs

    // Refill of a line already present just updates state.
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid() && base[w].ptag == ln) {
            base[w].state = st;
            repl_->touchLine(set, w, base[w]);
            if (ev)
                *ev = Eviction{};
            return base[w];
        }
    }

    // Prefer an invalid way.
    unsigned way = params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid()) {
            way = w;
            break;
        }
    }

    Eviction local{};
    if (way == params_.assoc) {
        way = repl_->victim(set, base, params_.assoc);
        CacheLine &v = base[way];
        local.valid = true;
        local.ptag = v.ptag;
        local.state = v.state;
        local.dirty = v.dirty;
        local.committed = v.committed;
        ++evictions;
    }
    if (ev)
        *ev = local;

    CacheLine &l = base[way];
    l.clear();
    l.ptag = ln;
    l.state = st;
    repl_->filled(set, way, l);
    ++fills;
    return l;
}

bool
Cache::invalidate(Addr paddr)
{
    CacheLine *l = peek(paddr);
    if (!l)
        return false;
    l->clear();
    ++invalidations;
    return true;
}

void
Cache::invalidateAll()
{
    lines_.forEachTouchedLine([this](CacheLine &l) {
        if (l.valid()) {
            l.clear();
            ++invalidations;
        }
    });
}

unsigned
Cache::validLineCount() const
{
    unsigned n = 0;
    lines_.forEachTouchedLine([&n](const CacheLine &l) {
        if (l.valid())
            ++n;
    });
    return n;
}

void
Cache::saveState(Serializer &s) const
{
    // Touched sets, sparse, in ascending index order. Lines are
    // trivially-copyable PODs; the format version covers their layout.
    s.u32(lines_.touchedSetCount());
    lines_.forEachTouchedSet([&](unsigned set, const CacheLine *base) {
        s.u32(set);
        s.raw(base, sizeof(CacheLine) * params_.assoc);
    });

    repl_->saveState(s);
    s.vec(mshrFree_);

    // FlatWordMap iteration order is unspecified; sort for a
    // deterministic byte stream.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> fills_vec;
    fills_vec.reserve(inflightFills_.size());
    inflightFills_.forEach([&](std::uint64_t k, std::uint64_t v) {
        fills_vec.emplace_back(k, v);
    });
    std::sort(fills_vec.begin(), fills_vec.end());
    s.u64(fills_vec.size());
    for (const auto &[k, v] : fills_vec) {
        s.u64(k);
        s.u64(v);
    }
}

void
Cache::restoreState(Deserializer &d)
{
    lines_.resetTouched();
    const std::uint32_t touched = d.u32();
    for (std::uint32_t i = 0; i < touched; ++i) {
        const std::uint32_t set = d.u32();
        if (set >= sets_)
            throw SnapshotError("cache set index out of range");
        d.raw(lines_.set(set), sizeof(CacheLine) * params_.assoc);
    }

    repl_->restoreState(d);
    std::vector<Cycle> mshr;
    d.vec(mshr);
    if (mshr.size() != mshrFree_.size())
        throw SnapshotError("MSHR slot count mismatch");
    mshrFree_ = std::move(mshr);

    inflightFills_.clear();
    const std::uint64_t nfills = d.u64();
    for (std::uint64_t i = 0; i < nfills; ++i) {
        const std::uint64_t k = d.u64();
        const std::uint64_t v = d.u64();
        inflightFills_.put(k, v);
    }
}

Cycle
Cache::reserveMshr(Addr paddr, Cycle when, Cycle miss_latency)
{
    const Addr line = lineNum(paddr);

    // Merge with an outstanding fill of the same line: the data arrives
    // with the first fill, no new slot is consumed.
    if (const Cycle *arr = inflightFills_.find(line)) {
        if (*arr > when) {
            ++mshrMerges;
            const Cycle arrival = *arr;
            return arrival > when + miss_latency
                       ? arrival - when - miss_latency
                       : 0;
        }
    }

    // Pick the slot that frees earliest.
    auto it = std::min_element(mshrFree_.begin(), mshrFree_.end());
    Cycle delay = 0;
    if (*it > when) {
        delay = *it - when;
        ++mshrStalls;
    }
    *it = when + delay + miss_latency;
    inflightFills_.put(line, *it);

    // Bound the tracking map (timestamps are not globally monotonic —
    // wrong-path issues run "in the past" — so dropping an entry whose
    // arrival has passed *this* access's time is a semantic decision,
    // not just a space one; keep the historical threshold and filter).
    if (inflightFills_.size() > 8 * mshrFree_.size()) {
        inflightFills_.eraseIf(
            [when](std::uint64_t, std::uint64_t arrival) {
                return arrival <= when;
            });
    }
    return delay;
}

} // namespace mtrap

/**
 * @file
 * Replacement policies for set-associative caches.
 *
 * A policy sees one set (an array of CacheLine) and picks a victim way;
 * touch/fill hooks keep per-line stamps. TreePLRU keeps per-set tree
 * bits owned by the policy object.
 */

#ifndef MTRAP_CACHE_REPLACEMENT_HH
#define MTRAP_CACHE_REPLACEMENT_HH

#include <memory>
#include <vector>

#include "cache/line.hh"
#include "common/rng.hh"

namespace mtrap
{

/** Replacement-policy selector. */
enum class ReplPolicy : std::uint8_t { Lru, Fifo, Random, TreePlru };

/** Name for printing. */
const char *replPolicyName(ReplPolicy p);

/** Abstract replacement policy over a cache's geometry. */
class Replacement
{
  public:
    virtual ~Replacement() = default;

    /**
     * Choose a victim way in `set`. Invalid ways are preferred by the
     * caller before this is consulted, so every way here is valid.
     */
    virtual unsigned victim(unsigned set_idx,
                            const std::vector<CacheLine *> &set) = 0;

    /** A hit touched `way`. */
    virtual void touched(unsigned set_idx, unsigned way, CacheLine &line);

    /** A fill installed into `way`. */
    virtual void filled(unsigned set_idx, unsigned way, CacheLine &line);

    /** Factory. `sets`/`ways` describe the cache geometry. */
    static std::unique_ptr<Replacement> create(ReplPolicy p, unsigned sets,
                                               unsigned ways,
                                               std::uint64_t seed);

  protected:
    std::uint64_t stamp_ = 0;
};

/** Least-recently-used via per-line stamps. */
class LruReplacement : public Replacement
{
  public:
    unsigned victim(unsigned set_idx,
                    const std::vector<CacheLine *> &set) override;
};

/** First-in-first-out via fill stamps. */
class FifoReplacement : public Replacement
{
  public:
    unsigned victim(unsigned set_idx,
                    const std::vector<CacheLine *> &set) override;
};

/** Uniform-random victim. */
class RandomReplacement : public Replacement
{
  public:
    explicit RandomReplacement(std::uint64_t seed) : rng_(seed) {}
    unsigned victim(unsigned set_idx,
                    const std::vector<CacheLine *> &set) override;

  private:
    Rng rng_;
};

/** Tree pseudo-LRU (binary decision tree per set). */
class TreePlruReplacement : public Replacement
{
  public:
    TreePlruReplacement(unsigned sets, unsigned ways);

    unsigned victim(unsigned set_idx,
                    const std::vector<CacheLine *> &set) override;
    void touched(unsigned set_idx, unsigned way, CacheLine &line) override;
    void filled(unsigned set_idx, unsigned way, CacheLine &line) override;

  private:
    void mark(unsigned set_idx, unsigned way);

    unsigned ways_;
    unsigned nodesPerSet_;
    std::vector<std::uint8_t> bits_;
};

} // namespace mtrap

#endif // MTRAP_CACHE_REPLACEMENT_HH

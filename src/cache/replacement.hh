/**
 * @file
 * Replacement policies for set-associative caches.
 *
 * A policy sees one set (an array of CacheLine) and picks a victim way;
 * touch/fill hooks keep per-line stamps. TreePLRU keeps per-set tree
 * bits owned by the policy object.
 */

#ifndef MTRAP_CACHE_REPLACEMENT_HH
#define MTRAP_CACHE_REPLACEMENT_HH

#include <memory>
#include <vector>

#include "cache/line.hh"
#include "common/rng.hh"

namespace mtrap
{

class Serializer;
class Deserializer;

/** Replacement-policy selector. */
enum class ReplPolicy : std::uint8_t { Lru, Fifo, Random, TreePlru };

/** Name for printing. */
const char *replPolicyName(ReplPolicy p);

/** Abstract replacement policy over a cache's geometry. */
class Replacement
{
  public:
    virtual ~Replacement() = default;

    /**
     * Choose a victim way among the `ways` contiguous lines at `set`.
     * Invalid ways are preferred by the caller before this is
     * consulted, so every way here is valid. Takes the line array
     * directly (no per-call view construction — this is the fill hot
     * path).
     */
    virtual unsigned victim(unsigned set_idx, const CacheLine *set,
                            unsigned ways) = 0;

    /** A hit touched `way`. */
    virtual void touched(unsigned set_idx, unsigned way, CacheLine &line);

    /** A fill installed into `way`. */
    virtual void filled(unsigned set_idx, unsigned way, CacheLine &line);

    /**
     * Hit-path dispatch. Most policies need no virtual call per cache
     * hit:
     *  - Stamp (LRU, Random): write the shared stamp to the line.
     *  - CountOnly (FIFO): advance the counter but leave the line's
     *    stamp as its fill order — exactly the stamp stream the old
     *    separate lastUse/fillStamp pair produced.
     *  - Virtual (TreePLRU): full virtual dispatch (tree-bit updates).
     */
    void touchLine(unsigned set_idx, unsigned way, CacheLine &line)
    {
        switch (touchKind_) {
          case TouchKind::Stamp:
            line.replStamp = ++stamp_;
            break;
          case TouchKind::CountOnly:
            ++stamp_;
            break;
          case TouchKind::Virtual:
            touched(set_idx, way, line);
            break;
        }
    }

    /** Factory. `sets`/`ways` describe the cache geometry. */
    static std::unique_ptr<Replacement> create(ReplPolicy p, unsigned sets,
                                               unsigned ways,
                                               std::uint64_t seed);

    /** Checkpoint the policy's state (stamp counter; subclasses append
     *  RNG state / tree bits). */
    virtual void saveState(Serializer &s) const;
    virtual void restoreState(Deserializer &d);

  protected:
    enum class TouchKind : std::uint8_t { Stamp, CountOnly, Virtual };

    std::uint64_t stamp_ = 0;
    TouchKind touchKind_ = TouchKind::Stamp;
};

/** Least-recently-used via per-line stamps. */
class LruReplacement : public Replacement
{
  public:
    unsigned victim(unsigned set_idx, const CacheLine *set,
                    unsigned ways) override;
};

/** First-in-first-out via fill stamps. */
class FifoReplacement : public Replacement
{
  public:
    FifoReplacement() { touchKind_ = TouchKind::CountOnly; }
    unsigned victim(unsigned set_idx, const CacheLine *set,
                    unsigned ways) override;
    /** Touches advance the stamp counter but must not overwrite the
     *  line's fill-order stamp. */
    void touched(unsigned set_idx, unsigned way, CacheLine &line) override;
};

/** Uniform-random victim. */
class RandomReplacement : public Replacement
{
  public:
    explicit RandomReplacement(std::uint64_t seed) : rng_(seed) {}
    unsigned victim(unsigned set_idx, const CacheLine *set,
                    unsigned ways) override;
    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

  private:
    Rng rng_;
};

/** Tree pseudo-LRU (binary decision tree per set). */
class TreePlruReplacement : public Replacement
{
  public:
    TreePlruReplacement(unsigned sets, unsigned ways);

    unsigned victim(unsigned set_idx, const CacheLine *set,
                    unsigned ways) override;
    void touched(unsigned set_idx, unsigned way, CacheLine &line) override;
    void filled(unsigned set_idx, unsigned way, CacheLine &line) override;
    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

  private:
    void mark(unsigned set_idx, unsigned way);

    unsigned ways_;
    unsigned nodesPerSet_;
    std::vector<std::uint8_t> bits_;
};

} // namespace mtrap

#endif // MTRAP_CACHE_REPLACEMENT_HH

#include "cache/replacement.hh"

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

const char *
coherStateName(CoherState s)
{
    switch (s) {
      case CoherState::Invalid: return "I";
      case CoherState::Shared: return "S";
      case CoherState::Exclusive: return "E";
      case CoherState::Modified: return "M";
    }
    return "?";
}

const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Lru: return "lru";
      case ReplPolicy::Fifo: return "fifo";
      case ReplPolicy::Random: return "random";
      case ReplPolicy::TreePlru: return "tree-plru";
    }
    return "?";
}

void
Replacement::touched(unsigned, unsigned, CacheLine &line)
{
    line.replStamp = ++stamp_;
}

void
Replacement::filled(unsigned, unsigned, CacheLine &line)
{
    line.replStamp = ++stamp_;
}

void
FifoReplacement::touched(unsigned, unsigned, CacheLine &)
{
    ++stamp_;
}

std::unique_ptr<Replacement>
Replacement::create(ReplPolicy p, unsigned sets, unsigned ways,
                    std::uint64_t seed)
{
    switch (p) {
      case ReplPolicy::Lru:
        return std::make_unique<LruReplacement>();
      case ReplPolicy::Fifo:
        return std::make_unique<FifoReplacement>();
      case ReplPolicy::Random:
        return std::make_unique<RandomReplacement>(seed);
      case ReplPolicy::TreePlru:
        return std::make_unique<TreePlruReplacement>(sets, ways);
    }
    panic("unknown replacement policy");
}

void
Replacement::saveState(Serializer &s) const
{
    s.u64(stamp_);
}

void
Replacement::restoreState(Deserializer &d)
{
    stamp_ = d.u64();
}

void
RandomReplacement::saveState(Serializer &s) const
{
    Replacement::saveState(s);
    std::uint64_t st[4];
    rng_.saveState(st);
    for (std::uint64_t w : st)
        s.u64(w);
}

void
RandomReplacement::restoreState(Deserializer &d)
{
    Replacement::restoreState(d);
    std::uint64_t st[4];
    for (std::uint64_t &w : st)
        w = d.u64();
    rng_.restoreState(st);
}

void
TreePlruReplacement::saveState(Serializer &s) const
{
    Replacement::saveState(s);
    s.vec(bits_);
}

void
TreePlruReplacement::restoreState(Deserializer &d)
{
    Replacement::restoreState(d);
    std::vector<std::uint8_t> bits;
    d.vec(bits);
    if (bits.size() != bits_.size())
        throw SnapshotError("tree-plru bit array size mismatch");
    bits_ = std::move(bits);
}

unsigned
LruReplacement::victim(unsigned, const CacheLine *set, unsigned ways)
{
    unsigned best = 0;
    for (unsigned w = 1; w < ways; ++w)
        if (set[w].replStamp < set[best].replStamp)
            best = w;
    return best;
}

unsigned
FifoReplacement::victim(unsigned, const CacheLine *set, unsigned ways)
{
    unsigned best = 0;
    for (unsigned w = 1; w < ways; ++w)
        if (set[w].replStamp < set[best].replStamp)
            best = w;
    return best;
}

unsigned
RandomReplacement::victim(unsigned, const CacheLine *, unsigned ways)
{
    return static_cast<unsigned>(rng_.below(ways));
}

TreePlruReplacement::TreePlruReplacement(unsigned sets, unsigned ways)
    : ways_(ways)
{
    touchKind_ = TouchKind::Virtual;
    if (!isPow2(ways))
        fatal("tree-plru requires power-of-two associativity, got %u", ways);
    nodesPerSet_ = ways > 1 ? ways - 1 : 1;
    bits_.assign(static_cast<std::size_t>(sets) * nodesPerSet_, 0);
}

void
TreePlruReplacement::mark(unsigned set_idx, unsigned way)
{
    if (ways_ <= 1)
        return;
    // Walk from the root, flipping each node to point *away* from `way`.
    std::uint8_t *tree = &bits_[static_cast<std::size_t>(set_idx)
                                * nodesPerSet_];
    unsigned node = 0;
    unsigned lo = 0, hi = ways_;
    while (hi - lo > 1) {
        unsigned mid = (lo + hi) / 2;
        if (way < mid) {
            tree[node] = 1;     // LRU side is the right half
            node = 2 * node + 1;
            hi = mid;
        } else {
            tree[node] = 0;     // LRU side is the left half
            node = 2 * node + 2;
            lo = mid;
        }
    }
}

unsigned
TreePlruReplacement::victim(unsigned set_idx, const CacheLine *,
                            unsigned ways)
{
    if (ways_ <= 1)
        return 0;
    if (ways != ways_)
        panic("tree-plru: set size %u != ways %u", ways, ways_);
    const std::uint8_t *tree = &bits_[static_cast<std::size_t>(set_idx)
                                      * nodesPerSet_];
    unsigned node = 0;
    unsigned lo = 0, hi = ways_;
    while (hi - lo > 1) {
        unsigned mid = (lo + hi) / 2;
        if (tree[node]) {       // 1 => LRU is on the right
            node = 2 * node + 2;
            lo = mid;
        } else {                // 0 => LRU is on the left
            node = 2 * node + 1;
            hi = mid;
        }
    }
    return lo;
}

void
TreePlruReplacement::touched(unsigned set_idx, unsigned way, CacheLine &line)
{
    Replacement::touched(set_idx, way, line);
    mark(set_idx, way);
}

void
TreePlruReplacement::filled(unsigned set_idx, unsigned way, CacheLine &line)
{
    Replacement::filled(set_idx, way, line);
    mark(set_idx, way);
}

} // namespace mtrap

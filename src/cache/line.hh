/**
 * @file
 * Cache-line metadata shared by non-speculative caches and the
 * speculative filter caches.
 *
 * Data values are never stored in lines (see mem/memory.hh); a line is
 * pure metadata: tag(s), MESI state, and the MuonTrap additions — the
 * *committed* bit, the fill-level tag used for prefetch-commit
 * notifications, and the SE pseudo-state marker (paper §4.2, §4.5, §4.6).
 */

#ifndef MTRAP_CACHE_LINE_HH
#define MTRAP_CACHE_LINE_HH

#include "common/types.hh"

namespace mtrap
{

/** MESI coherence state. Filter caches may only ever be I or S (with the
 *  SE annotation riding on top of S). */
enum class CoherState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Human-readable state name. */
const char *coherStateName(CoherState s);

/**
 * Metadata for one cache line.
 *
 * Kept deliberately small (24 bytes): the line arrays of a Table-1
 * system total several megabytes and every lookup/peek walks them, so
 * their footprint sets the simulator's hardware-cache behaviour. The
 * filter caches' virtual tags live in a FilterCache-side array rather
 * than here, and the replacement stamp is shared between LRU (updated
 * on touch and fill) and FIFO (updated on fill only — the policy
 * controls when it advances, see Replacement::touchLine).
 */
struct CacheLine
{
    /** Physical line number (paddr >> kLineShift); tag+index combined. */
    Addr ptag = kAddrInvalid;
    /** Replacement bookkeeping: policy-defined stamp (LRU last-touch /
     *  FIFO fill order). */
    std::uint64_t replStamp = 0;
    CoherState state = CoherState::Invalid;
    /**
     * MuonTrap committed bit (§4.2): false while the line was brought in
     * by a still-speculative instruction. Always true in non-speculative
     * caches.
     */
    bool committed = true;
    /**
     * SE pseudo-state (§4.5): the line behaves as Shared, but when the
     * owning load commits the L1 launches an asynchronous upgrade to E.
     */
    bool sePending = false;
    /** Dirty bit for write-back caches. */
    bool dirty = false;
    /** Deepest hierarchy level the fill came from (1=L1,2=L2,3=mem);
     *  selects the prefetch-commit notification target (§4.6). */
    std::uint8_t fillLevel = 0;
    /** True if the line was installed by a prefetch and not yet demand
     *  referenced (prefetcher accuracy accounting). */
    bool prefetched = false;

    bool valid() const { return state != CoherState::Invalid; }

    /** Reset to an empty line. */
    void
    clear()
    {
        *this = CacheLine();
    }
};

} // namespace mtrap

#endif // MTRAP_CACHE_LINE_HH

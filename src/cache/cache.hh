/**
 * @file
 * Generic physically-indexed set-associative cache tag array.
 *
 * This class provides the mechanics every cache level shares: lookup,
 * fill with victim selection, invalidation, and MSHR occupancy
 * accounting. It takes no coherence decisions — the bus (coherence/) and
 * the MuonTrap controller (muontrap/) drive state transitions through
 * the accessors here.
 */

#ifndef MTRAP_CACHE_CACHE_HH
#define MTRAP_CACHE_CACHE_HH

#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "cache/line.hh"
#include "common/buffer_pool.hh"
#include "common/flat_map.hh"
#include "cache/replacement.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mtrap
{

class Serializer;
class Deserializer;

/** Geometry and timing of one cache. */
struct CacheParams
{
    StatName name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    Cycle hitLatency = 1;
    unsigned mshrs = 4;
    ReplPolicy repl = ReplPolicy::Lru;
    std::uint64_t seed = 1;
};

/** Description of a line pushed out by a fill. */
struct Eviction
{
    bool valid = false;
    Addr ptag = kAddrInvalid;
    CoherState state = CoherState::Invalid;
    bool dirty = false;
    bool committed = true;
};

/**
 * Lazily-initialised cache-line storage over a pooled buffer.
 *
 * A Table-1 L2's line array is ~2 MB of metadata, and eagerly
 * default-constructing it dominated System construction (~0.5 ms) for
 * the short-run sweeps (attack choreographies, harness job churn) that
 * build thousands of systems while touching a handful of sets each.
 * Storage comes raw from the BufferPool; a per-set bitmap records which
 * sets have been constructed, and a set's lines are default-initialised
 * on first *fill* touch. Probes of untouched sets report a miss without
 * faulting the set in, so construction cost is O(sets/64) words instead
 * of O(size).
 */
class LineArray
{
  public:
    LineArray() = default;
    LineArray(const LineArray &) = delete;
    LineArray &operator=(const LineArray &) = delete;

    ~LineArray()
    {
        BufferPool::instance().release(data_, bytes());
    }

    /** Allocate (uninitialised) storage for sets*ways lines. */
    void allocate(unsigned sets, unsigned ways)
    {
        static_assert(std::is_trivially_destructible_v<CacheLine>,
                      "lazy storage skips destructors");
        sets_ = sets;
        ways_ = ways;
        data_ = static_cast<CacheLine *>(
            BufferPool::instance().acquire(bytes()));
        if (!data_)
            throw std::bad_alloc();
        initBits_.assign((sets + 63) / 64, 0);
    }

    std::size_t size() const
    {
        return static_cast<std::size_t>(sets_) * ways_;
    }
    CacheLine *data() { return data_; }
    const CacheLine *data() const { return data_; }

    /** Line `i` of the flat array; the caller must know its set has
     *  been touched (e.g. FilterCache's valid-bit bookkeeping). */
    CacheLine &operator[](std::size_t i) { return data_[i]; }

    /** Base of `set`'s ways, constructing them on first touch. */
    CacheLine *set(unsigned set)
    {
        std::uint64_t &word = initBits_[set >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (set & 63);
        CacheLine *base = data_ + static_cast<std::size_t>(set) * ways_;
        if (!(word & bit)) {
            word |= bit;
            for (unsigned w = 0; w < ways_; ++w)
                new (base + w) CacheLine();
        }
        return base;
    }

    /** Base of `set`'s ways, or nullptr while untouched (probes of
     *  never-filled sets miss without faulting the set in). */
    CacheLine *setIfTouched(unsigned set)
    {
        if (!(initBits_[set >> 6] & (std::uint64_t{1} << (set & 63))))
            return nullptr;
        return data_ + static_cast<std::size_t>(set) * ways_;
    }

    const CacheLine *setIfTouched(unsigned set) const
    {
        return const_cast<LineArray *>(this)->setIfTouched(set);
    }

    /** Visit every touched set in ascending index order: fn(set, base).
     *  The deterministic sparse walk the snapshot layer serialises. */
    template <typename Fn>
    void forEachTouchedSet(Fn &&fn) const
    {
        for (unsigned s = 0; s < sets_; ++s) {
            const CacheLine *base = setIfTouched(s);
            if (base)
                fn(s, base);
        }
    }

    /** Count of touched (constructed) sets. */
    unsigned touchedSetCount() const
    {
        unsigned n = 0;
        for (std::uint64_t w : initBits_)
            n += static_cast<unsigned>(__builtin_popcountll(w));
        return n;
    }

    /** Forget every touched set (storage stays; sets re-construct on
     *  next touch). Restore paths call this before repopulating. */
    void resetTouched()
    {
        initBits_.assign(initBits_.size(), 0);
    }

    /** Visit every line of every touched set. */
    template <typename Fn>
    void forEachTouchedLine(Fn &&fn)
    {
        for (unsigned s = 0; s < sets_; ++s) {
            CacheLine *base = setIfTouched(s);
            if (!base)
                continue;
            for (unsigned w = 0; w < ways_; ++w)
                fn(base[w]);
        }
    }
    template <typename Fn>
    void forEachTouchedLine(Fn &&fn) const
    {
        for (unsigned s = 0; s < sets_; ++s) {
            const CacheLine *base = setIfTouched(s);
            if (!base)
                continue;
            for (unsigned w = 0; w < ways_; ++w)
                fn(base[w]);
        }
    }

  private:
    std::size_t bytes() const { return size() * sizeof(CacheLine); }

    CacheLine *data_ = nullptr;
    unsigned sets_ = 0;
    unsigned ways_ = 0;
    /** Bit per set: ways constructed. */
    std::vector<std::uint64_t> initBits_;
};

/**
 * Set-associative tag array with statistics and MSHR accounting.
 */
class Cache
{
  public:
    Cache(const CacheParams &params, StatGroup *parent);

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return sets_; }
    unsigned numWays() const { return params_.assoc; }

    /**
     * Look up a physical address. Returns the line (updating replacement
     * state) or nullptr on miss. `paddr` is a full byte address.
     * Defined inline: this is the single hottest call in the memory
     * system and is dispatched from several translation units.
     */
    CacheLine *lookup(Addr paddr)
    {
        const Addr ln = lineNum(paddr);
        const unsigned set = setIndex(paddr);
        CacheLine *base = lines_.setIfTouched(set);
        if (!base)
            return nullptr;
        for (unsigned w = 0; w < params_.assoc; ++w) {
            CacheLine &l = base[w];
            if (l.valid() && l.ptag == ln) {
                repl_->touchLine(set, w, l);
                return &l;
            }
        }
        return nullptr;
    }

    /** Look up without perturbing replacement state (for probes and
     *  snoops). */
    CacheLine *peek(Addr paddr)
    {
        const Addr ln = lineNum(paddr);
        const unsigned set = setIndex(paddr);
        CacheLine *base = lines_.setIfTouched(set);
        if (!base)
            return nullptr;
        for (unsigned w = 0; w < params_.assoc; ++w)
            if (base[w].valid() && base[w].ptag == ln)
                return &base[w];
        return nullptr;
    }
    const CacheLine *peek(Addr paddr) const
    {
        return const_cast<Cache *>(this)->peek(paddr);
    }

    /**
     * Install a line for `paddr` with state `st`. If the set is full the
     * replacement policy evicts; the victim is described in `ev` (may be
     * nullptr if the caller doesn't care). Returns the filled line.
     */
    CacheLine &fill(Addr paddr, CoherState st, Eviction *ev = nullptr);

    /** Invalidate a specific address if present. True if it was.
     *  Virtual so the filter cache can clear its register valid bit. */
    virtual bool invalidate(Addr paddr);

    /** Invalidate the whole cache (slow path; the filter cache overrides
     *  this with a flash clear). */
    virtual void invalidateAll();

    /** Iterate over every valid line (snoop helpers, verification).
     *  Templated visitor — the callable is inlined into the loop, no
     *  std::function construction or indirect call per line. */
    template <typename Fn>
    void forEachLine(Fn &&fn)
    {
        lines_.forEachTouchedLine([&](CacheLine &l) {
            if (l.valid())
                fn(l);
        });
    }

    /** Number of currently valid lines. */
    unsigned validLineCount() const;

    /**
     * MSHR contention: reserve a miss-handling slot for a miss to
     * `paddr`'s line starting at `when` that would complete after
     * `miss_latency`. Returns the extra queueing delay (0 when a slot is
     * free). A miss to a line that already has an outstanding fill is
     * *merged* into the existing MSHR (no new slot; the data arrives
     * when the first fill does).
     */
    Cycle reserveMshr(Addr paddr, Cycle when, Cycle miss_latency);

    /**
     * Checkpoint the cache's mutable state: touched line sets (sparse),
     * replacement-policy state, MSHR slots and in-flight fills. Stats
     * sheets are handled by the System-level stats section. FilterCache
     * extends this with its virtual-tag arrays.
     */
    virtual void saveState(Serializer &s) const;
    virtual void restoreState(Deserializer &d);

    virtual ~Cache() = default;

  protected:
    unsigned setIndex(Addr paddr) const
    {
        return static_cast<unsigned>(lineNum(paddr) & (sets_ - 1));
    }

    CacheParams params_;
    unsigned sets_;
    /** Pool-backed and lazily constructed: systems are built and torn
     *  down constantly (the attack choreographies, every harness job);
     *  recycling avoids first-touch page faults and the per-set lazy
     *  init avoids paying for megabytes of untouched metadata. */
    LineArray lines_;
    std::unique_ptr<Replacement> repl_;
    std::vector<Cycle> mshrFree_;
    /** Outstanding fills: line number -> data-arrival cycle. */
    FlatWordMap inflightFills_;

    StatGroup stats_;

  public:
    Counter hits;
    Counter misses;
    Counter fills;
    Counter evictions;
    Counter invalidations;
    Counter mshrStalls;
    Counter mshrMerges;
    Formula missRate;
};

} // namespace mtrap

#endif // MTRAP_CACHE_CACHE_HH

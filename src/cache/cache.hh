/**
 * @file
 * Generic physically-indexed set-associative cache tag array.
 *
 * This class provides the mechanics every cache level shares: lookup,
 * fill with victim selection, invalidation, and MSHR occupancy
 * accounting. It takes no coherence decisions — the bus (coherence/) and
 * the MuonTrap controller (muontrap/) drive state transitions through
 * the accessors here.
 */

#ifndef MTRAP_CACHE_CACHE_HH
#define MTRAP_CACHE_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/line.hh"
#include "common/buffer_pool.hh"
#include "common/flat_map.hh"
#include "cache/replacement.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mtrap
{

/** Geometry and timing of one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    Cycle hitLatency = 1;
    unsigned mshrs = 4;
    ReplPolicy repl = ReplPolicy::Lru;
    std::uint64_t seed = 1;
};

/** Description of a line pushed out by a fill. */
struct Eviction
{
    bool valid = false;
    Addr ptag = kAddrInvalid;
    CoherState state = CoherState::Invalid;
    bool dirty = false;
    bool committed = true;
};

/**
 * Set-associative tag array with statistics and MSHR accounting.
 */
class Cache
{
  public:
    Cache(const CacheParams &params, StatGroup *parent);

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return sets_; }
    unsigned numWays() const { return params_.assoc; }

    /**
     * Look up a physical address. Returns the line (updating replacement
     * state) or nullptr on miss. `paddr` is a full byte address.
     * Defined inline: this is the single hottest call in the memory
     * system and is dispatched from several translation units.
     */
    CacheLine *lookup(Addr paddr)
    {
        const Addr ln = lineNum(paddr);
        const unsigned set = setIndex(paddr);
        CacheLine *base =
            &lines_[static_cast<std::size_t>(set) * params_.assoc];
        for (unsigned w = 0; w < params_.assoc; ++w) {
            CacheLine &l = base[w];
            if (l.valid() && l.ptag == ln) {
                repl_->touchLine(set, w, l);
                return &l;
            }
        }
        return nullptr;
    }

    /** Look up without perturbing replacement state (for probes and
     *  snoops). */
    CacheLine *peek(Addr paddr)
    {
        const Addr ln = lineNum(paddr);
        const unsigned set = setIndex(paddr);
        CacheLine *base =
            &lines_[static_cast<std::size_t>(set) * params_.assoc];
        for (unsigned w = 0; w < params_.assoc; ++w)
            if (base[w].valid() && base[w].ptag == ln)
                return &base[w];
        return nullptr;
    }
    const CacheLine *peek(Addr paddr) const
    {
        return const_cast<Cache *>(this)->peek(paddr);
    }

    /**
     * Install a line for `paddr` with state `st`. If the set is full the
     * replacement policy evicts; the victim is described in `ev` (may be
     * nullptr if the caller doesn't care). Returns the filled line.
     */
    CacheLine &fill(Addr paddr, CoherState st, Eviction *ev = nullptr);

    /** Invalidate a specific address if present. True if it was.
     *  Virtual so the filter cache can clear its register valid bit. */
    virtual bool invalidate(Addr paddr);

    /** Invalidate the whole cache (slow path; the filter cache overrides
     *  this with a flash clear). */
    virtual void invalidateAll();

    /** Iterate over every valid line (snoop helpers, verification).
     *  Templated visitor — the callable is inlined into the loop, no
     *  std::function construction or indirect call per line. */
    template <typename Fn>
    void forEachLine(Fn &&fn)
    {
        for (auto &l : lines_)
            if (l.valid())
                fn(l);
    }

    /** Number of currently valid lines. */
    unsigned validLineCount() const;

    /**
     * MSHR contention: reserve a miss-handling slot for a miss to
     * `paddr`'s line starting at `when` that would complete after
     * `miss_latency`. Returns the extra queueing delay (0 when a slot is
     * free). A miss to a line that already has an outstanding fill is
     * *merged* into the existing MSHR (no new slot; the data arrives
     * when the first fill does).
     */
    Cycle reserveMshr(Addr paddr, Cycle when, Cycle miss_latency);

    virtual ~Cache() = default;

  protected:
    unsigned setIndex(Addr paddr) const
    {
        return static_cast<unsigned>(lineNum(paddr) & (sets_ - 1));
    }

    CacheParams params_;
    unsigned sets_;
    /** Pool-allocated: systems are built and torn down constantly (the
     *  attack choreographies, every harness job) and recycling the
     *  multi-megabyte line arrays avoids first-touch page faults. */
    std::vector<CacheLine, PoolAllocator<CacheLine>> lines_;
    std::unique_ptr<Replacement> repl_;
    std::vector<Cycle> mshrFree_;
    /** Outstanding fills: line number -> data-arrival cycle. */
    FlatWordMap inflightFills_;

    StatGroup stats_;

  public:
    Counter hits;
    Counter misses;
    Counter fills;
    Counter evictions;
    Counter invalidations;
    Counter mshrStalls;
    Counter mshrMerges;
    Formula missRate;
};

} // namespace mtrap

#endif // MTRAP_CACHE_CACHE_HH

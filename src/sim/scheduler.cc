#include "sim/scheduler.hh"

#include "common/log.hh"

namespace mtrap
{

Scheduler::Scheduler(Core *core, Cycle quantum)
    : core_(core), quantum_(quantum)
{
    if (!core)
        fatal("scheduler: null core");
    if (quantum == 0)
        fatal("scheduler: zero quantum");
}

void
Scheduler::addTask(const Program *program, Asid asid)
{
    Task t;
    t.ctx.program = program;
    t.ctx.asid = asid;
    t.ctx.pc = program->entry;
    tasks_.push_back(std::move(t));
}

bool
Scheduler::allHalted() const
{
    for (const auto &t : tasks_)
        if (!t.ctx.halted)
            return false;
    return true;
}

std::size_t
Scheduler::nextRunnable(std::size_t from) const
{
    for (std::size_t i = 1; i <= tasks_.size(); ++i) {
        const std::size_t cand = (from + i) % tasks_.size();
        if (!tasks_[cand].ctx.halted)
            return cand;
    }
    return from;
}

std::uint64_t
Scheduler::run(std::uint64_t total_commits)
{
    if (tasks_.empty())
        fatal("scheduler: no tasks");

    std::uint64_t done = 0;
    if (!running_) {
        core_->setContext(tasks_[current_].ctx);
        tasks_[current_].started = true;
        running_ = true;
        sliceStart_ = core_->now();
    }

    while (done < total_commits && !allHalted()) {
        if (core_->halted()) {
            // Record the final state and move on.
            tasks_[current_].ctx = core_->saveContext();
            if (allHalted())
                break;
            const std::size_t next = nextRunnable(current_);
            current_ = next;
            core_->contextSwitch(tasks_[current_].ctx);
            ++switches_;
            sliceStart_ = core_->now();
            continue;
        }

        const std::uint64_t chunk = 512;
        done += core_->run(std::min(chunk, total_commits - done));

        if (core_->now() - sliceStart_ >= quantum_ && tasks_.size() > 1) {
            tasks_[current_].ctx = core_->saveContext();
            current_ = nextRunnable(current_);
            core_->contextSwitch(tasks_[current_].ctx);
            ++switches_;
            sliceStart_ = core_->now();
        }
    }

    tasks_[current_].ctx = core_->saveContext();
    return done;
}

} // namespace mtrap

#include "sim/scheduler.hh"

#include <algorithm>
#include <numeric>
#include <ostream>

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

Scheduler::Scheduler(std::vector<Core *> cores, const SchedParams &params)
    : params_(params)
{
    if (cores.empty())
        fatal("scheduler: no cores");
    if (params.quantum == 0)
        fatal("scheduler: zero quantum");
    cores_.reserve(cores.size());
    for (Core *c : cores) {
        if (!c)
            fatal("scheduler: null core");
        CoreState cs;
        cs.core = c;
        cores_.push_back(std::move(cs));
    }
    // Legacy --sched-trace: a private, detached ring (no stat-tree
    // footprint). A System-attached Tracer overrides it via setTracer.
    if (params_.trace)
        ownTracer_ = std::make_unique<Tracer>(
            static_cast<unsigned>(cores_.size()), TraceParams{},
            /*parent=*/nullptr);
}

Scheduler::Scheduler(Core *core, Cycle quantum)
    : Scheduler(std::vector<Core *>{core},
                SchedParams{quantum, /*gang=*/true, /*migrate=*/true})
{
}

std::vector<CoreId>
Scheduler::leastLoadedCores(std::size_t n) const
{
    std::vector<CoreId> ids(cores_.size());
    std::iota(ids.begin(), ids.end(), 0);
    std::stable_sort(ids.begin(), ids.end(), [this](CoreId a, CoreId b) {
        return cores_[a].queue.size() < cores_[b].queue.size();
    });
    ids.resize(n);
    std::sort(ids.begin(), ids.end());
    return ids;
}

JobId
Scheduler::addTask(const Program *program, Asid asid)
{
    return addJob({program}, asid);
}

JobId
Scheduler::addJob(const std::vector<const Program *> &threads, Asid asid)
{
    if (threads.empty())
        fatal("scheduler: job with no threads");
    if (threads.size() > cores_.size())
        fatal("scheduler: job needs %zu cores, scheduler has %zu",
              threads.size(), cores_.size());

    const JobId job = static_cast<JobId>(jobFirstTask_.size());
    jobFirstTask_.push_back(tasks_.size());
    jobThreads_.push_back(static_cast<unsigned>(threads.size()));

    const std::vector<CoreId> chosen = leastLoadedCores(threads.size());

    // Gang alignment: pad the chosen cores' queues to a common length so
    // every member lands at the same queue index and therefore runs in
    // the same slots (the holes become idle slots).
    if (params_.gang && threads.size() > 1) {
        std::size_t longest = 0;
        for (CoreId c : chosen)
            longest = std::max(longest, cores_[c].queue.size());
        for (CoreId c : chosen)
            cores_[c].queue.resize(longest, kIdle);
    }

    for (unsigned t = 0; t < threads.size(); ++t) {
        Task task;
        task.ctx.program = threads[t];
        task.ctx.asid = asid;
        task.ctx.pc = threads[t]->entry;
        task.job = job;
        task.thread = t;
        task.gangMember = threads.size() > 1;
        task.core = chosen[t];
        cores_[chosen[t]].queue.push_back(
            static_cast<int>(tasks_.size()));
        cores_[chosen[t]].parked = false;
        tasks_.push_back(std::move(task));
    }
    return job;
}

std::vector<CoreId>
Scheduler::placement(JobId job) const
{
    if (job >= jobFirstTask_.size())
        fatal("scheduler: unknown job %u", job);
    std::vector<CoreId> cores;
    for (unsigned t = 0; t < jobThreads_[job]; ++t)
        cores.push_back(tasks_[jobFirstTask_[job] + t].core);
    return cores;
}

void
Scheduler::saveState(Serializer &s) const
{
    s.u64(tasks_.size());
    for (const Task &t : tasks_) {
        saveArchContext(s, t.ctx);
        s.b(t.started);
        s.u32(t.core);
    }
    for (const CoreState &cs : cores_) {
        s.vec(cs.queue);
        s.i64(cs.resident);
        s.u64(cs.done);
        s.b(cs.parked);
    }
    s.i64(resumeCore_);
    s.u64(switches_);
    s.u64(migrations_);
    s.u64(idleSlots_);
    if (ownTracer_)
        ownTracer_->saveState(s);
}

void
Scheduler::restoreState(Deserializer &d)
{
    const std::uint64_t nt = d.u64();
    if (nt != tasks_.size())
        throw SnapshotError("scheduled task count mismatch");
    for (Task &t : tasks_) {
        restoreArchContext(d, t.ctx); // keeps t.ctx.program
        t.started = d.b();
        t.core = d.u32();
        if (t.core >= cores_.size())
            throw SnapshotError("task placed on nonexistent core");
    }
    for (CoreState &cs : cores_) {
        d.vec(cs.queue);
        for (int e : cs.queue)
            if (e != kIdle &&
                (e < 0 || static_cast<std::size_t>(e) >= tasks_.size()))
                throw SnapshotError("run-queue entry out of range");
        const std::int64_t res = d.i64();
        if (res < -1 || res >= static_cast<std::int64_t>(tasks_.size()))
            throw SnapshotError("resident task out of range");
        cs.resident = static_cast<int>(res);
        cs.done = d.u64();
        cs.parked = d.b();
    }
    const std::int64_t rc = d.i64();
    if (rc < -1 || rc >= static_cast<std::int64_t>(cores_.size()))
        throw SnapshotError("resume core out of range");
    resumeCore_ = static_cast<int>(rc);
    switches_ = d.u64();
    migrations_ = d.u64();
    idleSlots_ = d.u64();
    if (ownTracer_)
        ownTracer_->restoreState(d);

    // The cores restored their contexts minus the Program pointer;
    // re-attach each resident task's program (installed by the
    // replayed admission) and re-bind its decoded stream.
    for (CoreState &cs : cores_)
        if (cs.resident >= 0)
            cs.core->restoreProgramBinding(tasks_[cs.resident].ctx.program);
}

bool
Scheduler::allHalted() const
{
    for (const auto &t : tasks_)
        if (!t.ctx.halted)
            return false;
    return true;
}

unsigned
Scheduler::runnableCount(const CoreState &cs) const
{
    unsigned n = 0;
    for (int e : cs.queue)
        if (e != kIdle && !tasks_[e].ctx.halted)
            ++n;
    return n;
}

Scheduler::Pick
Scheduler::designate(const CoreState &cs) const
{
    Pick p;
    if (cs.queue.empty() || runnableCount(cs) == 0) {
        p.none = true;
        return p;
    }
    const std::size_t len = cs.queue.size();
    const std::size_t start =
        static_cast<std::size_t>(cs.core->now() / params_.quantum) % len;
    if (cs.queue[start] == kIdle) {
        p.idle = true;
        return p;
    }
    // Fall forward past halted tasks and holes to the next runnable
    // entry (classic round-robin degradation once tasks finish).
    for (std::size_t i = 0; i < len; ++i) {
        const int e = cs.queue[(start + i) % len];
        if (e != kIdle && !tasks_[e].ctx.halted) {
            p.task = e;
            return p;
        }
    }
    p.none = true;
    return p;
}

void
Scheduler::installOn(CoreState &cs, int task)
{
    if (cs.resident == task)
        return;
    if (cs.resident >= 0) {
        tasks_[cs.resident].ctx = cs.core->saveContext();
        cs.core->contextSwitch(tasks_[task].ctx);
        ++switches_;
    } else {
        // Virgin core: nothing ran here, so there is no prior-domain
        // state to flush; plain installation, as System::loadWorkload.
        cs.core->setContext(tasks_[task].ctx);
    }
    tasks_[task].started = true;
    cs.resident = task;
}

void
Scheduler::idleSkip(CoreState &cs)
{
    const Cycle slot = cs.core->now() / params_.quantum;
    cs.core->advanceClockTo((slot + 1) * params_.quantum);
    ++idleSlots_;
}

void
Scheduler::rebalance()
{
    if (!params_.migrate)
        return;
    while (true) {
        // A starving core: nothing runnable queued.
        int target = -1;
        for (std::size_t c = 0; c < cores_.size(); ++c) {
            if (runnableCount(cores_[c]) == 0) {
                target = static_cast<int>(c);
                break;
            }
        }
        if (target < 0)
            return;

        // Donor: the most loaded core with a movable (runnable,
        // single-threaded, not resident) task. Gang members stay
        // pinned so co-scheduling survives load balancing.
        int donor = -1, candidate = -1;
        unsigned donorLoad = 1; // need at least 2 runnable to donate
        for (std::size_t c = 0; c < cores_.size(); ++c) {
            const CoreState &cs = cores_[c];
            const unsigned load = runnableCount(cs);
            if (load <= donorLoad)
                continue;
            int cand = -1;
            for (std::size_t i = cs.queue.size(); i-- > 0;) {
                const int e = cs.queue[i];
                if (e != kIdle && !tasks_[e].ctx.halted
                    && !tasks_[e].gangMember && e != cs.resident) {
                    cand = static_cast<int>(i);
                    break;
                }
            }
            if (cand >= 0) {
                donor = static_cast<int>(c);
                donorLoad = load;
                candidate = cand;
            }
        }
        if (donor < 0)
            return;

        CoreState &from = cores_[donor];
        const int task = from.queue[candidate];
        bool donorHasGang = false;
        for (int e : from.queue)
            donorHasGang |= (e != kIdle && tasks_[e].gangMember);
        if (donorHasGang) {
            // Keep the donor queue's length (and so its gang members'
            // slot alignment) intact: leave a hole.
            from.queue[candidate] = kIdle;
        } else {
            from.queue.erase(from.queue.begin() + candidate);
        }

        CoreState &to = cores_[target];
        to.queue.push_back(task);
        to.parked = false;
        tasks_[task].core = static_cast<CoreId>(target);
        ++migrations_;
        if (Tracer *t = activeTracer())
            t->recordSched(static_cast<CoreId>(target),
                           TraceEventKind::SchedMigrate,
                           to.core->now(), tasks_[task].job,
                           static_cast<std::uint32_t>(donor));
    }
}

int
Scheduler::pickCore() const
{
    if (resumeCore_ >= 0)
        return resumeCore_;
    int best = -1;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        const CoreState &cs = cores_[c];
        if (cs.parked || cs.queue.empty())
            continue;
        if (best < 0 || cs.core->now() < cores_[best].core->now())
            best = static_cast<int>(c);
    }
    return best;
}

std::uint64_t
Scheduler::run(std::uint64_t total_commits)
{
    if (tasks_.empty())
        fatal("scheduler: no tasks");

    std::uint64_t done = 0;
    while (done < total_commits) {
        const int c = pickCore();
        if (c < 0)
            break; // everything halted (or unreachable)
        CoreState &cs = cores_[static_cast<std::size_t>(c)];

        // Scheduling decisions only at grid points of this core's
        // commit stream; a resumed mid-chunk core skips straight to
        // execution so external budget chunking can't move decisions.
        if (cs.done % kChunk == 0) {
            const Pick pick = designate(cs);
            if (activeTracer())
                recordDecision(cs, static_cast<CoreId>(c), pick);
            if (pick.none) {
                cs.parked = true;
                continue;
            }
            if (pick.idle) {
                idleSkip(cs);
                continue;
            }
            // Install and run immediately (rather than re-selecting):
            // the switch cost already advanced this core's clock, and
            // running at least one chunk before the next decision
            // guarantees forward progress for any quantum, including
            // quanta shorter than the context-switch cost.
            if (pick.task != cs.resident)
                installOn(cs, pick.task);
        }

        const std::uint64_t n = std::min(
            total_commits - done, kChunk - cs.done % kChunk);
        const std::uint64_t did = cs.core->run(n);
        done += did;
        cs.done += did;

        if (cs.core->halted()) {
            // Record the final state; snap to the next grid point so
            // the next visit is a scheduling decision.
            tasks_[cs.resident].ctx = cs.core->saveContext();
            cs.done += (kChunk - cs.done % kChunk) % kChunk;
            resumeCore_ = -1;
            rebalance();
        } else {
            resumeCore_ = (cs.done % kChunk != 0) ? c : -1;
        }
    }
    return done;
}

void
Scheduler::recordDecision(const CoreState &cs, CoreId core,
                          const Pick &pick)
{
    Tracer *t = activeTracer();
    const Cycle when = cs.core->now();
    if (pick.none) {
        t->recordSched(core, TraceEventKind::SchedPark, when);
    } else if (pick.idle) {
        t->recordSched(core, TraceEventKind::SchedIdle, when);
    } else {
        t->recordSched(core, TraceEventKind::SchedRun, when,
                       tasks_[pick.task].job,
                       tasks_[pick.task].thread);
    }
}

std::vector<SchedTraceRow>
Scheduler::trace() const
{
    std::vector<SchedTraceRow> rows;
    const Tracer *t = activeTracer();
    if (!t)
        return rows;
    for (const TraceEvent &e : t->schedBuffer().ordered()) {
        SchedTraceRow row;
        row.when = e.when;
        row.slot = e.when / params_.quantum;
        row.core = e.core;
        switch (e.kind) {
          case TraceEventKind::SchedRun:
            row.action = "run";
            row.job = static_cast<int>(e.arg0);
            row.thread = static_cast<int>(e.arg1);
            break;
          case TraceEventKind::SchedIdle:
            row.action = "idle";
            break;
          case TraceEventKind::SchedPark:
            row.action = "park";
            break;
          default:
            continue; // migrations are not decision rows
        }
        rows.push_back(row);
    }
    return rows;
}

void
writeSchedTrace(const Scheduler &sched, std::ostream &os)
{
    os << "cycle,slot,core,job,thread,action\n";
    for (const SchedTraceRow &r : sched.trace()) {
        os << r.when << "," << r.slot << ","
           << static_cast<unsigned>(r.core) << "," << r.job << ","
           << r.thread << "," << r.action << "\n";
    }
}

} // namespace mtrap

#include "sim/scheduler.hh"

#include <algorithm>
#include <numeric>
#include <ostream>

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

Scheduler::Scheduler(std::vector<Core *> cores, const SchedParams &params)
    : params_(params)
{
    if (cores.empty())
        fatal("scheduler: no cores");
    if (params.quantum == 0)
        fatal("scheduler: zero quantum");
    cores_.reserve(cores.size());
    for (Core *c : cores) {
        if (!c)
            fatal("scheduler: null core");
        CoreState cs;
        cs.core = c;
        cores_.push_back(std::move(cs));
    }
    // Legacy --sched-trace: a private, detached ring (no stat-tree
    // footprint). A System-attached Tracer overrides it via setTracer.
    if (params_.trace)
        ownTracer_ = std::make_unique<Tracer>(
            static_cast<unsigned>(cores_.size()), TraceParams{},
            /*parent=*/nullptr);
}

Scheduler::Scheduler(Core *core, Cycle quantum)
    : Scheduler(std::vector<Core *>{core},
                SchedParams{quantum, /*gang=*/true, /*migrate=*/true})
{
}

std::vector<CoreId>
Scheduler::leastLoadedCores(std::size_t n) const
{
    std::vector<CoreId> ids(cores_.size());
    std::iota(ids.begin(), ids.end(), 0);
    std::stable_sort(ids.begin(), ids.end(), [this](CoreId a, CoreId b) {
        return cores_[a].queue.size() < cores_[b].queue.size();
    });
    ids.resize(n);
    std::sort(ids.begin(), ids.end());
    return ids;
}

JobId
Scheduler::addTask(const Program *program, Asid asid)
{
    return addJob({program}, asid);
}

JobId
Scheduler::addJob(const std::vector<const Program *> &threads, Asid asid)
{
    return addJob(threads, asid, JobAdmit{});
}

JobId
Scheduler::addJob(const std::vector<const Program *> &threads, Asid asid,
                  const JobAdmit &admit)
{
    if (threads.empty())
        fatal("scheduler: job with no threads");
    if (threads.size() > cores_.size())
        fatal("scheduler: job needs %zu cores, scheduler has %zu",
              threads.size(), cores_.size());
    if (admit.weight == 0)
        fatal("scheduler: job weight must be >= 1");

    const JobId job = static_cast<JobId>(jobFirstTask_.size());
    jobFirstTask_.push_back(tasks_.size());
    jobThreads_.push_back(static_cast<unsigned>(threads.size()));

    const std::vector<CoreId> chosen = leastLoadedCores(threads.size());

    // Mid-run admission onto an idle core: the core's clock may be
    // arbitrarily far behind the arrival cycle (it parked long ago).
    // Advance it so the job cannot be scheduled before it arrived —
    // cores with live work are already at or past the arrival cycle
    // (admission happens from the minimum-clock running core).
    if (admit.arrivalCycle) {
        for (CoreId c : chosen) {
            CoreState &cs = cores_[c];
            if (runnableCount(cs) == 0
                && cs.core->now() < admit.arrivalCycle)
                cs.core->advanceClockTo(admit.arrivalCycle);
        }
    }

    // Gang alignment: pad the chosen cores' queues to a common length so
    // every member lands at the same queue index and therefore runs in
    // the same slots (the holes become idle slots).
    if (params_.gang && threads.size() > 1) {
        std::size_t longest = 0;
        for (CoreId c : chosen)
            longest = std::max(longest, cores_[c].queue.size());
        for (CoreId c : chosen)
            cores_[c].queue.resize(longest, kIdle);
    }

    for (unsigned t = 0; t < threads.size(); ++t) {
        Task task;
        task.ctx.program = threads[t];
        task.ctx.asid = asid;
        task.ctx.pc = threads[t]->entry;
        task.job = job;
        task.thread = t;
        task.gangMember = threads.size() > 1;
        task.core = chosen[t];
        task.lastCore = chosen[t];
        task.serviceLimit = admit.serviceLimit;
        task.arrivalCycle = admit.arrivalCycle;
        task.deadline = admit.deadline;
        task.weight = admit.weight;
        task.sleepPeriodCommits = admit.sleepPeriodCommits;
        task.sleepDurationCycles = admit.sleepDurationCycles;
        // Weighted quanta: weight w = w consecutive queue entries, so
        // the task owns w of every round's slots. Consecutive placement
        // keeps the copies contiguous (fewer switches) and keeps gang
        // members' indices aligned (all members share one weight).
        for (unsigned w = 0; w < admit.weight; ++w)
            cores_[chosen[t]].queue.push_back(
                static_cast<int>(tasks_.size()));
        cores_[chosen[t]].parked = false;
        tasks_.push_back(std::move(task));
    }

    if ((openSystem_ || admit.arrivalCycle) && activeTracer())
        activeTracer()->recordSched(chosen[0],
                                    TraceEventKind::SchedArrive,
                                    admit.arrivalCycle, job,
                                    static_cast<std::uint32_t>(
                                        threads.size()));
    return job;
}

void
Scheduler::setArrivalSource(ArrivalSource *arrivals)
{
    arrivals_ = arrivals;
    openSystem_ = arrivals != nullptr;
}

std::vector<CoreId>
Scheduler::placement(JobId job) const
{
    if (job >= jobFirstTask_.size())
        fatal("scheduler: unknown job %u", job);
    std::vector<CoreId> cores;
    for (unsigned t = 0; t < jobThreads_[job]; ++t)
        cores.push_back(tasks_[jobFirstTask_[job] + t].core);
    return cores;
}

void
Scheduler::saveState(Serializer &s) const
{
    s.u64(tasks_.size());
    for (const Task &t : tasks_) {
        saveArchContext(s, t.ctx);
        s.b(t.started);
        s.u32(t.core);
        s.u64(t.serviceLimit);
        s.u64(t.committed);
        s.u64(t.arrivalCycle);
        s.u64(t.firstRunCycle);
        s.u64(t.finishCycle);
        s.u64(t.deadline);
        s.u32(t.weight);
        s.u64(t.sleepPeriodCommits);
        s.u64(t.sleepDurationCycles);
        s.u64(t.commitsTowardSleep);
        s.u64(t.sleepUntil);
        s.u32(t.lastCore);
    }
    for (const CoreState &cs : cores_) {
        s.vec(cs.queue);
        s.i64(cs.resident);
        s.u64(cs.done);
        s.b(cs.parked);
        s.u64(cs.busyCycles);
    }
    s.i64(resumeCore_);
    s.u64(switches_);
    s.u64(migrations_);
    s.u64(idleSlots_);
    if (ownTracer_)
        ownTracer_->saveState(s);
}

void
Scheduler::restoreState(Deserializer &d)
{
    const std::uint64_t nt = d.u64();
    if (nt != tasks_.size())
        throw SnapshotError("scheduled task count mismatch");
    for (Task &t : tasks_) {
        restoreArchContext(d, t.ctx); // keeps t.ctx.program
        t.started = d.b();
        t.core = d.u32();
        if (t.core >= cores_.size())
            throw SnapshotError("task placed on nonexistent core");
        t.serviceLimit = d.u64();
        t.committed = d.u64();
        t.arrivalCycle = d.u64();
        t.firstRunCycle = d.u64();
        t.finishCycle = d.u64();
        t.deadline = d.u64();
        t.weight = d.u32();
        if (t.weight == 0)
            throw SnapshotError("task weight must be >= 1");
        t.sleepPeriodCommits = d.u64();
        t.sleepDurationCycles = d.u64();
        t.commitsTowardSleep = d.u64();
        t.sleepUntil = d.u64();
        t.lastCore = d.u32();
        if (t.lastCore >= cores_.size())
            throw SnapshotError("task last core out of range");
    }
    for (CoreState &cs : cores_) {
        d.vec(cs.queue);
        for (int e : cs.queue)
            if (e != kIdle &&
                (e < 0 || static_cast<std::size_t>(e) >= tasks_.size()))
                throw SnapshotError("run-queue entry out of range");
        const std::int64_t res = d.i64();
        if (res < -1 || res >= static_cast<std::int64_t>(tasks_.size()))
            throw SnapshotError("resident task out of range");
        cs.resident = static_cast<int>(res);
        cs.done = d.u64();
        cs.parked = d.b();
        cs.busyCycles = d.u64();
    }
    const std::int64_t rc = d.i64();
    if (rc < -1 || rc >= static_cast<std::int64_t>(cores_.size()))
        throw SnapshotError("resume core out of range");
    resumeCore_ = static_cast<int>(rc);
    switches_ = d.u64();
    migrations_ = d.u64();
    idleSlots_ = d.u64();
    if (ownTracer_)
        ownTracer_->restoreState(d);

    // The cores restored their contexts minus the Program pointer;
    // re-attach each resident task's program (installed by the
    // replayed admission) and re-bind its decoded stream.
    for (CoreState &cs : cores_)
        if (cs.resident >= 0)
            cs.core->restoreProgramBinding(tasks_[cs.resident].ctx.program);
}

std::vector<JobRecord>
Scheduler::jobRecords() const
{
    std::vector<JobRecord> out;
    out.reserve(jobFirstTask_.size());
    for (JobId j = 0; j < jobFirstTask_.size(); ++j) {
        JobRecord r;
        r.job = j;
        const Task &t0 = tasks_[jobFirstTask_[j]];
        r.arrival = t0.arrivalCycle;
        r.deadline = t0.deadline;
        r.weight = t0.weight;
        bool all_done = true;
        // A gang's first-run is its earliest member install; its finish
        // is the last member's completion.
        for (unsigned t = 0; t < jobThreads_[j]; ++t) {
            const Task &tk = tasks_[jobFirstTask_[j] + t];
            r.committed += tk.committed;
            all_done &= tk.ctx.halted;
            if (tk.started) {
                r.firstRun = r.started
                    ? std::min(r.firstRun, tk.firstRunCycle)
                    : tk.firstRunCycle;
                r.started = true;
            }
            r.finish = std::max(r.finish, tk.finishCycle);
        }
        r.done = all_done;
        if (!all_done)
            r.finish = 0;
        out.push_back(r);
    }
    return out;
}

bool
Scheduler::allHalted() const
{
    for (const auto &t : tasks_)
        if (!t.ctx.halted)
            return false;
    return true;
}

unsigned
Scheduler::runnableCount(const CoreState &cs) const
{
    // Counts *distinct* runnable tasks: a weight-w task holds w queue
    // entries but is one unit of work (counting entries would let the
    // load balancer ping-pong a lone weighted task between two idle
    // cores forever). Queues are a handful of entries, so the quadratic
    // duplicate scan is noise.
    unsigned n = 0;
    for (std::size_t i = 0; i < cs.queue.size(); ++i) {
        const int e = cs.queue[i];
        if (e == kIdle || tasks_[e].ctx.halted)
            continue;
        bool dup = false;
        for (std::size_t j = 0; j < i; ++j)
            dup |= (cs.queue[j] == e);
        if (!dup)
            ++n;
    }
    return n;
}

Scheduler::Pick
Scheduler::designate(const CoreState &cs) const
{
    Pick p;
    if (cs.queue.empty() || runnableCount(cs) == 0) {
        p.none = true;
        return p;
    }
    const std::size_t len = cs.queue.size();
    const std::size_t start =
        static_cast<std::size_t>(cs.core->now() / params_.quantum) % len;
    if (cs.queue[start] == kIdle) {
        p.idle = true;
        return p;
    }
    // Fall forward past halted tasks, holes and sleeping (IO-wait)
    // tasks to the next ready entry (classic round-robin degradation
    // once tasks finish).
    const Cycle now = cs.core->now();
    for (std::size_t i = 0; i < len; ++i) {
        const int e = cs.queue[(start + i) % len];
        if (e != kIdle && !tasks_[e].ctx.halted
            && tasks_[e].sleepUntil <= now) {
            p.task = e;
            return p;
        }
    }
    // Runnable entries exist (the count above) but every one is asleep:
    // idle the slot so the clock advances towards the earliest wake.
    p.idle = true;
    return p;
}

void
Scheduler::installOn(CoreState &cs, int task)
{
    if (cs.resident == task)
        return;
    if (!tasks_[task].started)
        tasks_[task].firstRunCycle = cs.core->now();
    if (cs.resident >= 0) {
        // A force-retired task (service limit) already carries its
        // halted context; re-saving would resurrect it from the still
        // live core state.
        if (!tasks_[cs.resident].ctx.halted)
            tasks_[cs.resident].ctx = cs.core->saveContext();
        cs.core->contextSwitch(tasks_[task].ctx);
        ++switches_;
    } else {
        // Virgin core: nothing ran here, so there is no prior-domain
        // state to flush; plain installation, as System::loadWorkload.
        cs.core->setContext(tasks_[task].ctx);
    }
    tasks_[task].started = true;
    tasks_[task].lastCore = static_cast<CoreId>(&cs - cores_.data());
    cs.resident = task;
}

void
Scheduler::idleSkip(CoreState &cs)
{
    const Cycle slot = cs.core->now() / params_.quantum;
    cs.core->advanceClockTo((slot + 1) * params_.quantum);
    ++idleSlots_;
}

void
Scheduler::rebalance()
{
    if (!params_.migrate)
        return;
    while (true) {
        // A starving core: nothing runnable queued.
        int target = -1;
        for (std::size_t c = 0; c < cores_.size(); ++c) {
            if (runnableCount(cores_[c]) == 0) {
                target = static_cast<int>(c);
                break;
            }
        }
        if (target < 0)
            return;

        // Donor: the most loaded core with a movable (runnable,
        // single-threaded, not resident) task. Gang members stay
        // pinned so co-scheduling survives load balancing. With
        // SchedParams::affinity, a candidate that last executed on the
        // starving core wins over the default youngest-queued one: its
        // L1/filter footprint may still be warm there.
        int donor = -1, candidate = -1;
        unsigned donorLoad = 1; // need at least 2 runnable to donate
        for (std::size_t c = 0; c < cores_.size(); ++c) {
            const CoreState &cs = cores_[c];
            const unsigned load = runnableCount(cs);
            if (load <= donorLoad)
                continue;
            int cand = -1, affine = -1;
            for (std::size_t i = cs.queue.size(); i-- > 0;) {
                const int e = cs.queue[i];
                if (e != kIdle && !tasks_[e].ctx.halted
                    && !tasks_[e].gangMember && e != cs.resident) {
                    if (cand < 0)
                        cand = static_cast<int>(i);
                    if (params_.affinity && affine < 0
                        && tasks_[e].started
                        && tasks_[e].lastCore
                               == static_cast<CoreId>(target))
                        affine = static_cast<int>(i);
                }
            }
            if (affine >= 0)
                cand = affine;
            if (cand >= 0) {
                donor = static_cast<int>(c);
                donorLoad = load;
                candidate = cand;
            }
        }
        if (donor < 0)
            return;

        CoreState &from = cores_[donor];
        const int task = from.queue[candidate];
        bool donorHasGang = false;
        for (int e : from.queue)
            donorHasGang |= (e != kIdle && tasks_[e].gangMember);
        // Move *every* queue entry of the task: a weight-w task holds w
        // copies, and splitting them across cores would let two cores
        // install the same context.
        unsigned copies = 0;
        if (donorHasGang) {
            // Keep the donor queue's length (and so its gang members'
            // slot alignment) intact: leave holes.
            for (int &e : from.queue) {
                if (e == task) {
                    e = kIdle;
                    ++copies;
                }
            }
        } else {
            for (std::size_t i = from.queue.size(); i-- > 0;) {
                if (from.queue[i] == task) {
                    from.queue.erase(from.queue.begin()
                                     + static_cast<std::ptrdiff_t>(i));
                    ++copies;
                }
            }
        }

        CoreState &to = cores_[target];
        for (unsigned i = 0; i < copies; ++i)
            to.queue.push_back(task);
        to.parked = false;
        tasks_[task].core = static_cast<CoreId>(target);
        ++migrations_;
        if (Tracer *t = activeTracer())
            t->recordSched(static_cast<CoreId>(target),
                           TraceEventKind::SchedMigrate,
                           to.core->now(), tasks_[task].job,
                           static_cast<std::uint32_t>(donor));
    }
}

int
Scheduler::pickCore() const
{
    if (resumeCore_ >= 0)
        return resumeCore_;
    int best = -1;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        const CoreState &cs = cores_[c];
        if (cs.parked || cs.queue.empty())
            continue;
        if (best < 0 || cs.core->now() < cores_[best].core->now())
            best = static_cast<int>(c);
    }
    return best;
}

std::uint64_t
Scheduler::run(std::uint64_t total_commits)
{
    if (tasks_.empty() && !arrivals_)
        fatal("scheduler: no tasks");

    std::uint64_t done = 0;
    while (done < total_commits) {
        const int c = pickCore();
        if (c < 0) {
            // Nothing runnable anywhere. An open system idles until the
            // next arrival: fast-forward every core to that cycle and
            // admit (the idle gap is real time the report sees in the
            // makespan, not simulated instruction by instruction).
            if (arrivals_) {
                const Cycle at = arrivals_->nextArrivalCycle();
                if (at) {
                    for (CoreState &cs : cores_)
                        if (cs.core->now() < at)
                            cs.core->advanceClockTo(at);
                    arrivals_->admitUpTo(at);
                    continue;
                }
            }
            break; // everything halted (or unreachable)
        }
        CoreState &cs = cores_[static_cast<std::size_t>(c)];

        // Scheduling decisions only at grid points of this core's
        // commit stream; a resumed mid-chunk core skips straight to
        // execution so external budget chunking can't move decisions.
        if (cs.done % kChunk == 0) {
            // Admit arrivals due by this core's clock. pickCore chose
            // the minimum clock over live cores, so the admission point
            // is a deterministic function of simulation state alone —
            // external run() chunking cannot move it.
            if (arrivals_) {
                const Cycle na = arrivals_->nextArrivalCycle();
                if (na && na <= cs.core->now())
                    arrivals_->admitUpTo(cs.core->now());
            }
            const Pick pick = designate(cs);
            if (activeTracer())
                recordDecision(cs, static_cast<CoreId>(c), pick);
            if (pick.none) {
                cs.parked = true;
                continue;
            }
            if (pick.idle) {
                idleSkip(cs);
                continue;
            }
            // Install and run immediately (rather than re-selecting):
            // the switch cost already advanced this core's clock, and
            // running at least one chunk before the next decision
            // guarantees forward progress for any quantum, including
            // quanta shorter than the context-switch cost.
            if (pick.task != cs.resident)
                installOn(cs, pick.task);
        }

        Task &t = tasks_[cs.resident];
        std::uint64_t n = std::min(
            total_commits - done, kChunk - cs.done % kChunk);
        // Cap the chunk at the remaining service demand so completion
        // lands on the exact commit, independent of the grid.
        if (t.serviceLimit)
            n = std::min(n, t.serviceLimit - t.committed);
        const Cycle busy_from = cs.core->now();
        const std::uint64_t did = cs.core->run(n);
        cs.busyCycles += cs.core->now() - busy_from;
        done += did;
        cs.done += did;
        t.committed += did;

        bool complete = cs.core->halted();
        if (complete) {
            // Record the final state; snap to the next grid point so
            // the next visit is a scheduling decision.
            t.ctx = cs.core->saveContext();
        } else if (t.serviceLimit && t.committed >= t.serviceLimit) {
            // Service demand met: retire the job. The program is still
            // architecturally live, so force the halt into the saved
            // context (installOn's halted guard keeps it retired).
            t.ctx = cs.core->saveContext();
            t.ctx.halted = true;
            complete = true;
        }

        if (complete) {
            t.finishCycle = cs.core->now();
            if ((openSystem_ || t.serviceLimit || t.arrivalCycle)
                && activeTracer())
                activeTracer()->recordSched(
                    static_cast<CoreId>(c),
                    TraceEventKind::SchedComplete, cs.core->now(),
                    t.job, t.thread);
            cs.done += (kChunk - cs.done % kChunk) % kChunk;
            resumeCore_ = -1;
            rebalance();
        } else {
            // IO-wait emulation: after each sleep period the task
            // blocks; designation skips it until the wake cycle (a
            // mid-chunk resume may run it a little longer first, which
            // is deterministic and chunking-invariant either way).
            if (t.sleepPeriodCommits) {
                t.commitsTowardSleep += did;
                if (t.commitsTowardSleep >= t.sleepPeriodCommits) {
                    t.commitsTowardSleep -= t.sleepPeriodCommits;
                    t.sleepUntil =
                        cs.core->now() + t.sleepDurationCycles;
                }
            }
            resumeCore_ = (cs.done % kChunk != 0) ? c : -1;
        }
    }
    return done;
}

void
Scheduler::recordDecision(const CoreState &cs, CoreId core,
                          const Pick &pick)
{
    Tracer *t = activeTracer();
    const Cycle when = cs.core->now();
    if (pick.none) {
        t->recordSched(core, TraceEventKind::SchedPark, when);
    } else if (pick.idle) {
        t->recordSched(core, TraceEventKind::SchedIdle, when);
    } else {
        t->recordSched(core, TraceEventKind::SchedRun, when,
                       tasks_[pick.task].job,
                       tasks_[pick.task].thread);
    }
}

std::vector<SchedTraceRow>
Scheduler::trace() const
{
    std::vector<SchedTraceRow> rows;
    const Tracer *t = activeTracer();
    if (!t)
        return rows;
    for (const TraceEvent &e : t->schedBuffer().ordered()) {
        SchedTraceRow row;
        row.when = e.when;
        row.slot = e.when / params_.quantum;
        row.core = e.core;
        switch (e.kind) {
          case TraceEventKind::SchedRun:
            row.action = "run";
            row.job = static_cast<int>(e.arg0);
            row.thread = static_cast<int>(e.arg1);
            break;
          case TraceEventKind::SchedIdle:
            row.action = "idle";
            break;
          case TraceEventKind::SchedPark:
            row.action = "park";
            break;
          default:
            continue; // migrations are not decision rows
        }
        rows.push_back(row);
    }
    return rows;
}

void
writeSchedTrace(const Scheduler &sched, std::ostream &os)
{
    os << "cycle,slot,core,job,thread,action\n";
    for (const SchedTraceRow &r : sched.trace()) {
        os << r.when << "," << r.slot << ","
           << static_cast<unsigned>(r.core) << "," << r.job << ","
           << r.thread << "," << r.action << "\n";
    }
}

} // namespace mtrap

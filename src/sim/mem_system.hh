/**
 * @file
 * The complete memory system: per-core filter caches + L1s + TLBs,
 * shared L2 with stride prefetcher, snooping MESI bus, and main memory,
 * with per-scheme access walks.
 *
 * This is where the paper's mechanisms meet: execute-time accesses are
 * routed into filter structures when MuonTrap is enabled (with the
 * coherence and prefetch restrictions), and commit-time hooks perform
 * the write-through-at-commit, SE upgrades, commit-ordered prefetcher
 * training and filter-TLB promotion.
 */

#ifndef MTRAP_SIM_MEM_SYSTEM_HH
#define MTRAP_SIM_MEM_SYSTEM_HH

#include <array>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "coherence/bus.hh"
#include "common/stats.hh"
#include "cpu/mem_iface.hh"
#include "defense/invisispec.hh"
#include "mem/memory.hh"
#include "muontrap/controller.hh"
#include "prefetch/commit_channel.hh"
#include "prefetch/stride_prefetcher.hh"
#include "tlb/tlb.hh"
#include "tlb/walker.hh"

namespace mtrap
{

/** Hierarchy-wide configuration (defaults = paper Table 1). */
struct MemSystemParams
{
    unsigned cores = 1;

    CacheParams l1d{/*name=*/"l1d", /*size=*/64 * 1024, /*assoc=*/2,
                    /*hitLatency=*/2, /*mshrs=*/4};
    CacheParams l1i{/*name=*/"l1i", /*size=*/32 * 1024, /*assoc=*/2,
                    /*hitLatency=*/1, /*mshrs=*/4};
    CacheParams l2{/*name=*/"l2", /*size=*/2 * 1024 * 1024, /*assoc=*/8,
                   /*hitLatency=*/20, /*mshrs=*/16};
    TlbParams dtlb{/*name=*/"dtlb", /*entries=*/64};
    TlbParams itlb{/*name=*/"itlb", /*entries=*/64};
    BusParams bus{};
    MemoryParams mem{};
    PrefetcherParams prefetcher{};
    bool l2PrefetcherEnabled = true;

    MuonTrapConfig mt{};
};

/**
 * Concrete MemIface implementation shared by every scheme. Also the
 * PTE-read sink for its per-core page-table walkers.
 */
class MemSystem final : public MemIface, public PtwAccessIface
{
  public:
    MemSystem(const MemSystemParams &params, StatGroup *parent);
    ~MemSystem() override;

    const MemSystemParams &params() const { return params_; }

    // --- MemIface ---------------------------------------------------------
    DataAccessResult dataAccess(CoreId core, Asid asid, Addr vaddr,
                                Addr pc, bool is_store, bool speculative,
                                Cycle when) override;
    Cycle dataProbe(CoreId core, Asid asid, Addr vaddr,
                    Cycle when) override;
    bool dataHitsPrivate(CoreId core, Asid asid, Addr vaddr) override;
    Cycle ifetchAccess(CoreId core, Asid asid, Addr vaddr,
                       Cycle when) override;
    void commitData(CoreId core, Asid asid, Addr vaddr, Addr pc,
                    bool is_store, bool tlb_missed, Cycle when) override;
    void commitIfetch(CoreId core, Asid asid, Addr vaddr,
                      Cycle when) override;
    void onSyscall(CoreId core, Cycle when) override;
    void onSandboxSwitch(CoreId core, Cycle when) override;
    void onContextSwitch(CoreId core, Cycle when) override;
    void onFlushBarrier(CoreId core, Cycle when) override;
    void onSquash(CoreId core, Cycle when) override;
    std::uint64_t read(Asid asid, Addr vaddr) override;
    void write(Asid asid, Addr vaddr, std::uint64_t value) override;
    /** Core-attributed functional read, served from the calling core's
     *  word cache (below). The MRU-hit path is inline: it sits under
     *  every functional load of every core and must inline into the
     *  fetch loop without relying on LTO. */
    std::uint64_t
    read(CoreId core, Asid asid, Addr vaddr) override
    {
        FuncReadCache &fc = funcCache_[core];
        FuncLine &l = fc.line[fc.mru];
        if (l.lineVa == (vaddr >> kLineShift) && l.asid == asid &&
            l.ver == vm_.version()) {
            const unsigned w = static_cast<unsigned>(vaddr >> 3) & 7;
            if (l.mask & (1u << w)) {
                l.stamp = ++fc.clock;
                return l.words[w];
            }
        }
        return readMiss(core, asid, vaddr);
    }

    // --- PtwAccessIface -----------------------------------------------------
    /** Walker PTE read: a physically-addressed load down the data path
     *  of the issuing core (acc.core). */
    AccessResult ptwAccess(const Access &acc) override;

    // --- component access (tests, attacks, examples) -----------------------
    AddressSpace &addressSpace() { return vm_; }
    MainMemory &memory() { return *mem_; }
    Cache &l2() { return *l2_; }
    CoherenceBus &bus() { return *bus_; }
    Cache &l1d(CoreId c) { return *l1d_.at(c); }
    Cache &l1i(CoreId c) { return *l1i_.at(c); }
    Tlb &dtlb(CoreId c) { return *dtlb_.at(c); }
    Tlb &itlb(CoreId c) { return *itlb_.at(c); }
    MuonTrapCore &muontrap(CoreId c) { return *mt_.at(c); }
    StridePrefetcher *prefetcher() { return prefetcher_.get(); }
    PrefetchCommitChannel *commitChannel() { return channel_.get(); }

    /** Route memory-side trace hooks (bus, MuonTrap filters, spec
     *  buffers) into `tracer`; null detaches. */
    void setTracer(Tracer *tracer);

    /**
     * Timing probe used by attack kernels to model a victim/attacker
     * *measuring* an access: returns the latency a demand load would see
     * right now, without changing any state anywhere (a perfect stop-
     * watch). `vaddr` is translated functionally.
     */
    Cycle timeProbe(CoreId core, Asid asid, Addr vaddr);

    /** Like timeProbe, but for a *store*: how long would it take this
     *  core to gain write ownership of `vaddr` right now? (Attack 3
     *  measures exactly this.) */
    Cycle timeStoreProbe(CoreId core, Asid asid, Addr vaddr);

    /** Like timeProbe, but through the instruction side (attack 6). */
    Cycle timeIfetchProbe(CoreId core, Asid asid, Addr vaddr);

    /**
     * Checkpoint the whole hierarchy: main memory word store, L2,
     * prefetcher + commit channel (when enabled), then per core the
     * L1s, TLBs, MuonTrap filters and spec buffer. The bus and walkers
     * hold no mutable state beyond statistics. The functional word
     * caches are observably transparent (miss and hit return the same
     * value and cost zero cycles) and are reset on restore instead of
     * being serialized.
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    struct Translation
    {
        Addr paddr = kAddrInvalid;
        Cycle latency = 0;
        bool miss = false;
    };

    /** Split hot/cold: translate() is the TLB-hit fast path (small
     *  enough to inline into the access walks); the filter-TLB probe
     *  and hardware walk live in translateMiss(). */
    Translation translate(CoreId core, Asid asid, Addr vaddr, Cycle when,
                          bool speculative, bool ifetch)
        __attribute__((always_inline));
    Translation translateMiss(Tlb &tlb, CoreId core, Asid asid,
                              Addr vaddr, Cycle when, bool speculative);

    /** Word-cache fill/replace path behind the inline read() fast
     *  path: line scan, LRU tag fill, lazy word probe. */
    std::uint64_t readMiss(CoreId core, Asid asid, Addr vaddr);

    /** Post-translation data walk (also the page-table walker's entry
     *  point, where vaddr == paddr). */
    DataAccessResult dataAccessPhys(CoreId core, Asid asid, Addr vaddr,
                                    Addr paddr, Addr pc, bool is_store,
                                    bool speculative, Cycle when);

    /** Install a line into a non-speculative L1, handling the dirty
     *  victim writeback to L2. */
    CacheLine &fillL1(Cache &l1, Addr paddr, CoherState st);

    /** Commit one filter line: set the committed bit, write through to
     *  the L1 (honouring SE), mirror into the L2, and notify the
     *  prefetch commit channel. */
    void commitFilterLine(CoreId core, CacheLine &line, Addr paddr,
                          Addr pc, Cycle when);

    /** Baseline (no-L0) data walk. */
    DataAccessResult baselineDataAccess(CoreId core, Asid asid, Addr paddr,
                                        Addr pc, bool is_store,
                                        Cycle when, Cycle lat_so_far);

    /** MuonTrap / insecure-L0 data walk. */
    DataAccessResult filterDataAccess(CoreId core, Asid asid, Addr vaddr,
                                      Addr paddr, Addr pc, bool is_store,
                                      bool speculative, Cycle when,
                                      Cycle lat_so_far);

    MemSystemParams params_;
    AddressSpace vm_;
    std::unique_ptr<MainMemory> mem_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<CoherenceBus> bus_;
    std::unique_ptr<StridePrefetcher> prefetcher_;
    std::unique_ptr<PrefetchCommitChannel> channel_;

    /**
     * Raw per-core component pointers for the access hot paths: one
     * contiguous load instead of a vector<unique_ptr> double
     * indirection per component touch. The unique_ptr vectors below
     * own the objects.
     */
    struct CoreSide
    {
        Cache *l1d;
        Cache *l1i;
        Tlb *dtlb;
        Tlb *itlb;
        MuonTrapCore *mt;
        PageTableWalker *walker;
        SpecBuffer *spec;
    };
    std::vector<CoreSide> side_;

    /**
     * Per-core line-keyed word cache in front of MainMemory::read for
     * core functional loads (~2M probes per 10M instructions before it;
     * stream/stride workloads have strong line locality the
     * open-addressing store cannot exploit). Four entries: profile-mix
     * kernels interleave up to `mlp` independent streams, which
     * ping-pong a 2-entry cache.
     *
     * Entries are looked up virtually — (asid, line, mapping version)
     * — so a hit skips the translation too, and tagged physically so a
     * functional write (by any core, through any asid, including
     * cross-asid aliases) can invalidate the written word everywhere.
     * Words fill lazily under a valid mask: a miss probes exactly the
     * word it needs, so sparse access patterns pay no line-fill tax.
     * onContextSwitch drops the switching core's entries wholesale.
     */
    struct FuncLine
    {
        Addr lineVa = kAddrInvalid;      ///< vaddr >> kLineShift
        Addr paBase = kAddrInvalid;      ///< physical line base
        Asid asid = 0;
        std::uint32_t ver = 0;           ///< AddressSpace version
        std::uint32_t stamp = 0;         ///< LRU stamp (clock below)
        std::uint8_t mask = 0;           ///< per-word valid bits
        std::array<std::uint64_t, 8> words{};
    };
    struct FuncReadCache
    {
        std::array<FuncLine, 4> line;
        std::uint8_t mru = 0;            ///< index of last hit entry
        std::uint32_t clock = 0;
    };
    std::vector<FuncReadCache> funcCache_;

    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Tlb>> dtlb_;
    std::vector<std::unique_ptr<Tlb>> itlb_;
    std::vector<std::unique_ptr<MuonTrapCore>> mt_;
    std::vector<std::unique_ptr<PageTableWalker>> walker_;
    std::vector<std::unique_ptr<SpecBuffer>> specBuffer_;

    StatGroup stats_;

  public:
    Counter dataAccesses;
    Counter ifetchAccesses;
    Counter probes;
    Counter recommitFetches;
    Counter commitWriteThroughs;
    Counter seUpgradeRequests;
    Counter dramDemand;
    Counter dramPtw;
};

} // namespace mtrap

#endif // MTRAP_SIM_MEM_SYSTEM_HH

#include "sim/runner.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace mtrap
{

namespace
{

/** The RunOptions::seed re-randomisation shared by both run flavours. */
void
applySeed(SystemConfig &c, std::uint64_t seed)
{
    if (!seed)
        return;
    c.mem.l1d.seed = mixSeeds(c.mem.l1d.seed, seed);
    c.mem.l1i.seed = mixSeeds(c.mem.l1i.seed, seed);
    c.mem.l2.seed = mixSeeds(c.mem.l2.seed, seed);
    c.mem.mt.dataParams.seed = mixSeeds(c.mem.mt.dataParams.seed, seed);
    c.mem.mt.instParams.seed = mixSeeds(c.mem.mt.instParams.seed, seed);
}

} // namespace

RunOutput
runConfigured(const Workload &w, const SystemConfig &cfg,
              const RunOptions &opt, const std::string &config_name)
{
    SystemConfig c = cfg;
    if (c.cores < w.threads())
        c.cores = w.threads();
    c.mem.cores = c.cores;
    applySeed(c, opt.seed);
    if (opt.referenceFetch)
        c.core.decodedFetch = false;

    auto sys = std::make_unique<System>(c);
    if (opt.trace)
        sys->attachTracer(opt.traceParams);
    sys->loadWorkload(w);

    // Warm up caches, TLBs and predictors, then reset statistics.
    sys->run(opt.warmupInstructions);
    sys->resetStats();
    const Cycle start = sys->maxCommitCycle();

    // Interval sampling chunks the measured phase on *absolute* commit
    // targets (System::runTo), so the final chunk lands on exactly the
    // targets a monolithic run() would: a sampled single-core run is
    // identical to an unsampled one, stats included.
    std::unique_ptr<StatSeries> series;
    if (opt.statsInterval) {
        series = std::make_unique<StatSeries>(sys->root(),
                                              opt.statsInterval, start);
        std::vector<std::uint64_t> base(sys->numCores());
        for (unsigned c = 0; c < sys->numCores(); ++c)
            base[c] = sys->core(c).committedCount();
        std::uint64_t done = 0;
        while (done < opt.measureInstructions) {
            done = std::min(done + opt.statsInterval,
                            opt.measureInstructions);
            std::vector<std::uint64_t> targets(base);
            for (std::uint64_t &t : targets)
                t += done;
            sys->runTo(targets);
            series->sample(sys->maxCommitCycle(), done);
        }
    } else {
        sys->run(opt.measureInstructions);
    }
    const Cycle end = sys->maxCommitCycle();

    RunResult r;
    r.workload = w.name;
    r.configName = config_name;
    r.cycles = end > start ? end - start : 1;
    r.instructionsPerCore = opt.measureInstructions;
    r.ipc = static_cast<double>(opt.measureInstructions)
            / static_cast<double>(r.cycles);

    RunOutput out;
    out.result = r;
    out.system = std::move(sys);
    out.statSeries = std::move(series);
    return out;
}

RunOutput
runMixConfigured(const std::vector<Workload> &mix, const SystemConfig &cfg,
                 const SchedParams &sched, const RunOptions &opt,
                 const std::string &config_name)
{
    if (mix.empty())
        fatal("runMixConfigured: empty mix");

    SystemConfig c = cfg;
    for (const Workload &w : mix)
        c.cores = std::max(c.cores, w.threads());
    c.mem.cores = c.cores;
    applySeed(c, opt.seed);
    if (opt.referenceFetch)
        c.core.decodedFetch = false;

    auto sys = std::make_unique<System>(c);
    if (opt.trace)
        sys->attachTracer(opt.traceParams);
    sys->attachScheduler(sched);
    std::string mix_name;
    for (const Workload &w : mix) {
        sys->addScheduledWorkload(w);
        mix_name += (mix_name.empty() ? "" : "+") + w.name;
    }

    const std::uint64_t cores = c.cores;
    sys->runScheduled(opt.warmupInstructions * cores);
    sys->resetStats();
    const Cycle start = sys->maxCommitCycle();

    // Chunked runScheduled == monolithic (the scheduler's determinism
    // contract), so interval sampling observes without perturbing.
    const std::uint64_t total = opt.measureInstructions * cores;
    std::unique_ptr<StatSeries> series;
    if (opt.statsInterval) {
        series = std::make_unique<StatSeries>(sys->root(),
                                              opt.statsInterval, start);
        std::uint64_t done = 0;
        while (done < total) {
            const std::uint64_t step =
                std::min(opt.statsInterval, total - done);
            const std::uint64_t did = sys->runScheduled(step);
            done += did;
            series->sample(sys->maxCommitCycle(), done);
            if (did < step)
                break; // every task halted
        }
    } else {
        sys->runScheduled(total);
    }
    const Cycle end = sys->maxCommitCycle();

    RunResult r;
    r.workload = mix_name;
    r.configName = config_name;
    r.cycles = end > start ? end - start : 1;
    r.instructionsPerCore = opt.measureInstructions;
    r.ipc = static_cast<double>(opt.measureInstructions)
            / static_cast<double>(r.cycles);

    RunOutput out;
    out.result = r;
    out.system = std::move(sys);
    out.statSeries = std::move(series);
    return out;
}

RunResult
runMixScheme(const std::vector<Workload> &mix, Scheme s, unsigned cores,
             const SchedParams &sched, const RunOptions &opt)
{
    const SystemConfig cfg =
        SystemConfig::forScheme(s, std::max(1u, cores));
    return runMixConfigured(mix, cfg, sched, opt, schemeName(s)).result;
}

RunResult
runScheme(const Workload &w, Scheme s, const RunOptions &opt)
{
    const SystemConfig cfg = SystemConfig::forScheme(
        s, std::max(1u, w.threads()));
    return runConfigured(w, cfg, opt, schemeName(s)).result;
}

double
normalizedTime(const RunResult &x, const RunResult &base)
{
    if (base.cycles == 0)
        fatal("normalizedTime: zero baseline cycles");
    return static_cast<double>(x.cycles)
           / static_cast<double>(base.cycles);
}

} // namespace mtrap

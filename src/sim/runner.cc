#include "sim/runner.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"
#include "common/rng.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

/** The RunOptions::seed re-randomisation shared by every run flavour
 *  (single, mix and the open-system server runs in sim/arrival.cc). */
void
applyRunSeed(SystemConfig &c, std::uint64_t seed)
{
    if (!seed)
        return;
    c.mem.l1d.seed = mixSeeds(c.mem.l1d.seed, seed);
    c.mem.l1i.seed = mixSeeds(c.mem.l1i.seed, seed);
    c.mem.l2.seed = mixSeeds(c.mem.l2.seed, seed);
    c.mem.mt.dataParams.seed = mixSeeds(c.mem.mt.dataParams.seed, seed);
    c.mem.mt.instParams.seed = mixSeeds(c.mem.mt.instParams.seed, seed);
}

namespace
{

/**
 * Context fingerprint of a single-workload run: everything besides the
 * SystemConfig that shapes the warm state. Two runs sharing (config
 * fingerprint, context fingerprint) have bit-identical machines at the
 * end of warmup — which is exactly what lets them share a snapshot.
 */
std::uint64_t
runContextFingerprint(const Workload &w, const RunOptions &opt)
{
    Fingerprint fp;
    fp.mix("single");
    fp.mix(w.name);
    fp.mix(w.asid);
    fp.mix(w.threads());
    fp.mix(opt.warmupInstructions);
    fp.mix(opt.trace ? 1 : 0);
    if (opt.trace)
        fp.mix(opt.traceParams.bufferEntries);
    return fp.value();
}

/** Context fingerprint of a scheduled mix run (admission order, asids
 *  and scheduler policy all shape the warm state). */
std::uint64_t
mixContextFingerprint(const std::vector<Workload> &mix,
                      const SchedParams &sched, const RunOptions &opt)
{
    Fingerprint fp;
    fp.mix("mix");
    fp.mix(mix.size());
    for (const Workload &w : mix) {
        fp.mix(w.name);
        fp.mix(w.asid);
        fp.mix(w.threads());
    }
    fp.mix(sched.quantum);
    fp.mix(sched.gang ? 1 : 0);
    fp.mix(sched.migrate ? 1 : 0);
    fp.mix(sched.trace ? 1 : 0);
    fp.mix(opt.warmupInstructions);
    fp.mix(opt.trace ? 1 : 0);
    if (opt.trace)
        fp.mix(opt.traceParams.bufferEntries);
    return fp.value();
}

std::string
warmSnapshotPath(const std::string &dir, std::uint64_t cfg_fp,
                 std::uint64_t ctx_fp)
{
    char name[64];
    std::snprintf(name, sizeof(name), "/warm-%016llx-%016llx.snap",
                  static_cast<unsigned long long>(cfg_fp),
                  static_cast<unsigned long long>(ctx_fp));
    return dir + name;
}

/**
 * The warm phase of a run: restore from an explicit snapshot, hit the
 * warm-fork cache, or execute the warmup (`warm`) — then publish the
 * warm machine wherever the options ask. An unreadable or invalid
 * warm-cache entry counts as a miss (the entry is rewarmed and
 * atomically overwritten); an explicit --snapshot-in failure throws.
 */
template <typename WarmFn>
void
applyWarmPhase(System &sys, const RunOptions &opt, std::uint64_t ctx_fp,
               WarmFn &&warm)
{
    bool restored = false;
    std::string warm_path;
    if (!opt.snapshotIn.empty()) {
        sys.restoreSnapshotFile(opt.snapshotIn, ctx_fp);
        restored = true;
    } else if (!opt.warmSnapshotDir.empty()) {
        warm_path = warmSnapshotPath(opt.warmSnapshotDir,
                                     sys.configFingerprint(), ctx_fp);
        bool valid = true;
        std::vector<std::uint8_t> image;
        try {
            image = readSnapshotFile(warm_path);
            // Validate the full framing (magic, version, fingerprints,
            // CRC) before touching the machine: a failure here leaves
            // the system pristine for the warmup fallback, while a
            // failure inside restoreSnapshot (a fingerprint-matching
            // yet inconsistent file) propagates loudly.
            Deserializer probe(image, sys.configFingerprint(), ctx_fp);
            (void)probe;
        } catch (const SnapshotError &) {
            valid = false;
        }
        if (valid) {
            sys.restoreSnapshot(std::move(image), ctx_fp);
            restored = true;
        }
    }

    if (!restored)
        warm();
    if (!restored && !warm_path.empty())
        sys.saveSnapshotFile(warm_path, ctx_fp);
    if (!opt.snapshotOut.empty())
        sys.saveSnapshotFile(opt.snapshotOut, ctx_fp);
}

} // namespace

RunOutput
runConfigured(const Workload &w, const SystemConfig &cfg,
              const RunOptions &opt, const std::string &config_name)
{
    SystemConfig c = cfg;
    if (c.cores < w.threads())
        c.cores = w.threads();
    c.mem.cores = c.cores;
    applyRunSeed(c, opt.seed);
    if (opt.referenceFetch)
        c.core.decodedFetch = false;

    auto sys = std::make_unique<System>(c);
    if (opt.trace)
        sys->attachTracer(opt.traceParams);
    sys->loadWorkload(w);

    // Warm up caches, TLBs and predictors — or restore the warm
    // machine from a snapshot — then reset statistics.
    applyWarmPhase(*sys, opt, runContextFingerprint(w, opt),
                   [&] { sys->run(opt.warmupInstructions); });
    sys->resetStats();
    const Cycle start = sys->maxCommitCycle();

    // Interval sampling chunks the measured phase on *absolute* commit
    // targets (System::runTo), so the final chunk lands on exactly the
    // targets a monolithic run() would: a sampled single-core run is
    // identical to an unsampled one, stats included.
    std::unique_ptr<StatSeries> series;
    if (opt.statsInterval) {
        series = std::make_unique<StatSeries>(sys->root(),
                                              opt.statsInterval, start);
        std::vector<std::uint64_t> base(sys->numCores());
        for (unsigned c = 0; c < sys->numCores(); ++c)
            base[c] = sys->core(c).committedCount();
        std::uint64_t done = 0;
        while (done < opt.measureInstructions) {
            done = std::min(done + opt.statsInterval,
                            opt.measureInstructions);
            std::vector<std::uint64_t> targets(base);
            for (std::uint64_t &t : targets)
                t += done;
            sys->runTo(targets);
            series->sample(sys->maxCommitCycle(), done);
        }
    } else {
        sys->run(opt.measureInstructions);
    }
    const Cycle end = sys->maxCommitCycle();

    RunResult r;
    r.workload = w.name;
    r.configName = config_name;
    r.cycles = end > start ? end - start : 1;
    r.instructionsPerCore = opt.measureInstructions;
    r.ipc = static_cast<double>(opt.measureInstructions)
            / static_cast<double>(r.cycles);

    RunOutput out;
    out.result = r;
    out.system = std::move(sys);
    out.statSeries = std::move(series);
    return out;
}

RunOutput
runMixConfigured(const std::vector<Workload> &mix, const SystemConfig &cfg,
                 const SchedParams &sched, const RunOptions &opt,
                 const std::string &config_name)
{
    if (mix.empty())
        fatal("runMixConfigured: empty mix");

    SystemConfig c = cfg;
    for (const Workload &w : mix)
        c.cores = std::max(c.cores, w.threads());
    c.mem.cores = c.cores;
    applyRunSeed(c, opt.seed);
    if (opt.referenceFetch)
        c.core.decodedFetch = false;

    auto sys = std::make_unique<System>(c);
    if (opt.trace)
        sys->attachTracer(opt.traceParams);
    sys->attachScheduler(sched);
    std::string mix_name;
    for (const Workload &w : mix) {
        sys->addScheduledWorkload(w);
        mix_name += (mix_name.empty() ? "" : "+") + w.name;
    }

    const std::uint64_t cores = c.cores;
    applyWarmPhase(*sys, opt, mixContextFingerprint(mix, sched, opt),
                   [&] { sys->runScheduled(opt.warmupInstructions * cores); });
    sys->resetStats();
    const Cycle start = sys->maxCommitCycle();

    // Chunked runScheduled == monolithic (the scheduler's determinism
    // contract), so interval sampling observes without perturbing.
    const std::uint64_t total = opt.measureInstructions * cores;
    std::unique_ptr<StatSeries> series;
    if (opt.statsInterval) {
        series = std::make_unique<StatSeries>(sys->root(),
                                              opt.statsInterval, start);
        std::uint64_t done = 0;
        while (done < total) {
            const std::uint64_t step =
                std::min(opt.statsInterval, total - done);
            const std::uint64_t did = sys->runScheduled(step);
            done += did;
            series->sample(sys->maxCommitCycle(), done);
            if (did < step)
                break; // every task halted
        }
    } else {
        sys->runScheduled(total);
    }
    const Cycle end = sys->maxCommitCycle();

    RunResult r;
    r.workload = mix_name;
    r.configName = config_name;
    r.cycles = end > start ? end - start : 1;
    r.instructionsPerCore = opt.measureInstructions;
    r.ipc = static_cast<double>(opt.measureInstructions)
            / static_cast<double>(r.cycles);

    RunOutput out;
    out.result = r;
    out.system = std::move(sys);
    out.statSeries = std::move(series);
    return out;
}

RunResult
runMixScheme(const std::vector<Workload> &mix, Scheme s, unsigned cores,
             const SchedParams &sched, const RunOptions &opt)
{
    const SystemConfig cfg =
        SystemConfig::forScheme(s, std::max(1u, cores));
    return runMixConfigured(mix, cfg, sched, opt, schemeName(s)).result;
}

RunResult
runScheme(const Workload &w, Scheme s, const RunOptions &opt)
{
    const SystemConfig cfg = SystemConfig::forScheme(
        s, std::max(1u, w.threads()));
    return runConfigured(w, cfg, opt, schemeName(s)).result;
}

double
normalizedTime(const RunResult &x, const RunResult &base)
{
    if (base.cycles == 0)
        fatal("normalizedTime: zero baseline cycles");
    return static_cast<double>(x.cycles)
           / static_cast<double>(base.cycles);
}

} // namespace mtrap

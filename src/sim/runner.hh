/**
 * @file
 * Experiment runner: builds a system for (workload, scheme/config),
 * warms up, measures, and returns cycle counts — the machinery behind
 * every figure-reproducing bench binary.
 */

#ifndef MTRAP_SIM_RUNNER_HH
#define MTRAP_SIM_RUNNER_HH

#include <memory>
#include <string>

#include "sim/system.hh"
#include "trace/stats_series.hh"
#include "trace/trace.hh"
#include "workload/kernels.hh"

namespace mtrap
{

/** Default run lengths, shared by the runner, the CLI front ends and
 *  the figure benches. Small by gem5 standards but big enough for
 *  stable relative timings in this model. */
inline constexpr std::uint64_t kDefaultWarmupInstructions = 30'000;
inline constexpr std::uint64_t kDefaultMeasureInstructions = 100'000;

/** Run lengths and reproducibility knobs for one measured run. */
struct RunOptions
{
    std::uint64_t warmupInstructions = kDefaultWarmupInstructions;
    std::uint64_t measureInstructions = kDefaultMeasureInstructions;
    /**
     * Experiment seed. 0 (the default) leaves every structure's
     * configured seed untouched, so legacy results are unchanged; any
     * other value is mixed into the cache/filter replacement seeds so a
     * run can be re-randomised reproducibly (mtrap_sim --seed, harness
     * per-job seeds).
     */
    std::uint64_t seed = 0;

    /**
     * Run on the retained reference interpreter instead of the
     * pre-decoded fetch path (see CoreParams::decodedFetch). Results
     * are identical by construction — the differential fuzzer enforces
     * it — so this is a debugging/measurement knob, exposed as
     * mtrap_sim --reference-fetch and, for every forScheme-built
     * system, the MTRAP_REFERENCE_FETCH environment variable.
     */
    bool referenceFetch = false;

    /**
     * Attach a Tracer (see trace/trace.hh) to the system before the
     * run: cycle-stamped context switches, squashes, scheduler
     * decisions, filter flushes, spec-buffer clears, L2 misses and bus
     * NACKs land in per-core ring buffers for Chrome-trace/CSV export
     * (mtrap_sim --trace / --trace-csv). Off by default: no tracer is
     * allocated and every hook is a never-taken null test.
     */
    bool trace = false;
    TraceParams traceParams{};

    /**
     * Sample the stat tree into a StatSeries every this-many committed
     * instructions of the measured phase (0 = off). Relies on the
     * scheduler/system chunked == monolithic determinism contract, so
     * sampling is a pure observation: results and stats are unchanged.
     * For mix runs the interval counts total commits across cores.
     */
    std::uint64_t statsInterval = 0;

    /**
     * Restore the machine from this snapshot file instead of running
     * the warmup phase (mtrap_sim --snapshot-in). The file's config
     * and context fingerprints must match this run's; any mismatch or
     * corruption aborts loudly. The measured phase of a restored run
     * is bit-identical to the monolithic one.
     */
    std::string snapshotIn;

    /**
     * After the warmup phase (or a restore), save a snapshot of the
     * warm machine here (mtrap_sim --snapshot-out). Written
     * atomically; any I/O failure aborts loudly.
     */
    std::string snapshotOut;

    /**
     * Warm-fork directory (mtrap_batch --warm-snapshot DIR): warm
     * state is cached in DIR keyed by the (config, context)
     * fingerprint pair. A hit skips the warmup phase entirely; a miss
     * warms up and saves atomically, so concurrent sweep points racing
     * on the same key are benign (identical writers). A cached file
     * that fails validation (e.g. a format-version bump) is rewarmed
     * and overwritten, never trusted.
     */
    std::string warmSnapshotDir;
};

/** Outcome of one measured run. */
struct RunResult
{
    std::string workload;
    std::string configName;
    /** Makespan of the measured phase (max over cores). */
    Cycle cycles = 0;
    /** Instructions committed per core in the measured phase. */
    std::uint64_t instructionsPerCore = 0;
    double ipc = 0.0;
};

/** One run with full access to the system afterwards (for stats-based
 *  figures such as figure 7). */
struct RunOutput
{
    RunResult result;
    std::unique_ptr<System> system;
    /** Interval time-series, when RunOptions::statsInterval != 0. */
    std::unique_ptr<StatSeries> statSeries;
};

/**
 * Mix RunOptions::seed into every structure seed of `cfg` (caches,
 * filter caches). No-op when seed == 0. Shared by the closed-system
 * runners here and the open-system server runner (sim/arrival.hh).
 */
void applyRunSeed(SystemConfig &cfg, std::uint64_t seed);

/** Run `w` under an explicit configuration. */
RunOutput runConfigured(const Workload &w, const SystemConfig &cfg,
                        const RunOptions &opt = {},
                        const std::string &config_name = "custom");

/** Run `w` under a named scheme on a Table-1 system. */
RunResult runScheme(const Workload &w, Scheme s,
                    const RunOptions &opt = {});

/**
 * Multiprogrammed run: every workload in `mix` is admitted to a gang
 * scheduler over cfg.cores cores (raised to the widest job) and
 * time-shares under `sched`. Run lengths are per core: the warmup and
 * measured phases execute opt.{warmup,measure}Instructions * cores
 * committed instructions in total, and RunResult::cycles is the
 * measured phase's makespan. The result's workload name joins the mix
 * members with '+'.
 *
 * Each job should carry a distinct Workload::asid (see
 * buildNamedWorkload) so the processes get private address spaces.
 */
RunOutput runMixConfigured(const std::vector<Workload> &mix,
                           const SystemConfig &cfg,
                           const SchedParams &sched,
                           const RunOptions &opt = {},
                           const std::string &config_name = "custom");

/** Multiprogrammed run of `mix` under a named scheme on a Table-1
 *  system with `cores` cores. */
RunResult runMixScheme(const std::vector<Workload> &mix, Scheme s,
                       unsigned cores, const SchedParams &sched,
                       const RunOptions &opt = {});

/** cycles(x) / cycles(base). */
double normalizedTime(const RunResult &x, const RunResult &base);

} // namespace mtrap

#endif // MTRAP_SIM_RUNNER_HH

#include "sim/arrival.hh"

#include <algorithm>
#include <iomanip>

#include "common/log.hh"
#include "common/rng.hh"
#include "snapshot/snapshot.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap
{

namespace
{

/**
 * Quantized exponential draw: mean * (-ln(u)) with u midpoint-sampled
 * from 64 equiprobable bins, the -ln values pre-scaled by 1024 and
 * baked in as integers. Pure integer arithmetic at runtime, so the
 * schedule is bit-identical on every platform (no libm in the
 * determinism contract); the quantization keeps the heavy tail (worst
 * bin is ~4.9x the mean) and a mean within 1% of the target.
 */
Cycle
expGap(Rng &rng, Cycle mean)
{
    static constexpr std::uint16_t kNegLn1024[64] = {
        4969, 3844, 3320, 2976, 2719, 2513, 2342, 2195,
        2067, 1953, 1851, 1758, 1672, 1594, 1520, 1452,
        1388, 1328, 1271, 1217, 1166, 1117, 1070, 1026,
        983,  942,  903,  865,  828,  793,  759,  726,
        694,  663,  633,  604,  575,  547,  520,  494,
        469,  444,  419,  395,  372,  349,  327,  305,
        284,  263,  243,  223,  203,  184,  165,  146,
        128,  110,  92,   75,   58,   41,   24,   8,
    };
    const Cycle gap = (mean * kNegLn1024[rng.below(64)]) >> 10;
    return gap ? gap : 1;
}

/** The default offered-load mix: six SPEC-like profiles spanning the
 *  paper's behaviour classes (pointer-chasing, compute, streaming,
 *  branchy, MLP-heavy, store-heavy). */
const std::vector<std::string> &
defaultProfileMix()
{
    static const std::vector<std::string> kMix = {
        "mcf", "gcc", "hmmer", "libquantum", "astar", "lbm",
    };
    return kMix;
}

/** Resolve a profile name against the SPEC then Parsec tables. */
WorkloadProfile
resolveProfile(const std::string &name)
{
    const auto &spec = specBenchmarkNames();
    if (std::find(spec.begin(), spec.end(), name) != spec.end())
        return specProfile(name);
    const auto &parsec = parsecBenchmarkNames();
    if (std::find(parsec.begin(), parsec.end(), name) != parsec.end())
        return parsecProfile(name);
    fatal("arrival: unknown workload profile '%s'", name.c_str());
}

} // namespace

const char *
arrivalPatternName(ArrivalPattern p)
{
    switch (p) {
      case ArrivalPattern::Poisson: return "poisson";
      case ArrivalPattern::Burst: return "burst";
    }
    return "?";
}

std::vector<ArrivalEvent>
generateArrivalSchedule(const ArrivalParams &p)
{
    if (!p.meanInterarrival)
        fatal("arrival: meanInterarrival must be non-zero");
    if (!p.burstSize)
        fatal("arrival: burstSize must be non-zero");
    if (!p.serviceMinCommits || p.serviceMaxCommits < p.serviceMinCommits)
        fatal("arrival: need 0 < serviceMinCommits <= serviceMaxCommits");
    if (!p.maxWeight)
        fatal("arrival: maxWeight must be >= 1");
    const std::vector<std::string> &mix =
        p.profiles.empty() ? defaultProfileMix() : p.profiles;
    for (const std::string &name : mix)
        (void)resolveProfile(name); // validate up front, fatal if unknown

    Rng rng(p.seed);
    std::vector<ArrivalEvent> events;
    events.reserve(p.jobs);
    Cycle t = 0;
    for (std::uint64_t i = 0; i < p.jobs; ++i) {
        if (p.pattern == ArrivalPattern::Poisson) {
            t += expGap(rng, p.meanInterarrival);
        } else if (i % p.burstSize == 0) {
            // Burst gaps carry the whole burst's share of the rate, so
            // both patterns offer the same long-run load.
            t += expGap(rng, p.meanInterarrival * p.burstSize);
        } else {
            t += p.burstSpacing ? p.burstSpacing : 1;
        }
        ArrivalEvent e;
        e.at = t;
        e.profile = mix[rng.below(mix.size())];
        e.serviceCommits = rng.range(p.serviceMinCommits,
                                     p.serviceMaxCommits);
        e.weight = p.maxWeight > 1
                       ? static_cast<unsigned>(rng.range(1, p.maxWeight))
                       : 1;
        e.deadline = p.deadlineFactor
                         ? e.at + e.serviceCommits * p.deadlineFactor
                         : 0;
        e.workloadSeed = mixSeeds(p.seed, 0x6a6f627365656433ull + i);
        events.push_back(std::move(e));
    }
    return events;
}

ArrivalInjector::ArrivalInjector(System &sys, const ArrivalParams &p)
    : sys_(sys), params_(p), events_(generateArrivalSchedule(p))
{
}

Cycle
ArrivalInjector::nextArrivalCycle() const
{
    return next_ < events_.size() ? events_[next_].at : 0;
}

unsigned
ArrivalInjector::admitUpTo(Cycle now)
{
    unsigned n = 0;
    while (next_ < events_.size() && events_[next_].at <= now) {
        admitOne(events_[next_], next_);
        ++next_;
        ++n;
    }
    return n;
}

void
ArrivalInjector::replayAdmissions(std::size_t n)
{
    if (next_ != 0)
        fatal("arrival: replayAdmissions on a non-fresh injector");
    if (n > events_.size())
        throw SnapshotError("server image admits more jobs than the "
                            "arrival schedule holds");
    while (next_ < n) {
        admitOne(events_[next_], next_);
        ++next_;
    }
}

void
ArrivalInjector::admitOne(const ArrivalEvent &e, std::size_t index)
{
    WorkloadProfile wp = resolveProfile(e.profile);
    // Distinct jobs of the same benchmark get distinct kernel seeds so
    // they do not march through identical address streams in lockstep.
    wp.seed = mixSeeds(wp.seed, e.workloadSeed);
    Workload w = buildWorkload(
        wp, static_cast<Asid>(params_.firstAsid + index));
    w.name += "#" + std::to_string(index);

    JobAdmit admit;
    admit.arrivalCycle = e.at;
    admit.serviceLimit = e.serviceCommits;
    admit.deadline = e.deadline;
    admit.weight = e.weight;
    admit.sleepPeriodCommits = params_.sleepPeriodCommits;
    admit.sleepDurationCycles = params_.sleepDurationCycles;
    sys_.addScheduledWorkload(w, admit);
}

Cycle
percentileCycles(std::vector<Cycle> samples, unsigned pct)
{
    if (samples.empty())
        return 0;
    if (pct < 1 || pct > 100)
        fatal("percentileCycles: pct %u outside [1,100]", pct);
    std::sort(samples.begin(), samples.end());
    // Nearest-rank: index = ceil(pct * n / 100) - 1, integer-exact.
    const std::size_t n = samples.size();
    std::size_t idx = (static_cast<std::size_t>(pct) * n + 99) / 100;
    idx = idx ? idx - 1 : 0;
    return samples[std::min(idx, n - 1)];
}

ServerReport
ServerReport::build(System &sys, const ArrivalInjector &inj)
{
    Scheduler *sched = sys.scheduler();
    if (!sched)
        fatal("ServerReport: system has no scheduler");

    ServerReport r;
    r.admitted = inj.admitted();
    r.makespan = sys.maxCommitCycle();

    std::vector<Cycle> sojourn;
    std::vector<Cycle> wait;
    double sojourn_sum = 0.0;
    for (const JobRecord &j : sched->jobRecords()) {
        r.committed += j.committed;
        if (j.started)
            wait.push_back(j.firstRun - j.arrival);
        if (j.deadline) {
            ++r.deadlineTotal;
            if (!j.done || j.finish > j.deadline)
                ++r.deadlineMisses;
        }
        if (!j.done)
            continue;
        ++r.completed;
        const Cycle s = j.finish - j.arrival;
        sojourn.push_back(s);
        sojourn_sum += static_cast<double>(s);
        r.sojournMax = std::max(r.sojournMax, s);
    }

    r.sojournP50 = percentileCycles(sojourn, 50);
    r.sojournP95 = percentileCycles(sojourn, 95);
    r.sojournP99 = percentileCycles(sojourn, 99);
    r.waitP50 = percentileCycles(wait, 50);
    r.waitP95 = percentileCycles(wait, 95);
    r.waitP99 = percentileCycles(wait, 99);
    if (r.completed)
        r.meanSojourn = sojourn_sum / static_cast<double>(r.completed);

    if (r.makespan) {
        std::uint64_t busy = 0;
        for (CoreId c = 0; c < static_cast<CoreId>(sched->coreCount()); ++c)
            busy += sched->busyCycles(c);
        r.occupancy = static_cast<double>(busy)
                      / (static_cast<double>(sched->coreCount())
                         * static_cast<double>(r.makespan));
        r.throughputPerMcycle = static_cast<double>(r.completed) * 1e6
                                / static_cast<double>(r.makespan);
        r.ipc = static_cast<double>(r.committed)
                / static_cast<double>(r.makespan);
    }
    return r;
}

void
ServerReport::print(std::ostream &os) const
{
    os << "server: " << completed << "/" << admitted
       << " jobs completed, makespan " << makespan << " cycles\n"
       << "  sojourn  p50/p95/p99/max: " << sojournP50 << " / "
       << sojournP95 << " / " << sojournP99 << " / " << sojournMax
       << " cycles (mean " << std::fixed << std::setprecision(1)
       << meanSojourn << ")\n"
       << "  wait     p50/p95/p99:     " << waitP50 << " / " << waitP95
       << " / " << waitP99 << " cycles\n"
       << "  occupancy " << std::setprecision(3) << occupancy
       << ", throughput " << throughputPerMcycle
       << " jobs/Mcycle, ipc " << ipc << "\n";
    if (deadlineTotal)
        os << "  deadlines: " << deadlineMisses << "/" << deadlineTotal
           << " missed ("
           << std::setprecision(1)
           << 100.0 * static_cast<double>(deadlineMisses)
                  / static_cast<double>(deadlineTotal)
           << "%)\n";
}

std::uint64_t
serverContextFingerprint(const ArrivalParams &arrivals,
                         const SchedParams &sched, const RunOptions &opt)
{
    Fingerprint fp;
    fp.mix("server");
    fp.mix(arrivals.seed);
    fp.mix(arrivalPatternName(arrivals.pattern));
    fp.mix(arrivals.jobs);
    fp.mix(arrivals.meanInterarrival);
    fp.mix(arrivals.burstSize);
    fp.mix(arrivals.burstSpacing);
    fp.mix(arrivals.serviceMinCommits);
    fp.mix(arrivals.serviceMaxCommits);
    fp.mix(arrivals.deadlineFactor);
    fp.mix(arrivals.maxWeight);
    fp.mix(arrivals.sleepPeriodCommits);
    fp.mix(arrivals.sleepDurationCycles);
    fp.mix(arrivals.profiles.size());
    for (const std::string &name : arrivals.profiles)
        fp.mix(name);
    fp.mix(arrivals.firstAsid);
    fp.mix(sched.quantum);
    fp.mix(sched.gang ? 1 : 0);
    fp.mix(sched.migrate ? 1 : 0);
    fp.mix(sched.affinity ? 1 : 0);
    fp.mix(sched.trace ? 1 : 0);
    fp.mix(opt.seed);
    fp.mix(opt.trace ? 1 : 0);
    return fp.value();
}

std::vector<std::uint8_t>
saveServerSnapshot(const System &sys, const ArrivalInjector &inj,
                   std::uint64_t ctx_fp)
{
    Serializer s;
    s.beginSection(kTagArrival);
    s.u64(inj.admitted());
    // Inner System image, tagged with an admission-count-mixed context
    // so an outer frame spliced onto a different-progress inner image
    // is rejected.
    const std::vector<std::uint8_t> inner =
        sys.saveSnapshot(mixSeeds(ctx_fp, inj.admitted()));
    s.u64(inner.size());
    s.raw(inner.data(), inner.size());
    s.endSection();
    return frameSnapshot(s, sys.configFingerprint(), ctx_fp);
}

void
restoreServerSnapshot(System &sys, ArrivalInjector &inj,
                      std::vector<std::uint8_t> image, std::uint64_t ctx_fp)
{
    Deserializer d(std::move(image), sys.configFingerprint(), ctx_fp);
    d.beginSection(kTagArrival);
    const std::uint64_t admitted = d.u64();
    const std::uint64_t size = d.u64();
    d.checkCount(size, 1);
    std::vector<std::uint8_t> inner(size);
    if (size)
        d.raw(inner.data(), size);
    d.endSection();

    // Replay the admissions first — restoreSnapshot can only overwrite
    // scheduler state whose Program bindings already exist.
    inj.replayAdmissions(admitted);
    sys.restoreSnapshot(std::move(inner), mixSeeds(ctx_fp, admitted));
}

ServerRunOutput
runServerConfigured(const SystemConfig &cfg, const SchedParams &sched,
                    const ArrivalParams &arrivals, const RunOptions &opt,
                    const std::string &config_name)
{
    SystemConfig c = cfg;
    // Widen the machine to the widest gang job the mix can draw.
    {
        const std::vector<std::string> &mix =
            arrivals.profiles.empty()
                ? std::vector<std::string>{} // defaults are 1-thread
                : arrivals.profiles;
        for (const std::string &name : mix)
            c.cores = std::max(c.cores, resolveProfile(name).threads);
    }
    c.mem.cores = c.cores;
    applyRunSeed(c, opt.seed);
    if (opt.referenceFetch)
        c.core.decodedFetch = false;

    ServerRunOutput out;
    out.system = std::make_unique<System>(c);
    System &sys = *out.system;
    if (opt.trace)
        sys.attachTracer(opt.traceParams);
    sys.attachScheduler(sched);
    out.injector = std::make_unique<ArrivalInjector>(sys, arrivals);
    sys.scheduler()->setArrivalSource(out.injector.get());

    const std::uint64_t ctx_fp =
        serverContextFingerprint(arrivals, sched, opt);
    if (!opt.snapshotIn.empty())
        restoreServerSnapshot(sys, *out.injector,
                              readSnapshotFile(opt.snapshotIn), ctx_fp);

    // No warmup phase: an open system's cold start is part of the
    // behaviour under study. The arrival schedule bounds the total work
    // (every job carries a finite service demand), so we just drive
    // runScheduled in chunks until the scheduler reports it is out of
    // runnable work and arrivals.
    const Cycle start_cycle = sys.maxCommitCycle();
    std::unique_ptr<StatSeries> series;
    if (opt.statsInterval)
        series = std::make_unique<StatSeries>(sys.root(),
                                              opt.statsInterval,
                                              start_cycle);
    const std::uint64_t step =
        opt.statsInterval ? opt.statsInterval : 50'000;
    std::uint64_t done = 0;
    for (;;) {
        const std::uint64_t did = sys.runScheduled(step);
        done += did;
        if (series && did)
            series->sample(sys.maxCommitCycle(), done);
        if (did < step)
            break; // out of runnable tasks and pending arrivals
    }

    if (!opt.snapshotOut.empty())
        writeSnapshotFile(opt.snapshotOut,
                          saveServerSnapshot(sys, *out.injector, ctx_fp));

    out.report = ServerReport::build(sys, *out.injector);
    out.configName = config_name;
    out.statSeries = std::move(series);
    return out;
}

} // namespace mtrap

#include "sim/json_stats.hh"

#include "common/log.hh"

namespace mtrap
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
dumpStatsJson(const StatGroup &group, std::ostream &os)
{
    os << "{";
    bool first = true;
    // Both the dotted name and the formatted value are escaped: stat
    // paths include runtime group names (workload/config labels can
    // reach CacheParams::name), and a hostile label must not be able to
    // break the JSON framing.
    group.visit([&os, &first](const std::string &path,
                              const StatView &stat) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  \"" << jsonEscape(path) << "\": \""
           << jsonEscape(stat.format()) << "\"";
    });
    os << "\n}\n";
}

void
dumpRunResultJson(const RunResult &r, std::ostream &os)
{
    os << "{\n"
       << "  \"workload\": \"" << jsonEscape(r.workload) << "\",\n"
       << "  \"config\": \"" << jsonEscape(r.configName) << "\",\n"
       << "  \"cycles\": " << r.cycles << ",\n"
       << "  \"instructions_per_core\": " << r.instructionsPerCore
       << ",\n"
       << "  \"ipc\": " << strfmt("%.6f", r.ipc) << "\n"
       << "}\n";
}

} // namespace mtrap

/**
 * @file
 * Quantum-based round-robin scheduler multiplexing several software
 * contexts (processes) onto one core, issuing the context switches that
 * clear MuonTrap's filter structures.
 */

#ifndef MTRAP_SIM_SCHEDULER_HH
#define MTRAP_SIM_SCHEDULER_HH

#include <vector>

#include "cpu/core.hh"
#include "isa/program.hh"

namespace mtrap
{

/**
 * Round-robin process scheduler for one core.
 */
class Scheduler
{
  public:
    /**
     * @param core    the core to multiplex
     * @param quantum time slice in cycles
     */
    Scheduler(Core *core, Cycle quantum);

    /** Add a process (restarts at the program entry when first run). */
    void addTask(const Program *program, Asid asid);

    std::size_t taskCount() const { return tasks_.size(); }

    /**
     * Run until `total_commits` instructions have committed across all
     * tasks, or every task has halted. Performs a context switch (and
     * the associated filter flush) at each quantum expiry.
     * @return instructions actually committed
     */
    std::uint64_t run(std::uint64_t total_commits);

    /** Number of context switches performed so far. */
    std::uint64_t switches() const { return switches_; }

  private:
    struct Task
    {
        ArchContext ctx;
        bool started = false;
    };

    bool allHalted() const;
    std::size_t nextRunnable(std::size_t from) const;

    Core *core_;
    Cycle quantum_;
    std::vector<Task> tasks_;
    std::size_t current_ = 0;
    bool running_ = false;
    std::uint64_t switches_ = 0;
    /** Start of the current time slice (persists across run() calls). */
    Cycle sliceStart_ = 0;
};

} // namespace mtrap

#endif // MTRAP_SIM_SCHEDULER_HH

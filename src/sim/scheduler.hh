/**
 * @file
 * Multi-core gang scheduler: per-core run queues multiplexing software
 * contexts (processes) onto the system's cores, with quantum-based time
 * slicing, gang placement for multi-threaded jobs, and load-balanced
 * migration of single-threaded tasks onto cores that run dry.
 *
 * Every context switch and migration is routed through
 * Core::contextSwitch, which performs the full defence hygiene for the
 * active scheme: the MuonTrap filter flush (MemIface::onContextSwitch),
 * the InvisiSpec speculative-buffer clear (same hook), and the STT
 * taint-timestamp clear (Core::setContext resets the taint array). The
 * paper's §6 time-sharing cost discussion is exactly the cost this
 * machinery charges.
 *
 * Time slices are *absolute*: the task designated to run on core c
 * during slot s = now/quantum is queue[s % queue.size()]. Because gang
 * admission pads its cores' queues to a common length and appends every
 * gang member at the same queue index, gang members are co-scheduled
 * (they occupy the same slot on each of their cores) without any
 * cross-core synchronisation. Queue holes left by the padding are idle
 * slots: the core skips to the next slot boundary, modelling the
 * fragmentation cost real gang schedulers pay.
 */

#ifndef MTRAP_SIM_SCHEDULER_HH
#define MTRAP_SIM_SCHEDULER_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "isa/program.hh"
#include "trace/trace.hh"

namespace mtrap
{

/** Identifies one scheduled job (a gang of one or more threads). */
using JobId = unsigned;

/** Scheduling policy knobs. */
struct SchedParams
{
    /** Time-slice length in cycles. */
    Cycle quantum = 50'000;
    /** Co-schedule multi-threaded jobs (slot-aligned gang placement).
     *  When false, every thread is placed independently. */
    bool gang = true;
    /** Migrate single-threaded tasks onto cores whose run queues have
     *  no runnable work left (gang members stay pinned). */
    bool migrate = true;
    /**
     * Cache-affinity-aware migration: when a starving core pulls work,
     * prefer a task that last ran on that core (its L1/filter state may
     * still be warm) over the default youngest-queued candidate. Off by
     * default — the legacy donor choice is part of the pinned golden
     * behaviour.
     */
    bool affinity = false;
    /** Record one SchedTraceRow per scheduling decision (mtrap_sim
     *  --sched-trace); off by default — the trace grows with run
     *  length. */
    bool trace = false;
};

/**
 * Open-system admission attributes for one job. The default-constructed
 * value reproduces closed-batch admission exactly (no arrival stamp, no
 * service limit, weight 1, no deadline, no IO-wait), so every legacy
 * call path is untouched.
 */
struct JobAdmit
{
    /** Cycle the job arrived (0 = present since construction). Admission
     *  onto an idle core advances that core's clock here first, so a
     *  job can never run before it arrived. */
    Cycle arrivalCycle = 0;
    /** Service demand in committed instructions: the job completes (is
     *  force-retired) once it has committed this many. 0 = run to the
     *  program's natural halt. */
    std::uint64_t serviceLimit = 0;
    /** Absolute completion deadline in cycles (0 = none). Purely an
     *  accounting attribute: the scheduler reports misses, it does not
     *  prioritise by deadline. */
    Cycle deadline = 0;
    /** Weighted quantum share: each thread gets `weight` consecutive
     *  run-queue entries, i.e. a weight-2 job owns twice the slot share
     *  of a weight-1 job on the same core. Must be >= 1. */
    unsigned weight = 1;
    /** IO-wait emulation: after every `sleepPeriodCommits` committed
     *  instructions the task blocks (is skipped by designation) for
     *  `sleepDurationCycles`, then requeues as ready. 0 = never. */
    std::uint64_t sleepPeriodCommits = 0;
    Cycle sleepDurationCycles = 0;
};

/**
 * Feed of mid-run job arrivals (see src/sim/arrival.*). The scheduler
 * polls it at decision-grid points — and when the whole machine runs
 * dry — so admission lands at deterministic, chunking-invariant points
 * of the committed-instruction stream.
 */
class ArrivalSource
{
  public:
    virtual ~ArrivalSource() = default;
    /** Cycle of the earliest not-yet-admitted arrival, 0 once drained. */
    virtual Cycle nextArrivalCycle() const = 0;
    /** Admit every arrival at or before `now` (calls back into
     *  Scheduler::addJob, usually via System::addScheduledWorkload).
     *  Returns the number of jobs admitted. */
    virtual unsigned admitUpTo(Cycle now) = 0;
};

/** Per-job lifecycle accounting for open-system reporting. */
struct JobRecord
{
    JobId job = 0;
    Cycle arrival = 0;  ///< admission cycle (0 for batch jobs)
    Cycle firstRun = 0; ///< cycle the job was first installed on a core
    Cycle finish = 0;   ///< completion cycle (0 = still live)
    Cycle deadline = 0; ///< 0 = none
    std::uint64_t committed = 0;
    unsigned weight = 1;
    bool started = false;
    bool done = false;
};

/** One scheduling decision (core→job occupancy at a decision slot). */
struct SchedTraceRow
{
    /** Core front-end clock when the decision was taken. */
    Cycle when = 0;
    /** Absolute time slice, when / quantum. */
    std::uint64_t slot = 0;
    CoreId core = 0;
    /** Job chosen to occupy the core, or -1 (idle hole / parked). */
    int job = -1;
    /** Thread of `job` on this core, or -1. */
    int thread = -1;
    /** "run", "idle" (gang-padding hole) or "park" (queue ran dry). */
    const char *action = "run";
};

/**
 * Gang scheduler over one or more cores.
 *
 * Determinism contract: scheduling decisions happen only at fixed
 * points of each core's committed-instruction stream (every kChunk
 * commits), selection interleaves cores in (clock, id) order, and an
 * interrupted chunk is resumed before any new decision — so
 * run(a); run(b) is indistinguishable from run(a + b) at the stats
 * level, and placement depends only on admission order.
 */
class Scheduler
{
  public:
    Scheduler(std::vector<Core *> cores, const SchedParams &params);

    /** Legacy single-core round-robin (quantum-based) constructor. */
    Scheduler(Core *core, Cycle quantum);

    /** Add a single-threaded process on the least-loaded core (restarts
     *  at the program entry when first run). Returns its job id. */
    JobId addTask(const Program *program, Asid asid);

    /**
     * Add a job whose threads[] run as a gang: each thread is pinned to
     * its own core, placed so all members share the same slot index
     * (co-scheduled) when gang scheduling is enabled.
     */
    JobId addJob(const std::vector<const Program *> &threads, Asid asid);

    /**
     * Open-system admission: like addJob, plus the arrival stamp,
     * service limit, deadline, weight and IO-wait attributes of
     * `admit`. Safe to call mid-run from an ArrivalSource callback (the
     * scheduler only polls arrivals at decision points).
     */
    JobId addJob(const std::vector<const Program *> &threads, Asid asid,
                 const JobAdmit &admit);

    /**
     * Attach a feed of mid-run arrivals. The scheduler polls it at
     * every decision-grid point (admitting arrivals due by the deciding
     * core's clock) and fast-forwards an entirely idle machine to the
     * next arrival instead of stopping. Caller keeps ownership; the
     * source must outlive the scheduler or be detached with nullptr.
     */
    void setArrivalSource(ArrivalSource *arrivals);

    std::size_t taskCount() const { return tasks_.size(); }

    /** Per-job lifecycle records (arrival / first-run / finish /
     *  committed), indexed by JobId. */
    std::vector<JobRecord> jobRecords() const;

    /** Cycles core `c` spent executing instructions (context-switch
     *  and idle-slot cycles excluded) — the occupancy numerator. */
    std::uint64_t busyCycles(CoreId c) const
    {
        return cores_.at(c).busyCycles;
    }

    unsigned coreCount() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** Core each thread of `job` was placed on (admission is
     *  deterministic, so this is reproducible run to run). */
    std::vector<CoreId> placement(JobId job) const;

    /**
     * Run until `total_commits` instructions have committed across all
     * tasks and cores, or every task has halted. Returns instructions
     * actually committed (exactly `total_commits` while runnable work
     * remains). Does not drain at return, so chunked calls compose.
     */
    std::uint64_t run(std::uint64_t total_commits);

    /** True once every task has halted. */
    bool allHalted() const;

    /** Context switches performed (including migration installs). */
    std::uint64_t switches() const { return switches_; }
    /** Tasks moved to another core's queue by load balancing. */
    std::uint64_t migrations() const { return migrations_; }
    /** Slots a core sat idle on a gang-padding hole. */
    std::uint64_t idleSlots() const { return idleSlots_; }

    /**
     * Decision trace, decoded from the tracer's scheduler ring (empty
     * unless SchedParams::trace or an attached system Tracer enabled
     * recording). Rows are in decision order, exactly as PR 5's
     * in-line vector recorded them.
     */
    std::vector<SchedTraceRow> trace() const;

    /**
     * Checkpoint the scheduling state: per-task contexts (minus their
     * Program pointers — restore preserves the pointers the replayed
     * admission installed and re-binds resident tasks onto their
     * cores), per-core run queues / residency / decision-grid
     * counters, the mid-chunk resume point, and the private
     * --sched-trace ring when one exists. Call restoreState only after
     * re-admitting the identical job set in the identical order (the
     * context fingerprint enforces this from the outside).
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

    /**
     * Route decision events into `tracer` (the System-owned tracer)
     * instead of the scheduler's private one. The private tracer — a
     * detached ring created only when SchedParams::trace is set — keeps
     * the legacy --sched-trace path alive without touching the
     * system's stat tree.
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

  private:
    /** Scheduling decisions fire every kChunk commits of a core's
     *  stream; chunk boundaries are independent of how callers split
     *  run() budgets (the chunked == monolithic property). */
    static constexpr std::uint64_t kChunk = 512;
    /** Run-queue hole from gang padding: the core idles this slot. */
    static constexpr int kIdle = -1;

    struct Task
    {
        ArchContext ctx;
        JobId job = 0;
        unsigned thread = 0;
        bool started = false;
        /** Gang members are pinned to their core (never migrated). */
        bool gangMember = false;
        CoreId core = 0;

        // Open-system attributes (defaults = closed-batch behaviour).
        std::uint64_t serviceLimit = 0;
        std::uint64_t committed = 0;
        Cycle arrivalCycle = 0;
        Cycle firstRunCycle = 0;
        Cycle finishCycle = 0;
        Cycle deadline = 0;
        unsigned weight = 1;
        std::uint64_t sleepPeriodCommits = 0;
        Cycle sleepDurationCycles = 0;
        std::uint64_t commitsTowardSleep = 0;
        /** Sleeping (IO-wait) until this cycle; 0 = awake. */
        Cycle sleepUntil = 0;
        /** Core this task last executed on (affinity migration). */
        CoreId lastCore = 0;
    };

    struct CoreState
    {
        Core *core = nullptr;
        /** Task indices (or kIdle holes), rotated by slot number. */
        std::vector<int> queue;
        /** Task currently installed on the core, or -1. */
        int resident = -1;
        /** Commits on this core since construction (decision grid). */
        std::uint64_t done = 0;
        /** No runnable entries; skip in selection until rebalanced. */
        bool parked = false;
        /** Cycles spent executing (occupancy numerator). */
        std::uint64_t busyCycles = 0;
    };

    /** Outcome of a scheduling decision on one core. */
    struct Pick
    {
        int task = -1;   ///< task to run (>= 0), else:
        bool idle = false;   ///< designated slot is a gang hole
        bool none = false;   ///< no runnable entry at all -> park
    };

    unsigned runnableCount(const CoreState &cs) const;
    Pick designate(const CoreState &cs) const;
    void installOn(CoreState &cs, int task);
    void idleSkip(CoreState &cs);
    void rebalance();
    int pickCore() const;
    std::vector<CoreId> leastLoadedCores(std::size_t n) const;

    SchedParams params_;
    std::vector<CoreState> cores_;
    std::vector<Task> tasks_;
    /** First thread-task index of each job (threads are contiguous). */
    std::vector<std::size_t> jobFirstTask_;
    std::vector<unsigned> jobThreads_;

    /** Core interrupted mid-chunk by budget exhaustion; resumed first
     *  on the next run() call so external chunking cannot perturb the
     *  decision grid. -1 = none. */
    int resumeCore_ = -1;

    /** Mid-run arrival feed (not owned, not serialized: the restore
     *  path re-attaches and replays its admissions). */
    ArrivalSource *arrivals_ = nullptr;
    /** True once an arrival source was attached: gates the open-system
     *  trace events so legacy traces stay byte-identical. */
    bool openSystem_ = false;

    std::uint64_t switches_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t idleSlots_ = 0;

    void recordDecision(const CoreState &cs, CoreId core,
                        const Pick &pick);
    /** The ring decisions go to: the system tracer when attached, else
     *  the private one, else null (recording disabled). */
    Tracer *activeTracer() const
    {
        return tracer_ ? tracer_ : ownTracer_.get();
    }

    Tracer *tracer_ = nullptr;
    std::unique_ptr<Tracer> ownTracer_;
};

/** Serialise a decision trace as CSV (header + one row per decision). */
void writeSchedTrace(const Scheduler &sched, std::ostream &os);

} // namespace mtrap

#endif // MTRAP_SIM_SCHEDULER_HH

#include "sim/system.hh"

#include <cstdlib>

#include <algorithm>

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

SystemConfig
SystemConfig::forScheme(Scheme s, unsigned cores)
{
    SystemConfig cfg;
    cfg.cores = cores;
    cfg.core.defense = schemeCoreDefense(s);
    // Debug/measurement knob: force every Table-1 system onto the
    // retained reference interpreter (see CoreParams::decodedFetch), so
    // one binary can A/B the two fetch paths and a decode-layer bug can
    // be ruled in or out without a rebuild. Results must not change —
    // only simulator throughput does.
    static const bool reference_fetch =
        std::getenv("MTRAP_REFERENCE_FETCH") != nullptr;
    cfg.core.decodedFetch = !reference_fetch;
    cfg.mem.cores = cores;
    cfg.mem.mt = schemeMtConfig(s);
    return cfg;
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), root_("system")
{
    if (cfg_.cores == 0)
        fatal("system: need at least one core");
    MemSystemParams mp = cfg_.mem;
    mp.cores = cfg_.cores;
    mem_ = std::make_unique<MemSystem>(mp, &root_);
    for (CoreId c = 0; c < cfg_.cores; ++c)
        cores_.push_back(std::make_unique<Core>(c, cfg_.core, mem_.get(),
                                                &root_));
}

void
System::loadWorkload(const Workload &w)
{
    if (w.threads() > numCores())
        fatal("workload %s needs %u cores, system has %u",
              w.name.c_str(), w.threads(), numCores());
    if (w.init)
        w.init(*mem_);
    for (unsigned t = 0; t < w.threads(); ++t) {
        ArchContext ctx;
        ctx.program = &w.threadPrograms[t];
        ctx.asid = w.asid;
        ctx.pc = w.threadPrograms[t].entry;
        cores_[t]->setContext(ctx);
    }
}

void
System::run(std::uint64_t max_commits_per_core)
{
    std::vector<std::uint64_t> targets;
    targets.reserve(numCores());
    for (const auto &c : cores_)
        targets.push_back(c->committedCount() + max_commits_per_core);
    runTo(targets);
}

void
System::runTo(const std::vector<std::uint64_t> &targets)
{
    if (targets.size() != numCores())
        fatal("runTo: %zu targets for %u cores", targets.size(),
              numCores());

    // Single-core fast path: no interleaving decisions to make, so skip
    // the scheduling structure entirely.
    if (numCores() == 1) {
        cores_[0]->stepLoop(targets[0]);
        return;
    }

    // Multi-core: keep the active cores in a flat array and pick the
    // one with the lexicographically smallest (front-end clock, core
    // id) — exactly the core the historical per-step linear scan chose,
    // so the interleaving (and every figure table) is unchanged. With a
    // handful of cores a fused min/second-min scan beats any heap, and
    // the scan only reruns when leadership changes: the leader is
    // epoch-batched (stepped repeatedly) until its clock passes the
    // runner-up's, which is observationally identical to re-scanning
    // per step.
    struct Entry
    {
        Cycle now;
        unsigned idx;
        Core *core;
        std::uint64_t target;

        bool operator<(const Entry &o) const
        {
            return now != o.now ? now < o.now : idx < o.idx;
        }
    };

    std::vector<Entry> act;
    act.reserve(numCores());
    for (unsigned c = 0; c < numCores(); ++c) {
        Core &core = *cores_[c];
        if (!core.halted() && core.committedCount() < targets[c])
            act.push_back(Entry{core.now(), c, &core, targets[c]});
    }

    while (!act.empty()) {
        // One pass: leader (min) and runner-up (second-min).
        std::size_t mi = 0, si = act.size();
        for (std::size_t i = 1; i < act.size(); ++i) {
            if (act[i] < act[mi]) {
                si = mi;
                mi = i;
            } else if (si == act.size() || act[i] < act[si]) {
                si = i;
            }
        }

        Entry &top = act[mi];
        const bool has_second = si != act.size();
        const bool active = top.core->stepEpoch(
            top.target, has_second, has_second ? act[si].now : 0,
            has_second ? top.idx < act[si].idx : false);

        if (active) {
            top.now = top.core->now();
        } else {
            act[mi] = act.back();
            act.pop_back();
        }
    }
}

Scheduler &
System::attachScheduler(const SchedParams &params)
{
    if (sched_)
        fatal("system: scheduler already attached");
    std::vector<Core *> cores;
    cores.reserve(cores_.size());
    for (auto &c : cores_)
        cores.push_back(c.get());
    sched_ = std::make_unique<Scheduler>(std::move(cores), params);
    if (tracer_)
        sched_->setTracer(tracer_.get());
    return *sched_;
}

Tracer &
System::attachTracer(const TraceParams &params)
{
    if (tracer_)
        fatal("system: tracer already attached");
    tracer_ = std::make_unique<Tracer>(numCores(), params, &root_);
    for (auto &c : cores_)
        c->setTracer(tracer_.get());
    mem_->setTracer(tracer_.get());
    if (sched_)
        sched_->setTracer(tracer_.get());
    return *tracer_;
}

JobId
System::addScheduledWorkload(const Workload &w)
{
    return addScheduledWorkload(w, JobAdmit{});
}

JobId
System::addScheduledWorkload(const Workload &w, const JobAdmit &admit)
{
    if (!sched_)
        fatal("system: attachScheduler before addScheduledWorkload");
    if (w.threads() > numCores())
        fatal("workload %s needs %u cores, system has %u",
              w.name.c_str(), w.threads(), numCores());
    if (w.init)
        w.init(*mem_);
    schedJobs_.push_back(std::make_unique<Workload>(w));
    const Workload &owned = *schedJobs_.back();
    std::vector<const Program *> programs;
    programs.reserve(owned.threads());
    for (const Program &p : owned.threadPrograms)
        programs.push_back(&p);
    const JobId job = sched_->addJob(programs, w.asid, admit);
    if (tracer_)
        tracer_->setJobLabel(job, owned.name);
    return job;
}

std::uint64_t
System::runScheduled(std::uint64_t total_commits)
{
    if (!sched_)
        fatal("system: attachScheduler before runScheduled");
    return sched_->run(total_commits);
}

void
System::drainAll()
{
    for (auto &c : cores_)
        c->drain();
}

Cycle
System::maxCommitCycle() const
{
    Cycle m = 0;
    for (const auto &c : cores_)
        m = std::max(m, c->lastCommitCycle());
    return m;
}

// --------------------------------------------------------------------------
// Checkpointing
// --------------------------------------------------------------------------

namespace
{

void
mixCacheParams(Fingerprint &fp, const CacheParams &p)
{
    fp.mix(p.name.str());
    fp.mix(p.sizeBytes);
    fp.mix(p.assoc);
    fp.mix(p.hitLatency);
    fp.mix(p.mshrs);
    fp.mix(static_cast<std::uint64_t>(p.repl));
    fp.mix(p.seed);
}

void
mixFilterCacheParams(Fingerprint &fp, const FilterCacheParams &p)
{
    fp.mix(p.name.str());
    fp.mix(p.sizeBytes);
    fp.mix(p.assoc);
    fp.mix(p.hitLatency);
    fp.mix(p.mshrs);
    fp.mix(static_cast<std::uint64_t>(p.repl));
    fp.mix(p.seed);
}

void
mixTlbParams(Fingerprint &fp, const TlbParams &p)
{
    fp.mix(p.name.str());
    fp.mix(p.entries);
}

} // namespace

std::uint64_t
System::configFingerprint() const
{
    Fingerprint fp;
    fp.mix(cfg_.cores);

    const CoreParams &cp = cfg_.core;
    fp.mix(cp.fetchWidth);
    fp.mix(cp.commitWidth);
    fp.mix(cp.robSize);
    fp.mix(cp.lqSize);
    fp.mix(cp.sqSize);
    fp.mix(cp.intAlus);
    fp.mix(cp.fpAlus);
    fp.mix(cp.mulDivs);
    fp.mix(cp.memPorts);
    fp.mix(cp.dispatchLatency);
    fp.mix(cp.redirectPenalty);
    fp.mix(cp.contextSwitchCost);
    fp.mix(static_cast<std::uint64_t>(cp.defense));
    fp.mix(cp.decodedFetch ? 1 : 0);
    fp.mix(cp.bpred.localEntries);
    fp.mix(cp.bpred.localHistoryBits);
    fp.mix(cp.bpred.globalEntries);
    fp.mix(cp.bpred.chooserEntries);
    fp.mix(cp.bpred.btbEntries);
    fp.mix(cp.bpred.rasEntries);

    const MemSystemParams &mp = cfg_.mem;
    fp.mix(mp.cores);
    mixCacheParams(fp, mp.l1d);
    mixCacheParams(fp, mp.l1i);
    mixCacheParams(fp, mp.l2);
    mixTlbParams(fp, mp.dtlb);
    mixTlbParams(fp, mp.itlb);
    fp.mix(mp.bus.transactionLatency);
    fp.mix(mp.bus.remoteSupplyLatency);
    fp.mix(mp.mem.rowHitLatency);
    fp.mix(mp.mem.rowMissLatency);
    fp.mix(mp.mem.banks);
    fp.mix(mp.mem.rowBytes);
    fp.mix(mp.prefetcher.tableEntries);
    fp.mix(mp.prefetcher.confidenceThreshold);
    fp.mix(mp.prefetcher.confidenceMax);
    fp.mix(mp.prefetcher.degree);
    fp.mix(mp.l2PrefetcherEnabled ? 1 : 0);

    const MuonTrapConfig &mt = mp.mt;
    fp.mix(mt.enabled ? 1 : 0);
    fp.mix(mt.protectData ? 1 : 0);
    fp.mix(mt.protectCoherence ? 1 : 0);
    fp.mix(mt.instFilter ? 1 : 0);
    fp.mix(mt.tlbFilter ? 1 : 0);
    fp.mix(mt.commitPrefetch ? 1 : 0);
    fp.mix(mt.clearOnMisspec ? 1 : 0);
    fp.mix(mt.parallelL0L1 ? 1 : 0);
    mixFilterCacheParams(fp, mt.dataParams);
    mixFilterCacheParams(fp, mt.instParams);
    fp.mix(mt.filterTlbEntries);

    return fp.value();
}

std::vector<std::uint8_t>
System::saveSnapshot(std::uint64_t ctx_fp) const
{
    Serializer s;

    s.beginSection(kTagMemSystem);
    mem_->saveState(s);
    s.endSection();

    for (const auto &c : cores_) {
        s.beginSection(kTagCore);
        c->saveState(s);
        s.endSection();
    }

    if (sched_) {
        s.beginSection(kTagScheduler);
        sched_->saveState(s);
        s.endSection();
    }

    if (tracer_) {
        s.beginSection(kTagTracer);
        tracer_->saveState(s);
        s.endSection();
    }

    // Every stat sheet in the tree, pre-order. The walk is a pure
    // function of the construction sequence, so save and restore see
    // the same group list in the same order.
    s.beginSection(kTagStats);
    std::uint64_t groups = 0;
    root_.forEachGroup([&](const StatGroup &) { ++groups; });
    s.u64(groups);
    root_.forEachGroup([&](const StatGroup &g) {
        s.raw(g.sheet(), StatGroup::kSheetWords * sizeof(std::uint64_t));
    });
    s.endSection();

    return frameSnapshot(s, configFingerprint(), ctx_fp);
}

void
System::saveSnapshotFile(const std::string &path,
                         std::uint64_t ctx_fp) const
{
    writeSnapshotFile(path, saveSnapshot(ctx_fp));
}

void
System::restoreSnapshot(std::vector<std::uint8_t> image,
                        std::uint64_t ctx_fp)
{
    Deserializer d(std::move(image), configFingerprint(), ctx_fp);

    d.beginSection(kTagMemSystem);
    mem_->restoreState(d);
    d.endSection();

    for (auto &c : cores_) {
        d.beginSection(kTagCore);
        c->restoreState(d);
        d.endSection();
    }

    if (sched_) {
        d.beginSection(kTagScheduler);
        sched_->restoreState(d);
        d.endSection();
    }

    if (tracer_) {
        d.beginSection(kTagTracer);
        tracer_->restoreState(d);
        d.endSection();
    }

    d.beginSection(kTagStats);
    std::uint64_t groups = 0;
    root_.forEachGroup([&](const StatGroup &) { ++groups; });
    if (d.u64() != groups)
        throw SnapshotError("stat group count mismatch");
    root_.forEachGroup([&](StatGroup &g) {
        d.raw(g.sheet(), StatGroup::kSheetWords * sizeof(std::uint64_t));
    });
    d.endSection();

    if (d.peekTag() != kTagEnd)
        throw SnapshotError("unexpected trailing section");
}

void
System::restoreSnapshotFile(const std::string &path, std::uint64_t ctx_fp)
{
    restoreSnapshot(readSnapshotFile(path), ctx_fp);
}

} // namespace mtrap

#include "sim/system.hh"

#include <algorithm>

#include "common/log.hh"

namespace mtrap
{

SystemConfig
SystemConfig::forScheme(Scheme s, unsigned cores)
{
    SystemConfig cfg;
    cfg.cores = cores;
    cfg.core.defense = schemeCoreDefense(s);
    cfg.mem.cores = cores;
    cfg.mem.mt = schemeMtConfig(s);
    return cfg;
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), root_("system")
{
    if (cfg_.cores == 0)
        fatal("system: need at least one core");
    MemSystemParams mp = cfg_.mem;
    mp.cores = cfg_.cores;
    mem_ = std::make_unique<MemSystem>(mp, &root_);
    for (CoreId c = 0; c < cfg_.cores; ++c)
        cores_.push_back(std::make_unique<Core>(c, cfg_.core, mem_.get(),
                                                &root_));
}

void
System::loadWorkload(const Workload &w)
{
    if (w.threads() > numCores())
        fatal("workload %s needs %u cores, system has %u",
              w.name.c_str(), w.threads(), numCores());
    if (w.init)
        w.init(*mem_);
    for (unsigned t = 0; t < w.threads(); ++t) {
        ArchContext ctx;
        ctx.program = &w.threadPrograms[t];
        ctx.asid = w.asid;
        ctx.pc = w.threadPrograms[t].entry;
        cores_[t]->setContext(ctx);
    }
}

void
System::run(std::uint64_t max_commits_per_core)
{
    std::vector<std::uint64_t> target(numCores());
    for (unsigned c = 0; c < numCores(); ++c)
        target[c] = cores_[c]->committedCount() + max_commits_per_core;

    while (true) {
        // Pick the active core with the smallest front-end clock so the
        // global interleaving approximates one shared time base.
        Core *best = nullptr;
        for (unsigned c = 0; c < numCores(); ++c) {
            Core &core = *cores_[c];
            if (core.halted() || core.committedCount() >= target[c])
                continue;
            if (!best || core.now() < best->now())
                best = &core;
        }
        if (!best)
            break;
        best->stepOne();
    }
}

void
System::drainAll()
{
    for (auto &c : cores_)
        c->drain();
}

Cycle
System::maxCommitCycle() const
{
    Cycle m = 0;
    for (const auto &c : cores_)
        m = std::max(m, c->lastCommitCycle());
    return m;
}

} // namespace mtrap

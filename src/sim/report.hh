/**
 * @file
 * Plain-text table/series reporting used by the figure benches: aligned
 * columns, geometric means, and CSV emission so results can be plotted.
 */

#ifndef MTRAP_SIM_REPORT_HH
#define MTRAP_SIM_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace mtrap
{

/** Geometric mean (fatal on empty or non-positive inputs). */
double geomean(const std::vector<double> &values);

/**
 * Column-aligned text table with an optional CSV dump.
 */
class ReportTable
{
  public:
    explicit ReportTable(std::string title);

    /** Set the header row. */
    void header(std::vector<std::string> cols);

    /** Append a row (first cell is usually the workload name). */
    void row(std::vector<std::string> cells);

    /** Convenience: name + numeric cells with fixed precision. */
    void rowNumeric(const std::string &name,
                    const std::vector<double> &values, int precision = 3);

    /** Append a geomean row across the data rows' numeric columns. */
    void geomeanRow(int precision = 3);

    void print(std::ostream &os) const;
    void printCsv(std::ostream &os) const;

    std::size_t dataRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mtrap

#endif // MTRAP_SIM_REPORT_HH

#include "sim/mem_system.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

namespace
{

StatSchema &
memSystemStatSchema()
{
    static StatSchema s("memsys");
    return s;
}

} // namespace

MemSystem::MemSystem(const MemSystemParams &params, StatGroup *parent)
    : params_(params),
      stats_(memSystemStatSchema(), "memsys", parent),
      dataAccesses(&stats_, "data_accesses", "execute-time data accesses"),
      ifetchAccesses(&stats_, "ifetch_accesses", "instruction-line fetches"),
      probes(&stats_, "probes", "non-mutating latency probes"),
      recommitFetches(&stats_, "recommit_fetches",
                      "commit-time refetches of filter lines evicted "
                      "before commit"),
      commitWriteThroughs(&stats_, "commit_write_throughs",
                          "filter lines written through to L1 at commit"),
      seUpgradeRequests(&stats_, "se_upgrade_requests",
                        "SE pseudo-state upgrades launched at commit"),
      dramDemand(&stats_, "dram_demand",
                 "demand data accesses serviced by DRAM"),
      dramPtw(&stats_, "dram_ptw", "PTE reads serviced by DRAM")
{
    if (params_.cores == 0)
        fatal("mem system: need at least one core");

    mem_ = std::make_unique<MainMemory>(params_.mem, &stats_);
    l2_ = std::make_unique<Cache>(params_.l2, &stats_);
    bus_ = std::make_unique<CoherenceBus>(params_.bus, l2_.get(),
                                          mem_.get(), &stats_);
    if (params_.l2PrefetcherEnabled) {
        prefetcher_ = std::make_unique<StridePrefetcher>(
            params_.prefetcher, bus_.get(), &stats_);
        channel_ = std::make_unique<PrefetchCommitChannel>(
            prefetcher_.get(), &stats_);
    }

    for (CoreId c = 0; c < params_.cores; ++c) {
        CacheParams l1dp = params_.l1d;
        l1dp.name = StatName::indexed("l1d", c);
        l1dp.seed += c * 101;
        l1d_.push_back(std::make_unique<Cache>(l1dp, &stats_));

        CacheParams l1ip = params_.l1i;
        l1ip.name = StatName::indexed("l1i", c);
        l1ip.seed += c * 103;
        l1i_.push_back(std::make_unique<Cache>(l1ip, &stats_));

        TlbParams dtp = params_.dtlb;
        dtp.name = StatName::indexed("dtlb", c);
        dtlb_.push_back(std::make_unique<Tlb>(dtp, &stats_));

        TlbParams itp = params_.itlb;
        itp.name = StatName::indexed("itlb", c);
        itlb_.push_back(std::make_unique<Tlb>(itp, &stats_));

        mt_.push_back(std::make_unique<MuonTrapCore>(params_.mt, c,
                                                     &stats_));

        specBuffer_.push_back(std::make_unique<SpecBuffer>(
            SpecBufferParams{}, c, &stats_));

        BusNode node;
        node.l1d = l1d_.back().get();
        node.l1i = l1i_.back().get();
        node.filterD = mt_.back()->dataFilter();
        node.filterI = mt_.back()->instFilter();
        bus_->addNode(node);
    }

    // Walkers are created last: they route their PTE reads back through
    // this object (ptwAccess).
    for (CoreId c = 0; c < params_.cores; ++c) {
        walker_.push_back(std::make_unique<PageTableWalker>(
            &vm_, c, this, &stats_));
    }

    for (CoreId c = 0; c < params_.cores; ++c) {
        side_.push_back(CoreSide{l1d_[c].get(), l1i_[c].get(),
                                 dtlb_[c].get(), itlb_[c].get(),
                                 mt_[c].get(), walker_[c].get(),
                                 specBuffer_[c].get()});
    }
    funcCache_.resize(params_.cores);
}

AccessResult
MemSystem::ptwAccess(const Access &acc)
{
    DataAccessResult r = dataAccessPhys(
        acc.core, acc.asid, acc.paddr, acc.paddr, acc.pc,
        /*is_store=*/false, acc.speculative, acc.when);
    AccessResult out;
    out.latency = r.latency;
    out.nacked = r.nacked;
    out.serviceLevel = r.serviceLevel;
    return out;
}

MemSystem::~MemSystem() = default;

void
MemSystem::setTracer(Tracer *tracer)
{
    bus_->setTracer(tracer);
    for (CoreSide &s : side_) {
        s.mt->setTracer(tracer);
        s.spec->setTracer(tracer);
    }
}

void
MemSystem::saveState(Serializer &s) const
{
    mem_->saveState(s);
    l2_->saveState(s);
    if (prefetcher_)
        prefetcher_->saveState(s);
    if (channel_)
        channel_->saveState(s);
    for (CoreId c = 0; c < params_.cores; ++c) {
        l1d_[c]->saveState(s);
        l1i_[c]->saveState(s);
        dtlb_[c]->saveState(s);
        itlb_[c]->saveState(s);
        mt_[c]->saveState(s);
        specBuffer_[c]->saveState(s);
    }
}

void
MemSystem::restoreState(Deserializer &d)
{
    mem_->restoreState(d);
    l2_->restoreState(d);
    if (prefetcher_)
        prefetcher_->restoreState(d);
    if (channel_)
        channel_->restoreState(d);
    for (CoreId c = 0; c < params_.cores; ++c) {
        l1d_[c]->restoreState(d);
        l1i_[c]->restoreState(d);
        dtlb_[c]->restoreState(d);
        itlb_[c]->restoreState(d);
        mt_[c]->restoreState(d);
        specBuffer_[c]->restoreState(d);
    }
    // The word caches are transparent; drop them rather than carrying
    // their contents across the snapshot boundary.
    for (FuncReadCache &fc : funcCache_)
        fc = FuncReadCache{};
}

// --------------------------------------------------------------------------
// Translation
// --------------------------------------------------------------------------

MemSystem::Translation
MemSystem::translate(CoreId core, Asid asid, Addr vaddr, Cycle when,
                     bool speculative, bool ifetch)
{
    Translation tr;
    Tlb &tlb = ifetch ? *side_[core].itlb : *side_[core].dtlb;

    // Main-TLB hit: the MRU shortcut inside lookup() makes this the
    // whole translation for page-local access runs.
    if (const TlbEntry *e = tlb.lookup(asid, vaddr)) {
        tr.paddr = (e->ppn << kPageShift) | (vaddr & (kPageBytes - 1));
        return tr;
    }
    return translateMiss(tlb, core, asid, vaddr, when, speculative);
}

MemSystem::Translation
MemSystem::translateMiss(Tlb &tlb, CoreId core, Asid asid, Addr vaddr,
                         Cycle when, bool speculative)
{
    Translation tr;
    MuonTrapCore &mt = *side_[core].mt;
    if (Tlb *ftlb = mt.filterTlb()) {
        if (const TlbEntry *e = ftlb->lookup(asid, vaddr)) {
            tr.paddr = (e->ppn << kPageShift)
                       | (vaddr & (kPageBytes - 1));
            return tr;
        }
    }

    // Full miss: hardware walk through the data hierarchy.
    tr.miss = true;
    tr.latency = side_[core].walker->walk(asid, vaddr, when, speculative);
    tr.paddr = vm_.translate(asid, vaddr);

    // MuonTrap: speculative translations go to the filter TLB only,
    // protecting the main TLB from speculative eviction (§4.7). Without
    // the filter TLB (or non-speculatively) they install directly.
    // Both TLBs just missed and the walk touches no TLB, so the entry
    // is provably absent: take the scan-free install.
    if (speculative && mt.filterTlb())
        mt.filterTlb()->insertAbsent(asid, vaddr, tr.paddr);
    else
        tlb.insertAbsent(asid, vaddr, tr.paddr);
    return tr;
}

// --------------------------------------------------------------------------
// Fill helpers
// --------------------------------------------------------------------------

CacheLine &
MemSystem::fillL1(Cache &l1, Addr paddr, CoherState st)
{
    Eviction ev;
    CacheLine &l = l1.fill(paddr, st, &ev);
    if (ev.valid && ev.dirty) {
        // Dirty victim: write back into the L2.
        const Addr victim_paddr = ev.ptag << kLineShift;
        CacheLine &wb = l2_->fill(victim_paddr, CoherState::Modified);
        wb.dirty = true;
    }
    return l;
}

// --------------------------------------------------------------------------
// Data access walks
// --------------------------------------------------------------------------

DataAccessResult
MemSystem::dataAccess(CoreId core, Asid asid, Addr vaddr, Addr pc,
                      bool is_store, bool speculative, Cycle when)
{
    ++dataAccesses;
    Translation tr = translate(core, asid, vaddr, when, speculative,
                               /*ifetch=*/false);
    DataAccessResult r = dataAccessPhys(core, asid, vaddr, tr.paddr, pc,
                                        is_store, speculative,
                                        when + tr.latency);
    r.latency += tr.latency;
    r.tlbMiss = tr.miss;
    return r;
}

DataAccessResult
MemSystem::dataAccessPhys(CoreId core, Asid asid, Addr vaddr, Addr paddr,
                          Addr pc, bool is_store, bool speculative,
                          Cycle when)
{
    if (params_.mt.enabled) {
        return filterDataAccess(core, asid, vaddr, paddr, pc, is_store,
                                speculative, when, 0);
    }
    return baselineDataAccess(core, asid, paddr, pc, is_store, when, 0);
}

DataAccessResult
MemSystem::baselineDataAccess(CoreId core, Asid asid, Addr paddr, Addr pc,
                              bool is_store, Cycle when, Cycle lat_so_far)
{
    (void)asid;
    Cache &l1 = *side_[core].l1d;
    DataAccessResult out;
    out.latency = lat_so_far + l1.params().hitLatency;

    CacheLine *line = l1.lookup(paddr);
    if (line) {
        ++l1.hits;
        out.serviceLevel = 1;
        if (is_store) {
            // Upgrade to M if needed (exclusive prefetch for the
            // commit-time write).
            if (line->state == CoherState::Shared) {
                SnoopOutcome so = bus_->writeRequest(core, paddr, false,
                                                     false, true, when);
                out.latency += so.latency;
            }
            line->state = CoherState::Modified;
            line->dirty = true;
        }
        if (prefetcher_ && !params_.mt.commitPrefetch && line->prefetched) {
            line->prefetched = false;
        }
        return out;
    }
    ++l1.misses;

    SnoopOutcome so = is_store
                          ? bus_->writeRequest(core, paddr, false, false,
                                               true, when)
                          : bus_->readRequest(core, paddr, false, false,
                                              true, when);
    // Misses occupy an L1 MSHR for their duration.
    out.latency += l1.reserveMshr(paddr, when, so.latency);
    out.latency += so.latency;
    out.serviceLevel = so.serviceLevel;

    CoherState st = CoherState::Shared;
    if (is_store)
        st = CoherState::Modified;
    else if (so.wouldBeExclusive)
        st = CoherState::Exclusive;
    CacheLine &nl = fillL1(l1, paddr, st);
    nl.dirty = is_store;

    // Unprotected prefetcher training: the L2's stride prefetcher sees
    // every access that reaches the bus, speculative or not.
    if (prefetcher_ && !params_.mt.commitPrefetch)
        prefetcher_->train(pc, paddr);
    return out;
}

DataAccessResult
MemSystem::filterDataAccess(CoreId core, Asid asid, Addr vaddr, Addr paddr,
                            Addr pc, bool is_store, bool speculative,
                            Cycle when, Cycle lat_so_far)
{
    MuonTrapCore &mt = *side_[core].mt;
    FilterCache &l0 = *mt.dataFilter();
    Cache &l1 = *side_[core].l1d;
    const bool protect = params_.mt.protectData;
    const bool coh = params_.mt.protectCoherence;
    const bool parallel = params_.mt.parallelL0L1;

    DataAccessResult out;
    out.latency = lat_so_far + l0.params().hitLatency;

    // L0 filter lookup (virtual side).
    if (CacheLine *line = l0.lookupVirt(asid, vaddr, paddr)) {
        ++l0.hits;
        out.serviceLevel = 0;
        if (protect && !speculative && !line->committed)
            commitFilterLine(core, *line, paddr, pc, when);
        return out;
    }
    ++l0.misses;

    // L1 lookup. Serial: pay L0 then L1; parallel (§6.5): overlap them.
    const Cycle l1_lat = l1.params().hitLatency;
    if (parallel)
        out.latency = lat_so_far + std::max<Cycle>(l0.params().hitLatency,
                                                   l1_lat);
    else
        out.latency += l1_lat;

    // Protected speculative accesses must not perturb L1 replacement
    // state; commit-time write-through refreshes it instead.
    CacheLine *l1line = (protect && speculative) ? l1.peek(paddr)
                                                 : l1.lookup(paddr);
    if (l1line) {
        ++l1.hits;
        out.serviceLevel = 1;
        // Copy into the filter for subsequent 1-cycle hits.
        l0.fillVirt(asid, vaddr, paddr, speculative && protect,
                    /*fill_level=*/1, /*se_pending=*/false);
        if (is_store && !protect) {
            if (l1line->state == CoherState::Shared) {
                SnoopOutcome so = bus_->writeRequest(core, paddr, false,
                                                     false, true, when);
                out.latency += so.latency;
            }
            l1line->state = CoherState::Modified;
            l1line->dirty = true;
        }
        return out;
    }
    ++l1.misses;

    // Miss in the private hierarchy: go to the bus.
    // Under full protection, a speculative store only *prefetches* the
    // line in S (§4.5); exclusive ownership is taken at commit. Without
    // coherence protection (ablations), stores behave like the baseline.
    SnoopOutcome so;
    if (!protect) {
        // Insecure L0: normal baseline request, fills L2.
        so = is_store ? bus_->writeRequest(core, paddr, false, false, true, when)
                      : bus_->readRequest(core, paddr, false, false, true, when);
    } else {
        so = bus_->readRequest(core, paddr, speculative && coh, coh,
                               /*fill_l2=*/!speculative, when);
    }
    if (so.nacked) {
        out.nacked = true;
        out.latency += so.latency;
        return out;
    }
    out.latency += l0.reserveMshr(paddr, when, so.latency);
    out.latency += so.latency;
    out.serviceLevel = so.serviceLevel;
    if (so.serviceLevel == 3) {
        // pc is unset for page-table-walker reads (see the walker's
        // access lambda) — split the DRAM traffic accordingly.
        if (pc == kAddrInvalid)
            ++dramPtw;
        else
            ++dramDemand;
    }

    const bool spec_fill = speculative && protect;
    const bool se = protect && coh && !is_store && so.wouldBeExclusive;
    CacheLine &fl =
        l0.fillVirt(asid, vaddr, paddr, spec_fill,
                    static_cast<std::uint8_t>(so.serviceLevel), se);

    if (!protect) {
        // Insecure L0 also fills the L1 immediately, like a normal
        // hierarchy.
        CoherState st = CoherState::Shared;
        if (is_store)
            st = CoherState::Modified;
        else if (so.wouldBeExclusive)
            st = CoherState::Exclusive;
        CacheLine &nl = fillL1(l1, paddr, st);
        nl.dirty = is_store;
    } else if (!speculative) {
        // Non-speculative access (e.g. a NACK retry at the head of the
        // queue): the line is committed on arrival.
        commitFilterLine(core, fl, paddr, pc, when);
    }

    // Prefetcher training at access time unless commit-ordered training
    // is enabled (the "prefetching" protection step of figures 8/9).
    if (prefetcher_ && !params_.mt.commitPrefetch)
        prefetcher_->train(pc, paddr);
    return out;
}

// --------------------------------------------------------------------------
// Commit-time actions
// --------------------------------------------------------------------------

void
MemSystem::commitFilterLine(CoreId core, CacheLine &line, Addr paddr,
                            Addr pc, Cycle when)
{
    (void)when;
    line.committed = true;
    ++commitWriteThroughs;

    Cache &l1 = *side_[core].l1d;
    if (line.sePending) {
        // Asynchronous SE->E upgrade launched from the L1 (§4.5); does
        // not block commit.
        line.sePending = false;
        ++seUpgradeRequests;
        bus_->commitUpgrade(core, paddr, /*is_store=*/false,
                            /*to_modified=*/false);
    } else {
        CacheLine *own = l1.peek(paddr);
        if (!own)
            fillL1(l1, paddr, CoherState::Shared);
        else
            l1.lookup(paddr); // refresh replacement state
    }
    // Mirror into the shared L2 so other cores can find committed data.
    if (!l2_->peek(paddr))
        l2_->fill(paddr, CoherState::Shared);

    // Commit-ordered prefetcher training (§4.6).
    if (channel_ && params_.mt.commitPrefetch) {
        PrefetchNotify n;
        n.pc = pc;
        n.paddr = paddr;
        n.fillLevel = line.fillLevel;
        channel_->notifyCommit(n);
        channel_->drain();
    }
}

void
MemSystem::commitData(CoreId core, Asid asid, Addr vaddr, Addr pc,
                      bool is_store, bool tlb_missed, Cycle when)
{
    const Addr paddr = vm_.translate(asid, vaddr);
    MuonTrapCore &mt = *side_[core].mt;

    // Promote the translation out of the filter TLB (§4.7).
    if (tlb_missed && mt.filterTlb()) {
        side_[core].dtlb->insert(asid, vaddr, paddr);
        if (params_.mt.tlbFilter)
            side_[core].walker->retranslate(asid, vaddr, when);
    }

    if (params_.mt.enabled && params_.mt.protectData) {
        FilterCache &l0 = *mt.dataFilter();
        CacheLine *line = l0.lookupVirt(asid, vaddr, paddr);
        if (line) {
            if (!line->committed)
                commitFilterLine(core, *line, paddr, pc, when);
        } else if (!side_[core].l1d->peek(paddr)) {
            // Evicted before commit and not already committed into the
            // L1 by an earlier instruction: a valid in-order execution
            // would have cached it, so refetch straight into the L1
            // (§4.2).
            ++recommitFetches;
            SnoopOutcome so = bus_->readRequest(
                core, paddr, false, params_.mt.protectCoherence, true, when);
            fillL1(*side_[core].l1d, paddr,
                   so.wouldBeExclusive ? CoherState::Exclusive
                                       : CoherState::Shared);
            if (channel_ && params_.mt.commitPrefetch) {
                PrefetchNotify n;
                n.pc = pc;
                n.paddr = paddr;
                n.fillLevel = static_cast<std::uint8_t>(so.serviceLevel);
                channel_->notifyCommit(n);
                channel_->drain();
            }
        }
        if (is_store) {
            // Commit-time exclusive upgrade + write-through (§4.2/§4.5).
            bus_->commitUpgrade(core, paddr, /*is_store=*/true,
                                /*to_modified=*/true);
            if (line)
                line->committed = true;
        }
        return;
    }

    // Baseline / insecure L0: stores must still ensure ownership (the
    // execute-time prefetch usually did; an eviction in between forces a
    // re-request).
    if (is_store) {
        Cache &l1 = *side_[core].l1d;
        CacheLine *own = l1.peek(paddr);
        if (!own || own->state != CoherState::Modified) {
            bus_->writeRequest(core, paddr, false, false, true, when);
            CacheLine &nl = fillL1(l1, paddr, CoherState::Modified);
            nl.dirty = true;
        }
    }
}

// --------------------------------------------------------------------------
// Instruction side
// --------------------------------------------------------------------------

Cycle
MemSystem::ifetchAccess(CoreId core, Asid asid, Addr vaddr, Cycle when)
{
    ++ifetchAccesses;
    Translation tr = translate(core, asid, vaddr, when,
                               /*speculative=*/true, /*ifetch=*/true);
    Cycle lat = tr.latency;
    const Addr paddr = tr.paddr;

    MuonTrapCore &mt = *side_[core].mt;
    Cache &l1i = *side_[core].l1i;

    if (FilterCache *fi = mt.instFilter()) {
        lat += fi->params().hitLatency;
        if (CacheLine *line = fi->lookupVirt(asid, vaddr, paddr)) {
            ++fi->hits;
            (void)line;
            return lat;
        }
        ++fi->misses;
        lat += l1i.params().hitLatency;
        if (l1i.peek(paddr)) {
            ++l1i.hits;
            fi->fillVirt(asid, vaddr, paddr, /*speculative=*/true,
                         /*fill_level=*/1, false);
            return lat;
        }
        ++l1i.misses;
        SnoopOutcome so = bus_->readRequest(core, paddr, true,
                                            params_.mt.protectCoherence,
                                            /*fill_l2=*/false, when);
        if (so.nacked) {
            // Instruction lines are read-shared; a NACK can only happen
            // if a data store owns the line. Retry non-speculatively.
            so = bus_->readRequest(core, paddr, false,
                                   params_.mt.protectCoherence, false, when);
        }
        lat += fi->reserveMshr(paddr, when, so.latency);
        lat += so.latency;
        fi->fillVirt(asid, vaddr, paddr, /*speculative=*/true,
                     static_cast<std::uint8_t>(so.serviceLevel), false);
        return lat;
    }

    // No instruction filter: conventional (insecure) I-side.
    lat += l1i.params().hitLatency;
    if (l1i.lookup(paddr)) {
        ++l1i.hits;
        return lat;
    }
    ++l1i.misses;
    const bool fill_l2 =
        !(params_.mt.enabled && params_.mt.protectData);
    SnoopOutcome so = bus_->readRequest(core, paddr, false, false,
                                        fill_l2, when);
    lat += l1i.reserveMshr(paddr, when, so.latency);
    lat += so.latency;
    fillL1(l1i, paddr, CoherState::Shared);
    return lat;
}

void
MemSystem::commitIfetch(CoreId core, Asid asid, Addr vaddr, Cycle when)
{
    (void)when;
    MuonTrapCore &mt = *side_[core].mt;
    const Addr paddr = vm_.translate(asid, vaddr);

    // Promote the instruction-side translation: a committed fetch makes
    // the mapping architectural.
    if (mt.filterTlb())
        side_[core].itlb->insert(asid, vaddr, paddr);

    FilterCache *fi = mt.instFilter();
    if (!fi)
        return;
    CacheLine *line = fi->lookupVirt(asid, vaddr, paddr);
    if (line) {
        if (!line->committed) {
            // Simpler than the data side (§4.7): set the committed bit
            // and copy into the L1I; no coherence upgrade is ever needed
            // for read-only instruction lines.
            line->committed = true;
            ++commitWriteThroughs;
            if (!side_[core].l1i->peek(paddr))
                fillL1(*side_[core].l1i, paddr, CoherState::Shared);
            if (!l2_->peek(paddr))
                l2_->fill(paddr, CoherState::Shared);
        }
    } else if (!side_[core].l1i->peek(paddr)) {
        // Evicted from the instruction filter before commit: as on the
        // data side (§4.2), a valid in-order execution would have cached
        // the line, so bring it into the L1I now.
        ++recommitFetches;
        bus_->readRequest(core, paddr, false,
                          params_.mt.protectCoherence, true, when);
        fillL1(*side_[core].l1i, paddr, CoherState::Shared);
    }
}

// --------------------------------------------------------------------------
// Probes
// --------------------------------------------------------------------------

Cycle
MemSystem::dataProbe(CoreId core, Asid asid, Addr vaddr, Cycle when)
{
    (void)when;
    ++probes;
    // InvisiSpec's speculative buffer: allocation may stall when full.
    Cycle lat = side_[core].spec->allocate(vaddr, when);

    // Translation for the probe is functional (InvisiSpec does not
    // protect the TLB; the real TLB fill happens at exposure).
    const Addr paddr = vm_.translate(asid, vaddr);

    Cache &l1 = *side_[core].l1d;
    lat += l1.params().hitLatency;
    if (l1.peek(paddr))
        return lat;

    lat += params_.bus.transactionLatency;
    if (bus_->remoteHoldsExclusive(core, paddr)) {
        lat += params_.bus.remoteSupplyLatency;
        return lat;
    }
    lat += l2_->params().hitLatency;
    if (l2_->peek(paddr))
        return lat;
    lat += params_.mem.rowMissLatency;
    return lat;
}

bool
MemSystem::dataHitsPrivate(CoreId core, Asid asid, Addr vaddr)
{
    // Same CPU-side visibility rules as timeProbe's private prefix: a
    // virtual-tag filter hit or a physical L1D hit counts; anything
    // else would need the bus. Touches nothing.
    const Addr paddr = vm_.translate(asid, vaddr);
    MuonTrapCore &mt = *side_[core].mt;
    if (FilterCache *fd = mt.dataFilter()) {
        if (fd->lookupVirt(asid, vaddr, paddr))
            return true;
    }
    return side_[core].l1d->peek(paddr) != nullptr;
}

Cycle
MemSystem::timeProbe(CoreId core, Asid asid, Addr vaddr)
{
    const Addr paddr = vm_.translate(asid, vaddr);
    MuonTrapCore &mt = *side_[core].mt;

    Cycle lat = 0;
    if (FilterCache *fd = mt.dataFilter()) {
        lat += fd->params().hitLatency;
        // The probe sees what the *CPU side* would see: a virtual-tag
        // match with the valid bit set.
        if (CacheLine *l = fd->lookupVirt(asid, vaddr, paddr)) {
            (void)l;
            return lat;
        }
    }
    Cache &l1 = *side_[core].l1d;
    lat += l1.params().hitLatency;
    if (l1.peek(paddr))
        return lat;
    lat += params_.bus.transactionLatency;
    if (bus_->remoteHoldsExclusive(core, paddr)) {
        lat += params_.bus.remoteSupplyLatency;
        return lat;
    }
    lat += l2_->params().hitLatency;
    if (l2_->peek(paddr))
        return lat;
    lat += params_.mem.rowMissLatency;
    return lat;
}

Cycle
MemSystem::timeStoreProbe(CoreId core, Asid asid, Addr vaddr)
{
    const Addr paddr = vm_.translate(asid, vaddr);
    Cache &l1 = *side_[core].l1d;

    Cycle lat = l1.params().hitLatency;
    const CacheLine *own = l1.peek(paddr);
    if (own && (own->state == CoherState::Modified ||
                own->state == CoherState::Exclusive))
        return lat;
    // Shared or absent: an exclusive upgrade is needed.
    lat += params_.bus.transactionLatency;
    if (own)
        return lat; // upgrade of a present S line
    if (bus_->remoteHoldsExclusive(core, paddr)) {
        lat += params_.bus.remoteSupplyLatency;
        return lat;
    }
    lat += l2_->params().hitLatency;
    if (l2_->peek(paddr))
        return lat;
    lat += params_.mem.rowMissLatency;
    return lat;
}

Cycle
MemSystem::timeIfetchProbe(CoreId core, Asid asid, Addr vaddr)
{
    const Addr paddr = vm_.translate(asid, vaddr);
    MuonTrapCore &mt = *side_[core].mt;

    Cycle lat = 0;
    if (FilterCache *fi = mt.instFilter()) {
        lat += fi->params().hitLatency;
        if (fi->lookupVirt(asid, vaddr, paddr))
            return lat;
    }
    Cache &l1i = *side_[core].l1i;
    lat += l1i.params().hitLatency;
    if (l1i.peek(paddr))
        return lat;
    lat += params_.bus.transactionLatency;
    lat += l2_->params().hitLatency;
    if (l2_->peek(paddr))
        return lat;
    lat += params_.mem.rowMissLatency;
    return lat;
}

// --------------------------------------------------------------------------
// Domain events + functional data
// --------------------------------------------------------------------------

void
MemSystem::onSyscall(CoreId core, Cycle when)
{
    side_[core].mt->flush(FlushReason::Syscall, when);
}

void
MemSystem::onSandboxSwitch(CoreId core, Cycle when)
{
    side_[core].mt->flush(FlushReason::Sandbox, when);
}

void
MemSystem::onContextSwitch(CoreId core, Cycle when)
{
    side_[core].mt->flush(FlushReason::ContextSwitch, when);
    side_[core].spec->clear(when);
    // The incoming context starts with a cold functional word cache.
    for (FuncLine &l : funcCache_[core].line)
        l.lineVa = kAddrInvalid;
}

void
MemSystem::onFlushBarrier(CoreId core, Cycle when)
{
    side_[core].mt->flush(FlushReason::Explicit, when);
}

void
MemSystem::onSquash(CoreId core, Cycle when)
{
    side_[core].mt->flush(FlushReason::Misspeculation, when);
    side_[core].spec->clear(when);
}

std::uint64_t
MemSystem::read(Asid asid, Addr vaddr)
{
    return mem_->read(vm_.translate(asid, vaddr));
}

std::uint64_t
MemSystem::readMiss(CoreId core, Asid asid, Addr vaddr)
{
    FuncReadCache &fc = funcCache_[core];
    const Addr lv = vaddr >> kLineShift;
    const unsigned w = static_cast<unsigned>(vaddr >> 3) & 7;
    const std::uint32_t ver = vm_.version();

    FuncLine *l = &fc.line[fc.mru];
    if (l->lineVa != lv || l->asid != asid || l->ver != ver) {
        l = nullptr;
        FuncLine *lru = &fc.line[0];
        for (FuncLine &cand : fc.line) {
            if (cand.lineVa == lv && cand.asid == asid &&
                cand.ver == ver) {
                l = &cand;
                break;
            }
            if (cand.stamp < lru->stamp)
                lru = &cand;
        }
        if (!l) {
            // Fill the LRU entry's tags; words arrive lazily below.
            l = lru;
            l->lineVa = lv;
            l->asid = asid;
            l->ver = ver;
            l->mask = 0;
            l->paBase = vm_.translate(asid, vaddr)
                        & ~static_cast<Addr>(kLineBytes - 1);
        }
        fc.mru = static_cast<std::uint8_t>(l - fc.line.data());
    }
    l->stamp = ++fc.clock;
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << w);
    if (!(l->mask & bit)) {
        l->words[w] = mem_->read(l->paBase
                                 + (vaddr & (kLineBytes - 1)));
        l->mask |= bit;
    }
    return l->words[w];
}

void
MemSystem::write(Asid asid, Addr vaddr, std::uint64_t value)
{
    const Addr paddr = vm_.translate(asid, vaddr);
    // Knock the written word out of every core's functional word cache.
    // The match is physical, so cross-core and cross-asid (aliased)
    // writes invalidate correctly.
    const Addr pa_line = paddr & ~static_cast<Addr>(kLineBytes - 1);
    const std::uint8_t bit =
        static_cast<std::uint8_t>(1u << (static_cast<unsigned>(paddr >> 3)
                                         & 7));
    for (FuncReadCache &fc : funcCache_)
        for (FuncLine &l : fc.line)
            if (l.paBase == pa_line)
                l.mask &= static_cast<std::uint8_t>(~bit);
    mem_->write(paddr, value);
}

} // namespace mtrap

/**
 * @file
 * JSON statistics emission: serialise a StatGroup tree (or a RunResult)
 * into a machine-readable blob for plotting and regression tracking.
 */

#ifndef MTRAP_SIM_JSON_STATS_HH
#define MTRAP_SIM_JSON_STATS_HH

#include <ostream>
#include <string>

#include "common/stats.hh"
#include "sim/runner.hh"

namespace mtrap
{

/** Escape a string for inclusion in JSON. */
std::string jsonEscape(const std::string &s);

/**
 * Emit every stat reachable from `group` as a flat JSON object keyed by
 * dotted path ("system.core0.committed": "120000", ...). Values are the
 * formatted strings so every stat kind serialises uniformly.
 */
void dumpStatsJson(const StatGroup &group, std::ostream &os);

/** Emit one run result as a JSON object. */
void dumpRunResultJson(const RunResult &r, std::ostream &os);

} // namespace mtrap

#endif // MTRAP_SIM_JSON_STATS_HH

#include "sim/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/log.hh"

namespace mtrap
{

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        fatal("geomean of empty set");
    double acc = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean of non-positive value %f", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

ReportTable::ReportTable(std::string title) : title_(std::move(title)) {}

void
ReportTable::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
ReportTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
ReportTable::rowNumeric(const std::string &name,
                        const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.push_back(name);
    for (double v : values)
        cells.push_back(strfmt("%.*f", precision, v));
    rows_.push_back(std::move(cells));
}

void
ReportTable::geomeanRow(int precision)
{
    if (rows_.empty())
        return;
    const std::size_t cols = rows_.front().size();
    std::vector<std::string> cells;
    cells.push_back("geomean");
    for (std::size_t c = 1; c < cols; ++c) {
        std::vector<double> vals;
        bool ok = true;
        for (const auto &r : rows_) {
            if (c >= r.size()) {
                ok = false;
                break;
            }
            char *end = nullptr;
            const double v = std::strtod(r[c].c_str(), &end);
            if (end == r[c].c_str() || v <= 0.0) {
                ok = false;
                break;
            }
            vals.push_back(v);
        }
        cells.push_back(ok && !vals.empty()
                            ? strfmt("%.*f", precision, geomean(vals))
                            : std::string("-"));
    }
    rows_.push_back(std::move(cells));
}

void
ReportTable::print(std::ostream &os) const
{
    os << "== " << title_ << " ==\n";
    std::vector<std::size_t> width;
    auto widen = [&width](const std::vector<std::string> &cells) {
        if (width.size() < cells.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto emit = [&os, &width](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(width[i] - cells[i].size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    os << "\n";
}

void
ReportTable::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << ",";
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

} // namespace mtrap

/**
 * @file
 * Whole-system assembly: cores + memory system, configured per defence
 * scheme, with an interleaved multi-core run loop.
 */

#ifndef MTRAP_SIM_SYSTEM_HH
#define MTRAP_SIM_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "cpu/core.hh"
#include "defense/scheme.hh"
#include "sim/mem_system.hh"
#include "sim/scheduler.hh"
#include "trace/trace.hh"
#include "workload/kernels.hh"

namespace mtrap
{

/** Top-level configuration (defaults = paper Table 1, 4 cores). */
struct SystemConfig
{
    unsigned cores = 1;
    CoreParams core{};
    MemSystemParams mem{};

    /** Table-1 system under the given scheme. */
    static SystemConfig forScheme(Scheme s, unsigned cores = 1);
};

/**
 * A complete simulated machine.
 */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }
    Core &core(CoreId c) { return *cores_.at(c); }
    MemSystem &mem() { return *mem_; }
    StatGroup &root() { return root_; }
    const SystemConfig &config() const { return cfg_; }

    /**
     * Install a workload: thread i runs on core i (fatal if the
     * workload has more threads than cores). Runs the workload's memory
     * initialiser.
     */
    void loadWorkload(const Workload &w);

    /**
     * Run every non-halted core for up to `max_commits_per_core` more
     * committed instructions, interleaved in global-cycle order so
     * coherence interactions are seen in a sensible order.
     */
    void run(std::uint64_t max_commits_per_core);

    /**
     * Like run(), but to an *absolute* committed-instruction target per
     * core (one entry per core). Because stepOne can retire a small
     * batch past a target, budget-relative chunking accumulates the
     * overshoot; absolute targets make a chunked measured phase land on
     * exactly the same final commit counts as a monolithic one (the
     * runner's interval stat sampling relies on this).
     */
    void runTo(const std::vector<std::uint64_t> &targets);

    /**
     * Attach a gang scheduler that owns every core: from here on the
     * scheduler decides which Core steps which Program. Workloads are
     * admitted with addScheduledWorkload and driven with runScheduled;
     * the direct loadWorkload/run pair must not be mixed in.
     */
    Scheduler &attachScheduler(const SchedParams &params = {});

    /** The attached scheduler, or nullptr. */
    Scheduler *scheduler() { return sched_.get(); }

    /**
     * Admit a workload to the scheduler as one job: its threads are
     * gang-placed across cores and time-share with every other admitted
     * job. Runs the workload's memory initialiser. Jobs keep their own
     * Workload::asid, so give concurrent jobs distinct asids. The
     * system stores its own copy of the workload (the scheduler holds
     * program pointers for the whole run), so temporaries are fine.
     */
    JobId addScheduledWorkload(const Workload &w);

    /** Open-system admission: like addScheduledWorkload plus the
     *  arrival stamp / service limit / deadline / weight / IO-wait
     *  attributes of `admit`. Called mid-run by an ArrivalSource. */
    JobId addScheduledWorkload(const Workload &w, const JobAdmit &admit);

    /** Run `total_commits` instructions across all scheduled jobs (see
     *  Scheduler::run). */
    std::uint64_t runScheduled(std::uint64_t total_commits);

    /**
     * Attach an event tracer and wire it into every hook site: cores
     * (context switches, squashes), the memory side (bus, MuonTrap
     * filters, spec buffers) and the scheduler if one is attached (or
     * attached later). Its recorded/dropped counters join the system
     * stat tree under "system.trace". Fatal if already attached.
     */
    Tracer &attachTracer(const TraceParams &params = {});

    /** The attached tracer, or nullptr. */
    Tracer *tracer() { return tracer_.get(); }

    /** Drain all cores' pipelines. */
    void drainAll();

    /** Largest commit cycle over all cores (the run's makespan). */
    Cycle maxCommitCycle() const;

    /** Reset all statistics (post-warmup). */
    void resetStats() { root_.resetAll(); }

    void dumpStats(std::ostream &os) { root_.dump(os); }

    /**
     * 64-bit digest of every configuration field. Snapshot headers
     * carry it; restore refuses an image taken under any other
     * configuration (warm microarchitectural state is meaningless —
     * and silently wrong — under different structural parameters).
     */
    std::uint64_t configFingerprint() const;

    /**
     * Serialize the whole machine — memory system, every core, the
     * scheduler and tracer when attached, and all statistic sheets —
     * into a snapshot image. Nothing is drained first: in-flight
     * wrong-path state rides along, so a restored run replays the
     * monolithic one bit for bit. `ctx_fp` tags the run context
     * (workload identity + warmup position); restore validates it.
     */
    std::vector<std::uint8_t> saveSnapshot(std::uint64_t ctx_fp) const;
    void saveSnapshotFile(const std::string &path,
                          std::uint64_t ctx_fp) const;

    /**
     * Restore from a snapshot image. Precondition: this system was
     * built from the same SystemConfig and the same workload
     * loading/admission calls were replayed (loadWorkload /
     * addScheduledWorkload install the Program pointers a snapshot
     * cannot carry). Throws SnapshotError on any mismatch or
     * corruption, leaving no partial state observable to callers that
     * catch and rebuild.
     */
    void restoreSnapshot(std::vector<std::uint8_t> image,
                         std::uint64_t ctx_fp);
    void restoreSnapshotFile(const std::string &path,
                             std::uint64_t ctx_fp);

  private:
    SystemConfig cfg_;
    StatGroup root_;
    std::unique_ptr<MemSystem> mem_;
    std::vector<std::unique_ptr<Core>> cores_;
    /** Declared after cores_ (holds raw Core pointers). */
    std::unique_ptr<Scheduler> sched_;
    /** Owned copies of scheduled workloads: the scheduler's tasks point
     *  into these programs for the system's whole lifetime. */
    std::vector<std::unique_ptr<Workload>> schedJobs_;
    /** Event tracer, when attached; components hold raw pointers into
     *  it, so it lives as long as the system. */
    std::unique_ptr<Tracer> tracer_;
};

} // namespace mtrap

#endif // MTRAP_SIM_SYSTEM_HH

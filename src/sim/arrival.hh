/**
 * @file
 * Open-system "server farm" workloads: a deterministic seeded arrival
 * process admits jobs mid-run, the gang scheduler time-shares them
 * under QoS attributes (weights, deadlines, IO-wait), and a
 * ServerReport distils the queueing behaviour — sojourn/wait latency
 * percentiles, core occupancy, deadline-miss rate, throughput.
 *
 * Everything here is deterministic by construction: the whole arrival
 * schedule (arrival cycles, per-job profile/service-demand/weight/
 * deadline draws) is generated up front from ArrivalParams::seed, so a
 * server run is a pure function of (SystemConfig, SchedParams,
 * ArrivalParams, RunOptions) — the same schedule, series and
 * percentiles fall out regardless of harness thread count, chunking or
 * snapshot-resume position.
 */

#ifndef MTRAP_SIM_ARRIVAL_HH
#define MTRAP_SIM_ARRIVAL_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/scheduler.hh"
#include "sim/system.hh"

namespace mtrap
{

/** Arrival-pattern family. */
enum class ArrivalPattern {
    /** Memoryless arrivals: exponential inter-arrival gaps with mean
     *  meanInterarrival (the classic open-system M/G/k shape). */
    Poisson,
    /** Bursty arrivals: groups of burstSize jobs spaced
     *  burstSpacing apart, bursts separated by an exponential gap with
     *  mean burstSize * meanInterarrival (same long-run rate as
     *  Poisson, much worse tail behaviour). */
    Burst,
};

const char *arrivalPatternName(ArrivalPattern p);

/** Shape of one open-system run's offered load. */
struct ArrivalParams
{
    /** Schedule seed: drives every draw (gaps, profiles, demands,
     *  weights). Same seed => byte-identical schedule. */
    std::uint64_t seed = 1;
    ArrivalPattern pattern = ArrivalPattern::Poisson;
    /** Total jobs to admit over the run. */
    std::uint64_t jobs = 16;
    /** Mean inter-arrival gap in cycles (the load knob: smaller =
     *  heavier offered load). */
    Cycle meanInterarrival = 40'000;
    /** Burst pattern only: jobs per burst / in-burst spacing. */
    unsigned burstSize = 4;
    Cycle burstSpacing = 200;
    /** Per-job service demand (committed instructions), drawn uniformly
     *  from [serviceMinCommits, serviceMaxCommits]. */
    std::uint64_t serviceMinCommits = 20'000;
    std::uint64_t serviceMaxCommits = 60'000;
    /** Per-job deadline = arrival + serviceCommits * deadlineFactor
     *  cycles; 0 = no deadlines. At IPC 1 a factor of 1 is already
     *  tight, so realistic QoS targets are 3..10. */
    unsigned deadlineFactor = 0;
    /** Scheduler weight drawn uniformly from [1, maxWeight] (weighted
     *  quanta: weight w => w consecutive quanta per scheduling round).
     *  1 = every job equal. */
    unsigned maxWeight = 1;
    /** IO-wait emulation, applied to every job: after each
     *  sleepPeriodCommits committed instructions the job sleeps
     *  sleepDurationCycles (0 = never sleeps). */
    std::uint64_t sleepPeriodCommits = 0;
    Cycle sleepDurationCycles = 0;
    /** Profile mix the per-job draw picks from: names resolvable as
     *  SPEC (single-thread) or Parsec (multi-thread gang) profiles.
     *  Empty = a default six-benchmark SPEC mix. */
    std::vector<std::string> profiles;
    /** Asid of the first admitted job; job i gets firstAsid + i. */
    Asid firstAsid = 1;
};

/** One pre-drawn arrival. */
struct ArrivalEvent
{
    Cycle at = 0;
    std::string profile;
    std::uint64_t serviceCommits = 0;
    Cycle deadline = 0; // absolute; 0 = none
    unsigned weight = 1;
    /** Mixed into the profile's kernel seed so two jobs of the same
     *  benchmark do not stride identical address streams. */
    std::uint64_t workloadSeed = 0;
};

/** Generate the full deterministic schedule for `p` (first arrival at
 *  cycle >= 1, strictly non-decreasing). */
std::vector<ArrivalEvent> generateArrivalSchedule(const ArrivalParams &p);

/**
 * The System-coupled arrival source: owns the pre-generated schedule
 * and admits jobs into the system's scheduler as simulated time reaches
 * their arrival cycles (the scheduler polls it at decision-grid
 * points — see Scheduler::setArrivalSource). Attach with:
 *
 *   ArrivalInjector inj(sys, params);
 *   sys.scheduler()->setArrivalSource(&inj);
 */
class ArrivalInjector : public ArrivalSource
{
  public:
    ArrivalInjector(System &sys, const ArrivalParams &p);

    Cycle nextArrivalCycle() const override;
    unsigned admitUpTo(Cycle now) override;

    const std::vector<ArrivalEvent> &schedule() const { return events_; }
    /** Jobs admitted so far (== the snapshot replay count). */
    std::size_t admitted() const { return next_; }

    /**
     * Snapshot-restore support: re-admit the first `n` arrivals of the
     * schedule into a *fresh* system (re-binding the Program pointers a
     * snapshot cannot carry), before System::restoreSnapshot overwrites
     * the machine state. Fatal if any job was already admitted.
     */
    void replayAdmissions(std::size_t n);

  private:
    void admitOne(const ArrivalEvent &e, std::size_t index);

    System &sys_;
    ArrivalParams params_;
    std::vector<ArrivalEvent> events_;
    std::size_t next_ = 0;
};

/**
 * Nearest-rank percentile (pct in [1,100]) of an unsorted sample set;
 * 0 for an empty set. Integer-exact: no interpolation, so golden
 * artifacts are platform-stable.
 */
Cycle percentileCycles(std::vector<Cycle> samples, unsigned pct);

/** Queueing-behaviour digest of one open-system run. */
struct ServerReport
{
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    /** Jobs that carried a deadline / that missed it (unfinished jobs
     *  with a deadline count as misses). */
    std::uint64_t deadlineTotal = 0;
    std::uint64_t deadlineMisses = 0;
    /** Total committed instructions across all jobs. */
    std::uint64_t committed = 0;
    /** Makespan: last commit cycle over all cores. */
    Cycle makespan = 0;
    /** Sojourn time (finish - arrival) percentiles over completed
     *  jobs. */
    Cycle sojournP50 = 0, sojournP95 = 0, sojournP99 = 0, sojournMax = 0;
    /** Wait time (first run - arrival) percentiles over started
     *  jobs. */
    Cycle waitP50 = 0, waitP95 = 0, waitP99 = 0;
    double meanSojourn = 0.0;
    /** Busy-cycle fraction: sum(core busy cycles) / (cores *
     *  makespan). */
    double occupancy = 0.0;
    /** Completed jobs per million cycles. */
    double throughputPerMcycle = 0.0;
    /** Aggregate IPC: committed / makespan. */
    double ipc = 0.0;

    /** Distil the report from the scheduler's job records and the
     *  cores' busy-cycle accounting. */
    static ServerReport build(System &sys, const ArrivalInjector &inj);

    void print(std::ostream &os) const;
};

/** One open-system run's full output. */
struct ServerRunOutput
{
    ServerReport report;
    std::string configName;
    std::unique_ptr<System> system;
    /** The scheduler holds a raw pointer to this injector; it rides
     *  along so the system can keep running (or snapshot) later. */
    std::unique_ptr<ArrivalInjector> injector;
    /** Interval time-series, when RunOptions::statsInterval != 0. */
    std::unique_ptr<StatSeries> statSeries;
};

/**
 * Run one open-system experiment: build a system for `cfg` (seed-mixed
 * per opt.seed), attach scheduler + tracer + arrival source, and run
 * until every admitted job has completed. There is no warmup phase —
 * cold-start transients are part of open-system behaviour — and
 * opt.measureInstructions is ignored (the arrival schedule bounds the
 * work: every job carries a finite service demand). opt.statsInterval
 * samples the PR-6 interval series as usual; opt.snapshotIn/Out use
 * the *server* outer frame (saveServerSnapshot below), not the bare
 * System image.
 */
ServerRunOutput runServerConfigured(const SystemConfig &cfg,
                                    const SchedParams &sched,
                                    const ArrivalParams &arrivals,
                                    const RunOptions &opt = {},
                                    const std::string &config_name =
                                        "custom");

/**
 * Context fingerprint of a server run: arrival schedule shape +
 * scheduler policy + seed. Pairs with System::configFingerprint() to
 * key server snapshots.
 */
std::uint64_t serverContextFingerprint(const ArrivalParams &arrivals,
                                       const SchedParams &sched,
                                       const RunOptions &opt);

/**
 * Mid-stream server snapshot: an outer kTagArrival frame carrying the
 * admission count plus the embedded System image. Restore on a fresh
 * (system, injector) pair built from identical parameters: the
 * injector replays the admissions (re-binding program pointers), then
 * the System image overwrites all machine state — after which the run
 * continues bit-identically to the unsnapshotted one.
 */
std::vector<std::uint8_t> saveServerSnapshot(const System &sys,
                                             const ArrivalInjector &inj,
                                             std::uint64_t ctx_fp);
void restoreServerSnapshot(System &sys, ArrivalInjector &inj,
                           std::vector<std::uint8_t> image,
                           std::uint64_t ctx_fp);

} // namespace mtrap

#endif // MTRAP_SIM_ARRIVAL_HH

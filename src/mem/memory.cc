#include "mem/memory.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

const char *
accessKindName(AccessKind k)
{
    switch (k) {
      case AccessKind::Load: return "load";
      case AccessKind::Store: return "store";
      case AccessKind::Ifetch: return "ifetch";
      case AccessKind::Ptw: return "ptw";
      case AccessKind::Prefetch: return "prefetch";
    }
    return "?";
}

namespace
{

StatSchema &
memoryStatSchema()
{
    static StatSchema s("memory");
    return s;
}

} // namespace

MainMemory::MainMemory(const MemoryParams &params, StatGroup *parent)
    : params_(params),
      openRow_(params.banks, kAddrInvalid),
      stats_(memoryStatSchema(), "mem", parent),
      reads(&stats_, "reads", "line reads serviced"),
      writes(&stats_, "writes", "line writebacks serviced"),
      rowHits(&stats_, "row_hits", "row-buffer hits"),
      rowMisses(&stats_, "row_misses", "row-buffer misses")
{
    if (params.banks == 0 || !isPow2(params.rowBytes))
        fatal("memory: banks must be nonzero and rowBytes a power of two");
}

unsigned
MainMemory::bankOf(Addr addr) const
{
    return static_cast<unsigned>((addr / params_.rowBytes) % params_.banks);
}

Addr
MainMemory::rowOf(Addr addr) const
{
    return addr / params_.rowBytes;
}

void
MainMemory::saveState(Serializer &s) const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> words;
    words.reserve(store_.size());
    store_.forEach([&](std::uint64_t k, std::uint64_t v) {
        words.emplace_back(k, v);
    });
    std::sort(words.begin(), words.end());
    s.u64(words.size());
    for (const auto &[k, v] : words) {
        s.u64(k);
        s.u64(v);
    }
    s.vec(openRow_);
}

void
MainMemory::restoreState(Deserializer &d)
{
    store_.clear();
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t k = d.u64();
        const std::uint64_t v = d.u64();
        store_.put(k, v);
    }
    std::vector<Addr> rows;
    d.vec(rows);
    if (rows.size() != openRow_.size())
        throw SnapshotError("memory bank count mismatch");
    openRow_ = std::move(rows);
}

Cycle
MainMemory::access(const Access &acc)
{
    if (acc.isWrite())
        ++writes;
    else
        ++reads;

    const unsigned bank = bankOf(acc.paddr);
    const Addr row = rowOf(acc.paddr);
    Cycle lat;
    if (openRow_[bank] == row) {
        ++rowHits;
        lat = params_.rowHitLatency;
    } else {
        ++rowMisses;
        lat = params_.rowMissLatency;
        openRow_[bank] = row;
    }
    return lat;
}

} // namespace mtrap

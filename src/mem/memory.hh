/**
 * @file
 * Main-memory model: a functional sparse backing store plus a simple
 * DDR3-like latency model with row-buffer (open-page) behaviour.
 *
 * Functional data lives here only — caches track tags and coherence
 * state, and always read/write values through this store. That is
 * sufficient because the attacks and workloads observe *timing*, not
 * stale data, and it keeps the hierarchy single-copy and bug-free.
 */

#ifndef MTRAP_MEM_MEMORY_HH
#define MTRAP_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/access.hh"

namespace mtrap
{

class Serializer;
class Deserializer;

/** Timing parameters for the DRAM model (defaults ~ DDR3-1600 in core
 *  cycles at 2 GHz, matching Table 1's "DDR3-1600 11-11-11-28"). */
struct MemoryParams
{
    /** Latency for a row-buffer hit. */
    Cycle rowHitLatency = 50;
    /** Latency for a row-buffer miss (precharge + activate + CAS). */
    Cycle rowMissLatency = 110;
    /** Number of independent banks. */
    unsigned banks = 16;
    /** Bytes per DRAM row. */
    std::uint64_t rowBytes = 8192;
};

/**
 * Main memory: functional 64-bit-word store + bank/row timing.
 */
class MainMemory
{
  public:
    MainMemory(const MemoryParams &params, StatGroup *parent);

    /** Timing access for one cache line; returns latency in cycles. */
    Cycle access(const Access &acc);

    /** Functional read of the 64-bit word containing `addr`. Unwritten
     *  memory reads as a deterministic hash of the address, so workloads
     *  see stable, non-zero "data" without pre-initialisation. Inline:
     *  every functional load in every core lands here — though core
     *  loads normally arrive through MemSystem's per-core line-keyed
     *  word cache (MemSystem::read(core, asid, vaddr)), which probes
     *  this store only on a word miss and is invalidated through
     *  MemSystem::write. Writers that bypass MemSystem::write must not
     *  coexist with that cache. */
    std::uint64_t read(Addr addr) const
    {
        const Addr word = addr & ~static_cast<Addr>(7);
        if (const std::uint64_t *v = store_.find(word))
            return *v;
        // Deterministic pseudo-contents for untouched memory.
        return mix64(word);
    }

    /** Functional write of the 64-bit word containing `addr`. */
    void write(Addr addr, std::uint64_t value)
    {
        store_.put(addr & ~static_cast<Addr>(7), value);
    }

    /** Number of distinct words ever written. */
    std::size_t footprintWords() const { return store_.size(); }

    const MemoryParams &params() const { return params_; }

    /** Checkpoint the word store (sorted by address for deterministic
     *  bytes) and the per-bank open rows. */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    unsigned bankOf(Addr addr) const;
    Addr rowOf(Addr addr) const;

    MemoryParams params_;
    /** Sparse word store; open-addressing map because every functional
     *  load lands here. */
    FlatWordMap store_;
    /** Currently open row per bank (kAddrInvalid = closed). */
    std::vector<Addr> openRow_;

    StatGroup stats_;

  public:
    Counter reads;
    Counter writes;
    Counter rowHits;
    Counter rowMisses;
};

} // namespace mtrap

#endif // MTRAP_MEM_MEMORY_HH

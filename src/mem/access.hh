/**
 * @file
 * Memory access descriptor passed down the cache hierarchy.
 *
 * The hierarchy is latency-walked: a component receives an Access,
 * mutates its own state, and returns the number of cycles the access
 * took. The `speculative` flag is the pivot of the whole reproduction:
 * MuonTrap confines everything with `speculative == true` to filter
 * structures.
 */

#ifndef MTRAP_MEM_ACCESS_HH
#define MTRAP_MEM_ACCESS_HH

#include "common/types.hh"

namespace mtrap
{

/** What kind of memory operation is being performed. */
enum class AccessKind : std::uint8_t
{
    Load,       ///< data read
    Store,      ///< data write (exclusive ownership required at commit)
    Ifetch,     ///< instruction fetch
    Ptw,        ///< page-table-walker read
    Prefetch,   ///< prefetcher-initiated fill
};

/** Human-readable access-kind name. */
const char *accessKindName(AccessKind k);

/** One memory access as seen by caches, buses and memory. */
struct Access
{
    AccessKind kind = AccessKind::Load;
    /** Physical address (post-TLB). */
    Addr paddr = kAddrInvalid;
    /** Virtual address (for the virtually-indexed filter cache side). */
    Addr vaddr = kAddrInvalid;
    /** Issuing core. */
    CoreId core = 0;
    /** Address space of the issuing context. */
    Asid asid = 0;
    /** Program counter of the instruction (prefetcher training). */
    Addr pc = kAddrInvalid;
    /** True while the issuing instruction may still be squashed. */
    bool speculative = false;
    /** Cycle at which the access starts. */
    Cycle when = 0;

    bool isWrite() const { return kind == AccessKind::Store; }
    bool isIfetch() const { return kind == AccessKind::Ifetch; }
};

/** Result of walking the hierarchy for one access. */
struct AccessResult
{
    /** Total latency in cycles from issue to data return. */
    Cycle latency = 0;
    /**
     * Set when a speculative access was negatively acknowledged by the
     * coherence protocol (MuonTrap reduced coherency speculation, paper
     * §4.5) and must be retried once the instruction is at the head of
     * the queue / non-speculative.
     */
    bool nacked = false;
    /** Deepest level that serviced the access (0 = L0/filter, 1 = L1,
     *  2 = L2, 3 = memory); used for prefetch-commit notifications. */
    unsigned serviceLevel = 0;
};

} // namespace mtrap

#endif // MTRAP_MEM_ACCESS_HH

/**
 * @file
 * Hardware page-table walker (paper §4.7).
 *
 * A walk issues one read per level through the data-cache hierarchy via
 * an injected access function, so under MuonTrap the PTE lines land in
 * the data filter cache with the speculative bit set. When the
 * triggering instruction commits, the core calls retranslate(), which
 * replays the PTE reads non-speculatively — they hit the filter cache
 * and are thereby written through to the L1 as committed lines.
 */

#ifndef MTRAP_TLB_WALKER_HH
#define MTRAP_TLB_WALKER_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/access.hh"
#include "tlb/tlb.hh"

namespace mtrap
{

/**
 * Sink for the walker's PTE reads (the memory system's data path for
 * one core). A plain virtual interface rather than a std::function:
 * every TLB miss issues kWalkLevels reads through it, making this a hot
 * indirection.
 */
class PtwAccessIface
{
  public:
    virtual ~PtwAccessIface() = default;
    virtual AccessResult ptwAccess(const Access &acc) = 0;
};

/**
 * Page-table walker bound to one core's data-side hierarchy.
 */
class PageTableWalker
{
  public:
    PageTableWalker(const AddressSpace *vm, CoreId core,
                    PtwAccessIface *access, StatGroup *parent);

    /**
     * Perform a full walk for `vaddr` of `asid`.
     * @param when        start cycle
     * @param speculative the triggering instruction may still squash
     * @return total walk latency in cycles
     */
    Cycle walk(Asid asid, Addr vaddr, Cycle when, bool speculative);

    /**
     * Commit-time retranslation (§4.7): replay the PTE reads of a
     * previous speculative walk with speculative=false so the PTE lines
     * in the filter cache become committed and propagate to the L1.
     * @return latency (normally tiny: filter-cache hits)
     */
    Cycle retranslate(Asid asid, Addr vaddr, Cycle when);

  private:
    Cycle doWalk(Asid asid, Addr vaddr, Cycle when, bool speculative);

    const AddressSpace *vm_;
    CoreId core_;
    PtwAccessIface *access_;

    StatGroup stats_;

  public:
    Counter walks;
    Counter retranslations;
    Counter pteReads;
};

} // namespace mtrap

#endif // MTRAP_TLB_WALKER_HH

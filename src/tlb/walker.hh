/**
 * @file
 * Hardware page-table walker (paper §4.7).
 *
 * A walk issues one read per level through the data-cache hierarchy via
 * an injected access function, so under MuonTrap the PTE lines land in
 * the data filter cache with the speculative bit set. When the
 * triggering instruction commits, the core calls retranslate(), which
 * replays the PTE reads non-speculatively — they hit the filter cache
 * and are thereby written through to the L1 as committed lines.
 */

#ifndef MTRAP_TLB_WALKER_HH
#define MTRAP_TLB_WALKER_HH

#include <functional>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/access.hh"
#include "tlb/tlb.hh"

namespace mtrap
{

/**
 * Page-table walker bound to one core's data-side hierarchy.
 */
class PageTableWalker
{
  public:
    /** Function the walker uses to access memory (the memory system's
     *  data path for this core). */
    using AccessFn = std::function<AccessResult(const Access &)>;

    PageTableWalker(const AddressSpace *vm, CoreId core, AccessFn fn,
                    StatGroup *parent);

    /**
     * Perform a full walk for `vaddr` of `asid`.
     * @param when        start cycle
     * @param speculative the triggering instruction may still squash
     * @return total walk latency in cycles
     */
    Cycle walk(Asid asid, Addr vaddr, Cycle when, bool speculative);

    /**
     * Commit-time retranslation (§4.7): replay the PTE reads of a
     * previous speculative walk with speculative=false so the PTE lines
     * in the filter cache become committed and propagate to the L1.
     * @return latency (normally tiny: filter-cache hits)
     */
    Cycle retranslate(Asid asid, Addr vaddr, Cycle when);

  private:
    Cycle doWalk(Asid asid, Addr vaddr, Cycle when, bool speculative);

    const AddressSpace *vm_;
    CoreId core_;
    AccessFn access_;

    StatGroup stats_;

  public:
    Counter walks;
    Counter retranslations;
    Counter pteReads;
};

} // namespace mtrap

#endif // MTRAP_TLB_WALKER_HH

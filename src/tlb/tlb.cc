#include "tlb/tlb.hh"

#include "common/log.hh"
#include "common/rng.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

namespace
{

StatSchema &
tlbStatSchema()
{
    static StatSchema s("tlb");
    return s;
}

} // namespace

AddressSpace::AddressSpace() = default;

std::uint64_t
AddressSpace::key(Asid asid, Addr vpn)
{
    return (static_cast<std::uint64_t>(asid) << 40) ^ vpn;
}

Addr
AddressSpace::translate(Asid asid, Addr vaddr) const
{
    const Addr vpn = pageNum(vaddr);
    const std::uint64_t k = key(asid, vpn);
    if (k == mruKey_)
        return (mruPpn_ << kPageShift) | (vaddr & (kPageBytes - 1));

    Addr ppn;
    // Most workloads install no aliases at all; skip the hash probe
    // (this sits under every functional load and every page walk).
    auto it = aliases_.empty() ? aliases_.end() : aliases_.find(k);
    if (it != aliases_.end()) {
        ppn = it->second;
    } else {
        // Deterministic private page in a 38-bit physical space, away
        // from the page-table region (which has bit 45 set).
        ppn = mix64(k) & ((1ull << 26) - 1);
        ppn |= static_cast<Addr>(asid & 0xff) << 26;
    }
    mruKey_ = k;
    mruPpn_ = ppn;
    return (ppn << kPageShift) | (vaddr & (kPageBytes - 1));
}

void
AddressSpace::alias(Asid asid, Addr vaddr, Addr paddr, std::uint64_t bytes)
{
    if ((vaddr & (kPageBytes - 1)) || (paddr & (kPageBytes - 1)))
        fatal("alias: vaddr/paddr must be page aligned");
    const std::uint64_t pages = (bytes + kPageBytes - 1) / kPageBytes;
    for (std::uint64_t p = 0; p < pages; ++p)
        aliases_[key(asid, pageNum(vaddr) + p)] = pageNum(paddr) + p;
    // The cached translation may be superseded by the new mapping.
    mruKey_ = ~std::uint64_t{0};
    mruPpn_ = kAddrInvalid;
    ++version_;
}

Addr
AddressSpace::pteAddr(Asid asid, Addr vaddr, unsigned level) const
{
    if (level >= kWalkLevels)
        panic("pteAddr: level %u out of range", level);
    // 9 bits of VPN per level, root (level 0) uses the top bits.
    const Addr vpn = pageNum(vaddr);
    const unsigned shift = 9 * (kWalkLevels - 1 - level);
    const Addr index = (vpn >> shift) & 0x1ff;
    // Each (asid, level, upper-bits) group gets its own table page.
    const Addr table_id = mix64(key(asid, (vpn >> (shift + 9)) + 1)
                              ^ (static_cast<std::uint64_t>(level) << 56))
                          & ((1ull << 24) - 1);
    return (1ull << 45) | (table_id << kPageShift) | (index * 8);
}

Tlb::Tlb(const TlbParams &params, StatGroup *parent)
    : params_(params), entries_(params.entries),
      allFreeMask_(params.entries >= 64
                       ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << params.entries) - 1),
      freeMask_(params.entries > 64 ? 0 : allFreeMask_),
      stats_(tlbStatSchema(), params.name, parent),
      hits(&stats_, "hits", "translation hits"),
      misses(&stats_, "misses", "translation misses"),
      insertions(&stats_, "insertions", "entries installed"),
      evictions(&stats_, "evictions", "valid entries evicted"),
      flushes(&stats_, "flushes", "full flushes")
{
    if (params.entries == 0)
        fatal("tlb %s: zero entries", params.name.c_str());
}

const TlbEntry *
Tlb::lookupSlow(Asid asid, Addr vpn)
{
    for (auto &e : entries_) {
        if (e.valid && e.asid == asid && e.vpn == vpn) {
            e.lastUse = ++stamp_;
            ++hits;
            mru_ = &e;
            return &e;
        }
    }
    ++misses;
    return nullptr;
}

bool
Tlb::installAt(TlbEntry *victim, bool evicted, Asid asid, Addr vpn,
               Addr paddr)
{
    if (evicted)
        ++evictions;
    else if (trackFree())
        freeMask_ &= ~(std::uint64_t{1}
                       << static_cast<unsigned>(victim - entries_.data()));
    victim->valid = true;
    victim->asid = asid;
    victim->vpn = vpn;
    victim->ppn = pageNum(paddr);
    victim->lastUse = ++stamp_;
    ++insertions;
    return evicted;
}

bool
Tlb::insert(Asid asid, Addr vaddr, Addr paddr)
{
    const Addr vpn = pageNum(vaddr);
    // MRU shortcut: commit-time promotions overwhelmingly refresh the
    // translation the last lookup hit; same updates as the scan's
    // refresh arm below.
    if (mru_ && mru_->valid && mru_->asid == asid && mru_->vpn == vpn) {
        mru_->ppn = pageNum(paddr);
        mru_->lastUse = ++stamp_;
        return false;
    }
    // One pass: refresh if present, else remember the first invalid
    // slot and the LRU entry (same victim the two-pass version chose).
    TlbEntry *first_invalid = nullptr;
    TlbEntry *lru = &entries_[0];
    for (auto &e : entries_) {
        if (e.valid && e.asid == asid && e.vpn == vpn) {
            e.ppn = pageNum(paddr);
            e.lastUse = ++stamp_;
            return false;
        }
        if (!e.valid && !first_invalid)
            first_invalid = &e;
        if (e.lastUse < lru->lastUse)
            lru = &e;
    }
    if (first_invalid)
        return installAt(first_invalid, false, asid, vpn, paddr);
    return installAt(lru, true, asid, vpn, paddr);
}

bool
Tlb::insertAbsent(Asid asid, Addr vaddr, Addr paddr)
{
    const Addr vpn = pageNum(vaddr);
    if (trackFree()) {
        if (freeMask_) {
            // Lowest free index == the fused scan's first-invalid slot.
            TlbEntry *victim =
                &entries_[static_cast<unsigned>(
                    __builtin_ctzll(freeMask_))];
            return installAt(victim, false, asid, vpn, paddr);
        }
        // Full: same first-minimum LRU scan as insert().
        TlbEntry *lru = &entries_[0];
        for (auto &e : entries_)
            if (e.lastUse < lru->lastUse)
                lru = &e;
        return installAt(lru, true, asid, vpn, paddr);
    }
    // Oversized TLB (no free mask): fall back to the full protocol.
    return insert(asid, vaddr, paddr);
}

bool
Tlb::invalidate(Asid asid, Addr vaddr)
{
    const Addr vpn = pageNum(vaddr);
    for (auto &e : entries_) {
        if (e.valid && e.asid == asid && e.vpn == vpn) {
            e.valid = false;
            if (trackFree())
                freeMask_ |=
                    std::uint64_t{1}
                    << static_cast<unsigned>(&e - entries_.data());
            return true;
        }
    }
    return false;
}

void
Tlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
    freeMask_ = params_.entries > 64 ? 0 : allFreeMask_;
    ++flushes;
}

void
Tlb::saveState(Serializer &s) const
{
    s.u64(entries_.size());
    for (const TlbEntry &e : entries_) {
        s.u32(e.asid);
        s.u64(e.vpn);
        s.u64(e.ppn);
        s.u64(e.lastUse);
        s.b(e.valid);
    }
    s.u64(freeMask_);
    s.u64(stamp_);
}

void
Tlb::restoreState(Deserializer &d)
{
    if (d.u64() != entries_.size())
        throw SnapshotError("TLB entry count mismatch");
    for (TlbEntry &e : entries_) {
        e.asid = d.u32();
        e.vpn = d.u64();
        e.ppn = d.u64();
        e.lastUse = d.u64();
        e.valid = d.b();
    }
    freeMask_ = d.u64();
    stamp_ = d.u64();
    mru_ = nullptr;
}

unsigned
Tlb::validCount() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        if (e.valid)
            ++n;
    return n;
}

} // namespace mtrap

#include "tlb/tlb.hh"

#include "common/log.hh"

namespace mtrap
{

namespace
{

/** Deterministic page-number scrambler (splitmix-style). */
std::uint64_t
mix(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

AddressSpace::AddressSpace() = default;

std::uint64_t
AddressSpace::key(Asid asid, Addr vpn)
{
    return (static_cast<std::uint64_t>(asid) << 40) ^ vpn;
}

Addr
AddressSpace::translate(Asid asid, Addr vaddr) const
{
    const Addr vpn = pageNum(vaddr);
    auto it = aliases_.find(key(asid, vpn));
    Addr ppn;
    if (it != aliases_.end()) {
        ppn = it->second;
    } else {
        // Deterministic private page in a 38-bit physical space, away
        // from the page-table region (which has bit 45 set).
        ppn = mix(key(asid, vpn)) & ((1ull << 26) - 1);
        ppn |= static_cast<Addr>(asid & 0xff) << 26;
    }
    return (ppn << kPageShift) | (vaddr & (kPageBytes - 1));
}

void
AddressSpace::alias(Asid asid, Addr vaddr, Addr paddr, std::uint64_t bytes)
{
    if ((vaddr & (kPageBytes - 1)) || (paddr & (kPageBytes - 1)))
        fatal("alias: vaddr/paddr must be page aligned");
    const std::uint64_t pages = (bytes + kPageBytes - 1) / kPageBytes;
    for (std::uint64_t p = 0; p < pages; ++p)
        aliases_[key(asid, pageNum(vaddr) + p)] = pageNum(paddr) + p;
}

Addr
AddressSpace::pteAddr(Asid asid, Addr vaddr, unsigned level) const
{
    if (level >= kWalkLevels)
        panic("pteAddr: level %u out of range", level);
    // 9 bits of VPN per level, root (level 0) uses the top bits.
    const Addr vpn = pageNum(vaddr);
    const unsigned shift = 9 * (kWalkLevels - 1 - level);
    const Addr index = (vpn >> shift) & 0x1ff;
    // Each (asid, level, upper-bits) group gets its own table page.
    const Addr table_id = mix(key(asid, (vpn >> (shift + 9)) + 1)
                              ^ (static_cast<std::uint64_t>(level) << 56))
                          & ((1ull << 24) - 1);
    return (1ull << 45) | (table_id << kPageShift) | (index * 8);
}

Tlb::Tlb(const TlbParams &params, StatGroup *parent)
    : params_(params), entries_(params.entries),
      stats_(params.name, parent),
      hits(&stats_, "hits", "translation hits"),
      misses(&stats_, "misses", "translation misses"),
      insertions(&stats_, "insertions", "entries installed"),
      evictions(&stats_, "evictions", "valid entries evicted"),
      flushes(&stats_, "flushes", "full flushes")
{
    if (params.entries == 0)
        fatal("tlb %s: zero entries", params.name.c_str());
}

const TlbEntry *
Tlb::lookup(Asid asid, Addr vaddr)
{
    const Addr vpn = pageNum(vaddr);
    for (auto &e : entries_) {
        if (e.valid && e.asid == asid && e.vpn == vpn) {
            e.lastUse = ++stamp_;
            ++hits;
            return &e;
        }
    }
    ++misses;
    return nullptr;
}

bool
Tlb::insert(Asid asid, Addr vaddr, Addr paddr)
{
    const Addr vpn = pageNum(vaddr);
    // Refresh if present.
    for (auto &e : entries_) {
        if (e.valid && e.asid == asid && e.vpn == vpn) {
            e.ppn = pageNum(paddr);
            e.lastUse = ++stamp_;
            return false;
        }
    }
    // Prefer an invalid slot.
    TlbEntry *victim = nullptr;
    for (auto &e : entries_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
    }
    bool evicted = false;
    if (!victim) {
        victim = &entries_[0];
        for (auto &e : entries_)
            if (e.lastUse < victim->lastUse)
                victim = &e;
        evicted = true;
        ++evictions;
    }
    victim->valid = true;
    victim->asid = asid;
    victim->vpn = vpn;
    victim->ppn = pageNum(paddr);
    victim->lastUse = ++stamp_;
    ++insertions;
    return evicted;
}

bool
Tlb::invalidate(Asid asid, Addr vaddr)
{
    const Addr vpn = pageNum(vaddr);
    for (auto &e : entries_) {
        if (e.valid && e.asid == asid && e.vpn == vpn) {
            e.valid = false;
            return true;
        }
    }
    return false;
}

void
Tlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
    ++flushes;
}

unsigned
Tlb::validCount() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        if (e.valid)
            ++n;
    return n;
}

} // namespace mtrap

/**
 * @file
 * Address spaces, TLBs and the filter TLB (paper §4.7).
 *
 * AddressSpace gives every (asid, virtual page) a deterministic physical
 * page, with explicit aliasing so two processes (or a process and the
 * kernel) can share physical memory — required by the attack kernels.
 *
 * The main TLB is fully associative with LRU replacement. Under
 * MuonTrap, speculative translations are installed only in a small
 * *filter TLB*; they are promoted to the main TLB when the instruction
 * that used them commits, and the filter TLB is flash-cleared on
 * protection-domain switches just like the filter caches.
 */

#ifndef MTRAP_TLB_TLB_HH
#define MTRAP_TLB_TLB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mtrap
{

class Serializer;
class Deserializer;

/**
 * Global virtual-to-physical mapping authority (one per simulated
 * system). Default mappings are a deterministic per-ASID hash; explicit
 * aliases pin ranges to chosen physical pages for sharing.
 */
class AddressSpace
{
  public:
    AddressSpace();

    /** Translate a virtual address under `asid` to a physical address. */
    Addr translate(Asid asid, Addr vaddr) const;

    /** Pin `[vaddr, vaddr+bytes)` of `asid` to physical base `paddr`
     *  (page aligned). Used to create shared memory between domains. */
    void alias(Asid asid, Addr vaddr, Addr paddr, std::uint64_t bytes);

    /**
     * Physical address of the level-`level` page-table entry used when
     * walking `vaddr` of `asid` (levels 0..3, root first). These live in
     * a reserved physical region so PTW traffic is distinguishable and
     * cacheable.
     */
    Addr pteAddr(Asid asid, Addr vaddr, unsigned level) const;

    /** Number of levels in a page-table walk. */
    static constexpr unsigned kWalkLevels = 4;

    /**
     * Mapping-generation counter, bumped by alias(): cached derived
     * translations (MemSystem's functional word caches) compare it to
     * detect remaps without registering invalidation callbacks.
     */
    std::uint32_t version() const { return version_; }

  private:
    std::unordered_map<std::uint64_t, Addr> aliases_;
    std::uint32_t version_ = 1;

    /** Last translation, (asid,vpn) -> ppn: translate() is a pure
     *  function of its inputs (given the alias table), sits under every
     *  functional load, and accesses have strong page locality. alias()
     *  invalidates it. */
    mutable std::uint64_t mruKey_ = ~std::uint64_t{0};
    mutable Addr mruPpn_ = kAddrInvalid;

    static std::uint64_t key(Asid asid, Addr vpn);
};

/** One TLB translation entry. */
struct TlbEntry
{
    Asid asid = 0;
    Addr vpn = kAddrInvalid;
    Addr ppn = kAddrInvalid;
    std::uint64_t lastUse = 0;
    bool valid = false;
};

/** TLB configuration. */
struct TlbParams
{
    StatName name = "tlb";
    unsigned entries = 64;
};

/**
 * Fully-associative LRU TLB.
 */
class Tlb
{
  public:
    Tlb(const TlbParams &params, StatGroup *parent);

    /** Look up a translation; nullptr on miss. Updates LRU on hit.
     *  Inline: sits under every data and instruction access. */
    const TlbEntry *lookup(Asid asid, Addr vaddr)
    {
        const Addr vpn = pageNum(vaddr);
        if (mru_ && mru_->valid && mru_->asid == asid &&
            mru_->vpn == vpn) {
            mru_->lastUse = ++stamp_;
            ++hits;
            return mru_;
        }
        return lookupSlow(asid, vpn);
    }

    /** Install (or refresh) a translation; returns whether a valid
     *  entry was evicted (the TLB prime-and-probe observable). */
    bool insert(Asid asid, Addr vaddr, Addr paddr);

    /**
     * Install a translation the caller knows is absent (a lookup on
     * this TLB just missed, with no intervening insert): skips the
     * presence scan and takes the first free slot from a bitmask in
     * O(1). Victim choice is identical to insert() — lowest invalid
     * index, else the first-minimum LRU entry.
     */
    bool insertAbsent(Asid asid, Addr vaddr, Addr paddr);

    /** Drop a specific translation if present. */
    bool invalidate(Asid asid, Addr vaddr);

    /** Drop everything (context switch for the filter TLB). */
    void flush();

    unsigned validCount() const;
    unsigned capacity() const { return params_.entries; }

    /** Checkpoint entries, LRU stamp and free mask. The MRU hint is
     *  reset on restore: the fallback scan repeats the full compare and
     *  counts identically, so behaviour is unchanged. */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    /** Associative scan behind the MRU fast path (takes the vpn). */
    const TlbEntry *lookupSlow(Asid asid, Addr vpn);

    /** Fill `victim` (bumping eviction/insertion stats and the free
     *  mask) and report whether a valid entry died. */
    bool installAt(TlbEntry *victim, bool evicted, Asid asid, Addr vpn,
                   Addr paddr);

    /** Free-slot bitmask maintained only for <=64-entry TLBs. */
    bool trackFree() const { return params_.entries <= 64; }

    TlbParams params_;
    std::vector<TlbEntry> entries_;
    /** Bit i set = entries_[i] invalid (all-free value; see ctor). */
    std::uint64_t allFreeMask_ = 0;
    std::uint64_t freeMask_ = 0;
    std::uint64_t stamp_ = 0;
    /** Most-recently-hit entry: accesses have strong page locality, so
     *  checking it first skips the associative scan almost always. The
     *  full valid/asid/vpn compare is repeated on the hint, so a stale
     *  hint (after invalidate/flush/overwrite) just falls back. */
    TlbEntry *mru_ = nullptr;

    StatGroup stats_;

  public:
    Counter hits;
    Counter misses;
    Counter insertions;
    Counter evictions;
    Counter flushes;
};

} // namespace mtrap

#endif // MTRAP_TLB_TLB_HH

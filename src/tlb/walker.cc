#include "tlb/walker.hh"

#include "common/log.hh"

namespace mtrap
{

namespace
{

StatSchema &
walkerStatSchema()
{
    static StatSchema s("walker");
    return s;
}

} // namespace

PageTableWalker::PageTableWalker(const AddressSpace *vm, CoreId core,
                                 PtwAccessIface *access, StatGroup *parent)
    : vm_(vm), core_(core), access_(access),
      stats_(walkerStatSchema(), "ptw", parent),
      walks(&stats_, "walks", "page-table walks performed"),
      retranslations(&stats_, "retranslations",
                     "commit-time retranslations"),
      pteReads(&stats_, "pte_reads", "PTE reads issued")
{
    if (!vm_ || !access_)
        fatal("walker: null address space or access function");
}

Cycle
PageTableWalker::doWalk(Asid asid, Addr vaddr, Cycle when, bool speculative)
{
    Cycle total = 0;
    for (unsigned level = 0; level < AddressSpace::kWalkLevels; ++level) {
        Access acc;
        acc.kind = AccessKind::Ptw;
        acc.paddr = vm_->pteAddr(asid, vaddr, level);
        // PTW traffic is physically addressed; give the filter cache the
        // same address on its virtual side.
        acc.vaddr = acc.paddr;
        acc.core = core_;
        acc.asid = asid;
        acc.speculative = speculative;
        acc.when = when + total;
        AccessResult r = access_->ptwAccess(acc);
        // PTW reads never demote remote exclusives in practice (page
        // tables are read-shared); a NACK would mean retry, modelled as
        // the non-speculative latency.
        total += r.latency;
        ++pteReads;
    }
    return total;
}

Cycle
PageTableWalker::walk(Asid asid, Addr vaddr, Cycle when, bool speculative)
{
    ++walks;
    return doWalk(asid, vaddr, when, speculative);
}

Cycle
PageTableWalker::retranslate(Asid asid, Addr vaddr, Cycle when)
{
    ++retranslations;
    return doWalk(asid, vaddr, when, false);
}

} // namespace mtrap

#include "defense/invisispec.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/snapshot.hh"
#include "trace/trace.hh"

namespace mtrap
{

namespace
{

StatSchema &
specBufferStatSchema()
{
    static StatSchema s("specbuf");
    return s;
}

} // namespace

SpecBuffer::SpecBuffer(const SpecBufferParams &params, CoreId core,
                       StatGroup *parent)
    : params_(params), core_(core),
      stats_(specBufferStatSchema(), StatName::indexed("specbuf", core),
             parent),
      allocations(&stats_, "allocations", "speculative loads buffered"),
      fullStalls(&stats_, "full_stalls", "loads delayed by a full buffer"),
      wordHits(&stats_, "word_hits", "reuse of an exact buffered word"),
      lineMissesWordGranularity(&stats_, "line_misses",
                                "same-line different-word accesses that "
                                "could not reuse a buffer entry")
{
    if (params.entries == 0)
        fatal("spec buffer: zero entries");
}

Cycle
SpecBuffer::allocate(Addr vaddr, Cycle when)
{
    (void)when;
    ++allocations;

    const Addr word = vaddr & ~static_cast<Addr>(7);
    const bool word_hit = holdsWord(word);
    const bool line_present =
        std::any_of(slots_.begin(), slots_.end(), [word](Addr a) {
            return lineNum(a) == lineNum(word);
        });
    if (word_hit)
        ++wordHits;
    else if (line_present)
        ++lineMissesWordGranularity;

    Cycle delay = 0;
    if (slots_.size() >= params_.entries) {
        ++fullStalls;
        slots_.pop_front();
        delay = 4; // drain penalty for the displaced exposure
    }
    slots_.push_back(word);
    return delay;
}

void
SpecBuffer::release(Addr vaddr)
{
    const Addr word = vaddr & ~static_cast<Addr>(7);
    auto it = std::find(slots_.begin(), slots_.end(), word);
    if (it != slots_.end())
        slots_.erase(it);
}

void
SpecBuffer::clear(Cycle when)
{
    if (tracer_ && !slots_.empty())
        tracer_->record(core_, TraceEventKind::SpecClear, when,
                        slots_.size());
    slots_.clear();
}

bool
SpecBuffer::holdsWord(Addr vaddr) const
{
    const Addr word = vaddr & ~static_cast<Addr>(7);
    return std::find(slots_.begin(), slots_.end(), word) != slots_.end();
}

void
SpecBuffer::saveState(Serializer &s) const
{
    s.deq(slots_);
}

void
SpecBuffer::restoreState(Deserializer &d)
{
    d.deq(slots_);
    if (slots_.size() > params_.entries)
        throw SnapshotError("spec buffer occupancy exceeds capacity");
}

} // namespace mtrap

#include "defense/scheme.hh"

#include <algorithm>
#include <cctype>

#include "common/log.hh"

namespace mtrap
{

const std::vector<Scheme> &
allSchemes()
{
    static const std::vector<Scheme> v = {
        Scheme::Baseline,
        Scheme::InsecureL0,
        Scheme::MuonTrap,
        Scheme::MuonTrapClearMisspec,
        Scheme::MuonTrapParallel,
        Scheme::InvisiSpecSpectre,
        Scheme::InvisiSpecFuture,
        Scheme::SttSpectre,
        Scheme::SttFuture,
        Scheme::DelayOnMiss,
    };
    return v;
}

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Baseline: return "Baseline";
      case Scheme::InsecureL0: return "Insecure-L0";
      case Scheme::MuonTrap: return "MuonTrap";
      case Scheme::MuonTrapClearMisspec: return "MuonTrap-ClearMisspec";
      case Scheme::MuonTrapParallel: return "MuonTrap-ParallelL1";
      case Scheme::InvisiSpecSpectre: return "InvisiSpec-Spectre";
      case Scheme::InvisiSpecFuture: return "InvisiSpec-Future";
      case Scheme::SttSpectre: return "STT-Spectre";
      case Scheme::SttFuture: return "STT-Future";
      case Scheme::DelayOnMiss: return "DelayOnMiss";
    }
    return "?";
}

CoreDefense
schemeCoreDefense(Scheme s)
{
    switch (s) {
      case Scheme::InvisiSpecSpectre: return CoreDefense::InvisiSpecSpectre;
      case Scheme::InvisiSpecFuture: return CoreDefense::InvisiSpecFuture;
      case Scheme::SttSpectre: return CoreDefense::SttSpectre;
      case Scheme::SttFuture: return CoreDefense::SttFuture;
      case Scheme::DelayOnMiss: return CoreDefense::DelayOnMiss;
      default: return CoreDefense::None;
    }
}

MuonTrapConfig
schemeMtConfig(Scheme s)
{
    switch (s) {
      case Scheme::InsecureL0:
        return MuonTrapConfig::insecureL0();
      case Scheme::MuonTrap:
        return MuonTrapConfig::full();
      case Scheme::MuonTrapClearMisspec: {
        MuonTrapConfig c = MuonTrapConfig::full();
        c.clearOnMisspec = true;
        return c;
      }
      case Scheme::MuonTrapParallel: {
        MuonTrapConfig c = MuonTrapConfig::full();
        c.parallelL0L1 = true;
        return c;
      }
      default:
        return MuonTrapConfig::off();
    }
}

Scheme
parseScheme(const std::string &name)
{
    std::string n;
    for (char ch : name) {
        if (ch == '_')
            ch = '-';
        n += static_cast<char>(std::tolower(
            static_cast<unsigned char>(ch)));
    }
    for (Scheme s : allSchemes()) {
        std::string cand = schemeName(s);
        std::transform(cand.begin(), cand.end(), cand.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        if (cand == n)
            return s;
    }
    fatal("unknown scheme '%s'", name.c_str());
}

} // namespace mtrap

/**
 * @file
 * Reference implementation of Speculative Taint Tracking's register
 * taint semantics (Yu et al., MICRO 2019), the paper's other main
 * comparator (§6.3).
 *
 * STT taints the result of every speculative "access" instruction
 * (load) and blocks *transmitters* (instructions whose operands could
 * reveal the tainted value through a side channel — here, loads and
 * stores whose address depends on a tainted register) until the taint
 * source becomes safe. In the timing model a taint is simply the cycle
 * at which it clears: Spectre variant = when all older branches have
 * resolved; Future variant = when the producing load can no longer be
 * squashed.
 *
 * The core keeps its own per-register taint timestamps for speed; this
 * class is the documented, standalone semantics used by the property
 * tests (tests/defense) to validate propagation rules, and by anyone
 * reusing the library without the full core model.
 */

#ifndef MTRAP_DEFENSE_STT_HH
#define MTRAP_DEFENSE_STT_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/microop.hh"

namespace mtrap
{

/** STT propagation variant. */
enum class SttVariant : std::uint8_t { Spectre, Future };

/**
 * Per-register taint timestamps with STT propagation rules.
 */
class TaintTracker
{
  public:
    explicit TaintTracker(SttVariant variant) : variant_(variant) {}

    SttVariant variant() const { return variant_; }

    /** Cycle at which register `r` becomes untainted (0 = never was). */
    Cycle
    taintClears(unsigned r) const
    {
        return r == kNoReg ? 0 : taint_.at(r);
    }

    /** True if `r` is still tainted at `now`. */
    bool
    isTainted(unsigned r, Cycle now) const
    {
        return taintClears(r) > now;
    }

    /**
     * A load produced a value into `dst`.
     * @param visible_at cycle the load stops being speculative under
     *        this variant (caller computes it from pipeline state)
     */
    void
    loadProduced(unsigned dst, Cycle visible_at)
    {
        if (dst != kNoReg)
            taint_.at(dst) = visible_at;
    }

    /** An ALU-class op wrote `dst` from `src1`/`src2`: taint is the max
     *  of the sources' (taint union). */
    void
    aluProduced(unsigned dst, unsigned src1, unsigned src2)
    {
        if (dst == kNoReg)
            return;
        taint_.at(dst) = std::max(taintClears(src1), taintClears(src2));
    }

    /**
     * Earliest cycle a transmitter whose *address* uses `base`/`index`
     * may execute: the max of its operands' taint-clear cycles.
     */
    Cycle
    transmitterReady(unsigned base, unsigned index) const
    {
        return std::max(taintClears(base), taintClears(index));
    }

    /** Squash restore: copy back a checkpoint. */
    using Snapshot = std::array<Cycle, kNumRegs>;
    Snapshot snapshot() const { return taint_; }
    void restore(const Snapshot &s) { taint_ = s; }

    /** Context switch: everything architectural, nothing tainted. */
    void
    clearAll()
    {
        taint_.fill(0);
    }

  private:
    SttVariant variant_;
    Snapshot taint_{};
};

} // namespace mtrap

#endif // MTRAP_DEFENSE_STT_HH

/**
 * @file
 * Behavioural model of InvisiSpec's speculative buffer (Yan et al.,
 * MICRO 2018), the paper's primary comparator (§6.2).
 *
 * InvisiSpec gives every load-queue entry a word-sized shadow slot;
 * speculative loads fill the slot without touching the caches, and the
 * access is replayed ("exposed") into the hierarchy once the load
 * becomes safe (Spectre variant: no unresolved older branches; Future
 * variant: the load can no longer be squashed, i.e. at commit).
 *
 * The timing consequences live in the core (cpu/core.cc) and the probe
 * path (sim/mem_system.cc); this class models the buffer structure
 * itself — word-granular occupancy, so spatial locality gives no reuse,
 * unlike MuonTrap's line-granular filter cache (a contrast §6.2 calls
 * out) — and collects the statistics the comparison discusses.
 */

#ifndef MTRAP_DEFENSE_INVISISPEC_HH
#define MTRAP_DEFENSE_INVISISPEC_HH

#include <deque>

#include "common/stats.hh"
#include "common/types.hh"

namespace mtrap
{

class Tracer;
class Serializer;
class Deserializer;

/** Speculative-buffer configuration. */
struct SpecBufferParams
{
    /** One slot per load-queue entry (Table 1: 32-entry LQ). */
    unsigned entries = 32;
};

/**
 * Word-granular speculative load buffer.
 */
class SpecBuffer
{
  public:
    SpecBuffer(const SpecBufferParams &params, CoreId core,
               StatGroup *parent);

    /**
     * A speculative load allocates a slot for its word. Returns the
     * extra delay (0 normally; a full buffer stalls the load until the
     * oldest entry exposes — modelled as a fixed drain penalty).
     */
    Cycle allocate(Addr vaddr, Cycle when);

    /** The load exposed or was squashed; release its slot. */
    void release(Addr vaddr);

    /** Drop everything (squash of the whole window, or a context
     *  switch's hygiene). `when` stamps the trace event when a tracer
     *  is attached; clearing an empty buffer is not traced. */
    void clear(Cycle when = 0);

    /** Route performed clears into `tracer` (null disables). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    std::size_t occupancy() const { return slots_.size(); }
    unsigned capacity() const { return params_.entries; }

    /**
     * Word-granularity check: unlike a filter-cache hit, a second load
     * to a *different word of the same line* cannot reuse an existing
     * entry. True only for an exact word match.
     */
    bool holdsWord(Addr vaddr) const;

    /** Checkpoint the occupied slots. */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    SpecBufferParams params_;
    CoreId core_ = 0;
    Tracer *tracer_ = nullptr;
    std::deque<Addr> slots_;

    StatGroup stats_;

  public:
    Counter allocations;
    Counter fullStalls;
    Counter wordHits;
    Counter lineMissesWordGranularity;
};

} // namespace mtrap

#endif // MTRAP_DEFENSE_INVISISPEC_HH

/**
 * @file
 * The defence schemes evaluated in the paper, as buildable
 * configurations. One Scheme value selects both the core-side defence
 * (CoreDefense) and the memory-side configuration (MuonTrapConfig), so
 * experiment code can sweep schemes uniformly (figures 3 and 4).
 */

#ifndef MTRAP_DEFENSE_SCHEME_HH
#define MTRAP_DEFENSE_SCHEME_HH

#include <string>
#include <vector>

#include "cpu/core.hh"
#include "muontrap/controller.hh"

namespace mtrap
{

/** Every end-to-end configuration the evaluation compares. */
enum class Scheme : std::uint8_t
{
    Baseline,            ///< unprotected, no L0
    InsecureL0,          ///< L0 caches present, no protections
    MuonTrap,            ///< full MuonTrap (figures 3/4 headline)
    MuonTrapClearMisspec,///< + clear filters on every squash (§4.9)
    MuonTrapParallel,    ///< full MuonTrap with parallel L0/L1 (§6.5)
    InvisiSpecSpectre,
    InvisiSpecFuture,
    SttSpectre,
    SttFuture,
    DelayOnMiss,         ///< speculative L1-miss loads stall (baseline)
};

/** All schemes, in presentation order. */
const std::vector<Scheme> &allSchemes();

/** Short display name ("MuonTrap", "InvisiSpec-Spectre", ...). */
const char *schemeName(Scheme s);

/** Core-side defence for a scheme. */
CoreDefense schemeCoreDefense(Scheme s);

/** Memory-side MuonTrap configuration for a scheme. */
MuonTrapConfig schemeMtConfig(Scheme s);

/** Parse a scheme name (case-insensitive, '-'/'_' equivalent); fatal on
 *  unknown names. */
Scheme parseScheme(const std::string &name);

} // namespace mtrap

#endif // MTRAP_DEFENSE_SCHEME_HH

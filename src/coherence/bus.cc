#include "coherence/bus.hh"

#include "common/log.hh"
#include "trace/trace.hh"

namespace mtrap
{

namespace
{

StatSchema &
busStatSchema()
{
    static StatSchema s("bus");
    return s;
}

double
busWriteFilterInvalidateRate(const void *ctx)
{
    const CoherenceBus *b = static_cast<const CoherenceBus *>(ctx);
    const double t = static_cast<double>(b->storeUpgrades.value());
    const double br =
        static_cast<double>(b->storeUpgradeBroadcasts.value());
    return t > 0 ? br / t : 0.0;
}

} // namespace

CoherenceBus::CoherenceBus(const BusParams &params, Cache *l2,
                           MainMemory *mem, StatGroup *parent)
    : params_(params), l2_(l2), mem_(mem),
      stats_(busStatSchema(), "bus", parent),
      transactions(&stats_, "transactions", "bus transactions issued"),
      nacks(&stats_, "nacks",
            "speculative requests refused (reduced coherency speculation)"),
      remoteSupplies(&stats_, "remote_supplies",
                     "lines supplied by a remote private cache"),
      memoryFetches(&stats_, "memory_fetches", "lines fetched from DRAM"),
      writebacksToL2(&stats_, "writebacks_to_l2",
                     "remote M lines written back to L2"),
      storeUpgrades(&stats_, "store_upgrades",
                    "commit-time store exclusive upgrades"),
      storeUpgradeBroadcasts(&stats_, "store_upgrade_broadcasts",
                             "store upgrades requiring a filter-cache "
                             "invalidate broadcast"),
      seUpgrades(&stats_, "se_upgrades",
                 "asynchronous SE->E upgrades launched at commit"),
      filterInvalidations(&stats_, "filter_invalidations",
                          "filter-cache lines invalidated by upgrades"),
      writeFilterInvalidateRate(
          &stats_, "write_fcache_invalidate_rate",
          "proportion of committed stores triggering a filter-cache "
          "invalidate broadcast (paper figure 7)",
          &busWriteFilterInvalidateRate, this)
{
    if (!l2_ || !mem_)
        fatal("bus: l2 and memory must be non-null");
}

void
CoherenceBus::addNode(const BusNode &node)
{
    if (!node.l1d || !node.l1i)
        fatal("bus node must have L1 caches");
    nodes_.push_back(node);
}

bool
CoherenceBus::remoteHoldsExclusive(CoreId core, Addr paddr) const
{
    for (CoreId c = 0; c < nodes_.size(); ++c) {
        if (c == core)
            continue;
        const CacheLine *l = nodes_[c].l1d->peek(paddr);
        if (l && (l->state == CoherState::Modified ||
                  l->state == CoherState::Exclusive))
            return true;
    }
    return false;
}

bool
CoherenceBus::anyOtherNonSpecHolder(CoreId core, Addr paddr) const
{
    for (CoreId c = 0; c < nodes_.size(); ++c) {
        if (c == core)
            continue;
        const BusNode &n = nodes_[c];
        if (n.l1d->peek(paddr) || n.l1i->peek(paddr))
            return true;
    }
    return false;
}

bool
CoherenceBus::anyOtherPrivateHolder(CoreId core, Addr paddr) const
{
    for (CoreId c = 0; c < nodes_.size(); ++c) {
        if (c == core)
            continue;
        const BusNode &n = nodes_[c];
        if (n.l1d->peek(paddr) || n.l1i->peek(paddr))
            return true;
        if (n.filterD && n.filterD->peek(paddr))
            return true;
        if (n.filterI && n.filterI->peek(paddr))
            return true;
    }
    return false;
}

bool
CoherenceBus::demoteRemotesToShared(CoreId core, Addr paddr)
{
    bool supplied = false;
    for (CoreId c = 0; c < nodes_.size(); ++c) {
        if (c == core)
            continue;
        CacheLine *l = nodes_[c].l1d->peek(paddr);
        if (!l)
            continue;
        if (l->state == CoherState::Modified) {
            // Remote owner supplies the data and writes it back to L2.
            l->state = CoherState::Shared;
            l->dirty = false;
            CacheLine &wb = l2_->fill(paddr, CoherState::Modified);
            wb.dirty = true;
            ++writebacksToL2;
            supplied = true;
        } else if (l->state == CoherState::Exclusive) {
            l->state = CoherState::Shared;
            supplied = true;
        }
    }
    return supplied;
}

void
CoherenceBus::invalidateRemotes(CoreId core, Addr paddr,
                                bool &remote_had_copy)
{
    remote_had_copy = false;
    for (CoreId c = 0; c < nodes_.size(); ++c) {
        if (c == core)
            continue;
        BusNode &n = nodes_[c];
        CacheLine *l = n.l1d->peek(paddr);
        if (l) {
            remote_had_copy = true;
            if (l->state == CoherState::Modified) {
                CacheLine &wb = l2_->fill(paddr, CoherState::Modified);
                wb.dirty = true;
                ++writebacksToL2;
            }
            n.l1d->invalidate(paddr);
        }
        // Instruction caches hold read-only S copies.
        if (n.l1i->peek(paddr)) {
            remote_had_copy = true;
            n.l1i->invalidate(paddr);
        }
    }
}

unsigned
CoherenceBus::invalidateRemoteFilters(CoreId core, Addr paddr)
{
    unsigned count = 0;
    for (CoreId c = 0; c < nodes_.size(); ++c) {
        if (c == core)
            continue;
        BusNode &n = nodes_[c];
        if (n.filterD && n.filterD->invalidate(paddr))
            ++count;
        if (n.filterI && n.filterI->invalidate(paddr))
            ++count;
    }
    filterInvalidations += count;
    return count;
}

SnoopOutcome
CoherenceBus::readRequest(CoreId core, Addr paddr, bool speculative,
                          bool muontrap_rules, bool fill_l2, Cycle when)
{
    ++transactions;
    SnoopOutcome out;
    out.latency = params_.transactionLatency;

    const bool remote_excl = remoteHoldsExclusive(core, paddr);

    if (muontrap_rules && speculative && remote_excl) {
        // Reduced coherency speculation (§4.5, defends attack 3): a
        // speculative read may not demote a remote private M/E line.
        ++nacks;
        if (tracer_)
            tracer_->record(core, TraceEventKind::BusNack, when, paddr);
        out.nacked = true;
        return out;
    }

    if (remote_excl) {
        // Non-speculative (or unprotected) read: demote the remote owner
        // and take the data from it.
        demoteRemotesToShared(core, paddr);
        ++remoteSupplies;
        out.remoteSupplied = true;
        out.latency += params_.remoteSupplyLatency;
        out.serviceLevel = 2;
        if (fill_l2 && !l2_->peek(paddr))
            l2_->fill(paddr, CoherState::Shared);
        return out;
    }

    // No remote exclusive owner; check the shared L2.
    CacheLine *l2line = l2_->lookup(paddr);
    if (l2line) {
        out.l2Hit = true;
        out.latency += l2_->params().hitLatency;
        out.serviceLevel = 2;
    } else {
        // Fetch from memory.
        Access macc;
        macc.paddr = paddr;
        macc.core = core;
        out.latency += l2_->params().hitLatency; // L2 lookup (miss)
        out.latency += mem_->access(macc);
        ++memoryFetches;
        if (tracer_)
            tracer_->record(core, TraceEventKind::L2Miss, when, paddr);
        out.serviceLevel = 3;
        if (fill_l2) {
            Eviction ev;
            CacheLine &nl = l2_->fill(paddr, CoherState::Shared, &ev);
            nl.dirty = false;
            // A dirty L2 victim is written back to memory (functional
            // data already lives there; this is latency-free for the
            // requester, handled by the write buffer).
        }
    }

    // The E-grant decision consults only non-speculative caches: a
    // filter-cache copy elsewhere must not change this outcome or its
    // timing (§4.5). Any such copies are invalidated later by the SE
    // upgrade broadcast if the line commits.
    out.wouldBeExclusive = !anyOtherNonSpecHolder(core, paddr);
    return out;
}

SnoopOutcome
CoherenceBus::writeRequest(CoreId core, Addr paddr, bool speculative,
                           bool muontrap_rules, bool fill_l2, Cycle when)
{
    ++transactions;
    SnoopOutcome out;
    out.latency = params_.transactionLatency;

    if (muontrap_rules && speculative) {
        // Filter caches may never take E/M while speculative; the store
        // may still prefetch the line in S via readRequest.
        ++nacks;
        if (tracer_)
            tracer_->record(core, TraceEventKind::BusNack, when, paddr);
        out.nacked = true;
        return out;
    }

    bool remote_had_copy = false;
    invalidateRemotes(core, paddr, remote_had_copy);
    if (remote_had_copy) {
        ++remoteSupplies;
        out.remoteSupplied = true;
        out.latency += params_.remoteSupplyLatency;
        out.serviceLevel = 2;
    } else if (CacheLine *l2line = l2_->lookup(paddr)) {
        (void)l2line;
        out.l2Hit = true;
        out.latency += l2_->params().hitLatency;
        out.serviceLevel = 2;
    } else {
        Access macc;
        macc.paddr = paddr;
        macc.core = core;
        out.latency += l2_->params().hitLatency;
        out.latency += mem_->access(macc);
        ++memoryFetches;
        if (tracer_)
            tracer_->record(core, TraceEventKind::L2Miss, when, paddr);
        out.serviceLevel = 3;
        if (fill_l2)
            l2_->fill(paddr, CoherState::Shared);
    }

    // Exclusive requests always invalidate filter copies elsewhere: the
    // requester is about to own the line.
    invalidateRemoteFilters(core, paddr);

    out.wouldBeExclusive = true;
    return out;
}

bool
CoherenceBus::commitUpgrade(CoreId core, Addr paddr, bool is_store,
                            bool to_modified)
{
    if (core >= nodes_.size())
        panic("commitUpgrade: bad core %u", core);
    BusNode &n = nodes_[core];

    if (is_store)
        ++storeUpgrades;
    else
        ++seUpgrades;

    CacheLine *own = n.l1d->peek(paddr);
    const bool already_exclusive =
        own && (own->state == CoherState::Exclusive ||
                own->state == CoherState::Modified);

    if (already_exclusive) {
        // Typical case (§4.5): we already own the line; no broadcast.
        if (to_modified) {
            own->state = CoherState::Modified;
            own->dirty = true;
        }
        return false;
    }

    // Broadcast: invalidate every other private copy, including remote
    // filter caches, to keep their timing invisible.
    ++transactions;
    bool remote_had_copy = false;
    invalidateRemotes(core, paddr, remote_had_copy);
    invalidateRemoteFilters(core, paddr);
    if (is_store)
        ++storeUpgradeBroadcasts;

    if (own) {
        own->state = to_modified ? CoherState::Modified
                                 : CoherState::Exclusive;
        own->dirty = to_modified;
    } else {
        CacheLine &l = n.l1d->fill(paddr, to_modified
                                              ? CoherState::Modified
                                              : CoherState::Exclusive);
        l.dirty = to_modified;
    }
    return true;
}

bool
CoherenceBus::prefetchFill(Addr paddr)
{
    if (l2_->peek(paddr))
        return false;
    // Never demote a remote owner on behalf of a prefetch.
    for (CoreId c = 0; c < nodes_.size(); ++c) {
        const CacheLine *l = nodes_[c].l1d->peek(paddr);
        if (l && (l->state == CoherState::Modified ||
                  l->state == CoherState::Exclusive))
            return false;
    }
    Access macc;
    macc.paddr = paddr;
    macc.kind = AccessKind::Prefetch;
    mem_->access(macc);
    CacheLine &l = l2_->fill(paddr, CoherState::Shared);
    l.prefetched = true;
    return true;
}

} // namespace mtrap

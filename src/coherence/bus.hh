/**
 * @file
 * Snooping MESI coherence bus connecting per-core private cache
 * clusters, the shared L2, and main memory.
 *
 * The bus implements both conventional MESI and the MuonTrap
 * restrictions from paper §4.5:
 *
 *  - *Reduced coherency speculation*: a speculative request that would
 *    demote a remote private non-speculative line out of M/E is NACKed;
 *    the core retries once the instruction is non-speculative.
 *  - *Filter-cache state reduction*: filter fills are granted S only.
 *    When an unprotected system would have granted E, the outcome is
 *    flagged `wouldBeExclusive` so the filter can record the SE
 *    pseudo-state and launch an asynchronous upgrade at commit.
 *  - *Commit upgrades*: exclusive upgrades at commit broadcast
 *    invalidations to remote filter caches whenever the requesting core
 *    does not already hold the line exclusively (the figure-7 metric).
 *
 * Filter caches are registered per node and are snooped physically like
 * any other cache (paper §4.4), but they can only ever contain S lines.
 */

#ifndef MTRAP_COHERENCE_BUS_HH
#define MTRAP_COHERENCE_BUS_HH

#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/access.hh"
#include "mem/memory.hh"

namespace mtrap
{

class Tracer;

/** Timing of bus transactions. */
struct BusParams
{
    /** Arbitration + transfer cost of any bus transaction. */
    Cycle transactionLatency = 10;
    /** Extra cost when a remote private cache supplies the data. */
    Cycle remoteSupplyLatency = 15;
};

/** One core's private caches as seen by the bus. */
struct BusNode
{
    Cache *l1d = nullptr;
    Cache *l1i = nullptr;
    /** Filter caches; nullptr when the scheme doesn't use them. */
    Cache *filterD = nullptr;
    Cache *filterI = nullptr;
};

/** Outcome of a bus read/write request. */
struct SnoopOutcome
{
    /** Request refused under MuonTrap reduced coherency speculation. */
    bool nacked = false;
    /** Data was supplied by a remote private cache. */
    bool remoteSupplied = false;
    /** Data was found in the shared L2. */
    bool l2Hit = false;
    /** No other private non-speculative cache held the line, so an
     *  unprotected MESI system would have granted E. */
    bool wouldBeExclusive = false;
    /** Latency of the bus portion of the access (excludes the local
     *  lookup the caller already performed). */
    Cycle latency = 0;
    /** 2 = serviced by L2 or a remote cache, 3 = main memory. */
    unsigned serviceLevel = 2;
};

/**
 * The snooping bus. One instance per simulated system.
 */
class CoherenceBus
{
  public:
    CoherenceBus(const BusParams &params, Cache *l2, MainMemory *mem,
                 StatGroup *parent);

    /** Register core `id`'s private caches. Must be called in id order. */
    void addNode(const BusNode &node);

    unsigned numNodes() const { return static_cast<unsigned>(nodes_.size()); }

    /**
     * Read request (GetShared) from `core` for the line of `paddr`.
     *
     * @param speculative   the issuing instruction may still squash
     * @param muontrap_rules enforce NACK / S-only-grant restrictions
     * @param fill_l2       install the line in L2 on the way (baseline
     *                      behaviour; MuonTrap speculative fills skip it)
     */
    SnoopOutcome readRequest(CoreId core, Addr paddr, bool speculative,
                             bool muontrap_rules, bool fill_l2,
                             Cycle when = 0);

    /**
     * Exclusive request (GetExclusive) from `core` — a baseline store, a
     * non-speculative retried store, or a commit-time upgrade.
     * Invalidates every other copy (writing back remote M data to L2).
     * Under muontrap_rules a *speculative* exclusive request is always
     * NACKed (filter caches may not take E/M).
     */
    SnoopOutcome writeRequest(CoreId core, Addr paddr, bool speculative,
                              bool muontrap_rules, bool fill_l2,
                              Cycle when = 0);

    /**
     * MuonTrap commit-time asynchronous upgrade (store commit or SE
     * upgrade). Never blocks the pipeline; returns the bus latency for
     * accounting only. Counts the figure-7 broadcast metric when
     * `is_store`.
     *
     * @return true if a broadcast (remote filter invalidation) was
     *         required, i.e. the core did not already hold the line
     *         exclusively in its private non-speculative cache.
     */
    bool commitUpgrade(CoreId core, Addr paddr, bool is_store,
                       bool to_modified);

    /**
     * Prefetcher-initiated fill into the shared L2. Refuses to disturb
     * remote M/E lines (the prefetcher must never demote anyone).
     * @return true if the line was installed.
     */
    bool prefetchFill(Addr paddr);

    /** Functional check used by tests: is `paddr` in any remote private
     *  non-speculative cache of a core other than `core`, in state M or
     *  E? */
    bool remoteHoldsExclusive(CoreId core, Addr paddr) const;

    /** True if any private cache (L1 or filter) of a core other than
     *  `core` holds `paddr` in any valid state. */
    bool anyOtherPrivateHolder(CoreId core, Addr paddr) const;

    /**
     * True if any *non-speculative* private cache (L1D/L1I only) of
     * another core holds `paddr`. This is the E-grant check: filter
     * caches must be invisible to it, or their contents would leak
     * through the grant decision and its timing (§4.5, attack 4).
     */
    bool anyOtherNonSpecHolder(CoreId core, Addr paddr) const;

    /** Route NACK and DRAM-fetch events into `tracer` (null disables).
     *  Events are stamped with the requester's `when` argument. */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

  private:
    Tracer *tracer_ = nullptr;

    /** Demote remote M/E copies of `paddr` to S (writing M data back to
     *  L2); returns true if any remote supplied data. */
    bool demoteRemotesToShared(CoreId core, Addr paddr);

    /** Invalidate all remote copies; true if a remote M line was written
     *  back. */
    void invalidateRemotes(CoreId core, Addr paddr, bool &remote_had_copy);

    /** Invalidate copies of `paddr` in every filter cache except
     *  `core`'s; returns number invalidated. */
    unsigned invalidateRemoteFilters(CoreId core, Addr paddr);

    BusParams params_;
    Cache *l2_;
    MainMemory *mem_;
    std::vector<BusNode> nodes_;

    StatGroup stats_;

  public:
    Counter transactions;
    Counter nacks;
    Counter remoteSupplies;
    Counter memoryFetches;
    Counter writebacksToL2;
    Counter storeUpgrades;
    Counter storeUpgradeBroadcasts;
    Counter seUpgrades;
    Counter filterInvalidations;
    Formula writeFilterInvalidateRate;
};

} // namespace mtrap

#endif // MTRAP_COHERENCE_BUS_HH

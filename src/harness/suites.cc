#include "harness/suites.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>

#include "common/log.hh"
#include "common/rng.hh"
#include "harness/manifest.hh"
#include "harness/sweep.hh"
#include "sim/arrival.hh"
#include "sim/mem_system.hh"
#include "workload/attacks.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap::harness
{

namespace
{

/** The five protected schemes compared in figures 3 and 4. */
const std::vector<Scheme> kFigureSchemes = {
    Scheme::MuonTrap,         Scheme::InvisiSpecSpectre,
    Scheme::InvisiSpecFuture, Scheme::SttSpectre,
    Scheme::SttFuture,
};

const JobResult *
find(const std::vector<JobResult> &rs, const std::string &row,
     const std::string &col, const std::string &kind)
{
    for (const JobResult &r : rs)
        if (r.row == row && r.col == col && r.kind == kind)
            return &r;
    return nullptr;
}

double
normalized(const std::vector<JobResult> &rs, const std::string &row,
           const std::string &col)
{
    const JobResult *base =
        find(rs, row, schemeName(Scheme::Baseline), "baseline");
    const JobResult *r = find(rs, row, col, "run");
    if (!base || !r || !base->ok || !r->ok || base->run.cycles == 0)
        fatal("suite: missing or failed result for %s/%s (render needs "
              "the full, unsharded result set)",
              row.c_str(), col.c_str());
    return static_cast<double>(r->run.cycles)
           / static_cast<double>(base->run.cycles);
}

/** Shared renderer for the normalised-execution-time figures. */
std::function<ReportTable(const std::vector<JobResult> &)>
normalizedRenderer(std::string title, std::vector<std::string> rows,
                   std::vector<std::string> cols)
{
    return [title = std::move(title), rows = std::move(rows),
            cols = std::move(cols)](const std::vector<JobResult> &rs) {
        ReportTable t(title);
        std::vector<std::string> hdr = {"benchmark"};
        hdr.insert(hdr.end(), cols.begin(), cols.end());
        t.header(hdr);
        for (const std::string &row : rows) {
            std::vector<double> values;
            values.reserve(cols.size());
            for (const std::string &col : cols)
                values.push_back(normalized(rs, row, col));
            t.rowNumeric(row, values);
        }
        t.geomeanRow();
        return t;
    };
}

Suite
normalizedSuite(const std::string &name, std::string title,
                const std::vector<std::string> &workload_names,
                const RunOptions &opt, std::uint64_t seed,
                const std::function<void(SweepBuilder &)> &columns)
{
    SweepBuilder b(name);
    b.options(opt).seed(seed).workloads(workload_names).withBaseline();
    columns(b);

    Suite s;
    s.name = name;
    s.jobs = b.build();
    s.render = normalizedRenderer(std::move(title), b.rowLabels(),
                                  b.columnLabels());
    return s;
}

/**
 * The cumulative protection steps of figures 8 and 9: insecure L0 ->
 * +fcache -> +coherency -> +ifcache -> +prefetch, then either stacked
 * clear-on-misspec (figure 8) or the clear-on-misspec / parallel-L1D
 * alternatives side by side (figure 9, `with_parallel`).
 */
std::vector<std::pair<std::string, MuonTrapConfig>>
cumulativeSteps(bool with_parallel)
{
    std::vector<std::pair<std::string, MuonTrapConfig>> steps;

    MuonTrapConfig c = MuonTrapConfig::insecureL0();
    steps.emplace_back("insecure-L0", c);

    c.protectData = true;
    c.tlbFilter = true;
    c.dataParams.name = "fcache_d";
    steps.emplace_back("+fcache", c);

    c.protectCoherence = true;
    steps.emplace_back("+coherency", c);

    c.instFilter = true;
    c.instParams.name = "fcache_i";
    steps.emplace_back("+ifcache", c);

    c.commitPrefetch = true;
    steps.emplace_back("+prefetch", c);

    if (!with_parallel) {
        c.clearOnMisspec = true;
        steps.emplace_back("+clear-misspec", c);
    } else {
        MuonTrapConfig clear = c;
        clear.clearOnMisspec = true;
        steps.emplace_back("+clear-misspec", clear);

        MuonTrapConfig par = c;
        par.parallelL0L1 = true;
        steps.emplace_back("parallel-L1D", par);
    }
    return steps;
}

void
addStepColumns(SweepBuilder &b, bool with_parallel)
{
    for (const auto &[step_name, mt] : cumulativeSteps(with_parallel)) {
        SystemConfig cfg = SystemConfig::forScheme(Scheme::Baseline, 1);
        cfg.mem.mt = mt;
        b.config(step_name, step_name, cfg);
    }
}

Suite
fig7Suite(const RunOptions &opt, std::uint64_t seed)
{
    SweepBuilder b("fig7");
    b.options(opt)
        .seed(seed)
        .workloads(specBenchmarkNames())
        .scheme(Scheme::MuonTrap)
        .collect([](System &sys, JobResult &r) {
            CoherenceBus &bus = sys.mem().bus();
            r.metrics["invalidate_rate"] =
                bus.writeFilterInvalidateRate.value();
            r.metrics["store_upgrades"] =
                static_cast<double>(bus.storeUpgrades.value());
            r.metrics["broadcasts"] = static_cast<double>(
                bus.storeUpgradeBroadcasts.value());
        });

    Suite s;
    s.name = "fig7";
    s.jobs = b.build();
    s.render = [rows = b.rowLabels()](const std::vector<JobResult> &rs) {
        ReportTable t("Figure 7: write filter-cache-invalidate rate "
                      "(SPEC, MuonTrap)");
        t.header({"benchmark", "invalidate_rate", "store_upgrades",
                  "broadcasts"});
        double sum = 0;
        for (const std::string &row : rows) {
            const JobResult *r =
                find(rs, row, schemeName(Scheme::MuonTrap), "run");
            if (!r || !r->ok)
                fatal("fig7: missing result for %s", row.c_str());
            const double rate = r->metrics.at("invalidate_rate");
            sum += rate;
            t.row({row, strfmt("%.3f", rate),
                   strfmt("%llu",
                          static_cast<unsigned long long>(
                              r->metrics.at("store_upgrades"))),
                   strfmt("%llu",
                          static_cast<unsigned long long>(
                              r->metrics.at("broadcasts")))});
        }
        t.row({"mean", strfmt("%.3f", sum / rows.size()), "-", "-"});
        return t;
    };
    return s;
}

// ------------------------------------------------------- sched suite

/**
 * The paper's §6 scenario family: multiprogrammed 4-core runs under the
 * gang scheduler, where every context switch pays the scheme's hygiene
 * cost (MuonTrap filter flush / InvisiSpec squash / STT taint clear).
 * Normalisation is against the *scheduled* baseline, so the table
 * isolates each scheme's time-sharing cost, not the scheduler's.
 */
Suite
schedSuite(const RunOptions &opt, std::uint64_t seed)
{
    SchedParams sp;
    sp.quantum = 20'000;

    SweepBuilder b("sched");
    b.options(opt)
        .seed(seed)
        .schedule(sp, /*cores=*/4)
        // Eight single-threaded SPEC jobs time-sharing four cores: the
        // classic multiprogrammed mix (two jobs per core, constant
        // switching).
        .mixRow("spec-mix4", {"mcf", "gcc", "hmmer", "libquantum",
                              "gamess", "astar", "lbm", "milc"})
        // Two four-thread PARSEC gangs alternating on the same four
        // cores: every quantum boundary switches the whole machine.
        .mixRow("parsec-timeshare", {"canneal", "streamcluster"})
        .withBaseline()
        .schemes(kFigureSchemes)
        .collect([](System &sys, JobResult &r) {
            const Scheduler *sched = sys.scheduler();
            if (!sched)
                return;
            r.metrics["context_switches"] =
                static_cast<double>(sched->switches());
            r.metrics["migrations"] =
                static_cast<double>(sched->migrations());
            r.metrics["idle_slots"] =
                static_cast<double>(sched->idleSlots());
        });

    Suite s;
    s.name = "sched";
    s.jobs = b.build();
    s.render = normalizedRenderer(
        "Scheduled multiprogramming (4 cores, gang scheduler): "
        "normalised execution time",
        b.rowLabels(), b.columnLabels());
    return s;
}

// ------------------------------------------------------- security matrix

/** The attacks of runAllAttacks(), individually dispatchable so the
 *  pool can fan them out. Names mirror what each function reports. */
struct AttackEntry
{
    const char *name;
    AttackOutcome (*fn)(Scheme, const MuonTrapConfig *);
};

const std::vector<AttackEntry> &
attackEntries()
{
    static const std::vector<AttackEntry> entries = {
        {"1:spectre-prime-probe", runSpectrePrimeProbe},
        {"2:inclusion-policy", runInclusionPolicyAttack},
        {"3:shared-data", runSharedDataAttack},
        {"4:filter-coherency", runFilterCacheCoherencyAttack},
        {"5:prefetcher", runPrefetcherAttack},
        {"6:icache", runIcacheAttack},
        {"v2:btb-injection", runSpectreBtbInjection},
        {"7:bus-covert", runBusCovertChannel},
        {"8:prefetch-covert", runPrefetchCovertChannel},
        {"9:l2-prime-probe", runL2PrimeProbe},
        {"10:spec-store", runSpecStoreChannel},
    };
    return entries;
}

Suite
securitySuite(const RunOptions &opt, std::uint64_t seed)
{
    // The attacks are fixed choreographies (prime, run gadget, probe)
    // built inside attacks.cc: run lengths and seeds don't apply to
    // them. Say so instead of silently ignoring the flags.
    if (seed != 0)
        warn("security suite ignores --seed (attacks use fixed "
             "choreography)");
    if (opt.warmupInstructions != kDefaultWarmupInstructions
        || opt.measureInstructions != kDefaultMeasureInstructions)
        warn("security suite ignores --instructions/--warmup (attacks "
             "use fixed choreography)");

    const std::vector<Scheme> schemes = securityMatrixSchemes();

    Suite s;
    s.name = "security";
    s.emitCsv = false;
    s.progressByCol = true;

    for (Scheme scheme : schemes) {
        for (const AttackEntry &a : attackEntries()) {
            JobSpec j;
            j.index = s.jobs.size();
            j.suite = s.name;
            j.row = a.name;
            j.col = schemeName(scheme);
            j.custom = [fn = a.fn, scheme](const JobSpec &) {
                const AttackOutcome out = fn(scheme, nullptr);
                JobResult r;
                r.note = out.leaked ? "LEAK" : "blocked";
                r.metrics["leaked"] = out.leaked ? 1.0 : 0.0;
                r.metrics["probe0_time"] =
                    static_cast<double>(out.probe0Time);
                r.metrics["probe1_time"] =
                    static_cast<double>(out.probe1Time);
                return r;
            };
            s.jobs.push_back(std::move(j));
        }
    }

    auto cell = [](const std::vector<JobResult> &rs,
                   const std::string &row,
                   Scheme scheme) -> const JobResult & {
        const JobResult *r = find(rs, row, schemeName(scheme), "run");
        if (!r || !r->ok)
            fatal("security: missing result for %s/%s", row.c_str(),
                  schemeName(scheme));
        return *r;
    };

    s.render = [schemes, cell](const std::vector<JobResult> &rs) {
        ReportTable t("Security matrix: LEAK = secret recovered via "
                      "timing");
        std::vector<std::string> hdr = {"attack"};
        for (Scheme scheme : schemes)
            hdr.push_back(schemeName(scheme));
        t.header(hdr);
        for (const AttackEntry &a : attackEntries()) {
            std::vector<std::string> row = {a.name};
            for (Scheme scheme : schemes)
                row.push_back(cell(rs, a.name, scheme).note);
            t.row(row);
        }
        return t;
    };

    // Every cell of the matrix has a declared expected outcome
    // (expectedLeak): the baseline leaks all attacks, each defence
    // blocks exactly its documented set, and the committed bus channel
    // leaks everywhere.
    s.verdict = [schemes, cell](const std::vector<JobResult> &rs,
                                std::ostream &os) {
        unsigned bad = 0;
        for (const AttackEntry &a : attackEntries()) {
            for (Scheme scheme : schemes) {
                const bool leaked =
                    cell(rs, a.name, scheme).note == "LEAK";
                if (leaked != expectedLeak(a.name, scheme)) {
                    ++bad;
                    os << "FAIL: " << a.name << " under "
                       << schemeName(scheme) << " "
                       << (leaked ? "leaked" : "was blocked")
                       << " but the declared outcome is "
                       << (expectedLeak(a.name, scheme) ? "LEAK"
                                                        : "blocked")
                       << "\n";
                }
            }
        }
        os << "\n"
           << (bad == 0 ? "PASS: every matrix cell matches its declared "
                          "expected outcome"
                        : "FAIL: unexpected leak matrix")
           << "\n";
        return bad == 0 ? 0 : 1;
    };
    return s;
}

// ------------------------------------------------------- server suite

/** The schemes compared under open-system load (a smaller set than the
 *  figures: one representative per defence family keeps the load sweep
 *  affordable). */
const std::vector<Scheme> kServerSchemes = {
    Scheme::Baseline,
    Scheme::MuonTrap,
    Scheme::InvisiSpecSpectre,
    Scheme::SttSpectre,
};

/** One load level of the server sweep. */
struct ServerLoadLevel
{
    const char *name;
    ArrivalPattern pattern;
    /** Mean inter-arrival gap as a multiple (percent) of
     *  opt.measureInstructions, so the suite scales with
     *  --instructions the way every other suite does. */
    unsigned interarrivalPct;
};

const std::vector<ServerLoadLevel> &
serverLoadLevels()
{
    // lo is comfortably under capacity (4 cores), hi oversubscribes it,
    // and burst-hi offers the hi rate in bursts — same long-run load,
    // much fatter latency tail.
    static const std::vector<ServerLoadLevel> levels = {
        {"poisson-lo", ArrivalPattern::Poisson, 200},
        {"poisson-hi", ArrivalPattern::Poisson, 50},
        {"burst-hi", ArrivalPattern::Burst, 50},
    };
    return levels;
}

/** Arrival shape of one load level. Scaled off the per-run instruction
 *  budget so `--instructions` moves the whole suite together. Seeded
 *  per *row*, never per column: every scheme in a row faces the
 *  byte-identical offered load, so columns differ only by defence. */
ArrivalParams
serverArrivals(const ServerLoadLevel &level, const RunOptions &opt,
               std::uint64_t seed, std::size_t row_index)
{
    ArrivalParams ap;
    ap.seed = mixSeeds(0xa2217ull + row_index, seed);
    ap.pattern = level.pattern;
    ap.jobs = 12;
    ap.meanInterarrival =
        std::max<Cycle>(1, opt.measureInstructions
                               * level.interarrivalPct / 100);
    ap.serviceMinCommits = std::max<std::uint64_t>(
        1, opt.measureInstructions / 2);
    ap.serviceMaxCommits = std::max<std::uint64_t>(
        ap.serviceMinCommits, opt.measureInstructions * 2);
    ap.deadlineFactor = 6;
    ap.maxWeight = 2;
    return ap;
}

/**
 * The open-system "server farm" sweep: a load ladder (rows) against a
 * defence-scheme set (columns), each cell one runServerConfigured run
 * on a 4-core machine. The table reports p95 sojourn time normalised
 * to the scheduled Baseline of the same row — the defence's QoS
 * overhead under that load — and the CSV carries the full percentile /
 * occupancy / deadline metric set.
 */
Suite
serverSuite(const RunOptions &opt, std::uint64_t seed)
{
    Suite s;
    s.name = "server";

    for (const ServerLoadLevel &level : serverLoadLevels()) {
        const std::size_t row_index = &level - serverLoadLevels().data();
        for (Scheme scheme : kServerSchemes) {
            JobSpec j;
            j.index = s.jobs.size();
            j.suite = s.name;
            j.row = level.name;
            j.col = schemeName(scheme);
            const ArrivalParams ap =
                serverArrivals(level, opt, seed, row_index);
            RunOptions ro = opt;
            ro.seed = jobSeed(seed, j.index);
            j.custom = [ap, ro, scheme](const JobSpec &) {
                SchedParams sp;
                sp.quantum = 20'000;
                sp.affinity = true;
                const SystemConfig cfg =
                    SystemConfig::forScheme(scheme, 4);
                ServerRunOutput out = runServerConfigured(
                    cfg, sp, ap, ro, schemeName(scheme));
                const ServerReport &rep = out.report;

                JobResult r;
                r.run.workload = "server";
                r.run.configName = schemeName(scheme);
                r.run.cycles = rep.makespan ? rep.makespan : 1;
                r.run.ipc = rep.ipc;
                r.instructions = rep.committed;
                r.metrics["admitted"] =
                    static_cast<double>(rep.admitted);
                r.metrics["completed"] =
                    static_cast<double>(rep.completed);
                r.metrics["sojourn_p50"] =
                    static_cast<double>(rep.sojournP50);
                r.metrics["sojourn_p95"] =
                    static_cast<double>(rep.sojournP95);
                r.metrics["sojourn_p99"] =
                    static_cast<double>(rep.sojournP99);
                r.metrics["wait_p50"] =
                    static_cast<double>(rep.waitP50);
                r.metrics["wait_p95"] =
                    static_cast<double>(rep.waitP95);
                r.metrics["wait_p99"] =
                    static_cast<double>(rep.waitP99);
                r.metrics["deadline_miss_rate"] = rep.deadlineTotal
                    ? static_cast<double>(rep.deadlineMisses)
                          / static_cast<double>(rep.deadlineTotal)
                    : 0.0;
                r.metrics["occupancy"] = rep.occupancy;
                r.metrics["throughput_per_mcycle"] =
                    rep.throughputPerMcycle;
                return r;
            };
            s.jobs.push_back(std::move(j));
        }
    }

    s.render = [](const std::vector<JobResult> &rs) {
        ReportTable t("Open-system server load sweep (4 cores): p95 "
                      "sojourn time vs scheduled Baseline");
        std::vector<std::string> hdr = {"load"};
        for (Scheme scheme : kServerSchemes)
            hdr.push_back(schemeName(scheme));
        t.header(hdr);
        for (const ServerLoadLevel &level : serverLoadLevels()) {
            const JobResult *base =
                find(rs, level.name, schemeName(Scheme::Baseline),
                     "run");
            if (!base || !base->ok)
                fatal("server: missing baseline result for %s",
                      level.name);
            const double base_p95 = base->metrics.at("sojourn_p95");
            std::vector<double> values;
            for (Scheme scheme : kServerSchemes) {
                const JobResult *r =
                    find(rs, level.name, schemeName(scheme), "run");
                if (!r || !r->ok)
                    fatal("server: missing result for %s/%s",
                          level.name, schemeName(scheme));
                values.push_back(base_p95 > 0.0
                                     ? r->metrics.at("sojourn_p95")
                                           / base_p95
                                     : 1.0);
            }
            t.rowNumeric(level.name, values);
        }
        t.geomeanRow();
        return t;
    };
    return s;
}

} // namespace

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "fig3", "fig4", "fig5", "fig6",
        "fig7", "fig8", "fig9", "sched", "security", "server",
    };
    return names;
}

Suite
buildSuite(const std::string &name, const RunOptions &opt,
           std::uint64_t seed)
{
    if (name == "fig3")
        return normalizedSuite(
            name, "Figure 3: SPEC CPU2006 normalised execution time",
            specBenchmarkNames(), opt, seed,
            [](SweepBuilder &b) { b.schemes(kFigureSchemes); });
    if (name == "fig4")
        return normalizedSuite(
            name,
            "Figure 4: Parsec normalised execution time (4 threads)",
            parsecBenchmarkNames(), opt, seed,
            [](SweepBuilder &b) { b.schemes(kFigureSchemes); });
    if (name == "fig5")
        return normalizedSuite(
            name,
            "Figure 5: filter-cache size sweep (fully assoc., Parsec)",
            parsecBenchmarkNames(), opt, seed, [](SweepBuilder &b) {
                b.filterSizes({64, 128, 256, 512, 1024, 2048, 4096});
            });
    if (name == "fig6")
        return normalizedSuite(
            name,
            "Figure 6: filter-cache associativity sweep (2048 B, Parsec)",
            parsecBenchmarkNames(), opt, seed, [](SweepBuilder &b) {
                b.filterAssocs({1, 2, 4, 8, 16, 32}, 2048);
            });
    if (name == "fig7")
        return fig7Suite(opt, seed);
    if (name == "fig8")
        return normalizedSuite(
            name, "Figure 8: cumulative protection cost on Parsec",
            parsecBenchmarkNames(), opt, seed,
            [](SweepBuilder &b) { addStepColumns(b, false); });
    if (name == "fig9")
        return normalizedSuite(
            name, "Figure 9: cumulative protection cost on SPEC CPU2006",
            specBenchmarkNames(), opt, seed,
            [](SweepBuilder &b) { addStepColumns(b, true); });
    if (name == "sched")
        return schedSuite(opt, seed);
    if (name == "security")
        return securitySuite(opt, seed);
    if (name == "server")
        return serverSuite(opt, seed);
    fatal("unknown suite '%s' (try one of fig3..fig9, sched, security, "
          "server, all)",
          name.c_str());
}

int
runSuite(const Suite &suite, ExperimentPool &pool, bool render_table,
         ResultStore *store, const SuiteRunOptions &run_opt)
{
    Suite local_suite;
    const Suite *to_run = &suite;
    std::vector<JobResult> prior;
    if (!run_opt.traceDir.empty() || !run_opt.warmSnapshotDir.empty()
        || !run_opt.resumeManifest.empty()) {
        local_suite = suite;
        for (JobSpec &j : local_suite.jobs) {
            if (!run_opt.traceDir.empty())
                j.tracePath = run_opt.traceDir + "/" + local_suite.name
                              + "_" + std::to_string(j.index)
                              + ".trace.json";
            if (!run_opt.warmSnapshotDir.empty())
                j.opt.warmSnapshotDir = run_opt.warmSnapshotDir;
        }
        if (!run_opt.resumeManifest.empty()) {
            prior = loadResumeManifest(run_opt.resumeManifest,
                                       suite.name);
            std::set<std::size_t> recorded;
            for (const JobResult &r : prior)
                recorded.insert(r.index);
            auto &jobs = local_suite.jobs;
            jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                                      [&](const JobSpec &j) {
                                          return recorded.count(j.index)
                                                 != 0;
                                      }),
                       jobs.end());
            if (!prior.empty())
                std::fprintf(stderr,
                             "%s: resume — %zu job(s) already in %s, "
                             "%zu to run\n",
                             suite.name.c_str(), prior.size(),
                             run_opt.resumeManifest.c_str(),
                             jobs.size());
        }
        to_run = &local_suite;
    }

    // The manifest is append-only and flushed per record; the pool's
    // completion callback is serialised, so no locking is needed.
    std::ofstream manifest;
    if (!run_opt.resumeManifest.empty()) {
        manifest.open(run_opt.resumeManifest,
                      std::ios::out | std::ios::app);
        if (!manifest)
            fatal("cannot open resume manifest %s for append",
                  run_opt.resumeManifest.c_str());
    }

    // Legacy progress lines fire when a whole row (workload) or column
    // (scheme) finishes; completion order varies with the pool, the
    // line set does not. Per-job lines (mtrap_batch) add wall time and
    // simulation throughput as each job lands, with an ETA from the
    // mean job time so far.
    std::map<std::string, unsigned> remaining;
    for (const JobSpec &j : to_run->jobs)
        ++remaining[suite.progressByCol ? j.col : j.row];

    const std::size_t total = to_run->jobs.size();
    std::size_t done = 0;
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<JobResult> results = pool.run(
        to_run->jobs, [&](const JobResult &r) {
            ++done;
            if (manifest.is_open() && r.ok) {
                manifest << resumeManifestLine(r) << '\n';
                manifest.flush();
                if (!manifest)
                    fatal("write to resume manifest %s failed",
                          run_opt.resumeManifest.c_str());
            }
            if (run_opt.perJobProgress) {
                const double elapsed =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                const double eta = done
                    ? elapsed / static_cast<double>(done)
                          * static_cast<double>(total - done)
                    : 0.0;
                const double kips = r.wallSeconds > 0.0
                    ? static_cast<double>(r.instructions)
                          / r.wallSeconds / 1e3
                    : 0.0;
                std::fprintf(stderr,
                             "[%zu/%zu] %s: %s/%s %.1fs %.0f kinst/s "
                             "(ETA %.0fs)\n",
                             done, total, suite.name.c_str(),
                             r.row.c_str(), r.col.c_str(),
                             r.wallSeconds, kips, eta);
            }
            const std::string &key =
                suite.progressByCol ? r.col : r.row;
            if (--remaining[key] == 0)
                std::fprintf(stderr, "%s: %s done\n",
                             suite.name.c_str(), key.c_str());
        });

    // Recorded results from previous attempts rejoin the live ones;
    // renderers and the store match on (row, col, kind) / sort by
    // index, so the merged set is indistinguishable from one run.
    for (JobResult &r : prior)
        results.push_back(std::move(r));

    int rc = 0;
    for (const JobResult &r : results) {
        if (!r.ok) {
            std::fprintf(stderr, "%s: job %llu (%s/%s) failed: %s\n",
                         suite.name.c_str(),
                         static_cast<unsigned long long>(r.index),
                         r.row.c_str(), r.col.c_str(), r.error.c_str());
            rc = 1;
        }
    }

    if (render_table && rc == 0) {
        const ReportTable t = suite.render(results);
        t.print(std::cout);
        if (suite.emitCsv) {
            std::printf("--- csv ---\n");
            t.printCsv(std::cout);
            std::printf("-----------\n");
        }
        if (suite.verdict)
            rc = suite.verdict(results, std::cout);
    }

    if (store)
        store->addAll(std::move(results));
    return rc;
}

} // namespace mtrap::harness

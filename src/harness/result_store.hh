/**
 * @file
 * ResultStore: aggregates JobResults (in any completion order), sorts
 * them by global submission index, and serialises the set as CSV or
 * JSON artifacts.
 *
 * Serialisation is fully deterministic — fixed field order, sorted
 * metric keys, no timestamps — so a sweep's artifact is byte-identical
 * for any worker count. Shard artifacts carry interleaved global
 * indices (shard i of m holds jobs i, i+m, ...), so merging them back
 * into the single-machine sequence needs a sort by (suite, index) —
 * concatenation alone is not submission order.
 */

#ifndef MTRAP_HARNESS_RESULT_STORE_HH
#define MTRAP_HARNESS_RESULT_STORE_HH

#include <ostream>
#include <vector>

#include "harness/job.hh"

namespace mtrap::harness
{

class ResultStore
{
  public:
    void add(JobResult r);
    void addAll(std::vector<JobResult> rs);

    std::size_t size() const { return results_.size(); }
    bool allOk() const;

    /** Results sorted by submission index. */
    const std::vector<JobResult> &sorted() const;

    /** One JSON array, one object per job. */
    void writeJson(std::ostream &os) const;
    /** Header + one line per job; metrics flattened as k=v;k=v. */
    void writeCsv(std::ostream &os) const;

  private:
    mutable std::vector<JobResult> results_;
    mutable bool dirty_ = false;
};

} // namespace mtrap::harness

#endif // MTRAP_HARNESS_RESULT_STORE_HH

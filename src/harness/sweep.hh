/**
 * @file
 * SweepBuilder: expands a cartesian experiment description — rows
 * (workloads) × columns (schemes or explicit configurations) — into a
 * flat JobSpec list for the ExperimentPool.
 *
 * Expansion order is row-major with the optional baseline first in each
 * row, which is exactly the order the legacy serial benches executed
 * in; job indices (and therefore per-job seeds and ResultStore order)
 * are assigned in that order.
 */

#ifndef MTRAP_HARNESS_SWEEP_HH
#define MTRAP_HARNESS_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/job.hh"

namespace mtrap::harness
{

class SweepBuilder
{
  public:
    explicit SweepBuilder(std::string suite);

    /** Run lengths shared by every job (seed is set per job). */
    SweepBuilder &options(const RunOptions &opt);
    /** Global sweep seed; 0 (default) reproduces legacy results. */
    SweepBuilder &seed(std::uint64_t s);

    /** Append one row per bundled workload name (SPEC or Parsec). */
    SweepBuilder &workloads(const std::vector<std::string> &names);
    /**
     * Append one multiprogrammed row: all `names` time-share the cores
     * of a schedule()d sweep as one job mix (each member gets its own
     * asid). Only valid together with schedule().
     */
    SweepBuilder &mixRow(const std::string &label,
                         const std::vector<std::string> &names);
    /**
     * Run every job (baselines included) through the gang scheduler on
     * a `cores`-core system under policy `p` — the multiprogrammed
     * suites' mode. Normalisation then compares scheduled runs against
     * the scheduled baseline, isolating each scheme's scheduling cost.
     */
    SweepBuilder &schedule(const SchedParams &p, unsigned cores);
    /** Prepend a Scheme::Baseline job to every row (run exactly once
     *  per workload; anchors normalisation). */
    SweepBuilder &withBaseline();

    /** Column: a named scheme on the Table-1 system. */
    SweepBuilder &scheme(Scheme s);
    SweepBuilder &schemes(const std::vector<Scheme> &ss);
    /** Column: an explicit configuration. `label` is the table column
     *  header, `config_name` the RunResult config name. */
    SweepBuilder &config(std::string label, std::string config_name,
                         const SystemConfig &cfg);
    /** Columns: MuonTrap with a fully-associative data filter cache of
     *  each size (figure 5). */
    SweepBuilder &filterSizes(const std::vector<std::uint64_t> &sizes);
    /** Columns: MuonTrap with a `size_bytes` data filter cache at each
     *  associativity (figure 6). */
    SweepBuilder &filterAssocs(const std::vector<unsigned> &assocs,
                               std::uint64_t size_bytes);

    /** Stats probe attached to every non-baseline job. */
    SweepBuilder &collect(std::function<void(System &, JobResult &)> fn);

    /** Column labels in insertion order (for renderers). */
    const std::vector<std::string> &columnLabels() const { return labels_; }
    /** Row labels in insertion order. */
    const std::vector<std::string> &rowLabels() const { return rowLabels_; }

    /** Expand into the flat, index-stamped job list. */
    std::vector<JobSpec> build() const;

  private:
    struct Column
    {
        std::string label;
        std::string configName;
        SystemConfig cfg;
    };

    /** One row: a single workload, or (mix) several time-shared ones. */
    struct Row
    {
        std::string label;
        std::vector<std::string> names;
    };

    std::string suite_;
    RunOptions opt_;
    std::uint64_t seed_ = 0;
    bool baseline_ = false;
    bool scheduled_ = false;
    SchedParams sched_;
    unsigned schedCores_ = 1;
    std::vector<Row> rows_;
    std::vector<std::string> rowLabels_;
    std::vector<Column> cols_;
    std::vector<std::string> labels_;
    std::function<void(System &, JobResult &)> collect_;
};

} // namespace mtrap::harness

#endif // MTRAP_HARNESS_SWEEP_HH

/**
 * @file
 * Resume manifest for sharded sweeps (mtrap_batch --resume).
 *
 * A manifest is an append-only text file with one record per
 * *successfully* completed job, written from runSuite's (serialised)
 * completion callback and flushed per line. Restarting a killed shard
 * with the same manifest skips every recorded job and merges the
 * recorded results back into the suite's result set, so the rendered
 * table and archived artifacts are identical to an uninterrupted run.
 *
 * Failed jobs are never recorded — they re-run on resume. A record is
 * self-delimiting (version tag up front, "#end" sentinel at the back),
 * so a half-written final line from a killed process is simply skipped
 * and its job re-runs. Doubles round-trip through %.17g, which is
 * exact, keeping resumed artifacts byte-identical.
 */

#ifndef MTRAP_HARNESS_MANIFEST_HH
#define MTRAP_HARNESS_MANIFEST_HH

#include <string>
#include <vector>

#include "harness/job.hh"

namespace mtrap::harness
{

/**
 * Encode one completed job as a single manifest line (no trailing
 * newline). Tabs/newlines inside strings are replaced by spaces — no
 * suite uses them, and a lossy name beats a corrupt record.
 */
std::string resumeManifestLine(const JobResult &r);

/**
 * Load every well-formed record for `suite` from `path`. A missing
 * file is an empty manifest (first run); malformed or truncated lines
 * are skipped. Later records win on duplicate job indices (a job
 * completed twice across restarts is recorded twice, identically).
 */
std::vector<JobResult> loadResumeManifest(const std::string &path,
                                          const std::string &suite);

} // namespace mtrap::harness

#endif // MTRAP_HARNESS_MANIFEST_HH

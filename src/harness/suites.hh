/**
 * @file
 * The paper's experiment suites (figures 3-9 and the security matrix)
 * expressed as harness job lists plus renderers that reproduce the
 * legacy bench binaries' tables byte-for-byte.
 *
 * Both the per-figure bench binaries and the mtrap_batch CLI are thin
 * wrappers around buildSuite()/runSuite(): the benches render one
 * suite's table, mtrap_batch runs any subset (optionally sharded) and
 * archives the raw results through a ResultStore.
 */

#ifndef MTRAP_HARNESS_SUITES_HH
#define MTRAP_HARNESS_SUITES_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/pool.hh"
#include "harness/result_store.hh"
#include "sim/report.hh"

namespace mtrap::harness
{

/** One runnable experiment suite. */
struct Suite
{
    std::string name;
    std::vector<JobSpec> jobs;

    /** Build the legacy table from the full result set. */
    std::function<ReportTable(const std::vector<JobResult> &)> render;
    /**
     * Post-table pass/fail hook (the security matrix's LEAK check);
     * prints its message and returns the suite's exit code. Null means
     * unconditional 0.
     */
    std::function<int(const std::vector<JobResult> &, std::ostream &)>
        verdict;

    /** Echo a CSV block after the table (legacy emit() behaviour; the
     *  security matrix prints its table without one). */
    bool emitCsv = true;
    /** Legacy progress lines group by row (workload) or by column
     *  (scheme, for the security matrix). */
    bool progressByCol = false;
};

/** All suite names, figure order: fig3..fig9, then sched, security and
 *  the open-system server sweep. */
const std::vector<std::string> &suiteNames();

/** Build one suite (fatal on unknown name). `seed` = 0 reproduces the
 *  legacy serial benches exactly. */
Suite buildSuite(const std::string &name, const RunOptions &opt,
                 std::uint64_t seed = 0);

/** Optional runSuite behaviour (mtrap_batch front-end features). */
struct SuiteRunOptions
{
    /** One stderr line per finished job: name, wall seconds, simulated
     *  kinst/s, done/total and an ETA. Host telemetry only — result
     *  artifacts are unaffected. */
    bool perJobProgress = false;
    /** When non-empty, every job runs traced and writes Chrome
     *  trace-event JSON to DIR/<suite>_<index>.trace.json. */
    std::string traceDir;
    /** When non-empty, every job warm-forks through this snapshot
     *  cache directory (RunOptions::warmSnapshotDir): jobs sharing a
     *  (config, context) fingerprint pair warm up once and restore
     *  thereafter, with bit-identical results. */
    std::string warmSnapshotDir;
    /**
     * When non-empty, completed jobs are appended to this manifest
     * file (flushed per job) and jobs already recorded in it are
     * skipped, their recorded results merged back into the table
     * (mtrap_batch --resume). A killed shard restarted with the same
     * manifest finishes only the missing jobs, byte-identically.
     */
    std::string resumeManifest;
};

/**
 * Run `suite` on `pool`: emits the legacy "<suite>: <group> done"
 * progress lines on stderr as row/column groups complete, renders the
 * table (and verdict) to stdout when `render_table`, and moves the raw
 * results into `store` when non-null. Returns the suite's exit code
 * (nonzero on job failure or verdict failure).
 */
int runSuite(const Suite &suite, ExperimentPool &pool, bool render_table,
             ResultStore *store, const SuiteRunOptions &run_opt = {});

} // namespace mtrap::harness

#endif // MTRAP_HARNESS_SUITES_HH

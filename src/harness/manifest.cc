#include "harness/manifest.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace mtrap::harness
{

namespace
{

/** Record layout version; bump on any field change. */
constexpr const char *kTag = "mtrapres1";
constexpr const char *kEnd = "#end";

/** Fixed tokens before the metric pairs: tag, suite, index, row, col,
 *  kind, workload, configName, cycles, instructionsPerCore, ipc,
 *  metric count. After the pairs: note, end sentinel. */
constexpr std::size_t kFixedTokens = 12;
constexpr std::size_t kTrailTokens = 2;

std::string
sanitize(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (c == '\t' || c == '\n' || c == '\r')
            c = ' ';
    return out;
}

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Split on tabs, keeping empty tokens (`note` may be empty). */
std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno || !end || *end)
        return false;
    out = v;
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (errno || !end || *end)
        return false;
    out = v;
    return true;
}

/** Decode one line; returns false on any malformation (the caller
 *  skips the record and the job simply re-runs). */
bool
parseRecord(const std::string &line, JobResult &r)
{
    const std::vector<std::string> t = splitTabs(line);
    if (t.size() < kFixedTokens + kTrailTokens || t.front() != kTag
        || t.back() != kEnd)
        return false;

    std::uint64_t index = 0, cycles = 0, ipcore = 0, nmetrics = 0;
    if (!parseU64(t[2], index) || !parseU64(t[8], cycles)
        || !parseU64(t[9], ipcore) || !parseU64(t[11], nmetrics))
        return false;
    if (t.size() != kFixedTokens + 2 * nmetrics + kTrailTokens)
        return false;

    double ipc = 0.0;
    if (!parseDouble(t[10], ipc))
        return false;

    r = JobResult{};
    r.index = static_cast<std::size_t>(index);
    r.suite = t[1];
    r.row = t[3];
    r.col = t[4];
    r.kind = t[5];
    r.run.workload = t[6];
    r.run.configName = t[7];
    r.run.cycles = cycles;
    r.run.instructionsPerCore = ipcore;
    r.run.ipc = ipc;
    for (std::uint64_t i = 0; i < nmetrics; ++i) {
        double v = 0.0;
        if (!parseDouble(t[kFixedTokens + 2 * i + 1], v))
            return false;
        r.metrics[t[kFixedTokens + 2 * i]] = v;
    }
    r.note = t[t.size() - 2];
    r.ok = true;
    return true;
}

} // namespace

std::string
resumeManifestLine(const JobResult &r)
{
    std::ostringstream os;
    os << kTag << '\t' << sanitize(r.suite) << '\t' << r.index << '\t'
       << sanitize(r.row) << '\t' << sanitize(r.col) << '\t'
       << sanitize(r.kind) << '\t' << sanitize(r.run.workload) << '\t'
       << sanitize(r.run.configName) << '\t' << r.run.cycles << '\t'
       << r.run.instructionsPerCore << '\t' << formatDouble(r.run.ipc)
       << '\t' << r.metrics.size();
    for (const auto &[k, v] : r.metrics)
        os << '\t' << sanitize(k) << '\t' << formatDouble(v);
    os << '\t' << sanitize(r.note) << '\t' << kEnd;
    return os.str();
}

std::vector<JobResult>
loadResumeManifest(const std::string &path, const std::string &suite)
{
    std::ifstream f(path);
    if (!f)
        return {}; // first run: nothing recorded yet
    std::map<std::size_t, JobResult> byIndex;
    std::string line;
    while (std::getline(f, line)) {
        JobResult r;
        if (parseRecord(line, r) && r.suite == suite)
            byIndex[r.index] = std::move(r);
    }
    std::vector<JobResult> out;
    out.reserve(byIndex.size());
    for (auto &[idx, r] : byIndex)
        out.push_back(std::move(r));
    return out;
}

} // namespace mtrap::harness

#include "harness/result_store.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/json_stats.hh"

namespace mtrap::harness
{

namespace
{

std::string
fmtDouble(double v)
{
    return strfmt("%.9g", v);
}

/**
 * RFC 4180 field quoting: a field containing a comma, double quote, CR
 * or LF is wrapped in double quotes with embedded quotes doubled. Clean
 * fields pass through verbatim, so artifacts from well-behaved sweeps
 * are unchanged.
 */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\r\n") == std::string::npos)
        return s;
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace

void
ResultStore::add(JobResult r)
{
    results_.push_back(std::move(r));
    dirty_ = true;
}

void
ResultStore::addAll(std::vector<JobResult> rs)
{
    for (auto &r : rs)
        add(std::move(r));
}

bool
ResultStore::allOk() const
{
    for (const JobResult &r : results_)
        if (!r.ok)
            return false;
    return true;
}

const std::vector<JobResult> &
ResultStore::sorted() const
{
    if (dirty_) {
        std::stable_sort(results_.begin(), results_.end(),
                         [](const JobResult &a, const JobResult &b) {
                             if (a.suite != b.suite)
                                 return a.suite < b.suite;
                             return a.index < b.index;
                         });
        dirty_ = false;
    }
    return results_;
}

void
ResultStore::writeJson(std::ostream &os) const
{
    os << "[\n";
    const auto &rs = sorted();
    for (std::size_t i = 0; i < rs.size(); ++i) {
        const JobResult &r = rs[i];
        os << "  {\"suite\": \"" << jsonEscape(r.suite) << "\""
           << ", \"index\": " << r.index
           << ", \"row\": \"" << jsonEscape(r.row) << "\""
           << ", \"col\": \"" << jsonEscape(r.col) << "\""
           << ", \"kind\": \"" << jsonEscape(r.kind) << "\""
           << ", \"workload\": \"" << jsonEscape(r.run.workload) << "\""
           << ", \"config\": \"" << jsonEscape(r.run.configName) << "\""
           << ", \"cycles\": " << r.run.cycles
           << ", \"instructions\": " << r.run.instructionsPerCore
           << ", \"ipc\": " << fmtDouble(r.run.ipc);
        if (!r.metrics.empty()) {
            os << ", \"metrics\": {";
            bool first = true;
            for (const auto &[k, v] : r.metrics) {
                os << (first ? "" : ", ") << "\"" << jsonEscape(k)
                   << "\": " << fmtDouble(v);
                first = false;
            }
            os << "}";
        }
        if (!r.note.empty())
            os << ", \"note\": \"" << jsonEscape(r.note) << "\"";
        os << ", \"ok\": " << (r.ok ? "true" : "false");
        if (!r.ok)
            os << ", \"error\": \"" << jsonEscape(r.error) << "\"";
        os << "}" << (i + 1 < rs.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

void
ResultStore::writeCsv(std::ostream &os) const
{
    os << "suite,index,row,col,kind,workload,config,cycles,instructions,"
          "ipc,note,ok,metrics\n";
    for (const JobResult &r : sorted()) {
        os << csvField(r.suite) << "," << r.index << ","
           << csvField(r.row) << "," << csvField(r.col) << ","
           << csvField(r.kind) << "," << csvField(r.run.workload) << ","
           << csvField(r.run.configName) << "," << r.run.cycles << ","
           << r.run.instructionsPerCore << "," << fmtDouble(r.run.ipc)
           << "," << csvField(r.note) << "," << (r.ok ? "1" : "0")
           << ",";
        std::string metrics;
        bool first = true;
        for (const auto &[k, v] : r.metrics) {
            metrics += (first ? "" : ";");
            metrics += k;
            metrics += "=";
            metrics += fmtDouble(v);
            first = false;
        }
        os << csvField(metrics) << "\n";
    }
}

} // namespace mtrap::harness

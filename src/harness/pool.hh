/**
 * @file
 * ExperimentPool: a fixed-size worker-thread pool draining the job list
 * through a work-stealing atomic cursor — whichever worker finishes
 * first claims the next job, so one slow job cannot straggle a whole
 * static shard.
 *
 * Determinism contract: results are returned indexed by submission
 * order and every job is self-contained, so the result vector is
 * bit-identical for any thread count (the acceptance property the
 * harness tests assert). The first job failure cancels all jobs that
 * have not yet started; already-running jobs finish normally.
 */

#ifndef MTRAP_HARNESS_POOL_HH
#define MTRAP_HARNESS_POOL_HH

#include <atomic>
#include <functional>
#include <mutex>
#include <vector>

#include "harness/job.hh"

namespace mtrap::harness
{

class ExperimentPool
{
  public:
    /** `threads` == 0 picks std::thread::hardware_concurrency(). */
    explicit ExperimentPool(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /** Called (serialised) as each job completes; for progress lines. */
    using Progress = std::function<void(const JobResult &)>;

    /**
     * Run all jobs and return one result per job, in submission order.
     * Jobs that never started because of cancellation come back with
     * ok=false, error="cancelled".
     */
    std::vector<JobResult> run(const std::vector<JobSpec> &jobs,
                               const Progress &progress = {});

  private:
    struct Queue;
    void worker(Queue &q, const std::vector<JobSpec> &jobs,
                std::vector<JobResult> &results,
                const Progress &progress);

    unsigned threads_;
};

/** Keep only this shard's jobs: job k of n goes to shard k % m. The
 *  surviving specs retain their global indices, so shard outputs merge
 *  into one deterministic sequence. */
std::vector<JobSpec> shardJobs(std::vector<JobSpec> jobs,
                               unsigned shard_index, unsigned shard_count);

} // namespace mtrap::harness

#endif // MTRAP_HARNESS_POOL_HH

#include "harness/pool.hh"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/log.hh"

namespace mtrap::harness
{

/** Mutex+condvar queue of job indices. Producers push then close; the
 *  condvar wakes workers either for a new index or for shutdown. */
struct ExperimentPool::Queue
{
    std::mutex mtx;
    std::condition_variable cv;
    std::vector<std::size_t> pending; // drained front-to-back
    std::size_t head = 0;
    bool closed = false;
    bool cancelled = false;

    void
    push(std::size_t i)
    {
        {
            std::lock_guard<std::mutex> lk(mtx);
            pending.push_back(i);
        }
        cv.notify_one();
    }

    void
    close()
    {
        {
            std::lock_guard<std::mutex> lk(mtx);
            closed = true;
        }
        cv.notify_all();
    }

    void
    cancel()
    {
        {
            std::lock_guard<std::mutex> lk(mtx);
            cancelled = true;
        }
        cv.notify_all();
    }

    /** Blocks for the next index; false on shutdown/cancellation. */
    bool
    pop(std::size_t &out)
    {
        std::unique_lock<std::mutex> lk(mtx);
        cv.wait(lk, [&] {
            return cancelled || head < pending.size() || closed;
        });
        if (cancelled || head >= pending.size())
            return false;
        out = pending[head++];
        return true;
    }
};

ExperimentPool::ExperimentPool(unsigned threads)
    : threads_(threads ? threads
                       : std::max(1u, std::thread::hardware_concurrency()))
{
}

void
ExperimentPool::worker(Queue &q, const std::vector<JobSpec> &jobs,
                       std::vector<JobResult> &results,
                       const Progress &progress)
{
    std::size_t i;
    while (q.pop(i)) {
        JobResult r;
        try {
            r = runJob(jobs[i]);
        } catch (const std::exception &e) {
            r.index = jobs[i].index;
            r.suite = jobs[i].suite;
            r.row = jobs[i].row;
            r.col = jobs[i].col;
            r.kind = jobs[i].kind;
            r.ok = false;
            r.error = e.what();
        }
        const bool failed = !r.ok;
        {
            std::lock_guard<std::mutex> lk(q.mtx);
            results[i] = std::move(r);
        }
        if (progress) {
            std::lock_guard<std::mutex> lk(q.mtx);
            progress(results[i]);
        }
        if (failed)
            q.cancel(); // fatal: stop handing out further jobs
    }
}

std::vector<JobResult>
ExperimentPool::run(const std::vector<JobSpec> &jobs,
                    const Progress &progress)
{
    std::vector<JobResult> results(jobs.size());
    // Pre-mark everything cancelled; executed jobs overwrite their slot.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        results[i].index = jobs[i].index;
        results[i].suite = jobs[i].suite;
        results[i].row = jobs[i].row;
        results[i].col = jobs[i].col;
        results[i].kind = jobs[i].kind;
        results[i].ok = false;
        results[i].error = "cancelled";
    }

    Queue q;
    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(threads_, jobs.size()));
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        workers.emplace_back([&] { worker(q, jobs, results, progress); });

    for (std::size_t i = 0; i < jobs.size(); ++i)
        q.push(i);
    q.close();

    for (auto &w : workers)
        w.join();
    return results;
}

std::vector<JobSpec>
shardJobs(std::vector<JobSpec> jobs, unsigned shard_index,
          unsigned shard_count)
{
    if (shard_count == 0 || shard_index >= shard_count)
        fatal("bad shard %u/%u", shard_index, shard_count);
    if (shard_count == 1)
        return jobs;
    std::vector<JobSpec> mine;
    for (std::size_t k = 0; k < jobs.size(); ++k)
        if (k % shard_count == shard_index)
            mine.push_back(std::move(jobs[k]));
    return mine;
}

} // namespace mtrap::harness

#include "harness/pool.hh"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/log.hh"

namespace mtrap::harness
{

/**
 * Work-stealing job distribution: every job is known up front, so a
 * single atomic cursor replaces the old mutex+condvar queue — each
 * worker claims the next unclaimed index the moment it finishes its
 * current job. A worker stuck on a slow job (mcf under InvisiSpec) no
 * longer strands the jobs that static sharding would have bound to its
 * shard; the fast workers drain them instead. The mutex now guards only
 * result publication and progress callbacks.
 */
struct ExperimentPool::Queue
{
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::mutex mtx;
};

ExperimentPool::ExperimentPool(unsigned threads)
    : threads_(threads ? threads
                       : std::max(1u, std::thread::hardware_concurrency()))
{
}

void
ExperimentPool::worker(Queue &q, const std::vector<JobSpec> &jobs,
                       std::vector<JobResult> &results,
                       const Progress &progress)
{
    while (!q.cancelled.load(std::memory_order_relaxed)) {
        const std::size_t i =
            q.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size())
            return;
        JobResult r;
        try {
            r = runJob(jobs[i]);
        } catch (const std::exception &e) {
            r.index = jobs[i].index;
            r.suite = jobs[i].suite;
            r.row = jobs[i].row;
            r.col = jobs[i].col;
            r.kind = jobs[i].kind;
            r.ok = false;
            r.error = e.what();
        }
        const bool failed = !r.ok;
        {
            std::lock_guard<std::mutex> lk(q.mtx);
            results[i] = std::move(r);
            if (progress)
                progress(results[i]);
        }
        if (failed)
            q.cancelled.store(true); // fatal: stop claiming further jobs
    }
}

std::vector<JobResult>
ExperimentPool::run(const std::vector<JobSpec> &jobs,
                    const Progress &progress)
{
    std::vector<JobResult> results(jobs.size());
    // Pre-mark everything cancelled; executed jobs overwrite their slot.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        results[i].index = jobs[i].index;
        results[i].suite = jobs[i].suite;
        results[i].row = jobs[i].row;
        results[i].col = jobs[i].col;
        results[i].kind = jobs[i].kind;
        results[i].ok = false;
        results[i].error = "cancelled";
    }

    Queue q;
    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(threads_, jobs.size()));
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        workers.emplace_back([&] { worker(q, jobs, results, progress); });

    for (auto &w : workers)
        w.join();
    return results;
}

std::vector<JobSpec>
shardJobs(std::vector<JobSpec> jobs, unsigned shard_index,
          unsigned shard_count)
{
    if (shard_count == 0 || shard_index >= shard_count)
        fatal("bad shard %u/%u", shard_index, shard_count);
    if (shard_count == 1)
        return jobs;
    std::vector<JobSpec> mine;
    for (std::size_t k = 0; k < jobs.size(); ++k)
        if (k % shard_count == shard_index)
            mine.push_back(std::move(jobs[k]));
    return mine;
}

} // namespace mtrap::harness

#include "harness/sweep.hh"

#include "common/log.hh"

namespace mtrap::harness
{

SweepBuilder::SweepBuilder(std::string suite) : suite_(std::move(suite)) {}

SweepBuilder &
SweepBuilder::options(const RunOptions &opt)
{
    opt_ = opt;
    return *this;
}

SweepBuilder &
SweepBuilder::seed(std::uint64_t s)
{
    seed_ = s;
    return *this;
}

SweepBuilder &
SweepBuilder::workloads(const std::vector<std::string> &names)
{
    for (const std::string &name : names) {
        rows_.push_back(Row{name, {name}});
        rowLabels_.push_back(name);
    }
    return *this;
}

SweepBuilder &
SweepBuilder::mixRow(const std::string &label,
                     const std::vector<std::string> &names)
{
    if (names.empty())
        fatal("sweep '%s': empty mix row '%s'", suite_.c_str(),
              label.c_str());
    rows_.push_back(Row{label, names});
    rowLabels_.push_back(label);
    return *this;
}

SweepBuilder &
SweepBuilder::schedule(const SchedParams &p, unsigned cores)
{
    if (cores == 0)
        fatal("sweep '%s': scheduled sweep needs cores", suite_.c_str());
    scheduled_ = true;
    sched_ = p;
    schedCores_ = cores;
    return *this;
}

SweepBuilder &
SweepBuilder::withBaseline()
{
    baseline_ = true;
    return *this;
}

SweepBuilder &
SweepBuilder::scheme(Scheme s)
{
    Column c;
    c.label = schemeName(s);
    c.configName = schemeName(s);
    c.cfg = SystemConfig::forScheme(s, 1);
    labels_.push_back(c.label);
    cols_.push_back(std::move(c));
    return *this;
}

SweepBuilder &
SweepBuilder::schemes(const std::vector<Scheme> &ss)
{
    for (Scheme s : ss)
        scheme(s);
    return *this;
}

SweepBuilder &
SweepBuilder::config(std::string label, std::string config_name,
                     const SystemConfig &cfg)
{
    Column c;
    c.label = std::move(label);
    c.configName = std::move(config_name);
    c.cfg = cfg;
    labels_.push_back(c.label);
    cols_.push_back(std::move(c));
    return *this;
}

SweepBuilder &
SweepBuilder::filterSizes(const std::vector<std::uint64_t> &sizes)
{
    for (std::uint64_t size : sizes) {
        SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 1);
        cfg.mem.mt.dataParams.sizeBytes = size;
        cfg.mem.mt.dataParams.assoc =
            static_cast<unsigned>(size / kLineBytes); // fully assoc.
        config(strfmt("%lluB", static_cast<unsigned long long>(size)),
               strfmt("fc%llu", static_cast<unsigned long long>(size)),
               cfg);
    }
    return *this;
}

SweepBuilder &
SweepBuilder::filterAssocs(const std::vector<unsigned> &assocs,
                           std::uint64_t size_bytes)
{
    for (unsigned assoc : assocs) {
        SystemConfig cfg = SystemConfig::forScheme(Scheme::MuonTrap, 1);
        cfg.mem.mt.dataParams.sizeBytes = size_bytes;
        cfg.mem.mt.dataParams.assoc = assoc;
        config(strfmt("%u-way", assoc), strfmt("a%u", assoc), cfg);
    }
    return *this;
}

SweepBuilder &
SweepBuilder::collect(std::function<void(System &, JobResult &)> fn)
{
    collect_ = std::move(fn);
    return *this;
}

std::vector<JobSpec>
SweepBuilder::build() const
{
    if (rows_.empty())
        fatal("sweep '%s': no workloads", suite_.c_str());
    if (cols_.empty())
        fatal("sweep '%s': no columns", suite_.c_str());

    std::vector<JobSpec> jobs;
    jobs.reserve(rows_.size() * (cols_.size() + (baseline_ ? 1 : 0)));

    auto add = [&](const Row &row, const std::string &col,
                   const std::string &kind, const std::string &config_name,
                   const SystemConfig &cfg) {
        JobSpec j;
        j.index = jobs.size();
        j.suite = suite_;
        j.row = row.label;
        j.col = col;
        j.kind = kind;
        const std::uint64_t wl_seed = seed_; // same workload across cols
        if (scheduled_) {
            j.scheduled = true;
            j.sched = sched_;
            j.cfg = cfg;
            j.cfg.cores = std::max(j.cfg.cores, schedCores_);
            // Distinct asids: mix members are separate processes.
            for (std::size_t m = 0; m < row.names.size(); ++m) {
                const std::string name = row.names[m];
                const Asid asid = static_cast<Asid>(m + 1);
                j.mix.push_back([name, wl_seed, asid] {
                    return buildNamedWorkload(name, wl_seed, asid);
                });
            }
        } else {
            if (row.names.size() != 1)
                fatal("sweep '%s': mix row '%s' needs schedule()",
                      suite_.c_str(), row.label.c_str());
            const std::string name = row.names[0];
            j.workload = [name, wl_seed] {
                return buildNamedWorkload(name, wl_seed);
            };
            j.cfg = cfg;
        }
        j.configName = config_name;
        j.opt = opt_;
        j.opt.seed = jobSeed(seed_, j.index);
        if (kind != "baseline")
            j.collect = collect_;
        jobs.push_back(std::move(j));
    };

    const SystemConfig base_cfg =
        SystemConfig::forScheme(Scheme::Baseline, 1);
    for (const Row &row : rows_) {
        if (baseline_)
            add(row, schemeName(Scheme::Baseline), "baseline",
                schemeName(Scheme::Baseline), base_cfg);
        for (const Column &c : cols_)
            add(row, c.label, "run", c.configName, c.cfg);
    }
    return jobs;
}

} // namespace mtrap::harness

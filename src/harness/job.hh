/**
 * @file
 * Job model of the parallel experiment harness.
 *
 * A JobSpec is one self-contained simulation: it carries a workload
 * factory (the workload is built inside the worker so expensive program
 * generation parallelises too), a full SystemConfig, run options with a
 * per-job deterministic seed, and presentation metadata (suite / row /
 * column) that the sweep renderers and the ResultStore use to place the
 * result. Jobs never share state, so results are identical no matter
 * how many threads execute them or in what order.
 */

#ifndef MTRAP_HARNESS_JOB_HH
#define MTRAP_HARNESS_JOB_HH

#include <cstddef>
#include <functional>
#include <map>
#include <string>

#include "sim/runner.hh"
#include "sim/system.hh"

namespace mtrap::harness
{

struct JobResult;

/** One experiment: everything a worker thread needs to produce one
 *  RunResult (plus optional extra metrics). */
struct JobSpec
{
    /** Global submission index; survives sharding so shard outputs can
     *  be merged back into one deterministic sequence. */
    std::size_t index = 0;

    // Presentation metadata.
    std::string suite;            ///< e.g. "fig5"
    std::string row;              ///< e.g. benchmark name
    std::string col;              ///< e.g. scheme or config label
    /** "baseline" rows anchor normalisation; everything else is "run". */
    std::string kind = "run";

    /** Builds the workload inside the worker (deterministic). */
    std::function<Workload()> workload;
    SystemConfig cfg;
    std::string configName = "custom";
    RunOptions opt;

    /**
     * Multiprogrammed job: when `scheduled` is set, every factory in
     * `mix` is built inside the worker and the whole mix time-shares
     * cfg.cores cores under the gang scheduler (`sched`), via
     * runMixConfigured. `workload` is ignored in that case.
     */
    bool scheduled = false;
    std::vector<std::function<Workload()>> mix;
    SchedParams sched;

    /** Post-run stats probe (e.g. figure 7's bus counters). */
    std::function<void(System &, JobResult &)> collect;

    /**
     * Escape hatch for experiments that are not a single configured run
     * (the security matrix's attack choreography). When set, the pool
     * calls this instead of the standard runner; metadata and index are
     * filled in by the pool afterwards.
     */
    std::function<JobResult(const JobSpec &)> custom;

    /**
     * When set, the job runs with a Tracer attached and writes Chrome
     * trace-event JSON here after the run (mtrap_batch --trace-dir).
     * Trace contents are deterministic, so the file is identical no
     * matter which worker thread produced it.
     */
    std::string tracePath;
};

/** Outcome of one job, in submission order. */
struct JobResult
{
    std::size_t index = 0;
    std::string suite, row, col, kind;

    RunResult run;
    /** Extra named metrics from JobSpec::collect (sorted => stable
     *  serialisation). */
    std::map<std::string, double> metrics;
    /** Free-form annotation (e.g. "LEAK"/"blocked"). */
    std::string note;

    bool ok = true;
    std::string error;

    // Host-side telemetry (progress reporting only — never serialised
    // into result artifacts, which must stay machine-independent).
    /** Wall-clock seconds the worker spent on this job. */
    double wallSeconds = 0.0;
    /** Total committed instructions the job simulated (measured phase,
     *  summed over cores for scheduled jobs). */
    std::uint64_t instructions = 0;
};

/** Execute one job synchronously (exceptions propagate to the pool). */
JobResult runJob(const JobSpec &job);

/**
 * Build a bundled workload by name (SPEC-like or Parsec-like; fatal on
 * unknown names). A nonzero `seed` is mixed into the profile's
 * generation seed, re-randomising the synthetic program reproducibly —
 * the same path mtrap_sim --seed and harness jobs use. `asid` selects
 * the process's address space (multiprogrammed mixes give each job its
 * own).
 */
Workload buildNamedWorkload(const std::string &name, std::uint64_t seed = 0,
                            Asid asid = 1);

/** Per-job seed derived from a global sweep seed; 0 stays 0 so unseeded
 *  sweeps reproduce the legacy single-threaded results exactly. */
std::uint64_t jobSeed(std::uint64_t sweep_seed, std::size_t index);

} // namespace mtrap::harness

#endif // MTRAP_HARNESS_JOB_HH

#include "harness/job.hh"

#include <chrono>
#include <stdexcept>

#include "common/checked_io.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "trace/chrome_trace.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace mtrap::harness
{

namespace
{

/** Dump the attached tracer's capture for a --trace-dir job. */
void
writeJobTrace(const JobSpec &job, RunOutput &out)
{
    if (job.tracePath.empty())
        return;
    CheckedOfstream f(job.tracePath, "job trace");
    writeChromeTrace(*out.system->tracer(), out.statSeries.get(),
                     f.stream());
    f.finish();
}

/** Wall-clock seconds since `t0` (host telemetry only). */
double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

JobResult
runJob(const JobSpec &spec)
{
    const auto t0 = std::chrono::steady_clock::now();
    JobSpec job = spec;
    if (!job.tracePath.empty())
        job.opt.trace = true;
    JobResult r;
    r.index = job.index;
    r.suite = job.suite;
    r.row = job.row;
    r.col = job.col;
    r.kind = job.kind;

    if (job.custom) {
        JobResult custom = job.custom(job);
        custom.index = job.index;
        custom.suite = job.suite;
        custom.row = job.row;
        custom.col = job.col;
        custom.kind = job.kind;
        custom.wallSeconds = secondsSince(t0);
        return custom;
    }

    if (job.scheduled) {
        if (job.mix.empty())
            throw std::runtime_error("scheduled job "
                                     + std::to_string(job.index)
                                     + " has an empty mix");
        std::vector<Workload> mix;
        mix.reserve(job.mix.size());
        for (const auto &factory : job.mix)
            mix.push_back(factory());
        RunOutput out = runMixConfigured(mix, job.cfg, job.sched,
                                         job.opt, job.configName);
        r.run = out.result;
        if (job.collect)
            job.collect(*out.system, r);
        writeJobTrace(job, out);
        r.instructions = out.result.instructionsPerCore
                         * out.system->numCores();
        r.wallSeconds = secondsSince(t0);
        return r;
    }

    if (!job.workload)
        throw std::runtime_error("job " + std::to_string(job.index)
                                 + " has neither workload nor custom fn");

    const Workload w = job.workload();
    RunOutput out = runConfigured(w, job.cfg, job.opt, job.configName);
    r.run = out.result;
    if (job.collect)
        job.collect(*out.system, r);
    writeJobTrace(job, out);
    r.instructions = out.result.instructionsPerCore
                     * out.system->numCores();
    r.wallSeconds = secondsSince(t0);
    return r;
}

Workload
buildNamedWorkload(const std::string &name, std::uint64_t seed, Asid asid)
{
    for (const std::string &n : specBenchmarkNames()) {
        if (n == name) {
            WorkloadProfile p = specProfile(name);
            if (seed)
                p.seed = mixSeeds(p.seed, seed);
            return buildWorkload(p, asid);
        }
    }
    for (const std::string &n : parsecBenchmarkNames()) {
        if (n == name) {
            WorkloadProfile p = parsecProfile(name);
            if (seed)
                p.seed = mixSeeds(p.seed, seed);
            return buildWorkload(p, asid);
        }
    }
    fatal("unknown workload '%s' (try --list)", name.c_str());
}

std::uint64_t
jobSeed(std::uint64_t sweep_seed, std::size_t index)
{
    if (!sweep_seed)
        return 0;
    return mixSeeds(sweep_seed, 0x6a09e667f3bcc909ull + index);
}

} // namespace mtrap::harness

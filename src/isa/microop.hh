/**
 * @file
 * The simulator's micro-ISA.
 *
 * Workloads and attack kernels are small programs over 32 integer
 * registers. The ISA is deliberately minimal but expressive enough for
 * Spectre gadgets: loads/stores with base+index addressing, ALU ops
 * (including masks and shifts for secret-dependent address formation),
 * conditional branches, BTB-predicted indirect jumps, call/return, and
 * the protection-domain pseudo-ops MuonTrap reacts to (Syscall,
 * SandboxEnter/Exit, FlushBarrier).
 */

#ifndef MTRAP_ISA_MICROOP_HH
#define MTRAP_ISA_MICROOP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mtrap
{

/** Number of architectural integer registers. */
inline constexpr unsigned kNumRegs = 32;

/** Register index sentinel: operand unused. */
inline constexpr std::uint8_t kNoReg = 0xff;

/** Primary operation class (selects functional unit and semantics). */
enum class OpType : std::uint8_t
{
    Nop,
    IntAlu,         ///< 1-cycle integer op (AluOp selects semantics)
    IntMul,         ///< 3-cycle multiply
    IntDiv,         ///< 12-cycle divide
    FpAlu,          ///< 3-cycle floating-point op (modelled on ints)
    Load,           ///< memory read, addr = r[base] + imm + r[index]<<scale
    Store,          ///< memory write of r[src1] to the same address form
    Branch,         ///< conditional, relative target
    Jump,           ///< indirect, target index = r[base] (BTB predicted)
    Call,           ///< direct call, pushes return address on the RAS
    Ret,            ///< return, target from RAS
    Syscall,        ///< kernel entry: serialising; MuonTrap flushes filters
    SandboxEnter,   ///< protection-domain switch into a sandbox
    SandboxExit,    ///< protection-domain switch out of a sandbox
    FlushBarrier,   ///< non-speculation barrier + filter flush (§4.9)
    Halt,           ///< end of program
};

/** Sub-operation for IntAlu/IntMul/IntDiv/FpAlu. */
enum class AluOp : std::uint8_t
{
    Add, Sub, And, Or, Xor, Shl, Shr, Mov, MovImm, Mul, Div,
};

/** Branch condition: compare r[src1] against r[src2] (or imm if src2 is
 *  kNoReg). */
enum class BranchCond : std::uint8_t
{
    Eq, Ne, Lt, Ge, Ult, Uge, Always,
};

/** Name helpers for disassembly/tracing. */
const char *opTypeName(OpType t);
const char *aluOpName(AluOp o);
const char *branchCondName(BranchCond c);

/** One static micro-op. */
struct MicroOp
{
    OpType type = OpType::Nop;
    AluOp alu = AluOp::Add;
    BranchCond cond = BranchCond::Always;

    std::uint8_t dst = kNoReg;
    std::uint8_t src1 = kNoReg;
    std::uint8_t src2 = kNoReg;

    /** ALU immediate / branch displacement (in instruction slots) /
     *  call target. */
    std::int64_t imm = 0;

    /** Memory addressing: vaddr = r[base] + imm + (r[index] << scale). */
    std::uint8_t base = kNoReg;
    std::uint8_t index = kNoReg;
    std::uint8_t scale = 0;

    bool isMem() const { return type == OpType::Load ||
                                type == OpType::Store; }
    bool
    isCtrl() const
    {
        return type == OpType::Branch || type == OpType::Jump ||
               type == OpType::Call || type == OpType::Ret;
    }
    /** Ops that drain the pipeline before younger work may fetch. */
    bool
    isSerializing() const
    {
        return type == OpType::Syscall || type == OpType::SandboxEnter ||
               type == OpType::SandboxExit ||
               type == OpType::FlushBarrier || type == OpType::Halt;
    }

    /** One-line disassembly for debugging. */
    std::string disassemble() const;
};

/** Execution latency (cycles in the functional unit) for an op type. */
Cycle opLatency(OpType t);

} // namespace mtrap

#endif // MTRAP_ISA_MICROOP_HH

#include "isa/program.hh"

#include <atomic>

#include "common/log.hh"

namespace mtrap
{

ProgramBuilder::ProgramBuilder(std::string name, Addr code_base)
{
    prog_.name = std::move(name);
    prog_.codeBase = code_base;
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    if (labels_.count(name))
        fatal("duplicate label '%s' in %s", name.c_str(),
              prog_.name.c_str());
    labels_[name] = here();
    return *this;
}

ProgramBuilder &
ProgramBuilder::emit(const MicroOp &op)
{
    ops_.push_back(op);
    return *this;
}

ProgramBuilder &
ProgramBuilder::movi(unsigned rd, std::int64_t value)
{
    MicroOp op;
    op.type = OpType::IntAlu;
    op.alu = AluOp::MovImm;
    op.dst = static_cast<std::uint8_t>(rd);
    op.imm = value;
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::mov(unsigned rd, unsigned rs)
{
    MicroOp op;
    op.type = OpType::IntAlu;
    op.alu = AluOp::Mov;
    op.dst = static_cast<std::uint8_t>(rd);
    op.src1 = static_cast<std::uint8_t>(rs);
    return emit(op);
}

namespace
{

MicroOp
aluOp3(AluOp alu, unsigned rd, unsigned ra, unsigned rb, OpType t)
{
    MicroOp op;
    op.type = t;
    op.alu = alu;
    op.dst = static_cast<std::uint8_t>(rd);
    op.src1 = static_cast<std::uint8_t>(ra);
    op.src2 = static_cast<std::uint8_t>(rb);
    return op;
}

MicroOp
aluOpImm(AluOp alu, unsigned rd, unsigned ra, std::int64_t imm)
{
    MicroOp op;
    op.type = OpType::IntAlu;
    op.alu = alu;
    op.dst = static_cast<std::uint8_t>(rd);
    op.src1 = static_cast<std::uint8_t>(ra);
    op.imm = imm;
    return op;
}

} // namespace

ProgramBuilder &
ProgramBuilder::add(unsigned rd, unsigned ra, unsigned rb)
{
    return emit(aluOp3(AluOp::Add, rd, ra, rb, OpType::IntAlu));
}

ProgramBuilder &
ProgramBuilder::addi(unsigned rd, unsigned ra, std::int64_t imm)
{
    return emit(aluOpImm(AluOp::Add, rd, ra, imm));
}

ProgramBuilder &
ProgramBuilder::sub(unsigned rd, unsigned ra, unsigned rb)
{
    return emit(aluOp3(AluOp::Sub, rd, ra, rb, OpType::IntAlu));
}

ProgramBuilder &
ProgramBuilder::andi(unsigned rd, unsigned ra, std::int64_t imm)
{
    return emit(aluOpImm(AluOp::And, rd, ra, imm));
}

ProgramBuilder &
ProgramBuilder::ori(unsigned rd, unsigned ra, std::int64_t imm)
{
    return emit(aluOpImm(AluOp::Or, rd, ra, imm));
}

ProgramBuilder &
ProgramBuilder::xori(unsigned rd, unsigned ra, std::int64_t imm)
{
    return emit(aluOpImm(AluOp::Xor, rd, ra, imm));
}

ProgramBuilder &
ProgramBuilder::shli(unsigned rd, unsigned ra, unsigned amount)
{
    return emit(aluOpImm(AluOp::Shl, rd, ra,
                         static_cast<std::int64_t>(amount)));
}

ProgramBuilder &
ProgramBuilder::shri(unsigned rd, unsigned ra, unsigned amount)
{
    return emit(aluOpImm(AluOp::Shr, rd, ra,
                         static_cast<std::int64_t>(amount)));
}

ProgramBuilder &
ProgramBuilder::mul(unsigned rd, unsigned ra, unsigned rb)
{
    return emit(aluOp3(AluOp::Mul, rd, ra, rb, OpType::IntMul));
}

ProgramBuilder &
ProgramBuilder::div(unsigned rd, unsigned ra, unsigned rb)
{
    return emit(aluOp3(AluOp::Div, rd, ra, rb, OpType::IntDiv));
}

ProgramBuilder &
ProgramBuilder::fp(unsigned rd, unsigned ra, unsigned rb)
{
    return emit(aluOp3(AluOp::Add, rd, ra, rb, OpType::FpAlu));
}

ProgramBuilder &
ProgramBuilder::nop()
{
    MicroOp op;
    op.type = OpType::Nop;
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::load(unsigned rd, unsigned base, std::int64_t imm,
                     unsigned index, unsigned scale)
{
    MicroOp op;
    op.type = OpType::Load;
    op.dst = static_cast<std::uint8_t>(rd);
    op.base = static_cast<std::uint8_t>(base);
    op.imm = imm;
    op.index = static_cast<std::uint8_t>(index);
    op.scale = static_cast<std::uint8_t>(scale);
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::store(unsigned rs, unsigned base, std::int64_t imm,
                      unsigned index, unsigned scale)
{
    MicroOp op;
    op.type = OpType::Store;
    op.src1 = static_cast<std::uint8_t>(rs);
    op.base = static_cast<std::uint8_t>(base);
    op.imm = imm;
    op.index = static_cast<std::uint8_t>(index);
    op.scale = static_cast<std::uint8_t>(scale);
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::branchTo(BranchCond cond, unsigned ra, unsigned rb,
                         const std::string &target)
{
    MicroOp op;
    op.type = OpType::Branch;
    op.cond = cond;
    op.src1 = static_cast<std::uint8_t>(ra);
    op.src2 = static_cast<std::uint8_t>(rb);
    fixups_.emplace_back(here(), target);
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::bra(const std::string &target)
{
    return branchTo(BranchCond::Always, kNoReg, kNoReg, target);
}

ProgramBuilder &
ProgramBuilder::braCond(BranchCond cond, unsigned ra, unsigned rb,
                        const std::string &target)
{
    return branchTo(cond, ra, rb, target);
}

ProgramBuilder &
ProgramBuilder::braEq(const std::string &t, unsigned ra, unsigned rb)
{
    return branchTo(BranchCond::Eq, ra, rb, t);
}

ProgramBuilder &
ProgramBuilder::braNe(const std::string &t, unsigned ra, unsigned rb)
{
    return branchTo(BranchCond::Ne, ra, rb, t);
}

ProgramBuilder &
ProgramBuilder::braLt(const std::string &t, unsigned ra, unsigned rb)
{
    return branchTo(BranchCond::Lt, ra, rb, t);
}

ProgramBuilder &
ProgramBuilder::braGe(const std::string &t, unsigned ra, unsigned rb)
{
    return branchTo(BranchCond::Ge, ra, rb, t);
}

ProgramBuilder &
ProgramBuilder::braUlt(const std::string &t, unsigned ra, unsigned rb)
{
    return branchTo(BranchCond::Ult, ra, rb, t);
}

ProgramBuilder &
ProgramBuilder::braUge(const std::string &t, unsigned ra, unsigned rb)
{
    return branchTo(BranchCond::Uge, ra, rb, t);
}

ProgramBuilder &
ProgramBuilder::jumpReg(unsigned base)
{
    MicroOp op;
    op.type = OpType::Jump;
    op.base = static_cast<std::uint8_t>(base);
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::call(const std::string &target)
{
    MicroOp op;
    op.type = OpType::Call;
    fixups_.emplace_back(here(), target);
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::ret()
{
    MicroOp op;
    op.type = OpType::Ret;
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::syscall()
{
    MicroOp op;
    op.type = OpType::Syscall;
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::sandboxEnter()
{
    MicroOp op;
    op.type = OpType::SandboxEnter;
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::sandboxExit()
{
    MicroOp op;
    op.type = OpType::SandboxExit;
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::flushBarrier()
{
    MicroOp op;
    op.type = OpType::FlushBarrier;
    return emit(op);
}

ProgramBuilder &
ProgramBuilder::halt()
{
    MicroOp op;
    op.type = OpType::Halt;
    return emit(op);
}

std::uint64_t
ProgramBuilder::labelIndex(const std::string &name) const
{
    auto it = labels_.find(name);
    if (it == labels_.end())
        fatal("unknown label '%s' in %s", name.c_str(),
              prog_.name.c_str());
    return it->second;
}

Program
ProgramBuilder::take()
{
    if (taken_)
        panic("ProgramBuilder::take() called twice");
    taken_ = true;
    for (const auto &[idx, name] : fixups_) {
        const std::uint64_t target = labelIndex(name);
        MicroOp &op = ops_[idx];
        if (op.type == OpType::Branch) {
            op.imm = static_cast<std::int64_t>(target)
                     - static_cast<std::int64_t>(idx);
        } else { // Call: absolute target
            op.imm = static_cast<std::int64_t>(target);
        }
    }
    prog_.ops = std::move(ops_);
    // Unique per take() across all threads (harness workers build
    // programs concurrently); see Program::buildId.
    static std::atomic<std::uint64_t> next_build_id{1};
    prog_.buildId =
        next_build_id.fetch_add(1, std::memory_order_relaxed);
    if (prog_.ops.empty() || prog_.ops.back().type != OpType::Halt)
        warn("program %s does not end with halt", prog_.name.c_str());
    return std::move(prog_);
}

} // namespace mtrap

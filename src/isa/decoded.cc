#include "isa/decoded.hh"

#include "common/log.hh"

namespace mtrap
{

OpKind
opKindOf(const MicroOp &op)
{
    switch (op.type) {
      case OpType::Nop: return OpKind::Nop;
      case OpType::IntAlu:
      case OpType::IntMul:
      case OpType::IntDiv:
      case OpType::FpAlu: return OpKind::Alu;
      case OpType::Load: return OpKind::Load;
      case OpType::Store: return OpKind::Store;
      case OpType::Branch:
        return op.cond == BranchCond::Always ? OpKind::BraAlways
                                             : OpKind::BraCond;
      case OpType::Jump: return OpKind::Jump;
      case OpType::Call: return OpKind::Call;
      case OpType::Ret: return OpKind::Ret;
      case OpType::Syscall:
      case OpType::SandboxEnter:
      case OpType::SandboxExit:
      case OpType::FlushBarrier:
      case OpType::Halt: return OpKind::Serial;
    }
    panic("opKindOf: bad op type %u", static_cast<unsigned>(op.type));
}

DecodedProgram
decodeProgram(const Program &prog)
{
    DecodedProgram d;
    d.source = &prog;
    d.ops.reserve(prog.ops.size());
    for (std::uint64_t pc = 0; pc < prog.ops.size(); ++pc) {
        const MicroOp &op = prog.ops[pc];
        DecodedOp o;
        o.kind = opKindOf(op);
        o.type = op.type;
        o.alu = op.alu;
        o.cond = op.cond;
        o.dst = op.dst;
        o.src1 = op.src1;
        o.src2 = op.src2;
        o.base = op.base;
        o.index = op.index;
        o.scale = op.scale;
        o.imm = op.imm;
        o.latency = static_cast<std::uint8_t>(opLatency(op.type));
        switch (op.type) {
          case OpType::FpAlu: o.fuSel = kFuFp; break;
          case OpType::IntMul:
          case OpType::IntDiv: o.fuSel = kFuMul; break;
          default: o.fuSel = kFuInt; break;
        }
        switch (o.kind) {
          case OpKind::BraAlways:
          case OpKind::BraCond:
            // Same arithmetic as the reference path's taken_pc; stored
            // over the now-consumed displacement.
            o.imm = static_cast<std::int64_t>(pc) + op.imm;
            break;
          case OpKind::Call:
            // Call displacements are already absolute targets.
            break;
          default:
            break;
        }
        d.ops.push_back(o);
    }
    return d;
}

} // namespace mtrap

/**
 * @file
 * Programs and the fluent ProgramBuilder used by workloads and attacks.
 *
 * A Program is a vector of MicroOps plus metadata (name, code base
 * virtual address, entry point). PCs are instruction indices; the
 * instruction-fetch path converts them to virtual addresses as
 * codeBase + 4 * index.
 */

#ifndef MTRAP_ISA_PROGRAM_HH
#define MTRAP_ISA_PROGRAM_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "isa/microop.hh"

namespace mtrap
{

/** A complete program for one hardware context. */
struct Program
{
    std::string name = "prog";
    /** Virtual base address of the code (for I-cache behaviour). */
    Addr codeBase = 0x400000;
    /** Entry instruction index. */
    std::uint64_t entry = 0;
    std::vector<MicroOp> ops;

    /**
     * Identity stamp assigned by ProgramBuilder::take() (0 for
     * hand-assembled Programs). Core's per-program decode cache keys on
     * (address, ops storage, size, buildId), so a builder-produced
     * program destroyed and replaced by a different same-sized one at
     * the same addresses can never resurrect a stale decode. Copies
     * share the stamp — they are byte-identical at copy time; do not
     * mutate a Program's ops after it has started executing.
     */
    std::uint64_t buildId = 0;

    std::uint64_t size() const { return ops.size(); }

    /** Virtual address of the instruction at `pc_index`. */
    Addr
    pcToVaddr(std::uint64_t pc_index) const
    {
        return codeBase + 4 * pc_index;
    }
};

/**
 * Fluent builder with label/fixup support.
 *
 * Usage:
 * @code
 *   ProgramBuilder b("loop");
 *   b.movi(1, 0);                 // r1 = 0
 *   b.label("top");
 *   b.load(2, 1, 0x1000);         // r2 = mem[r1 + 0x1000]
 *   b.addi(1, 1, 8);
 *   b.braLt("top", 1, 3);         // while (r1 < r3)
 *   b.halt();
 *   Program p = b.take();
 * @endcode
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name, Addr code_base = 0x400000);

    /** Current instruction index (next op's PC). */
    std::uint64_t here() const { return ops_.size(); }

    /** Bind `name` to the current position. */
    ProgramBuilder &label(const std::string &name);

    // --- ALU -----------------------------------------------------------
    ProgramBuilder &movi(unsigned rd, std::int64_t value);
    ProgramBuilder &mov(unsigned rd, unsigned rs);
    ProgramBuilder &add(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &addi(unsigned rd, unsigned ra, std::int64_t imm);
    ProgramBuilder &sub(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &andi(unsigned rd, unsigned ra, std::int64_t imm);
    ProgramBuilder &ori(unsigned rd, unsigned ra, std::int64_t imm);
    ProgramBuilder &xori(unsigned rd, unsigned ra, std::int64_t imm);
    ProgramBuilder &shli(unsigned rd, unsigned ra, unsigned amount);
    ProgramBuilder &shri(unsigned rd, unsigned ra, unsigned amount);
    ProgramBuilder &mul(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &div(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &fp(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &nop();

    // --- Memory ---------------------------------------------------------
    /** rd = mem[r[base] + imm + (r[index] << scale)] */
    ProgramBuilder &load(unsigned rd, unsigned base, std::int64_t imm = 0,
                         unsigned index = kNoReg, unsigned scale = 0);
    /** mem[r[base] + imm + (r[index] << scale)] = r[rs] */
    ProgramBuilder &store(unsigned rs, unsigned base, std::int64_t imm = 0,
                          unsigned index = kNoReg, unsigned scale = 0);

    // --- Control --------------------------------------------------------
    ProgramBuilder &bra(const std::string &target);
    ProgramBuilder &braCond(BranchCond cond, unsigned ra, unsigned rb,
                            const std::string &target);
    ProgramBuilder &braEq(const std::string &t, unsigned ra, unsigned rb);
    ProgramBuilder &braNe(const std::string &t, unsigned ra, unsigned rb);
    ProgramBuilder &braLt(const std::string &t, unsigned ra, unsigned rb);
    ProgramBuilder &braGe(const std::string &t, unsigned ra, unsigned rb);
    ProgramBuilder &braUlt(const std::string &t, unsigned ra, unsigned rb);
    ProgramBuilder &braUge(const std::string &t, unsigned ra, unsigned rb);
    /** Indirect jump to the instruction index held in r[base]. */
    ProgramBuilder &jumpReg(unsigned base);
    ProgramBuilder &call(const std::string &target);
    ProgramBuilder &ret();

    // --- System ---------------------------------------------------------
    ProgramBuilder &syscall();
    ProgramBuilder &sandboxEnter();
    ProgramBuilder &sandboxExit();
    ProgramBuilder &flushBarrier();
    ProgramBuilder &halt();

    /** Append a raw op (escape hatch). */
    ProgramBuilder &emit(const MicroOp &op);

    /** Resolve the index of a label (fatal if unknown). */
    std::uint64_t labelIndex(const std::string &name) const;

    /** Finish: resolve fixups and move the program out. */
    Program take();

  private:
    ProgramBuilder &branchTo(BranchCond cond, unsigned ra, unsigned rb,
                             const std::string &target);

    Program prog_;
    std::vector<MicroOp> ops_;
    std::unordered_map<std::string, std::uint64_t> labels_;
    /** (op index, label) pairs needing displacement resolution. */
    std::vector<std::pair<std::uint64_t, std::string>> fixups_;
    bool taken_ = false;
};

} // namespace mtrap

#endif // MTRAP_ISA_PROGRAM_HH

#include "isa/microop.hh"

#include "common/log.hh"

namespace mtrap
{

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::Nop: return "nop";
      case OpType::IntAlu: return "alu";
      case OpType::IntMul: return "mul";
      case OpType::IntDiv: return "div";
      case OpType::FpAlu: return "fp";
      case OpType::Load: return "ld";
      case OpType::Store: return "st";
      case OpType::Branch: return "br";
      case OpType::Jump: return "jmp";
      case OpType::Call: return "call";
      case OpType::Ret: return "ret";
      case OpType::Syscall: return "syscall";
      case OpType::SandboxEnter: return "sbenter";
      case OpType::SandboxExit: return "sbexit";
      case OpType::FlushBarrier: return "fbar";
      case OpType::Halt: return "halt";
    }
    return "?";
}

const char *
aluOpName(AluOp o)
{
    switch (o) {
      case AluOp::Add: return "add";
      case AluOp::Sub: return "sub";
      case AluOp::And: return "and";
      case AluOp::Or: return "or";
      case AluOp::Xor: return "xor";
      case AluOp::Shl: return "shl";
      case AluOp::Shr: return "shr";
      case AluOp::Mov: return "mov";
      case AluOp::MovImm: return "movi";
      case AluOp::Mul: return "mul";
      case AluOp::Div: return "div";
    }
    return "?";
}

const char *
branchCondName(BranchCond c)
{
    switch (c) {
      case BranchCond::Eq: return "eq";
      case BranchCond::Ne: return "ne";
      case BranchCond::Lt: return "lt";
      case BranchCond::Ge: return "ge";
      case BranchCond::Ult: return "ult";
      case BranchCond::Uge: return "uge";
      case BranchCond::Always: return "al";
    }
    return "?";
}

Cycle
opLatency(OpType t)
{
    switch (t) {
      case OpType::Nop: return 1;
      case OpType::IntAlu: return 1;
      case OpType::IntMul: return 3;
      case OpType::IntDiv: return 12;
      case OpType::FpAlu: return 3;
      case OpType::Load: return 1;       // address generation only
      case OpType::Store: return 1;
      case OpType::Branch: return 1;
      case OpType::Jump: return 1;
      case OpType::Call: return 1;
      case OpType::Ret: return 1;
      case OpType::Syscall: return 50;   // trap overhead
      case OpType::SandboxEnter: return 10;
      case OpType::SandboxExit: return 10;
      case OpType::FlushBarrier: return 2;
      case OpType::Halt: return 1;
    }
    return 1;
}

std::string
MicroOp::disassemble() const
{
    switch (type) {
      case OpType::IntAlu:
      case OpType::FpAlu:
        return strfmt("%s r%u, r%u, r%u, #%lld", aluOpName(alu), dst, src1,
                      src2, static_cast<long long>(imm));
      case OpType::Load:
        return strfmt("ld r%u, [r%u + %lld + r%u<<%u]", dst, base,
                      static_cast<long long>(imm), index, scale);
      case OpType::Store:
        return strfmt("st r%u, [r%u + %lld + r%u<<%u]", src1, base,
                      static_cast<long long>(imm), index, scale);
      case OpType::Branch:
        return strfmt("br.%s r%u, r%u, %+lld", branchCondName(cond), src1,
                      src2, static_cast<long long>(imm));
      case OpType::Jump:
        return strfmt("jmp [r%u]", base);
      case OpType::Call:
        return strfmt("call %lld", static_cast<long long>(imm));
      default:
        return opTypeName(type);
    }
}

} // namespace mtrap

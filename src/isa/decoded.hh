/**
 * @file
 * Build-time decode stage: lowers a Program into a dense, pre-resolved
 * stream the core's fetch hot path can dispatch over without per-
 * instruction re-derivation.
 *
 * The interpreter's inner loop used to re-answer the same questions for
 * every fetched instruction: which functional unit class? what latency?
 * is it serializing? is the ALU second operand a register or the
 * immediate? where does this branch go if taken? DecodedProgram answers
 * them once, at program-build time, and stores the answers in a flat
 * 24-byte-per-op array (no wider than a MicroOp, so the decoded stream
 * costs no extra cache footprint on large-code workloads):
 *
 *  - `kind` collapses the 16 OpType values into the 10 dispatch cases
 *    the fetch path actually distinguishes (always-taken branches get
 *    their own case, the five serializing ops share one),
 *  - `fuSel`/`latency` pre-resolve the functional-unit pool and the
 *    execution latency,
 *  - `target` pre-computes the taken-branch / call destination (the
 *    per-fetch signed displacement add disappears),
 *  - operand indices, immediate, and addressing fields are copied so
 *    the hot loop touches exactly one cache line stream.
 *
 * The decoded path is a pure re-expression of Core::fetchOne: it must
 * produce bit-identical timing and statistics. tests/fuzz/ holds the
 * differential fuzzer that enforces this against the retained reference
 * interpreter (CoreParams::decodedFetch = false).
 */

#ifndef MTRAP_ISA_DECODED_HH
#define MTRAP_ISA_DECODED_HH

#include <vector>

#include "isa/program.hh"

namespace mtrap
{

/** Dispatch class of one decoded op — the cases Core::fetchOneDecoded
 *  switches over. Values are dense so the compiler emits a jump table. */
enum class OpKind : std::uint8_t
{
    Nop,
    Alu,        ///< IntAlu / IntMul / IntDiv / FpAlu (fuSel + latency)
    Load,
    Store,
    BraAlways,  ///< unconditional relative branch (no predictor access)
    BraCond,    ///< conditional branch (predict + train)
    Jump,       ///< BTB-predicted indirect jump
    Call,
    Ret,
    Serial,     ///< Syscall / Sandbox* / FlushBarrier / Halt
};

/** Functional-unit pool selector (index into Core's pool table). */
enum FuSel : std::uint8_t
{
    kFuInt = 0,
    kFuFp = 1,
    kFuMul = 2,
};

/** One pre-decoded micro-op (32 bytes). */
struct DecodedOp
{
    OpKind kind = OpKind::Nop;
    /** Original op class: WinEntry bookkeeping, serializing dispatch. */
    OpType type = OpType::Nop;
    AluOp alu = AluOp::Add;
    BranchCond cond = BranchCond::Always;

    std::uint8_t dst = kNoReg;
    std::uint8_t src1 = kNoReg;
    std::uint8_t src2 = kNoReg;

    /** Memory addressing (copied from MicroOp). */
    std::uint8_t base = kNoReg;
    std::uint8_t index = kNoReg;
    std::uint8_t scale = 0;

    /** Functional-unit pool for Alu kinds. */
    std::uint8_t fuSel = kFuInt;
    /** Pre-resolved opLatency(type) (all op latencies fit a byte). */
    std::uint8_t latency = 1;

    /**
     * ALU immediate / memory displacement (same role as MicroOp::imm) —
     * except for branches and calls, whose displacement is consumed at
     * decode: there this slot holds the pre-resolved control target
     * (taken PC for relative branches, absolute target for calls),
     * read through target(). Sharing the slot keeps the op at 24 bytes,
     * same as a MicroOp: the decoded stream must not cost extra cache
     * footprint on large-code workloads.
     */
    std::int64_t imm = 0;

    std::uint64_t target() const
    {
        return static_cast<std::uint64_t>(imm);
    }
};

static_assert(sizeof(DecodedOp) == 24, "DecodedOp must stay dense");

/** A Program lowered into its decoded stream. */
struct DecodedProgram
{
    /** The source program (names, code base, I-side addressing). The
     *  decode borrows it: the source must outlive the decode. */
    const Program *source = nullptr;
    std::vector<DecodedOp> ops;

    std::uint64_t size() const { return ops.size(); }
};

/** Classify one OpType into its dispatch kind (BranchCond::Always
 *  branches become BraAlways). */
OpKind opKindOf(const MicroOp &op);

/** Lower `prog` into its decoded form. */
DecodedProgram decodeProgram(const Program &prog);

} // namespace mtrap

#endif // MTRAP_ISA_DECODED_HH

/**
 * @file
 * Versioned binary System snapshots.
 *
 * Layout (all integers little-endian):
 *
 *   +----------------------------------------------------------+
 *   | magic "MTSN" | u32 endian tag 0x01020304 | u32 version   |
 *   | u64 config fingerprint | u64 context fingerprint         |
 *   +----------------------------------------------------------+
 *   | section: u32 tag | u64 length | payload bytes ...        |  (repeated)
 *   +----------------------------------------------------------+
 *   | u32 kTagEnd | u64 4 | u32 CRC-32 of every preceding byte |
 *   +----------------------------------------------------------+
 *
 * Sections appear in a fixed order (System::save defines it); each
 * stateful component writes its payload through the Serializer visitor
 * and reads it back through the Deserializer. The Deserializer
 * validates magic / endianness / version / fingerprints / CRC before
 * any component sees a byte, and bounds-checks every primitive read
 * against its enclosing section, so hostile or truncated files are
 * rejected with SnapshotError instead of invoking UB.
 *
 * Versioning policy: kFormatVersion bumps on ANY layout change — there
 * is no cross-version migration (snapshots are cheap to regenerate and
 * warm-state is config-coupled anyway). Restoring a snapshot whose
 * version, config fingerprint or context fingerprint differs from the
 * restoring process is an error.
 */

#ifndef MTRAP_SNAPSHOT_SNAPSHOT_HH
#define MTRAP_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace mtrap
{

/** Clean rejection of an unreadable / corrupt / mismatched snapshot. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &msg)
        : std::runtime_error("snapshot: " + msg)
    {}
};

/** Current snapshot format version; bump on any layout change.
 *  v2: scheduler Task/CoreState gained the open-system fields (service
 *  accounting, arrival/finish stamps, weights, sleep state, busy
 *  cycles). */
constexpr std::uint32_t kSnapshotFormatVersion = 2;

/** Section tags, one per top-level component (fixed save order). */
enum SnapshotTag : std::uint32_t {
    kTagEnd = 0,
    kTagMemSystem = 1,
    kTagCore = 2,      // one section per core, in core-id order
    kTagScheduler = 3, // present iff a scheduler is attached
    kTagTracer = 4,    // present iff a tracer is attached
    kTagStats = 5,
    /** Outer frame of an open-system server snapshot: admission count +
     *  the embedded System image (sim/arrival.hh). */
    kTagArrival = 6,
};

/** CRC-32 (IEEE 802.3, reflected) over `n` bytes, seeded by `crc`. */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t crc = 0);

/**
 * Byte-building save visitor. Components write primitives; sections
 * group one component's payload and back-patch their length.
 */
class Serializer
{
  public:
    Serializer() = default;

    void u8(std::uint8_t v) { raw(&v, 1); }
    void u16(std::uint16_t v) { raw(&v, 2); }
    void u32(std::uint32_t v) { raw(&v, 4); }
    void u64(std::uint64_t v) { raw(&v, 8); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        raw(s.data(), s.size());
    }

    /** Length-prefixed vector of any integral element type. */
    template <typename T>
    void
    vec(const std::vector<T> &v)
    {
        static_assert(std::is_integral_v<T>, "vec: integral only");
        u64(v.size());
        for (const T &x : v)
            u64(static_cast<std::uint64_t>(
                static_cast<std::make_unsigned_t<T>>(x)));
    }

    /** Length-prefixed vector<bool>. */
    void
    boolVec(const std::vector<bool> &v)
    {
        u64(v.size());
        for (bool x : v)
            u8(x ? 1 : 0);
    }

    /** Length-prefixed deque of an integral element type. */
    template <typename T>
    void
    deq(const std::deque<T> &d)
    {
        static_assert(std::is_integral_v<T>, "deq: integral only");
        u64(d.size());
        for (const T &x : d)
            u64(static_cast<std::uint64_t>(x));
    }

    /** Raw bytes for trivially-copyable PODs (caller owns layout). */
    void
    raw(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    /** Open a TLV section; every begin must be matched by endSection. */
    void beginSection(std::uint32_t tag);
    void endSection();

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> &bytes() { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::vector<std::size_t> open_; // offsets of length fields
};

/**
 * Bounds-checked load visitor over an in-memory snapshot image. The
 * constructor validates framing (magic, endian tag, version,
 * fingerprints, section table, CRC); reads then mirror the Serializer
 * call sequence exactly. Any overrun of the current section or the
 * buffer throws SnapshotError.
 */
class Deserializer
{
  public:
    /**
     * Validate the image. `expect_cfg_fp` / `expect_ctx_fp` must match
     * the header or the constructor throws; pass through the values the
     * restoring System computed for itself.
     */
    Deserializer(std::vector<std::uint8_t> image,
                 std::uint64_t expect_cfg_fp, std::uint64_t expect_ctx_fp);

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool b() { return u8() != 0; }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    std::string str();

    template <typename T>
    void
    vec(std::vector<T> &out)
    {
        static_assert(std::is_integral_v<T>, "vec: integral only");
        const std::uint64_t n = u64();
        checkCount(n, 8);
        out.clear();
        out.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
            out.push_back(static_cast<T>(u64()));
    }

    void
    boolVec(std::vector<bool> &out)
    {
        const std::uint64_t n = u64();
        checkCount(n, 1);
        out.assign(n, false);
        for (std::uint64_t i = 0; i < n; ++i)
            out[i] = u8() != 0;
    }

    template <typename T>
    void
    deq(std::deque<T> &out)
    {
        static_assert(std::is_integral_v<T>, "deq: integral only");
        const std::uint64_t n = u64();
        checkCount(n, 8);
        out.clear();
        for (std::uint64_t i = 0; i < n; ++i)
            out.push_back(static_cast<T>(u64()));
    }

    void raw(void *out, std::size_t n);

    /**
     * Enter the next section, which must carry `tag`; reads are then
     * bounded by its length. endSection verifies the payload was
     * consumed exactly.
     */
    void beginSection(std::uint32_t tag);
    void endSection();

    /** Tag of the next section without consuming it (kTagEnd at end). */
    std::uint32_t peekTag() const;

    std::uint32_t version() const { return version_; }
    std::uint64_t configFingerprint() const { return cfgFp_; }
    std::uint64_t contextFingerprint() const { return ctxFp_; }

    /** Reject a length prefix that could not possibly fit in what
     *  remains of the current section ("oversized element count"). */
    void checkCount(std::uint64_t n, std::size_t elem_bytes) const;

  private:
    void need(std::size_t n) const;

    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::size_t sectionEnd_ = 0; // 0 when not inside a section
    std::size_t bodyEnd_ = 0;    // first byte of the trailer
    std::uint32_t version_ = 0;
    std::uint64_t cfgFp_ = 0;
    std::uint64_t ctxFp_ = 0;
};

/**
 * Frame a finished Serializer body into a complete snapshot image:
 * header (fingerprints), body bytes, CRC trailer.
 */
std::vector<std::uint8_t> frameSnapshot(const Serializer &body,
                                        std::uint64_t cfg_fp,
                                        std::uint64_t ctx_fp);

/** Read a whole file; throws SnapshotError if unreadable. */
std::vector<std::uint8_t> readSnapshotFile(const std::string &path);

/** Write a snapshot image atomically (temp + rename); throws on error. */
void writeSnapshotFile(const std::string &path,
                       const std::vector<std::uint8_t> &image);

/**
 * Order-sensitive 64-bit fingerprint accumulator: fold values with
 * mix() to build config/context fingerprints. Deterministic across
 * runs and processes.
 */
class Fingerprint
{
  public:
    void mix(std::uint64_t v);
    void mix(const std::string &s);
    void mixDouble(double v);
    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0x6d747261702d736eull; // "mtrap-sn"
};

} // namespace mtrap

#endif // MTRAP_SNAPSHOT_SNAPSHOT_HH

#include "snapshot/snapshot.hh"

#include <array>
#include <fstream>

#include "common/checked_io.hh"
#include "common/rng.hh"

namespace mtrap
{

namespace
{

constexpr std::array<char, 4> kMagic = {'M', 'T', 'S', 'N'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8 + 8;
constexpr std::size_t kTrailerBytes = 4 + 8 + 4;

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

/** Little-endian store/load helpers (layout is explicit, not host). */
void
storeLe(std::uint8_t *p, std::uint64_t v, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
loadLe(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t crc)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < n; ++i)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return ~crc;
}

// --- Serializer ---------------------------------------------------------

void
Serializer::beginSection(std::uint32_t tag)
{
    u32(tag);
    open_.push_back(buf_.size());
    u64(0); // length placeholder, patched by endSection
}

void
Serializer::endSection()
{
    const std::size_t at = open_.back();
    open_.pop_back();
    const std::uint64_t len = buf_.size() - (at + 8);
    storeLe(buf_.data() + at, len, 8);
}

// --- Deserializer -------------------------------------------------------

Deserializer::Deserializer(std::vector<std::uint8_t> image,
                           std::uint64_t expect_cfg_fp,
                           std::uint64_t expect_ctx_fp)
    : buf_(std::move(image))
{
    if (buf_.size() < kHeaderBytes + kTrailerBytes)
        throw SnapshotError("file truncated (smaller than header"
                            " + trailer)");
    if (std::memcmp(buf_.data(), kMagic.data(), 4) != 0)
        throw SnapshotError("bad magic (not a MuonTrap snapshot)");
    if (loadLe(buf_.data() + 4, 4) != kEndianTag)
        throw SnapshotError("endianness mismatch");
    version_ = static_cast<std::uint32_t>(loadLe(buf_.data() + 8, 4));
    if (version_ != kSnapshotFormatVersion)
        throw SnapshotError(
            "format version " + std::to_string(version_)
            + " unsupported (this build reads version "
            + std::to_string(kSnapshotFormatVersion) + ")");
    cfgFp_ = loadLe(buf_.data() + 12, 8);
    ctxFp_ = loadLe(buf_.data() + 20, 8);

    // CRC trailer: tag kTagEnd, length 4, CRC over everything before it.
    const std::size_t tr = buf_.size() - kTrailerBytes;
    if (loadLe(buf_.data() + tr, 4) != kTagEnd
        || loadLe(buf_.data() + tr + 4, 8) != 4)
        throw SnapshotError("malformed trailer");
    const auto stored =
        static_cast<std::uint32_t>(loadLe(buf_.data() + tr + 12, 4));
    const std::uint32_t computed = crc32(buf_.data(), tr);
    if (stored != computed)
        throw SnapshotError("CRC mismatch (file corrupt)");
    bodyEnd_ = tr;

    // Validate the section table before any component reads: every
    // section must lie entirely within the body.
    std::size_t p = kHeaderBytes;
    while (p < bodyEnd_) {
        if (bodyEnd_ - p < 12)
            throw SnapshotError("truncated section header");
        const std::uint64_t len = loadLe(buf_.data() + p + 4, 8);
        if (len > bodyEnd_ - (p + 12))
            throw SnapshotError("section length exceeds file body");
        p += 12 + static_cast<std::size_t>(len);
    }

    if (cfgFp_ != expect_cfg_fp)
        throw SnapshotError("config fingerprint mismatch (snapshot was"
                            " taken under a different configuration)");
    if (ctxFp_ != expect_ctx_fp)
        throw SnapshotError("context fingerprint mismatch (snapshot was"
                            " taken with a different workload/run"
                            " setup)");

    pos_ = kHeaderBytes;
}

void
Deserializer::need(std::size_t n) const
{
    const std::size_t limit = sectionEnd_ ? sectionEnd_ : bodyEnd_;
    if (pos_ + n > limit)
        throw SnapshotError("read past end of "
                            + std::string(sectionEnd_ ? "section"
                                                      : "body"));
}

void
Deserializer::checkCount(std::uint64_t n, std::size_t elem_bytes) const
{
    // A hostile length prefix cannot demand more payload than remains.
    const std::size_t limit = sectionEnd_ ? sectionEnd_ : bodyEnd_;
    if (n > (limit - pos_) / elem_bytes)
        throw SnapshotError("oversized element count");
}

std::uint8_t
Deserializer::u8()
{
    need(1);
    return buf_[pos_++];
}

std::uint16_t
Deserializer::u16()
{
    need(2);
    const auto v = static_cast<std::uint16_t>(loadLe(&buf_[pos_], 2));
    pos_ += 2;
    return v;
}

std::uint32_t
Deserializer::u32()
{
    need(4);
    const auto v = static_cast<std::uint32_t>(loadLe(&buf_[pos_], 4));
    pos_ += 4;
    return v;
}

std::uint64_t
Deserializer::u64()
{
    need(8);
    const std::uint64_t v = loadLe(&buf_[pos_], 8);
    pos_ += 8;
    return v;
}

std::string
Deserializer::str()
{
    const std::uint64_t n = u64();
    checkCount(n, 1);
    std::string s(reinterpret_cast<const char *>(&buf_[pos_]),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
}

void
Deserializer::raw(void *out, std::size_t n)
{
    need(n);
    std::memcpy(out, &buf_[pos_], n);
    pos_ += n;
}

void
Deserializer::beginSection(std::uint32_t tag)
{
    if (sectionEnd_)
        throw SnapshotError("nested section read");
    if (pos_ + 12 > bodyEnd_)
        throw SnapshotError("expected section tag "
                            + std::to_string(tag)
                            + " but the body ended");
    const auto got = static_cast<std::uint32_t>(loadLe(&buf_[pos_], 4));
    if (got != tag)
        throw SnapshotError("expected section tag " + std::to_string(tag)
                            + " but found " + std::to_string(got));
    const std::uint64_t len = loadLe(&buf_[pos_ + 4], 8);
    pos_ += 12;
    // Already validated against the body in the constructor.
    sectionEnd_ = pos_ + static_cast<std::size_t>(len);
}

void
Deserializer::endSection()
{
    if (!sectionEnd_)
        throw SnapshotError("endSection outside a section");
    if (pos_ != sectionEnd_)
        throw SnapshotError("section payload size mismatch");
    sectionEnd_ = 0;
}

std::uint32_t
Deserializer::peekTag() const
{
    if (sectionEnd_)
        throw SnapshotError("peekTag inside a section");
    if (pos_ >= bodyEnd_)
        return kTagEnd;
    return static_cast<std::uint32_t>(loadLe(&buf_[pos_], 4));
}

// --- Framing / file I/O -------------------------------------------------

std::vector<std::uint8_t>
frameSnapshot(const Serializer &body, std::uint64_t cfg_fp,
              std::uint64_t ctx_fp)
{
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes + body.bytes().size() + kTrailerBytes);
    out.insert(out.end(), kMagic.begin(), kMagic.end());
    out.resize(kHeaderBytes);
    storeLe(out.data() + 4, kEndianTag, 4);
    storeLe(out.data() + 8, kSnapshotFormatVersion, 4);
    storeLe(out.data() + 12, cfg_fp, 8);
    storeLe(out.data() + 20, ctx_fp, 8);
    out.insert(out.end(), body.bytes().begin(), body.bytes().end());

    const std::uint32_t crc = crc32(out.data(), out.size());
    const std::size_t tr = out.size();
    out.resize(tr + kTrailerBytes);
    storeLe(out.data() + tr, kTagEnd, 4);
    storeLe(out.data() + tr + 4, 4, 8);
    storeLe(out.data() + tr + 12, crc, 4);
    return out;
}

std::vector<std::uint8_t>
readSnapshotFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw SnapshotError("cannot open '" + path + "'");
    std::vector<std::uint8_t> buf(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    if (is.bad())
        throw SnapshotError("read error on '" + path + "'");
    return buf;
}

void
writeSnapshotFile(const std::string &path,
                  const std::vector<std::uint8_t> &image)
{
    writeFileAtomicChecked(
        path,
        std::string(reinterpret_cast<const char *>(image.data()),
                    image.size()),
        "snapshot");
}

// --- Fingerprint --------------------------------------------------------

void
Fingerprint::mix(std::uint64_t v)
{
    h_ = mix64(h_ ^ v);
}

void
Fingerprint::mix(const std::string &s)
{
    mix(s.size());
    for (char c : s)
        h_ = mix64(h_ ^ static_cast<std::uint8_t>(c));
}

void
Fingerprint::mixDouble(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    mix(bits);
}

} // namespace mtrap

#include "common/parse.hh"

#include <stdexcept>

namespace mtrap
{

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    try {
        out = std::stoull(s);
    } catch (const std::exception &) {
        return false; // out of range
    }
    return true;
}

} // namespace mtrap

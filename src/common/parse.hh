/**
 * @file
 * Strict CLI-number parsing shared by every front end (mtrap_sim,
 * mtrap_batch, the bench binaries), so junk like `--jobs abc` is a
 * clean usage error everywhere instead of an uncaught-exception abort.
 */

#ifndef MTRAP_COMMON_PARSE_HH
#define MTRAP_COMMON_PARSE_HH

#include <cstdint>
#include <string>

namespace mtrap
{

/**
 * Parse a non-negative decimal integer. Returns false (leaving `out`
 * untouched) on an empty string, any non-digit character, or overflow.
 */
bool parseU64(const std::string &s, std::uint64_t &out);

} // namespace mtrap

#endif // MTRAP_COMMON_PARSE_HH

/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every stochastic choice in the simulator (random replacement, workload
 * generation) draws from an explicitly seeded Rng so whole experiments
 * are bit-reproducible.
 */

#ifndef MTRAP_COMMON_RNG_HH
#define MTRAP_COMMON_RNG_HH

#include <cstdint>

namespace mtrap
{

/** Seedable xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound) ; bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double real();

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return real() < p; }

    /** Uniform in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Internal state, for checkpoint save/restore. */
    void saveState(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = s_[i];
    }

    /** Overwrite the internal state from a checkpoint. */
    void restoreState(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = in[i];
    }

  private:
    std::uint64_t s_[4];
};

/**
 * Deterministically combine two seeds into a new one (splitmix64-based
 * avalanche). Used to derive per-job seeds from a global seed and to
 * perturb configured structure seeds without correlation.
 */
std::uint64_t mixSeeds(std::uint64_t a, std::uint64_t b);

/**
 * The splitmix64 increment-and-finalize step: full avalanche of one
 * 64-bit value. The single definition behind the deterministic page
 * mapper, the functional memory's pseudo-contents and FlatWordMap's
 * hash — these must stay bit-identical to each other's history, so
 * they share it.
 */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace mtrap

#endif // MTRAP_COMMON_RNG_HH

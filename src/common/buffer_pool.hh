/**
 * @file
 * Process-wide buffer pool + STL allocator for the simulator's large,
 * frequently re-created arrays (cache line arrays, the functional word
 * store).
 *
 * Building a Table-1 system allocates ~1 MB of line metadata; the
 * security choreographies and the experiment harness construct and
 * destroy whole systems continuously, and on first touch every fresh
 * allocation pays kernel page faults — measured at several hundred
 * microseconds per L2, dwarfing the user-space initialisation. Recycling
 * buffers through this pool means only the first system of a given
 * geometry faults; every later one reuses warm pages.
 *
 * Determinism: containers value-initialise their elements regardless of
 * what the recycled buffer contained, so simulation results are
 * unaffected. Thread safety: a mutex around the free lists (acquire/
 * release happen at system construction granularity, not on simulation
 * hot paths).
 */

#ifndef MTRAP_COMMON_BUFFER_POOL_HH
#define MTRAP_COMMON_BUFFER_POOL_HH

#include <cstddef>
#include <cstdlib>
#include <mutex>
#include <new>
#include <unordered_map>
#include <vector>

namespace mtrap
{

class BufferPool
{
  public:
    /** Singleton (intentionally leaked: avoids static-destruction-order
     *  hazards with late-destroyed systems). */
    static BufferPool &instance();

    /** A buffer of exactly `bytes` bytes (recycled or fresh). */
    void *acquire(std::size_t bytes)
    {
        if (bytes >= kMinPooledBytes) {
            std::lock_guard<std::mutex> lk(mu_);
            auto it = free_.find(bytes);
            if (it != free_.end() && !it->second.empty()) {
                void *p = it->second.back();
                it->second.pop_back();
                return p;
            }
        }
        return std::malloc(bytes);
    }

    void release(void *p, std::size_t bytes)
    {
        if (!p)
            return;
        if (bytes >= kMinPooledBytes) {
            std::lock_guard<std::mutex> lk(mu_);
            std::vector<void *> &list = free_[bytes];
            if (list.size() < kMaxPerBucket) {
                list.push_back(p);
                return;
            }
        }
        std::free(p);
    }

  private:
    /** Small allocations are not worth the lock. */
    static constexpr std::size_t kMinPooledBytes = 16 * 1024;
    /** Per-size cap so pathological size churn cannot hoard memory. */
    static constexpr std::size_t kMaxPerBucket = 32;

    std::mutex mu_;
    std::unordered_map<std::size_t, std::vector<void *>> free_;
};

/** Minimal STL allocator over the BufferPool. */
template <typename T>
struct PoolAllocator
{
    using value_type = T;

    PoolAllocator() = default;
    template <typename U>
    PoolAllocator(const PoolAllocator<U> &) {}

    T *allocate(std::size_t n)
    {
        void *p = BufferPool::instance().acquire(n * sizeof(T));
        if (!p)
            throw std::bad_alloc();
        return static_cast<T *>(p);
    }
    void deallocate(T *p, std::size_t n)
    {
        BufferPool::instance().release(p, n * sizeof(T));
    }

    bool operator==(const PoolAllocator &) const { return true; }
    bool operator!=(const PoolAllocator &) const { return false; }
};

} // namespace mtrap

#endif // MTRAP_COMMON_BUFFER_POOL_HH

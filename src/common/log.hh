/**
 * @file
 * gem5-style status and error reporting: panic/fatal/warn/inform.
 *
 * `panic()` marks simulator bugs (aborts); `fatal()` marks user/config
 * errors (clean exit). `warn()`/`inform()` are non-fatal notices. All
 * accept printf-style formatting.
 */

#ifndef MTRAP_COMMON_LOG_HH
#define MTRAP_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace mtrap
{

/** Verbosity filter for inform(); warnings and errors always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global verbosity (default Normal). */
void setLogLevel(LogLevel lvl);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal simulator bug and abort. Use when an invariant the
 * simulator itself must maintain has been violated.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1). Use when
 * the simulation cannot continue due to caller-supplied parameters.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious but survivable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status (suppressed under LogLevel::Quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string (helper for messages). */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace mtrap

#endif // MTRAP_COMMON_LOG_HH

/**
 * @file
 * FlatWordMap: a minimal open-addressing hash map from 64-bit keys to
 * 64-bit values, tuned for the simulator's hot lookup tables (the
 * functional memory store, MSHR in-flight fill tracking).
 *
 * Compared with std::unordered_map it does no per-node allocation, has
 * no bucket-list pointer chases, and a slot is exactly 16 bytes, so the
 * common hit touches one or two cache lines. A reserved sentinel key
 * marks empty slots (the simulator's keys are addresses or line
 * numbers, far below the sentinel). Erasure is rebuild-based (eraseIf,
 * for rare cleanups) rather than per-entry, so probing never sees
 * tombstones. Iteration order is unspecified and never observed by the
 * simulation (determinism is unaffected: values are keyed data).
 */

#ifndef MTRAP_COMMON_FLAT_MAP_HH
#define MTRAP_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/buffer_pool.hh"
#include "common/rng.hh"

namespace mtrap
{

class FlatWordMap
{
  public:
    /** Keys equal to `kEmptyKey` must never be inserted. */
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    explicit FlatWordMap(std::size_t initial_capacity = 1024)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.assign(cap, Slot{kEmptyKey, 0});
        mask_ = cap - 1;
    }

    /** Number of stored keys. */
    std::size_t size() const { return size_; }

    /** Pointer to the value for `key`, or nullptr. */
    const std::uint64_t *find(std::uint64_t key) const
    {
        for (std::size_t i = hash(key) & mask_;; i = (i + 1) & mask_) {
            const Slot &s = slots_[i];
            if (s.key == key)
                return &s.value;
            if (s.key == kEmptyKey)
                return nullptr;
        }
    }

    /** Insert or overwrite. */
    void put(std::uint64_t key, std::uint64_t value)
    {
        if ((size_ + 1) * 4 > slots_.size() * 3)
            grow();
        for (std::size_t i = hash(key) & mask_;; i = (i + 1) & mask_) {
            Slot &s = slots_[i];
            if (s.key == key) {
                s.value = value;
                return;
            }
            if (s.key == kEmptyKey) {
                s.key = key;
                s.value = value;
                ++size_;
                return;
            }
        }
    }

    /**
     * Drop every (key, value) for which `pred` holds, by rebuilding in
     * place (no tombstones). O(capacity); intended for rare cleanups.
     * The surviving set — the only thing lookups can observe — matches
     * what per-entry erasure would leave.
     */
    template <typename Pred>
    void eraseIf(Pred &&pred)
    {
        SlotVec old = std::move(slots_);
        slots_.assign(old.size(), Slot{kEmptyKey, 0});
        size_ = 0;
        for (const Slot &s : old)
            if (s.key != kEmptyKey && !pred(s.key, s.value))
                put(s.key, s.value);
    }

    /**
     * Visit every (key, value) pair. Order is the internal slot order
     * (unspecified); callers needing a deterministic byte stream — the
     * snapshot layer — must sort what they collect.
     */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_)
            if (s.key != kEmptyKey)
                fn(s.key, s.value);
    }

    /** Drop every entry, keeping the current capacity. */
    void clear()
    {
        slots_.assign(slots_.size(), Slot{kEmptyKey, 0});
        size_ = 0;
    }

  private:
    struct Slot
    {
        std::uint64_t key;
        std::uint64_t value;
    };

    static std::uint64_t hash(std::uint64_t z) { return mix64(z); }

    void grow()
    {
        SlotVec old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{kEmptyKey, 0});
        mask_ = slots_.size() - 1;
        size_ = 0;
        for (const Slot &s : old)
            if (s.key != kEmptyKey)
                put(s.key, s.value);
    }

    using SlotVec = std::vector<Slot, PoolAllocator<Slot>>;
    SlotVec slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace mtrap

#endif // MTRAP_COMMON_FLAT_MAP_HH

/**
 * @file
 * Fundamental scalar types and address helpers shared by every module.
 *
 * The simulator is cycle-based and single-threaded; `Cycle` is a plain
 * unsigned 64-bit counter. Addresses are 64-bit byte addresses in a flat
 * physical or virtual space.
 */

#ifndef MTRAP_COMMON_TYPES_HH
#define MTRAP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace mtrap
{

/** Simulated clock cycle. One global clock domain at 2.0 GHz. */
using Cycle = std::uint64_t;

/** Byte address, virtual or physical depending on context. */
using Addr = std::uint64_t;

/** Dynamic-instruction sequence number (fetch order, never reused). */
using SeqNum = std::uint64_t;

/** Address-space (process) identifier. */
using Asid = std::uint32_t;

/** Hardware core identifier. */
using CoreId = std::uint32_t;

/** Sentinel for "no cycle" / "not yet scheduled". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel invalid address. */
inline constexpr Addr kAddrInvalid = std::numeric_limits<Addr>::max();

/** Cache-line size used throughout the hierarchy (paper assumes equal
 *  line sizes at all levels; see §4.1). */
inline constexpr unsigned kLineBytes = 64;

/** log2(kLineBytes). */
inline constexpr unsigned kLineShift = 6;

/** Page size for the TLB and page-table walker. */
inline constexpr unsigned kPageBytes = 4096;

/** log2(kPageBytes). */
inline constexpr unsigned kPageShift = 12;

/** Align an address down to its cache-line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Extract the line number (address divided by line size). */
constexpr Addr
lineNum(Addr a)
{
    return a >> kLineShift;
}

/** Align an address down to its page base. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~static_cast<Addr>(kPageBytes - 1);
}

/** Extract the virtual/physical page number. */
constexpr Addr
pageNum(Addr a)
{
    return a >> kPageShift;
}

/** True if `v` is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor log2 for powers of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

} // namespace mtrap

#endif // MTRAP_COMMON_TYPES_HH
